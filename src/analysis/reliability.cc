#include "src/analysis/reliability.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/exec/parallel.h"
#include "src/prob/kahan.h"
#include "src/prob/poisson_binomial.h"
#include "src/quorum/quorum_system.h"

namespace probcon {
namespace {

// Fixed chunk sizes of the parallel strategies. These are part of each result's
// definition (they fix the per-chunk RNG streams and the Kahan merge order), so they must
// never depend on the worker count — see the determinism contract in src/exec.
constexpr uint64_t kEnumerationChunk = uint64_t{1} << 14;
constexpr uint64_t kMonteCarloChunk = uint64_t{1} << 14;

// Per-chunk partial of a probability-mass split into {predicate holds, predicate fails}.
struct MassPartial {
  KahanSum holds;
  KahanSum fails;
};

Probability MassVerdict(const KahanSum& holds_mass, const KahanSum& fails_mass) {
  // Report the smaller of {holds, fails} mass for complement accuracy.
  const double holds = holds_mass.Total();
  const double fails = fails_mass.Total();
  if (fails <= holds) {
    return Probability::FromComplement(std::max(0.0, fails));
  }
  return Probability::FromProbability(std::max(0.0, holds));
}

// Evaluates a count predicate against the Poisson-binomial failure-count law. O(N) given
// the precomputed law, so it runs serially.
Probability CountDpProbability(const FailurePredicate& predicate, const PoissonBinomial& counts,
                               int n) {
  KahanSum holds_mass;
  KahanSum fails_mass;
  for (int k = 0; k <= n; ++k) {
    const auto verdict = predicate.HoldsForCount(k, n);
    CHECK(verdict.has_value());
    if (*verdict) {
      holds_mass.Add(counts.Pmf(k));
    } else {
      fails_mass.Add(counts.Pmf(k));
    }
  }
  return MassVerdict(holds_mass, fails_mass);
}

// Range-partitions the 2^N configuration space; each chunk accumulates compensated
// holds/fails partial sums, merged in fixed chunk order so the result is bit-identical
// for every thread count. A fired cancel token makes the remaining chunks bail at their
// next poll (the partial results are then discarded by the caller). `progress`, when
// non-null, accumulates evaluated configurations at the same poll boundaries.
Result<Probability> ExactEnumerationProbability(const FailurePredicate& predicate,
                                                const JointFailureModel& model,
                                                const CancelToken* cancel,
                                                std::atomic<uint64_t>* progress) {
  const int n = model.n();
  CHECK_LE(n, 25) << "exact enumeration limited to n <= 25";
  const uint64_t configurations = uint64_t{1} << n;
  const MassPartial total = ParallelReduce<MassPartial>(
      0, configurations, kEnumerationChunk, MassPartial{},
      [&](uint64_t chunk_begin, uint64_t chunk_end, uint64_t /*chunk_index*/) {
        MassPartial partial;
        uint64_t reported = chunk_begin;
        for (uint64_t config = chunk_begin; config < chunk_end; ++config) {
          if ((config - chunk_begin) % kCancellationPollStride == 0) {
            if (progress != nullptr && config > reported) {
              progress->fetch_add(config - reported, std::memory_order_relaxed);
              reported = config;
            }
            if (IsCancelled(cancel)) {
              return partial;
            }
          }
          const auto prob = model.ConfigurationProbability(config);
          CHECK(prob.has_value()) << "model" << model.Describe()
                                  << "lacks exact configuration probabilities";
          if (predicate.Holds(config, n)) {
            partial.holds.Add(*prob);
          } else {
            partial.fails.Add(*prob);
          }
        }
        if (progress != nullptr && chunk_end > reported) {
          progress->fetch_add(chunk_end - reported, std::memory_order_relaxed);
        }
        return partial;
      },
      [](MassPartial& acc, MassPartial&& partial) {
        acc.holds.Merge(partial.holds);
        acc.fails.Merge(partial.fails);
      });
  if (IsCancelled(cancel)) {
    return CancelledError("exact enumeration cancelled");
  }
  return MassVerdict(total.holds, total.fails);
}

}  // namespace

ReliabilityAnalyzer::ReliabilityAnalyzer(std::unique_ptr<JointFailureModel> model)
    : model_(std::move(model)) {
  CHECK(model_ != nullptr);
}

ReliabilityAnalyzer::ReliabilityAnalyzer(ReliabilityAnalyzer&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.count_law_mutex_);
  model_ = std::move(other.model_);
  count_law_ = std::move(other.count_law_);
}

ReliabilityAnalyzer& ReliabilityAnalyzer::operator=(ReliabilityAnalyzer&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(count_law_mutex_, other.count_law_mutex_);
    model_ = std::move(other.model_);
    count_law_ = std::move(other.count_law_);
  }
  return *this;
}

const PoissonBinomial& ReliabilityAnalyzer::CountLaw() const {
  const auto* independent = dynamic_cast<const IndependentFailureModel*>(model_.get());
  CHECK(independent != nullptr) << "count law requires an independent model";
  std::lock_guard<std::mutex> lock(count_law_mutex_);
  if (count_law_ == nullptr) {
    count_law_ = std::make_shared<const PoissonBinomial>(independent->probabilities());
  }
  return *count_law_;
}

ReliabilityAnalyzer ReliabilityAnalyzer::ForIndependentNodes(
    std::vector<double> failure_probabilities) {
  return ReliabilityAnalyzer(
      std::make_unique<IndependentFailureModel>(std::move(failure_probabilities)));
}

ReliabilityAnalyzer ReliabilityAnalyzer::ForUniformNodes(int n, double p) {
  return ForIndependentNodes(std::vector<double>(static_cast<size_t>(n), p));
}

Probability ReliabilityAnalyzer::EventProbability(const FailurePredicate& predicate,
                                                  AnalysisMethod method) const {
  Result<Probability> result = TryEventProbability(predicate, method, nullptr);
  CHECK(result.ok()) << result.status().ToString();
  return *result;
}

Result<Probability> ReliabilityAnalyzer::TryEventProbability(
    const FailurePredicate& predicate, AnalysisMethod method, const CancelToken* cancel,
    std::atomic<uint64_t>* progress) const {
  const auto* independent = dynamic_cast<const IndependentFailureModel*>(model_.get());
  const bool count_only = predicate.HoldsForCount(0, n()).has_value();

  if (method == AnalysisMethod::kAuto) {
    if (count_only && independent != nullptr) {
      method = AnalysisMethod::kCountDp;
    } else {
      method = AnalysisMethod::kExact;
    }
  }
  if (IsCancelled(cancel)) {
    return CancelledError("analysis cancelled before start");
  }
  switch (method) {
    case AnalysisMethod::kCountDp:
      CHECK(count_only) << "predicate is not count-only";
      CHECK(independent != nullptr) << "count DP requires an independent model";
      return CountDpProbability(predicate, CountLaw(), n());
    case AnalysisMethod::kExact:
      return ExactEnumerationProbability(predicate, *model_, cancel, progress);
    case AnalysisMethod::kMonteCarlo: {
      MonteCarloOptions options;
      options.cancel = cancel;
      options.progress = progress;
      Result<ConfidenceInterval> ci = TryEstimateEventProbability(predicate, options);
      if (!ci.ok()) return ci.status();
      return Probability::FromProbability(ci->point);
    }
    case AnalysisMethod::kAuto:
      break;
  }
  CHECK(false) << "unreachable";
  return Probability::Zero();
}

ConfidenceInterval ReliabilityAnalyzer::EstimateEventProbability(
    const FailurePredicate& predicate, const MonteCarloOptions& options) const {
  Result<ConfidenceInterval> result = TryEstimateEventProbability(predicate, options);
  CHECK(result.ok()) << result.status().ToString();
  return *result;
}

Result<ConfidenceInterval> ReliabilityAnalyzer::TryEstimateEventProbability(
    const FailurePredicate& predicate, const MonteCarloOptions& options) const {
  CHECK_GT(options.trials, 0u);
  // Chunked sampling with per-chunk generators derived from (options.seed, chunk_index):
  // the hit count is a pure function of the options, never of the thread count. See the
  // seeding-scheme note in src/common/rng.h. Cancellation polls sit on stride boundaries
  // and only ever abandon work, so they cannot perturb the estimate of a completed run.
  const CancelToken* cancel = options.cancel;
  std::atomic<uint64_t>* progress = options.progress;
  const uint64_t holds = ParallelReduce<uint64_t>(
      0, options.trials, kMonteCarloChunk, 0,
      [&](uint64_t chunk_begin, uint64_t chunk_end, uint64_t chunk_index) {
        Rng rng(DeriveStreamSeed(options.seed, chunk_index));
        uint64_t chunk_holds = 0;
        uint64_t reported = chunk_begin;
        for (uint64_t t = chunk_begin; t < chunk_end; ++t) {
          if ((t - chunk_begin) % kCancellationPollStride == 0) {
            if (progress != nullptr && t > reported) {
              progress->fetch_add(t - reported, std::memory_order_relaxed);
              reported = t;
            }
            if (IsCancelled(cancel)) {
              return chunk_holds;
            }
          }
          const FailureConfiguration config = model_->Sample(rng);
          if (predicate.Holds(config, n())) {
            ++chunk_holds;
          }
        }
        if (progress != nullptr && chunk_end > reported) {
          progress->fetch_add(chunk_end - reported, std::memory_order_relaxed);
        }
        return chunk_holds;
      },
      [](uint64_t& acc, uint64_t partial) { acc += partial; });
  if (IsCancelled(cancel)) {
    return CancelledError("Monte Carlo estimate cancelled after partial sampling");
  }
  return WilsonInterval(holds, options.trials);
}

// ---------------------------------------------------------------------------
// Protocol reports

CountPredicate MakeRaftLivePredicate(RaftConfig config) {
  return CountPredicate([config](int failure_count, int n) {
    CHECK_EQ(n, config.n);
    return RaftIsLive(config, n - failure_count);
  });
}

CountPredicate MakePbftSafePredicate(PbftConfig config) {
  return CountPredicate([config](int failure_count, int n) {
    CHECK_EQ(n, config.n);
    return PbftIsSafe(config, failure_count);
  });
}

CountPredicate MakePbftLivePredicate(PbftConfig config) {
  return CountPredicate([config](int failure_count, int n) {
    CHECK_EQ(n, config.n);
    return PbftIsLive(config, failure_count);
  });
}

CountPredicate MakePbftSafeAndLivePredicate(PbftConfig config) {
  return CountPredicate([config](int failure_count, int n) {
    CHECK_EQ(n, config.n);
    return PbftIsSafe(config, failure_count) && PbftIsLive(config, failure_count);
  });
}

ReliabilityReport AnalyzeRaft(const RaftConfig& config, const ReliabilityAnalyzer& analyzer,
                              AnalysisMethod method) {
  CHECK_EQ(config.n, analyzer.n());
  ReliabilityReport report;
  const bool structurally_safe = RaftIsSafeStructurally(config);
  report.safe = structurally_safe ? Probability::One() : Probability::Zero();
  report.live = analyzer.EventProbability(MakeRaftLivePredicate(config), method);
  report.safe_and_live = structurally_safe ? report.live : Probability::Zero();
  return report;
}

ReliabilityReport AnalyzePbft(const PbftConfig& config, const ReliabilityAnalyzer& analyzer,
                              AnalysisMethod method) {
  CHECK_EQ(config.n, analyzer.n());
  ReliabilityReport report;
  report.safe = analyzer.EventProbability(MakePbftSafePredicate(config), method);
  report.live = analyzer.EventProbability(MakePbftLivePredicate(config), method);
  report.safe_and_live =
      analyzer.EventProbability(MakePbftSafeAndLivePredicate(config), method);
  return report;
}

}  // namespace probcon
