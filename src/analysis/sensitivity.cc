#include "src/analysis/sensitivity.h"

#include "src/common/check.h"
#include "src/exec/parallel.h"

namespace probcon {

std::vector<NodeSensitivity> AnalyzeSensitivity(
    const std::vector<double>& failure_probabilities, const FailurePredicate& predicate) {
  const int n = static_cast<int>(failure_probabilities.size());
  CHECK_GT(n, 0);
  // Every node's pair of pinned evaluations is independent of the others; fan the sweep
  // out one node per task. RunTrials returns in node order, so the result is identical to
  // the sequential loop.
  return RunTrials(static_cast<uint64_t>(n), [&](uint64_t node_index) {
    const int node = static_cast<int>(node_index);
    // Exact conditionals: evaluate with p_i pinned to 0 and to 1. The analyzer handles
    // degenerate probabilities without special cases.
    std::vector<double> pinned = failure_probabilities;
    NodeSensitivity sensitivity;
    sensitivity.node = node;
    pinned[node] = 0.0;
    sensitivity.complement_if_perfect =
        ReliabilityAnalyzer::ForIndependentNodes(pinned)
            .EventProbability(predicate)
            .complement();
    pinned[node] = 1.0;
    sensitivity.complement_if_failed =
        ReliabilityAnalyzer::ForIndependentNodes(pinned)
            .EventProbability(predicate)
            .complement();
    sensitivity.derivative =
        sensitivity.complement_if_failed - sensitivity.complement_if_perfect;
    return sensitivity;
  });
}

std::vector<NodeSensitivity> RaftSensitivity(
    const std::vector<double>& failure_probabilities) {
  const int n = static_cast<int>(failure_probabilities.size());
  const auto config = RaftConfig::Standard(n);
  CHECK(RaftIsSafeStructurally(config));
  return AnalyzeSensitivity(failure_probabilities, MakeRaftLivePredicate(config));
}

}  // namespace probcon
