#include "src/analysis/committee.h"

#include <algorithm>
#include <numeric>

#include "src/analysis/reliability.h"
#include "src/common/check.h"

namespace probcon {

std::vector<int> SelectCommittee(const std::vector<double>& failure_probabilities, int m,
                                 CommitteeStrategy strategy, Rng* rng) {
  const int n = static_cast<int>(failure_probabilities.size());
  CHECK(m >= 1 && m <= n);
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  switch (strategy) {
    case CommitteeStrategy::kMostReliable:
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return failure_probabilities[a] < failure_probabilities[b];
      });
      break;
    case CommitteeStrategy::kLeastReliable:
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return failure_probabilities[a] > failure_probabilities[b];
      });
      break;
    case CommitteeStrategy::kRandom: {
      CHECK(rng != nullptr) << "kRandom needs an Rng";
      const auto sample = rng->SampleWithoutReplacement(static_cast<size_t>(n),
                                                        static_cast<size_t>(m));
      std::vector<int> committee(sample.begin(), sample.end());
      std::sort(committee.begin(), committee.end());
      return committee;
    }
  }
  order.resize(static_cast<size_t>(m));
  std::sort(order.begin(), order.end());
  return order;
}

Probability CommitteeRaftReliability(const std::vector<double>& failure_probabilities,
                                     const std::vector<int>& committee) {
  CHECK(!committee.empty());
  std::vector<double> member_probabilities;
  member_probabilities.reserve(committee.size());
  for (const int index : committee) {
    CHECK(index >= 0 && index < static_cast<int>(failure_probabilities.size()));
    member_probabilities.push_back(failure_probabilities[index]);
  }
  const int m = static_cast<int>(member_probabilities.size());
  const auto analyzer =
      ReliabilityAnalyzer::ForIndependentNodes(std::move(member_probabilities));
  return AnalyzeRaft(RaftConfig::Standard(m), analyzer).safe_and_live;
}

int MinCommitteeSizeForTarget(const std::vector<double>& failure_probabilities,
                              const Probability& target) {
  const int n = static_cast<int>(failure_probabilities.size());
  for (int m = 1; m <= n; m += 2) {
    const auto committee =
        SelectCommittee(failure_probabilities, m, CommitteeStrategy::kMostReliable, nullptr);
    if (!(CommitteeRaftReliability(failure_probabilities, committee) < target)) {
      return m;
    }
  }
  return -1;
}

}  // namespace probcon
