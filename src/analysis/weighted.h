// Stake-weighted consensus analysis (paper §2 point 1: "Stake in blockchain systems captures
// a similar idea: nodes with higher stake ... are considered more trustworthy"; §5's
// stake-based protocols and Stellar).
//
// Votes carry weight; a quorum is any set with total weight >= quorum_weight. Two quorums
// always intersect iff 2 * quorum_weight > total stake — the weighted analogue of Theorem
// 3.2's majority condition. Liveness then depends on WHICH nodes survive, not how many, so
// this analysis runs on the configuration-predicate path.
//
// The probabilistic payoff the paper gestures at: if stake is assigned from fault curves
// (heavier stake to more reliable nodes), the same structural-safety condition yields strictly
// better liveness than uniform one-node-one-vote — quantified by AnalyzeWeightedRaft and
// benchmarked in E10.

#ifndef PROBCON_SRC_ANALYSIS_WEIGHTED_H_
#define PROBCON_SRC_ANALYSIS_WEIGHTED_H_

#include <vector>

#include "src/analysis/reliability.h"
#include "src/prob/probability.h"

namespace probcon {

struct WeightedRaftConfig {
  std::vector<double> stakes;  // Per-node voting weight (>= 0).
  double quorum_weight = 0.0;  // Weight needed to commit or elect.

  double TotalStake() const;
  // Any two quorums intersect: 2 * quorum_weight > total stake.
  bool IsStructurallySafe() const;

  // One-node-one-vote with majority quorums, for baseline comparisons.
  static WeightedRaftConfig Uniform(int n);
  // Stake proportional to each node's log-odds of surviving the window,
  // log((1-p)/p) — the weight of evidence its vote carries; quorum at just over half the
  // total. Degenerate probabilities are clamped to keep stakes finite.
  static WeightedRaftConfig StakeByReliability(const std::vector<double>& failure_probabilities);
};

// Safety is structural (0 or 1); liveness = P(surviving stake >= quorum_weight) under
// independent per-node failure probabilities. Exact 2^N enumeration (n <= 25).
ReliabilityReport AnalyzeWeightedRaft(const WeightedRaftConfig& config,
                                      const std::vector<double>& failure_probabilities);

}  // namespace probcon

#endif  // PROBCON_SRC_ANALYSIS_WEIGHTED_H_
