// End-to-end guarantees (paper §4): translating consensus-level probabilistic
// safety/liveness into the availability and durability nines applications actually buy.
//
// The paper's observations, made computable:
//   * "A live consensus protocol might not be able to meet the availability requirements if
//     its recovery or reconfiguration is intolerably slow" — availability is a function of
//     BOTH the per-window liveness probability (outage frequency) and the mean time to
//     recover (outage duration).
//   * "An unsafe system may commit different operations at different nodes yet remain
//     durable if both forks are preserved" — durability is a function of the safety-loss
//     rate AND the probability that a safety incident actually destroys data rather than
//     forking it.

#ifndef PROBCON_SRC_ANALYSIS_END_TO_END_H_
#define PROBCON_SRC_ANALYSIS_END_TO_END_H_

#include "src/analysis/reliability.h"
#include "src/prob/probability.h"

namespace probcon {

struct EndToEndParams {
  // Consensus-level per-window reliability (from AnalyzeRaft / AnalyzePbft / ...).
  ReliabilityReport consensus;
  double window_hours = 0.0;          // Length of the analysis window behind `consensus`.
  double mean_time_to_recover = 0.0;  // Hours to restore service after a liveness outage.
  // P(a safety violation destroys data | violation occurred). 0 = forks always preserved
  // and reconciled; 1 = every violation loses data.
  double data_loss_given_violation = 1.0;
  double mission_hours = 8766.0;  // Horizon for the durability figure (default one year).
};

struct EndToEndReport {
  // Long-run fraction of time the service answers: uptime / (uptime + downtime), where
  // outages arrive at the liveness-failure rate and last mean_time_to_recover.
  Probability availability;
  // P(no data loss over the mission horizon): safety-violation arrivals thinned by the
  // fork-preservation probability.
  Probability mission_durability;
  // Expected outage minutes per year (the SLA currency).
  double outage_minutes_per_year = 0.0;
};

// Derives application-level guarantees from consensus-level ones. Window failure
// probabilities are converted to Poisson rates (valid for the small complements this
// library deals in).
EndToEndReport ComputeEndToEnd(const EndToEndParams& params);

}  // namespace probcon

#endif  // PROBCON_SRC_ANALYSIS_END_TO_END_H_
