#include "src/analysis/timeline.h"

#include "src/common/check.h"

namespace probcon {

std::vector<TimelinePoint> RaftReliabilityTimeline(const RaftConfig& config,
                                                   const std::vector<const FaultCurve*>& curves,
                                                   const std::vector<double>& ages,
                                                   const TimelineOptions& options) {
  CHECK_EQ(curves.size(), static_cast<size_t>(config.n));
  CHECK_EQ(ages.size(), curves.size());
  CHECK_GE(options.steps, 2);
  CHECK_GT(options.horizon, 0.0);
  CHECK_GT(options.window, 0.0);
  for (size_t i = 0; i < curves.size(); ++i) {
    CHECK(curves[i] != nullptr);
    CHECK_GE(ages[i], 0.0);
  }

  std::vector<TimelinePoint> timeline;
  timeline.reserve(options.steps);
  for (int step = 0; step < options.steps; ++step) {
    TimelinePoint point;
    point.time = options.horizon * step / (options.steps - 1);
    point.window_failure_probabilities.reserve(curves.size());
    for (size_t i = 0; i < curves.size(); ++i) {
      const double age = ages[i] + point.time;
      point.window_failure_probabilities.push_back(
          curves[i]->FailureProbability(age, age + options.window));
    }
    const auto analyzer =
        ReliabilityAnalyzer::ForIndependentNodes(point.window_failure_probabilities);
    point.report = AnalyzeRaft(config, analyzer);
    timeline.push_back(std::move(point));
  }
  return timeline;
}

double FirstTimeBelowTarget(const std::vector<TimelinePoint>& timeline,
                            const Probability& target) {
  for (const auto& point : timeline) {
    if (point.report.safe_and_live < target) {
      return point.time;
    }
  }
  return -1.0;
}

}  // namespace probcon
