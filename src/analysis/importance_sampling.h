// Importance sampling for rare failure events.
//
// Plain Monte Carlo cannot resolve the probabilities this library reports: estimating a
// 1e-8 unsafety with 10% relative error needs ~1e10 samples. For correlated or otherwise
// non-analyzable models, the standard fix is importance sampling with failure biasing: draw
// configurations from a TILTED independent model whose per-node failure probabilities are
// inflated toward the failure region, and reweight each sample by its likelihood ratio
//
//   w(config) = P_model(config) / P_tilted(config).
//
// The estimate of P(event) is the mean of w over samples where the event holds; it is
// unbiased for ANY model that can report exact configuration probabilities, regardless of
// correlation structure, because the likelihood ratio uses the true model's density.

#ifndef PROBCON_SRC_ANALYSIS_IMPORTANCE_SAMPLING_H_
#define PROBCON_SRC_ANALYSIS_IMPORTANCE_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "src/analysis/reliability.h"
#include "src/faultmodel/joint_model.h"

namespace probcon {

struct ImportanceSamplingOptions {
  uint64_t trials = 100'000;
  uint64_t seed = 42;
  // Per-node proposal failure probabilities. Empty = auto: marginal raised to
  // max(marginal, auto_bias_floor).
  std::vector<double> proposal;
  double auto_bias_floor = 0.3;
};

struct ImportanceSamplingEstimate {
  double probability = 0.0;     // Estimated P(event).
  double standard_error = 0.0;  // Of the estimate.
  uint64_t hits = 0;            // Samples where the event held.
};

// Estimates P(predicate holds) under `model` using an independent tilted proposal.
// Requires exact configuration probabilities from the model (all bundled models provide
// them). The predicate here is the EVENT OF INTEREST (typically the rare failure event,
// e.g. "unsafe"), not its complement — bias only helps when the event lives in the
// many-failures region.
ImportanceSamplingEstimate EstimateRareEventProbability(
    const JointFailureModel& model, const FailurePredicate& predicate,
    const ImportanceSamplingOptions& options = {});

}  // namespace probcon

#endif  // PROBCON_SRC_ANALYSIS_IMPORTANCE_SAMPLING_H_
