#include "src/analysis/end_to_end.h"

#include <cmath>

#include "src/common/check.h"
#include "src/faultmodel/afr.h"

namespace probcon {

EndToEndReport ComputeEndToEnd(const EndToEndParams& params) {
  CHECK_GT(params.window_hours, 0.0);
  CHECK_GE(params.mean_time_to_recover, 0.0);
  CHECK(params.data_loss_given_violation >= 0.0 && params.data_loss_given_violation <= 1.0);
  CHECK_GT(params.mission_hours, 0.0);

  EndToEndReport report;

  // Outage arrivals: rate such that P(>=1 outage per window) equals the unliveness.
  const double unlive = params.consensus.live.complement();
  const double outage_rate = -std::log1p(-unlive) / params.window_hours;  // Per hour.
  if (params.mean_time_to_recover == 0.0 || outage_rate == 0.0) {
    // Instant recovery (or no outages): availability is only limited by liveness itself
    // being restored within the window — model as fully available.
    report.availability = outage_rate == 0.0
                              ? Probability::One()
                              : Probability::FromComplement(0.0);
  } else {
    // Alternating renewal process: unavailability = MTTR / (MTBF + MTTR), with
    // MTBF = 1 / outage_rate.
    const double mtbf = 1.0 / outage_rate;
    const double unavailability =
        params.mean_time_to_recover / (mtbf + params.mean_time_to_recover);
    report.availability = Probability::FromComplement(unavailability);
  }
  report.outage_minutes_per_year =
      report.availability.complement() * kHoursPerYear * 60.0;

  // Durability: safety incidents arrive at the unsafety rate, thinned by the probability
  // that an incident destroys data (fork preservation keeps data recoverable).
  const double unsafe = params.consensus.safe.complement();
  const double violation_rate = -std::log1p(-unsafe) / params.window_hours;
  const double loss_rate = violation_rate * params.data_loss_given_violation;
  report.mission_durability =
      Probability::FromComplement(-std::expm1(-loss_rate * params.mission_hours));
  return report;
}

}  // namespace probcon
