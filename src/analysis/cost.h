// Cost/reliability optimization (paper §1/§3: "one can run Raft on nine, less reliable nodes
// ... If these resources are 10x cheaper, this yields a 3x reduction in cost").
//
// Given a catalog of node types (failure probability per analysis window + unit price) and a
// target safe-and-live probability, find the cheapest cluster meeting the target. The search
// covers homogeneous clusters of every catalog type and, optionally, two-type mixes — enough
// to express spot-instance / old-hardware fleets.

#ifndef PROBCON_SRC_ANALYSIS_COST_H_
#define PROBCON_SRC_ANALYSIS_COST_H_

#include <string>
#include <vector>

#include "src/analysis/protocol_spec.h"
#include "src/common/status.h"
#include "src/prob/probability.h"

namespace probcon {

struct NodeType {
  std::string name;
  double failure_probability = 0.0;  // Per analysis window.
  double unit_price = 1.0;           // Arbitrary currency per window.
};

struct ClusterPlan {
  // counts[i] nodes of types[i]; parallel arrays.
  std::vector<NodeType> types;
  std::vector<int> counts;
  Probability safe_and_live;
  double total_cost = 0.0;

  int TotalNodes() const;
  std::string Describe() const;
};

struct ClusterSearchOptions {
  int min_n = 3;
  int max_n = 15;
  bool odd_sizes_only = true;  // Majority-quorum Raft gains nothing from even sizes.
  bool allow_two_type_mixes = true;
};

// Cheapest Raft cluster (standard majority quorums) whose safe-and-live probability meets
// `target`. Returns NotFoundError when nothing in the search space qualifies.
Result<ClusterPlan> CheapestRaftCluster(const std::vector<NodeType>& catalog,
                                        const Probability& target,
                                        const ClusterSearchOptions& options = {});

// Evaluates a specific mixed cluster: Raft reliability + cost.
ClusterPlan EvaluateRaftCluster(const std::vector<NodeType>& types,
                                const std::vector<int>& counts);

}  // namespace probcon

#endif  // PROBCON_SRC_ANALYSIS_COST_H_
