// Protocol quorum configurations and the safety/liveness predicates of the paper's §3.2
// theorems.
//
// Both theorems are predicates on a *failure configuration*; because they only inspect the
// number of failed/Byzantine nodes, they admit the Poisson-binomial fast path in
// reliability.h. Quorum sizes are free parameters (Flexible-Paxos style) so the analysis can
// sweep them — the paper's central "expose the safety/liveness trade-off" knob.
//
// Note on Theorem 3.1 liveness condition (1): the paper text prints |Byz| <= |Q_vc_t| - |Q_vc|,
// which is negative for every configuration in Table 1. Re-deriving from Table 1 shows the
// intended condition is |Byz| <= |Q_vc| - |Q_vc_t|; with it every published cell reproduces
// exactly (verified in tests/analysis/protocol_spec_test.cc).

#ifndef PROBCON_SRC_ANALYSIS_PROTOCOL_SPEC_H_
#define PROBCON_SRC_ANALYSIS_PROTOCOL_SPEC_H_

#include <string>

namespace probcon {

// Raft with explicit persistence (log replication) and view-change (election) quorum sizes.
// Standard Raft uses majorities for both.
struct RaftConfig {
  int n = 0;
  int q_per = 0;  // |Q_per|: votes needed to commit a log entry.
  int q_vc = 0;   // |Q_vc|: votes needed to win an election.

  // Majority quorums: q_per = q_vc = floor(n/2) + 1.
  static RaftConfig Standard(int n);

  std::string Describe() const;
};

// PBFT with explicit non-equivocation, persistence, view-change, and view-change-trigger
// quorum sizes. Standard PBFT with f = floor((n-1)/3) uses q = ceil((n+f+1)/2) for the first
// three and f+1 for the trigger.
struct PbftConfig {
  int n = 0;
  int q_eq = 0;    // |Q_eq|: prepare quorum (non-equivocation).
  int q_per = 0;   // |Q_per|: commit quorum (persistence).
  int q_vc = 0;    // |Q_vc|: new-view quorum.
  int q_vc_t = 0;  // |Q_vc_t|: view-change trigger quorum.

  static PbftConfig Standard(int n);

  std::string Describe() const;
};

// --- Theorem 3.2 (Raft) -----------------------------------------------------

// Safety is structural in CFT: it depends only on quorum sizes, not on which nodes crashed.
// Conditions: n < q_per + q_vc (persistence across views) and n < 2*q_vc (unique leader).
bool RaftIsSafeStructurally(const RaftConfig& config);

// Live iff enough correct nodes remain to form both quorums.
bool RaftIsLive(const RaftConfig& config, int correct_count);

// --- Theorem 3.1 (PBFT) -----------------------------------------------------

// Safe iff |Byz| < 2*q_eq - n (non-equivocation quorums intersect in a correct node) and
// |Byz| < q_per + q_vc - n (committed operations survive view changes).
bool PbftIsSafe(const PbftConfig& config, int byzantine_count);

// Live iff (1) |Byz| <= q_vc - q_vc_t [corrected, see header comment], (2) enough correct
// nodes remain for every quorum, and (3) |Byz| < q_vc_t (Byzantine nodes alone cannot trigger
// spurious view changes).
bool PbftIsLive(const PbftConfig& config, int byzantine_count);

}  // namespace probcon

#endif  // PROBCON_SRC_ANALYSIS_PROTOCOL_SPEC_H_
