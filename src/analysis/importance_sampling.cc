#include "src/analysis/importance_sampling.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/prob/kahan.h"

namespace probcon {

ImportanceSamplingEstimate EstimateRareEventProbability(
    const JointFailureModel& model, const FailurePredicate& predicate,
    const ImportanceSamplingOptions& options) {
  const int n = model.n();
  CHECK_GT(options.trials, 0u);

  std::vector<double> proposal = options.proposal;
  if (proposal.empty()) {
    proposal.resize(n);
    for (int i = 0; i < n; ++i) {
      proposal[i] = std::max(model.MarginalFailureProbability(i), options.auto_bias_floor);
    }
  }
  CHECK_EQ(proposal.size(), static_cast<size_t>(n));
  for (const double p : proposal) {
    CHECK(p > 0.0 && p < 1.0) << "proposal probabilities must be in (0,1) for reweighting";
  }

  Rng rng(options.seed);
  KahanSum weight_sum;
  KahanSum weight_sq_sum;
  uint64_t hits = 0;
  for (uint64_t trial = 0; trial < options.trials; ++trial) {
    // Sample from the tilted independent proposal and compute its density on the fly.
    FailureConfiguration config = 0;
    double proposal_density = 1.0;
    for (int i = 0; i < n; ++i) {
      if (rng.NextBernoulli(proposal[i])) {
        config |= FailureConfiguration{1} << i;
        proposal_density *= proposal[i];
      } else {
        proposal_density *= 1.0 - proposal[i];
      }
    }
    if (!predicate.Holds(config, n)) {
      weight_sq_sum.Add(0.0);
      continue;
    }
    const auto true_density = model.ConfigurationProbability(config);
    CHECK(true_density.has_value())
        << "importance sampling needs exact configuration probabilities from "
        << model.Describe();
    const double weight = *true_density / proposal_density;
    weight_sum.Add(weight);
    weight_sq_sum.Add(weight * weight);
    ++hits;
  }

  ImportanceSamplingEstimate estimate;
  const double trials = static_cast<double>(options.trials);
  estimate.probability = weight_sum.Total() / trials;
  const double second_moment = weight_sq_sum.Total() / trials;
  const double variance =
      std::max(0.0, second_moment - estimate.probability * estimate.probability);
  estimate.standard_error = std::sqrt(variance / trials);
  estimate.hits = hits;
  return estimate;
}

}  // namespace probcon
