#include "src/analysis/importance_sampling.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/exec/parallel.h"
#include "src/prob/kahan.h"

namespace probcon {
namespace {

// Fixed trial-chunk size; chunk c samples from Rng(DeriveStreamSeed(seed, c)) and partial
// moments merge in chunk order, so the estimate never depends on the thread count (see the
// determinism contract in src/exec and the seeding scheme in src/common/rng.h).
constexpr uint64_t kImportanceChunk = uint64_t{1} << 14;

struct WeightPartial {
  KahanSum weight_sum;
  KahanSum weight_sq_sum;
  uint64_t hits = 0;
};

}  // namespace

ImportanceSamplingEstimate EstimateRareEventProbability(
    const JointFailureModel& model, const FailurePredicate& predicate,
    const ImportanceSamplingOptions& options) {
  const int n = model.n();
  CHECK_GT(options.trials, 0u);

  std::vector<double> proposal = options.proposal;
  if (proposal.empty()) {
    proposal.resize(n);
    for (int i = 0; i < n; ++i) {
      proposal[i] = std::max(model.MarginalFailureProbability(i), options.auto_bias_floor);
    }
  }
  CHECK_EQ(proposal.size(), static_cast<size_t>(n));
  for (const double p : proposal) {
    CHECK(p > 0.0 && p < 1.0) << "proposal probabilities must be in (0,1) for reweighting";
  }

  const WeightPartial total = ParallelReduce<WeightPartial>(
      0, options.trials, kImportanceChunk, WeightPartial{},
      [&](uint64_t chunk_begin, uint64_t chunk_end, uint64_t chunk_index) {
        Rng rng(DeriveStreamSeed(options.seed, chunk_index));
        WeightPartial partial;
        for (uint64_t trial = chunk_begin; trial < chunk_end; ++trial) {
          // Sample from the tilted independent proposal and compute its density on the fly.
          FailureConfiguration config = 0;
          double proposal_density = 1.0;
          for (int i = 0; i < n; ++i) {
            if (rng.NextBernoulli(proposal[i])) {
              config |= FailureConfiguration{1} << i;
              proposal_density *= proposal[i];
            } else {
              proposal_density *= 1.0 - proposal[i];
            }
          }
          if (!predicate.Holds(config, n)) {
            partial.weight_sq_sum.Add(0.0);
            continue;
          }
          const auto true_density = model.ConfigurationProbability(config);
          CHECK(true_density.has_value())
              << "importance sampling needs exact configuration probabilities from "
              << model.Describe();
          const double weight = *true_density / proposal_density;
          partial.weight_sum.Add(weight);
          partial.weight_sq_sum.Add(weight * weight);
          ++partial.hits;
        }
        return partial;
      },
      [](WeightPartial& acc, WeightPartial&& partial) {
        acc.weight_sum.Merge(partial.weight_sum);
        acc.weight_sq_sum.Merge(partial.weight_sq_sum);
        acc.hits += partial.hits;
      });

  ImportanceSamplingEstimate estimate;
  const double trials = static_cast<double>(options.trials);
  estimate.probability = total.weight_sum.Total() / trials;
  const double second_moment = total.weight_sq_sum.Total() / trials;
  const double variance =
      std::max(0.0, second_moment - estimate.probability * estimate.probability);
  estimate.standard_error = std::sqrt(variance / trials);
  estimate.hits = total.hits;
  return estimate;
}

}  // namespace probcon
