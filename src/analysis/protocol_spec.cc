#include "src/analysis/protocol_spec.h"

#include <algorithm>
#include <sstream>

#include "src/common/check.h"

namespace probcon {
namespace {

void CheckQuorum(int q, int n, const char* name) {
  CHECK(q >= 1 && q <= n) << name << "=" << q << " invalid for n=" << n;
}

}  // namespace

RaftConfig RaftConfig::Standard(int n) {
  CHECK_GT(n, 0);
  RaftConfig config;
  config.n = n;
  config.q_per = n / 2 + 1;
  config.q_vc = n / 2 + 1;
  return config;
}

std::string RaftConfig::Describe() const {
  std::ostringstream os;
  os << "raft(n=" << n << ", q_per=" << q_per << ", q_vc=" << q_vc << ")";
  return os.str();
}

PbftConfig PbftConfig::Standard(int n) {
  CHECK_GE(n, 4) << "PBFT needs n >= 4";
  PbftConfig config;
  config.n = n;
  const int f = (n - 1) / 3;
  const int q = (n + f + 2) / 2;  // ceil((n + f + 1) / 2)
  config.q_eq = q;
  config.q_per = q;
  config.q_vc = q;
  config.q_vc_t = f + 1;
  return config;
}

std::string PbftConfig::Describe() const {
  std::ostringstream os;
  os << "pbft(n=" << n << ", q_eq=" << q_eq << ", q_per=" << q_per << ", q_vc=" << q_vc
     << ", q_vc_t=" << q_vc_t << ")";
  return os.str();
}

bool RaftIsSafeStructurally(const RaftConfig& config) {
  CheckQuorum(config.q_per, config.n, "q_per");
  CheckQuorum(config.q_vc, config.n, "q_vc");
  return config.n < config.q_per + config.q_vc && config.n < 2 * config.q_vc;
}

bool RaftIsLive(const RaftConfig& config, int correct_count) {
  CHECK(correct_count >= 0 && correct_count <= config.n);
  return correct_count >= std::max(config.q_per, config.q_vc);
}

bool PbftIsSafe(const PbftConfig& config, int byzantine_count) {
  CheckQuorum(config.q_eq, config.n, "q_eq");
  CheckQuorum(config.q_per, config.n, "q_per");
  CheckQuorum(config.q_vc, config.n, "q_vc");
  CheckQuorum(config.q_vc_t, config.n, "q_vc_t");
  CHECK(byzantine_count >= 0 && byzantine_count <= config.n);
  return byzantine_count < 2 * config.q_eq - config.n &&
         byzantine_count < config.q_per + config.q_vc - config.n;
}

bool PbftIsLive(const PbftConfig& config, int byzantine_count) {
  CHECK(byzantine_count >= 0 && byzantine_count <= config.n);
  const int correct = config.n - byzantine_count;
  const int max_quorum = std::max({config.q_eq, config.q_per, config.q_vc});
  return byzantine_count <= config.q_vc - config.q_vc_t && correct >= max_quorum &&
         byzantine_count < config.q_vc_t;
}

}  // namespace probcon
