#include "src/analysis/cost.h"

#include <numeric>
#include <sstream>

#include "src/analysis/reliability.h"
#include "src/common/check.h"
#include "src/prob/kahan.h"

namespace probcon {

int ClusterPlan::TotalNodes() const {
  return std::accumulate(counts.begin(), counts.end(), 0);
}

std::string ClusterPlan::Describe() const {
  std::ostringstream os;
  for (size_t i = 0; i < types.size(); ++i) {
    if (counts[i] == 0) {
      continue;
    }
    os << counts[i] << "x" << types[i].name << "(p=" << types[i].failure_probability << ") ";
  }
  os << "cost=" << total_cost << " S&L=" << FormatPercent(safe_and_live);
  return os.str();
}

ClusterPlan EvaluateRaftCluster(const std::vector<NodeType>& types,
                                const std::vector<int>& counts) {
  CHECK_EQ(types.size(), counts.size());
  ClusterPlan plan;
  plan.types = types;
  plan.counts = counts;

  std::vector<double> probabilities;
  KahanSum cost;
  for (size_t i = 0; i < types.size(); ++i) {
    CHECK_GE(counts[i], 0);
    for (int j = 0; j < counts[i]; ++j) {
      probabilities.push_back(types[i].failure_probability);
    }
    cost += types[i].unit_price * counts[i];
  }
  CHECK(!probabilities.empty()) << "empty cluster";
  plan.total_cost = cost.Total();

  const int n = static_cast<int>(probabilities.size());
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(std::move(probabilities));
  const auto report = AnalyzeRaft(RaftConfig::Standard(n), analyzer);
  plan.safe_and_live = report.safe_and_live;
  return plan;
}

Result<ClusterPlan> CheapestRaftCluster(const std::vector<NodeType>& catalog,
                                        const Probability& target,
                                        const ClusterSearchOptions& options) {
  CHECK(!catalog.empty());
  CHECK(options.min_n >= 1 && options.min_n <= options.max_n);

  bool found = false;
  ClusterPlan best;

  auto consider = [&](const std::vector<NodeType>& types, const std::vector<int>& counts) {
    ClusterPlan plan = EvaluateRaftCluster(types, counts);
    if (plan.safe_and_live < target) {
      return;
    }
    if (!found || plan.total_cost < best.total_cost) {
      best = std::move(plan);
      found = true;
    }
  };

  for (int n = options.min_n; n <= options.max_n; ++n) {
    if (options.odd_sizes_only && n % 2 == 0) {
      continue;
    }
    for (size_t a = 0; a < catalog.size(); ++a) {
      consider({catalog[a]}, {n});
      if (!options.allow_two_type_mixes) {
        continue;
      }
      for (size_t b = a + 1; b < catalog.size(); ++b) {
        for (int count_a = 1; count_a < n; ++count_a) {
          consider({catalog[a], catalog[b]}, {count_a, n - count_a});
        }
      }
    }
  }
  if (!found) {
    return NotFoundError("no cluster in the search space meets the reliability target");
  }
  return best;
}

}  // namespace probcon
