#include "src/analysis/placement.h"

#include <cstdint>

#include "src/common/check.h"
#include "src/exec/parallel.h"
#include "src/faultmodel/joint_model.h"

namespace probcon {
namespace {

// Decodes assignment index `index` (base-r digits, node 0 least significant — the same
// order the sequential odometer visited) into rack_of form.
std::vector<int> DecodeAssignment(uint64_t index, int n, int racks) {
  std::vector<int> assignment(static_cast<size_t>(n));
  for (int node = 0; node < n; ++node) {
    assignment[static_cast<size_t>(node)] = static_cast<int>(index % static_cast<uint64_t>(racks));
    index /= static_cast<uint64_t>(racks);
  }
  return assignment;
}

struct BestAssignment {
  Probability safe_and_live;
  uint64_t index = 0;
  bool valid = false;
};

constexpr uint64_t kPlacementChunk = 64;

}  // namespace

Probability EvaluateRackPlacement(const std::vector<double>& node_base_probabilities,
                                  const std::vector<double>& rack_probabilities,
                                  const std::vector<int>& rack_of) {
  const int n = static_cast<int>(node_base_probabilities.size());
  CHECK_EQ(rack_of.size(), node_base_probabilities.size());
  auto model = std::make_unique<FailureDomainModel>(node_base_probabilities, rack_of,
                                                    rack_probabilities);
  const ReliabilityAnalyzer analyzer(std::move(model));
  return AnalyzeRaft(RaftConfig::Standard(n), analyzer).safe_and_live;
}

PlacementResult OptimizeRackPlacement(const std::vector<double>& node_base_probabilities,
                                      const std::vector<double>& rack_probabilities) {
  const int n = static_cast<int>(node_base_probabilities.size());
  const int racks = static_cast<int>(rack_probabilities.size());
  CHECK(n >= 1 && n <= 10) << "exhaustive placement search limited to n <= 10";
  CHECK(racks >= 1 && racks <= 5) << "exhaustive placement search limited to r <= 5";

  uint64_t total = 1;
  for (int i = 0; i < n; ++i) {
    total *= static_cast<uint64_t>(racks);
  }
  // Chunked argmax over the r^n assignment space. Per-chunk winners keep the earliest
  // index among equals (strict > to replace), and chunks merge in ascending order with a
  // strict < comparison, so ties resolve to the lowest assignment index — exactly the
  // assignment the sequential odometer found first.
  const BestAssignment best = ParallelReduce<BestAssignment>(
      0, total, kPlacementChunk, BestAssignment{},
      [&](uint64_t chunk_begin, uint64_t chunk_end, uint64_t /*chunk_index*/) {
        BestAssignment chunk_best;
        for (uint64_t index = chunk_begin; index < chunk_end; ++index) {
          const Probability candidate = EvaluateRackPlacement(
              node_base_probabilities, rack_probabilities, DecodeAssignment(index, n, racks));
          if (!chunk_best.valid || chunk_best.safe_and_live < candidate) {
            chunk_best.safe_and_live = candidate;
            chunk_best.index = index;
            chunk_best.valid = true;
          }
        }
        return chunk_best;
      },
      [](BestAssignment& acc, BestAssignment&& partial) {
        if (partial.valid && (!acc.valid || acc.safe_and_live < partial.safe_and_live)) {
          acc = partial;
        }
      });
  CHECK(best.valid);
  PlacementResult result;
  result.rack_of = DecodeAssignment(best.index, n, racks);
  result.safe_and_live = best.safe_and_live;
  return result;
}

}  // namespace probcon
