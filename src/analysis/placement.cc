#include "src/analysis/placement.h"

#include "src/common/check.h"
#include "src/faultmodel/joint_model.h"

namespace probcon {

Probability EvaluateRackPlacement(const std::vector<double>& node_base_probabilities,
                                  const std::vector<double>& rack_probabilities,
                                  const std::vector<int>& rack_of) {
  const int n = static_cast<int>(node_base_probabilities.size());
  CHECK_EQ(rack_of.size(), node_base_probabilities.size());
  auto model = std::make_unique<FailureDomainModel>(node_base_probabilities, rack_of,
                                                    rack_probabilities);
  const ReliabilityAnalyzer analyzer(std::move(model));
  return AnalyzeRaft(RaftConfig::Standard(n), analyzer).safe_and_live;
}

PlacementResult OptimizeRackPlacement(const std::vector<double>& node_base_probabilities,
                                      const std::vector<double>& rack_probabilities) {
  const int n = static_cast<int>(node_base_probabilities.size());
  const int racks = static_cast<int>(rack_probabilities.size());
  CHECK(n >= 1 && n <= 10) << "exhaustive placement search limited to n <= 10";
  CHECK(racks >= 1 && racks <= 5) << "exhaustive placement search limited to r <= 5";

  PlacementResult best;
  std::vector<int> assignment(n, 0);
  bool first = true;
  while (true) {
    const Probability candidate =
        EvaluateRackPlacement(node_base_probabilities, rack_probabilities, assignment);
    if (first || best.safe_and_live < candidate) {
      best.rack_of = assignment;
      best.safe_and_live = candidate;
      first = false;
    }
    // Odometer increment over r^n assignments.
    int position = 0;
    while (position < n) {
      if (++assignment[position] < racks) {
        break;
      }
      assignment[position] = 0;
      ++position;
    }
    if (position == n) {
      break;
    }
  }
  return best;
}

}  // namespace probcon
