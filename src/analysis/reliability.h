// The reliability analyzer: computes P(predicate holds) over failure configurations of a
// cluster — the computation behind every number in the paper's §3.
//
// "By calculating how likely each failure configuration is, we can compute the overall
//  probability that an algorithm guarantees safety and liveness in this specific deployment
//  environment."  (§3)
//
// Three evaluation strategies sit behind one API (ablated in bench/perf_engine):
//
//   kExact       2^N enumeration over failure configurations. Handles predicates that depend
//                on WHICH nodes failed and any model with exact configuration probabilities.
//                Practical to N ~ 25.
//   kCountDp     Poisson-binomial dynamic program over the failure count. Requires a
//                count-only predicate and an independent model. O(N^2), any N. This covers
//                Theorems 3.1/3.2 and is the path that regenerates Tables 1 and 2.
//   kMonteCarlo  Sampling with a Wilson confidence interval. The only option for correlated
//                models without closed-form configuration probabilities, or N > 25.
//
// kAuto picks the cheapest applicable strategy.

#ifndef PROBCON_SRC_ANALYSIS_RELIABILITY_H_
#define PROBCON_SRC_ANALYSIS_RELIABILITY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "src/analysis/protocol_spec.h"
#include "src/common/cancellation.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/faultmodel/joint_model.h"
#include "src/prob/interval.h"
#include "src/prob/probability.h"

namespace probcon {

class PoissonBinomial;

// A predicate over failure configurations (true = the property, e.g. "safe", holds).
class FailurePredicate {
 public:
  virtual ~FailurePredicate() = default;

  // Evaluates the predicate for an explicit failure configuration.
  virtual bool Holds(FailureConfiguration failed, int n) const = 0;

  // If the predicate depends only on the NUMBER of failures, returns its value for that
  // count; otherwise nullopt. Enables the O(N^2) path.
  virtual std::optional<bool> HoldsForCount(int failure_count, int n) const {
    (void)failure_count;
    (void)n;
    return std::nullopt;
  }
};

// Adapts a count function; automatically eligible for the DP path.
class CountPredicate final : public FailurePredicate {
 public:
  explicit CountPredicate(std::function<bool(int failure_count, int n)> fn)
      : fn_(std::move(fn)) {}

  bool Holds(FailureConfiguration failed, int n) const override {
    return fn_(CountFailures(failed), n);
  }
  std::optional<bool> HoldsForCount(int failure_count, int n) const override {
    return fn_(failure_count, n);
  }

 private:
  std::function<bool(int, int)> fn_;
};

// Adapts a configuration function (no count fast path).
class ConfigurationPredicate final : public FailurePredicate {
 public:
  explicit ConfigurationPredicate(std::function<bool(FailureConfiguration, int)> fn)
      : fn_(std::move(fn)) {}

  bool Holds(FailureConfiguration failed, int n) const override { return fn_(failed, n); }

 private:
  std::function<bool(FailureConfiguration, int)> fn_;
};

enum class AnalysisMethod {
  kAuto,
  kExact,
  kCountDp,
  kMonteCarlo,
};

struct MonteCarloOptions {
  uint64_t trials = 1'000'000;
  // Root seed of the estimate. Trials are split into fixed-size chunks and chunk c draws
  // from Rng(DeriveStreamSeed(seed, c)) — see src/common/rng.h for the scheme — so the
  // estimate is a pure function of (model, predicate, trials, seed), independent of the
  // thread count executing it.
  uint64_t seed = 42;
  // Optional cooperative cancellation: the sampling loops poll this token every
  // kCancellationPollStride trials and the Try* APIs return kCancelled once it fires. An
  // uncancelled run performs exactly the same work in the same order, so results stay
  // bit-identical with or without a token.
  const CancelToken* cancel = nullptr;
  // Optional progress cell: completed trials are flushed into it at the same
  // kCancellationPollStride boundaries the cancel polls use (plus a final flush per
  // chunk), so an observer — the serving daemon's serve.engine.mc_trials counter — can
  // watch a long estimate advance. Purely observational; never read by the computation.
  std::atomic<uint64_t>* progress = nullptr;
};

class ReliabilityAnalyzer {
 public:
  explicit ReliabilityAnalyzer(std::unique_ptr<JointFailureModel> model);

  ReliabilityAnalyzer(ReliabilityAnalyzer&& other) noexcept;
  ReliabilityAnalyzer& operator=(ReliabilityAnalyzer&& other) noexcept;

  // Convenience: independent failures with the given per-node probabilities.
  static ReliabilityAnalyzer ForIndependentNodes(std::vector<double> failure_probabilities);
  static ReliabilityAnalyzer ForUniformNodes(int n, double p);

  const JointFailureModel& model() const { return *model_; }
  int n() const { return model_->n(); }

  // P(predicate holds), complement-tracked. CHECK-fails if no exact strategy applies (use
  // EstimateEventProbability for those cases).
  Probability EventProbability(const FailurePredicate& predicate,
                               AnalysisMethod method = AnalysisMethod::kAuto) const;

  // Monte Carlo estimate with a 95% Wilson interval; works with every model.
  ConfidenceInterval EstimateEventProbability(const FailurePredicate& predicate,
                                              const MonteCarloOptions& options = {}) const;

  // Cancellable variants, for serving contexts where an operator deadline can fire mid
  // computation: identical math and bit-identical results while the token stays unset, a
  // prompt kCancelled (work abandoned at the next poll) once it fires. `progress`, when
  // non-null, accumulates evaluated configurations (exact path) or completed trials
  // (Monte Carlo path) exactly as MonteCarloOptions::progress does.
  Result<Probability> TryEventProbability(const FailurePredicate& predicate,
                                          AnalysisMethod method = AnalysisMethod::kAuto,
                                          const CancelToken* cancel = nullptr,
                                          std::atomic<uint64_t>* progress = nullptr) const;
  Result<ConfidenceInterval> TryEstimateEventProbability(
      const FailurePredicate& predicate, const MonteCarloOptions& options = {}) const;

  // The Poisson-binomial failure-count law of the independent model, built on first use
  // and shared by every count-DP evaluation against this analyzer (AnalyzePbft evaluates
  // three predicates per report; all three hit the same table). Thread-safe; CHECK-fails
  // for non-independent models.
  const PoissonBinomial& CountLaw() const;

 private:
  std::unique_ptr<JointFailureModel> model_;
  // Lazy-init lock for the count law. LEAF: held only around the table build/lookup.
  mutable std::mutex count_law_mutex_;
  mutable std::shared_ptr<const PoissonBinomial> count_law_
      PROBCON_GUARDED_BY(count_law_mutex_);
};

// --- Paper §3.2: protocol reliability reports -------------------------------

struct ReliabilityReport {
  Probability safe;
  Probability live;
  Probability safe_and_live;
};

// Theorem 3.2 applied to `model`. Safety is structural (probability 0 or 1); liveness and
// safe&live come from the failure-count law.
ReliabilityReport AnalyzeRaft(const RaftConfig& config, const ReliabilityAnalyzer& analyzer,
                              AnalysisMethod method = AnalysisMethod::kAuto);

// Theorem 3.1 applied to `model`; failed nodes are treated as Byzantine (the paper's §3
// convention for BFT analysis).
ReliabilityReport AnalyzePbft(const PbftConfig& config, const ReliabilityAnalyzer& analyzer,
                              AnalysisMethod method = AnalysisMethod::kAuto);

// Predicate factories, exposed for custom sweeps and for the Monte Carlo cross-validation
// benches.
CountPredicate MakeRaftLivePredicate(RaftConfig config);
CountPredicate MakePbftSafePredicate(PbftConfig config);
CountPredicate MakePbftLivePredicate(PbftConfig config);
CountPredicate MakePbftSafeAndLivePredicate(PbftConfig config);

}  // namespace probcon

#endif  // PROBCON_SRC_ANALYSIS_RELIABILITY_H_
