// Rack/failure-domain placement optimization.
//
// E13 shows HOW MUCH placement matters under correlated faults; this module answers the
// operator's follow-up: given n replicas and r racks (each with its own domain-event
// probability), WHICH assignment maximizes the cluster's safe-and-live probability? Small
// clusters admit exhaustive search over assignments; the search space collapses by rack
// symmetry only when racks are identical, so we search assignments directly (r^n, pruned by
// fixing node 0's rack when racks are exchangeable is left to callers).

#ifndef PROBCON_SRC_ANALYSIS_PLACEMENT_H_
#define PROBCON_SRC_ANALYSIS_PLACEMENT_H_

#include <vector>

#include "src/analysis/reliability.h"
#include "src/prob/probability.h"

namespace probcon {

struct PlacementResult {
  std::vector<int> rack_of;  // Best assignment found: rack_of[i] for node i.
  Probability safe_and_live;
};

// Evaluates standard-quorum Raft S&L for one assignment under a FailureDomainModel built
// from `node_base_probabilities` and `rack_probabilities`.
Probability EvaluateRackPlacement(const std::vector<double>& node_base_probabilities,
                                  const std::vector<double>& rack_probabilities,
                                  const std::vector<int>& rack_of);

// Exhaustive search over all rack assignments (r^n evaluations; n <= 10, r <= 5 enforced).
PlacementResult OptimizeRackPlacement(const std::vector<double>& node_base_probabilities,
                                      const std::vector<double>& rack_probabilities);

}  // namespace probcon

#endif  // PROBCON_SRC_ANALYSIS_PLACEMENT_H_
