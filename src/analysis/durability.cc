#include "src/analysis/durability.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/prob/binomial.h"
#include "src/prob/combinatorics.h"

namespace probcon {
namespace {

double ProductOfTop(const std::vector<double>& sorted_desc, int count) {
  CHECK_LE(count, static_cast<int>(sorted_desc.size()));
  double product = 1.0;
  for (int i = 0; i < count; ++i) {
    product *= sorted_desc[i];
  }
  return product;
}

}  // namespace

Probability QuorumWipeoutProbability(const IndependentFailureModel& model, NodeSet quorum) {
  CHECK(quorum != 0) << "empty quorum";
  double product = 1.0;
  for (int i = 0; i < model.n(); ++i) {
    if ((quorum >> i) & 1u) {
      product *= model.MarginalFailureProbability(i);
    }
  }
  return Probability::FromProbability(product);
}

PlacementDurability AnalyzePlacementDurability(const IndependentFailureModel& model,
                                               int q_size) {
  CHECK(q_size >= 1 && q_size <= model.n());
  std::vector<double> probs = model.probabilities();
  std::sort(probs.begin(), probs.end(), std::greater<double>());

  PlacementDurability result;
  result.worst_case_loss = Probability::FromProbability(ProductOfTop(probs, q_size));
  std::vector<double> ascending = probs;
  std::reverse(ascending.begin(), ascending.end());
  result.best_case_loss = Probability::FromProbability(ProductOfTop(ascending, q_size));
  result.random_quorum_loss =
      Probability::FromProbability(MeanSubsetProduct(model.probabilities(), q_size));
  return result;
}

Probability WorstCaseLossWithReliableConstraint(const IndependentFailureModel& model,
                                                int q_size, NodeSet reliable_set,
                                                int min_reliable) {
  CHECK(q_size >= 1 && q_size <= model.n());
  CHECK_GE(min_reliable, 0);
  std::vector<double> reliable;
  std::vector<double> other;
  for (int i = 0; i < model.n(); ++i) {
    if ((reliable_set >> i) & 1u) {
      reliable.push_back(model.MarginalFailureProbability(i));
    } else {
      other.push_back(model.MarginalFailureProbability(i));
    }
  }
  CHECK_LE(min_reliable, static_cast<int>(reliable.size()))
      << "constraint demands more reliable nodes than exist";
  CHECK_LE(q_size - min_reliable, static_cast<int>(other.size()) +
                                      static_cast<int>(reliable.size()) - min_reliable)
      << "quorum size unsatisfiable";
  std::sort(reliable.begin(), reliable.end(), std::greater<double>());
  std::sort(other.begin(), other.end(), std::greater<double>());

  // The adversary picks j >= min_reliable members from the reliable set (highest-p first) and
  // q-j from the rest; maximize over j.
  double worst = 0.0;
  const int max_j = std::min(q_size, static_cast<int>(reliable.size()));
  for (int j = min_reliable; j <= max_j; ++j) {
    const int from_other = q_size - j;
    if (from_other < 0 || from_other > static_cast<int>(other.size())) {
      continue;
    }
    const double product = ProductOfTop(reliable, j) * ProductOfTop(other, from_other);
    worst = std::max(worst, product);
  }
  return Probability::FromProbability(worst);
}

PersistenceOverlap AnalyzePersistenceOverlap(int n, int q_per, double p) {
  CHECK(q_per >= 1 && q_per <= n);
  PersistenceOverlap overlap;
  overlap.quorum_many_failures = BinomialTailGe(n, q_per, p);
  overlap.specific_quorum_wipeout =
      Probability::FromProbability(std::pow(p, static_cast<double>(q_per)));
  return overlap;
}

double MeanSubsetProduct(const std::vector<double>& values, int q) {
  const int n = static_cast<int>(values.size());
  CHECK(q >= 0 && q <= n);
  // Elementary symmetric polynomial e_q via the standard DP, then divide by C(n, q).
  std::vector<double> e(static_cast<size_t>(q) + 1, 0.0);
  e[0] = 1.0;
  int upper = 0;
  for (const double v : values) {
    upper = std::min(upper + 1, q);
    for (int k = upper; k >= 1; --k) {
      e[k] += e[k - 1] * v;
    }
  }
  return e[q] / Choose(n, q);
}

}  // namespace probcon
