// Committee sampling analysis (paper §4: "in deployments where nodes' reliability exceeds
// application requirements, probabilistic protocols can sample committees ... to select only
// the reliable nodes").
//
// Given a fleet with per-node failure probabilities, pick a committee of size m and run
// consensus on it. This module evaluates selection strategies by the resulting Raft
// safe-and-live probability, and finds the smallest committee meeting a reliability target —
// quantifying how much smaller (cheaper, faster) a fault-curve-aware committee can be.

#ifndef PROBCON_SRC_ANALYSIS_COMMITTEE_H_
#define PROBCON_SRC_ANALYSIS_COMMITTEE_H_

#include <vector>

#include "src/common/rng.h"
#include "src/prob/probability.h"

namespace probcon {

enum class CommitteeStrategy {
  kMostReliable,   // The m lowest-failure-probability nodes.
  kRandom,         // Uniform random m nodes (what a fault-curve-oblivious sampler gets).
  kLeastReliable,  // The m highest-failure-probability nodes (adversarial baseline).
};

// Selects committee member indices from `failure_probabilities` under `strategy`. `rng` is
// required for kRandom and may be null otherwise.
std::vector<int> SelectCommittee(const std::vector<double>& failure_probabilities, int m,
                                 CommitteeStrategy strategy, Rng* rng);

// Safe-and-live probability of standard (majority-quorum) Raft run on the given committee.
Probability CommitteeRaftReliability(const std::vector<double>& failure_probabilities,
                                     const std::vector<int>& committee);

// Smallest odd committee size whose most-reliable committee meets `target`; returns -1 if
// even the full fleet misses it.
int MinCommitteeSizeForTarget(const std::vector<double>& failure_probabilities,
                              const Probability& target);

}  // namespace probcon

#endif  // PROBCON_SRC_ANALYSIS_COMMITTEE_H_
