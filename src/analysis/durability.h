// Durability / data-loss analysis (paper §3 "Raft and PBFT underutilize reliable nodes" and
// §4's 100-node persistence example).
//
// In a CFT system without reconfiguration, a committed operation lives on the nodes of the
// persistence quorum that acknowledged it; it is lost only if ALL of them fail. Which nodes
// form that quorum therefore matters enormously once nodes are heterogeneous — the paper's
// point that quorum-oblivious protocols "may persist data only on the unreliable nodes".
// This module quantifies placement policies:
//
//   worst case   the quorum happens to be the q most failure-prone nodes (what an oblivious
//                protocol cannot rule out),
//   best case    the q most reliable nodes,
//   random       expectation over uniformly random quorums,
//   constrained  worst case among quorums forced to include >= m nodes from a designated
//                reliable set (the paper's proposed fault-curve-aware fix).

#ifndef PROBCON_SRC_ANALYSIS_DURABILITY_H_
#define PROBCON_SRC_ANALYSIS_DURABILITY_H_

#include <vector>

#include "src/faultmodel/joint_model.h"
#include "src/prob/probability.h"
#include "src/quorum/quorum_system.h"

namespace probcon {

// P(all members of `quorum` fail) under independent failures — the wipeout probability of
// data persisted on exactly that quorum.
Probability QuorumWipeoutProbability(const IndependentFailureModel& model, NodeSet quorum);

struct PlacementDurability {
  Probability worst_case_loss;
  Probability best_case_loss;
  Probability random_quorum_loss;  // Mean over all C(n, q) quorums.
};

// Wipeout probabilities for quorums of size `q_size` under the three placement policies.
PlacementDurability AnalyzePlacementDurability(const IndependentFailureModel& model,
                                               int q_size);

// Worst-case wipeout among quorums of size `q_size` that contain at least `min_reliable`
// members of `reliable_set`. The adversary maximizes the loss product subject to the
// constraint.
Probability WorstCaseLossWithReliableConstraint(const IndependentFailureModel& model,
                                                int q_size, NodeSet reliable_set,
                                                int min_reliable);

// --- §4's persistence-overlap example ---------------------------------------

struct PersistenceOverlap {
  // P(at least q_per of the n nodes fail) — "a q_per-sized set of failures occurs".
  Probability quorum_many_failures;
  // P(the failures wipe out one SPECIFIC persistence quorum) = p^q_per.
  Probability specific_quorum_wipeout;
};

// The paper's example: n=100, q_per=10, p=10% gives ~50% for the first and ~1e-10 for the
// second — f-threshold reasoning treats both as "unsafe".
PersistenceOverlap AnalyzePersistenceOverlap(int n, int q_per, double p);

// Elementary symmetric mean: average of prod_{i in Q} p_i over all size-q subsets Q. Exposed
// for tests; it is the "random placement" computation.
double MeanSubsetProduct(const std::vector<double>& values, int q);

}  // namespace probcon

#endif  // PROBCON_SRC_ANALYSIS_DURABILITY_H_
