// Synthetic fleet telemetry (substitution for Backblaze drive stats / Google-Meta SDC fleet
// data / Azure spot-eviction traces — see DESIGN.md).
//
// The generator produces the raw material the paper says fault curves should be computed
// from: per-device lifetime observations (left-truncated, right-censored) drawn from
// parameterized ground-truth curves with cohort heterogeneity, plus spot-instance eviction
// traces with time-of-day structure and correlated shock schedules. Estimators in
// src/faultmodel/estimator.h then recover the curves — experiment E11 measures how well.

#ifndef PROBCON_SRC_TELEMETRY_FLEET_GENERATOR_H_
#define PROBCON_SRC_TELEMETRY_FLEET_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/faultmodel/estimator.h"
#include "src/faultmodel/fault_curve.h"

namespace probcon {

// A homogeneous group of devices sharing a ground-truth fault curve.
struct DeviceCohort {
  std::string model;
  int count = 0;
  std::shared_ptr<const FaultCurve> curve;  // Ground truth.
  // Devices enter monitoring at an age uniform in [0, max_entry_age] (vintage spread).
  double max_entry_age = 0.0;
};

class FleetGenerator {
 public:
  explicit FleetGenerator(uint64_t seed);

  // Simulates `observation_window` hours of monitoring for every device in the cohort.
  // A device entering at age a is observed until it fails or the window ends (censored).
  std::vector<LifetimeObservation> GenerateObservations(const DeviceCohort& cohort,
                                                        double observation_window);

  // A drive-stats-like fleet: four cohorts spanning AFR ~0.5%..4%, one with pronounced
  // infant mortality and one in wear-out — the heterogeneity §2 documents.
  static std::vector<DeviceCohort> SyntheticDriveStatsFleet();

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

// --- Spot-instance evictions -------------------------------------------------

// Eviction times over [0, duration_hours] from a base rate plus diurnal peaks (evictions
// cluster at capacity-crunch hours, per the Azure spot studies the paper cites).
std::vector<double> GenerateSpotEvictionTrace(Rng& rng, double duration_hours,
                                              double base_rate_per_hour,
                                              double peak_multiplier);

// Empirical probability that an instance alive at a uniformly random time survives the next
// `window` hours, estimated from the trace (events are fleet-wide; per-instance exposure is
// `instances`).
double EmpiricalEvictionProbability(const std::vector<double>& trace, double duration_hours,
                                    int instances, double window);

// --- Correlated shocks --------------------------------------------------------

struct CorrelatedShock {
  double when = 0.0;
  std::vector<int> victims;
};

// Poisson(rate) shock arrivals over [0, duration]; each shock independently hits each of the
// n nodes with probability `hit_probability` (a rollout or platform CVE).
std::vector<CorrelatedShock> GenerateShockSchedule(Rng& rng, double duration, double rate,
                                                   int n, double hit_probability);

}  // namespace probcon

#endif  // PROBCON_SRC_TELEMETRY_FLEET_GENERATOR_H_
