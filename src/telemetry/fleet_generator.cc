#include "src/telemetry/fleet_generator.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/faultmodel/afr.h"

namespace probcon {

FleetGenerator::FleetGenerator(uint64_t seed) : rng_(seed) {}

std::vector<LifetimeObservation> FleetGenerator::GenerateObservations(
    const DeviceCohort& cohort, double observation_window) {
  CHECK_GT(cohort.count, 0);
  CHECK(cohort.curve != nullptr);
  CHECK_GT(observation_window, 0.0);
  std::vector<LifetimeObservation> observations;
  observations.reserve(cohort.count);
  for (int device = 0; device < cohort.count; ++device) {
    LifetimeObservation obs;
    obs.entry_age = cohort.max_entry_age * rng_.NextDouble();
    const double failure_age =
        cohort.curve->SampleFailureAge(obs.entry_age, rng_.NextDouble());
    const double window_end = obs.entry_age + observation_window;
    if (failure_age <= window_end) {
      obs.exit_age = failure_age;
      obs.failed = true;
    } else {
      obs.exit_age = window_end;
      obs.failed = false;
    }
    observations.push_back(obs);
  }
  return observations;
}

std::vector<DeviceCohort> FleetGenerator::SyntheticDriveStatsFleet() {
  std::vector<DeviceCohort> fleet;
  // AFR 0.5%: mature enterprise drives, memoryless in their useful-life phase.
  fleet.push_back({"hms5c4040", 4000,
                   std::make_shared<ConstantFaultCurve>(RateFromAfr(0.005)), 2000.0});
  // AFR ~1.5%: consumer drives.
  fleet.push_back({"st4000dm000", 8000,
                   std::make_shared<ConstantFaultCurve>(RateFromAfr(0.015)), 2000.0});
  // Infant-mortality cohort: Weibull shape < 1, high early hazard that settles.
  fleet.push_back({"wd60efrx-new", 3000,
                   std::make_shared<WeibullFaultCurve>(/*shape=*/0.6, /*scale=*/4.0e5), 0.0});
  // Wear-out cohort: old drives entering the bathtub's far wall (shape > 1), observed late.
  fleet.push_back({"st3000dm001-aged", 2000,
                   std::make_shared<WeibullFaultCurve>(/*shape=*/3.0, /*scale=*/6.0e4),
                   30000.0});
  return fleet;
}

std::vector<double> GenerateSpotEvictionTrace(Rng& rng, double duration_hours,
                                              double base_rate_per_hour,
                                              double peak_multiplier) {
  CHECK_GT(duration_hours, 0.0);
  CHECK_GT(base_rate_per_hour, 0.0);
  CHECK_GE(peak_multiplier, 1.0);
  // Thinning algorithm for an inhomogeneous Poisson process whose rate peaks twice a day
  // (business-hours capacity pressure).
  const double max_rate = base_rate_per_hour * peak_multiplier;
  std::vector<double> events;
  double t = 0.0;
  while (true) {
    t += rng.NextExponential(max_rate);
    if (t > duration_hours) {
      break;
    }
    const double hour_of_day = std::fmod(t, 24.0);
    // Two smooth peaks at 10:00 and 19:00.
    const double peak =
        std::exp(-0.5 * std::pow((hour_of_day - 10.0) / 2.0, 2.0)) +
        std::exp(-0.5 * std::pow((hour_of_day - 19.0) / 2.0, 2.0));
    const double rate = base_rate_per_hour * (1.0 + (peak_multiplier - 1.0) * peak);
    if (rng.NextDouble() < rate / max_rate) {
      events.push_back(t);
    }
  }
  return events;
}

double EmpiricalEvictionProbability(const std::vector<double>& trace, double duration_hours,
                                    int instances, double window) {
  CHECK_GT(duration_hours, 0.0);
  CHECK_GT(instances, 0);
  CHECK(window > 0.0 && window <= duration_hours);
  // Fleet-wide event rate -> per-instance exponential approximation over the window.
  const double per_instance_rate =
      static_cast<double>(trace.size()) / (duration_hours * static_cast<double>(instances));
  return -std::expm1(-per_instance_rate * window);
}

std::vector<CorrelatedShock> GenerateShockSchedule(Rng& rng, double duration, double rate,
                                                   int n, double hit_probability) {
  CHECK_GT(duration, 0.0);
  CHECK_GT(rate, 0.0);
  CHECK_GT(n, 0);
  CHECK(hit_probability >= 0.0 && hit_probability <= 1.0);
  std::vector<CorrelatedShock> shocks;
  double t = 0.0;
  while (true) {
    t += rng.NextExponential(rate);
    if (t > duration) {
      break;
    }
    CorrelatedShock shock;
    shock.when = t;
    for (int node = 0; node < n; ++node) {
      if (rng.NextBernoulli(hit_probability)) {
        shock.victims.push_back(node);
      }
    }
    if (!shock.victims.empty()) {
      shocks.push_back(std::move(shock));
    }
  }
  return shocks;
}

}  // namespace probcon
