// Birth-death repair models for replicated clusters — the consensus analogue of the RAID
// MTTDL computation the paper holds up as the storage community's standard practice, and of
// Zorfu's "mean time to more than f failures" analysis (§5).
//
// State k = number of currently failed nodes. Failures arrive at rate (n-k) * lambda; repairs
// complete at rate min(k, repair_servers) * mu. Metrics:
//
//   MeanTimeToUnavailability  expected time until fewer than `quorum` nodes are alive
//                             (liveness outage; MTTF in storage terms)
//   MeanTimeToQuorumLoss      expected time until `loss_threshold` nodes are simultaneously
//                             down — the conservative count-level proxy for data loss
//                             (MTTDL); identity-aware placement refinements live in
//                             src/analysis/durability.h
//   SteadyStateAvailability   long-run fraction of time a quorum is up, with repairs
//   UnavailabilityWithin(t)   probability of hitting the outage state within a mission time

#ifndef PROBCON_SRC_MARKOV_REPAIR_MODEL_H_
#define PROBCON_SRC_MARKOV_REPAIR_MODEL_H_

#include "src/common/status.h"
#include "src/markov/ctmc.h"
#include "src/prob/probability.h"

namespace probcon {

struct RepairModelParams {
  int n = 0;                 // Cluster size.
  double failure_rate = 0.0; // Per-node lambda (per hour).
  double repair_rate = 0.0;  // Per-repair mu (per hour); 0 disables repair.
  int repair_servers = 1;    // Concurrent repairs (min(k, servers) * mu).
};

class ConsensusRepairModel {
 public:
  explicit ConsensusRepairModel(const RepairModelParams& params);

  const RepairModelParams& params() const { return params_; }

  // Expected time, from all-up, until alive < quorum_size.
  Result<double> MeanTimeToUnavailability(int quorum_size) const;

  // Expected time, from all-up, until `loss_threshold` nodes are simultaneously failed.
  Result<double> MeanTimeToQuorumLoss(int loss_threshold) const;

  // Long-run P(alive >= quorum_size) in the chain WITH repair from every state (no
  // absorption).
  Result<Probability> SteadyStateAvailability(int quorum_size) const;

  // P(an outage [alive < quorum_size] happens within mission time t), treating the outage
  // state as absorbing.
  Probability UnavailabilityWithin(int quorum_size, double t) const;

 private:
  // Chain over failure counts 0..n; `absorb_at` (if in [0, n]) truncates transitions out of
  // that state, making it absorbing.
  Ctmc BuildChain(int absorb_at) const;

  RepairModelParams params_;
};

}  // namespace probcon

#endif  // PROBCON_SRC_MARKOV_REPAIR_MODEL_H_
