#include "src/markov/repair_model.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/prob/kahan.h"

namespace probcon {

ConsensusRepairModel::ConsensusRepairModel(const RepairModelParams& params) : params_(params) {
  CHECK_GT(params.n, 0);
  CHECK_GT(params.failure_rate, 0.0);
  CHECK_GE(params.repair_rate, 0.0);
  CHECK_GE(params.repair_servers, 1);
}

Ctmc ConsensusRepairModel::BuildChain(int absorb_at) const {
  Ctmc chain(params_.n + 1);
  for (int k = 0; k <= params_.n; ++k) {
    if (k == absorb_at) {
      continue;  // Absorbing: no outgoing transitions.
    }
    if (k < params_.n) {
      chain.AddTransition(k, k + 1, static_cast<double>(params_.n - k) * params_.failure_rate);
    }
    if (k > 0 && params_.repair_rate > 0.0) {
      const int busy = std::min(k, params_.repair_servers);
      chain.AddTransition(k, k - 1, static_cast<double>(busy) * params_.repair_rate);
    }
  }
  return chain;
}

Result<double> ConsensusRepairModel::MeanTimeToUnavailability(int quorum_size) const {
  CHECK(quorum_size >= 1 && quorum_size <= params_.n);
  // Outage when alive < quorum_size, i.e. failed > n - quorum_size; first entry is at
  // failed == n - quorum_size + 1.
  const int outage = params_.n - quorum_size + 1;
  return MeanTimeToQuorumLoss(outage);
}

Result<double> ConsensusRepairModel::MeanTimeToQuorumLoss(int loss_threshold) const {
  CHECK(loss_threshold >= 1 && loss_threshold <= params_.n);
  const Ctmc chain = BuildChain(loss_threshold);
  return chain.MeanTimeToAbsorption(0, {loss_threshold});
}

Result<Probability> ConsensusRepairModel::SteadyStateAvailability(int quorum_size) const {
  CHECK(quorum_size >= 1 && quorum_size <= params_.n);
  if (params_.repair_rate == 0.0) {
    // Without repair the chain drifts to all-failed; availability is 0 in the long run.
    return Probability::Zero();
  }
  const Ctmc chain = BuildChain(/*absorb_at=*/-1);
  auto steady = chain.SteadyState();
  if (!steady.ok()) {
    return steady.status();
  }
  // P(failed > n - quorum_size) is the small side; accumulate it.
  KahanSum down_mass;
  for (int k = params_.n - quorum_size + 1; k <= params_.n; ++k) {
    down_mass.Add((*steady)[k]);
  }
  return Probability::FromComplement(std::max(0.0, down_mass.Total()));
}

Probability ConsensusRepairModel::UnavailabilityWithin(int quorum_size, double t) const {
  CHECK(quorum_size >= 1 && quorum_size <= params_.n);
  const int outage = params_.n - quorum_size + 1;
  const Ctmc chain = BuildChain(outage);
  Vector initial(static_cast<size_t>(params_.n) + 1, 0.0);
  initial[0] = 1.0;
  const Vector at_t = chain.TransientDistribution(initial, t);
  return Probability::FromProbability(std::min(1.0, std::max(0.0, at_t[outage])));
}

}  // namespace probcon
