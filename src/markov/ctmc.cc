#include "src/markov/ctmc.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "src/common/check.h"

namespace probcon {

Ctmc::Ctmc(int state_count) : state_count_(state_count) {
  CHECK_GT(state_count, 0);
}

void Ctmc::AddTransition(int from, int to, double rate) {
  CHECK(from >= 0 && from < state_count_);
  CHECK(to >= 0 && to < state_count_);
  CHECK_NE(from, to);
  CHECK_GT(rate, 0.0);
  transitions_.push_back({from, to, rate});
}

Matrix Ctmc::Generator() const {
  Matrix q(state_count_, state_count_);
  for (const auto& t : transitions_) {
    q.At(t.from, t.to) += t.rate;
    q.At(t.from, t.from) -= t.rate;
  }
  return q;
}

Result<Vector> Ctmc::SteadyState() const { return TrySteadyState({}); }

Result<Vector> Ctmc::TrySteadyState(const CtmcSolveOptions& options) const {
  // Solve pi Q = 0 with normalization: replace the last column of Q^T's system with the
  // all-ones constraint.
  if (IsCancelled(options.cancel)) {
    return CancelledError("steady-state solve cancelled");
  }
  const Matrix q = Generator();
  Matrix a(state_count_, state_count_);
  Vector b(state_count_, 0.0);
  for (size_t r = 0; r < static_cast<size_t>(state_count_); ++r) {
    for (size_t c = 0; c < static_cast<size_t>(state_count_); ++c) {
      a.At(r, c) = q.At(c, r);  // Q^T pi = 0.
    }
  }
  // Overwrite the last balance equation with sum(pi) = 1.
  for (size_t c = 0; c < static_cast<size_t>(state_count_); ++c) {
    a.At(state_count_ - 1, c) = 1.0;
  }
  b[state_count_ - 1] = 1.0;

  auto solved = SolveLinearSystem(a, b);
  if (!solved.ok()) {
    return Status(StatusCode::kFailedPrecondition,
                  "steady state undefined (reducible or absorbing chain)");
  }
  for (double& x : *solved) {
    x = std::max(0.0, x);  // Clip tiny negative round-off.
  }
  if (options.progress != nullptr) {
    options.progress->fetch_add(1, std::memory_order_relaxed);
  }
  return solved;
}

std::vector<bool> Ctmc::ReachableTransientStates(int start,
                                                 const std::vector<bool>& is_absorbing) const {
  // BFS from `start` over non-absorbing states; unreachable transient states (e.g. failure
  // counts beyond an absorbing threshold) must not enter the linear system — they often have
  // no outgoing transitions and would make it singular.
  std::vector<bool> reachable(state_count_, false);
  std::vector<int> frontier;
  if (!is_absorbing[start]) {
    reachable[start] = true;
    frontier.push_back(start);
  }
  while (!frontier.empty()) {
    const int state = frontier.back();
    frontier.pop_back();
    for (const auto& t : transitions_) {
      if (t.from == state && !is_absorbing[t.to] && !reachable[t.to]) {
        reachable[t.to] = true;
        frontier.push_back(t.to);
      }
    }
  }
  return reachable;
}

Result<double> Ctmc::MeanTimeToAbsorption(int start,
                                          const std::vector<int>& absorbing) const {
  return TryMeanTimeToAbsorption(start, absorbing, {});
}

Result<double> Ctmc::TryMeanTimeToAbsorption(int start, const std::vector<int>& absorbing,
                                             const CtmcSolveOptions& options) const {
  CHECK(start >= 0 && start < state_count_);
  if (IsCancelled(options.cancel)) {
    return CancelledError("mean-time-to-absorption solve cancelled");
  }
  std::vector<bool> is_absorbing(state_count_, false);
  for (const int s : absorbing) {
    CHECK(s >= 0 && s < state_count_);
    is_absorbing[s] = true;
  }
  if (is_absorbing[start]) {
    return 0.0;
  }
  // Index the transient states reachable from `start`.
  const std::vector<bool> reachable = ReachableTransientStates(start, is_absorbing);
  std::vector<int> transient_index(state_count_, -1);
  std::vector<int> transient_states;
  for (int s = 0; s < state_count_; ++s) {
    if (!is_absorbing[s] && reachable[s]) {
      transient_index[s] = static_cast<int>(transient_states.size());
      transient_states.push_back(s);
    }
  }
  const size_t m = transient_states.size();
  // Solve (-Q_TT) t = 1.
  Matrix a(m, m);
  for (const auto& t : transitions_) {
    if (is_absorbing[t.from] || !reachable[t.from]) {
      continue;
    }
    const int r = transient_index[t.from];
    a.At(r, r) += t.rate;
    if (!is_absorbing[t.to]) {
      a.At(r, transient_index[t.to]) -= t.rate;
    }
  }
  Vector ones(m, 1.0);
  auto solved = SolveLinearSystem(a, ones);
  if (!solved.ok()) {
    return Status(StatusCode::kFailedPrecondition,
                  "absorption is not certain from the start state");
  }
  if (options.progress != nullptr) {
    options.progress->fetch_add(1, std::memory_order_relaxed);
  }
  return (*solved)[transient_index[start]];
}

Result<Vector> Ctmc::AbsorptionProbabilities(int start,
                                             const std::vector<int>& absorbing) const {
  CHECK(start >= 0 && start < state_count_);
  CHECK(!absorbing.empty());
  std::vector<int> absorbing_index(state_count_, -1);
  for (size_t i = 0; i < absorbing.size(); ++i) {
    CHECK(absorbing[i] >= 0 && absorbing[i] < state_count_);
    absorbing_index[absorbing[i]] = static_cast<int>(i);
  }
  if (absorbing_index[start] >= 0) {
    Vector result(absorbing.size(), 0.0);
    result[absorbing_index[start]] = 1.0;
    return result;
  }
  std::vector<bool> is_absorbing(state_count_, false);
  for (const int s : absorbing) {
    is_absorbing[s] = true;
  }
  const std::vector<bool> reachable = ReachableTransientStates(start, is_absorbing);
  std::vector<int> transient_index(state_count_, -1);
  std::vector<int> transient_states;
  for (int s = 0; s < state_count_; ++s) {
    if (absorbing_index[s] < 0 && reachable[s]) {
      transient_index[s] = static_cast<int>(transient_states.size());
      transient_states.push_back(s);
    }
  }
  const size_t m = transient_states.size();
  // For each absorbing target j: (-Q_TT) h = R[:, j] where R are transient->absorbing rates.
  Matrix a(m, m);
  Matrix r_block(m, absorbing.size());
  for (const auto& t : transitions_) {
    if (absorbing_index[t.from] >= 0 || !reachable[t.from]) {
      continue;
    }
    const int r = transient_index[t.from];
    a.At(r, r) += t.rate;
    if (absorbing_index[t.to] >= 0) {
      r_block.At(r, absorbing_index[t.to]) += t.rate;
    } else {
      a.At(r, transient_index[t.to]) -= t.rate;
    }
  }
  auto lu = LuDecomposition::Factor(a);
  if (!lu.ok()) {
    return Status(StatusCode::kFailedPrecondition,
                  "absorption is not certain from the start state");
  }
  Vector result(absorbing.size(), 0.0);
  for (size_t j = 0; j < absorbing.size(); ++j) {
    Vector rhs(m, 0.0);
    for (size_t i = 0; i < m; ++i) {
      rhs[i] = r_block.At(i, j);
    }
    const Vector h = lu->Solve(rhs);
    result[j] = h[transient_index[start]];
  }
  return result;
}

Vector Ctmc::TransientDistribution(const Vector& initial, double t) const {
  auto result = TryTransientDistribution(initial, t, {});
  CHECK(result.ok());
  return *std::move(result);
}

Result<Vector> Ctmc::TryTransientDistribution(const Vector& initial, double t,
                                              const CtmcSolveOptions& options) const {
  CHECK_EQ(initial.size(), static_cast<size_t>(state_count_));
  CHECK_GE(t, 0.0);
  const Matrix q = Generator();
  double uniform_rate = 0.0;
  for (int s = 0; s < state_count_; ++s) {
    uniform_rate = std::max(uniform_rate, -q.At(s, s));
  }
  // Degenerate uniformization rate: a chain with no transitions (or where every state's
  // outgoing rate is zero) never leaves its initial distribution. Return it unchanged —
  // the general path would divide by uniform_rate below.
  if (uniform_rate == 0.0 || t == 0.0) {
    return initial;
  }
  uniform_rate *= 1.02;  // Slack keeps the DTMC strictly substochastic on the diagonal.

  // P = I + Q / uniform_rate; distribution = sum_k Poisson(uniform_rate * t; k) * initial P^k.
  Matrix p = Matrix::Identity(state_count_) + q.Scaled(1.0 / uniform_rate);
  const double poisson_mean = uniform_rate * t;

  // Terms needed grows as Lambda*t + O(sqrt(Lambda*t)); beyond ~1e9 the solve would spin
  // for hours (and the old int cast of the bound overflowed). Refuse instead.
  constexpr double kMaxUniformizationTerms = 1e9;
  const double term_bound = poisson_mean + 12.0 * std::sqrt(poisson_mean) + 50.0;
  if (!(term_bound < kMaxUniformizationTerms)) {
    return Status(StatusCode::kFailedPrecondition,
                  "transient horizon too large for uniformization (rate * t over 1e9)");
  }

  Vector current = initial;  // initial * P^k, built incrementally (row vector convention).
  Vector result(state_count_, 0.0);
  // Poisson pmf computed iteratively in linear space with scaling guard.
  double log_pmf = -poisson_mean;  // log pmf at k = 0.
  double cumulative = 0.0;
  const int64_t max_terms = static_cast<int64_t>(term_bound);
  uint64_t unflushed_steps = 0;
  for (int64_t k = 0; k <= max_terms; ++k) {
    // Each term costs an O(m^2) matrix-vector product, so a per-term poll is already far
    // coarser than kCancellationPollStride relative to the work done.
    if (IsCancelled(options.cancel)) {
      if (options.progress != nullptr && unflushed_steps > 0) {
        options.progress->fetch_add(unflushed_steps, std::memory_order_relaxed);
      }
      return CancelledError("transient-distribution solve cancelled");
    }
    if (options.progress != nullptr &&
        ++unflushed_steps == kCancellationPollStride) {
      options.progress->fetch_add(unflushed_steps, std::memory_order_relaxed);
      unflushed_steps = 0;
    }
    const double pmf = std::exp(log_pmf);
    for (int s = 0; s < state_count_; ++s) {
      result[s] += pmf * current[s];
    }
    cumulative += pmf;
    if (cumulative > 1.0 - 1e-12) {
      break;
    }
    // Advance: current = current * P (row-vector times matrix).
    Vector next(state_count_, 0.0);
    for (int r = 0; r < state_count_; ++r) {
      const double value = current[r];
      if (value == 0.0) {
        continue;
      }
      for (int c = 0; c < state_count_; ++c) {
        next[c] += value * p.At(r, c);
      }
    }
    current = std::move(next);
    log_pmf += std::log(poisson_mean) - std::log(static_cast<double>(k) + 1.0);
  }
  if (options.progress != nullptr && unflushed_steps > 0) {
    options.progress->fetch_add(unflushed_steps, std::memory_order_relaxed);
  }
  // Renormalize the truncation remainder.
  double total = 0.0;
  for (const double x : result) {
    total += x;
  }
  if (total > 0.0) {
    for (double& x : result) {
      x /= total;
    }
  }
  return result;
}

}  // namespace probcon
