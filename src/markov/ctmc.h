// Continuous-time Markov chains — the modeling substrate the storage community uses for
// MTTF/MTTDL/MTBF (paper §2: "The storage community relies on Markov models of their system
// to quantify metrics like MTTF, MTBF, and MTTDL").
//
// States are dense integers. Transitions carry rates (per unit time). Provided solvers:
//   * SteadyState            pi Q = 0, sum(pi) = 1          (long-run state occupancy)
//   * MeanTimeToAbsorption   (-Q_TT) t = 1 on transient set (expected hitting time)
//   * AbsorptionProbabilities which absorbing state is hit first
//   * TransientDistribution  e^{Qt} via uniformization      (probability at finite horizon)

#ifndef PROBCON_SRC_MARKOV_CTMC_H_
#define PROBCON_SRC_MARKOV_CTMC_H_

#include <vector>

#include "src/common/status.h"
#include "src/linalg/matrix.h"

namespace probcon {

class Ctmc {
 public:
  explicit Ctmc(int state_count);

  int state_count() const { return state_count_; }

  // Adds a transition `from` -> `to` with the given rate (> 0). Accumulates if called twice
  // for the same pair.
  void AddTransition(int from, int to, double rate);

  // Generator matrix Q (off-diagonal rates, diagonal = -row sum).
  Matrix Generator() const;

  // Long-run occupancy distribution. Fails if the chain is reducible in a way that makes the
  // balance system singular (e.g. it has absorbing states).
  Result<Vector> SteadyState() const;

  // Expected time to reach any state in `absorbing`, starting from `start`. States in
  // `absorbing` have their outgoing transitions ignored. Fails if absorption is not certain
  // from `start`.
  Result<double> MeanTimeToAbsorption(int start, const std::vector<int>& absorbing) const;

  // Probability that, starting from `start`, the chain is absorbed in each of `absorbing`
  // (same order as given). Requires eventual absorption.
  Result<Vector> AbsorptionProbabilities(int start, const std::vector<int>& absorbing) const;

  // Distribution at time `t` starting from `initial`, via uniformization with truncation
  // error below 1e-12.
  Vector TransientDistribution(const Vector& initial, double t) const;

 private:
  struct Transition {
    int from;
    int to;
    double rate;
  };

  // Marks the non-absorbing states reachable from `start` without passing through an
  // absorbing state.
  std::vector<bool> ReachableTransientStates(int start,
                                             const std::vector<bool>& is_absorbing) const;

  int state_count_;
  std::vector<Transition> transitions_;
};

}  // namespace probcon

#endif  // PROBCON_SRC_MARKOV_CTMC_H_
