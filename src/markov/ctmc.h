// Continuous-time Markov chains — the modeling substrate the storage community uses for
// MTTF/MTTDL/MTBF (paper §2: "The storage community relies on Markov models of their system
// to quantify metrics like MTTF, MTBF, and MTTDL").
//
// States are dense integers. Transitions carry rates (per unit time). Provided solvers:
//   * SteadyState            pi Q = 0, sum(pi) = 1          (long-run state occupancy)
//   * MeanTimeToAbsorption   (-Q_TT) t = 1 on transient set (expected hitting time)
//   * AbsorptionProbabilities which absorbing state is hit first
//   * TransientDistribution  e^{Qt} via uniformization      (probability at finite horizon)

#ifndef PROBCON_SRC_MARKOV_CTMC_H_
#define PROBCON_SRC_MARKOV_CTMC_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/cancellation.h"
#include "src/common/status.h"
#include "src/linalg/matrix.h"

namespace probcon {

// Options shared by the cancellable Try* solvers. Serving contexts pass the request's
// CancelToken so an operator deadline can abandon a long solve at the next poll, and a
// progress cell wired to the daemon's serve.engine.ctmc_steps counter. The uniformization
// loop polls per Poisson term (each term is an O(m^2) matrix-vector product); the direct
// solvers poll once before factoring, which is enough because lifecycle callers cap state
// counts so a single factorization stays sub-second. Results are bit-identical with or
// without a token — cancellation only decides whether the work runs, never what it computes.
struct CtmcSolveOptions {
  const CancelToken* cancel = nullptr;
  // Accumulates solver steps: one per Poisson term (uniformization) or per factored system
  // (direct solves). Purely observational.
  std::atomic<uint64_t>* progress = nullptr;
};

class Ctmc {
 public:
  explicit Ctmc(int state_count);

  int state_count() const { return state_count_; }

  // Adds a transition `from` -> `to` with the given rate (> 0). Accumulates if called twice
  // for the same pair.
  void AddTransition(int from, int to, double rate);

  // Generator matrix Q (off-diagonal rates, diagonal = -row sum).
  Matrix Generator() const;

  // Long-run occupancy distribution. Fails if the chain is reducible in a way that makes the
  // balance system singular (e.g. it has absorbing states).
  Result<Vector> SteadyState() const;

  // Expected time to reach any state in `absorbing`, starting from `start`. States in
  // `absorbing` have their outgoing transitions ignored. Fails if absorption is not certain
  // from `start`.
  Result<double> MeanTimeToAbsorption(int start, const std::vector<int>& absorbing) const;

  // Probability that, starting from `start`, the chain is absorbed in each of `absorbing`
  // (same order as given). Requires eventual absorption.
  Result<Vector> AbsorptionProbabilities(int start, const std::vector<int>& absorbing) const;

  // Distribution at time `t` starting from `initial`, via uniformization with truncation
  // error below 1e-12. A chain with no transitions (or one whose reachable states all have
  // zero outgoing rate) has a degenerate uniformization rate; the distribution is then the
  // initial one and is returned unchanged rather than dividing by zero.
  Vector TransientDistribution(const Vector& initial, double t) const;

  // Cancellable variants of the solvers above: identical math and bit-identical results
  // while the token stays unset, kCancelled once it fires. TryTransientDistribution
  // additionally rejects horizons whose uniformization would need more than ~1e9 Poisson
  // terms (kFailedPrecondition) instead of looping for hours.
  Result<Vector> TrySteadyState(const CtmcSolveOptions& options) const;
  Result<double> TryMeanTimeToAbsorption(int start, const std::vector<int>& absorbing,
                                         const CtmcSolveOptions& options) const;
  Result<Vector> TryTransientDistribution(const Vector& initial, double t,
                                          const CtmcSolveOptions& options) const;

 private:
  struct Transition {
    int from;
    int to;
    double rate;
  };

  // Marks the non-absorbing states reachable from `start` without passing through an
  // absorbing state.
  std::vector<bool> ReachableTransientStates(int start,
                                             const std::vector<bool>& is_absorbing) const;

  int state_count_;
  std::vector<Transition> transitions_;
};

}  // namespace probcon

#endif  // PROBCON_SRC_MARKOV_CTMC_H_
