#include "src/probnative/leader_selector.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"

namespace probcon {

LeaderSelector::LeaderSelector(std::vector<const FaultCurve*> curves,
                               std::vector<double> node_ages)
    : curves_(std::move(curves)), node_ages_(std::move(node_ages)) {
  CHECK(!curves_.empty());
  CHECK_EQ(curves_.size(), node_ages_.size());
  for (size_t i = 0; i < curves_.size(); ++i) {
    CHECK(curves_[i] != nullptr);
    CHECK_GE(node_ages_[i], 0.0);
  }
}

double LeaderSelector::FailureProbability(int node, double horizon) const {
  CHECK(node >= 0 && node < n());
  CHECK_GT(horizon, 0.0);
  return curves_[node]->FailureProbability(node_ages_[node], node_ages_[node] + horizon);
}

int LeaderSelector::SelectMostReliable(double horizon) const {
  return RankByReliability(horizon).front();
}

std::vector<int> LeaderSelector::RankByReliability(double horizon) const {
  std::vector<int> order(n());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> probs(n());
  for (int i = 0; i < n(); ++i) {
    probs[i] = FailureProbability(i, horizon);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return probs[a] < probs[b]; });
  return order;
}

double LeaderSelector::ExpectedLeaderFailuresRoundRobin(double horizon) const {
  // The leader slot spends horizon/n on each node; the expected number of leader failures is
  // the sum of each node's cumulative hazard over its share.
  double expected = 0.0;
  const double share = horizon / static_cast<double>(n());
  double offset = 0.0;
  for (int i = 0; i < n(); ++i) {
    const double start = node_ages_[i] + offset;
    expected += curves_[i]->CumulativeHazard(start + share) - curves_[i]->CumulativeHazard(start);
    offset += share;
  }
  return expected;
}

double LeaderSelector::ExpectedLeaderFailuresBestLeader(double horizon) const {
  const int best = SelectMostReliable(horizon);
  const double start = node_ages_[best];
  return curves_[best]->CumulativeHazard(start + horizon) -
         curves_[best]->CumulativeHazard(start);
}

}  // namespace probcon
