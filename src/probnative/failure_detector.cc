#include "src/probnative/failure_detector.h"

#include <cmath>

#include "src/common/check.h"

namespace probcon {

PhiAccrualFailureDetector::PhiAccrualFailureDetector()
    : PhiAccrualFailureDetector(Options()) {}

PhiAccrualFailureDetector::PhiAccrualFailureDetector(const Options& options)
    : options_(options) {
  CHECK_GT(options.window_size, 1u);
  CHECK_GT(options.min_stddev, 0.0);
  CHECK_GT(options.bootstrap_interval, 0.0);
}

void PhiAccrualFailureDetector::RecordHeartbeat(SimTime now) {
  if (last_heartbeat_ >= 0.0) {
    CHECK_GE(now, last_heartbeat_);
    intervals_.push_back(now - last_heartbeat_);
    if (intervals_.size() > options_.window_size) {
      intervals_.pop_front();
    }
  }
  last_heartbeat_ = now;
}

double PhiAccrualFailureDetector::MeanInterval() const {
  if (intervals_.empty()) {
    return options_.bootstrap_interval;
  }
  double sum = 0.0;
  for (const double x : intervals_) {
    sum += x;
  }
  return sum / static_cast<double>(intervals_.size());
}

double PhiAccrualFailureDetector::StddevInterval() const {
  if (intervals_.size() < 2) {
    return options_.min_stddev;
  }
  const double mean = MeanInterval();
  double sum_sq = 0.0;
  for (const double x : intervals_) {
    sum_sq += (x - mean) * (x - mean);
  }
  const double variance = sum_sq / static_cast<double>(intervals_.size() - 1);
  return std::max(options_.min_stddev, std::sqrt(variance));
}

double PhiAccrualFailureDetector::Phi(SimTime now) const {
  if (last_heartbeat_ < 0.0) {
    return 0.0;  // Nothing observed yet; no basis for suspicion.
  }
  CHECK_GE(now, last_heartbeat_);
  const double elapsed = now - last_heartbeat_;
  const double mean = MeanInterval();
  const double stddev = StddevInterval();
  // P(next heartbeat later than `elapsed`) under N(mean, stddev): the normal tail. Use the
  // complementary error function for numeric range; phi = -log10 of it.
  const double z = (elapsed - mean) / (stddev * std::sqrt(2.0));
  const double tail = 0.5 * std::erfc(z);
  if (tail <= 0.0) {
    // erfc underflow (~z > 27): use the asymptotic expansion log erfc(z) ~ -z^2 - log(z√π).
    const double log10_tail =
        (-z * z - std::log(z * std::sqrt(3.14159265358979323846)) + std::log(0.5)) /
        std::log(10.0);
    return -log10_tail;
  }
  return -std::log10(tail);
}

bool PhiAccrualFailureDetector::Suspects(SimTime now, double threshold) const {
  return Phi(now) >= threshold;
}

}  // namespace probcon
