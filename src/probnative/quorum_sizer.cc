#include "src/probnative/quorum_sizer.h"

#include <algorithm>

#include "src/analysis/reliability.h"
#include "src/common/check.h"

namespace probcon {
namespace {

int ClusterSize(const std::vector<double>& failure_probabilities) {
  CHECK(!failure_probabilities.empty());
  return static_cast<int>(failure_probabilities.size());
}

}  // namespace

Result<SizedRaftConfig> SizeRaftQuorums(const std::vector<double>& failure_probabilities,
                                        const Probability& target_live) {
  const int n = ClusterSize(failure_probabilities);
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(failure_probabilities);

  bool found = false;
  SizedRaftConfig best;
  for (int q_per = 1; q_per <= n; ++q_per) {
    for (int q_vc = 1; q_vc <= n; ++q_vc) {
      RaftConfig config{n, q_per, q_vc};
      if (!RaftIsSafeStructurally(config)) {
        continue;
      }
      const Probability live = analyzer.EventProbability(MakeRaftLivePredicate(config));
      if (live < target_live) {
        continue;
      }
      const bool better =
          !found || config.q_per < best.config.q_per ||
          (config.q_per == best.config.q_per && config.q_vc < best.config.q_vc);
      if (better) {
        best = SizedRaftConfig{config, live};
        found = true;
      }
    }
  }
  if (!found) {
    return NotFoundError("no structurally safe Raft quorum sizes meet the liveness target");
  }
  return best;
}

Result<SizedPbftConfig> SizePbftQuorums(const std::vector<double>& failure_probabilities,
                                        const Probability& target_safe,
                                        const Probability& target_live) {
  const int n = ClusterSize(failure_probabilities);
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(failure_probabilities);

  bool found = false;
  SizedPbftConfig best;
  for (int q = 1; q <= n; ++q) {
    for (int q_vc_t = 1; q_vc_t <= q; ++q_vc_t) {
      PbftConfig config{n, q, q, q, q_vc_t};
      const Probability safe = analyzer.EventProbability(MakePbftSafePredicate(config));
      if (safe < target_safe) {
        continue;
      }
      const Probability live = analyzer.EventProbability(MakePbftLivePredicate(config));
      if (live < target_live) {
        continue;
      }
      if (!found || config.q_eq < best.config.q_eq) {
        best = SizedPbftConfig{config, safe, live};
        found = true;
      }
    }
  }
  if (!found) {
    return NotFoundError("no PBFT quorum sizes meet the safety+liveness targets");
  }
  return best;
}

std::vector<PbftFrontierPoint> PbftQuorumFrontier(
    const std::vector<double>& failure_probabilities) {
  const int n = ClusterSize(failure_probabilities);
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(failure_probabilities);

  std::vector<PbftFrontierPoint> frontier;
  for (int q = 1; q <= n; ++q) {
    // Pick the trigger size maximizing liveness for this q (safety does not depend on q_vc_t).
    PbftFrontierPoint best_point;
    bool have_point = false;
    for (int q_vc_t = 1; q_vc_t <= q; ++q_vc_t) {
      PbftConfig config{n, q, q, q, q_vc_t};
      const Probability live = analyzer.EventProbability(MakePbftLivePredicate(config));
      if (!have_point || best_point.live < live) {
        best_point.config = config;
        best_point.live = live;
        have_point = true;
      }
    }
    best_point.safe = analyzer.EventProbability(MakePbftSafePredicate(best_point.config));
    frontier.push_back(best_point);
  }
  return frontier;
}

}  // namespace probcon
