// Phi-accrual failure detector (Hayashibara et al.), the paper's §4 pointer to "new types of
// failure detectors, which are more realistic and accurate".
//
// Instead of a boolean suspect/trust output, the detector emits a suspicion level
//   phi(t) = -log10( P(a heartbeat arrives later than t_since_last) )
// under a normal model of inter-arrival times learned from a sliding window. Applications
// pick thresholds per use: phi = 1 tolerates 10% false positives, phi = 3 one in a thousand —
// the same "choose your nines" philosophy the paper advocates for consensus itself.

#ifndef PROBCON_SRC_PROBNATIVE_FAILURE_DETECTOR_H_
#define PROBCON_SRC_PROBNATIVE_FAILURE_DETECTOR_H_

#include <cstddef>
#include <deque>

#include "src/sim/simulator.h"

namespace probcon {

class PhiAccrualFailureDetector {
 public:
  struct Options {
    size_t window_size = 100;        // Inter-arrival samples kept.
    double min_stddev = 1.0;         // Floor on the model's sigma (ms) for stability.
    double bootstrap_interval = 100; // Assumed interval until two heartbeats arrive.
  };

  PhiAccrualFailureDetector();  // Default options.
  explicit PhiAccrualFailureDetector(const Options& options);

  // Records a heartbeat arrival at time `now` (must be nondecreasing).
  void RecordHeartbeat(SimTime now);

  // Suspicion level at time `now`. 0 when a heartbeat just arrived; grows without bound as
  // the silence stretches.
  double Phi(SimTime now) const;

  // Convenience: Phi(now) >= threshold.
  bool Suspects(SimTime now, double threshold) const;

  size_t sample_count() const { return intervals_.size(); }
  double MeanInterval() const;
  double StddevInterval() const;

 private:
  Options options_;
  std::deque<double> intervals_;
  SimTime last_heartbeat_ = -1.0;  // < 0 = no heartbeat yet.
};

}  // namespace probcon

#endif  // PROBCON_SRC_PROBNATIVE_FAILURE_DETECTOR_H_
