#include "src/probnative/reconfiguration.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/analysis/reliability.h"
#include "src/common/check.h"

namespace probcon {
namespace {

double HorizonFailureProbability(const FleetNode& node, double horizon) {
  CHECK(node.curve != nullptr);
  return node.curve->FailureProbability(node.age, node.age + horizon);
}

Probability CommitteeReliability(const std::vector<const FleetNode*>& members,
                                 double horizon) {
  std::vector<double> probabilities;
  probabilities.reserve(members.size());
  for (const FleetNode* member : members) {
    probabilities.push_back(HorizonFailureProbability(*member, horizon));
  }
  const int n = static_cast<int>(probabilities.size());
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(std::move(probabilities));
  return AnalyzeRaft(RaftConfig::Standard(n), analyzer).safe_and_live;
}

}  // namespace

std::string SwapAction::Describe() const {
  std::ostringstream os;
  os << "swap out node " << out_node << " (p=" << out_failure_probability << ") for node "
     << in_node << " (p=" << in_failure_probability << ")";
  return os.str();
}

ReconfigurationPlan PlanReconfiguration(const std::vector<FleetNode>& fleet,
                                        const std::vector<int>& committee,
                                        const std::vector<int>& spares, double horizon,
                                        const Probability& target) {
  CHECK(!committee.empty());
  CHECK_GT(horizon, 0.0);
  auto node_at = [&](int index) -> const FleetNode& {
    CHECK(index >= 0 && index < static_cast<int>(fleet.size()));
    return fleet[index];
  };

  std::vector<const FleetNode*> current;
  current.reserve(committee.size());
  for (const int index : committee) {
    current.push_back(&node_at(index));
  }

  ReconfigurationPlan plan;
  plan.reliability_before = CommitteeReliability(current, horizon);
  plan.reliability_after = plan.reliability_before;
  if (!(plan.reliability_before < target)) {
    plan.meets_target = true;
    return plan;  // Nothing to do.
  }

  // Spares ranked best (lowest horizon failure probability) first.
  std::vector<int> spare_order = spares;
  std::sort(spare_order.begin(), spare_order.end(), [&](int a, int b) {
    return HorizonFailureProbability(node_at(a), horizon) <
           HorizonFailureProbability(node_at(b), horizon);
  });

  std::set<int> used_spares;
  while (plan.reliability_after < target) {
    // Worst current member.
    size_t worst_slot = 0;
    double worst_probability = -1.0;
    for (size_t slot = 0; slot < current.size(); ++slot) {
      const double p = HorizonFailureProbability(*current[slot], horizon);
      if (p > worst_probability) {
        worst_probability = p;
        worst_slot = slot;
      }
    }
    // Best unused spare that actually improves on the worst member.
    const FleetNode* replacement = nullptr;
    int replacement_index = -1;
    for (const int spare : spare_order) {
      if (used_spares.count(spare) > 0) {
        continue;
      }
      if (HorizonFailureProbability(node_at(spare), horizon) < worst_probability) {
        replacement = &node_at(spare);
        replacement_index = spare;
        break;
      }
    }
    if (replacement == nullptr) {
      break;  // No improving spare left; return the best partial plan.
    }
    used_spares.insert(replacement_index);
    SwapAction action;
    action.out_node = current[worst_slot]->id;
    action.in_node = replacement->id;
    action.out_failure_probability = worst_probability;
    action.in_failure_probability = HorizonFailureProbability(*replacement, horizon);
    plan.swaps.push_back(action);
    current[worst_slot] = replacement;
    plan.reliability_after = CommitteeReliability(current, horizon);
  }
  plan.meets_target = !(plan.reliability_after < target);
  return plan;
}

}  // namespace probcon
