// Reliability-aware leader selection (paper §4: "probabilistic approaches can choose leaders
// among the most reliable nodes, avoiding more failure-prone nodes").
//
// Ranks candidate leaders by their fault-curve failure probability over the next planning
// horizon and quantifies the payoff: expected leader failures per unit time under
// round-robin rotation vs. reliability-aware selection. Leader failures are what trigger
// view changes — so this expectation is a direct proxy for tail latency and reconfiguration
// churn.

#ifndef PROBCON_SRC_PROBNATIVE_LEADER_SELECTOR_H_
#define PROBCON_SRC_PROBNATIVE_LEADER_SELECTOR_H_

#include <memory>
#include <vector>

#include "src/faultmodel/fault_curve.h"

namespace probcon {

class LeaderSelector {
 public:
  // Borrows the curves; one per candidate node. `node_ages[i]` is node i's current age (its
  // position on its own fault curve).
  LeaderSelector(std::vector<const FaultCurve*> curves, std::vector<double> node_ages);

  int n() const { return static_cast<int>(curves_.size()); }

  // P(node i fails within `horizon` from its current age).
  double FailureProbability(int node, double horizon) const;

  // The node with the lowest failure probability over `horizon`.
  int SelectMostReliable(double horizon) const;

  // All nodes ranked most-reliable first.
  std::vector<int> RankByReliability(double horizon) const;

  // Expected number of leader-failure events over `horizon` when the leader slot rotates
  // uniformly across all nodes (oblivious baseline).
  double ExpectedLeaderFailuresRoundRobin(double horizon) const;

  // Same, when the most reliable node holds the leader slot for the whole horizon.
  double ExpectedLeaderFailuresBestLeader(double horizon) const;

 private:
  std::vector<const FaultCurve*> curves_;
  std::vector<double> node_ages_;
};

}  // namespace probcon

#endif  // PROBCON_SRC_PROBNATIVE_LEADER_SELECTOR_H_
