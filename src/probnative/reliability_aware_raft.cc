#include "src/probnative/reliability_aware_raft.h"

#include <algorithm>
#include <numeric>

#include "src/analysis/durability.h"
#include "src/common/check.h"

namespace probcon {
namespace {

constexpr double kMinPriority = 0.4;

std::vector<int> ReliabilityOrder(const std::vector<double>& failure_probabilities) {
  std::vector<int> order(failure_probabilities.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return failure_probabilities[a] < failure_probabilities[b];
  });
  return order;
}

}  // namespace

uint64_t DurableMemberSet(const std::vector<double>& failure_probabilities,
                          int durable_member_count) {
  const int n = static_cast<int>(failure_probabilities.size());
  CHECK(durable_member_count >= 0 && durable_member_count <= n);
  CHECK_LE(n, 64);
  const auto order = ReliabilityOrder(failure_probabilities);
  uint64_t set = 0;
  for (int i = 0; i < durable_member_count; ++i) {
    set |= uint64_t{1} << order[i];
  }
  return set;
}

std::vector<RaftReliabilityPolicy> MakeReliabilityAwarePolicies(
    const std::vector<double>& failure_probabilities, int durable_member_count) {
  const int n = static_cast<int>(failure_probabilities.size());
  CHECK_GT(n, 0);
  const uint64_t durable = DurableMemberSet(failure_probabilities, durable_member_count);
  const auto order = ReliabilityOrder(failure_probabilities);

  std::vector<RaftReliabilityPolicy> policies(n);
  for (int rank = 0; rank < n; ++rank) {
    const int node = order[rank];
    policies[node].required_commit_members = durable;
    policies[node].election_priority =
        n == 1 ? kMinPriority
               : kMinPriority + (1.0 - kMinPriority) * rank / static_cast<double>(n - 1);
  }
  return policies;
}

ReliabilityAwareRaftReport AnalyzeReliabilityAwareRaft(
    const RaftConfig& config, const std::vector<double>& failure_probabilities,
    int durable_member_count) {
  CHECK_EQ(config.n, static_cast<int>(failure_probabilities.size()));
  CHECK_GE(durable_member_count, 1) << "analysis needs a nonempty durable set";
  const uint64_t durable = DurableMemberSet(failure_probabilities, durable_member_count);
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(failure_probabilities);
  const IndependentFailureModel model(failure_probabilities);

  ReliabilityAwareRaftReport report;
  report.baseline_live = analyzer.EventProbability(MakeRaftLivePredicate(config));
  report.baseline_durability =
      AnalyzePlacementDurability(model, config.q_per).worst_case_loss.Not();

  // Constrained liveness depends on WHICH nodes failed (the durable members specifically),
  // so it needs the configuration-predicate path.
  const ConfigurationPredicate constrained_live(
      [config, durable](FailureConfiguration failed, int n) {
        const int correct = n - CountFailures(failed);
        if (!RaftIsLive(config, correct)) {
          return false;
        }
        const uint64_t correct_set = ComplementNodeSet(failed, n);
        return (correct_set & durable) != 0;
      });
  report.live = analyzer.EventProbability(constrained_live);
  report.durability =
      WorstCaseLossWithReliableConstraint(model, config.q_per, durable, 1).Not();
  return report;
}

}  // namespace probcon
