// Preemptive reconfiguration planning (paper §4: "predictive models for node reliability
// enable preemptive reconfiguration, mitigating potential failures from jeopardizing safety
// or liveness").
//
// Given fault curves for the current committee and a spare pool, the planner asks: over the
// next horizon, does the committee still meet its reliability target? If not, it proposes
// swaps — replace the members with the highest predicted failure probability by the best
// spares — until the target is met or spares run out. Because the fault curves are
// time-dependent (bathtub wear-out, rollout spikes), the plan changes as nodes age: that is
// the paper's "act before the failure" loop.

#ifndef PROBCON_SRC_PROBNATIVE_RECONFIGURATION_H_
#define PROBCON_SRC_PROBNATIVE_RECONFIGURATION_H_

#include <string>
#include <vector>

#include "src/faultmodel/fault_curve.h"
#include "src/prob/probability.h"

namespace probcon {

struct FleetNode {
  int id = 0;
  const FaultCurve* curve = nullptr;  // Borrowed.
  double age = 0.0;
};

struct SwapAction {
  int out_node = 0;
  int in_node = 0;
  double out_failure_probability = 0.0;
  double in_failure_probability = 0.0;

  std::string Describe() const;
};

struct ReconfigurationPlan {
  std::vector<SwapAction> swaps;
  Probability reliability_before;  // Raft safe-and-live over the horizon, current committee.
  Probability reliability_after;   // Ditto after applying the swaps.
  bool meets_target = false;
};

// Plans swaps for a majority-quorum Raft committee. `committee` and `spares` index into
// `fleet`. Failure probabilities are each node's fault-curve mass over [age, age + horizon].
ReconfigurationPlan PlanReconfiguration(const std::vector<FleetNode>& fleet,
                                        const std::vector<int>& committee,
                                        const std::vector<int>& spares, double horizon,
                                        const Probability& target);

}  // namespace probcon

#endif  // PROBCON_SRC_PROBNATIVE_RECONFIGURATION_H_
