// Dynamic quorum sizing (paper §4: "we can choose quorum sizes dynamically such that they
// overlap with high probability").
//
// Given per-node failure probabilities and explicit reliability targets, search the quorum-
// size space for configurations that meet the targets — instead of hardcoding majorities.
// For Raft the safety conditions are structural (Theorem 3.2), so the search maximizes
// liveness subject to structural safety; for PBFT all four quorum sizes move, trading safety
// against liveness exactly as the paper's 4-vs-5-node example shows.

#ifndef PROBCON_SRC_PROBNATIVE_QUORUM_SIZER_H_
#define PROBCON_SRC_PROBNATIVE_QUORUM_SIZER_H_

#include <vector>

#include "src/analysis/protocol_spec.h"
#include "src/common/status.h"
#include "src/prob/probability.h"

namespace probcon {

struct SizedRaftConfig {
  RaftConfig config;
  Probability live;  // = safe-and-live, since the search space is structurally safe.
};

// Smallest structurally-safe Raft quorums meeting `target_live` for nodes with the given
// failure probabilities. Prefers smaller q_per (commit latency) and breaks ties on q_vc.
// NotFoundError if even majorities miss the target.
Result<SizedRaftConfig> SizeRaftQuorums(const std::vector<double>& failure_probabilities,
                                        const Probability& target_live);

struct SizedPbftConfig {
  PbftConfig config;
  Probability safe;
  Probability live;
};

// Searches (q_eq = q_per = q_vc, q_vc_t) for the configuration that meets `target_safe` and
// `target_live` with the smallest main quorum; NotFoundError when the targets are jointly
// unattainable at this cluster. The symmetric main-quorum restriction matches deployed PBFT
// and keeps the search O(n^2).
Result<SizedPbftConfig> SizePbftQuorums(const std::vector<double>& failure_probabilities,
                                        const Probability& target_safe,
                                        const Probability& target_live);

// Full safety/liveness frontier over the main-quorum size q (q_vc_t fixed at the best choice
// per q): the data behind the paper's "larger quorums improve safety but degrade liveness".
struct PbftFrontierPoint {
  PbftConfig config;
  Probability safe;
  Probability live;
};
std::vector<PbftFrontierPoint> PbftQuorumFrontier(
    const std::vector<double>& failure_probabilities);

}  // namespace probcon

#endif  // PROBCON_SRC_PROBNATIVE_QUORUM_SIZER_H_
