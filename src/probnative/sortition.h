// Cryptographic-sortition-style committee sampling (paper §5, Algorand): every node runs a
// private, deterministic lottery each round; winners form the committee. No coordination, no
// quorum intersection — correctness is purely probabilistic, which makes sortition the
// poster child for the paper's probability-native design space.
//
// We model the VRF with a keyed SplitMix64 hash (the simulator has no adversaries who can
// grind hashes, so the only property needed is per-(node, round) pseudo-randomness). The
// analysis half answers the sizing question the paper raises: how large must the EXPECTED
// committee be so that a majority of its members are correct, with the desired nines, given
// per-node fault probabilities?

#ifndef PROBCON_SRC_PROBNATIVE_SORTITION_H_
#define PROBCON_SRC_PROBNATIVE_SORTITION_H_

#include <cstdint>
#include <vector>

#include "src/prob/probability.h"

namespace probcon {

// True iff the node holding `node_key` wins the round-`round_seed` lottery at the given
// per-node selection probability. Deterministic in (node_key, round_seed).
bool SortitionSelected(uint64_t node_key, uint64_t round_seed, double selection_probability);

// Runs the lottery for every node key; returns selected indices (sorted).
std::vector<int> SortitionCommittee(const std::vector<uint64_t>& node_keys,
                                    uint64_t round_seed, double selection_probability);

// P(the sampled committee has a strict majority of correct members AND is nonempty), where
// node i is independently selected with probability `selection_probability` and faulty with
// probability `failure_probabilities[i]`. Exact O(n^3) dynamic program.
Probability SortitionHonestMajority(const std::vector<double>& failure_probabilities,
                                    double selection_probability);

// Smallest expected committee size (selection_probability * n, searched over a geometric
// grid of selection probabilities) achieving `target` honest-majority probability; returns
// a negative value if even selecting everyone misses the target.
double MinExpectedCommitteeForHonestMajority(
    const std::vector<double>& failure_probabilities, const Probability& target);

}  // namespace probcon

#endif  // PROBCON_SRC_PROBNATIVE_SORTITION_H_
