#include "src/probnative/sortition.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/prob/kahan.h"

namespace probcon {

bool SortitionSelected(uint64_t node_key, uint64_t round_seed, double selection_probability) {
  CHECK(selection_probability >= 0.0 && selection_probability <= 1.0);
  uint64_t state = node_key ^ (round_seed * 0x9E3779B97F4A7C15ULL);
  const uint64_t draw = SplitMix64(state);
  const double unit = static_cast<double>(draw >> 11) * 0x1.0p-53;
  return unit < selection_probability;
}

std::vector<int> SortitionCommittee(const std::vector<uint64_t>& node_keys,
                                    uint64_t round_seed, double selection_probability) {
  std::vector<int> committee;
  for (size_t i = 0; i < node_keys.size(); ++i) {
    if (SortitionSelected(node_keys[i], round_seed, selection_probability)) {
      committee.push_back(static_cast<int>(i));
    }
  }
  return committee;
}

Probability SortitionHonestMajority(const std::vector<double>& failure_probabilities,
                                    double selection_probability) {
  const int n = static_cast<int>(failure_probabilities.size());
  CHECK_GT(n, 0);
  CHECK(selection_probability > 0.0 && selection_probability <= 1.0);
  // DP over (selected honest, selected faulty) counts. Each node contributes one of three
  // outcomes: not selected (1-s), selected honest (s * (1-p)), selected faulty (s * p).
  const int stride = n + 1;
  std::vector<double> pmf(static_cast<size_t>(stride) * stride, 0.0);
  pmf[0] = 1.0;
  int upper = 0;
  for (const double p : failure_probabilities) {
    CHECK(p >= 0.0 && p <= 1.0);
    const double sel_honest = selection_probability * (1.0 - p);
    const double sel_faulty = selection_probability * p;
    const double skip = 1.0 - selection_probability;
    ++upper;
    for (int honest = upper; honest >= 0; --honest) {
      for (int faulty = upper - honest; faulty >= 0; --faulty) {
        double mass = pmf[honest * stride + faulty] * skip;
        if (honest > 0) {
          mass += pmf[(honest - 1) * stride + faulty] * sel_honest;
        }
        if (faulty > 0) {
          mass += pmf[honest * stride + (faulty - 1)] * sel_faulty;
        }
        pmf[honest * stride + faulty] = mass;
      }
    }
  }
  // Sum the BAD mass (majority-faulty or empty committee) for complement precision.
  KahanSum bad;
  for (int honest = 0; honest <= n; ++honest) {
    for (int faulty = 0; faulty + honest <= n; ++faulty) {
      const bool good = honest > faulty;  // Implies nonempty.
      if (!good) {
        bad.Add(pmf[honest * stride + faulty]);
      }
    }
  }
  return Probability::FromComplement(std::max(0.0, bad.Total()));
}

double MinExpectedCommitteeForHonestMajority(
    const std::vector<double>& failure_probabilities, const Probability& target) {
  const int n = static_cast<int>(failure_probabilities.size());
  CHECK_GT(n, 0);
  // Geometric grid over selection probabilities, finishing at select-everyone.
  for (double selection = 1.0 / n; selection < 1.0; selection *= 1.1) {
    if (!(SortitionHonestMajority(failure_probabilities, selection) < target)) {
      return selection * n;
    }
  }
  if (!(SortitionHonestMajority(failure_probabilities, 1.0) < target)) {
    return n;
  }
  return -1.0;
}

}  // namespace probcon
