// Reliability-aware Raft (paper §4, executed): wires fault-curve knowledge into the running
// protocol from src/consensus/raft.
//
// Two mechanisms, configured per node via RaftReliabilityPolicy:
//   * leader placement — reliable nodes get shorter election timeouts, so they win elections
//     preferentially (the §4 "choose leaders among the most reliable nodes"), and
//   * durable commit quorums — the leader refuses to advance the commit index until at least
//     one designated reliable node has replicated the entry, turning E4's analytical
//     durability fix into protocol behaviour.
//
// The analysis side quantifies the liveness price of the durability constraint: requiring a
// reliable-member ack makes commits depend on those nodes being up.

#ifndef PROBCON_SRC_PROBNATIVE_RELIABILITY_AWARE_RAFT_H_
#define PROBCON_SRC_PROBNATIVE_RELIABILITY_AWARE_RAFT_H_

#include <vector>

#include "src/analysis/reliability.h"
#include "src/consensus/raft/raft_node.h"

namespace probcon {

// Builds per-node policies from failure probabilities:
//   * the `durable_member_count` most reliable nodes form the required-commit-member set;
//   * election priorities scale linearly from `kMinPriority` (most reliable node) to 1.0
//     (least reliable), so reliable nodes' timeouts expire first.
// `durable_member_count == 0` disables the commit constraint (placement-only variant).
std::vector<RaftReliabilityPolicy> MakeReliabilityAwarePolicies(
    const std::vector<double>& failure_probabilities, int durable_member_count);

// The required-commit-member set the policies above encode (bitmask of the most reliable
// nodes).
uint64_t DurableMemberSet(const std::vector<double>& failure_probabilities,
                          int durable_member_count);

struct ReliabilityAwareRaftReport {
  // Live: enough correct nodes for both quorums AND at least one correct durable member.
  Probability live;
  // Worst-case durability of a committed entry under the constrained placement.
  Probability durability;
  // Baselines for comparison (plain Raft on the same cluster).
  Probability baseline_live;
  Probability baseline_durability;
};

// Analytical comparison of constrained vs plain Raft on a heterogeneous cluster.
ReliabilityAwareRaftReport AnalyzeReliabilityAwareRaft(
    const RaftConfig& config, const std::vector<double>& failure_probabilities,
    int durable_member_count);

}  // namespace probcon

#endif  // PROBCON_SRC_PROBNATIVE_RELIABILITY_AWARE_RAFT_H_
