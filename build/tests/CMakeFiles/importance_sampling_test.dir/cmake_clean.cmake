file(REMOVE_RECURSE
  "CMakeFiles/importance_sampling_test.dir/analysis/importance_sampling_test.cc.o"
  "CMakeFiles/importance_sampling_test.dir/analysis/importance_sampling_test.cc.o.d"
  "importance_sampling_test"
  "importance_sampling_test.pdb"
  "importance_sampling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/importance_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
