# Empty dependencies file for pbft_checkpoint_test.
# This may be replaced when dependencies are built.
