file(REMOVE_RECURSE
  "CMakeFiles/pbft_checkpoint_test.dir/consensus/pbft_checkpoint_test.cc.o"
  "CMakeFiles/pbft_checkpoint_test.dir/consensus/pbft_checkpoint_test.cc.o.d"
  "pbft_checkpoint_test"
  "pbft_checkpoint_test.pdb"
  "pbft_checkpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbft_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
