file(REMOVE_RECURSE
  "CMakeFiles/reliability_aware_raft_test.dir/probnative/reliability_aware_raft_test.cc.o"
  "CMakeFiles/reliability_aware_raft_test.dir/probnative/reliability_aware_raft_test.cc.o.d"
  "reliability_aware_raft_test"
  "reliability_aware_raft_test.pdb"
  "reliability_aware_raft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_aware_raft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
