# Empty compiler generated dependencies file for reliability_aware_raft_test.
# This may be replaced when dependencies are built.
