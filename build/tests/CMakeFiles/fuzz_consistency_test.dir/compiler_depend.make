# Empty compiler generated dependencies file for fuzz_consistency_test.
# This may be replaced when dependencies are built.
