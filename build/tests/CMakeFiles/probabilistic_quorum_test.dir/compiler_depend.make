# Empty compiler generated dependencies file for probabilistic_quorum_test.
# This may be replaced when dependencies are built.
