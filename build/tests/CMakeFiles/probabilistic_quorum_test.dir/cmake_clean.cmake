file(REMOVE_RECURSE
  "CMakeFiles/probabilistic_quorum_test.dir/quorum/probabilistic_quorum_test.cc.o"
  "CMakeFiles/probabilistic_quorum_test.dir/quorum/probabilistic_quorum_test.cc.o.d"
  "probabilistic_quorum_test"
  "probabilistic_quorum_test.pdb"
  "probabilistic_quorum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probabilistic_quorum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
