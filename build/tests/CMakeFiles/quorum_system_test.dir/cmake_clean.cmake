file(REMOVE_RECURSE
  "CMakeFiles/quorum_system_test.dir/quorum/quorum_system_test.cc.o"
  "CMakeFiles/quorum_system_test.dir/quorum/quorum_system_test.cc.o.d"
  "quorum_system_test"
  "quorum_system_test.pdb"
  "quorum_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quorum_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
