# Empty dependencies file for quorum_system_test.
# This may be replaced when dependencies are built.
