file(REMOVE_RECURSE
  "CMakeFiles/raft_snapshot_test.dir/consensus/raft_snapshot_test.cc.o"
  "CMakeFiles/raft_snapshot_test.dir/consensus/raft_snapshot_test.cc.o.d"
  "raft_snapshot_test"
  "raft_snapshot_test.pdb"
  "raft_snapshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raft_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
