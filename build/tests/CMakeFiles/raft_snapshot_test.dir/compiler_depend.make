# Empty compiler generated dependencies file for raft_snapshot_test.
# This may be replaced when dependencies are built.
