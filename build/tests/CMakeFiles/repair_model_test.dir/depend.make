# Empty dependencies file for repair_model_test.
# This may be replaced when dependencies are built.
