file(REMOVE_RECURSE
  "CMakeFiles/repair_model_test.dir/markov/repair_model_test.cc.o"
  "CMakeFiles/repair_model_test.dir/markov/repair_model_test.cc.o.d"
  "repair_model_test"
  "repair_model_test.pdb"
  "repair_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
