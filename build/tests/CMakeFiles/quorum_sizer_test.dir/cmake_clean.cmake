file(REMOVE_RECURSE
  "CMakeFiles/quorum_sizer_test.dir/probnative/quorum_sizer_test.cc.o"
  "CMakeFiles/quorum_sizer_test.dir/probnative/quorum_sizer_test.cc.o.d"
  "quorum_sizer_test"
  "quorum_sizer_test.pdb"
  "quorum_sizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quorum_sizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
