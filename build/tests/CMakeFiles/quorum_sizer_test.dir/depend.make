# Empty dependencies file for quorum_sizer_test.
# This may be replaced when dependencies are built.
