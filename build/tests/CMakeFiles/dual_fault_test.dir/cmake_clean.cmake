file(REMOVE_RECURSE
  "CMakeFiles/dual_fault_test.dir/analysis/dual_fault_test.cc.o"
  "CMakeFiles/dual_fault_test.dir/analysis/dual_fault_test.cc.o.d"
  "dual_fault_test"
  "dual_fault_test.pdb"
  "dual_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
