# Empty compiler generated dependencies file for dual_fault_test.
# This may be replaced when dependencies are built.
