# Empty compiler generated dependencies file for paxos_log_test.
# This may be replaced when dependencies are built.
