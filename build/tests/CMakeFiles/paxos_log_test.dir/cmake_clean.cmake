file(REMOVE_RECURSE
  "CMakeFiles/paxos_log_test.dir/consensus/paxos_log_test.cc.o"
  "CMakeFiles/paxos_log_test.dir/consensus/paxos_log_test.cc.o.d"
  "paxos_log_test"
  "paxos_log_test.pdb"
  "paxos_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paxos_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
