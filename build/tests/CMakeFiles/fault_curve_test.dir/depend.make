# Empty dependencies file for fault_curve_test.
# This may be replaced when dependencies are built.
