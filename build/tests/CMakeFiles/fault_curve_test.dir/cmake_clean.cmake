file(REMOVE_RECURSE
  "CMakeFiles/fault_curve_test.dir/faultmodel/fault_curve_test.cc.o"
  "CMakeFiles/fault_curve_test.dir/faultmodel/fault_curve_test.cc.o.d"
  "fault_curve_test"
  "fault_curve_test.pdb"
  "fault_curve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
