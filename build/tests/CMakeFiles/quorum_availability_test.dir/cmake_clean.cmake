file(REMOVE_RECURSE
  "CMakeFiles/quorum_availability_test.dir/quorum/availability_test.cc.o"
  "CMakeFiles/quorum_availability_test.dir/quorum/availability_test.cc.o.d"
  "quorum_availability_test"
  "quorum_availability_test.pdb"
  "quorum_availability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quorum_availability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
