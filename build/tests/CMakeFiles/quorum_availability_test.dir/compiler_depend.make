# Empty compiler generated dependencies file for quorum_availability_test.
# This may be replaced when dependencies are built.
