# Empty dependencies file for raft_read_test.
# This may be replaced when dependencies are built.
