file(REMOVE_RECURSE
  "CMakeFiles/raft_read_test.dir/consensus/raft_read_test.cc.o"
  "CMakeFiles/raft_read_test.dir/consensus/raft_read_test.cc.o.d"
  "raft_read_test"
  "raft_read_test.pdb"
  "raft_read_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raft_read_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
