file(REMOVE_RECURSE
  "CMakeFiles/kv_state_machine_test.dir/consensus/kv_state_machine_test.cc.o"
  "CMakeFiles/kv_state_machine_test.dir/consensus/kv_state_machine_test.cc.o.d"
  "kv_state_machine_test"
  "kv_state_machine_test.pdb"
  "kv_state_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_state_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
