# Empty dependencies file for kv_state_machine_test.
# This may be replaced when dependencies are built.
