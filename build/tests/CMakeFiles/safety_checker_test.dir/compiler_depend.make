# Empty compiler generated dependencies file for safety_checker_test.
# This may be replaced when dependencies are built.
