file(REMOVE_RECURSE
  "CMakeFiles/joint_model_test.dir/faultmodel/joint_model_test.cc.o"
  "CMakeFiles/joint_model_test.dir/faultmodel/joint_model_test.cc.o.d"
  "joint_model_test"
  "joint_model_test.pdb"
  "joint_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joint_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
