# Empty compiler generated dependencies file for joint_model_test.
# This may be replaced when dependencies are built.
