# Empty compiler generated dependencies file for fleet_generator_test.
# This may be replaced when dependencies are built.
