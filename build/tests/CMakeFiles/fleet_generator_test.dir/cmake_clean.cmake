file(REMOVE_RECURSE
  "CMakeFiles/fleet_generator_test.dir/telemetry/fleet_generator_test.cc.o"
  "CMakeFiles/fleet_generator_test.dir/telemetry/fleet_generator_test.cc.o.d"
  "fleet_generator_test"
  "fleet_generator_test.pdb"
  "fleet_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
