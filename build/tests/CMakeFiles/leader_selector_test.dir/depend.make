# Empty dependencies file for leader_selector_test.
# This may be replaced when dependencies are built.
