file(REMOVE_RECURSE
  "CMakeFiles/leader_selector_test.dir/probnative/leader_selector_test.cc.o"
  "CMakeFiles/leader_selector_test.dir/probnative/leader_selector_test.cc.o.d"
  "leader_selector_test"
  "leader_selector_test.pdb"
  "leader_selector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leader_selector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
