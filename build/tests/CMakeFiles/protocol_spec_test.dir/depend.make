# Empty dependencies file for protocol_spec_test.
# This may be replaced when dependencies are built.
