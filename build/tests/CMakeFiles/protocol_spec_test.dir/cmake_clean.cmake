file(REMOVE_RECURSE
  "CMakeFiles/protocol_spec_test.dir/analysis/protocol_spec_test.cc.o"
  "CMakeFiles/protocol_spec_test.dir/analysis/protocol_spec_test.cc.o.d"
  "protocol_spec_test"
  "protocol_spec_test.pdb"
  "protocol_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
