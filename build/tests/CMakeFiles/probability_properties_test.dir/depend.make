# Empty dependencies file for probability_properties_test.
# This may be replaced when dependencies are built.
