file(REMOVE_RECURSE
  "CMakeFiles/probability_properties_test.dir/prob/probability_properties_test.cc.o"
  "CMakeFiles/probability_properties_test.dir/prob/probability_properties_test.cc.o.d"
  "probability_properties_test"
  "probability_properties_test.pdb"
  "probability_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probability_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
