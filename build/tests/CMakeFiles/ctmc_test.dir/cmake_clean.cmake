file(REMOVE_RECURSE
  "CMakeFiles/ctmc_test.dir/markov/ctmc_test.cc.o"
  "CMakeFiles/ctmc_test.dir/markov/ctmc_test.cc.o.d"
  "ctmc_test"
  "ctmc_test.pdb"
  "ctmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
