# Empty compiler generated dependencies file for spot_fleet_planner.
# This may be replaced when dependencies are built.
