file(REMOVE_RECURSE
  "CMakeFiles/spot_fleet_planner.dir/spot_fleet_planner.cc.o"
  "CMakeFiles/spot_fleet_planner.dir/spot_fleet_planner.cc.o.d"
  "spot_fleet_planner"
  "spot_fleet_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spot_fleet_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
