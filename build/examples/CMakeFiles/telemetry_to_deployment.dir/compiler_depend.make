# Empty compiler generated dependencies file for telemetry_to_deployment.
# This may be replaced when dependencies are built.
