file(REMOVE_RECURSE
  "CMakeFiles/telemetry_to_deployment.dir/telemetry_to_deployment.cc.o"
  "CMakeFiles/telemetry_to_deployment.dir/telemetry_to_deployment.cc.o.d"
  "telemetry_to_deployment"
  "telemetry_to_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_to_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
