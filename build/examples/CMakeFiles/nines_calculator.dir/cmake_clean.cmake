file(REMOVE_RECURSE
  "CMakeFiles/nines_calculator.dir/nines_calculator.cc.o"
  "CMakeFiles/nines_calculator.dir/nines_calculator.cc.o.d"
  "nines_calculator"
  "nines_calculator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nines_calculator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
