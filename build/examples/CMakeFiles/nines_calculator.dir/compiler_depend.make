# Empty compiler generated dependencies file for nines_calculator.
# This may be replaced when dependencies are built.
