file(REMOVE_RECURSE
  "libprobcon_quorum.a"
)
