file(REMOVE_RECURSE
  "CMakeFiles/probcon_quorum.dir/availability.cc.o"
  "CMakeFiles/probcon_quorum.dir/availability.cc.o.d"
  "CMakeFiles/probcon_quorum.dir/probabilistic_quorum.cc.o"
  "CMakeFiles/probcon_quorum.dir/probabilistic_quorum.cc.o.d"
  "CMakeFiles/probcon_quorum.dir/quorum_system.cc.o"
  "CMakeFiles/probcon_quorum.dir/quorum_system.cc.o.d"
  "libprobcon_quorum.a"
  "libprobcon_quorum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probcon_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
