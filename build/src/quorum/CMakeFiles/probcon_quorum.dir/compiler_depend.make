# Empty compiler generated dependencies file for probcon_quorum.
# This may be replaced when dependencies are built.
