file(REMOVE_RECURSE
  "CMakeFiles/probcon_linalg.dir/matrix.cc.o"
  "CMakeFiles/probcon_linalg.dir/matrix.cc.o.d"
  "libprobcon_linalg.a"
  "libprobcon_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probcon_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
