file(REMOVE_RECURSE
  "libprobcon_linalg.a"
)
