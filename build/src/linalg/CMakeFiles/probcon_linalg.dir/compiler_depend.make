# Empty compiler generated dependencies file for probcon_linalg.
# This may be replaced when dependencies are built.
