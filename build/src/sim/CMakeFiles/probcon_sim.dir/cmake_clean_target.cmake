file(REMOVE_RECURSE
  "libprobcon_sim.a"
)
