# Empty compiler generated dependencies file for probcon_sim.
# This may be replaced when dependencies are built.
