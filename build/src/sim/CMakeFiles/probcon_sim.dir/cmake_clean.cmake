file(REMOVE_RECURSE
  "CMakeFiles/probcon_sim.dir/failure_injector.cc.o"
  "CMakeFiles/probcon_sim.dir/failure_injector.cc.o.d"
  "CMakeFiles/probcon_sim.dir/network.cc.o"
  "CMakeFiles/probcon_sim.dir/network.cc.o.d"
  "CMakeFiles/probcon_sim.dir/process.cc.o"
  "CMakeFiles/probcon_sim.dir/process.cc.o.d"
  "CMakeFiles/probcon_sim.dir/simulator.cc.o"
  "CMakeFiles/probcon_sim.dir/simulator.cc.o.d"
  "libprobcon_sim.a"
  "libprobcon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probcon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
