
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/benor/benor_node.cc" "src/consensus/CMakeFiles/probcon_consensus.dir/benor/benor_node.cc.o" "gcc" "src/consensus/CMakeFiles/probcon_consensus.dir/benor/benor_node.cc.o.d"
  "/root/repo/src/consensus/common/kv_state_machine.cc" "src/consensus/CMakeFiles/probcon_consensus.dir/common/kv_state_machine.cc.o" "gcc" "src/consensus/CMakeFiles/probcon_consensus.dir/common/kv_state_machine.cc.o.d"
  "/root/repo/src/consensus/common/safety_checker.cc" "src/consensus/CMakeFiles/probcon_consensus.dir/common/safety_checker.cc.o" "gcc" "src/consensus/CMakeFiles/probcon_consensus.dir/common/safety_checker.cc.o.d"
  "/root/repo/src/consensus/paxos/paxos_log.cc" "src/consensus/CMakeFiles/probcon_consensus.dir/paxos/paxos_log.cc.o" "gcc" "src/consensus/CMakeFiles/probcon_consensus.dir/paxos/paxos_log.cc.o.d"
  "/root/repo/src/consensus/paxos/paxos_node.cc" "src/consensus/CMakeFiles/probcon_consensus.dir/paxos/paxos_node.cc.o" "gcc" "src/consensus/CMakeFiles/probcon_consensus.dir/paxos/paxos_node.cc.o.d"
  "/root/repo/src/consensus/pbft/pbft_cluster.cc" "src/consensus/CMakeFiles/probcon_consensus.dir/pbft/pbft_cluster.cc.o" "gcc" "src/consensus/CMakeFiles/probcon_consensus.dir/pbft/pbft_cluster.cc.o.d"
  "/root/repo/src/consensus/pbft/pbft_messages.cc" "src/consensus/CMakeFiles/probcon_consensus.dir/pbft/pbft_messages.cc.o" "gcc" "src/consensus/CMakeFiles/probcon_consensus.dir/pbft/pbft_messages.cc.o.d"
  "/root/repo/src/consensus/pbft/pbft_node.cc" "src/consensus/CMakeFiles/probcon_consensus.dir/pbft/pbft_node.cc.o" "gcc" "src/consensus/CMakeFiles/probcon_consensus.dir/pbft/pbft_node.cc.o.d"
  "/root/repo/src/consensus/raft/raft_cluster.cc" "src/consensus/CMakeFiles/probcon_consensus.dir/raft/raft_cluster.cc.o" "gcc" "src/consensus/CMakeFiles/probcon_consensus.dir/raft/raft_cluster.cc.o.d"
  "/root/repo/src/consensus/raft/raft_messages.cc" "src/consensus/CMakeFiles/probcon_consensus.dir/raft/raft_messages.cc.o" "gcc" "src/consensus/CMakeFiles/probcon_consensus.dir/raft/raft_messages.cc.o.d"
  "/root/repo/src/consensus/raft/raft_node.cc" "src/consensus/CMakeFiles/probcon_consensus.dir/raft/raft_node.cc.o" "gcc" "src/consensus/CMakeFiles/probcon_consensus.dir/raft/raft_node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/probcon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/probcon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/probcon_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/probcon_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/faultmodel/CMakeFiles/probcon_faultmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/probcon_prob.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
