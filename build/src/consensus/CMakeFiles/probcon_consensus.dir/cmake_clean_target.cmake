file(REMOVE_RECURSE
  "libprobcon_consensus.a"
)
