file(REMOVE_RECURSE
  "CMakeFiles/probcon_consensus.dir/benor/benor_node.cc.o"
  "CMakeFiles/probcon_consensus.dir/benor/benor_node.cc.o.d"
  "CMakeFiles/probcon_consensus.dir/common/kv_state_machine.cc.o"
  "CMakeFiles/probcon_consensus.dir/common/kv_state_machine.cc.o.d"
  "CMakeFiles/probcon_consensus.dir/common/safety_checker.cc.o"
  "CMakeFiles/probcon_consensus.dir/common/safety_checker.cc.o.d"
  "CMakeFiles/probcon_consensus.dir/paxos/paxos_log.cc.o"
  "CMakeFiles/probcon_consensus.dir/paxos/paxos_log.cc.o.d"
  "CMakeFiles/probcon_consensus.dir/paxos/paxos_node.cc.o"
  "CMakeFiles/probcon_consensus.dir/paxos/paxos_node.cc.o.d"
  "CMakeFiles/probcon_consensus.dir/pbft/pbft_cluster.cc.o"
  "CMakeFiles/probcon_consensus.dir/pbft/pbft_cluster.cc.o.d"
  "CMakeFiles/probcon_consensus.dir/pbft/pbft_messages.cc.o"
  "CMakeFiles/probcon_consensus.dir/pbft/pbft_messages.cc.o.d"
  "CMakeFiles/probcon_consensus.dir/pbft/pbft_node.cc.o"
  "CMakeFiles/probcon_consensus.dir/pbft/pbft_node.cc.o.d"
  "CMakeFiles/probcon_consensus.dir/raft/raft_cluster.cc.o"
  "CMakeFiles/probcon_consensus.dir/raft/raft_cluster.cc.o.d"
  "CMakeFiles/probcon_consensus.dir/raft/raft_messages.cc.o"
  "CMakeFiles/probcon_consensus.dir/raft/raft_messages.cc.o.d"
  "CMakeFiles/probcon_consensus.dir/raft/raft_node.cc.o"
  "CMakeFiles/probcon_consensus.dir/raft/raft_node.cc.o.d"
  "libprobcon_consensus.a"
  "libprobcon_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probcon_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
