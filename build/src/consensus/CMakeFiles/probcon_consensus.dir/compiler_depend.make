# Empty compiler generated dependencies file for probcon_consensus.
# This may be replaced when dependencies are built.
