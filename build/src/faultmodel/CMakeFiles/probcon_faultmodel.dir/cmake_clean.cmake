file(REMOVE_RECURSE
  "CMakeFiles/probcon_faultmodel.dir/afr.cc.o"
  "CMakeFiles/probcon_faultmodel.dir/afr.cc.o.d"
  "CMakeFiles/probcon_faultmodel.dir/estimator.cc.o"
  "CMakeFiles/probcon_faultmodel.dir/estimator.cc.o.d"
  "CMakeFiles/probcon_faultmodel.dir/fault_curve.cc.o"
  "CMakeFiles/probcon_faultmodel.dir/fault_curve.cc.o.d"
  "CMakeFiles/probcon_faultmodel.dir/joint_model.cc.o"
  "CMakeFiles/probcon_faultmodel.dir/joint_model.cc.o.d"
  "libprobcon_faultmodel.a"
  "libprobcon_faultmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probcon_faultmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
