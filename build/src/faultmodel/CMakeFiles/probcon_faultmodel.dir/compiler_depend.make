# Empty compiler generated dependencies file for probcon_faultmodel.
# This may be replaced when dependencies are built.
