
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faultmodel/afr.cc" "src/faultmodel/CMakeFiles/probcon_faultmodel.dir/afr.cc.o" "gcc" "src/faultmodel/CMakeFiles/probcon_faultmodel.dir/afr.cc.o.d"
  "/root/repo/src/faultmodel/estimator.cc" "src/faultmodel/CMakeFiles/probcon_faultmodel.dir/estimator.cc.o" "gcc" "src/faultmodel/CMakeFiles/probcon_faultmodel.dir/estimator.cc.o.d"
  "/root/repo/src/faultmodel/fault_curve.cc" "src/faultmodel/CMakeFiles/probcon_faultmodel.dir/fault_curve.cc.o" "gcc" "src/faultmodel/CMakeFiles/probcon_faultmodel.dir/fault_curve.cc.o.d"
  "/root/repo/src/faultmodel/joint_model.cc" "src/faultmodel/CMakeFiles/probcon_faultmodel.dir/joint_model.cc.o" "gcc" "src/faultmodel/CMakeFiles/probcon_faultmodel.dir/joint_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/probcon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/probcon_prob.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
