file(REMOVE_RECURSE
  "libprobcon_faultmodel.a"
)
