# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("prob")
subdirs("linalg")
subdirs("faultmodel")
subdirs("quorum")
subdirs("analysis")
subdirs("markov")
subdirs("sim")
subdirs("consensus")
subdirs("probnative")
subdirs("telemetry")
