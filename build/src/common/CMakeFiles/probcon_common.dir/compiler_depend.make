# Empty compiler generated dependencies file for probcon_common.
# This may be replaced when dependencies are built.
