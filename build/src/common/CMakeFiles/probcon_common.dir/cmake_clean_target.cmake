file(REMOVE_RECURSE
  "libprobcon_common.a"
)
