file(REMOVE_RECURSE
  "CMakeFiles/probcon_common.dir/logging.cc.o"
  "CMakeFiles/probcon_common.dir/logging.cc.o.d"
  "CMakeFiles/probcon_common.dir/rng.cc.o"
  "CMakeFiles/probcon_common.dir/rng.cc.o.d"
  "CMakeFiles/probcon_common.dir/status.cc.o"
  "CMakeFiles/probcon_common.dir/status.cc.o.d"
  "libprobcon_common.a"
  "libprobcon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probcon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
