
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prob/binomial.cc" "src/prob/CMakeFiles/probcon_prob.dir/binomial.cc.o" "gcc" "src/prob/CMakeFiles/probcon_prob.dir/binomial.cc.o.d"
  "/root/repo/src/prob/combinatorics.cc" "src/prob/CMakeFiles/probcon_prob.dir/combinatorics.cc.o" "gcc" "src/prob/CMakeFiles/probcon_prob.dir/combinatorics.cc.o.d"
  "/root/repo/src/prob/interval.cc" "src/prob/CMakeFiles/probcon_prob.dir/interval.cc.o" "gcc" "src/prob/CMakeFiles/probcon_prob.dir/interval.cc.o.d"
  "/root/repo/src/prob/poisson_binomial.cc" "src/prob/CMakeFiles/probcon_prob.dir/poisson_binomial.cc.o" "gcc" "src/prob/CMakeFiles/probcon_prob.dir/poisson_binomial.cc.o.d"
  "/root/repo/src/prob/probability.cc" "src/prob/CMakeFiles/probcon_prob.dir/probability.cc.o" "gcc" "src/prob/CMakeFiles/probcon_prob.dir/probability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/probcon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
