file(REMOVE_RECURSE
  "CMakeFiles/probcon_prob.dir/binomial.cc.o"
  "CMakeFiles/probcon_prob.dir/binomial.cc.o.d"
  "CMakeFiles/probcon_prob.dir/combinatorics.cc.o"
  "CMakeFiles/probcon_prob.dir/combinatorics.cc.o.d"
  "CMakeFiles/probcon_prob.dir/interval.cc.o"
  "CMakeFiles/probcon_prob.dir/interval.cc.o.d"
  "CMakeFiles/probcon_prob.dir/poisson_binomial.cc.o"
  "CMakeFiles/probcon_prob.dir/poisson_binomial.cc.o.d"
  "CMakeFiles/probcon_prob.dir/probability.cc.o"
  "CMakeFiles/probcon_prob.dir/probability.cc.o.d"
  "libprobcon_prob.a"
  "libprobcon_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probcon_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
