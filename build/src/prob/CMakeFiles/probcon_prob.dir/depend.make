# Empty dependencies file for probcon_prob.
# This may be replaced when dependencies are built.
