file(REMOVE_RECURSE
  "libprobcon_prob.a"
)
