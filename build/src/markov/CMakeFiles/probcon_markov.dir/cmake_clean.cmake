file(REMOVE_RECURSE
  "CMakeFiles/probcon_markov.dir/ctmc.cc.o"
  "CMakeFiles/probcon_markov.dir/ctmc.cc.o.d"
  "CMakeFiles/probcon_markov.dir/repair_model.cc.o"
  "CMakeFiles/probcon_markov.dir/repair_model.cc.o.d"
  "libprobcon_markov.a"
  "libprobcon_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probcon_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
