file(REMOVE_RECURSE
  "libprobcon_markov.a"
)
