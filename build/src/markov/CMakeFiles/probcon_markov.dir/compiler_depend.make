# Empty compiler generated dependencies file for probcon_markov.
# This may be replaced when dependencies are built.
