
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/markov/ctmc.cc" "src/markov/CMakeFiles/probcon_markov.dir/ctmc.cc.o" "gcc" "src/markov/CMakeFiles/probcon_markov.dir/ctmc.cc.o.d"
  "/root/repo/src/markov/repair_model.cc" "src/markov/CMakeFiles/probcon_markov.dir/repair_model.cc.o" "gcc" "src/markov/CMakeFiles/probcon_markov.dir/repair_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/probcon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/probcon_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/probcon_prob.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
