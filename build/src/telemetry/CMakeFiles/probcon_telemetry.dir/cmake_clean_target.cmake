file(REMOVE_RECURSE
  "libprobcon_telemetry.a"
)
