# Empty compiler generated dependencies file for probcon_telemetry.
# This may be replaced when dependencies are built.
