file(REMOVE_RECURSE
  "CMakeFiles/probcon_telemetry.dir/fleet_generator.cc.o"
  "CMakeFiles/probcon_telemetry.dir/fleet_generator.cc.o.d"
  "libprobcon_telemetry.a"
  "libprobcon_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probcon_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
