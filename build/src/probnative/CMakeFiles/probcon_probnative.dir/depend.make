# Empty dependencies file for probcon_probnative.
# This may be replaced when dependencies are built.
