
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/probnative/failure_detector.cc" "src/probnative/CMakeFiles/probcon_probnative.dir/failure_detector.cc.o" "gcc" "src/probnative/CMakeFiles/probcon_probnative.dir/failure_detector.cc.o.d"
  "/root/repo/src/probnative/leader_selector.cc" "src/probnative/CMakeFiles/probcon_probnative.dir/leader_selector.cc.o" "gcc" "src/probnative/CMakeFiles/probcon_probnative.dir/leader_selector.cc.o.d"
  "/root/repo/src/probnative/quorum_sizer.cc" "src/probnative/CMakeFiles/probcon_probnative.dir/quorum_sizer.cc.o" "gcc" "src/probnative/CMakeFiles/probcon_probnative.dir/quorum_sizer.cc.o.d"
  "/root/repo/src/probnative/reconfiguration.cc" "src/probnative/CMakeFiles/probcon_probnative.dir/reconfiguration.cc.o" "gcc" "src/probnative/CMakeFiles/probcon_probnative.dir/reconfiguration.cc.o.d"
  "/root/repo/src/probnative/reliability_aware_raft.cc" "src/probnative/CMakeFiles/probcon_probnative.dir/reliability_aware_raft.cc.o" "gcc" "src/probnative/CMakeFiles/probcon_probnative.dir/reliability_aware_raft.cc.o.d"
  "/root/repo/src/probnative/sortition.cc" "src/probnative/CMakeFiles/probcon_probnative.dir/sortition.cc.o" "gcc" "src/probnative/CMakeFiles/probcon_probnative.dir/sortition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/probcon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/probcon_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/faultmodel/CMakeFiles/probcon_faultmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/probcon_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/probcon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/probcon_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/probcon_quorum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
