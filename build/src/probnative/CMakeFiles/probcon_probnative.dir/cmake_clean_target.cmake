file(REMOVE_RECURSE
  "libprobcon_probnative.a"
)
