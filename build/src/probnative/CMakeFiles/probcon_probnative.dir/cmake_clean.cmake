file(REMOVE_RECURSE
  "CMakeFiles/probcon_probnative.dir/failure_detector.cc.o"
  "CMakeFiles/probcon_probnative.dir/failure_detector.cc.o.d"
  "CMakeFiles/probcon_probnative.dir/leader_selector.cc.o"
  "CMakeFiles/probcon_probnative.dir/leader_selector.cc.o.d"
  "CMakeFiles/probcon_probnative.dir/quorum_sizer.cc.o"
  "CMakeFiles/probcon_probnative.dir/quorum_sizer.cc.o.d"
  "CMakeFiles/probcon_probnative.dir/reconfiguration.cc.o"
  "CMakeFiles/probcon_probnative.dir/reconfiguration.cc.o.d"
  "CMakeFiles/probcon_probnative.dir/reliability_aware_raft.cc.o"
  "CMakeFiles/probcon_probnative.dir/reliability_aware_raft.cc.o.d"
  "CMakeFiles/probcon_probnative.dir/sortition.cc.o"
  "CMakeFiles/probcon_probnative.dir/sortition.cc.o.d"
  "libprobcon_probnative.a"
  "libprobcon_probnative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probcon_probnative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
