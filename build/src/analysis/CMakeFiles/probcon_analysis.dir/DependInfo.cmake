
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/committee.cc" "src/analysis/CMakeFiles/probcon_analysis.dir/committee.cc.o" "gcc" "src/analysis/CMakeFiles/probcon_analysis.dir/committee.cc.o.d"
  "/root/repo/src/analysis/cost.cc" "src/analysis/CMakeFiles/probcon_analysis.dir/cost.cc.o" "gcc" "src/analysis/CMakeFiles/probcon_analysis.dir/cost.cc.o.d"
  "/root/repo/src/analysis/dual_fault.cc" "src/analysis/CMakeFiles/probcon_analysis.dir/dual_fault.cc.o" "gcc" "src/analysis/CMakeFiles/probcon_analysis.dir/dual_fault.cc.o.d"
  "/root/repo/src/analysis/durability.cc" "src/analysis/CMakeFiles/probcon_analysis.dir/durability.cc.o" "gcc" "src/analysis/CMakeFiles/probcon_analysis.dir/durability.cc.o.d"
  "/root/repo/src/analysis/end_to_end.cc" "src/analysis/CMakeFiles/probcon_analysis.dir/end_to_end.cc.o" "gcc" "src/analysis/CMakeFiles/probcon_analysis.dir/end_to_end.cc.o.d"
  "/root/repo/src/analysis/importance_sampling.cc" "src/analysis/CMakeFiles/probcon_analysis.dir/importance_sampling.cc.o" "gcc" "src/analysis/CMakeFiles/probcon_analysis.dir/importance_sampling.cc.o.d"
  "/root/repo/src/analysis/placement.cc" "src/analysis/CMakeFiles/probcon_analysis.dir/placement.cc.o" "gcc" "src/analysis/CMakeFiles/probcon_analysis.dir/placement.cc.o.d"
  "/root/repo/src/analysis/protocol_spec.cc" "src/analysis/CMakeFiles/probcon_analysis.dir/protocol_spec.cc.o" "gcc" "src/analysis/CMakeFiles/probcon_analysis.dir/protocol_spec.cc.o.d"
  "/root/repo/src/analysis/reliability.cc" "src/analysis/CMakeFiles/probcon_analysis.dir/reliability.cc.o" "gcc" "src/analysis/CMakeFiles/probcon_analysis.dir/reliability.cc.o.d"
  "/root/repo/src/analysis/sensitivity.cc" "src/analysis/CMakeFiles/probcon_analysis.dir/sensitivity.cc.o" "gcc" "src/analysis/CMakeFiles/probcon_analysis.dir/sensitivity.cc.o.d"
  "/root/repo/src/analysis/timeline.cc" "src/analysis/CMakeFiles/probcon_analysis.dir/timeline.cc.o" "gcc" "src/analysis/CMakeFiles/probcon_analysis.dir/timeline.cc.o.d"
  "/root/repo/src/analysis/weighted.cc" "src/analysis/CMakeFiles/probcon_analysis.dir/weighted.cc.o" "gcc" "src/analysis/CMakeFiles/probcon_analysis.dir/weighted.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/probcon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/probcon_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/faultmodel/CMakeFiles/probcon_faultmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/probcon_quorum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
