# Empty compiler generated dependencies file for probcon_analysis.
# This may be replaced when dependencies are built.
