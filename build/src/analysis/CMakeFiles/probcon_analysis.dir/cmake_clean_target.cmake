file(REMOVE_RECURSE
  "libprobcon_analysis.a"
)
