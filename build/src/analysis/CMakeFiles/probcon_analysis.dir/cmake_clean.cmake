file(REMOVE_RECURSE
  "CMakeFiles/probcon_analysis.dir/committee.cc.o"
  "CMakeFiles/probcon_analysis.dir/committee.cc.o.d"
  "CMakeFiles/probcon_analysis.dir/cost.cc.o"
  "CMakeFiles/probcon_analysis.dir/cost.cc.o.d"
  "CMakeFiles/probcon_analysis.dir/dual_fault.cc.o"
  "CMakeFiles/probcon_analysis.dir/dual_fault.cc.o.d"
  "CMakeFiles/probcon_analysis.dir/durability.cc.o"
  "CMakeFiles/probcon_analysis.dir/durability.cc.o.d"
  "CMakeFiles/probcon_analysis.dir/end_to_end.cc.o"
  "CMakeFiles/probcon_analysis.dir/end_to_end.cc.o.d"
  "CMakeFiles/probcon_analysis.dir/importance_sampling.cc.o"
  "CMakeFiles/probcon_analysis.dir/importance_sampling.cc.o.d"
  "CMakeFiles/probcon_analysis.dir/placement.cc.o"
  "CMakeFiles/probcon_analysis.dir/placement.cc.o.d"
  "CMakeFiles/probcon_analysis.dir/protocol_spec.cc.o"
  "CMakeFiles/probcon_analysis.dir/protocol_spec.cc.o.d"
  "CMakeFiles/probcon_analysis.dir/reliability.cc.o"
  "CMakeFiles/probcon_analysis.dir/reliability.cc.o.d"
  "CMakeFiles/probcon_analysis.dir/sensitivity.cc.o"
  "CMakeFiles/probcon_analysis.dir/sensitivity.cc.o.d"
  "CMakeFiles/probcon_analysis.dir/timeline.cc.o"
  "CMakeFiles/probcon_analysis.dir/timeline.cc.o.d"
  "CMakeFiles/probcon_analysis.dir/weighted.cc.o"
  "CMakeFiles/probcon_analysis.dir/weighted.cc.o.d"
  "libprobcon_analysis.a"
  "libprobcon_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probcon_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
