# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for claim_safety_liveness_tradeoff.
