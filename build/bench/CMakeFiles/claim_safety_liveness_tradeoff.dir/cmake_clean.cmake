file(REMOVE_RECURSE
  "CMakeFiles/claim_safety_liveness_tradeoff.dir/claim_safety_liveness_tradeoff.cc.o"
  "CMakeFiles/claim_safety_liveness_tradeoff.dir/claim_safety_liveness_tradeoff.cc.o.d"
  "claim_safety_liveness_tradeoff"
  "claim_safety_liveness_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_safety_liveness_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
