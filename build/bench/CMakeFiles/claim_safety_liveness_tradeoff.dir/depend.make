# Empty dependencies file for claim_safety_liveness_tradeoff.
# This may be replaced when dependencies are built.
