file(REMOVE_RECURSE
  "CMakeFiles/faultcurve_fit.dir/faultcurve_fit.cc.o"
  "CMakeFiles/faultcurve_fit.dir/faultcurve_fit.cc.o.d"
  "faultcurve_fit"
  "faultcurve_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faultcurve_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
