# Empty compiler generated dependencies file for faultcurve_fit.
# This may be replaced when dependencies are built.
