file(REMOVE_RECURSE
  "CMakeFiles/correlated_faults.dir/correlated_faults.cc.o"
  "CMakeFiles/correlated_faults.dir/correlated_faults.cc.o.d"
  "correlated_faults"
  "correlated_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/correlated_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
