# Empty dependencies file for correlated_faults.
# This may be replaced when dependencies are built.
