# Empty compiler generated dependencies file for table1_pbft.
# This may be replaced when dependencies are built.
