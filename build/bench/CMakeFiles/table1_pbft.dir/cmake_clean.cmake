file(REMOVE_RECURSE
  "CMakeFiles/table1_pbft.dir/table1_pbft.cc.o"
  "CMakeFiles/table1_pbft.dir/table1_pbft.cc.o.d"
  "table1_pbft"
  "table1_pbft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_pbft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
