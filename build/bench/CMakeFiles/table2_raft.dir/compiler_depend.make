# Empty compiler generated dependencies file for table2_raft.
# This may be replaced when dependencies are built.
