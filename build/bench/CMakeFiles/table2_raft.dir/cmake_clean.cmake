file(REMOVE_RECURSE
  "CMakeFiles/table2_raft.dir/table2_raft.cc.o"
  "CMakeFiles/table2_raft.dir/table2_raft.cc.o.d"
  "table2_raft"
  "table2_raft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_raft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
