file(REMOVE_RECURSE
  "CMakeFiles/markov_mttx.dir/markov_mttx.cc.o"
  "CMakeFiles/markov_mttx.dir/markov_mttx.cc.o.d"
  "markov_mttx"
  "markov_mttx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_mttx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
