# Empty compiler generated dependencies file for markov_mttx.
# This may be replaced when dependencies are built.
