file(REMOVE_RECURSE
  "CMakeFiles/probnative_ablation.dir/probnative_ablation.cc.o"
  "CMakeFiles/probnative_ablation.dir/probnative_ablation.cc.o.d"
  "probnative_ablation"
  "probnative_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probnative_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
