# Empty dependencies file for probnative_ablation.
# This may be replaced when dependencies are built.
