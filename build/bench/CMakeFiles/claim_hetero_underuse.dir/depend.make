# Empty dependencies file for claim_hetero_underuse.
# This may be replaced when dependencies are built.
