file(REMOVE_RECURSE
  "CMakeFiles/claim_hetero_underuse.dir/claim_hetero_underuse.cc.o"
  "CMakeFiles/claim_hetero_underuse.dir/claim_hetero_underuse.cc.o.d"
  "claim_hetero_underuse"
  "claim_hetero_underuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_hetero_underuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
