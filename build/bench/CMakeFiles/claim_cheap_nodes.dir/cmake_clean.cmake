file(REMOVE_RECURSE
  "CMakeFiles/claim_cheap_nodes.dir/claim_cheap_nodes.cc.o"
  "CMakeFiles/claim_cheap_nodes.dir/claim_cheap_nodes.cc.o.d"
  "claim_cheap_nodes"
  "claim_cheap_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_cheap_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
