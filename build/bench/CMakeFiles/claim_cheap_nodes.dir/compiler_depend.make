# Empty compiler generated dependencies file for claim_cheap_nodes.
# This may be replaced when dependencies are built.
