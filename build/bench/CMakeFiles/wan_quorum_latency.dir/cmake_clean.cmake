file(REMOVE_RECURSE
  "CMakeFiles/wan_quorum_latency.dir/wan_quorum_latency.cc.o"
  "CMakeFiles/wan_quorum_latency.dir/wan_quorum_latency.cc.o.d"
  "wan_quorum_latency"
  "wan_quorum_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_quorum_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
