# Empty compiler generated dependencies file for wan_quorum_latency.
# This may be replaced when dependencies are built.
