file(REMOVE_RECURSE
  "CMakeFiles/claim_persistence_overlap.dir/claim_persistence_overlap.cc.o"
  "CMakeFiles/claim_persistence_overlap.dir/claim_persistence_overlap.cc.o.d"
  "claim_persistence_overlap"
  "claim_persistence_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_persistence_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
