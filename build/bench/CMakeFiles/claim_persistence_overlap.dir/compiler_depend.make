# Empty compiler generated dependencies file for claim_persistence_overlap.
# This may be replaced when dependencies are built.
