# Empty compiler generated dependencies file for claim_quorum_overkill.
# This may be replaced when dependencies are built.
