file(REMOVE_RECURSE
  "CMakeFiles/claim_quorum_overkill.dir/claim_quorum_overkill.cc.o"
  "CMakeFiles/claim_quorum_overkill.dir/claim_quorum_overkill.cc.o.d"
  "claim_quorum_overkill"
  "claim_quorum_overkill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_quorum_overkill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
