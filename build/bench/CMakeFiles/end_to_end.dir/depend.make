# Empty dependencies file for end_to_end.
# This may be replaced when dependencies are built.
