file(REMOVE_RECURSE
  "CMakeFiles/end_to_end.dir/end_to_end.cc.o"
  "CMakeFiles/end_to_end.dir/end_to_end.cc.o.d"
  "end_to_end"
  "end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
