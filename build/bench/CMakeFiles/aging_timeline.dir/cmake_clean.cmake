file(REMOVE_RECURSE
  "CMakeFiles/aging_timeline.dir/aging_timeline.cc.o"
  "CMakeFiles/aging_timeline.dir/aging_timeline.cc.o.d"
  "aging_timeline"
  "aging_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aging_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
