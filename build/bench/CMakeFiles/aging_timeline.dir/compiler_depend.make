# Empty compiler generated dependencies file for aging_timeline.
# This may be replaced when dependencies are built.
