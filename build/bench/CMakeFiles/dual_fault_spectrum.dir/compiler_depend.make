# Empty compiler generated dependencies file for dual_fault_spectrum.
# This may be replaced when dependencies are built.
