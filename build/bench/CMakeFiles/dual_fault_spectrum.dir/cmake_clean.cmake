file(REMOVE_RECURSE
  "CMakeFiles/dual_fault_spectrum.dir/dual_fault_spectrum.cc.o"
  "CMakeFiles/dual_fault_spectrum.dir/dual_fault_spectrum.cc.o.d"
  "dual_fault_spectrum"
  "dual_fault_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_fault_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
