// nines_calculator — a command-line reliability calculator for deployment reviews.
//
// Usage:
//   nines_calculator                        # demo sweep
//   nines_calculator raft 5 0.01            # protocol, n, uniform per-window p
//   nines_calculator pbft 7 0.01
//   nines_calculator raft 0.01 0.01 0.04    # heterogeneous: explicit per-node probabilities
//
// Prints safety / liveness / safe-and-live with paper-style percentages and nines, plus the
// durability of worst-vs-best persistence-quorum placement for Raft.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/analysis/durability.h"
#include "src/analysis/reliability.h"
#include "src/analysis/sensitivity.h"

namespace probcon {
namespace {

void PrintRaft(const std::vector<double>& probabilities) {
  const int n = static_cast<int>(probabilities.size());
  const auto config = RaftConfig::Standard(n);
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(probabilities);
  const auto report = AnalyzeRaft(config, analyzer);
  std::printf("%s\n", config.Describe().c_str());
  std::printf("  safe          %s\n", FormatPercent(report.safe).c_str());
  std::printf("  live          %s (%s)\n", FormatPercent(report.live).c_str(),
              FormatNines(report.live).c_str());
  std::printf("  safe-and-live %s (%s)\n", FormatPercent(report.safe_and_live).c_str(),
              FormatNines(report.safe_and_live).c_str());
  const IndependentFailureModel model(probabilities);
  const auto durability = AnalyzePlacementDurability(model, config.q_per);
  std::printf("  durability    worst-placement %s / best-placement %s\n",
              FormatPercent(durability.worst_case_loss.Not()).c_str(),
              FormatPercent(durability.best_case_loss.Not()).c_str());
  // Where does the failure mass come from? (Exact per-node sensitivities.)
  const auto sensitivities = RaftSensitivity(probabilities);
  std::printf("  sensitivity   ");
  for (const auto& s : sensitivities) {
    std::printf("node%d:%.2g ", s.node, s.derivative);
  }
  std::printf("(d unreliability / d p_i)\n");
}

void PrintPbft(const std::vector<double>& probabilities) {
  const int n = static_cast<int>(probabilities.size());
  const auto config = PbftConfig::Standard(n);
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(probabilities);
  const auto report = AnalyzePbft(config, analyzer);
  std::printf("%s\n", config.Describe().c_str());
  std::printf("  safe          %s (%s)\n", FormatPercent(report.safe).c_str(),
              FormatNines(report.safe).c_str());
  std::printf("  live          %s (%s)\n", FormatPercent(report.live).c_str(),
              FormatNines(report.live).c_str());
  std::printf("  safe-and-live %s\n", FormatPercent(report.safe_and_live).c_str());
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    std::printf("== nines calculator (demo; see header for usage) ==\n\n");
    for (const double p : {0.01, 0.04}) {
      std::printf("--- uniform p = %g ---\n", p);
      PrintRaft(std::vector<double>(5, p));
      PrintPbft(std::vector<double>(7, p));
      std::printf("\n");
    }
    return 0;
  }
  const std::string protocol = argv[1];
  std::vector<double> probabilities;
  if (argc == 4 && std::atof(argv[2]) >= 1.0) {
    // "protocol n p" form.
    const int n = std::atoi(argv[2]);
    const double p = std::atof(argv[3]);
    if (n < 1 || n > 64 || p < 0.0 || p >= 1.0) {
      std::fprintf(stderr, "error: need 1 <= n <= 64 and 0 <= p < 1\n");
      return 1;
    }
    probabilities.assign(n, p);
  } else {
    // "protocol p1 p2 ..." form.
    for (int arg = 2; arg < argc; ++arg) {
      const double p = std::atof(argv[arg]);
      if (p < 0.0 || p >= 1.0) {
        std::fprintf(stderr, "error: probability %s out of [0,1)\n", argv[arg]);
        return 1;
      }
      probabilities.push_back(p);
    }
  }
  if (probabilities.empty()) {
    std::fprintf(stderr, "error: no node probabilities given\n");
    return 1;
  }
  if (protocol == "raft") {
    PrintRaft(probabilities);
  } else if (protocol == "pbft") {
    if (probabilities.size() < 4) {
      std::fprintf(stderr, "error: pbft needs n >= 4\n");
      return 1;
    }
    PrintPbft(probabilities);
  } else {
    std::fprintf(stderr, "error: unknown protocol '%s' (raft|pbft)\n", protocol.c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace probcon

int main(int argc, char** argv) { return probcon::Run(argc, argv); }
