// Quickstart: the 5-minute tour of the probcon API.
//
//   1. Describe your deployment as per-node failure probabilities (fault curves -> window
//      probabilities).
//   2. Ask how safe and live Raft/PBFT actually are on it (the paper's §3 analysis).
//   3. Let the library pick quorum sizes / committees for a reliability target (§4).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "src/analysis/committee.h"
#include "src/analysis/reliability.h"
#include "src/faultmodel/afr.h"
#include "src/faultmodel/fault_curve.h"
#include "src/probnative/quorum_sizer.h"

namespace probcon {
namespace {

void Run() {
  std::printf("== probcon quickstart ==\n\n");

  // --- 1. From fault curves to window failure probabilities -----------------
  // A mature server with a 2%% annual failure rate, analyzed over a 30-day window.
  const ConstantFaultCurve mature(RateFromAfr(0.02));
  const double window_hours = 30 * 24.0;
  const double p_mature = mature.FailureProbability(0.0, window_hours);

  // An aging server deep in Weibull wear-out (shape 3), same window, at 5 years of age.
  const WeibullFaultCurve aging(/*shape=*/3.0, /*scale=*/70000.0);
  const double age = 5 * kHoursPerYear;
  const double p_aging = aging.FailureProbability(age, age + window_hours);

  std::printf("30-day failure probability: mature node %.4f%%, 5-year-old node %.4f%%\n\n",
              100.0 * p_mature, 100.0 * p_aging);

  // --- 2. What does Raft really guarantee on a mixed cluster? ----------------
  const std::vector<double> cluster = {p_mature, p_mature, p_aging, p_aging, p_aging};
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(cluster);
  const auto report = AnalyzeRaft(RaftConfig::Standard(5), analyzer);
  std::printf("5-node Raft (2 mature + 3 aging): safe %s, live %s, safe-and-live %s\n",
              FormatPercent(report.safe).c_str(), FormatPercent(report.live).c_str(),
              FormatPercent(report.safe_and_live).c_str());
  std::printf("  -> that's %s of safe-and-live, not \"guaranteed\"\n\n",
              FormatNines(report.safe_and_live).c_str());

  // --- 3. Probability-native choices -----------------------------------------
  // Pick the smallest committee from a 15-node fleet that delivers four nines.
  std::vector<double> fleet;
  for (int i = 0; i < 15; ++i) {
    fleet.push_back(i < 5 ? p_mature : p_aging);
  }
  const Probability target = Probability::FromComplement(1e-4);  // Four nines.
  const int committee_size = MinCommitteeSizeForTarget(fleet, target);
  std::printf("smallest most-reliable committee hitting four nines: %d of %zu nodes\n",
              committee_size, fleet.size());

  // And size Raft quorums on the full fleet for the same target.
  const auto sized = SizeRaftQuorums(fleet, target);
  if (sized.ok()) {
    std::printf("sized quorums on the full fleet: %s -> live %s\n",
                sized->config.Describe().c_str(), FormatPercent(sized->live).c_str());
  } else {
    std::printf("quorum sizing: %s\n", sized.status().ToString().c_str());
  }
}

}  // namespace
}  // namespace probcon

int main() {
  probcon::Run();
  return 0;
}
