// Chaos workbench: the command-line surface over src/chaos. Three modes, one per workflow
// stage (docs/CHAOS.md walks through all of them):
//
//   chaos_run --random N [--seed S] [--protocol P] [--out DIR]
//       Fuzz: run N generated ChaosPlans against the protocol; every violation is shrunk and
//       dumped as a replayable repro bundle under DIR (plan + minimal plan + obs trace).
//
//   chaos_run --plan FILE [--protocol P] [--trace FILE]
//       Replay: execute one plan from its JSON dump — bit-identical to the run that produced
//       it (the plan embeds its seed) — and report the verdict.
//
//   chaos_run --shrink FILE [--protocol P] [--out DIR]
//       Shrink: greedily minimize a failing plan and write <plan>.min.plan.json.
//
// Protocols: raft (default), paxos, pbft, benor.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "src/chaos/fuzz.h"

namespace probcon {
namespace {

std::optional<FuzzProtocol> ParseProtocol(const std::string& name) {
  if (name == "raft") return FuzzProtocol::kRaft;
  if (name == "paxos") return FuzzProtocol::kPaxos;
  if (name == "pbft") return FuzzProtocol::kPbft;
  if (name == "benor") return FuzzProtocol::kBenOr;
  return std::nullopt;
}

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --random N [--seed S] [--protocol P] [--out DIR]\n"
               "       %s --plan FILE [--protocol P] [--trace FILE]\n"
               "       %s --shrink FILE [--protocol P] [--out DIR]\n"
               "protocols: raft paxos pbft benor\n",
               argv0, argv0, argv0);
  return 2;
}

void PrintVerdict(const ChaosRunResult& result) {
  std::printf("safety:    %s\n", result.safety_ok ? "OK" : "VIOLATED");
  if (!result.safety_ok) std::printf("violation: %s\n", result.violation.c_str());
  std::printf("committed: %llu slot(s)\n",
              static_cast<unsigned long long>(result.committed_slots));
  if (result.progress_after_chaos) {
    std::printf("liveness:  recovered %.1f ms after the last regime ended\n",
                result.recovery_time);
  } else {
    std::printf("liveness:  no post-chaos progress observed\n");
  }
}

int RunRandom(int count, uint64_t seed, FuzzProtocol protocol, const std::string& out_dir) {
  FuzzCampaignOptions options;
  options.run.protocol = protocol;
  options.generator.node_count = options.run.node_count =
      protocol == FuzzProtocol::kPbft ? 4 : 5;
  options.seed = seed;
  options.plan_count = count;
  options.repro_dir = out_dir;

  const Result<FuzzReport> report = RunFuzzCampaign(options);
  if (!report.ok()) {
    std::fprintf(stderr, "fuzz campaign failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->Describe().c_str());
  return report->safety_violations == 0 ? 0 : 1;
}

int RunReplay(const std::string& plan_path, FuzzProtocol protocol,
              const std::string& trace_path) {
  const std::optional<std::string> json = ReadFile(plan_path);
  if (!json) {
    std::fprintf(stderr, "cannot read %s\n", plan_path.c_str());
    return 1;
  }
  const Result<ChaosPlan> plan = ChaosPlan::FromJson(*json);
  if (!plan.ok()) {
    std::fprintf(stderr, "bad plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", plan->Describe().c_str());

  ChaosRunOptions options;
  options.protocol = protocol;
  options.node_count = protocol == FuzzProtocol::kPbft ? 4 : 5;
  options.capture_trace = !trace_path.empty();
  const Result<ChaosRunResult> result = ExecuteChaosPlan(*plan, options);
  if (!result.ok()) {
    std::fprintf(stderr, "replay failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  PrintVerdict(*result);
  if (!trace_path.empty()) {
    std::ofstream(trace_path, std::ios::binary) << result->trace_json;
    std::printf("trace:     %s\n", trace_path.c_str());
  }
  return result->safety_ok ? 0 : 1;
}

int RunShrink(const std::string& plan_path, FuzzProtocol protocol,
              const std::string& out_dir) {
  const std::optional<std::string> json = ReadFile(plan_path);
  if (!json) {
    std::fprintf(stderr, "cannot read %s\n", plan_path.c_str());
    return 1;
  }
  const Result<ChaosPlan> plan = ChaosPlan::FromJson(*json);
  if (!plan.ok()) {
    std::fprintf(stderr, "bad plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  ChaosRunOptions options;
  options.protocol = protocol;
  options.node_count = protocol == FuzzProtocol::kPbft ? 4 : 5;
  const Result<ShrinkOutcome> shrunk = ShrinkChaosPlan(*plan, options);
  if (!shrunk.ok()) {
    std::fprintf(stderr, "shrink failed: %s\n", shrunk.status().ToString().c_str());
    return 1;
  }
  std::printf("shrunk %zu -> %zu regime(s) in %d evaluation(s)\n", plan->regimes.size(),
              shrunk->plan.regimes.size(), shrunk->evaluations);
  std::printf("%s\n", shrunk->plan.Describe().c_str());

  const std::string out_path =
      (out_dir.empty() ? plan_path : out_dir + "/" + "shrunk") + ".min.plan.json";
  std::ofstream(out_path, std::ios::binary) << shrunk->plan.ToJson();
  std::printf("minimal plan: %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace probcon

int main(int argc, char** argv) {
  using namespace probcon;
  std::string plan_path, shrink_path, out_dir, trace_path, protocol_name = "raft";
  int random_count = -1;
  uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* value = nullptr;
    if (arg == "--random" && (value = next())) {
      random_count = std::atoi(value);
    } else if (arg == "--plan" && (value = next())) {
      plan_path = value;
    } else if (arg == "--shrink" && (value = next())) {
      shrink_path = value;
    } else if (arg == "--seed" && (value = next())) {
      seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--protocol" && (value = next())) {
      protocol_name = value;
    } else if (arg == "--out" && (value = next())) {
      out_dir = value;
    } else if (arg == "--trace" && (value = next())) {
      trace_path = value;
    } else {
      return Usage(argv[0]);
    }
  }

  const std::optional<FuzzProtocol> protocol = ParseProtocol(protocol_name);
  if (!protocol) return Usage(argv[0]);

  if (random_count >= 0) return RunRandom(random_count, seed, *protocol, out_dir);
  if (!plan_path.empty()) return RunReplay(plan_path, *protocol, trace_path);
  if (!shrink_path.empty()) return RunShrink(shrink_path, *protocol, out_dir);
  return Usage(argv[0]);
}
