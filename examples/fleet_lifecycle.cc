// fleet_lifecycle — the operator's tour of src/lifecycle (docs/LIFECYCLE.md).
//
// Usage:
//   fleet_lifecycle            # demo: mixed-vintage Raft fleet, reconfiguration cost,
//                              # repair-rate sweep, aging-mission round analysis
//
// Walks the three questions the lifecycle subsystem answers:
//   1. What is this repairable fleet's availability / MTTU / downtime per year — and what
//      does a joint-consensus reconfiguration window cost?
//   2. How fast must repair be for five nines?
//   3. How does mission reliability decay round over round as the fleet wears out?

#include <cstdio>
#include <memory>
#include <vector>

#include "src/analysis/round_analysis.h"
#include "src/common/check.h"
#include "src/faultmodel/fault_curve.h"
#include "src/faultmodel/round_schedule.h"
#include "src/lifecycle/fleet_model.h"
#include "src/lifecycle/repair_sweep.h"
#include "src/prob/probability.h"

namespace probcon {
namespace {

void PrintFleet() {
  std::printf("== 1. mixed-vintage repairable fleet (Raft) ==\n");
  // Three fresh nodes plus two survivors of an old vintage deep into Weibull wear-out,
  // sharing two repair technicians. The old vintage is being reconfigured out.
  const WeibullFaultCurve wearout(/*shape=*/2.0, /*scale=*/30000.0);
  FleetParams params;
  params.classes.push_back({.count = 3, .failure_rate = 2e-5});
  params.classes.push_back(FleetClass::FromCurve(wearout, /*age=*/45000.0, /*count=*/2));
  params.classes.back().in_new = false;  // Leaving the membership.
  params.repair_rate = 1.0 / 12.0;       // One repair per technician per 12 h.
  params.repair_servers = 2;
  const FleetModel model(params, FleetProtocol::kRaft);
  std::printf("  %d nodes in %d classes -> %d lumped states "
              "(old vintage hazard frozen at %.2g/h)\n",
              model.total_nodes(), static_cast<int>(params.classes.size()),
              model.state_count(), params.classes.back().failure_rate);

  const auto availability = model.TrySteadyStateAvailability(false, {});
  const auto mttu = model.TryMeanTimeToUnavailability(false, {});
  const auto mission = model.TryMissionReliability(/*mission_hours=*/8766.0, false, {});
  CHECK(availability.ok() && mttu.ok() && mission.ok());
  std::printf("  availability          %s   (%.2f h downtime/year)\n",
              FormatPercent(*availability).c_str(),
              FleetModel::DowntimeHoursPerYear(*availability));
  std::printf("  MTTU                  %.3g h\n", *mttu);
  std::printf("  1-year mission P(ok)  %s\n", FormatPercent(*mission).c_str());

  // The same chain under the joint old+new quorum predicate: the reconfiguration cost.
  const auto joint = model.TrySteadyStateAvailability(true, {});
  const auto joint_mttu = model.TryMeanTimeToUnavailability(true, {});
  CHECK(joint.ok() && joint_mttu.ok());
  std::printf("  during reconfiguration: availability %s, MTTU %.3g h\n\n",
              FormatPercent(*joint).c_str(), *joint_mttu);
}

void PrintSweep() {
  std::printf("== 2. how fast must repair be for five nines? ==\n");
  FleetParams params;
  params.classes.push_back({.count = 5, .failure_rate = 1e-3});
  params.repair_servers = 2;
  const auto rates = GeometricRepairRates(0.01, 10.0, 9);
  const auto sweep =
      TryRepairRateSweep(params, FleetProtocol::kRaft, rates, /*target=*/0.99999, {});
  CHECK(sweep.ok());
  std::printf("  mu (1/h)   MTTR (h)   availability      downtime (h/yr)\n");
  for (const auto& point : sweep->points) {
    std::printf("  %8.3g   %8.3g   %-15s   %10.4g\n", point.repair_rate,
                1.0 / point.repair_rate, FormatPercent(point.availability).c_str(),
                point.downtime_hours_per_year);
  }
  if (sweep->first_rate_meeting_target.has_value()) {
    std::printf("  -> five nines needs mu >= %.3g/h (MTTR <= %.3g h)\n\n",
                *sweep->first_rate_meeting_target, 1.0 / *sweep->first_rate_meeting_target);
  } else {
    std::printf("  -> no swept rate reaches five nines\n\n");
  }
}

void PrintMission() {
  std::printf("== 3. mission reliability as the fleet wears out ==\n");
  // Five nodes two-thirds of the way through a Weibull wear-out life, analyzed over a
  // 30-day mission in daily rounds — the per-round Theorem 3.2 numbers an operator would
  // watch drift.
  const WeibullFaultCurve wearout(/*shape=*/2.0, /*scale=*/900.0);
  const auto schedule =
      RoundSchedule::FromCurve(wearout, /*n=*/5, /*age=*/600.0, /*round_hours=*/24.0,
                               /*rounds=*/30);
  const auto analysis = AnalyzeRaftRounds(RaftConfig::Standard(5), schedule);
  std::printf("  round   P(live | fresh draws)   P(live | fail-stop so far)\n");
  for (int round : {0, 9, 19, 29}) {
    std::printf("  %5d   %-21s   %s\n", round + 1,
                FormatPercent(analysis.per_round[round].live).c_str(),
                FormatPercent(analysis.cumulative[round].live).c_str());
  }
  std::printf("  mission (every round live, fresh-draw regime): %s\n",
              FormatPercent(analysis.mission_live).c_str());
  std::printf("  mission (fail-stop, no repair):                %s\n",
              FormatPercent(analysis.cumulative.back().live).c_str());
}

void Run() {
  PrintFleet();
  PrintSweep();
  PrintMission();
}

}  // namespace
}  // namespace probcon

int main() {
  probcon::Run();
  return 0;
}
