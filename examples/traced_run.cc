// Traced run: one seeded Raft-on-simulator cluster with fault-curve crashes and repair,
// observed end to end through src/obs — the full pipeline a user follows to answer "what
// happened in this run":
//
//   1. attach a TraceLog + MetricsRegistry to the cluster's simulator;
//   2. run two simulated minutes with ~25%/min per-node crash rates and exponential repair;
//   3. write the structured trace (JSON + CSV) and metrics (JSON) to files;
//   4. print the human-readable RunReport;
//   5. re-run with the same seed and verify the serialized traces are byte-identical — the
//      determinism contract the simulator promises and tests/obs/tracer_test.cc enforces.
//
// Usage: traced_run [seed] [output_prefix]      (defaults: 7, "traced_run")

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/consensus/raft/raft_cluster.h"
#include "src/faultmodel/fault_curve.h"
#include "src/obs/export.h"
#include "src/obs/run_report.h"
#include "src/sim/failure_injector.h"

namespace probcon {
namespace {

constexpr int kNodes = 5;
constexpr SimTime kRunEnd = 120'000.0;  // Two simulated minutes.

struct TracedRun {
  TraceLog trace;
  MetricsRegistry metrics;
};

// Runs the scenario into `out`; everything observable derives from (seed, schedule) only.
void RunScenario(uint64_t seed, TracedRun& out) {
  RaftClusterOptions options;
  options.config = RaftConfig::Standard(kNodes);
  options.timing.snapshot_threshold = 50;
  options.seed = seed;
  RaftCluster cluster(options);
  cluster.simulator().AttachTracer(&out.trace, &out.metrics);
  cluster.simulator().InstallLogClock();  // LOG lines carry sim time during the run.

  std::vector<std::unique_ptr<FaultCurve>> curves;
  for (int i = 0; i < kNodes; ++i) {
    curves.push_back(std::make_unique<ConstantFaultCurve>(
        ConstantFaultCurve::FromWindowProbability(0.25, 60'000.0)));
  }
  FailureInjector injector(&cluster.simulator(), cluster.processes(), std::move(curves),
                           /*repair_rate=*/1.0 / 5'000.0);
  cluster.Start();
  injector.Arm();
  cluster.RunUntil(kRunEnd);

  out.metrics.GetGauge("run.sim_time_ms").Set(cluster.simulator().Now());
  out.metrics.GetGauge("run.committed_slots")
      .Set(static_cast<double>(cluster.checker().committed_slots()));
  out.metrics.GetGauge("run.safe").Set(cluster.checker().safe() ? 1.0 : 0.0);
  ClearLogClock();  // The clock reads a simulator that dies with this scope.
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

}  // namespace
}  // namespace probcon

int main(int argc, char** argv) {
  using namespace probcon;
  // Default seed chosen so the out-of-the-box run exercises crashes and recoveries.
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  const std::string prefix = argc > 2 ? argv[2] : "traced_run";

  TracedRun run;
  RunScenario(seed, run);

  const std::string trace_json = TraceToJson(run.trace);
  if (!WriteFile(prefix + ".trace.json", trace_json) ||
      !WriteFile(prefix + ".trace.csv", TraceToCsv(run.trace)) ||
      !WriteFile(prefix + ".metrics.json", MetricsToJson(run.metrics))) {
    return 1;
  }

  std::printf("seed %llu: %zu trace events -> %s.trace.json / .trace.csv / .metrics.json\n\n",
              static_cast<unsigned long long>(seed), run.trace.size(), prefix.c_str());
  std::printf("%s", RenderRunReport(run.trace, run.metrics).c_str());

  // Determinism check: an identical second run must serialize byte-for-byte identically.
  TracedRun replay;
  RunScenario(seed, replay);
  const bool identical = TraceToJson(replay.trace) == trace_json;
  std::printf("\ndeterminism: replay with seed %llu is %s\n",
              static_cast<unsigned long long>(seed),
              identical ? "byte-identical" : "DIFFERENT (bug!)");
  return identical ? 0 : 1;
}
