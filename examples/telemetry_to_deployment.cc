// End-to-end probability-native operations loop (the paper's §4 vision, executable):
//
//   telemetry -> fitted fault curves -> committee selection -> reliability report
//             -> preemptive reconfiguration as the fleet ages.
//
// The fleet telemetry is synthetic (see DESIGN.md substitutions) but flows through exactly
// the pipeline a real operator would run against drive-stats-style data.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/analysis/committee.h"
#include "src/analysis/reliability.h"
#include "src/faultmodel/afr.h"
#include "src/faultmodel/estimator.h"
#include "src/probnative/reconfiguration.h"
#include "src/telemetry/fleet_generator.h"

namespace probcon {
namespace {

void Run() {
  std::printf("== telemetry -> deployment pipeline ==\n");

  // 1. Two years of monitoring over a heterogeneous fleet.
  FleetGenerator generator(7);
  const auto cohorts = FleetGenerator::SyntheticDriveStatsFleet();
  std::printf("\n[1] fitting fault curves from %zu cohorts of telemetry\n", cohorts.size());
  std::vector<std::unique_ptr<FaultCurve>> fitted;
  for (const auto& cohort : cohorts) {
    const auto observations =
        generator.GenerateObservations(cohort, 2.0 * kHoursPerYear);
    const auto exponential = FitExponential(observations);
    const auto weibull = FitWeibull(observations);
    if (weibull.ok() &&
        (!exponential.ok() ||
         LogLikelihood(*weibull, observations) > LogLikelihood(*exponential, observations))) {
      fitted.push_back(weibull->Clone());
    } else if (exponential.ok()) {
      fitted.push_back(exponential->Clone());
    } else {
      fitted.push_back(cohort.curve->Clone());  // Degenerate telemetry; fall back.
    }
    std::printf("    %-18s -> %s\n", cohort.model.c_str(), fitted.back()->Describe().c_str());
  }

  // 2. A 12-machine pool: three machines per cohort, at assorted ages.
  std::printf("\n[2] pool of 12 machines (3 per cohort, ages 0.5-3 years)\n");
  std::vector<FleetNode> pool;
  std::vector<double> monthly_failure_probability;
  const double month = 30 * 24.0;
  for (int machine = 0; machine < 12; ++machine) {
    const int cohort = machine % 4;
    const double age = (0.5 + 0.75 * (machine / 4)) * kHoursPerYear;
    pool.push_back({machine, fitted[cohort].get(), age});
    monthly_failure_probability.push_back(
        fitted[cohort]->FailureProbability(age, age + month));
  }
  for (int machine = 0; machine < 12; ++machine) {
    std::printf("    m%-2d cohort=%s age=%.1fy p(fail/month)=%.3f%%\n", machine,
                cohorts[machine % 4].model.c_str(), pool[machine].age / kHoursPerYear,
                100.0 * monthly_failure_probability[machine]);
  }

  // 3. Pick a 5-node committee by predicted reliability; compare with a naive pick.
  std::printf("\n[3] committee selection (5 of 12)\n");
  const auto committee = SelectCommittee(monthly_failure_probability, 5,
                                         CommitteeStrategy::kMostReliable, nullptr);
  Rng rng(3);
  const auto naive = SelectCommittee(monthly_failure_probability, 5,
                                     CommitteeStrategy::kRandom, &rng);
  std::printf("    fault-curve aware: S&L %s\n",
              FormatPercent(CommitteeRaftReliability(monthly_failure_probability, committee))
                  .c_str());
  std::printf("    random pick:       S&L %s\n",
              FormatPercent(CommitteeRaftReliability(monthly_failure_probability, naive))
                  .c_str());

  // 4. Six months later the wear-out cohort has aged; replan preemptively.
  std::printf("\n[4] preemptive reconfiguration after six months of ageing\n");
  std::vector<FleetNode> aged = pool;
  for (auto& node : aged) {
    node.age += 0.5 * kHoursPerYear;
  }
  std::vector<int> spares;
  for (int machine = 0; machine < 12; ++machine) {
    bool in_committee = false;
    for (const int member : committee) {
      in_committee = in_committee || member == machine;
    }
    if (!in_committee) {
      spares.push_back(machine);
    }
  }
  const auto plan = PlanReconfiguration(aged, committee, spares, month,
                                        Probability::FromComplement(1e-6));
  std::printf("    committee reliability drifted to %s\n",
              FormatPercent(plan.reliability_before).c_str());
  for (const auto& swap : plan.swaps) {
    std::printf("    plan: %s\n", swap.Describe().c_str());
  }
  std::printf("    after plan: %s (%s six-nines target)\n",
              FormatPercent(plan.reliability_after).c_str(),
              plan.meets_target ? "meets" : "still below");
}

}  // namespace
}  // namespace probcon

int main() {
  probcon::Run();
  return 0;
}
