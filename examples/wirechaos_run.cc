// Wire-chaos workbench: the command-line surface over src/wirechaos. Runs a campaign of
// generated WirePlans against a live in-process probcond server through the fault-injecting
// ChaosProxy, and checks the resilience contract: every call resolves to a definite,
// acceptable status within its deadline — no hangs, no crashes, no nonsense verdicts
// (docs/CHAOS.md, "Wire chaos" walks through the workflow).
//
//   wirechaos_run [--plans N] [--seed S] [--out DIR] [--deadline-ms D]
//                 [--attempt-timeout-ms T] [--verbose]
//
// Failing plans are shrunk to a minimal repro and, with --out, dumped as
// wire-<i>.plan.json / wire-<i>.min.plan.json / wire-<i>.reason.txt under DIR. Exit 0 when
// every plan upholds the contract, 1 when any plan fails, 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/wirechaos/campaign.h"

int main(int argc, char** argv) {
  probcon::wirechaos::WireCampaignOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* value = nullptr;
    if (arg == "--plans" && (value = next())) {
      options.plans = std::atoi(value);
    } else if (arg == "--seed" && (value = next())) {
      options.seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--out" && (value = next())) {
      options.repro_dir = value;
    } else if (arg == "--deadline-ms" && (value = next())) {
      options.call_deadline_ms = std::atof(value);
    } else if (arg == "--attempt-timeout-ms" && (value = next())) {
      options.attempt_timeout_ms = std::atof(value);
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--plans N] [--seed S] [--out DIR] [--deadline-ms D]\n"
                   "       %*s [--attempt-timeout-ms T] [--verbose]\n",
                   argv[0], static_cast<int>(std::strlen(argv[0])), "");
      return 2;
    }
  }
  if (options.plans <= 0) {
    std::fprintf(stderr, "--plans must be positive\n");
    return 2;
  }

  const probcon::Result<probcon::wirechaos::WireCampaignResult> result =
      probcon::wirechaos::RunWireCampaign(options);
  if (!result.ok()) {
    std::fprintf(stderr, "wire campaign failed to run: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", result->Describe().c_str());
  return result->failures.empty() ? 0 : 1;
}
