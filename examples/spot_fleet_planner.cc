// Spot-fleet planner: the paper's cost story (§1/§3) as a deployment tool.
//
// You operate a replicated control plane and can buy three node tiers:
//   on-demand   p = 1% / month   $10 per node-month
//   previous-gen p = 4% / month  $3
//   spot        p = 8% / month   $1
//
// For each reliability target (in nines of monthly safe-and-live probability), the planner
// searches homogeneous clusters and two-tier mixes and prints the cheapest qualifying
// cluster — making the "9 cheap nodes beat 3 good nodes" trade-off a routine query.

#include <cmath>
#include <cstdio>
#include <vector>

#include "src/analysis/cost.h"
#include "src/prob/probability.h"

namespace probcon {
namespace {

void Run() {
  std::printf("== spot fleet planner ==\n\n");
  const std::vector<NodeType> catalog = {
      {"on-demand", 0.01, 10.0},
      {"prev-gen", 0.04, 3.0},
      {"spot", 0.08, 1.0},
  };

  std::printf("catalog:\n");
  for (const auto& type : catalog) {
    std::printf("  %-10s p(fail/month) = %.0f%%  price = $%.0f\n", type.name.c_str(),
                100.0 * type.failure_probability, type.unit_price);
  }

  ClusterSearchOptions options;
  options.max_n = 13;

  std::printf("\ncheapest cluster per target (monthly S&L):\n");
  for (const double nines : {2.0, 3.0, 4.0, 5.0, 6.0, 7.0}) {
    const auto target = Probability::FromComplement(std::pow(10.0, -nines));
    const auto plan = CheapestRaftCluster(catalog, target, options);
    if (plan.ok()) {
      std::printf("  %.0f nines: %s\n", nines, plan->Describe().c_str());
    } else {
      std::printf("  %.0f nines: not reachable with max_n=%d\n", nines, options.max_n);
    }
  }

  // What does insisting on on-demand-only cost at each target?
  std::printf("\npremium for refusing spot/prev-gen capacity:\n");
  ClusterSearchOptions on_demand_only = options;
  on_demand_only.allow_two_type_mixes = false;
  for (const double nines : {3.0, 5.0}) {
    const auto target = Probability::FromComplement(std::pow(10.0, -nines));
    const auto open_plan = CheapestRaftCluster(catalog, target, options);
    const auto closed_plan = CheapestRaftCluster({catalog[0]}, target, on_demand_only);
    if (open_plan.ok() && closed_plan.ok()) {
      std::printf("  %.0f nines: $%.0f vs $%.0f -> %.1fx\n", nines, closed_plan->total_cost,
                  open_plan->total_cost, closed_plan->total_cost / open_plan->total_cost);
    }
  }
}

}  // namespace
}  // namespace probcon

int main() {
  probcon::Run();
  return 0;
}
