// Simulated cluster demo: run real Raft and PBFT on the discrete-event simulator with
// fault-curve-driven crashes, and watch the SafetyChecker's verdicts.
//
// Three scenarios:
//   (a) healthy 5-node Raft under moderate node crash rates with repair — stays safe & live;
//   (b) 4-node PBFT with two colluding Byzantine replicas (equivocating leader + promiscuous
//       voter) — exceeds Theorem 3.1's threshold, and the checker catches real conflicting
//       commits;
//   (c) Ben-Or randomized consensus — decides in a handful of rounds despite crashes.

#include <cstdio>
#include <memory>

#include "src/consensus/benor/benor_node.h"
#include "src/consensus/pbft/pbft_cluster.h"
#include "src/consensus/raft/raft_cluster.h"
#include "src/faultmodel/fault_curve.h"
#include "src/sim/failure_injector.h"

namespace probcon {
namespace {

void RunHealthyRaft() {
  std::printf("--- (a) 5-node Raft, crash rate ~25%%/min with repair ---\n");
  RaftClusterOptions options;
  options.config = RaftConfig::Standard(5);
  options.seed = 7;
  RaftCluster cluster(options);

  std::vector<std::unique_ptr<FaultCurve>> curves;
  for (int i = 0; i < 5; ++i) {
    curves.push_back(std::make_unique<ConstantFaultCurve>(
        ConstantFaultCurve::FromWindowProbability(0.25, 60'000.0)));
  }
  FailureInjector injector(&cluster.simulator(), cluster.processes(), std::move(curves),
                           /*repair_rate=*/1.0 / 5'000.0);
  cluster.Start();
  injector.Arm();
  cluster.RunUntil(120'000.0);  // Two simulated minutes.

  const auto& checker = cluster.checker();
  std::printf("committed %llu slots, safe=%s, crashes=%d, recoveries=%d\n",
              static_cast<unsigned long long>(checker.committed_slots()),
              checker.safe() ? "yes" : "NO", injector.crash_count(),
              injector.recovery_count());
  if (!checker.commit_latency().empty()) {
    std::printf("commit latency: mean %.1f ms, p99 %.1f ms\n",
                checker.commit_latency().Mean(), checker.commit_latency().Percentile(0.99));
  }
  std::printf("\n");
}

void RunByzantinePbft() {
  std::printf("--- (b) 4-node PBFT with 2 Byzantine replicas (f-threshold exceeded) ---\n");
  PbftClusterOptions options;
  options.config = PbftConfig::Standard(4);
  options.behaviors = {ByzantineBehavior::kEquivocate, ByzantineBehavior::kPromiscuous,
                       ByzantineBehavior::kHonest, ByzantineBehavior::kHonest};
  options.seed = 11;
  PbftCluster cluster(options);
  cluster.Start();
  cluster.RunUntil(30'000.0);

  const auto& checker = cluster.checker();
  std::printf("committed %llu slots, safety violations: %zu\n",
              static_cast<unsigned long long>(checker.committed_slots()),
              checker.violations().size());
  for (size_t i = 0; i < checker.violations().size() && i < 3; ++i) {
    std::printf("  %s\n", checker.violations()[i].Describe().c_str());
  }
  std::printf("\n");
}

void RunBenOr() {
  std::printf("--- (c) 7-node Ben-Or, f=3, mixed inputs, one early crash ---\n");
  Simulator simulator(13);
  Network network(&simulator, 7, std::make_unique<UniformLatencyModel>(5.0, 15.0));
  std::vector<std::unique_ptr<BenOrNode>> nodes;
  for (int i = 0; i < 7; ++i) {
    nodes.push_back(
        std::make_unique<BenOrNode>(&simulator, &network, i, /*fault_tolerance=*/3,
                                    /*initial_value=*/i % 2));
  }
  for (auto& node : nodes) {
    node->Start();
  }
  simulator.Schedule(20.0, [&nodes]() { nodes[0]->Crash(); });
  simulator.Run(60'000.0);

  int decided = 0;
  for (const auto& node : nodes) {
    if (!node->crashed() && node->decided()) {
      ++decided;
      std::printf("node %d decided %d in round %llu at t=%.0f ms\n", node->id(),
                  node->decision(), static_cast<unsigned long long>(node->decision_round()),
                  node->decision_time());
    }
  }
  std::printf("%d of 6 surviving nodes decided\n", decided);
}

}  // namespace
}  // namespace probcon

int main() {
  probcon::RunHealthyRaft();
  probcon::RunByzantinePbft();
  probcon::RunBenOr();
  return 0;
}
