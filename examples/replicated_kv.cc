// Replicated key-value store: the paper's framing made concrete — an application running on
// the fault-tolerant core, with reliability chosen probabilistically.
//
// A 5-node Raft cluster replicates a KV workload while nodes crash and recover under their
// fault curves. At the end, every replica applies its committed log prefix to a
// KvStateMachine; digests must agree on the shared prefix even though the cluster lived
// through crashes. The run closes with the analysis view: what S&L probability did this
// deployment actually have?

#include <cstdio>
#include <memory>
#include <string>

#include "src/analysis/reliability.h"
#include "src/consensus/common/kv_state_machine.h"
#include "src/consensus/raft/raft_cluster.h"
#include "src/faultmodel/fault_curve.h"
#include "src/sim/failure_injector.h"

namespace probcon {
namespace {

void Run() {
  std::printf("== replicated KV store on probabilistic Raft ==\n\n");

  RaftClusterOptions options;
  options.config = RaftConfig::Standard(5);
  options.seed = 31;
  options.client_interval = 40.0;
  // A mixed KV workload keyed by a small hot set.
  options.payload_generator = [](uint64_t id) {
    const std::string key = "key" + std::to_string(id % 16);
    switch (id % 4) {
      case 0:
        return "put " + key + " v" + std::to_string(id);
      case 1:
        return "get " + key;
      case 2:
        return "cas " + key + " v" + std::to_string(id - 2) + " v" + std::to_string(id);
      default:
        return "del " + key;
    }
  };
  RaftCluster cluster(options);

  // 30%/minute crash rate with ~3s repairs: a brutal environment, on purpose.
  std::vector<std::unique_ptr<FaultCurve>> curves;
  const double per_minute = 0.30;
  for (int i = 0; i < 5; ++i) {
    curves.push_back(std::make_unique<ConstantFaultCurve>(
        ConstantFaultCurve::FromWindowProbability(per_minute, 60'000.0)));
  }
  FailureInjector injector(&cluster.simulator(), cluster.processes(), std::move(curves),
                           /*repair_rate=*/1.0 / 3'000.0);
  cluster.Start();
  injector.Arm();
  cluster.RunUntil(120'000.0);  // Two minutes.

  std::printf("run: %llu slots committed, %d crashes, %d recoveries, safe=%s\n",
              static_cast<unsigned long long>(cluster.checker().committed_slots()),
              injector.crash_count(), injector.recovery_count(),
              cluster.checker().safe() ? "yes" : "NO");

  // Apply each replica's committed prefix; compare state digests over the SHARED prefix.
  uint64_t shared_prefix = UINT64_MAX;
  for (int i = 0; i < cluster.size(); ++i) {
    shared_prefix = std::min(shared_prefix, cluster.node(i).commit_index());
  }
  std::printf("shared committed prefix across all replicas: %llu entries\n",
              static_cast<unsigned long long>(shared_prefix));

  uint64_t reference_digest = 0;
  bool all_equal = true;
  for (int i = 0; i < cluster.size(); ++i) {
    KvStateMachine machine;
    const auto& log = cluster.node(i).log();
    for (uint64_t slot = 1; slot <= shared_prefix; ++slot) {
      machine.Apply(log[slot - 1].command);
    }
    if (i == 0) {
      reference_digest = machine.Digest();
    }
    all_equal = all_equal && machine.Digest() == reference_digest;
    std::printf("  replica %d: applied %llu commands, digest %016llx\n", i,
                static_cast<unsigned long long>(machine.applied_count()),
                static_cast<unsigned long long>(machine.Digest()));
  }
  std::printf("replica state machines agree on the shared prefix: %s\n\n",
              all_equal ? "yes" : "NO");

  // The probabilistic view of this deployment (per 2-minute window).
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(5, per_minute * 2.0);
  const auto report = AnalyzeRaft(options.config, analyzer);
  std::printf("analysis: a 5-node cluster with ~%.0f%% failure probability per run window is\n"
              "%s safe-and-live per window — crash-recovery repair is what kept this run "
              "committing.\n",
              100.0 * per_minute * 2.0, FormatPercent(report.safe_and_live).c_str());
}

}  // namespace
}  // namespace probcon

int main() {
  probcon::Run();
  return 0;
}
