// End-to-end coverage for the `stats` introspection verb and the per-request trace echo:
// the snapshot shape (counters/gauges/histograms with quantiles), counter movement across
// a cold->warm cache transition, reset-window semantics, engine progress counters, and the
// TCP transport's connection metrics.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "src/common/json.h"
#include "src/obs/metrics.h"
#include "src/serve/client.h"
#include "src/serve/server.h"
#include "src/serve/spec.h"
#include "src/serve/transport.h"

namespace probcon::serve {
namespace {

Json Params(const std::string& text) {
  auto parsed = ParseJson(text, "test params");
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return *std::move(parsed);
}

// Counter value out of a stats result; -1 when absent (so expectations read naturally).
double CounterValue(const Json& result, const std::string& name) {
  const Json* metrics = result.Find("metrics");
  if (metrics == nullptr) return -1.0;
  const Json* counters = metrics->Find("counters");
  if (counters == nullptr) return -1.0;
  const Json* counter = counters->Find(name);
  return counter == nullptr ? -1.0 : counter->NumberValue();
}

double GaugeValue(const Json& result, const std::string& name) {
  const Json* metrics = result.Find("metrics");
  if (metrics == nullptr) return -1.0;
  const Json* gauges = metrics->Find("gauges");
  if (gauges == nullptr) return -1.0;
  const Json* gauge = gauges->Find(name);
  return gauge == nullptr ? -1.0 : gauge->NumberValue();
}

const Json* FindHistogram(const Json& result, const std::string& name) {
  const Json* metrics = result.Find("metrics");
  if (metrics == nullptr) return nullptr;
  const Json* histograms = metrics->Find("histograms");
  return histograms == nullptr ? nullptr : histograms->Find(name);
}

TEST(StatsVerbTest, SnapshotReflectsColdThenWarmCacheTraffic) {
  MetricsRegistry metrics;
  QueryServer server(ServerOptions{}, &metrics);
  ServeClient client(std::make_unique<LoopbackChannel>(server));

  auto cold = client.Query("table1", Params(R"({"n": 4})"));
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_TRUE(cold->status.ok()) << cold->status.ToString();
  EXPECT_FALSE(cold->cached);

  auto stats_cold = client.Query("stats", Json::Object());
  ASSERT_TRUE(stats_cold.ok());
  ASSERT_TRUE(stats_cold->status.ok()) << stats_cold->status.ToString();
  EXPECT_DOUBLE_EQ(CounterValue(stats_cold->result, "serve.cache.hits"), 0.0);
  EXPECT_DOUBLE_EQ(CounterValue(stats_cold->result, "serve.cache.misses"), 1.0);

  auto warm = client.Query("table1", Params(R"({"n": 4})"));
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->status.ok());
  EXPECT_TRUE(warm->cached);

  auto stats_warm = client.Query("stats", Json::Object());
  ASSERT_TRUE(stats_warm.ok());
  ASSERT_TRUE(stats_warm->status.ok());
  // The repeated query moved the hit counter — the acceptance criterion for the verb.
  EXPECT_DOUBLE_EQ(CounterValue(stats_warm->result, "serve.cache.hits"), 1.0);
  EXPECT_DOUBLE_EQ(CounterValue(stats_warm->result, "serve.cache.misses"), 1.0);
  // Both table1 requests (and no others) landed in the per-kind latency histogram, and
  // the summary carries interpolated quantiles.
  const Json* table1_latency = FindHistogram(stats_warm->result, "serve.latency_ms.table1");
  ASSERT_NE(table1_latency, nullptr);
  ASSERT_NE(table1_latency->Find("count"), nullptr);
  EXPECT_DOUBLE_EQ(table1_latency->Find("count")->NumberValue(), 2.0);
  ASSERT_NE(table1_latency->Find("p50"), nullptr);
  ASSERT_NE(table1_latency->Find("p99"), nullptr);
  // Exec-pool telemetry rides along in the same snapshot.
  EXPECT_GE(GaugeValue(stats_warm->result, "exec.pool.workers"), 0.0);
}

TEST(StatsVerbTest, EngineProgressCountersMove) {
  MetricsRegistry metrics;
  QueryServer server(ServerOptions{}, &metrics);
  ServeClient client(std::make_unique<LoopbackChannel>(server));

  auto mc = client.Query(
      "montecarlo",
      Params(R"({"protocol": "raft", "fault": {"n": 5, "p": 0.01}, "trials": 10000})"));
  ASSERT_TRUE(mc.ok()) << mc.status().ToString();
  ASSERT_TRUE(mc->status.ok()) << mc->status.ToString();

  auto stats = client.Query("stats", Json::Object());
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->status.ok());
  // Every completed trial was flushed through the progress hook by the time the run
  // answered (poll-stride flushes plus the final per-chunk flush).
  EXPECT_DOUBLE_EQ(CounterValue(stats->result, "serve.engine.mc_trials"), 10000.0);
}

TEST(StatsVerbTest, ResetStartsAFreshWindowButKeepsGaugesAndCacheState) {
  MetricsRegistry metrics;
  QueryServer server(ServerOptions{}, &metrics);
  ServeClient client(std::make_unique<LoopbackChannel>(server));

  auto first = client.Query("table1", Params(R"({"n": 4})"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->status.ok());

  auto reset = client.Query("stats", Params(R"({"reset": true})"));
  ASSERT_TRUE(reset.ok());
  ASSERT_TRUE(reset->status.ok());
  const Json* reset_flag = reset->result.Find("reset");
  ASSERT_NE(reset_flag, nullptr);
  EXPECT_TRUE(reset_flag->boolean);
  // The reset snapshot still shows the pre-reset window (snapshot first, then reset).
  EXPECT_DOUBLE_EQ(CounterValue(reset->result, "serve.cache.misses"), 1.0);

  auto after = client.Query("stats", Json::Object());
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after->status.ok());
  // Fresh window: the table1 miss is gone; only this stats request itself has been
  // counted since the window opened (the reset-stats request incremented, then zeroed).
  EXPECT_DOUBLE_EQ(CounterValue(after->result, "serve.cache.misses"), 0.0);
  EXPECT_DOUBLE_EQ(CounterValue(after->result, "serve.requests"), 1.0);
  const Json* table1_latency = FindHistogram(after->result, "serve.latency_ms.table1");
  ASSERT_NE(table1_latency, nullptr);
  EXPECT_DOUBLE_EQ(table1_latency->Find("count")->NumberValue(), 0.0);
  // Gauges are levels and survive the reset.
  EXPECT_DOUBLE_EQ(GaugeValue(after->result, "serve.inflight"), 0.0);
  // The cache itself was NOT flushed — only the metrics window. The entry still serves.
  auto warm = client.Query("table1", Params(R"({"n": 4})"));
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->status.ok());
  EXPECT_TRUE(warm->cached);
}

TEST(StatsVerbTest, WorksWithoutARegistry) {
  // A server constructed with no MetricsRegistry must still answer stats (empty snapshot
  // plus pool telemetry) rather than crash or reject.
  QueryServer server(ServerOptions{});
  ServeClient client(std::make_unique<LoopbackChannel>(server));
  auto stats = client.Query("stats", Json::Object());
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->status.ok()) << stats->status.ToString();
  ASSERT_NE(stats->result.Find("metrics"), nullptr);
  EXPECT_GE(GaugeValue(stats->result, "exec.pool.workers"), 0.0);
}

TEST(TraceEchoTest, ColdRequestCarriesAllStagesWithSaneDurations) {
  MetricsRegistry metrics;
  QueryServer server(ServerOptions{}, &metrics);
  ServeClient client(std::make_unique<LoopbackChannel>(server));

  auto response =
      client.Query("table1", Params(R"({"n": 4})"), /*deadline_ms=*/0.0, /*trace=*/true);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->status.ok());
  ASSERT_EQ(response->trace.type, Json::Type::kObject);

  const Json* total = response->trace.Find("total_ms");
  ASSERT_NE(total, nullptr);
  EXPECT_GE(total->NumberValue(), 0.0);
  const Json* stages = response->trace.Find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_TRUE(stages->IsArray());

  bool saw_engine = false;
  for (const Json& stage : stages->items) {
    const Json* name = stage.Find("stage");
    const Json* ms = stage.Find("ms");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ms, nullptr);
    // Durations are non-negative and no stage outlasts the request total (the engine
    // stage nests inside the cache stage, so stages are bounded by — not a partition
    // of — the total).
    EXPECT_GE(ms->NumberValue(), 0.0) << name->text;
    EXPECT_LE(ms->NumberValue(), total->NumberValue() + 1e-6) << name->text;
    if (name->text == "engine") saw_engine = true;
  }
  EXPECT_TRUE(saw_engine) << "a cold request runs the engine as the single-flight leader";

  // The warm repeat answers from cache: no engine stage in its trace.
  auto warm =
      client.Query("table1", Params(R"({"n": 4})"), /*deadline_ms=*/0.0, /*trace=*/true);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->status.ok());
  EXPECT_TRUE(warm->cached);
  ASSERT_EQ(warm->trace.type, Json::Type::kObject);
  for (const Json& stage : warm->trace.Find("stages")->items) {
    EXPECT_NE(stage.Find("stage")->text, "engine");
  }

  // Without the flag, no trace is echoed.
  auto untraced = client.Query("table1", Params(R"({"n": 4})"));
  ASSERT_TRUE(untraced.ok());
  EXPECT_EQ(untraced->trace.type, Json::Type::kNull);
}

TEST(StatsVerbTest, TcpTransportExportsConnectionMetrics) {
  MetricsRegistry metrics;
  QueryServer server(ServerOptions{}, &metrics);
  TcpServer transport(server, &metrics);
  ASSERT_TRUE(transport.Start(0).ok());

  auto channel = TcpChannel::Connect(transport.port());
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();
  ServeClient client(std::move(*channel));

  auto warmup = client.Query("table1", Params(R"({"n": 4})"));
  ASSERT_TRUE(warmup.ok()) << warmup.status().ToString();
  ASSERT_TRUE(warmup->status.ok());

  auto stats = client.Query("stats", Json::Object(), /*deadline_ms=*/0.0, /*trace=*/true);
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->status.ok());
  EXPECT_DOUBLE_EQ(CounterValue(stats->result, "serve.connections.accepted"), 1.0);
  EXPECT_DOUBLE_EQ(GaugeValue(stats->result, "serve.connections.active"), 1.0);
  // The warmup's response write had completed before the stats snapshot was taken (the
  // client had already parsed it), so the write histogram has at least one sample.
  const Json* write_ms = FindHistogram(stats->result, "serve.stage_ms.write");
  ASSERT_NE(write_ms, nullptr);
  EXPECT_GE(write_ms->Find("count")->NumberValue(), 1.0);
  // Stats over TCP echoes its inline trace too.
  ASSERT_EQ(stats->trace.type, Json::Type::kObject);
  ASSERT_NE(stats->trace.Find("stages"), nullptr);

  transport.Stop();
  server.Drain();
}

}  // namespace
}  // namespace probcon::serve
