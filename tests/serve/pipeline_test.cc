// Pipelining end to end: batched queries over one connection (TCP and loopback),
// out-of-order completion matched back by request id, slow-consumer disconnection,
// graceful drain with pipelined requests in flight, sharded single-flight, and the
// request-text memo's byte-identity guarantee.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json.h"
#include "src/exec/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/serve/client.h"
#include "src/serve/framing.h"
#include "src/serve/server.h"
#include "src/serve/spec.h"
#include "src/serve/transport.h"

namespace probcon::serve {
namespace {

Json Params(const std::string& text) {
  auto parsed = ParseJson(text, "test params");
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return *std::move(parsed);
}

// A Monte Carlo query slow enough (tens of milliseconds) to still be running while later
// pipelined requests are decoded; `seed` keeps repetitions cache-cold.
Json SlowParams(uint64_t seed) {
  return Params(R"({"protocol": "raft", "fault": {"n": 7, "p": 0.02}, "trials": 2000000,
                    "seed": )" +
                std::to_string(seed) + "}");
}

// Raw framed-protocol connection, for tests that need to observe wire-level behavior
// (completion order, disconnects) that ServeClient abstracts away.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    timeval timeout{};
    timeout.tv_sec = 10;  // A wedged server fails the test instead of hanging it.
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)),
              0)
        << std::strerror(errno);
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  // Sends one framed payload; returns false once the server has disconnected us.
  bool Send(const std::string& payload) {
    const std::string frame = EncodeFrame(payload);
    size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n =
          ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // Reads the next response payload, or nullopt on EOF/reset.
  std::optional<std::string> ReadFrame() {
    char buffer[64 * 1024];
    while (true) {
      Result<std::optional<std::string>> next = decoder_.Next();
      EXPECT_TRUE(next.ok()) << next.status().ToString();
      if (!next.ok() || next->has_value()) {
        return next.ok() ? *next : std::nullopt;
      }
      const ssize_t received = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (received <= 0) return std::nullopt;
      decoder_.Feed(std::string_view(buffer, static_cast<size_t>(received)));
    }
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

class PipelineTest : public ::testing::Test {
 protected:
  void StartTransport(TcpServerOptions options = {}) {
    metrics_ = std::make_unique<MetricsRegistry>();
    server_ = std::make_unique<QueryServer>(ServerOptions{}, metrics_.get());
    transport_ = std::make_unique<TcpServer>(*server_, metrics_.get(), options);
    const Status started = transport_->Start(/*port=*/0);
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  void TearDown() override {
    if (transport_ != nullptr) transport_->Stop();
    server_.reset();
  }

  ServeClient Connect() {
    auto channel = TcpChannel::Connect(transport_->port());
    EXPECT_TRUE(channel.ok()) << channel.status().ToString();
    return ServeClient(std::move(*channel));
  }

  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<QueryServer> server_;
  std::unique_ptr<TcpServer> transport_;
};

TEST_F(PipelineTest, BatchOverTcpMatchesSequentialAnswers) {
  StartTransport();
  std::vector<ServeClient::BatchItem> items;
  items.push_back({"table1", Params(R"({"n": 4})"), 0.0, false});
  items.push_back({"table2", Params(R"({"fault": {"n": 5, "p": 0.01}})"), 0.0, false});
  items.push_back({"table1", Params(R"({"n": 7})"), 0.0, false});
  items.push_back({"ping", Json::Object(), 0.0, false});

  ServeClient batched = Connect();
  auto responses = batched.QueryBatch(items);
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  ASSERT_EQ(responses->size(), items.size());

  ServeClient sequential = Connect();
  for (size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE((*responses)[i].status.ok()) << (*responses)[i].status.ToString();
    auto expected = sequential.Query(items[i].kind, items[i].params);
    ASSERT_TRUE(expected.ok());
    // Batched answers are the same bytes a sequential client gets — order restored by id.
    EXPECT_EQ(WriteJson((*responses)[i].result), WriteJson(expected->result))
        << "batch slot " << i;
  }
}

TEST_F(PipelineTest, LoopbackBatchMatchesTcpBatch) {
  StartTransport();
  std::vector<ServeClient::BatchItem> items;
  for (int n = 4; n <= 8; ++n) {
    items.push_back(
        {"table1", Params("{\"n\": " + std::to_string(n) + "}"), 0.0, false});
  }
  ServeClient tcp = Connect();
  auto over_tcp = tcp.QueryBatch(items);
  ASSERT_TRUE(over_tcp.ok()) << over_tcp.status().ToString();

  ServeClient loopback(std::make_unique<LoopbackChannel>(*server_));
  auto inproc = loopback.QueryBatch(items);
  ASSERT_TRUE(inproc.ok()) << inproc.status().ToString();

  ASSERT_EQ(over_tcp->size(), inproc->size());
  for (size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE((*over_tcp)[i].status.ok());
    EXPECT_EQ(WriteJson((*over_tcp)[i].result), WriteJson((*inproc)[i].result));
    EXPECT_TRUE((*inproc)[i].cached);  // same canonical keys, same shared cache
  }
}

TEST_F(PipelineTest, OutOfOrderCompletionIsMatchedById) {
  // A real pool so the Monte Carlo request runs off the reactor thread while the ping is
  // decoded and answered inline.
  ScopedThreadPool pool(2);
  StartTransport();
  RawConn conn(transport_->port());

  ASSERT_TRUE(conn.Send(RequestEnvelope::Serialize(1, "montecarlo", SlowParams(1), 0.0)));
  ASSERT_TRUE(conn.Send(RequestEnvelope::Serialize(2, "ping", Json::Object(), 0.0)));

  auto first = conn.ReadFrame();
  ASSERT_TRUE(first.has_value());
  auto second = conn.ReadFrame();
  ASSERT_TRUE(second.has_value());

  auto first_envelope = ResponseEnvelope::Parse(*first);
  auto second_envelope = ResponseEnvelope::Parse(*second);
  ASSERT_TRUE(first_envelope.ok());
  ASSERT_TRUE(second_envelope.ok());
  // The ping (id 2) answers inline on the reactor while the Monte Carlo run (id 1) is
  // still on the pool: responses come back out of order, correlated only by id.
  EXPECT_EQ(first_envelope->id, 2u);
  EXPECT_TRUE(first_envelope->status.ok());
  EXPECT_EQ(second_envelope->id, 1u);
  EXPECT_TRUE(second_envelope->status.ok()) << second_envelope->status.ToString();
}

TEST_F(PipelineTest, SlowConsumerIsDisconnected) {
  TcpServerOptions options;
  options.max_conn_outbound_bytes = 32 * 1024;
  StartTransport(options);
  RawConn conn(transport_->port());

  // Pump pings without ever reading a response. The responses fill this client's kernel
  // receive buffer, then the connection's outbound buffer on the server, which crosses the
  // 32 KiB cap and gets the connection killed — observable here as a failed send (RST) or,
  // if every send got buffered, EOF on the next read.
  bool disconnected = false;
  for (int i = 0; i < 200000; ++i) {
    if (!conn.Send(RequestEnvelope::Serialize(static_cast<uint64_t>(i + 1), "ping",
                                              Json::Object(), 0.0))) {
      disconnected = true;
      break;
    }
  }
  if (!disconnected) {
    disconnected = !conn.ReadFrame().has_value();
  }
  EXPECT_TRUE(disconnected);

  // The reactor reaps the killed connection; the slot is freed for new clients.
  for (int i = 0; i < 1000 && transport_->connection_count() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(transport_->connection_count(), 0u);

  // A well-behaved client on a fresh connection is unaffected.
  ServeClient client = Connect();
  auto response = client.Query("ping", Json::Object());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->status.ok());
}

TEST_F(PipelineTest, DrainAnswersEveryPipelinedRequest) {
  ScopedThreadPool pool(2);
  StartTransport();

  // 12 slow, distinct (cache-cold) requests pipelined on one connection, then Drain()
  // while they are in flight: every request must still get exactly one response — the
  // ones already admitted answer OK, the ones decoded after the drain flag answer
  // UNAVAILABLE. None may vanish.
  std::vector<ServeClient::BatchItem> items;
  for (uint64_t seed = 100; seed < 112; ++seed) {
    items.push_back({"montecarlo", SlowParams(seed), 0.0, false});
  }
  ServeClient client = Connect();
  Result<std::vector<ResponseEnvelope>> responses = InternalError("unset");
  std::thread batch_thread(
      [&client, &items, &responses] { responses = client.QueryBatch(items); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server_->Drain();
  batch_thread.join();

  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  ASSERT_EQ(responses->size(), items.size());
  int ok = 0;
  for (size_t i = 0; i < responses->size(); ++i) {
    const Status& status = (*responses)[i].status;
    EXPECT_TRUE(status.ok() || status.code() == StatusCode::kUnavailable)
        << "slot " << i << ": " << status.ToString();
    if (status.ok()) ++ok;
  }
  // The batch straddled the drain: the requests in flight when Drain() began completed.
  EXPECT_GT(ok, 0);
}

TEST_F(PipelineTest, ConcurrentDistinctKeysSingleFlightAcrossShards) {
  ScopedThreadPool pool(4);
  StartTransport();

  // 6 distinct keys spread across cache shards, each requested concurrently by 4 clients:
  // single-flight must hold per key — one engine run each, everyone else coalesces or
  // hits — even though the keys land in different shards.
  constexpr int kKeys = 6;
  constexpr int kClientsPerKey = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClientsPerKey; ++c) {
    threads.emplace_back([this, &failures] {
      auto channel = TcpChannel::Connect(transport_->port());
      if (!channel.ok()) {
        ++failures;
        return;
      }
      ServeClient client(std::move(*channel));
      std::vector<ServeClient::BatchItem> items;
      for (uint64_t key = 0; key < kKeys; ++key) {
        items.push_back({"montecarlo", SlowParams(500 + key), 0.0, false});
      }
      auto responses = client.QueryBatch(items);
      if (!responses.ok()) {
        ++failures;
        return;
      }
      for (const ResponseEnvelope& response : *responses) {
        if (!response.status.ok()) ++failures;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  const auto cache = server_->cache().snapshot();
  EXPECT_EQ(cache.misses, static_cast<uint64_t>(kKeys));  // one engine run per key
  EXPECT_EQ(cache.entry_count, static_cast<size_t>(kKeys));
  EXPECT_EQ(cache.hits + cache.misses,
            static_cast<uint64_t>(kKeys * kClientsPerKey));
}

TEST_F(PipelineTest, TextMemoFastPathIsByteIdenticalToFullSerialization) {
  StartTransport();

  // Identical payload text, different ids: the first request parses and populates the
  // request-text memo, the second skips parse/canonicalize entirely and splices the
  // cached result. The splice must be byte-identical to a full ResponseEnvelope
  // round-trip, and the memo hit must be recorded.
  const Json params = Params(R"({"n": 4})");
  const std::string cold = server_->Handle(RequestEnvelope::Serialize(7, "table1", params, 0.0));
  const std::string warm = server_->Handle(RequestEnvelope::Serialize(8, "table1", params, 0.0));

  auto cold_envelope = ResponseEnvelope::Parse(cold);
  auto warm_envelope = ResponseEnvelope::Parse(warm);
  ASSERT_TRUE(cold_envelope.ok());
  ASSERT_TRUE(warm_envelope.ok());
  EXPECT_EQ(cold_envelope->id, 7u);
  EXPECT_EQ(warm_envelope->id, 8u);
  EXPECT_FALSE(cold_envelope->cached);
  EXPECT_TRUE(warm_envelope->cached);
  EXPECT_EQ(WriteJson(cold_envelope->result), WriteJson(warm_envelope->result));
  // The spliced fast-path response re-serializes to exactly the same bytes.
  EXPECT_EQ(warm, warm_envelope->Serialize());
  EXPECT_GE(metrics_->GetCounter("serve.text_memo.hits").value(), 1u);

  // Trace requests never take the splice path: the trace echo must be present both times.
  const std::string traced_text =
      server_->Handle(RequestEnvelope::Serialize(9, "table1", params, 0.0, true));
  auto traced = ResponseEnvelope::Parse(traced_text);
  ASSERT_TRUE(traced.ok());
  EXPECT_NE(traced->trace.type, Json::Type::kNull);
}

TEST_F(PipelineTest, StopWhileClientsAreMidBatchDoesNotRace) {
  StartTransport();

  // Hammer Stop() against live pipelined traffic: clients batching pings while the
  // transport tears down mid-flight. Every outcome is acceptable except a crash, a hang,
  // or a torn response (QueryBatch validates ids and counts).
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([this, &stop] {
      while (!stop.load()) {
        auto channel = TcpChannel::Connect(transport_->port());
        if (!channel.ok()) return;  // listener already down
        ServeClient client(std::move(*channel));
        std::vector<ServeClient::BatchItem> items(
            16, ServeClient::BatchItem{"ping", Json::Object(), 0.0, false});
        auto responses = client.QueryBatch(items);
        if (!responses.ok()) return;  // disconnected mid-batch during Stop — fine
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  transport_->Stop();
  stop.store(true);
  for (std::thread& client : clients) client.join();
  // Stop() is idempotent and leaves no connections behind.
  transport_->Stop();
  EXPECT_EQ(transport_->connection_count(), 0u);
}

TEST_F(PipelineTest, PerShardConnectionGaugesSumToActive) {
  TcpServerOptions options;
  options.reactors = 2;
  StartTransport(options);
  ASSERT_EQ(transport_->reactor_count(), 2);

  std::vector<ServeClient> clients;
  for (int i = 0; i < 5; ++i) {
    clients.push_back(Connect());
    auto response = clients.back().Query("ping", Json::Object());
    ASSERT_TRUE(response.ok()) << response.status().ToString();
  }
  // Connections are registered by the reactor thread; pings above guarantee each one has
  // been adopted by its shard before we read the gauges.
  double shard_sum = 0.0;
  for (int shard = 0; shard < transport_->reactor_count(); ++shard) {
    shard_sum += metrics_->GetGauge("serve.connections.active.shard" +
                                    std::to_string(shard))
                     .value();
  }
  EXPECT_EQ(shard_sum, metrics_->GetGauge("serve.connections.active").value());
  EXPECT_EQ(shard_sum, static_cast<double>(clients.size()));
  // Round-robin accept: 5 connections over 2 shards can't all land on one.
  for (int shard = 0; shard < transport_->reactor_count(); ++shard) {
    EXPECT_GT(metrics_->GetGauge("serve.connections.active.shard" +
                                 std::to_string(shard))
                  .value(),
              0.0);
  }
}

}  // namespace
}  // namespace probcon::serve
