// TCP transport end to end inside one process: a TcpServer on an ephemeral loopback port,
// real TcpChannel clients, and the contract that TCP-served answers are byte-identical to
// loopback-served ones.

#include "src/serve/transport.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "src/common/json.h"
#include "src/serve/client.h"
#include "src/serve/framing.h"
#include "src/serve/spec.h"

namespace probcon::serve {
namespace {

Json Params(const std::string& text) {
  auto parsed = ParseJson(text, "test params");
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return *std::move(parsed);
}

class TcpTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<QueryServer>(ServerOptions{});
    transport_ = std::make_unique<TcpServer>(*server_);
    const Status started = transport_->Start(/*port=*/0);
    ASSERT_TRUE(started.ok()) << started.ToString();
    ASSERT_NE(transport_->port(), 0);
  }

  void TearDown() override {
    transport_->Stop();
    server_.reset();
  }

  ServeClient Connect() {
    auto channel = TcpChannel::Connect(transport_->port());
    EXPECT_TRUE(channel.ok()) << channel.status().ToString();
    return ServeClient(std::move(*channel));
  }

  std::unique_ptr<QueryServer> server_;
  std::unique_ptr<TcpServer> transport_;
};

TEST_F(TcpTransportTest, ServesQueriesOverTcp) {
  ServeClient client = Connect();
  auto response = client.Query("table1", Params(R"({"n": 4})"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->status.ok()) << response->status.ToString();
  const Json* report = response->result.Find("report");
  ASSERT_NE(report, nullptr);
  ASSERT_NE(report->Find("safe_and_live"), nullptr);
  EXPECT_EQ(report->Find("safe_and_live")->text, "99.94%");
}

TEST_F(TcpTransportTest, TcpAnswerIsByteIdenticalToLoopbackAnswer) {
  ServeClient tcp_client = Connect();
  auto over_tcp = tcp_client.Query("table2", Params(R"({"fault": {"n": 5, "p": 0.01}})"));
  ASSERT_TRUE(over_tcp.ok());
  ASSERT_TRUE(over_tcp->status.ok());

  ServeClient loopback(std::make_unique<LoopbackChannel>(*server_));
  auto inproc = loopback.Query("table2", Params(R"({"fault": {"n": 5, "p": 0.01}})"));
  ASSERT_TRUE(inproc.ok());
  ASSERT_TRUE(inproc->status.ok());

  EXPECT_EQ(WriteJson(over_tcp->result), WriteJson(inproc->result));
  EXPECT_TRUE(inproc->cached);  // same canonical key, served from the same cache
}

TEST_F(TcpTransportTest, MultipleSequentialRequestsReuseTheConnection) {
  ServeClient client = Connect();
  for (int i = 0; i < 3; ++i) {
    auto response = client.Query("ping", Json::Object());
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->status.ok());
  }
  auto cached = client.Query("table1", Params(R"({"n": 4})"));
  ASSERT_TRUE(cached.ok());
  auto repeat = client.Query("table1", Params(R"({"n": 4})"));
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat->cached);
}

TEST_F(TcpTransportTest, TwoClientsShareTheCache) {
  ServeClient first = Connect();
  auto cold = first.Query("table1", Params(R"({"n": 5})"));
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(cold->status.ok());
  EXPECT_FALSE(cold->cached);

  ServeClient second = Connect();
  auto warm = second.Query("table1", Params(R"({"n": 5})"));
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->status.ok());
  EXPECT_TRUE(warm->cached);
}

TEST_F(TcpTransportTest, DisconnectedClientsAreReaped) {
  EXPECT_EQ(transport_->connection_count(), 0u);
  {
    ServeClient client = Connect();
    auto response = client.Query("ping", Json::Object());
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(transport_->connection_count(), 1u);
  }  // ~ServeClient closes the socket.
  // The reader thread notices EOF and removes its own registration; a long-running daemon
  // must not accumulate one dead Connection per disconnected client.
  for (int i = 0; i < 1000 && transport_->connection_count() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(transport_->connection_count(), 0u);

  // Churn a few more clients; the registry stays bounded by the live count.
  for (int i = 0; i < 5; ++i) {
    ServeClient client = Connect();
    auto response = client.Query("ping", Json::Object());
    ASSERT_TRUE(response.ok());
  }
  for (int i = 0; i < 1000 && transport_->connection_count() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(transport_->connection_count(), 0u);
}

TEST_F(TcpTransportTest, ConnectToClosedPortFails) {
  const uint16_t port = transport_->port();
  transport_->Stop();
  auto channel = TcpChannel::Connect(port);
  EXPECT_FALSE(channel.ok());
}

}  // namespace
}  // namespace probcon::serve
