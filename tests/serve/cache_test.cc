// QueryCache: hit/miss accounting, LRU eviction under the byte budget, single-flight
// coalescing of concurrent identical misses, and the errors-are-not-cached contract.

#include "src/serve/cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"

namespace probcon::serve {
namespace {

Result<std::string> Value(const std::string& value) { return value; }

TEST(QueryCache, MissThenHit) {
  QueryCache cache(/*budget_bytes=*/1 << 20, /*metrics=*/nullptr);
  int computed = 0;
  auto compute = [&] {
    ++computed;
    return Value("answer");
  };

  bool was_cached = true;
  auto first = cache.GetOrCompute("key", compute, &was_cached);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, "answer");
  EXPECT_FALSE(was_cached);

  auto second = cache.GetOrCompute("key", compute, &was_cached);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, "answer");
  EXPECT_TRUE(was_cached);
  EXPECT_EQ(computed, 1);

  const auto stats = cache.snapshot();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entry_count, 1u);
}

TEST(QueryCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Each entry charges key + value + overhead; a budget of ~3 entries forces the oldest
  // out when a fourth arrives.
  const std::string value(256, 'v');
  const size_t per_entry = 1 + value.size() + 128;  // key is one char
  // One shard, so all four keys compete for the same LRU list and byte budget.
  QueryCache cache(/*budget_bytes=*/3 * per_entry, /*metrics=*/nullptr, /*shard_count=*/1);

  for (const std::string key : {"a", "b", "c"}) {
    ASSERT_TRUE(cache.GetOrCompute(key, [&] { return Value(value); }, nullptr).ok());
  }
  EXPECT_EQ(cache.snapshot().entry_count, 3u);

  // Touch "a" so "b" becomes the LRU victim.
  bool was_cached = false;
  ASSERT_TRUE(cache.GetOrCompute("a", [&] { return Value(value); }, &was_cached).ok());
  EXPECT_TRUE(was_cached);

  ASSERT_TRUE(cache.GetOrCompute("d", [&] { return Value(value); }, nullptr).ok());
  const auto stats = cache.snapshot();
  EXPECT_EQ(stats.entry_count, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.entry_bytes, 3 * per_entry);

  // "a" survived, "b" was evicted.
  ASSERT_TRUE(cache.GetOrCompute("a", [&] { return Value(value); }, &was_cached).ok());
  EXPECT_TRUE(was_cached);
  ASSERT_TRUE(cache.GetOrCompute("b", [&] { return Value(value); }, &was_cached).ok());
  EXPECT_FALSE(was_cached);
}

TEST(QueryCache, ValueLargerThanBudgetIsServedButNotCached) {
  QueryCache cache(/*budget_bytes=*/64, /*metrics=*/nullptr);
  const std::string huge(1024, 'h');
  auto result = cache.GetOrCompute("big", [&] { return Value(huge); }, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, huge);
  EXPECT_EQ(cache.snapshot().entry_count, 0u);
}

TEST(QueryCache, ErrorsAreNotCached) {
  QueryCache cache(/*budget_bytes=*/1 << 20, /*metrics=*/nullptr);
  int calls = 0;
  auto failing = [&]() -> Result<std::string> {
    ++calls;
    return Status(StatusCode::kCancelled, "cancelled");
  };
  EXPECT_EQ(cache.GetOrCompute("key", failing, nullptr).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(cache.GetOrCompute("key", failing, nullptr).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(calls, 2);  // retried, not served from cache

  // A later success takes and stays.
  auto ok = cache.GetOrCompute("key", [&] { return Value("fine"); }, nullptr);
  ASSERT_TRUE(ok.ok());
  bool was_cached = false;
  ASSERT_TRUE(cache.GetOrCompute("key", [&] { return Value("fine"); }, &was_cached).ok());
  EXPECT_TRUE(was_cached);
}

TEST(QueryCache, SingleFlightCoalescesConcurrentIdenticalMisses) {
  QueryCache cache(/*budget_bytes=*/1 << 20, /*metrics=*/nullptr);
  constexpr int kThreads = 8;

  std::atomic<int> computations{0};
  std::atomic<int> in_compute{0};
  std::atomic<bool> release{false};
  auto slow_compute = [&]() -> Result<std::string> {
    computations.fetch_add(1);
    in_compute.fetch_add(1);
    while (!release.load()) {
      std::this_thread::yield();
    }
    return Value("shared");
  };

  std::vector<std::thread> threads;
  std::atomic<int> served_cached{0};
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      bool was_cached = false;
      auto result = cache.GetOrCompute("hot", slow_compute, &was_cached);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(*result, "shared");
      if (was_cached) {
        served_cached.fetch_add(1);
      }
    });
  }
  // Wait until the leader is inside compute, give followers a moment to pile up, then
  // release. Even if some followers arrive after completion (plain hits), the leader must
  // be unique.
  while (in_compute.load() == 0) {
    std::this_thread::yield();
  }
  release.store(true);
  for (auto& thread : threads) {
    thread.join();
  }

  EXPECT_EQ(computations.load(), 1);
  EXPECT_EQ(served_cached.load(), kThreads - 1);
  const auto stats = cache.snapshot();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads - 1));
}

TEST(QueryCache, FollowerRetriesWhenLeaderIsCancelled) {
  // A leader cancelled by its own (shorter) deadline must not hand CANCELLED to followers
  // whose budgets are still open: they recompute under their own tokens.
  QueryCache cache(/*budget_bytes=*/1 << 20, /*metrics=*/nullptr);
  std::atomic<int> calls{0};
  std::atomic<bool> leader_in_compute{false};
  std::atomic<bool> release_leader{false};

  std::thread leader([&] {
    auto result = cache.GetOrCompute(
        "key",
        [&]() -> Result<std::string> {
          calls.fetch_add(1);
          leader_in_compute.store(true);
          while (!release_leader.load()) {
            std::this_thread::yield();
          }
          return Status(StatusCode::kCancelled, "leader deadline fired");
        },
        nullptr);
    // The leader itself still sees its own cancellation.
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  });
  while (!leader_in_compute.load()) {
    std::this_thread::yield();
  }

  std::thread follower([&] {
    bool was_cached = true;
    auto result = cache.GetOrCompute(
        "key",
        [&]() -> Result<std::string> {
          calls.fetch_add(1);
          return Value("computed by follower");
        },
        &was_cached);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(*result, "computed by follower");
    EXPECT_FALSE(was_cached);
  });
  // Wait until the follower has registered as a waiter, then cancel the leader.
  while (cache.snapshot().coalesced == 0) {
    std::this_thread::yield();
  }
  release_leader.store(true);
  leader.join();
  follower.join();

  EXPECT_EQ(calls.load(), 2);  // leader once (cancelled) + follower retry
  // The follower's successful result went into the cache.
  bool was_cached = false;
  auto warm = cache.GetOrCompute("key", [] { return Value("unused"); }, &was_cached);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(*warm, "computed by follower");
  EXPECT_TRUE(was_cached);
}

TEST(QueryCache, MetricsMirrorTheCounters) {
  MetricsRegistry metrics;
  QueryCache cache(/*budget_bytes=*/1 << 20, &metrics);
  ASSERT_TRUE(cache.GetOrCompute("k", [] { return Value("v"); }, nullptr).ok());
  ASSERT_TRUE(cache.GetOrCompute("k", [] { return Value("v"); }, nullptr).ok());
  EXPECT_EQ(metrics.GetCounter("serve.cache.misses").value(), 1u);
  EXPECT_EQ(metrics.GetCounter("serve.cache.hits").value(), 1u);
}

}  // namespace
}  // namespace probcon::serve
