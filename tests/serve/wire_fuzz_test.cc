// Fuzz-style hardening of the frame decoder: seeded random byte streams and mutated
// valid frames, fed under arbitrary packetization. The decoder must never crash, never
// hang, never mis-size its buffer, and must classify every stream into exactly one of
// {frames decoded, more bytes needed, poisoned} — with the poison sticky and the
// AtEof() verdict definite. Runs clean under ASan/UBSan (the serve-wirechaos CI job).

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/serve/framing.h"

namespace probcon::serve {
namespace {

std::string RandomBytes(Rng& rng, size_t length) {
  std::string out(length, '\0');
  for (char& byte : out) {
    byte = static_cast<char>(rng.NextBelow(256));
  }
  return out;
}

// Drains the decoder; returns false once the stream is poisoned.
bool Drain(FrameDecoder& decoder, std::vector<std::string>* payloads) {
  while (true) {
    auto next = decoder.Next();
    if (!next.ok()) {
      return false;
    }
    if (!next->has_value()) {
      return true;
    }
    payloads->push_back(std::move(**next));
  }
}

TEST(WireFuzz, RandomByteStreamsNeverCrashAndPoisonIsSticky) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(DeriveStreamSeed(0xF022ull, seed));
    FrameDecoder decoder(/*max_payload_bytes=*/1u << 16);
    const std::string stream = RandomBytes(rng, 1 + rng.NextBelow(512));

    std::vector<std::string> payloads;
    bool alive = true;
    size_t offset = 0;
    while (offset < stream.size()) {
      const size_t chunk = 1 + rng.NextBelow(64);
      const size_t take = std::min(chunk, stream.size() - offset);
      decoder.Feed(std::string_view(stream).substr(offset, take));
      offset += take;
      if (!Drain(decoder, &payloads)) {
        alive = false;
        break;
      }
    }
    if (!alive) {
      // Sticky: no amount of clean traffic revives a poisoned stream.
      decoder.Feed(EncodeFrame("clean"));
      EXPECT_FALSE(decoder.Next().ok()) << "seed " << seed;
      EXPECT_FALSE(decoder.AtEof().ok()) << "seed " << seed;
    } else {
      // Not poisoned: EOF classifies as clean or mid-frame, never crashes.
      const Status eof = decoder.AtEof();
      if (!eof.ok()) {
        EXPECT_EQ(eof.code(), StatusCode::kUnavailable) << "seed " << seed;
      }
    }
  }
}

TEST(WireFuzz, MutatedValidFramesDecodeOrPoisonDeterministically) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(DeriveStreamSeed(0xF033ull, seed));
    std::string stream = EncodeFrame(R"({"v": 1, "id": 7, "kind": "ping"})") +
                         EncodeFrame(RandomBytes(rng, rng.NextBelow(128))) +
                         EncodeFrame("tail");
    // Flip 1-4 random bytes anywhere in the stream: header magic, length, or payload.
    const int flips = static_cast<int>(1 + rng.NextBelow(4));
    for (int i = 0; i < flips; ++i) {
      stream[rng.NextBelow(stream.size())] ^= static_cast<char>(1 + rng.NextBelow(255));
    }

    // Two decoders, two packetizations, one verdict: the decode result is a function of
    // the bytes, not of how they arrive.
    std::vector<std::string> one_shot_payloads, trickled_payloads;
    FrameDecoder one_shot(/*max_payload_bytes=*/1u << 16);
    one_shot.Feed(stream);
    const bool one_shot_ok = Drain(one_shot, &one_shot_payloads);

    FrameDecoder trickled(/*max_payload_bytes=*/1u << 16);
    bool trickled_ok = true;
    for (const char byte : stream) {
      trickled.Feed(std::string_view(&byte, 1));
      if (!Drain(trickled, &trickled_payloads)) {
        trickled_ok = false;
        break;
      }
    }

    EXPECT_EQ(one_shot_ok, trickled_ok) << "seed " << seed;
    if (one_shot_ok && trickled_ok) {
      EXPECT_EQ(one_shot_payloads, trickled_payloads) << "seed " << seed;
    }
  }
}

TEST(WireFuzz, TruncatedStreamsAlwaysClassifyEof) {
  // Every prefix of a valid multi-frame stream must classify EOF without crashing:
  // clean at frame boundaries, UNAVAILABLE anywhere inside a frame.
  const std::string stream =
      EncodeFrame("alpha") + EncodeFrame("") + EncodeFrame(std::string(100, 'z'));
  std::vector<size_t> boundaries = {0, kFrameHeaderBytes + 5,
                                    2 * kFrameHeaderBytes + 5, stream.size()};
  for (size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(std::string_view(stream).substr(0, cut));
    std::vector<std::string> payloads;
    ASSERT_TRUE(Drain(decoder, &payloads)) << "cut " << cut;
    const Status eof = decoder.AtEof();
    const bool at_boundary =
        std::find(boundaries.begin(), boundaries.end(), cut) != boundaries.end();
    if (at_boundary) {
      EXPECT_TRUE(eof.ok()) << "cut " << cut << ": " << eof.ToString();
    } else {
      ASSERT_FALSE(eof.ok()) << "cut " << cut;
      EXPECT_EQ(eof.code(), StatusCode::kUnavailable) << "cut " << cut;
    }
  }
}

}  // namespace
}  // namespace probcon::serve
