// Canonicalization is what makes the memoization cache correct: semantically identical
// requests — reordered fields, different number spellings, defaults spelled out or
// omitted, a fault curve versus its resolved probabilities — must map to the same
// CanonicalKey, and semantically different requests must not.

#include <gtest/gtest.h>

#include <string>

#include "src/common/json.h"
#include "src/serve/spec.h"

namespace probcon::serve {
namespace {

// Parses `params_text` as the params object of a `kind` request and returns its cache key.
std::string KeyFor(const std::string& kind, const std::string& params_text) {
  auto params = ParseJson(params_text, "test params");
  EXPECT_TRUE(params.ok()) << params.status().ToString();
  auto kind_value = RequestKindFromName(kind);
  EXPECT_TRUE(kind_value.ok()) << kind_value.status().ToString();
  auto request = ServeRequest::FromParams(*kind_value, *params);
  EXPECT_TRUE(request.ok()) << request.status().ToString();
  return request->CanonicalKey();
}

Status ErrorFor(const std::string& kind, const std::string& params_text) {
  auto params = ParseJson(params_text, "test params");
  EXPECT_TRUE(params.ok()) << params.status().ToString();
  auto kind_value = RequestKindFromName(kind);
  EXPECT_TRUE(kind_value.ok()) << kind_value.status().ToString();
  return ServeRequest::FromParams(*kind_value, *params).status();
}

TEST(Canonical, FieldOrderDoesNotMatter) {
  EXPECT_EQ(KeyFor("quorum_size",
                   R"({"protocol": "raft", "fault": {"n": 5, "p": 0.01}, "target_live": 0.999})"),
            KeyFor("quorum_size",
                   R"({"target_live": 0.999, "fault": {"p": 0.01, "n": 5}, "protocol": "raft"})"));
}

TEST(Canonical, NumberSpellingDoesNotMatter) {
  EXPECT_EQ(KeyFor("table2", R"({"fault": {"n": 5, "p": 0.01}})"),
            KeyFor("table2", R"({"fault": {"n": 5, "p": 1e-2}})"));
  EXPECT_EQ(KeyFor("table2", R"({"fault": {"n": 5, "p": 0.01}})"),
            KeyFor("table2", R"({"fault": {"n": 5, "p": 0.0100}})"));
}

TEST(Canonical, ExplicitDefaultEqualsOmittedDefault) {
  // table1's default fault probability (p = 0.01) and montecarlo's default trials/seed.
  EXPECT_EQ(KeyFor("table1", R"({"n": 4})"),
            KeyFor("table1", R"({"n": 4, "fault": {"n": 4, "p": 0.01}})"));
  EXPECT_EQ(KeyFor("montecarlo", R"({"protocol": "raft", "fault": {"n": 5, "p": 0.01}})"),
            KeyFor("montecarlo",
                   R"({"protocol": "raft", "fault": {"n": 5, "p": 0.01},
                       "trials": 1000000, "seed": 42})"));
}

TEST(Canonical, UniformSpellingEqualsExplicitProbabilities) {
  EXPECT_EQ(KeyFor("table2", R"({"fault": {"n": 3, "p": 0.04}})"),
            KeyFor("table2", R"({"fault": {"probabilities": [0.04, 0.04, 0.04]}})"));
}

TEST(Canonical, CurveSpecEqualsItsResolvedProbabilities) {
  // A constant curve with rate r over window w resolves to p = 1 - exp(-r w) for every
  // node; spelling the same request with explicit probabilities must collide in the cache.
  const std::string curve_key = KeyFor(
      "table2",
      R"({"fault": {"n": 3, "curve": {"kind": "constant", "rate": 0.001}, "age": 0, "window": 100}})");
  auto params = ParseJson(
      R"({"fault": {"n": 3, "curve": {"kind": "constant", "rate": 0.001}, "age": 0, "window": 100}})",
      "test params");
  ASSERT_TRUE(params.ok());
  auto request = ServeRequest::FromParams(RequestKind::kTable2, *params);
  ASSERT_TRUE(request.ok());
  ASSERT_EQ(request->fault.n(), 3);

  Json explicit_params = Json::Object();
  Json fault = Json::Object();
  Json probabilities = Json::Array();
  for (const double p : request->fault.probabilities) {
    probabilities.Append(Json::Number(p));
  }
  fault.Set("probabilities", std::move(probabilities));
  explicit_params.Set("fault", std::move(fault));
  auto explicit_request = ServeRequest::FromParams(RequestKind::kTable2, explicit_params);
  ASSERT_TRUE(explicit_request.ok());
  EXPECT_EQ(curve_key, explicit_request->CanonicalKey());
}

TEST(Canonical, DifferentRequestsGetDifferentKeys) {
  const std::string base = KeyFor("table2", R"({"fault": {"n": 5, "p": 0.01}})");
  EXPECT_NE(base, KeyFor("table2", R"({"fault": {"n": 5, "p": 0.02}})"));
  EXPECT_NE(base, KeyFor("table2", R"({"fault": {"n": 7, "p": 0.01}})"));
  EXPECT_NE(base, KeyFor("table1", R"({"n": 5, "fault": {"n": 5, "p": 0.01}})"));
  EXPECT_NE(KeyFor("montecarlo", R"({"protocol": "raft", "fault": {"n": 5, "p": 0.01}})"),
            KeyFor("montecarlo",
                   R"({"protocol": "raft", "fault": {"n": 5, "p": 0.01}, "seed": 43})"));
}

TEST(Canonical, KeyLeadsWithTheKindName) {
  EXPECT_EQ(KeyFor("table1", R"({"n": 4})").rfind("table1 ", 0), 0u);
  EXPECT_EQ(KeyFor("placement",
                   R"({"node_probabilities": [0.01, 0.01, 0.02, 0.02],
                       "rack_probabilities": [0.001, 0.002]})")
                .rfind("placement ", 0),
            0u);
}

TEST(Canonical, KeyIsStableAcrossReparse) {
  // Round-tripping the canonical params through the parser reproduces the same key —
  // canonicalization is idempotent.
  auto params = ParseJson(R"({"fault": {"n": 5, "p": 0.01}, "protocol": "pbft",
                              "target_safe": 0.999, "target_live": 0.99})",
                          "test params");
  ASSERT_TRUE(params.ok());
  auto request = ServeRequest::FromParams(RequestKind::kQuorumSize, *params);
  ASSERT_TRUE(request.ok());
  auto reparsed = ServeRequest::FromParams(RequestKind::kQuorumSize, request->CanonicalParams());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(request->CanonicalKey(), reparsed->CanonicalKey());
}

// --- Edge validation: engine preconditions surface as INVALID_ARGUMENT ------------------

TEST(Validation, RejectsOutOfRangeInputs) {
  EXPECT_EQ(ErrorFor("table1", R"({"n": 3})").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ErrorFor("table2", R"({"fault": {"n": 2, "p": 0.01}})").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ErrorFor("table2", R"({"fault": {"n": 5, "p": 1.5}})").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ErrorFor("quorum_size", R"({"protocol": "zab", "fault": {"n": 5, "p": 0.01}})")
                .code(),
            StatusCode::kInvalidArgument);
  // Placement search-space caps (n <= 10, r <= 5) are enforced at the edge, not by a CHECK.
  EXPECT_EQ(ErrorFor("placement",
                     R"({"node_probabilities": [0.01, 0.01, 0.01, 0.01, 0.01, 0.01,
                                                0.01, 0.01, 0.01, 0.01, 0.01],
                         "rack_probabilities": [0.001, 0.002]})")
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ErrorFor("montecarlo",
                     R"({"protocol": "raft", "fault": {"n": 5, "p": 0.01}, "trials": 0})")
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(Validation, RejectsMalformedEnvelopes) {
  EXPECT_FALSE(RequestEnvelope::Parse("not json").ok());
  EXPECT_FALSE(RequestEnvelope::Parse(R"({"v": 2, "id": 1, "kind": "ping"})").ok());
  EXPECT_FALSE(RequestEnvelope::Parse(R"({"v": 1, "id": 1, "kind": "no_such_kind"})").ok());
  // A negative id must not wrap to 2^64-1, and a deadline big enough to overflow the
  // server's int64 microsecond arithmetic is rejected at the edge.
  EXPECT_FALSE(RequestEnvelope::Parse(R"({"v": 1, "id": -1, "kind": "ping"})").ok());
  EXPECT_FALSE(
      RequestEnvelope::Parse(R"({"v": 1, "id": 1, "kind": "ping", "deadline_ms": 1e300})")
          .ok());

  const auto ok = RequestEnvelope::Parse(R"({"v": 1, "id": 7, "kind": "ping"})");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->id, 7u);
  EXPECT_EQ(ok->request.kind, RequestKind::kPing);
}

TEST(Validation, ResponseEnvelopeRoundTrips) {
  ResponseEnvelope response;
  response.id = 11;
  response.status = Status();
  response.cached = true;
  response.result = Json::Object();
  response.result.Set("answer", Json::Number(42));

  const auto parsed = ResponseEnvelope::Parse(response.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->id, 11u);
  EXPECT_TRUE(parsed->status.ok());
  EXPECT_TRUE(parsed->cached);
  const Json* answer = parsed->result.Find("answer");
  ASSERT_NE(answer, nullptr);
  EXPECT_EQ(answer->NumberValue(), 42.0);

  ResponseEnvelope error;
  error.id = 12;
  error.status = Status(StatusCode::kDeadlineExceeded, "deadline expired");
  const auto parsed_error = ResponseEnvelope::Parse(error.Serialize());
  ASSERT_TRUE(parsed_error.ok()) << parsed_error.status().ToString();
  EXPECT_EQ(parsed_error->status.code(), StatusCode::kDeadlineExceeded);
}

TEST(Validation, CorruptResponseStatusFailsParseInsteadOfFabricatingAVerdict) {
  // A status name the writer never emits means the bytes were damaged in flight (the wire
  // format carries no payload checksum); Parse must fail so clients retry, rather than
  // inventing a definite INTERNAL verdict.
  const auto garbled = ResponseEnvelope::Parse(
      R"({"v": 1, "id": 3, "status": "Oc", "cached": false, "result": {}})");
  ASSERT_FALSE(garbled.ok());
  EXPECT_EQ(garbled.status().code(), StatusCode::kUnavailable);

  const auto missing = ResponseEnvelope::Parse(R"({"v": 1, "id": 3, "result": {}})");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace probcon::serve
