// The fleet-lifecycle kinds (availability, mission_reliability, repair_sweep) through the
// serve stack: edge validation (no client input reaches an engine CHECK), canonical-key
// collisions for semantically equal spellings, engine execution, and server-level
// memoization over the loopback transport.

#include <string>

#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/serve/client.h"
#include "src/serve/engine.h"
#include "src/serve/server.h"
#include "src/serve/spec.h"

namespace probcon::serve {
namespace {

Json Params(const std::string& text) {
  auto parsed = ParseJson(text, "test params");
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return *std::move(parsed);
}

Result<ServeRequest> Parse(const std::string& kind, const std::string& params_text) {
  auto kind_value = RequestKindFromName(kind);
  EXPECT_TRUE(kind_value.ok()) << kind_value.status().ToString();
  return ServeRequest::FromParams(*kind_value, Params(params_text));
}

std::string KeyFor(const std::string& kind, const std::string& params_text) {
  auto request = Parse(kind, params_text);
  EXPECT_TRUE(request.ok()) << request.status().ToString();
  return request->CanonicalKey();
}

constexpr char kBasicFleet[] =
    R"({"protocol": "raft",
        "fleet": {"classes": [{"count": 3, "failure_rate": 0.001}], "repair_rate": 0.1}})";

// ---------------------------------------------------------------------------------------
// Edge validation: INVALID_ARGUMENT at FromParams, never a CHECK later.

TEST(LifecycleSpec, RejectsStructurallyInvalidFleets) {
  for (const char* bad : {
           R"({"protocol": "raft"})",                                          // No fleet.
           R"({"protocol": "raft", "fleet": {"classes": []}})",                // Empty.
           R"({"protocol": "raft", "fleet": {"classes": [{"count": 0, "failure_rate": 1}]}})",
           R"({"protocol": "raft", "fleet": {"classes": [{"count": 3, "failure_rate": -1}]}})",
           R"({"protocol": "raft", "fleet": {"classes": [{"count": 3}]}})",    // No rate.
           R"({"protocol": "raft",
               "fleet": {"classes": [{"count": 3, "failure_rate": 1e-3, "curve":
                         {"kind": "constant", "rate": 1e-3}, "age": 0}]}})",   // Both.
           R"({"protocol": "raft",
               "fleet": {"classes": [{"count": 500, "failure_rate": 1e-3}]}})",  // Cap.
           R"({"protocol": "bogus",
               "fleet": {"classes": [{"count": 3, "failure_rate": 1e-3}]}})",
       }) {
    const auto request = Parse("availability", bad);
    ASSERT_FALSE(request.ok()) << bad;
    EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(LifecycleSpec, RejectsOversizedClassProducts) {
  // Each class is under the per-class cap but the state product exceeds the serve cap.
  const auto request = Parse(
      "availability",
      R"({"protocol": "raft",
          "fleet": {"classes": [{"count": 40, "failure_rate": 1e-3},
                                {"count": 40, "failure_rate": 1e-3}], "repair_rate": 0.1}})");
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
}

TEST(LifecycleSpec, MissionReliabilityNeedsExactlyOneOfScheduleOrFleet) {
  EXPECT_EQ(Parse("mission_reliability", R"({"protocol": "raft"})").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse("mission_reliability",
                  R"({"protocol": "raft",
                      "fleet": {"classes": [{"count": 3, "failure_rate": 1e-3}]},
                      "schedule": {"round_probabilities": [[0.01, 0.01, 0.01]],
                                   "round_hours": 24}})")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(LifecycleSpec, ScheduleValidationSurfacesAsInvalidArgument) {
  for (const char* bad : {
           // Ragged matrix.
           R"({"protocol": "raft", "schedule": {"round_probabilities": [[0.1, 0.1, 0.1],
               [0.1]], "round_hours": 24}})",
           // Probability of exactly 1.
           R"({"protocol": "raft", "schedule": {"round_probabilities": [[1.0, 0.1, 0.1]],
               "round_hours": 24}})",
           // Below the protocol's minimum n.
           R"({"protocol": "raft", "schedule": {"round_probabilities": [[0.1]],
               "round_hours": 24}})",
           // Non-positive round length.
           R"({"protocol": "raft", "schedule": {"round_probabilities": [[0.1, 0.1, 0.1]],
               "round_hours": 0}})",
       }) {
    const auto request = Parse("mission_reliability", bad);
    ASSERT_FALSE(request.ok()) << bad;
    EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(LifecycleSpec, RepairSweepValidatesTheGrid) {
  const char* base =
      R"({"protocol": "raft", "fleet": {"classes": [{"count": 3, "failure_rate": 1e-3}]}})";
  EXPECT_EQ(Parse("repair_sweep", base).status().code(), StatusCode::kInvalidArgument);
  for (const char* bad : {
           R"("repair_rates": [])",
           R"("repair_rates": [-0.5])",
           R"("repair_rates": [0.1], "min_rate": 0.1, "max_rate": 1, "points": 4)",
           R"("min_rate": 1, "max_rate": 0.1, "points": 4)",
           R"("min_rate": 0.1, "max_rate": 1, "points": 0)",
           R"("min_rate": 0.1, "max_rate": 1, "points": 1000)",
           R"("repair_rates": [0.5], "target_availability": 1.5)",
       }) {
    // Append the extra fields before the closing brace.
    std::string text = base;
    text.insert(text.size() - 1, std::string(", ") + bad);
    const auto request = Parse("repair_sweep", text);
    ASSERT_FALSE(request.ok()) << text;
    EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

TEST(LifecycleSpec, AstronomicalMissionHorizonIsRejectedAtTheEdge) {
  const auto request = Parse(
      "mission_reliability",
      R"({"protocol": "raft",
          "fleet": {"classes": [{"count": 3, "failure_rate": 1e-3}], "repair_rate": 100.0},
          "mission_hours": 9e6})");
  // Either accepted (within budget) or INVALID_ARGUMENT — never a crash deeper in. This
  // particular rate * horizon blows the uniformization flop budget.
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------------------
// Canonicalization.

TEST(LifecycleCanonical, FieldOrderAndNumberSpellingDoNotMatter) {
  EXPECT_EQ(KeyFor("availability", kBasicFleet),
            KeyFor("availability",
                   R"({"fleet": {"repair_rate": 1e-1,
                                 "classes": [{"failure_rate": 1e-3, "count": 3}]},
                       "protocol": "raft"})"));
}

TEST(LifecycleCanonical, CurveClassEqualsItsFrozenHazardRate) {
  // A constant curve's hazard at any age IS its rate, so the curve spelling and the
  // resolved-rate spelling must collide in the cache.
  EXPECT_EQ(KeyFor("availability", kBasicFleet),
            KeyFor("availability",
                   R"({"protocol": "raft",
                       "fleet": {"classes": [{"count": 3,
                                              "curve": {"kind": "constant", "rate": 0.001},
                                              "age": 8766}],
                                 "repair_rate": 0.1}})"));
}

TEST(LifecycleCanonical, ExplicitGridEqualsItsGeneratedRates) {
  // Grid endpoints are pinned exactly, so a 2-point grid and its explicit spelling collide.
  // (Interior grid points go through log/exp and are NOT guaranteed to match an explicit
  // decimal spelling — only the resolved rates define the key.)
  const std::string explicit_key = KeyFor(
      "repair_sweep",
      R"({"protocol": "raft", "fleet": {"classes": [{"count": 3, "failure_rate": 1e-3}]},
          "min_rate": 0.1, "max_rate": 10.0, "points": 2})");
  EXPECT_EQ(explicit_key,
            KeyFor("repair_sweep",
                   R"({"protocol": "raft",
                       "fleet": {"classes": [{"count": 3, "failure_rate": 1e-3}]},
                       "repair_rates": [0.1, 10.0]})"));
}

TEST(LifecycleCanonical, BaseRepairRateIsInertForSweeps) {
  // The sweep replaces repair_rate point by point, so a stray base value must not split
  // the cache.
  EXPECT_EQ(KeyFor("repair_sweep",
                   R"({"protocol": "raft",
                       "fleet": {"classes": [{"count": 3, "failure_rate": 1e-3}],
                                 "repair_rate": 7.0},
                       "repair_rates": [0.5]})"),
            KeyFor("repair_sweep",
                   R"({"protocol": "raft",
                       "fleet": {"classes": [{"count": 3, "failure_rate": 1e-3}]},
                       "repair_rates": [0.5]})"));
}

TEST(LifecycleCanonical, DifferentRequestsGetDifferentKeys) {
  EXPECT_NE(KeyFor("availability", kBasicFleet),
            KeyFor("availability",
                   R"({"protocol": "pbft",
                       "fleet": {"classes": [{"count": 3, "failure_rate": 0.001}],
                                 "repair_rate": 0.1}})"));
  EXPECT_NE(KeyFor("availability", kBasicFleet),
            KeyFor("availability",
                   R"({"protocol": "raft",
                       "fleet": {"classes": [{"count": 3, "failure_rate": 0.001}],
                                 "repair_rate": 0.1},
                       "reconfiguration": true})"));
}

// ---------------------------------------------------------------------------------------
// End to end over the loopback transport: execution, memoization, metrics.

TEST(LifecycleServe, AvailabilityAnswersAndMemoizes) {
  QueryServer server(ServerOptions{});
  ServeClient client(std::make_unique<LoopbackChannel>(server));

  auto first = client.Query(
      "availability",
      Params(R"({"protocol": "raft",
                 "fleet": {"classes": [{"count": 3, "failure_rate": 0.02}],
                           "repair_rate": 0.5, "repair_servers": 3},
                 "loss_threshold": 3})"));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->status.ok()) << first->status.ToString();
  EXPECT_FALSE(first->cached);
  // Independent M/M/1 nodes: availability = P(Binomial(3, mu/(l+mu)) >= 2).
  const double up = 0.5 / 0.52;
  const double expected = 3 * up * up * (1 - up) + up * up * up;
  const Json* unavailability = first->result.Find("unavailability");
  ASSERT_NE(unavailability, nullptr);
  EXPECT_NEAR(unavailability->NumberValue(), 1.0 - expected, 1e-9);
  ASSERT_NE(first->result.Find("mttu_hours"), nullptr);
  ASSERT_NE(first->result.Find("mttql_hours"), nullptr);
  ASSERT_NE(first->result.Find("downtime_hours_per_year"), nullptr);

  auto second = client.Query(
      "availability",
      Params(R"({"protocol": "raft",
                 "fleet": {"classes": [{"count": 3, "failure_rate": 2e-2}],
                           "repair_servers": 3, "repair_rate": 0.5},
                 "loss_threshold": 3})"));
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->status.ok());
  EXPECT_TRUE(second->cached);  // Canonically equal respelling hits the memo.
  EXPECT_EQ(WriteJson(first->result), WriteJson(second->result));
}

TEST(LifecycleServe, ReconfigurationWindowReportsJointQuorum) {
  QueryServer server(ServerOptions{});
  ServeClient client(std::make_unique<LoopbackChannel>(server));
  auto response = client.Query(
      "availability",
      Params(R"({"protocol": "raft",
                 "fleet": {"classes": [{"count": 3, "failure_rate": 0.001,
                                        "old": true, "new": true},
                                       {"count": 2, "failure_rate": 0.001,
                                        "old": false, "new": true}],
                           "repair_rate": 0.1},
                 "reconfiguration": true})"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->status.ok()) << response->status.ToString();
  const Json* reconfig = response->result.Find("reconfiguration");
  ASSERT_NE(reconfig, nullptr);
  const Json* joint = reconfig->Find("unavailability");
  const Json* steady = response->result.Find("unavailability");
  ASSERT_NE(joint, nullptr);
  ASSERT_NE(steady, nullptr);
  EXPECT_GT(joint->NumberValue(), steady->NumberValue());
}

TEST(LifecycleServe, MissionReliabilityScheduleMode) {
  QueryServer server(ServerOptions{});
  ServeClient client(std::make_unique<LoopbackChannel>(server));
  auto response = client.Query(
      "mission_reliability",
      Params(R"({"protocol": "raft",
                 "schedule": {"curve": {"kind": "constant", "rate": 1e-4}, "n": 5,
                              "round_hours": 24, "rounds": 10}})"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->status.ok()) << response->status.ToString();
  const Json* mode = response->result.Find("mode");
  ASSERT_NE(mode, nullptr);
  EXPECT_EQ(mode->text, "schedule");
  const Json* mission = response->result.Find("mission");
  ASSERT_NE(mission, nullptr);
  ASSERT_NE(mission->Find("live"), nullptr);
  ASSERT_NE(response->result.Find("final_cumulative"), nullptr);
}

TEST(LifecycleServe, MissionReliabilityFleetMode) {
  QueryServer server(ServerOptions{});
  ServeClient client(std::make_unique<LoopbackChannel>(server));
  auto response = client.Query(
      "mission_reliability",
      Params(R"({"protocol": "raft",
                 "fleet": {"classes": [{"count": 3, "failure_rate": 0.01}],
                           "repair_rate": 0.2, "repair_servers": 3},
                 "mission_hours": 1000})"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->status.ok()) << response->status.ToString();
  const Json* outage = response->result.Find("outage_probability");
  ASSERT_NE(outage, nullptr);
  EXPECT_GT(outage->NumberValue(), 0.0);
  EXPECT_LT(outage->NumberValue(), 1.0);
}

TEST(LifecycleServe, RepairSweepFindsTheFiveNinesRate) {
  QueryServer server(ServerOptions{});
  ServeClient client(std::make_unique<LoopbackChannel>(server));
  auto response = client.Query(
      "repair_sweep",
      Params(R"({"protocol": "raft",
                 "fleet": {"classes": [{"count": 5, "failure_rate": 0.001}]},
                 "min_rate": 0.001, "max_rate": 10.0, "points": 12,
                 "target_availability": 0.99999})"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->status.ok()) << response->status.ToString();
  const Json* points = response->result.Find("points");
  ASSERT_NE(points, nullptr);
  EXPECT_EQ(points->items.size(), 12u);
  const Json* winner = response->result.Find("first_rate_meeting_target");
  ASSERT_NE(winner, nullptr);
  EXPECT_GT(winner->NumberValue(), 0.0);
}

TEST(LifecycleServe, EngineNeverSeesStatsOrHealth) {
  // Guard on the ExecuteRequest contract the new cases extend: lifecycle kinds run in the
  // engine; stats/health stay inline.
  ServeRequest request;
  request.kind = RequestKind::kStats;
  EXPECT_FALSE(ExecuteRequest(request, nullptr).ok());
}

}  // namespace
}  // namespace probcon::serve
