// QueryServer behavior through the loopback transport: memoized answers with the cached
// flag, load shedding at the admission limit, drain semantics, deadline enforcement, and
// the inline ping path.

#include "src/serve/server.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/json.h"
#include "src/obs/metrics.h"
#include "src/serve/client.h"
#include "src/serve/spec.h"

namespace probcon::serve {
namespace {

Json Params(const std::string& text) {
  auto parsed = ParseJson(text, "test params");
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return *std::move(parsed);
}

const Json* FindPath(const Json& object, const std::string& outer, const std::string& inner) {
  const Json* level = object.Find(outer);
  return level == nullptr ? nullptr : level->Find(inner);
}

TEST(QueryServerTest, AnswersTable1AndMemoizesTheRepeat) {
  QueryServer server(ServerOptions{});
  ServeClient client(std::make_unique<LoopbackChannel>(server));

  auto first = client.Query("table1", Params(R"({"n": 4})"));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->status.ok()) << first->status.ToString();
  EXPECT_FALSE(first->cached);
  const Json* safe_and_live = FindPath(first->result, "report", "safe_and_live");
  ASSERT_NE(safe_and_live, nullptr);
  EXPECT_EQ(safe_and_live->text, "99.94%");  // the regression-locked Table 1 cell

  auto second = client.Query("table1", Params(R"({"n": 4})"));
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->status.ok());
  EXPECT_TRUE(second->cached);
  // The memoized answer is byte-identical to the computed one.
  EXPECT_EQ(WriteJson(first->result), WriteJson(second->result));

  // A canonically equal spelling hits the same entry.
  auto respelled = client.Query("table1", Params(R"({"fault": {"p": 1e-2, "n": 4}, "n": 4})"));
  ASSERT_TRUE(respelled.ok());
  ASSERT_TRUE(respelled->status.ok());
  EXPECT_TRUE(respelled->cached);

  EXPECT_EQ(server.cache().snapshot().misses, 1u);
}

TEST(QueryServerTest, PingAnswersInlineAndReportsDraining) {
  QueryServer server(ServerOptions{});
  ServeClient client(std::make_unique<LoopbackChannel>(server));

  auto ping = client.Query("ping", Json::Object());
  ASSERT_TRUE(ping.ok());
  ASSERT_TRUE(ping->status.ok());
  const Json* draining = ping->result.Find("draining");
  ASSERT_NE(draining, nullptr);
  EXPECT_FALSE(draining->boolean);

  server.Drain();
  ping = client.Query("ping", Json::Object());
  ASSERT_TRUE(ping.ok());
  ASSERT_TRUE(ping->status.ok()) << "pings must succeed while draining";
  draining = ping->result.Find("draining");
  ASSERT_NE(draining, nullptr);
  EXPECT_TRUE(draining->boolean);
}

TEST(QueryServerTest, ShedsWorkAboveTheAdmissionLimit) {
  ServerOptions options;
  options.max_inflight = 0;  // every non-ping request is over the limit
  MetricsRegistry metrics;
  QueryServer server(options, &metrics);
  ServeClient client(std::make_unique<LoopbackChannel>(server));

  auto shed = client.Query("table1", Params(R"({"n": 4})"));
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->status.code(), StatusCode::kResourceExhausted);

  // Shedding is a reject, not a queue: nothing in flight, and the probe still answers.
  EXPECT_EQ(server.inflight(), 0);
  auto ping = client.Query("ping", Json::Object());
  ASSERT_TRUE(ping.ok());
  EXPECT_TRUE(ping->status.ok());
  EXPECT_EQ(metrics.GetCounter("serve.shed").value(), 1u);
}

TEST(QueryServerTest, DrainingServerAnswersUnavailable) {
  QueryServer server(ServerOptions{});
  ServeClient client(std::make_unique<LoopbackChannel>(server));
  server.Drain();

  auto rejected = client.Query("table1", Params(R"({"n": 4})"));
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->status.code(), StatusCode::kUnavailable);
}

TEST(QueryServerTest, ExpiredDeadlineReturnsDeadlineExceededPromptly) {
  QueryServer server(ServerOptions{});
  ServeClient client(std::make_unique<LoopbackChannel>(server));

  // A Monte Carlo run sized to take far longer than the 1 ms deadline; the watchdog fires
  // the token and the sampling loop bails at the next poll instead of wedging the server.
  auto response = client.Query(
      "montecarlo",
      Params(R"({"protocol": "raft", "fault": {"n": 5, "p": 0.01}, "trials": 1073741824})"),
      /*deadline_ms=*/1.0);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code(), StatusCode::kDeadlineExceeded);

  // The server is healthy afterwards: a fresh cheap request still answers.
  auto after = client.Query("table1", Params(R"({"n": 4})"));
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->status.ok());
}

TEST(QueryServerTest, CancelledComputationIsNotCached) {
  QueryServer server(ServerOptions{});
  ServeClient client(std::make_unique<LoopbackChannel>(server));
  const std::string params =
      R"({"protocol": "raft", "fault": {"n": 5, "p": 0.01}, "trials": 1073741824, "seed": 7})";

  auto expired = client.Query("montecarlo", Params(params), /*deadline_ms=*/1.0);
  ASSERT_TRUE(expired.ok());
  ASSERT_EQ(expired->status.code(), StatusCode::kDeadlineExceeded);

  // Same canonical key without a deadline: the error was not memoized, so this retries the
  // computation — observable as a second cache miss (a smaller run would be a lie here, so
  // keep the key identical and only drop the deadline... but 2^30 trials would take
  // minutes, so instead verify via cache stats that the failed attempt stayed out).
  EXPECT_EQ(server.cache().snapshot().entry_count, 0u);
  EXPECT_EQ(server.cache().snapshot().misses, 1u);
}

TEST(QueryServerTest, MalformedPayloadAnswersInvalidArgumentWithRecoveredId) {
  QueryServer server(ServerOptions{});
  const std::string response_text =
      server.Handle(R"({"v": 9, "id": 31, "kind": "table1", "params": {"n": 4}})");
  auto response = ResponseEnvelope::Parse(response_text);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(response->id, 31u);  // recovered from the rejected payload
}

TEST(QueryServerTest, DeeplyNestedPayloadAnswersInvalidArgumentNotCrash) {
  // A nesting bomb ("[[[[...") up to the frame limit must degrade to INVALID_ARGUMENT like
  // any other malformed input — one local client must not be able to crash the daemon.
  QueryServer server(ServerOptions{});
  const std::string response_text = server.Handle(std::string(100000, '['));
  auto response = ResponseEnvelope::Parse(response_text);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);

  // The server still answers real queries afterwards.
  ServeClient client(std::make_unique<LoopbackChannel>(server));
  auto after = client.Query("table1", Params(R"({"n": 4})"));
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->status.ok());
}

TEST(QueryServerTest, ValidationErrorsSurfaceAsInvalidArgument) {
  QueryServer server(ServerOptions{});
  ServeClient client(std::make_unique<LoopbackChannel>(server));
  auto response = client.Query("table1", Params(R"({"n": 3})"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);
}

TEST(QueryServerTest, DefaultDeadlineFromOptionsApplies) {
  ServerOptions options;
  options.default_deadline_ms = 1.0;
  QueryServer server(options);
  ServeClient client(std::make_unique<LoopbackChannel>(server));

  // No client deadline, but the server-wide default catches the oversized run.
  auto response = client.Query(
      "montecarlo",
      Params(R"({"protocol": "raft", "fault": {"n": 5, "p": 0.01}, "trials": 1073741824})"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status.code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace probcon::serve
