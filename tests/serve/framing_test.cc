// Wire framing: round-trips, incremental decoding under arbitrary packetization, and the
// poisoning behavior on corrupt streams.

#include "src/serve/framing.h"

#include <gtest/gtest.h>

#include <string>

namespace probcon::serve {
namespace {

std::string U32BigEndian(uint32_t value) {
  std::string out(4, '\0');
  out[0] = static_cast<char>((value >> 24) & 0xff);
  out[1] = static_cast<char>((value >> 16) & 0xff);
  out[2] = static_cast<char>((value >> 8) & 0xff);
  out[3] = static_cast<char>(value & 0xff);
  return out;
}

TEST(Framing, EncodeLaysOutMagicLengthPayload) {
  const std::string frame = EncodeFrame("hello");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 5);
  EXPECT_EQ(frame.substr(0, 4), "PCSV");
  EXPECT_EQ(frame.substr(4, 4), U32BigEndian(5));
  EXPECT_EQ(frame.substr(8), "hello");
}

TEST(Framing, RoundTripSingleFrame) {
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(R"({"v": 1})"));
  auto next = decoder.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ(**next, R"({"v": 1})");

  // Stream exhausted: more bytes needed, not an error.
  next = decoder.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(Framing, EmptyPayloadRoundTrips) {
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(""));
  auto next = decoder.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ(**next, "");
}

TEST(Framing, ByteAtATimeFeedReassemblesEveryFrame) {
  const std::string stream =
      EncodeFrame("first") + EncodeFrame("") + EncodeFrame(std::string(1000, 'x'));
  FrameDecoder decoder;
  std::vector<std::string> payloads;
  for (const char byte : stream) {
    decoder.Feed(std::string_view(&byte, 1));
    while (true) {
      auto next = decoder.Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) {
        break;
      }
      payloads.push_back(std::move(**next));
    }
  }
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], "first");
  EXPECT_EQ(payloads[1], "");
  EXPECT_EQ(payloads[2], std::string(1000, 'x'));
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(Framing, CoalescedFramesInOneFeedAllDecode) {
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame("a") + EncodeFrame("bb") + EncodeFrame("ccc"));
  for (const std::string expected : {"a", "bb", "ccc"}) {
    auto next = decoder.Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next->has_value());
    EXPECT_EQ(**next, expected);
  }
}

TEST(Framing, BadMagicPoisonsTheDecoder) {
  FrameDecoder decoder;
  decoder.Feed("GET / HTTP/1.1\r\n");
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);

  // Sticky: feeding a valid frame afterwards cannot revive the stream.
  decoder.Feed(EncodeFrame("valid"));
  next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
}

TEST(Framing, OversizedDeclaredLengthIsRejectedBeforePayloadArrives) {
  FrameDecoder decoder(/*max_payload_bytes=*/1024);
  // Header only: declared length far above the limit; no payload bytes ever sent.
  decoder.Feed(std::string("PCSV") + U32BigEndian(1u << 20));
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kResourceExhausted);
}

TEST(Framing, PayloadAtTheLimitStillDecodes) {
  FrameDecoder decoder(/*max_payload_bytes=*/16);
  decoder.Feed(EncodeFrame(std::string(16, 'p')));
  auto next = decoder.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ((*next)->size(), 16u);
}

TEST(Framing, PartialHeaderIsNotAnError) {
  FrameDecoder decoder;
  decoder.Feed("PC");
  auto next = decoder.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
  EXPECT_EQ(decoder.buffered_bytes(), 2u);
}

TEST(Framing, EofAtFrameBoundaryIsClean) {
  FrameDecoder decoder;
  EXPECT_TRUE(decoder.AtEof().ok());  // Nothing fed at all: a clean close.

  decoder.Feed(EncodeFrame("payload"));
  auto next = decoder.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->has_value());
  EXPECT_TRUE(decoder.AtEof().ok());  // Every fed byte consumed: also clean.
}

TEST(Framing, EofMidHeaderIsUnavailable) {
  FrameDecoder decoder;
  decoder.Feed("PCSV\x00");  // 5 of the 8 header bytes, then the peer vanishes.
  const Status eof = decoder.AtEof();
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.code(), StatusCode::kUnavailable);
  EXPECT_NE(eof.message().find("mid-frame"), std::string::npos) << eof.message();
}

TEST(Framing, PartialFeedThenEofIsUnavailableWithProgress) {
  // The satellite case: a well-formed header promising 100 bytes, only 37 delivered,
  // then EOF. The classifier must report a mid-frame close, not a clean shutdown, and
  // must say how far the payload got.
  FrameDecoder decoder;
  decoder.Feed(std::string("PCSV") + U32BigEndian(100) + std::string(37, 'x'));
  auto next = decoder.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());  // Frame incomplete: not decodable yet.
  const Status eof = decoder.AtEof();
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.code(), StatusCode::kUnavailable);
  EXPECT_NE(eof.message().find("37"), std::string::npos) << eof.message();
  EXPECT_NE(eof.message().find("100"), std::string::npos) << eof.message();
}

TEST(Framing, EofOnPoisonedDecoderKeepsThePoisonStatus) {
  FrameDecoder decoder;
  decoder.Feed("GARBAGE!");
  ASSERT_FALSE(decoder.Next().ok());
  const Status eof = decoder.AtEof();
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.code(), StatusCode::kInvalidArgument);  // Corruption, not connection loss.
}

}  // namespace
}  // namespace probcon::serve
