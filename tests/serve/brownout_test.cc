// The brownout circuit breaker: sustained shedding trips the breaker, degradable verbs
// then answer in degraded mode (capped trials, `"degraded": true`) or serve
// stale-but-flagged memo entries through a dedicated admission lane, the `health` verb
// exposes the state machine, and consecutive normal admits close the breaker again.
// Degraded answers are bit-deterministic per seed.

#include "src/serve/server.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/json.h"
#include "src/obs/metrics.h"
#include "src/serve/client.h"
#include "src/serve/spec.h"

namespace probcon::serve {
namespace {

Json Params(const std::string& text) {
  auto parsed = ParseJson(text, "test params");
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return *std::move(parsed);
}

// A montecarlo request asking for far more trials than the degraded cap.
constexpr char kBigMonteCarlo[] =
    R"({"protocol": "raft", "fault": {"n": 5, "p": 0.01}, "trials": 1048576, "seed": 7})";

std::string HealthState(ServeClient& client) {
  auto health = client.Query("health", Json::Object());
  EXPECT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_TRUE(health->status.ok()) << health->status.ToString();
  const Json* state = health->result.Find("state");
  EXPECT_NE(state, nullptr);
  return state == nullptr ? "" : state->text;
}

TEST(BrownoutTest, SustainedSheddingTripsTheBreakerIntoDegradedAnswers) {
  ServerOptions options;
  options.max_inflight = 0;  // Every engine request would shed.
  options.brownout.trip_sheds = 3;
  MetricsRegistry metrics;
  QueryServer server(options, &metrics);
  ServeClient client(std::make_unique<LoopbackChannel>(server));

  EXPECT_EQ(HealthState(client), "ready");

  // Below the trip threshold the breaker holds: plain sheds, no degradation.
  for (int i = 0; i < 2; ++i) {
    auto shed = client.Query("montecarlo", Params(kBigMonteCarlo));
    ASSERT_TRUE(shed.ok());
    EXPECT_EQ(shed->status.code(), StatusCode::kResourceExhausted);
    EXPECT_FALSE(shed->degraded);
  }
  EXPECT_EQ(HealthState(client), "ready");

  // The third would-shed trips the breaker, and the tripping request itself enters the
  // degraded lane: it answers degraded instead of shedding.
  auto degraded = client.Query("montecarlo", Params(kBigMonteCarlo));
  ASSERT_TRUE(degraded.ok());
  ASSERT_TRUE(degraded->status.ok()) << degraded->status.ToString();
  EXPECT_TRUE(degraded->degraded);
  const Json* trials = degraded->result.Find("trials");
  ASSERT_NE(trials, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(trials->NumberValue()), options.brownout.degraded_trials);
  const Json* requested = degraded->result.Find("requested_trials");
  ASSERT_NE(requested, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(requested->NumberValue()), 1048576u);
  ASSERT_NE(degraded->result.Find("ci_width"), nullptr)
      << "a degraded answer must disclose its achieved confidence";
  EXPECT_EQ(HealthState(client), "degraded");
  EXPECT_EQ(metrics.GetCounter("serve.brownout.trips").value(), 1u);
  EXPECT_EQ(metrics.GetCounter("serve.degraded").value(), 1u);
  EXPECT_EQ(metrics.GetGauge("serve.health").value(), 1);
}

TEST(BrownoutTest, NonDegradableKindsStillShedWhileTheBreakerIsOpen) {
  ServerOptions options;
  options.max_inflight = 0;
  options.brownout.trip_sheds = 1;
  QueryServer server(options);
  ServeClient client(std::make_unique<LoopbackChannel>(server));

  auto tripping = client.Query("montecarlo", Params(kBigMonteCarlo));
  ASSERT_TRUE(tripping.ok());
  EXPECT_TRUE(tripping->degraded);  // trip_sheds=1: the first would-shed already degrades

  // table1 is cheap and always answered exactly; it never rides the degraded lane.
  auto shed = client.Query("table1", Params(R"({"n": 4})"));
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(shed->degraded);
}

TEST(BrownoutTest, DisabledBrownoutAlwaysSheds) {
  ServerOptions options;
  options.max_inflight = 0;
  options.brownout.enabled = false;
  options.brownout.trip_sheds = 1;
  QueryServer server(options);
  ServeClient client(std::make_unique<LoopbackChannel>(server));

  for (int i = 0; i < 5; ++i) {
    auto shed = client.Query("montecarlo", Params(kBigMonteCarlo));
    ASSERT_TRUE(shed.ok());
    EXPECT_EQ(shed->status.code(), StatusCode::kResourceExhausted);
    EXPECT_FALSE(shed->degraded);
  }
  EXPECT_EQ(HealthState(client), "ready");
}

TEST(BrownoutTest, DegradedAnswersAreBitDeterministicPerSeed) {
  // Two independent servers, identically configured and identically tripped, must serve
  // byte-identical degraded responses: the degraded estimator pins its own seeds.
  auto degraded_response = [](uint64_t request_seed) {
    ServerOptions options;
    options.max_inflight = 0;
    options.brownout.trip_sheds = 1;
    QueryServer server(options);
    const std::string params =
        R"({"protocol": "raft", "fault": {"n": 5, "p": 0.01}, "trials": 1048576, "seed": )" +
        std::to_string(request_seed) + "}";
    const std::string payload =
        RequestEnvelope::Serialize(1, "montecarlo", Params(params), 0.0, false);
    // With trip_sheds=1 the first would-shed already trips the breaker and answers
    // degraded; the repeat re-computes (degraded runs bypass the memo cache) and must
    // reproduce the same bytes.
    const std::string first = server.Handle(payload);
    const std::string second = server.Handle(payload);
    EXPECT_EQ(first, second);
    return second;
  };

  const std::string first = degraded_response(7);
  EXPECT_EQ(first, degraded_response(7)) << "same seed, same bytes";
  EXPECT_NE(first.find("\"degraded\": true"), std::string::npos) << first;
  // The caller's Monte Carlo seed still selects the stream.
  EXPECT_NE(first, degraded_response(8));
}

TEST(BrownoutTest, StaleMemoEntriesServeFlaggedDuringBrownout) {
  ServerOptions options;
  options.max_inflight = 1;
  options.brownout.trip_sheds = 1;
  options.brownout.recover_admits = 2;
  MetricsRegistry metrics;
  QueryServer server(options, &metrics);
  ServeClient client(std::make_unique<LoopbackChannel>(server));

  // Prime the memo with a healthy, exact answer.
  auto primed = client.Query("montecarlo", Params(kBigMonteCarlo));
  ASSERT_TRUE(primed.ok());
  ASSERT_TRUE(primed->status.ok()) << primed->status.ToString();
  EXPECT_FALSE(primed->degraded);

  // Occupy the only inflight slot with a slow request, then trip the breaker with a shed.
  std::mutex mutex;
  std::condition_variable cv;
  bool slow_done = false;
  server.Submit(
      RequestEnvelope::Serialize(
          99, "montecarlo",
          Params(R"({"protocol": "pbft", "fault": {"n": 4, "p": 0.02}, )"
                 R"("trials": 4194304, "seed": 3})"),
          0.0, false),
      [&](std::string) {
        std::lock_guard<std::mutex> lock(mutex);
        slow_done = true;
        cv.notify_all();
      });
  ASSERT_EQ(server.inflight(), 1);

  auto tripping = client.Query("table1", Params(R"({"n": 4})"));
  ASSERT_TRUE(tripping.ok());
  EXPECT_EQ(tripping->status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(HealthState(client), "degraded");

  // The primed entry now serves through the degraded lane: stale-but-flagged, with the
  // result bytes of the exact answer.
  auto stale = client.Query("montecarlo", Params(kBigMonteCarlo));
  ASSERT_TRUE(stale.ok());
  ASSERT_TRUE(stale->status.ok()) << stale->status.ToString();
  EXPECT_TRUE(stale->degraded);
  EXPECT_TRUE(stale->cached);
  EXPECT_EQ(WriteJson(stale->result), WriteJson(primed->result));
  EXPECT_EQ(metrics.GetCounter("serve.degraded.stale").value(), 1u);
  EXPECT_GE(metrics.GetCounter("serve.degraded").value(), 1u);

  // Let the slow request finish, then recover: consecutive normal admits close the
  // breaker and health returns to ready.
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return slow_done; });
  }
  // The done callback fires just before the in-flight count drops; wait for the books.
  while (server.inflight() != 0) {
    std::this_thread::yield();
  }
  for (int i = 0; i < options.brownout.recover_admits; ++i) {
    auto normal = client.Query("table1", Params(R"({"n": 4})"));
    ASSERT_TRUE(normal.ok());
    ASSERT_TRUE(normal->status.ok()) << normal->status.ToString();
    EXPECT_FALSE(normal->degraded);
  }
  EXPECT_EQ(HealthState(client), "ready");
  EXPECT_EQ(metrics.GetGauge("serve.health").value(), 0);
}

TEST(BrownoutTest, HealthReportsDrainingOverDegraded) {
  ServerOptions options;
  options.max_inflight = 0;
  options.brownout.trip_sheds = 1;
  QueryServer server(options);
  ServeClient client(std::make_unique<LoopbackChannel>(server));

  auto tripping = client.Query("montecarlo", Params(kBigMonteCarlo));
  ASSERT_TRUE(tripping.ok());
  EXPECT_EQ(HealthState(client), "degraded");

  server.Drain();
  EXPECT_EQ(HealthState(client), "draining") << "draining dominates the breaker state";
}

}  // namespace
}  // namespace probcon::serve
