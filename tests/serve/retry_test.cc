// The resilience layer: decorrelated-jitter backoff, the retry policy (transport
// failures and retryable envelope statuses retry; definite verdicts do not), retry
// budgets, call deadlines, and hedged batches — all against scripted fake channels, so
// every schedule is deterministic.

#include "src/serve/client.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/serve/spec.h"

namespace probcon::serve {
namespace {

// Answers every request with a scripted per-call status: entry i of `script` decides
// call i (OK echoes a trivial result; other codes build an error envelope; kUnavailable
// with `transport_error` fails the exchange itself instead). Off-script calls answer OK.
class ScriptedChannel final : public Channel {
 public:
  struct Step {
    StatusCode code = StatusCode::kOk;
    bool transport_error = false;
  };

  ScriptedChannel(std::vector<Step> script, int* calls) : script_(std::move(script)),
                                                          calls_(calls) {}

  Result<std::string> RoundTrip(const std::string& payload) override {
    const int call = (*calls_)++;
    const Step step = call < static_cast<int>(script_.size()) ? script_[call] : Step{};
    if (step.transport_error) {
      return UnavailableError("scripted transport failure");
    }
    Result<RequestEnvelope> request = RequestEnvelope::Parse(payload);
    if (!request.ok()) return request.status();
    ResponseEnvelope response;
    response.id = request->id;
    if (step.code == StatusCode::kOk) {
      response.result = Json::Object();
    } else {
      response.status = Status(step.code, "scripted status");
    }
    return response.Serialize();
  }

 private:
  std::vector<Step> script_;
  int* calls_;
};

// Answers call i with the handcrafted wire payload `payloads[i]` verbatim; off-script
// calls echo a clean OK envelope for the request. The call counter is shared across
// reconnects, so corruption scripts survive the client dialing a fresh channel.
class RawChannel final : public Channel {
 public:
  RawChannel(std::vector<std::string> payloads, int* calls)
      : payloads_(std::move(payloads)), calls_(calls) {}

  Result<std::string> RoundTrip(const std::string& request) override {
    const int call = (*calls_)++;
    if (call < static_cast<int>(payloads_.size())) {
      return payloads_[call];
    }
    Result<RequestEnvelope> parsed = RequestEnvelope::Parse(request);
    if (!parsed.ok()) return parsed.status();
    ResponseEnvelope response;
    response.id = parsed->id;
    response.result = Json::Object();
    return response.Serialize();
  }

 private:
  std::vector<std::string> payloads_;
  int* calls_;
};

ResilientClient::ChannelFactory RawFactory(std::vector<std::string> payloads, int* calls) {
  return [payloads = std::move(payloads), calls]() -> Result<std::unique_ptr<Channel>> {
    return std::unique_ptr<Channel>(std::make_unique<RawChannel>(payloads, calls));
  };
}

// A channel whose exchange blocks for `stall_ms`, then fails — the hedging trigger.
class StallingChannel final : public Channel {
 public:
  explicit StallingChannel(double stall_ms) : stall_ms_(stall_ms) {}
  Result<std::string> RoundTrip(const std::string&) override {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(stall_ms_ * 1000.0)));
    return UnavailableError("stalled exchange gave up");
  }

 private:
  double stall_ms_;
};

ResilientClient::ChannelFactory ScriptedFactory(std::vector<ScriptedChannel::Step> script,
                                                int* calls) {
  // Each dial returns a channel sharing the same call counter, so the script indexes
  // calls across reconnects.
  return [script = std::move(script), calls]() -> Result<std::unique_ptr<Channel>> {
    return std::unique_ptr<Channel>(std::make_unique<ScriptedChannel>(script, calls));
  };
}

TEST(Backoff, DecorrelatedJitterStaysInEnvelopeAndIsDeterministic) {
  Rng a(42), b(42);
  double prev_a = 0.0, prev_b = 0.0;
  for (int step = 0; step < 100; ++step) {
    const double next_a = DecorrelatedJitterBackoffMs(a, 2.0, 250.0, prev_a);
    const double next_b = DecorrelatedJitterBackoffMs(b, 2.0, 250.0, prev_b);
    EXPECT_EQ(next_a, next_b) << "same seed, same schedule";
    EXPECT_GE(next_a, 2.0);
    EXPECT_LE(next_a, 250.0);
    // Decorrelated growth: each step is bounded by 3x the previous one, with the base
    // standing in for "previous" on the first step.
    EXPECT_LE(next_a, 3.0 * std::max(prev_a, 2.0) + 1e-9);
    prev_a = next_a;
    prev_b = next_b;
  }
}

TEST(Retry, TransportFailuresRetryOnAFreshChannelUntilSuccess) {
  int calls = 0;
  MetricsRegistry metrics;
  RetryOptions options;
  options.initial_backoff_ms = 0.1;
  options.max_backoff_ms = 0.5;
  ResilientClient client(
      ScriptedFactory({{StatusCode::kUnavailable, /*transport_error=*/true},
                       {StatusCode::kUnavailable, /*transport_error=*/true},
                       {StatusCode::kOk, false}},
                      &calls),
      options, &metrics);

  Result<ResponseEnvelope> response = client.Query("ping", Json::Object());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(client.retries(), 2u);
  EXPECT_EQ(metrics.GetCounter("serve.client.retries").value(), 2u);
}

TEST(Retry, RetryableEnvelopeStatusesRetryOnTheSameChannel) {
  int calls = 0;
  RetryOptions options;
  options.initial_backoff_ms = 0.1;
  ResilientClient client(
      ScriptedFactory({{StatusCode::kResourceExhausted, false},
                       {StatusCode::kUnavailable, false},
                       {StatusCode::kOk, false}},
                      &calls),
      options);

  Result<ResponseEnvelope> response = client.Query("ping", Json::Object());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->status.ok());
  EXPECT_EQ(client.retries(), 2u);
}

TEST(Retry, DefiniteVerdictsAreNeverRetried) {
  int calls = 0;
  RetryOptions options;
  options.initial_backoff_ms = 0.1;
  ResilientClient client(ScriptedFactory({{StatusCode::kInvalidArgument, false}}, &calls),
                         options);

  Result<ResponseEnvelope> response = client.Query("ping", Json::Object());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(client.retries(), 0u);
}

TEST(Retry, ExhaustedAttemptsReturnTheLastRetryableStatus) {
  int calls = 0;
  RetryOptions options;
  options.max_attempts = 3;
  options.initial_backoff_ms = 0.1;
  ResilientClient client(
      ScriptedFactory(std::vector<ScriptedChannel::Step>(
                          8, {StatusCode::kResourceExhausted, false}),
                      &calls),
      options);

  Result<ResponseEnvelope> response = client.Query("ping", Json::Object());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(calls, 3);
}

TEST(Retry, BudgetCapsRetriesAcrossCalls) {
  int calls = 0;
  RetryOptions options;
  options.initial_backoff_ms = 0.1;
  options.retry_budget = 1;  // One retry for the client's whole lifetime.
  ResilientClient client(
      ScriptedFactory(std::vector<ScriptedChannel::Step>(
                          8, {StatusCode::kUnavailable, /*transport_error=*/true}),
                      &calls),
      options);

  Result<ResponseEnvelope> first = client.Query("ping", Json::Object());
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(client.retries(), 1u);  // Budget spent.

  Result<ResponseEnvelope> second = client.Query("ping", Json::Object());
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(client.retries(), 1u);  // No budget left: first failure is final.
}

TEST(Retry, GarbledStatusNameIsWireCorruptionNotAVerdict) {
  // Call 0 answers with a well-framed envelope whose status name the writer never emits —
  // the signature of in-flight payload corruption. The client must discard the connection
  // and retry, and the clean second call must succeed.
  int calls = 0;
  RetryOptions options;
  options.initial_backoff_ms = 0.1;
  ResilientClient client(
      RawFactory({R"({"v": 1, "id": 1, "status": "Oc", "cached": false, "result": {}})"},
                 &calls),
      options);

  Result<ResponseEnvelope> response = client.Query("ping", Json::Object());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->status.ok());
  EXPECT_EQ(client.retries(), 1u);
}

TEST(Retry, PersistentCorruptionExhaustsToUnavailableNotInternal) {
  int calls = 0;
  RetryOptions options;
  options.initial_backoff_ms = 0.1;
  ResilientClient client(
      RawFactory(std::vector<std::string>(
                     8, R"({"v": 1, "id": 1, "status": "Oc", "cached": false, "result": {}})"),
                 &calls),
      options);

  Result<ResponseEnvelope> response = client.Query("ping", Json::Object());
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable)
      << response.status().ToString();
}

TEST(Retry, MismatchedResponseIdIsRetriedAsCorruption) {
  // Call 0 answers a valid OK envelope carrying a foreign id (garbled id digits); the
  // client cannot correlate it with the request, so it must be treated as corruption.
  int calls = 0;
  RetryOptions options;
  options.initial_backoff_ms = 0.1;
  ResilientClient client(
      RawFactory({R"({"v": 1, "id": 999999, "status": "OK", "cached": false, "result": {}})"},
                 &calls),
      options);

  Result<ResponseEnvelope> response = client.Query("ping", Json::Object());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->status.ok());
  EXPECT_EQ(client.retries(), 1u);
}

TEST(Retry, CallDeadlineBoundsTheRetryLoop) {
  // Every attempt stalls 5ms then fails: the 30ms call deadline expires after a handful
  // of attempts, long before max_attempts.
  RetryOptions options;
  options.max_attempts = 100;
  options.initial_backoff_ms = 1.0;
  options.max_backoff_ms = 2.0;
  ResilientClient client(
      []() -> Result<std::unique_ptr<Channel>> {
        return std::unique_ptr<Channel>(std::make_unique<StallingChannel>(/*stall_ms=*/5.0));
      },
      options);

  // This test measures wall-time policy itself (the deadline must bound the loop), so the
  // monotonic clock is the subject, not a determinism leak.
  // NOLINTNEXTLINE(probcon-determinism): timing the deadline-bounded retry loop.
  const auto start = std::chrono::steady_clock::now();
  Result<ResponseEnvelope> response = client.Query("ping", Json::Object(),
                                                   /*deadline_ms=*/30.0);
  const double elapsed_ms =
      // NOLINTNEXTLINE(probcon-determinism): timing the deadline-bounded retry loop.
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded)
      << response.status().ToString();
  EXPECT_LT(elapsed_ms, 1000.0) << "the loop must stop near the deadline, not run "
                                   "max_attempts to completion";
}

TEST(RetryBatch, ExhaustedItemsStillGetDefiniteEnvelopes) {
  int calls = 0;
  RetryOptions options;
  options.max_attempts = 2;
  options.initial_backoff_ms = 0.1;
  ResilientClient client(
      ScriptedFactory(std::vector<ScriptedChannel::Step>(
                          8, {StatusCode::kUnavailable, /*transport_error=*/true}),
                      &calls),
      options);

  std::vector<ServeClient::BatchItem> items(2);
  items[0].kind = items[1].kind = "ping";
  items[0].params = items[1].params = Json::Object();
  Result<std::vector<ResponseEnvelope>> batch = client.QueryBatch(items);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 2u);
  for (const ResponseEnvelope& envelope : *batch) {
    EXPECT_EQ(envelope.status.code(), StatusCode::kUnavailable)
        << envelope.status.ToString();
  }
}

TEST(RetryBatch, HedgeRacesAStalledPrimaryAndWins) {
  // First dial: a channel that stalls far longer than the hedge delay. Second dial (the
  // hedge): a healthy scripted channel. The batch must resolve via the hedge.
  int scripted_calls = 0;
  int dials = 0;
  MetricsRegistry metrics;
  RetryOptions options;
  options.max_attempts = 1;  // No retries: only the hedge can save the call.
  options.hedge_delay_ms = 5.0;
  auto factory = [&]() -> Result<std::unique_ptr<Channel>> {
    if (dials++ == 0) {
      return std::unique_ptr<Channel>(std::make_unique<StallingChannel>(/*stall_ms=*/200.0));
    }
    return std::unique_ptr<Channel>(
        std::make_unique<ScriptedChannel>(std::vector<ScriptedChannel::Step>{},
                                          &scripted_calls));
  };
  ResilientClient client(factory, options, &metrics);

  std::vector<ServeClient::BatchItem> items(1);
  items[0].kind = "ping";
  items[0].params = Json::Object();
  Result<std::vector<ResponseEnvelope>> batch = client.QueryBatch(items);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 1u);
  EXPECT_TRUE((*batch)[0].status.ok()) << (*batch)[0].status.ToString();
  EXPECT_EQ(client.hedges(), 1u);
  EXPECT_EQ(metrics.GetCounter("serve.client.hedges").value(), 1u);
  EXPECT_EQ(dials, 2);
}

}  // namespace
}  // namespace probcon::serve
