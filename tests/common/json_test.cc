// The shared JSON model: parse/serialize round-trips, insertion-order determinism, raw
// number-token preservation, and the typed field readers.

#include "src/common/json.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace probcon {
namespace {

TEST(Json, ParsesScalarsAndContainers) {
  auto parsed = ParseJson(R"({"a": 1, "b": [true, null, "s"], "c": {"d": 2.5}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->IsObject());

  const Json* a = parsed->Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->IsNumber());
  EXPECT_EQ(a->NumberValue(), 1.0);

  const Json* b = parsed->Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->IsArray());
  ASSERT_EQ(b->items.size(), 3u);
  EXPECT_EQ(b->items[0].type, Json::Type::kBool);
  EXPECT_TRUE(b->items[0].boolean);
  EXPECT_EQ(b->items[1].type, Json::Type::kNull);
  EXPECT_TRUE(b->items[2].IsString());
  EXPECT_EQ(b->items[2].text, "s");

  const Json* d = parsed->Find("c")->Find("d");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->NumberValue(), 2.5);
}

TEST(Json, CompactWriterRoundTripsByteIdentically) {
  const std::string compact = R"({"n": 5, "p": 0.01, "tags": ["a", "b"], "on": true})";
  auto parsed = ParseJson(compact);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(WriteJson(*parsed), compact);
}

TEST(Json, NumberTokensSurviveUnchanged) {
  // Numbers keep their raw token: a uint64 seed above 2^53 must not get mangled through a
  // double, and "1e-2" must serialize back exactly as parsed.
  auto parsed = ParseJson(R"({"seed": 18446744073709551615, "p": 1e-2})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(WriteJson(*parsed), R"({"seed": 18446744073709551615, "p": 1e-2})");

  uint64_t seed = 0;
  ASSERT_TRUE(JsonReadUint64(*parsed, "seed", &seed).ok());
  EXPECT_EQ(seed, 18446744073709551615ull);
}

TEST(Json, BuildersSerializeDeterministically) {
  Json object = Json::Object();
  object.Set("name", Json::String("probe"));
  object.Set("count", Json::Number(3));
  Json list = Json::Array();
  list.Append(Json::Number(0.5));
  list.Append(Json::Bool(false));
  object.Set("list", std::move(list));
  object.Set("none", Json::Null());

  const std::string expected =
      R"({"name": "probe", "count": 3, "list": [0.5, false], "none": null})";
  EXPECT_EQ(WriteJson(object), expected);
  EXPECT_EQ(WriteJson(object), WriteJson(object));  // stable across calls
}

TEST(Json, IndentedWriterMatchesTwoSpaceLayout) {
  Json object = Json::Object();
  object.Set("a", Json::Number(1));
  Json inner = Json::Array();
  inner.Append(Json::Number(2));
  object.Set("b", std::move(inner));
  EXPECT_EQ(WriteJson(object, 0),
            "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(Json, StringEscapesRoundTrip) {
  Json object = Json::Object();
  object.Set("text", Json::String("line\nquote\"back\\slash\ttab"));
  const std::string written = WriteJson(object);
  auto reparsed = ParseJson(written);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->Find("text")->text, "line\nquote\"back\\slash\ttab");
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson(R"({"a": })").ok());
  EXPECT_FALSE(ParseJson(R"({"a": 1} trailing)").ok());
  EXPECT_FALSE(ParseJson(R"([1, 2,])").ok());
  // The `what` label lands in the error message.
  const Status status = ParseJson("nope", "serve request").status();
  EXPECT_NE(status.message().find("serve request"), std::string::npos);
}

TEST(Json, RejectsExcessiveNestingInsteadOfOverflowingTheStack) {
  // The parser recurses per container level, so depth is capped: a frame full of '['
  // must come back as INVALID_ARGUMENT, not a stack overflow.
  const std::string bomb(100000, '[');
  const Status deep = ParseJson(bomb, "serve request").status();
  EXPECT_EQ(deep.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(deep.message().find("nesting"), std::string::npos);

  // Objects count against the same limit.
  std::string objects;
  for (int i = 0; i < 200; ++i) objects += R"({"a": )";
  EXPECT_EQ(ParseJson(objects).status().code(), StatusCode::kInvalidArgument);

  // Exactly at the 64-level limit still parses; one more level is rejected.
  std::string at_limit = std::string(64, '[') + std::string(64, ']');
  EXPECT_TRUE(ParseJson(at_limit).ok());
  std::string over_limit = std::string(65, '[') + std::string(65, ']');
  EXPECT_FALSE(ParseJson(over_limit).ok());
}

TEST(Json, IntReadersRejectValuesOutsideIntRange) {
  auto parsed = ParseJson(R"({"big": 1e300, "small": -1e300, "edge": 2147483648,
                              "list": [1, 1e300]})");
  ASSERT_TRUE(parsed.ok());
  int n = 0;
  EXPECT_EQ(JsonReadInt(*parsed, "big", &n).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(JsonReadInt(*parsed, "small", &n).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(JsonReadInt(*parsed, "edge", &n).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(n, 0);  // *out untouched on rejection
  std::vector<int> list;
  EXPECT_EQ(JsonReadIntList(*parsed, "list", &list).code(), StatusCode::kInvalidArgument);
}

TEST(Json, Uint64ReaderRejectsSignsFractionsAndExponents) {
  auto parsed = ParseJson(R"({"neg": -1, "frac": 1.5, "exp": 1e3, "ok": 7})");
  ASSERT_TRUE(parsed.ok());
  uint64_t value = 0;
  // strtoull would wrap "-1" to 18446744073709551615; the reader must reject it instead.
  EXPECT_EQ(JsonReadUint64(*parsed, "neg", &value).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(JsonReadUint64(*parsed, "frac", &value).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(JsonReadUint64(*parsed, "exp", &value).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(JsonReadUint64(*parsed, "ok", &value).ok());
  EXPECT_EQ(value, 7u);

  // 2^64 is out of range, not silently truncated.
  auto huge = ParseJson(R"({"seed": 18446744073709551616})");
  ASSERT_TRUE(huge.ok());
  EXPECT_EQ(JsonReadUint64(*huge, "seed", &value).code(), StatusCode::kInvalidArgument);
}

TEST(Json, TypedReadersApplyDefaultsAndTypeCheck) {
  auto parsed = ParseJson(R"({"n": 5, "p": 0.25, "name": "x", "flag": true,
                              "ids": [1, 2], "weights": [0.5, 1.5]})");
  ASSERT_TRUE(parsed.ok());

  int n = -1;
  double p = -1.0;
  std::string name;
  bool flag = false;
  std::vector<int> ids;
  std::vector<double> weights;
  EXPECT_TRUE(JsonReadInt(*parsed, "n", &n).ok());
  EXPECT_TRUE(JsonReadDouble(*parsed, "p", &p).ok());
  EXPECT_TRUE(JsonReadString(*parsed, "name", &name).ok());
  EXPECT_TRUE(JsonReadBool(*parsed, "flag", &flag).ok());
  EXPECT_TRUE(JsonReadIntList(*parsed, "ids", &ids).ok());
  EXPECT_TRUE(JsonReadDoubleList(*parsed, "weights", &weights).ok());
  EXPECT_EQ(n, 5);
  EXPECT_EQ(p, 0.25);
  EXPECT_EQ(name, "x");
  EXPECT_TRUE(flag);
  EXPECT_EQ(ids, (std::vector<int>{1, 2}));
  EXPECT_EQ(weights, (std::vector<double>{0.5, 1.5}));

  // Missing key: *out untouched (callers pre-load defaults).
  int untouched = 42;
  EXPECT_TRUE(JsonReadInt(*parsed, "absent", &untouched).ok());
  EXPECT_EQ(untouched, 42);

  // Present but mistyped: InvalidArgument naming the key.
  const Status mistyped = JsonReadInt(*parsed, "name", &n, "test doc");
  EXPECT_EQ(mistyped.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(mistyped.message().find("name"), std::string::npos);
}

TEST(Json, FormatDoubleIsShortestRoundTrip) {
  EXPECT_EQ(FormatDouble(0.01), "0.01");
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(0.1 + 0.2), FormatDouble(0.30000000000000004));
}

}  // namespace
}  // namespace probcon
