#include "src/common/status.h"

#include <string>

#include <gtest/gtest.h>

namespace probcon {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = InvalidArgumentError("bad n");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad n");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad n");
}

TEST(StatusTest, AllFactoriesSetTheirCodes) {
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(ResourceExhaustedError("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(NotFoundError("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> result(std::string("hello"));
  EXPECT_EQ(result.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

Status FailsThrough() {
  RETURN_IF_ERROR(InvalidArgumentError("inner"));
  return Status::Ok();
}

Status PassesThrough() {
  RETURN_IF_ERROR(Status::Ok());
  return InternalError("reached end");
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(PassesThrough().code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

}  // namespace
}  // namespace probcon
