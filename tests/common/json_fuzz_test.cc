// Fuzz-style hardening of the JSON parser: seeded random byte strings and mutated valid
// documents. The parser must never crash or hang — every input yields either a parsed
// value or an INVALID_ARGUMENT status — and anything it does accept must survive a
// write/reparse round trip. Runs clean under ASan/UBSan (the serve-wirechaos CI job).

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/common/rng.h"

namespace probcon {
namespace {

std::string RandomBytes(Rng& rng, size_t length) {
  std::string out(length, '\0');
  for (char& byte : out) {
    byte = static_cast<char>(rng.NextBelow(256));
  }
  return out;
}

// Characters that steer the parser into interesting states far more often than uniform
// bytes do: structure, quotes, escapes, digits, and the keyword heads.
std::string RandomJsonish(Rng& rng, size_t length) {
  static constexpr char kAlphabet[] = "{}[]\",:.\\-+eE0123456789tfnu ";
  std::string out(length, '\0');
  for (char& byte : out) {
    byte = kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)];
  }
  return out;
}

void ExpectParseIsTotal(const std::string& text) {
  const Result<Json> parsed = ParseJson(text, "fuzz");
  if (parsed.ok()) {
    // Accepted input must round-trip: serialize, reparse, reserialize, byte-compare.
    const std::string written = WriteJson(*parsed);
    const Result<Json> reparsed = ParseJson(written, "fuzz-roundtrip");
    ASSERT_TRUE(reparsed.ok()) << written << ": " << reparsed.status().ToString();
    EXPECT_EQ(WriteJson(*reparsed), written);
  } else {
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
        << parsed.status().ToString();
  }
}

TEST(JsonFuzz, RandomBytesNeverCrashTheParser) {
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    Rng rng(DeriveStreamSeed(0x4A01ull, seed));
    ExpectParseIsTotal(RandomBytes(rng, rng.NextBelow(256)));
  }
}

TEST(JsonFuzz, StructuralSoupNeverCrashesTheParser) {
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    Rng rng(DeriveStreamSeed(0x4A02ull, seed));
    ExpectParseIsTotal(RandomJsonish(rng, 1 + rng.NextBelow(128)));
  }
}

TEST(JsonFuzz, MutatedEnvelopesParseOrRejectCleanly) {
  // The serving envelope shape, as it appears on the wire; mutations model exactly what
  // the wire-chaos garble fault produces inside an intact frame.
  const std::string envelope =
      R"({"v": 1, "id": 42, "kind": "montecarlo", "deadline_ms": 250, "params": )"
      R"({"protocol": "raft", "fault": {"n": 5, "p": 0.01}, "trials": 4096, "seed": 7}})";
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    Rng rng(DeriveStreamSeed(0x4A03ull, seed));
    std::string mutated = envelope;
    const int edits = static_cast<int>(1 + rng.NextBelow(5));
    for (int i = 0; i < edits; ++i) {
      switch (rng.NextBelow(3)) {
        case 0:  // Flip a byte.
          mutated[rng.NextBelow(mutated.size())] ^=
              static_cast<char>(1 + rng.NextBelow(255));
          break;
        case 1:  // Truncate.
          mutated.resize(rng.NextBelow(mutated.size() + 1));
          if (mutated.empty()) mutated = "{";
          break;
        default:  // Duplicate a random span in place.
          const size_t from = rng.NextBelow(mutated.size());
          const size_t span = 1 + rng.NextBelow(8);
          mutated.insert(from, mutated.substr(from, span));
          break;
      }
    }
    ExpectParseIsTotal(mutated);
  }
}

TEST(JsonFuzz, DeeplyNestedInputResolvesWithoutOverflow) {
  // Nesting far beyond any legitimate request: the parser must either accept it or
  // reject it with a status — not exhaust the stack.
  for (const size_t depth : {64u, 256u, 4096u}) {
    std::string text;
    for (size_t i = 0; i < depth; ++i) text += '[';
    for (size_t i = 0; i < depth; ++i) text += ']';
    ExpectParseIsTotal(text);
  }
}

}  // namespace
}  // namespace probcon
