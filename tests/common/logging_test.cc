#include "src/common/logging.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/common/check.h"

namespace probcon {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GlobalLogThreshold(); }
  void TearDown() override { GlobalLogThreshold() = saved_; }

  // Captures stderr during `fn`.
  template <typename Fn>
  std::string CaptureStderr(Fn fn) {
    ::testing::internal::CaptureStderr();
    fn();
    return ::testing::internal::GetCapturedStderr();
  }

  LogLevel saved_ = LogLevel::kInfo;
};

TEST_F(LoggingTest, InfoPassesDefaultThreshold) {
  const std::string output = CaptureStderr([]() { LOG(Info) << "hello " << 42; });
  EXPECT_NE(output.find("hello 42"), std::string::npos);
  EXPECT_NE(output.find("INFO"), std::string::npos);
  EXPECT_NE(output.find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, DebugFilteredByDefault) {
  const std::string output = CaptureStderr([]() { LOG(Debug) << "invisible"; });
  EXPECT_TRUE(output.empty());
}

TEST_F(LoggingTest, ThresholdIsAdjustable) {
  GlobalLogThreshold() = LogLevel::kError;
  const std::string filtered = CaptureStderr([]() { LOG(Warning) << "dropped"; });
  EXPECT_TRUE(filtered.empty());
  const std::string passed = CaptureStderr([]() { LOG(Error) << "kept"; });
  EXPECT_NE(passed.find("kept"), std::string::npos);
}

TEST_F(LoggingTest, LogIfConditional) {
  const std::string output = CaptureStderr([]() {
    LOG_IF(Info, true) << "yes";
    LOG_IF(Info, false) << "no";
  });
  EXPECT_NE(output.find("yes"), std::string::npos);
  EXPECT_EQ(output.find("no\n"), std::string::npos);
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_EQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(LogLevelName(LogLevel::kError), "ERROR");
}

TEST_F(LoggingTest, LogLevelFromEnvParsesNamesAndDigits) {
  const struct {
    const char* text;
    LogLevel expected;
  } cases[] = {
      {"debug", LogLevel::kDebug},   {"DEBUG", LogLevel::kDebug},
      {"info", LogLevel::kInfo},     {"warning", LogLevel::kWarning},
      {"warn", LogLevel::kWarning},  {"error", LogLevel::kError},
      {"0", LogLevel::kDebug},       {"3", LogLevel::kError},
  };
  for (const auto& test_case : cases) {
    ::setenv("PROBCON_LOG_LEVEL", test_case.text, /*overwrite=*/1);
    EXPECT_EQ(LogLevelFromEnv(LogLevel::kInfo), test_case.expected) << test_case.text;
  }
  ::unsetenv("PROBCON_LOG_LEVEL");
}

TEST_F(LoggingTest, LogLevelFromEnvFallsBackWhenUnsetOrGarbage) {
  ::unsetenv("PROBCON_LOG_LEVEL");
  EXPECT_EQ(LogLevelFromEnv(LogLevel::kWarning), LogLevel::kWarning);
  ::setenv("PROBCON_LOG_LEVEL", "verbose-ish", /*overwrite=*/1);
  EXPECT_EQ(LogLevelFromEnv(LogLevel::kError), LogLevel::kError);
  ::unsetenv("PROBCON_LOG_LEVEL");
}

TEST_F(LoggingTest, LogClockPrefixesSimTime) {
  SetLogClock([]() { return 1234.5; });
  const std::string output = CaptureStderr([]() { LOG(Info) << "tick"; });
  ClearLogClock();
  EXPECT_NE(output.find("t=1234.5"), std::string::npos);
  EXPECT_NE(output.find("tick"), std::string::npos);
}

TEST_F(LoggingTest, ClearedLogClockDropsPrefix) {
  SetLogClock([]() { return 99.0; });
  ClearLogClock();
  const std::string output = CaptureStderr([]() { LOG(Info) << "plain"; });
  EXPECT_EQ(output.find("t="), std::string::npos);
  EXPECT_NE(output.find("plain"), std::string::npos);
}

TEST_F(LoggingTest, LogClockDoesNotDisturbStreamFormatting) {
  SetLogClock([]() { return 7.25; });
  const std::string output = CaptureStderr([]() { LOG(Info) << 0.123456789; });
  ClearLogClock();
  // Default ostream precision (6 significant digits) must still apply to the payload.
  EXPECT_NE(output.find("0.123457"), std::string::npos);
}

TEST(CheckTest, PassingCheckIsSilent) {
  CHECK(true) << "never rendered";
  CHECK_EQ(1, 1);
  CHECK_LT(1, 2);
  CHECK_GE(2, 2);
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ CHECK(false) << "boom"; }, "CHECK failed: false.*boom");
  EXPECT_DEATH({ CHECK_EQ(1, 2); }, "1 +vs +2");
}

}  // namespace
}  // namespace probcon
