#include "src/common/logging.h"

#include <gtest/gtest.h>

#include "src/common/check.h"

namespace probcon {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GlobalLogThreshold(); }
  void TearDown() override { GlobalLogThreshold() = saved_; }

  // Captures stderr during `fn`.
  template <typename Fn>
  std::string CaptureStderr(Fn fn) {
    ::testing::internal::CaptureStderr();
    fn();
    return ::testing::internal::GetCapturedStderr();
  }

  LogLevel saved_ = LogLevel::kInfo;
};

TEST_F(LoggingTest, InfoPassesDefaultThreshold) {
  const std::string output = CaptureStderr([]() { LOG(Info) << "hello " << 42; });
  EXPECT_NE(output.find("hello 42"), std::string::npos);
  EXPECT_NE(output.find("INFO"), std::string::npos);
  EXPECT_NE(output.find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, DebugFilteredByDefault) {
  const std::string output = CaptureStderr([]() { LOG(Debug) << "invisible"; });
  EXPECT_TRUE(output.empty());
}

TEST_F(LoggingTest, ThresholdIsAdjustable) {
  GlobalLogThreshold() = LogLevel::kError;
  const std::string filtered = CaptureStderr([]() { LOG(Warning) << "dropped"; });
  EXPECT_TRUE(filtered.empty());
  const std::string passed = CaptureStderr([]() { LOG(Error) << "kept"; });
  EXPECT_NE(passed.find("kept"), std::string::npos);
}

TEST_F(LoggingTest, LogIfConditional) {
  const std::string output = CaptureStderr([]() {
    LOG_IF(Info, true) << "yes";
    LOG_IF(Info, false) << "no";
  });
  EXPECT_NE(output.find("yes"), std::string::npos);
  EXPECT_EQ(output.find("no\n"), std::string::npos);
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_EQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(LogLevelName(LogLevel::kError), "ERROR");
}

TEST(CheckTest, PassingCheckIsSilent) {
  CHECK(true) << "never rendered";
  CHECK_EQ(1, 1);
  CHECK_LT(1, 2);
  CHECK_GE(2, 2);
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ CHECK(false) << "boom"; }, "CHECK failed: false.*boom");
  EXPECT_DEATH({ CHECK_EQ(1, 2); }, "1 +vs +2");
}

}  // namespace
}  // namespace probcon
