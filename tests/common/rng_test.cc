#include "src/common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace probcon {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / kTrials, 0.5, 0.005);
}

TEST(RngTest, NextBelowCoversRangeUniformly) {
  Rng rng(13);
  constexpr uint64_t kBound = 10;
  std::vector<int> counts(kBound, 0);
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    const uint64_t x = rng.NextBelow(kBound);
    ASSERT_LT(x, kBound);
    ++counts[x];
  }
  for (const int count : counts) {
    EXPECT_NEAR(count, kTrials / kBound, 500);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = rng.NextInRange(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    hits += rng.NextBernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
}

TEST(RngTest, ExponentialMoments) {
  Rng rng(23);
  constexpr double kLambda = 2.5;
  constexpr int kTrials = 200000;
  double sum = 0.0;
  for (int i = 0; i < kTrials; ++i) {
    const double x = rng.NextExponential(kLambda);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kTrials, 1.0 / kLambda, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(29);
  constexpr int kTrials = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kTrials; ++i) {
    const double x = rng.NextNormal(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kTrials;
  const double variance = sum_sq / kTrials - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.03);
  EXPECT_NEAR(variance, 4.0, 0.1);
}

TEST(RngTest, WeibullMedianMatchesClosedForm) {
  Rng rng(31);
  constexpr double kShape = 1.7;
  constexpr double kScale = 10.0;
  std::vector<double> samples;
  for (int i = 0; i < 100001; ++i) {
    samples.push_back(rng.NextWeibull(kShape, kScale));
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2, samples.end());
  const double median = samples[samples.size() / 2];
  const double expected = kScale * std::pow(std::log(2.0), 1.0 / kShape);
  EXPECT_NEAR(median, expected, 0.1);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  rng.Shuffle(items);
  std::vector<int> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sorted[i], i);
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.SampleWithoutReplacement(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (const size_t x : sample) {
      EXPECT_LT(x, 20u);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(43);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementUnbiased) {
  Rng rng(47);
  std::vector<int> counts(10, 0);
  constexpr int kTrials = 50000;
  for (int t = 0; t < kTrials; ++t) {
    for (const size_t x : rng.SampleWithoutReplacement(10, 3)) {
      ++counts[x];
    }
  }
  for (const int count : counts) {
    EXPECT_NEAR(count, kTrials * 3 / 10, 600);
  }
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(53);
  Rng child_a = parent.Fork(0);
  Rng child_b = parent.Fork(1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (child_a.Next() == child_b.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, SplitMix64KnownSequenceIsDeterministic) {
  uint64_t s1 = 42;
  uint64_t s2 = 42;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  }
}

}  // namespace
}  // namespace probcon
