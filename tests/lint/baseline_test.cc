// Baseline round-trip: serialize -> parse -> apply must tolerate exactly the grandfathered
// findings and nothing else.

#include "tools/lint/baseline.h"

#include <gtest/gtest.h>

namespace probcon::lint {
namespace {

Finding MakeFinding(const std::string& rule, const std::string& path, int line,
                    const std::string& token) {
  return Finding{rule, path, line, 7, token, "message text is not part of baseline identity"};
}

TEST(BaselineTest, RoundTripSuppressesExactlyTheSerializedFindings) {
  const std::vector<Finding> grandfathered = {
      MakeFinding("probcon-determinism", "src/old/clock.cc", 12, "system_clock"),
      MakeFinding("probcon-kahan", "src/analysis/old.cc", 40, "total"),
  };
  const Baseline baseline = ParseBaseline(SerializeBaseline(grandfathered));

  std::vector<Finding> current = grandfathered;
  current.push_back(MakeFinding("probcon-ownership", "src/new.cc", 3, "new"));

  std::vector<Finding> fresh;
  std::vector<Finding> baselined;
  ApplyBaseline(baseline, current, fresh, baselined);

  ASSERT_EQ(baselined.size(), 2u);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].rule, "probcon-ownership");
}

TEST(BaselineTest, LineMoveInvalidatesTheEntry) {
  const Baseline baseline = ParseBaseline(
      SerializeBaseline({MakeFinding("probcon-check", "src/a.cc", 10, "assert")}));
  EXPECT_TRUE(baseline.Contains(MakeFinding("probcon-check", "src/a.cc", 10, "assert")));
  EXPECT_FALSE(baseline.Contains(MakeFinding("probcon-check", "src/a.cc", 11, "assert")));
}

TEST(BaselineTest, CommentsBlanksAndMalformedLinesAreSkipped) {
  const Baseline baseline = ParseBaseline(
      "# header comment\n"
      "\n"
      "not a record\n"
      "probcon-check\tsrc/a.cc\t10\tassert\n"
      "too\tfew\ttabs\n");
  EXPECT_EQ(baseline.entries.size(), 1u);  // only the well-formed 3-tab record survives
}

TEST(BaselineTest, SerializeIsSortedAndDeterministic) {
  const std::vector<Finding> findings = {
      MakeFinding("probcon-kahan", "src/b.cc", 2, "y"),
      MakeFinding("probcon-check", "src/a.cc", 1, "x"),
  };
  std::vector<Finding> reversed = {findings[1], findings[0]};
  EXPECT_EQ(SerializeBaseline(findings), SerializeBaseline(reversed));
}

}  // namespace
}  // namespace probcon::lint
