// End-to-end: materialize the fixture mini-tree (tests/lint/fixtures/*.txt, where "__" in a
// fixture name encodes a path separator and the trailing ".txt" keeps the repo-wide lint
// walk away), run LintTree over it like CI runs over the real tree, and pin down exactly
// which findings appear — and that the baseline absorbs all of them.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "tools/lint/baseline.h"
#include "tools/lint/driver.h"
#include "tools/lint/finding.h"
#include "tools/lint/rules.h"

namespace probcon::lint {
namespace {

namespace fs = std::filesystem;

class LintE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) / "probcon_lint_e2e";
    fs::remove_all(root_);
    const fs::path fixtures(PROBCON_LINT_FIXTURE_DIR);
    ASSERT_TRUE(fs::is_directory(fixtures)) << fixtures;
    for (const auto& entry : fs::directory_iterator(fixtures)) {
      if (entry.path().extension() != ".txt") {
        continue;
      }
      // "src__analysis__sum_fire.cc.txt" -> "src/analysis/sum_fire.cc"
      std::string rel = entry.path().stem().string();  // strips ".txt"
      size_t pos = 0;
      while ((pos = rel.find("__", pos)) != std::string::npos) {
        rel.replace(pos, 2, "/");
      }
      const fs::path dest = root_ / rel;
      fs::create_directories(dest.parent_path());
      fs::copy_file(entry.path(), dest);
    }
  }

  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
};

TEST_F(LintE2eTest, MiniTreeProducesExactlyTheExpectedFindings) {
  const std::vector<Finding> findings = LintTree(root_.string(), {"src"});

  std::map<std::string, std::map<std::string, int>> by_file_rule;
  for (const Finding& finding : findings) {
    ++by_file_rule[finding.path][finding.rule];
  }

  const std::map<std::string, std::map<std::string, int>> expected = {
      {"src/entropy_fire.cc",
       {{"probcon-determinism", 2}}},  // random_device + system_clock
      {"src/iter_fire.cc", {{"probcon-unordered-iter", 1}}},
      {"src/hygiene_fire.h",
       {{"probcon-using-namespace", 1}, {"probcon-check", 1}, {"probcon-ownership", 1}}},
      {"src/analysis/sum_fire.cc", {{"probcon-kahan", 1}}},
      {"src/suppressed_noreason.cc", {{"probcon-nolint", 1}}},
      // src/serve/deadline_ok.cc is absent: steady_clock is waived under src/serve/.
      {"src/serve/entropy_fire.cc",
       {{"probcon-determinism", 2}}},  // random_device + system_clock still fire there
      // Concurrency rules (tree-level pass). Each *_clean sibling is absent: the fixed
      // shapes produce nothing.
      {"src/exec/helpwait_fire.cc", {{"probcon-blocking-under-lock", 1}}},
      {"src/serve/lockorder_fire.cc", {{"probcon-lock-order", 1}}},
      {"src/serve/guarded_fire.cc", {{"probcon-guarded-field", 1}}},
  };
  EXPECT_EQ(by_file_rule, expected);
}

TEST_F(LintE2eTest, FindingsAreSortedAndAnchored) {
  const std::vector<Finding> findings = LintTree(root_.string(), {"src"});
  ASSERT_FALSE(findings.empty());
  for (size_t i = 1; i < findings.size(); ++i) {
    EXPECT_FALSE(findings[i] < findings[i - 1]);
  }
  for (const Finding& finding : findings) {
    EXPECT_GT(finding.line, 0) << finding.path;
    EXPECT_GT(finding.col, 0) << finding.path;
    const std::string human = FormatHuman(finding);
    EXPECT_NE(human.find(finding.path + ":"), std::string::npos);
    EXPECT_NE(human.find("[" + finding.rule + "]"), std::string::npos);
  }
}

// The deadlock that shipped in the original ParallelFor completion wait (helping the pool
// while holding the group mutex) must be caught by R7 in its pre-fix shape, and the
// lock-order cycle must surface as an error with its witness edges attached.
TEST_F(LintE2eTest, ConcurrencyFindingsCarrySeverityAndEdges) {
  const std::vector<Finding> findings = LintTree(root_.string(), {"src"});
  bool saw_cycle = false;
  bool saw_blocking = false;
  for (const Finding& finding : findings) {
    if (finding.rule == "probcon-lock-order") {
      saw_cycle = true;
      EXPECT_EQ(finding.severity, "error");
      EXPECT_GE(finding.edges.size(), 2u) << "cycle findings carry their witness edges";
      for (const FindingEdge& edge : finding.edges) {
        EXPECT_FALSE(edge.from.empty());
        EXPECT_FALSE(edge.to.empty());
        EXPECT_GT(edge.line, 0);
      }
    } else if (finding.rule == "probcon-blocking-under-lock") {
      saw_blocking = true;
      EXPECT_EQ(finding.path, "src/exec/helpwait_fire.cc");
      EXPECT_EQ(finding.severity, "warning");
      EXPECT_NE(finding.message.find("TryRunOneTask"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_cycle);
  EXPECT_TRUE(saw_blocking);
}

TEST_F(LintE2eTest, WrittenBaselineAbsorbsEveryFinding) {
  const std::vector<Finding> findings = LintTree(root_.string(), {"src"});
  const Baseline baseline = ParseBaseline(SerializeBaseline(findings));

  std::vector<Finding> fresh;
  std::vector<Finding> baselined;
  ApplyBaseline(baseline, findings, fresh, baselined);
  EXPECT_TRUE(fresh.empty());
  EXPECT_EQ(baselined.size(), findings.size());
}

TEST_F(LintE2eTest, JsonOutputIsWellFormedAndDeterministic) {
  const std::vector<Finding> findings = LintTree(root_.string(), {"src"});
  const std::string json = FormatJson(findings);
  EXPECT_EQ(json, FormatJson(findings));
  EXPECT_NE(json.find("\"findings\": ["), std::string::npos);
  EXPECT_NE(json.find("\"count\": " + std::to_string(findings.size())), std::string::npos);
  for (const Finding& finding : findings) {
    EXPECT_NE(json.find("\"path\": \"" + finding.path + "\""), std::string::npos);
    EXPECT_NE(json.find("\"severity\": \"" + finding.severity + "\""), std::string::npos);
  }
  // The lock-order finding serializes its witness edges.
  EXPECT_NE(json.find("\"edges\": ["), std::string::npos);
}

TEST_F(LintE2eTest, CollectFilesIsSortedAndSkipsNonSources) {
  std::ofstream(root_ / "src" / "notes.md") << "# not a source file\n";
  const std::vector<std::string> files = CollectFiles(root_.string(), {"src"});
  ASSERT_FALSE(files.empty());
  for (size_t i = 1; i < files.size(); ++i) {
    EXPECT_LT(files[i - 1], files[i]);
  }
  for (const std::string& file : files) {
    EXPECT_EQ(file.find("notes.md"), std::string::npos);
  }
  // Missing directories are skipped without error.
  EXPECT_TRUE(CollectFiles(root_.string(), {"no_such_dir"}).empty());
}

}  // namespace
}  // namespace probcon::lint
