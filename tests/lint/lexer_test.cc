// Lexer edge cases: the rules are only as trustworthy as comment/string boundaries.

#include "tools/lint/lexer.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace probcon::lint {
namespace {

std::vector<Token> OfKind(const std::vector<Token>& tokens, TokenKind kind) {
  std::vector<Token> out;
  std::copy_if(tokens.begin(), tokens.end(), std::back_inserter(out),
               [kind](const Token& t) { return t.kind == kind; });
  return out;
}

bool HasIdent(const std::vector<Token>& tokens, const std::string& text) {
  return std::any_of(tokens.begin(), tokens.end(), [&](const Token& t) {
    return t.kind == TokenKind::kIdentifier && t.text == text;
  });
}

TEST(LexerTest, BannedTokenInsideLineCommentIsAComment) {
  const auto tokens = Lex("int x = 0;  // rand() would break determinism\n");
  EXPECT_FALSE(HasIdent(tokens, "rand"));
  const auto comments = OfKind(tokens, TokenKind::kComment);
  ASSERT_EQ(comments.size(), 1u);
  EXPECT_NE(comments[0].text.find("rand()"), std::string::npos);
}

TEST(LexerTest, BannedTokenInsideBlockCommentIsAComment) {
  const auto tokens = Lex("/* std::random_device lives here */ int y;\n");
  EXPECT_FALSE(HasIdent(tokens, "random_device"));
  EXPECT_TRUE(HasIdent(tokens, "y"));
}

TEST(LexerTest, BannedTokenInsideStringLiteralIsAString) {
  const auto tokens = Lex("const char* s = \"call rand() then time(nullptr)\";\n");
  EXPECT_FALSE(HasIdent(tokens, "rand"));
  EXPECT_FALSE(HasIdent(tokens, "time"));
  const auto strings = OfKind(tokens, TokenKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0].text, "call rand() then time(nullptr)");
}

TEST(LexerTest, RawStringSwallowsEverythingUntilDelimiter) {
  const auto tokens = Lex("auto s = R\"json({\"clock\": \"system_clock::now()\"})json\";\n");
  EXPECT_FALSE(HasIdent(tokens, "system_clock"));
  const auto raw = OfKind(tokens, TokenKind::kRawString);
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_EQ(raw[0].text, "{\"clock\": \"system_clock::now()\"}");
}

TEST(LexerTest, RawStringWithQuotesAndParens) {
  // A ")" followed by a quote inside the payload must not terminate the literal early.
  const auto tokens = Lex("auto s = R\"x(a )\" b )y\" c)x\";\n");
  const auto raw = OfKind(tokens, TokenKind::kRawString);
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_EQ(raw[0].text, "a )\" b )y\" c");
}

TEST(LexerTest, EscapedQuoteDoesNotEndString) {
  const auto tokens = Lex("auto s = \"a \\\" rand() b\"; int z;\n");
  EXPECT_FALSE(HasIdent(tokens, "rand"));
  EXPECT_TRUE(HasIdent(tokens, "z"));
}

TEST(LexerTest, DigitSeparatorIsNotACharLiteral) {
  const auto tokens = Lex("cluster.RunUntil(15'000.0); int after;\n");
  const auto numbers = OfKind(tokens, TokenKind::kNumber);
  ASSERT_EQ(numbers.size(), 1u);
  EXPECT_EQ(numbers[0].text, "15'000.0");
  EXPECT_TRUE(HasIdent(tokens, "after"));
}

TEST(LexerTest, CharLiteralWithEscape) {
  const auto tokens = Lex("char c = '\\''; char d = 'x';\n");
  const auto chars = OfKind(tokens, TokenKind::kCharLiteral);
  ASSERT_EQ(chars.size(), 2u);
  EXPECT_EQ(chars[0].text, "\\'");
  EXPECT_EQ(chars[1].text, "x");
}

TEST(LexerTest, PreprocessorDirectiveIsOneToken) {
  const auto tokens = Lex("#include <ctime>\nint x;\n");
  const auto directives = OfKind(tokens, TokenKind::kPpDirective);
  ASSERT_EQ(directives.size(), 1u);
  EXPECT_EQ(directives[0].text, "include <ctime>");
  EXPECT_FALSE(HasIdent(tokens, "ctime"));
}

TEST(LexerTest, DirectiveContinuationStaysOneToken) {
  const auto tokens = Lex("#define FOO(a) \\\n  ((a) + 1)\nint x;\n");
  const auto directives = OfKind(tokens, TokenKind::kPpDirective);
  ASSERT_EQ(directives.size(), 1u);
  EXPECT_NE(directives[0].text.find("((a) + 1)"), std::string::npos);
  EXPECT_TRUE(HasIdent(tokens, "x"));
}

TEST(LexerTest, MultiCharOperatorsAreSingleTokens) {
  const auto tokens = Lex("a += b; c::d; e->f;\n");
  int plus_eq = 0;
  int scope = 0;
  int arrow = 0;
  for (const Token& t : tokens) {
    plus_eq += t.IsPunct("+=");
    scope += t.IsPunct("::");
    arrow += t.IsPunct("->");
  }
  EXPECT_EQ(plus_eq, 1);
  EXPECT_EQ(scope, 1);
  EXPECT_EQ(arrow, 1);
}

TEST(LexerTest, LineAndColumnPositions) {
  const auto tokens = Lex("int a;\n  double b;\n");
  ASSERT_GE(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].col, 1);
  // "double" starts at line 2, col 3.
  bool found = false;
  for (const Token& t : tokens) {
    if (t.IsIdent("double")) {
      EXPECT_EQ(t.line, 2);
      EXPECT_EQ(t.col, 3);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, UnterminatedBlockCommentIsBestEffort) {
  const auto tokens = Lex("int x; /* rand() never closed");
  EXPECT_TRUE(HasIdent(tokens, "x"));
  EXPECT_FALSE(HasIdent(tokens, "rand"));
}

}  // namespace
}  // namespace probcon::lint
