// Units for the heuristic C++ parser behind R6-R8: class recovery (nesting, mutex
// members, guarded fields, declared order, container element types), name resolution, and
// function-body event extraction (locks held, unique_lock toggles, cv waits, REQUIRES).

#include "tools/lint/parser.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/lint/lexer.h"

namespace probcon::lint {
namespace {

ClassTable TableOf(const std::string& source) {
  ClassTable table;
  for (const ClassInfo& info : CollectClasses(Lex(source))) {
    table.Merge(info);
  }
  table.Finalize();
  return table;
}

std::vector<FunctionInfo> FunctionsOf(const std::string& source, const ClassTable& table) {
  return CollectFunctions("test.cc", Lex(source), table);
}

const FunctionInfo* FindFn(const std::vector<FunctionInfo>& fns, const std::string& name) {
  for (const FunctionInfo& fn : fns) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

TEST(CollectClassesTest, RecoversNestedClassesMutexesAndGuardedFields) {
  const std::string source = R"cc(
    namespace probcon {
    class Outer {
     public:
      void Touch();
     private:
      struct Inner {
        std::mutex mutex;
        int depth PROBCON_GUARDED_BY(mutex) = 0;
      };
      std::mutex own_mutex_;
      bool flag_ PROBCON_GUARDED_BY(own_mutex_) = false;
    };
    }  // namespace probcon
  )cc";
  const ClassTable table = TableOf(source);

  const ClassInfo* outer = table.Find("Outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->mutex_members.count("own_mutex_"), 1u);
  ASSERT_EQ(outer->guarded_fields.count("flag_"), 1u);
  EXPECT_EQ(outer->guarded_fields.at("flag_"), "own_mutex_");
  EXPECT_EQ(outer->methods.count("Touch"), 1u);

  const ClassInfo* inner = table.Find("Outer::Inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->mutex_members.count("mutex"), 1u);
  EXPECT_EQ(inner->guarded_fields.count("depth"), 1u);
}

TEST(CollectClassesTest, DeclaredOrderAnnotationsBecomeEdges) {
  const std::string source = R"cc(
    class Server {
      std::mutex a_;
      std::mutex b_ PROBCON_ACQUIRED_AFTER(a_);
      std::mutex c_ PROBCON_ACQUIRED_BEFORE(a_);
    };
  )cc";
  const ClassTable table = TableOf(source);
  const ClassInfo* server = table.Find("Server");
  ASSERT_NE(server, nullptr);
  ASSERT_EQ(server->declared_order.size(), 2u);

  // b_ ACQUIRED_AFTER a_: the annotated member comes second.
  const auto& after = server->declared_order[0];
  EXPECT_EQ(after.member, "b_");
  EXPECT_EQ(after.other, "a_");
  EXPECT_FALSE(after.member_first);

  const auto& before = server->declared_order[1];
  EXPECT_EQ(before.member, "c_");
  EXPECT_EQ(before.other, "a_");
  EXPECT_TRUE(before.member_first);
}

TEST(ClassTableTest, ResolvesContainerElementClasses) {
  const std::string source = R"cc(
    class Pool {
      struct Worker {
        std::mutex mutex;
      };
      std::vector<std::unique_ptr<Worker>> workers_;
    };
  )cc";
  const ClassTable table = TableOf(source);
  const std::string* element = table.MemberClass("Pool", "workers_");
  ASSERT_NE(element, nullptr);
  EXPECT_EQ(*element, "Pool::Worker");
}

TEST(ClassTableTest, ResolveWalksScopesAndRejectsAmbiguity) {
  const std::string source = R"cc(
    class A { struct State {}; };
    class B { struct State {}; };
    class Unique {};
  )cc";
  const ClassTable table = TableOf(source);

  // From inside A, "State" resolves to the nested one.
  const ClassInfo* state = table.Resolve("State", "A");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->name, "A::State");

  // From nowhere, "State" is ambiguous; "Unique" resolves by unqualified fallback.
  EXPECT_EQ(table.Resolve("State", ""), nullptr);
  const ClassInfo* unique = table.Resolve("Unique", "");
  ASSERT_NE(unique, nullptr);
  EXPECT_EQ(unique->name, "Unique");
}

TEST(CollectFunctionsTest, TracksNestedRaiiAcquisitionsWithHeldSets) {
  const std::string source = R"cc(
    class Ledger {
     public:
      void Move();
     private:
      std::mutex a_;
      std::mutex b_;
    };
    void Ledger::Move() {
      std::lock_guard<std::mutex> a(a_);
      std::lock_guard<std::mutex> b(b_);
    }
  )cc";
  const ClassTable table = TableOf(source);
  const std::vector<FunctionInfo> fns = FunctionsOf(source, table);
  const FunctionInfo* move = FindFn(fns, "Ledger::Move");
  ASSERT_NE(move, nullptr);
  ASSERT_EQ(move->acquires.size(), 2u);
  EXPECT_EQ(move->acquires[0].mutex_id, "Ledger::a_");
  EXPECT_TRUE(move->acquires[0].held.empty());
  EXPECT_EQ(move->acquires[1].mutex_id, "Ledger::b_");
  ASSERT_EQ(move->acquires[1].held.size(), 1u);
  EXPECT_EQ(move->acquires[1].held[0], "Ledger::a_");
}

TEST(CollectFunctionsTest, UniqueLockTogglesChangeHeldness) {
  const std::string source = R"cc(
    class Cache {
     public:
      void Fill();
     private:
      std::mutex mutex_;
    };
    void Cache::Fill() {
      std::unique_lock<std::mutex> lock(mutex_);
      Prepare();
      lock.unlock();
      Compute();
      lock.lock();
      Publish();
    }
  )cc";
  const ClassTable table = TableOf(source);
  const std::vector<FunctionInfo> fns = FunctionsOf(source, table);
  const FunctionInfo* fill = FindFn(fns, "Cache::Fill");
  ASSERT_NE(fill, nullptr);

  std::vector<std::string> held_at_prepare;
  std::vector<std::string> held_at_compute;
  std::vector<std::string> held_at_publish;
  for (const CallSite& call : fill->calls) {
    if (call.callee.find("Prepare") != std::string::npos) held_at_prepare = call.held;
    if (call.callee.find("Compute") != std::string::npos) held_at_compute = call.held;
    if (call.callee.find("Publish") != std::string::npos) held_at_publish = call.held;
  }
  EXPECT_EQ(held_at_prepare, std::vector<std::string>{"Cache::mutex_"});
  EXPECT_TRUE(held_at_compute.empty());
  EXPECT_EQ(held_at_publish, std::vector<std::string>{"Cache::mutex_"});
}

TEST(CollectFunctionsTest, ScopeExitReleasesRaiiLocks) {
  const std::string source = R"cc(
    class Pool {
     public:
      void Drain();
     private:
      std::mutex mutex_;
    };
    void Pool::Drain() {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        Flip();
      }
      Join();
    }
  )cc";
  const ClassTable table = TableOf(source);
  const std::vector<FunctionInfo> fns = FunctionsOf(source, table);
  const FunctionInfo* drain = FindFn(fns, "Pool::Drain");
  ASSERT_NE(drain, nullptr);
  for (const CallSite& call : drain->calls) {
    if (call.callee.find("Join") != std::string::npos) {
      EXPECT_TRUE(call.held.empty()) << "lock_guard died with its scope";
    }
    if (call.callee.find("Flip") != std::string::npos) {
      EXPECT_EQ(call.held.size(), 1u);
    }
  }
}

TEST(CollectFunctionsTest, CvWaitRecordsItsLockMutex) {
  const std::string source = R"cc(
    class Gate {
     public:
      void Await();
     private:
      std::mutex mutex_;
      std::condition_variable cv_;
    };
    void Gate::Await() {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock);
    }
  )cc";
  const ClassTable table = TableOf(source);
  const std::vector<FunctionInfo> fns = FunctionsOf(source, table);
  const FunctionInfo* await_fn = FindFn(fns, "Gate::Await");
  ASSERT_NE(await_fn, nullptr);
  bool saw_wait = false;
  for (const CallSite& call : await_fn->calls) {
    if (call.is_cv_wait) {
      saw_wait = true;
      EXPECT_EQ(call.cv_wait_mutex, "Gate::mutex_");
    }
  }
  EXPECT_TRUE(saw_wait);
}

TEST(CollectFunctionsTest, FunctionLocalMutexesGetFunctionScopedIds) {
  const std::string source = R"cc(
    void Handle() {
      std::mutex mutex;
      std::lock_guard<std::mutex> lock(mutex);
      Deliver();
    }
  )cc";
  const ClassTable table = TableOf(source);
  const std::vector<FunctionInfo> fns = FunctionsOf(source, table);
  const FunctionInfo* handle = FindFn(fns, "Handle");
  ASSERT_NE(handle, nullptr);
  ASSERT_EQ(handle->acquires.size(), 1u);
  EXPECT_EQ(handle->acquires[0].mutex_id, "Handle::mutex");
}

TEST(CollectFunctionsTest, RequiresOnDeclarationEmitsStub) {
  const std::string source = R"cc(
    class Shard {
      void InsertLocked(int key) PROBCON_REQUIRES(mutex_);
      std::mutex mutex_;
    };
  )cc";
  const ClassTable table = TableOf(source);
  const std::vector<FunctionInfo> fns = FunctionsOf(source, table);
  const FunctionInfo* stub = FindFn(fns, "Shard::InsertLocked");
  ASSERT_NE(stub, nullptr) << "bodyless declarations carrying REQUIRES produce a stub";
  ASSERT_EQ(stub->requires_held.size(), 1u);
  EXPECT_EQ(stub->requires_held[0], "Shard::mutex_");
  EXPECT_TRUE(stub->acquires.empty());
}

TEST(CollectFunctionsTest, LambdasAreSeparateFunctions) {
  const std::string source = R"cc(
    class Reactor {
     public:
      void SubmitFrame();
     private:
      std::mutex mutex_;
    };
    void Reactor::SubmitFrame() {
      auto task = [this]() {
        std::lock_guard<std::mutex> lock(mutex_);
        Deliver();
      };
      task();
    }
  )cc";
  const ClassTable table = TableOf(source);
  const std::vector<FunctionInfo> fns = FunctionsOf(source, table);
  const FunctionInfo* lambda = nullptr;
  for (const FunctionInfo& fn : fns) {
    if (fn.is_lambda) lambda = &fn;
  }
  ASSERT_NE(lambda, nullptr);
  EXPECT_NE(lambda->name.find("Reactor::SubmitFrame::<lambda"), std::string::npos);
  ASSERT_EQ(lambda->acquires.size(), 1u);
  EXPECT_EQ(lambda->acquires[0].mutex_id, "Reactor::mutex_");
}

TEST(CollectFunctionsTest, UnresolvableMutexGetsFunctionScopedPlaceholder) {
  const std::string source = R"cc(
    void Mystery(void* opaque) {
      std::lock_guard<std::mutex> lock(((Widget*)opaque)->mutex);
      Poke();
    }
  )cc";
  const ClassTable table = TableOf(source);
  const std::vector<FunctionInfo> fns = FunctionsOf(source, table);
  const FunctionInfo* mystery = FindFn(fns, "Mystery");
  ASSERT_NE(mystery, nullptr);
  ASSERT_EQ(mystery->acquires.size(), 1u);
  // Placeholders are function-scoped ("<fn>::?..."), never unified across functions.
  EXPECT_NE(mystery->acquires[0].mutex_id.find("::?"), std::string::npos);
}

}  // namespace
}  // namespace probcon::lint
