// Per-rule firing / non-firing coverage. Snippets live in raw strings, which doubles as a
// live demonstration that banned tokens inside literals never fire when this file itself is
// linted as part of the repo tree.

#include "tools/lint/rules.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace probcon::lint {
namespace {

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(std::count_if(findings.begin(), findings.end(),
                                        [&](const Finding& f) { return f.rule == rule; }));
}

// --- R1: determinism ---------------------------------------------------------------------

TEST(DeterminismRule, FiresOnEntropyAndClocks) {
  const auto findings = LintSource("src/foo.cc", R"code(
    #include <ctime>
    void f() {
      std::random_device rd;
      auto t = std::chrono::system_clock::now();
      auto u = time(nullptr);
      srand(42);
      int r = rand();
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-determinism"), 6);
}

TEST(DeterminismRule, CleanSeededCodeDoesNotFire) {
  const auto findings = LintSource("src/foo.cc", R"code(
    #include "src/common/rng.h"
    // rand() and time(nullptr) in a comment must not fire.
    void f() {
      probcon::Rng rng(42);
      const char* msg = "never call rand() or srand() here";
      double x = rng.NextDouble();
      double elapsed_time = timer(now);  // identifiers merely containing banned words
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-determinism"), 0);
}

TEST(DeterminismRule, MemberClockIsNotTheCLibrary) {
  const auto findings = LintSource("src/foo.cc", R"code(
    void f(const Simulator& sim) {
      double now = sim.clock();
      double t = scheduler->clock();
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-determinism"), 0);
}

TEST(DeterminismRule, AllowlistedRngSeamMayUseEntropy) {
  const auto findings = LintSource("src/common/rng.cc", R"code(
    uint64_t EntropySeed() { return std::random_device{}(); }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-determinism"), 0);
}

TEST(DeterminismRule, ServeLayerMayUseSteadyClockOnly) {
  // The scoped monotonic-clock waiver: steady_clock is legal under src/serve/ (deadline
  // watchdog, latency metrics) ...
  const auto serve_clock = LintSource("src/serve/server.cc", R"code(
    void Arm() { auto now = std::chrono::steady_clock::now(); }
  )code");
  EXPECT_EQ(CountRule(serve_clock, "probcon-determinism"), 0);

  // ... but ONLY steady_clock: ambient entropy and calendar clocks still fire there ...
  const auto serve_entropy = LintSource("src/serve/server.cc", R"code(
    void Bad() {
      std::random_device rd;
      auto wall = std::chrono::system_clock::now();
    }
  )code");
  EXPECT_EQ(CountRule(serve_entropy, "probcon-determinism"), 2);

  // ... and steady_clock outside the scoped paths keeps firing.
  const auto elsewhere = LintSource("src/analysis/reliability.cc", R"code(
    void Bad() { auto now = std::chrono::steady_clock::now(); }
  )code");
  EXPECT_EQ(CountRule(elsewhere, "probcon-determinism"), 1);
}

TEST(DeterminismRule, ObsSpanFilesCarryMonotonicWaiver) {
  // SpanTimer (src/obs/span.{h,cc}) is the obs layer's one steady_clock consumer; the
  // waiver covers exactly those two files, not the rest of src/obs/.
  const auto span_ok = LintSource("src/obs/span.cc", R"code(
    void T() { auto now = std::chrono::steady_clock::now(); }
  )code");
  EXPECT_EQ(CountRule(span_ok, "probcon-determinism"), 0);

  const auto other_obs = LintSource("src/obs/metrics.cc", R"code(
    void T() { auto now = std::chrono::steady_clock::now(); }
  )code");
  EXPECT_EQ(CountRule(other_obs, "probcon-determinism"), 1);
}

TEST(DeterminismRule, ServeBenchFileEntryMatchesExactFile) {
  const auto bench_ok = LintSource("bench/serve_load.cc", R"code(
    void T() { auto now = std::chrono::steady_clock::now(); }
  )code");
  EXPECT_EQ(CountRule(bench_ok, "probcon-determinism"), 0);

  const auto other_bench = LintSource("bench/perf_engine.cc", R"code(
    void T() { auto now = std::chrono::steady_clock::now(); }
  )code");
  EXPECT_EQ(CountRule(other_bench, "probcon-determinism"), 1);
}

TEST(DeterminismRule, TimeWithVariableArgumentDoesNotFire) {
  const auto findings = LintSource("src/foo.cc", R"code(
    void f(double when) { schedule.time(when); double t2 = advance_time(when); }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-determinism"), 0);
}

// --- R2: unordered iteration -------------------------------------------------------------

TEST(UnorderedIterRule, FiresOnRangedForOverUnorderedMap) {
  const auto findings = LintSource("src/foo.cc", R"code(
    std::unordered_map<int, double> weights_;
    void Export() {
      for (const auto& [node, weight] : weights_) {
        Emit(node, weight);
      }
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-unordered-iter"), 1);
}

TEST(UnorderedIterRule, FiresOnExplicitBeginWalk) {
  const auto findings = LintSource("src/foo.cc", R"code(
    std::unordered_set<uint64_t> pending_;
    void Drain() {
      for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        Handle(*it);
      }
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-unordered-iter"), 1);
}

TEST(UnorderedIterRule, MembershipAndVectorIterationAreClean) {
  const auto findings = LintSource("src/foo.cc", R"code(
    std::unordered_set<uint64_t> cancelled_;
    std::vector<int> order_;
    bool Run() {
      if (cancelled_.count(7) > 0) return false;
      for (const int id : order_) {
        Handle(id);
      }
      return cancelled_.find(9) != cancelled_.end();
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-unordered-iter"), 0);
}

TEST(UnorderedIterRule, ClassicForWithTernaryDoesNotConfuseParser) {
  const auto findings = LintSource("src/foo.cc", R"code(
    std::unordered_map<int, int> m_;
    void f(bool flip) {
      for (int i = flip ? 1 : 0; i < 10; ++i) {
        Touch(i);
      }
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-unordered-iter"), 0);
}

// --- R3: check hygiene + header namespace hygiene ----------------------------------------

TEST(CheckRule, FiresOnRawAssertInSrc) {
  const auto findings = LintSource("src/foo.cc", R"code(
    #include <cassert>
    void f(int n) { assert(n > 0); }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-check"), 2);  // include + call
}

TEST(CheckRule, CheckMacrosAndStaticAssertAreClean) {
  const auto findings = LintSource("src/foo.cc", R"code(
    #include "src/common/check.h"
    void f(int n) {
      CHECK(n > 0) << "bad n";
      DCHECK(n < 100);
      static_assert(sizeof(int) == 4);
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-check"), 0);
}

TEST(CheckRule, AssertOutsideSrcIsNotOurBusiness) {
  const auto findings = LintSource("tests/foo_test.cc", R"code(
    void f(int n) { assert(n > 0); }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-check"), 0);
}

TEST(UsingNamespaceRule, FiresInHeadersOnly) {
  const std::string snippet = R"code(
    using namespace std;
    void f();
  )code";
  EXPECT_EQ(CountRule(LintSource("src/foo.h", snippet), "probcon-using-namespace"), 1);
  EXPECT_EQ(CountRule(LintSource("src/foo.cc", snippet), "probcon-using-namespace"), 0);
}

TEST(UsingNamespaceRule, UsingDeclarationIsClean) {
  const auto findings = LintSource("src/foo.h", R"code(
    using std::vector;
    namespace probcon { void f(); }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-using-namespace"), 0);
}

// --- R4: ownership -----------------------------------------------------------------------

TEST(OwnershipRule, FiresOnNakedNewAndDelete) {
  const auto findings = LintSource("src/foo.cc", R"code(
    void f() {
      int* p = new int(7);
      delete p;
      int* a = new int[4];
      delete[] a;
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-ownership"), 4);
}

TEST(OwnershipRule, DeletedFunctionsAndMakeUniqueAreClean) {
  const auto findings = LintSource("src/foo.cc", R"code(
    struct NoCopy {
      NoCopy(const NoCopy&) = delete;
      NoCopy& operator=(const NoCopy&) = delete;
    };
    void f() {
      auto p = std::make_unique<int>(7);
      std::vector<int> v(4);
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-ownership"), 0);
}

// --- R5: Kahan accumulation --------------------------------------------------------------

TEST(KahanRule, FiresOnScalarDoubleReductionInLoop) {
  const auto findings = LintSource("src/analysis/foo.cc", R"code(
    double Total(const std::vector<double>& xs) {
      double sum = 0.0;
      for (const double x : xs) {
        sum += x;
      }
      return sum;
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-kahan"), 1);
}

TEST(KahanRule, KahanSumAndSubscriptedDpAreClean) {
  const auto findings = LintSource("src/analysis/foo.cc", R"code(
    double Total(const std::vector<double>& xs, std::vector<double>& e) {
      KahanSum sum;
      for (const double x : xs) {
        sum += x;
        e[2] += x * 0.5;  // DP cell update, not a scalar reduction
      }
      return sum.Total();
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-kahan"), 0);
}

TEST(KahanRule, AccumulationOutsideLoopIsClean) {
  const auto findings = LintSource("src/analysis/foo.cc", R"code(
    double f(double a, double b) {
      double acc = a;
      acc += b;  // two-term update, not a loop reduction
      return acc;
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-kahan"), 0);
}

TEST(KahanRule, OnlyAppliesUnderAnalysis) {
  const auto findings = LintSource("src/sim/foo.cc", R"code(
    double Total(const std::vector<double>& xs) {
      double sum = 0.0;
      for (const double x : xs) {
        sum += x;
      }
      return sum;
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-kahan"), 0);
}

TEST(KahanRule, InnerScopeDeclarationAtSameLoopDepthIsClean) {
  const auto findings = LintSource("src/analysis/foo.cc", R"code(
    void f(const std::vector<double>& xs) {
      for (const double x : xs) {
        double mass = x;
        mass += 0.5;  // declared and updated at the same loop depth
        Use(mass);
      }
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-kahan"), 0);
}

}  // namespace
}  // namespace probcon::lint
