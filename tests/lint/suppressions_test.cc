// NOLINT parsing: same-line, next-line, reason requirement, unknown rules, coexistence
// with clang-tidy suppressions.

#include "tools/lint/suppressions.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tools/lint/rules.h"

namespace probcon::lint {
namespace {

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(std::count_if(findings.begin(), findings.end(),
                                        [&](const Finding& f) { return f.rule == rule; }));
}

TEST(SuppressionsTest, SameLineNolintWithReasonSuppresses) {
  const auto findings = LintSource("src/foo.cc", R"code(
    void f() {
      srand(42);  // NOLINT(probcon-determinism): fixture exercising legacy seeding
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-determinism"), 0);
  EXPECT_EQ(CountRule(findings, "probcon-nolint"), 0);
}

TEST(SuppressionsTest, NolintNextlineSuppressesFollowingLineOnly) {
  const auto findings = LintSource("src/foo.cc", R"code(
    void f() {
      // NOLINTNEXTLINE(probcon-determinism): wall-time telemetry only; never in results
      auto t = std::chrono::steady_clock::now();
      auto u = std::chrono::steady_clock::now();
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-determinism"), 1);  // second line still fires
}

TEST(SuppressionsTest, MissingReasonStillSuppressesButIsFlagged) {
  const auto findings = LintSource("src/foo.cc", R"code(
    void f() {
      srand(42);  // NOLINT(probcon-determinism)
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-determinism"), 0);
  EXPECT_EQ(CountRule(findings, "probcon-nolint"), 1);
}

TEST(SuppressionsTest, UnknownProbconRuleIsFlagged) {
  const auto findings = LintSource("src/foo.cc", R"code(
    int x = 0;  // NOLINT(probcon-made-up-rule): no such rule
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-nolint"), 1);
}

TEST(SuppressionsTest, WrongRuleDoesNotSuppressOtherFindings) {
  const auto findings = LintSource("src/foo.cc", R"code(
    void f() {
      srand(42);  // NOLINT(probcon-ownership): suppressing the wrong rule
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-determinism"), 1);
}

TEST(SuppressionsTest, ClangTidyNolintIsIgnored) {
  const auto findings = LintSource("src/foo.cc", R"code(
    void f() {
      srand(42);  // NOLINT(bugprone-foo)
    }
  )code");
  // The clang-tidy-namespaced NOLINT neither suppresses nor triggers hygiene findings.
  EXPECT_EQ(CountRule(findings, "probcon-determinism"), 1);
  EXPECT_EQ(CountRule(findings, "probcon-nolint"), 0);
}

TEST(SuppressionsTest, MultiRuleListSuppressesEachNamedRule) {
  const auto findings = LintSource("src/analysis/foo.cc", R"code(
    double f(const std::vector<double>& xs) {
      double sum = 0.0;
      for (const double x : xs) {
        sum += x;  // NOLINT(probcon-kahan, probcon-determinism): error already bounded here
      }
      return sum;
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-kahan"), 0);
  EXPECT_EQ(CountRule(findings, "probcon-nolint"), 0);
}

TEST(SuppressionsTest, NolintInsideStringLiteralIsInert) {
  const auto findings = LintSource("src/foo.cc", R"code(
    void f() {
      srand(42); const char* doc = "// NOLINT(probcon-determinism): not a real comment";
    }
  )code");
  EXPECT_EQ(CountRule(findings, "probcon-determinism"), 1);
}

}  // namespace
}  // namespace probcon::lint
