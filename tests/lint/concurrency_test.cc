// Units for the R6-R8 concurrency analysis: lock-order cycles (direct, interprocedural,
// declared, re-entrant), blocking-under-lock (seeds, cv waits, transitive call chains),
// guarded-field enforcement, and the --dump-lock-graph renderings.

#include "tools/lint/concurrency.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/lint/finding.h"

namespace probcon::lint {
namespace {

std::vector<Finding> Analyze(const std::string& source) {
  return AnalyzeConcurrency(BuildModel({{"src/a.cc", source}}));
}

std::vector<Finding> OfRule(const std::vector<Finding>& findings, const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& finding : findings) {
    if (finding.rule == rule) out.push_back(finding);
  }
  return out;
}

// --- R6: probcon-lock-order -------------------------------------------------

TEST(LockOrderTest, DirectAbBaCycleIsOneErrorWithWitnesses) {
  const std::vector<Finding> findings = Analyze(R"cc(
    class Ledger {
     public:
      void Credit();
      void Debit();
     private:
      std::mutex a_;
      std::mutex b_;
    };
    void Ledger::Credit() {
      std::lock_guard<std::mutex> a(a_);
      std::lock_guard<std::mutex> b(b_);
    }
    void Ledger::Debit() {
      std::lock_guard<std::mutex> b(b_);
      std::lock_guard<std::mutex> a(a_);
    }
  )cc");
  const std::vector<Finding> cycles = OfRule(findings, "probcon-lock-order");
  ASSERT_EQ(cycles.size(), 1u) << "one finding per strongly connected component";
  EXPECT_EQ(cycles[0].severity, "error");
  EXPECT_EQ(cycles[0].token, "Ledger::a_|Ledger::b_");
  ASSERT_EQ(cycles[0].edges.size(), 2u);
  EXPECT_NE(cycles[0].message.find("Ledger::a_"), std::string::npos);
  EXPECT_NE(cycles[0].message.find("Ledger::b_"), std::string::npos);
}

TEST(LockOrderTest, InterproceduralCycleThroughCallChain) {
  const std::vector<Finding> findings = Analyze(R"cc(
    class Engine {
     public:
      void Front();
      void Back();
      void TakeB();
      void TakeA();
     private:
      std::mutex a_;
      std::mutex b_;
    };
    void Engine::TakeB() { std::lock_guard<std::mutex> b(b_); }
    void Engine::TakeA() { std::lock_guard<std::mutex> a(a_); }
    void Engine::Front() {
      std::lock_guard<std::mutex> a(a_);
      TakeB();
    }
    void Engine::Back() {
      std::lock_guard<std::mutex> b(b_);
      TakeA();
    }
  )cc");
  const std::vector<Finding> cycles = OfRule(findings, "probcon-lock-order");
  ASSERT_EQ(cycles.size(), 1u);
  bool saw_call_edge = false;
  for (const FindingEdge& edge : cycles[0].edges) {
    if (edge.from == "Engine::a_" && edge.to == "Engine::b_") saw_call_edge = true;
  }
  EXPECT_TRUE(saw_call_edge) << "caller-held x callee-acquires produces the edge";
}

TEST(LockOrderTest, DeclaredOrderConflictsWithCode) {
  // Annotation says a_ before b_; the code takes b_ then a_. The declared edge plus the
  // observed edge close the cycle even though no single function nests both orders.
  const std::vector<Finding> findings = Analyze(R"cc(
    class Store {
     public:
      void Swap();
     private:
      std::mutex a_;
      std::mutex b_ PROBCON_ACQUIRED_AFTER(a_);
    };
    void Store::Swap() {
      std::lock_guard<std::mutex> b(b_);
      std::lock_guard<std::mutex> a(a_);
    }
  )cc");
  const std::vector<Finding> cycles = OfRule(findings, "probcon-lock-order");
  ASSERT_EQ(cycles.size(), 1u);
  bool saw_declared = false;
  for (const FindingEdge& edge : cycles[0].edges) {
    if (edge.from == "Store::a_" && edge.to == "Store::b_") saw_declared = true;
  }
  EXPECT_TRUE(saw_declared);
}

TEST(LockOrderTest, ReentrantAcquisitionIsFlagged) {
  const std::vector<Finding> findings = Analyze(R"cc(
    class Counter {
     public:
      void Outer();
      void Inner();
     private:
      std::mutex mutex_;
    };
    void Counter::Inner() { std::lock_guard<std::mutex> lock(mutex_); }
    void Counter::Outer() {
      std::lock_guard<std::mutex> lock(mutex_);
      Inner();
    }
  )cc");
  const std::vector<Finding> cycles = OfRule(findings, "probcon-lock-order");
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_NE(cycles[0].message.find("re-entrant"), std::string::npos);
}

TEST(LockOrderTest, ConsistentOrderIsClean) {
  const std::vector<Finding> findings = Analyze(R"cc(
    class Ledger {
     public:
      void Credit();
      void Debit();
     private:
      std::mutex a_;
      std::mutex b_;
    };
    void Ledger::Credit() {
      std::lock_guard<std::mutex> a(a_);
      std::lock_guard<std::mutex> b(b_);
    }
    void Ledger::Debit() {
      std::lock_guard<std::mutex> a(a_);
      std::lock_guard<std::mutex> b(b_);
    }
  )cc");
  EXPECT_TRUE(OfRule(findings, "probcon-lock-order").empty());
}

// --- R7: probcon-blocking-under-lock ----------------------------------------

TEST(BlockingTest, SeedCallUnderHeldLockFires) {
  const std::vector<Finding> findings = Analyze(R"cc(
    class Pool {
     public:
      void Stop();
     private:
      std::mutex mutex_;
      std::thread worker_;
    };
    void Pool::Stop() {
      std::lock_guard<std::mutex> lock(mutex_);
      worker_.join();
    }
  )cc");
  const std::vector<Finding> blocking = OfRule(findings, "probcon-blocking-under-lock");
  ASSERT_EQ(blocking.size(), 1u);
  EXPECT_NE(blocking[0].message.find("join"), std::string::npos);
  EXPECT_NE(blocking[0].message.find("Pool::mutex_"), std::string::npos);
}

TEST(BlockingTest, CvWaitOnItsOwnMutexIsExempt) {
  const std::vector<Finding> findings = Analyze(R"cc(
    class Gate {
     public:
      void Await();
     private:
      std::mutex mutex_;
      std::condition_variable cv_;
    };
    void Gate::Await() {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock);
    }
  )cc");
  EXPECT_TRUE(OfRule(findings, "probcon-blocking-under-lock").empty());
}

TEST(BlockingTest, CvWaitWhileHoldingAnotherMutexFires) {
  const std::vector<Finding> findings = Analyze(R"cc(
    class Bridge {
     public:
      void Cross();
     private:
      std::mutex outer_;
      std::mutex inner_;
      std::condition_variable cv_;
    };
    void Bridge::Cross() {
      std::lock_guard<std::mutex> outer(outer_);
      std::unique_lock<std::mutex> inner(inner_);
      cv_.wait(inner);
    }
  )cc");
  const std::vector<Finding> blocking = OfRule(findings, "probcon-blocking-under-lock");
  ASSERT_EQ(blocking.size(), 1u);
  EXPECT_NE(blocking[0].message.find("Bridge::outer_"), std::string::npos);
}

TEST(BlockingTest, BlockingPropagatesThroughCallChains) {
  const std::vector<Finding> findings = Analyze(R"cc(
    class Relay {
     public:
      void Outer();
      void Middle();
      void Leaf();
     private:
      std::mutex mutex_;
      std::thread worker_;
    };
    void Relay::Leaf() { worker_.join(); }
    void Relay::Middle() { Leaf(); }
    void Relay::Outer() {
      std::lock_guard<std::mutex> lock(mutex_);
      Middle();
    }
  )cc");
  const std::vector<Finding> blocking = OfRule(findings, "probcon-blocking-under-lock");
  ASSERT_EQ(blocking.size(), 1u);
  // The finding anchors at the held call site and names the chain to the seed.
  EXPECT_NE(blocking[0].message.find("Middle"), std::string::npos);
  EXPECT_NE(blocking[0].message.find("join"), std::string::npos);
}

TEST(BlockingTest, HelperThatWaitsOnTheCallersMutexIsNotTransitivelyBlocking) {
  // WaitLocked-style helper: the caller holds mutex_ and calls a helper whose cv wait
  // releases that same mutex. The wait is the cooperative-wait idiom, not a deadlock.
  const std::vector<Finding> findings = Analyze(R"cc(
    class Mailbox {
     public:
      void Deliver();
      void WaitLocked(std::unique_lock<std::mutex>& lock);
     private:
      std::mutex mutex_;
      std::condition_variable cv_;
    };
    void Mailbox::WaitLocked(std::unique_lock<std::mutex>& lock) {
      cv_.wait(lock);
    }
    void Mailbox::Deliver() {
      std::unique_lock<std::mutex> lock(mutex_);
      WaitLocked(lock);
    }
  )cc");
  EXPECT_TRUE(OfRule(findings, "probcon-blocking-under-lock").empty());
}

TEST(BlockingTest, DroppingTheLockAroundTheBlockingCallIsClean) {
  const std::vector<Finding> findings = Analyze(R"cc(
    class Pool {
     public:
      void Stop();
     private:
      std::mutex mutex_;
      std::thread worker_;
    };
    void Pool::Stop() {
      {
        std::lock_guard<std::mutex> lock(mutex_);
      }
      worker_.join();
    }
  )cc");
  EXPECT_TRUE(OfRule(findings, "probcon-blocking-under-lock").empty());
}

// --- R8: probcon-guarded-field ----------------------------------------------

TEST(GuardedFieldTest, UnlockedAccessFiresLockedAccessDoesNot) {
  const std::vector<Finding> findings = Analyze(R"cc(
    class Tally {
     public:
      void Bump() {
        std::lock_guard<std::mutex> lock(mutex_);
        ++count_;
      }
      int Peek() const { return count_; }
     private:
      mutable std::mutex mutex_;
      int count_ PROBCON_GUARDED_BY(mutex_) = 0;
    };
  )cc");
  const std::vector<Finding> guarded = OfRule(findings, "probcon-guarded-field");
  ASSERT_EQ(guarded.size(), 1u);
  EXPECT_NE(guarded[0].message.find("Tally::count_"), std::string::npos);
}

TEST(GuardedFieldTest, RequiresAnnotationSatisfiesTheGuard) {
  const std::vector<Finding> findings = Analyze(R"cc(
    class Tally {
     public:
      void Bump() {
        std::lock_guard<std::mutex> lock(mutex_);
        BumpLocked();
      }
     private:
      void BumpLocked() PROBCON_REQUIRES(mutex_) { ++count_; }
      mutable std::mutex mutex_;
      int count_ PROBCON_GUARDED_BY(mutex_) = 0;
    };
  )cc");
  EXPECT_TRUE(OfRule(findings, "probcon-guarded-field").empty());
}

TEST(GuardedFieldTest, RequiresOnHeaderDeclarationCoversOutOfLineDefinition) {
  // The annotation lives on the declaration (header style); the definition in another
  // file must inherit it.
  const ConcurrencyModel model = BuildModel({
      {"src/shard.h", R"cc(
        class Shard {
         public:
          void Insert();
         private:
          void InsertLocked() PROBCON_REQUIRES(mutex_);
          std::mutex mutex_;
          int size_ PROBCON_GUARDED_BY(mutex_) = 0;
        };
      )cc"},
      {"src/shard.cc", R"cc(
        void Shard::InsertLocked() { ++size_; }
        void Shard::Insert() {
          std::lock_guard<std::mutex> lock(mutex_);
          InsertLocked();
        }
      )cc"},
  });
  const std::vector<Finding> findings = AnalyzeConcurrency(model);
  EXPECT_TRUE(OfRule(findings, "probcon-guarded-field").empty());
}

TEST(GuardedFieldTest, ConstructorsAndDestructorsAreExempt) {
  const std::vector<Finding> findings = Analyze(R"cc(
    class Tally {
     public:
      Tally() { count_ = 0; }
      ~Tally() { count_ = -1; }
     private:
      mutable std::mutex mutex_;
      int count_ PROBCON_GUARDED_BY(mutex_) = 0;
    };
  )cc");
  EXPECT_TRUE(OfRule(findings, "probcon-guarded-field").empty());
}

// --- Lock graph -------------------------------------------------------------

TEST(LockGraphTest, EdgesAreDeduplicatedSortedAndKinded) {
  const ConcurrencyModel model = BuildModel({{"src/a.cc", R"cc(
    class Ledger {
     public:
      void Credit();
      void Audit();
      void TakeB();
     private:
      std::mutex a_;
      std::mutex b_;
      std::mutex c_ PROBCON_ACQUIRED_AFTER(b_);
    };
    void Ledger::TakeB() { std::lock_guard<std::mutex> b(b_); }
    void Ledger::Credit() {
      std::lock_guard<std::mutex> a(a_);
      std::lock_guard<std::mutex> b(b_);
    }
    void Ledger::Audit() {
      std::lock_guard<std::mutex> a(a_);
      TakeB();
    }
  )cc"}});
  const std::vector<LockGraphEdge> edges = BuildLockGraph(model);
  ASSERT_EQ(edges.size(), 3u);
  // Sorted by endpoints first: both a_->b_ witnesses (one local, one call) precede the
  // declared b_->c_ edge.
  EXPECT_EQ(edges[0].from, "Ledger::a_");
  EXPECT_EQ(edges[0].to, "Ledger::b_");
  EXPECT_EQ(edges[1].from, "Ledger::a_");
  EXPECT_EQ(edges[1].to, "Ledger::b_");
  const std::vector<std::string> kinds = {edges[0].kind, edges[1].kind};
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), "local"), kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), "call"), kinds.end());
  EXPECT_EQ(edges[2].from, "Ledger::b_");
  EXPECT_EQ(edges[2].to, "Ledger::c_");
  EXPECT_EQ(edges[2].kind, "declared");
}

TEST(LockGraphTest, JsonDumpIsWellFormedAndDeterministic) {
  const ConcurrencyModel model = BuildModel({{"src/a.cc", R"cc(
    class Pair {
     public:
      void Both();
     private:
      std::mutex first_;
      std::mutex second_;
    };
    void Pair::Both() {
      std::lock_guard<std::mutex> f(first_);
      std::lock_guard<std::mutex> s(second_);
    }
  )cc"}});
  const std::string json = DumpLockGraph(model, /*json=*/true);
  EXPECT_EQ(json, DumpLockGraph(model, /*json=*/true));
  EXPECT_NE(json.find("\"nodes\": ["), std::string::npos);
  EXPECT_NE(json.find("\"Pair::first_\""), std::string::npos);
  EXPECT_NE(json.find("\"Pair::second_\""), std::string::npos);
  EXPECT_NE(json.find("\"edges\": ["), std::string::npos);
  EXPECT_NE(json.find("\"from\": \"Pair::first_\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"local\""), std::string::npos);
  EXPECT_NE(json.find("\"node_count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"edge_count\": 1"), std::string::npos);

  const std::string human = DumpLockGraph(model, /*json=*/false);
  EXPECT_NE(human.find("Pair::first_ -> Pair::second_"), std::string::npos);
}

}  // namespace
}  // namespace probcon::lint
