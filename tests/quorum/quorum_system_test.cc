#include "src/quorum/quorum_system.h"

#include <gtest/gtest.h>

namespace probcon {
namespace {

TEST(ThresholdQuorumTest, CountsBits) {
  const ThresholdQuorumSystem qs(5, 3);
  EXPECT_FALSE(qs.IsQuorum(0b00011));
  EXPECT_TRUE(qs.IsQuorum(0b00111));
  EXPECT_TRUE(qs.IsQuorum(0b11111));
  EXPECT_EQ(qs.MinQuorumCardinality(), 3);
}

TEST(ThresholdQuorumTest, MajorityFactory) {
  EXPECT_EQ(ThresholdQuorumSystem::Majority(3).k(), 2);
  EXPECT_EQ(ThresholdQuorumSystem::Majority(4).k(), 3);
  EXPECT_EQ(ThresholdQuorumSystem::Majority(5).k(), 3);
  EXPECT_EQ(ThresholdQuorumSystem::Majority(9).k(), 5);
}

TEST(WeightedQuorumTest, StakeBasedQuorums) {
  // Node 0 holds 60% of stake; alone it is a quorum at threshold 0.5 * total.
  const WeightedQuorumSystem qs({6.0, 2.0, 2.0}, 5.1);
  EXPECT_TRUE(qs.IsQuorum(0b001));
  EXPECT_FALSE(qs.IsQuorum(0b110));  // 4.0 < 5.1.
  EXPECT_TRUE(qs.IsQuorum(0b111));
  EXPECT_DOUBLE_EQ(qs.TotalWeight(), 10.0);
}

TEST(WeightedQuorumTest, EqualWeightsReduceToThreshold) {
  const WeightedQuorumSystem weighted({1, 1, 1, 1, 1}, 3.0);
  const ThresholdQuorumSystem threshold(5, 3);
  for (NodeSet s = 0; s < 32; ++s) {
    EXPECT_EQ(weighted.IsQuorum(s), threshold.IsQuorum(s)) << s;
  }
}

TEST(GridQuorumTest, RowPlusColumn) {
  // 2x2 grid: nodes (r,c) -> bit r*2+c.
  const GridQuorumSystem qs(2, 2);
  // Full row 0 {0,1} + full column 0 {0,2} = {0,1,2}.
  EXPECT_TRUE(qs.IsQuorum(0b0111));
  // A row alone is not a quorum.
  EXPECT_FALSE(qs.IsQuorum(0b0011));
  // A column alone is not a quorum.
  EXPECT_FALSE(qs.IsQuorum(0b0101));
  EXPECT_TRUE(qs.IsQuorum(0b1111));
  EXPECT_EQ(qs.MinQuorumCardinality(), 3);
}

TEST(GridQuorumTest, AnyTwoQuorumsIntersect) {
  const GridQuorumSystem qs(3, 3);
  EXPECT_TRUE(QuorumSystemsIntersect(qs, qs));
}

TEST(ExplicitQuorumTest, MinimalQuorumClosure) {
  const ExplicitQuorumSystem qs(4, {0b0011, 0b1100});
  EXPECT_TRUE(qs.IsQuorum(0b0011));
  EXPECT_TRUE(qs.IsQuorum(0b0111));  // Superset.
  EXPECT_FALSE(qs.IsQuorum(0b0101));
  EXPECT_EQ(qs.MinQuorumCardinality(), 2);
}

TEST(ExplicitQuorumTest, DisjointQuorumsDoNotIntersect) {
  const ExplicitQuorumSystem qs(4, {0b0011, 0b1100});
  EXPECT_FALSE(QuorumSystemsIntersect(qs, qs));
}

class MonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(MonotonicityTest, SupersetOfQuorumIsQuorum) {
  const int n = 6;
  const int k = GetParam();
  const ThresholdQuorumSystem threshold(n, k);
  const GridQuorumSystem grid(2, 3);
  const ExplicitQuorumSystem explicit_qs(n, {0b000111, 0b111000, 0b010101});
  const QuorumSystem* systems[] = {&threshold, &grid, &explicit_qs};
  for (const QuorumSystem* qs : systems) {
    for (NodeSet s = 0; s < (NodeSet{1} << n); ++s) {
      if (!qs->IsQuorum(s)) {
        continue;
      }
      for (int add = 0; add < n; ++add) {
        EXPECT_TRUE(qs->IsQuorum(s | (NodeSet{1} << add)))
            << qs->Describe() << " s=" << s << " add=" << add;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, MonotonicityTest, ::testing::Values(1, 3, 6));

// --- Intersection predicates --------------------------------------------------

TEST(IntersectionTest, ThresholdClosedForm) {
  // k_a + k_b > n <=> intersect.
  EXPECT_TRUE(QuorumSystemsIntersect(ThresholdQuorumSystem(5, 3), ThresholdQuorumSystem(5, 3)));
  EXPECT_FALSE(
      QuorumSystemsIntersect(ThresholdQuorumSystem(5, 2), ThresholdQuorumSystem(5, 3)));
  EXPECT_TRUE(QuorumSystemsIntersect(ThresholdQuorumSystem(4, 3), ThresholdQuorumSystem(4, 2)));
}

TEST(IntersectionTest, ThresholdMOverlap) {
  // Two 3-of-4 quorums intersect in >= 2 nodes.
  EXPECT_TRUE(QuorumSystemsIntersectInAtLeast(ThresholdQuorumSystem(4, 3),
                                              ThresholdQuorumSystem(4, 3), 2));
  EXPECT_FALSE(QuorumSystemsIntersectInAtLeast(ThresholdQuorumSystem(4, 3),
                                               ThresholdQuorumSystem(4, 3), 3));
  // PBFT n=4: Q_eq=3 pairs intersect in >= 2 (one of which is correct if Byz < 2*3-4).
  EXPECT_TRUE(QuorumSystemsIntersectInAtLeast(ThresholdQuorumSystem(7, 5),
                                              ThresholdQuorumSystem(7, 5), 3));
}

TEST(IntersectionTest, GenericMatchesThresholdClosedForm) {
  // Wrap thresholds as explicit systems to force the generic path; compare results.
  for (int n = 3; n <= 6; ++n) {
    for (int ka = 1; ka <= n; ++ka) {
      for (int kb = 1; kb <= n; ++kb) {
        const ThresholdQuorumSystem ta(n, ka);
        const ThresholdQuorumSystem tb(n, kb);
        // Build explicit minimal quorum lists (all k-subsets).
        std::vector<NodeSet> qa;
        std::vector<NodeSet> qb;
        for (NodeSet s = 0; s < (NodeSet{1} << n); ++s) {
          if (NodeSetSize(s) == ka) {
            qa.push_back(s);
          }
          if (NodeSetSize(s) == kb) {
            qb.push_back(s);
          }
        }
        const ExplicitQuorumSystem ea(n, qa);
        const ExplicitQuorumSystem eb(n, qb);
        EXPECT_EQ(QuorumSystemsIntersect(ea, eb), QuorumSystemsIntersect(ta, tb))
            << "n=" << n << " ka=" << ka << " kb=" << kb;
      }
    }
  }
}

TEST(IntersectionTest, GridIntersectsThresholdMajority) {
  const GridQuorumSystem grid(2, 2);
  const ThresholdQuorumSystem majority(4, 3);
  EXPECT_TRUE(QuorumSystemsIntersect(grid, majority));
}

TEST(CloneTest, ClonesPreserveBehaviour) {
  const ThresholdQuorumSystem threshold(6, 4);
  const GridQuorumSystem grid(2, 3);
  const WeightedQuorumSystem weighted({3, 1, 1, 1}, 3.5);
  const ExplicitQuorumSystem explicit_qs(4, {0b0111});
  const QuorumSystem* systems[] = {&threshold, &grid, &weighted, &explicit_qs};
  for (const QuorumSystem* qs : systems) {
    const auto clone = qs->Clone();
    for (NodeSet s = 0; s < (NodeSet{1} << qs->n()); ++s) {
      ASSERT_EQ(clone->IsQuorum(s), qs->IsQuorum(s)) << qs->Describe() << " s=" << s;
    }
    EXPECT_EQ(clone->Describe(), qs->Describe());
  }
}

TEST(MinCardinalityTest, GenericSearchMatchesKnownAnswers) {
  // Exercise the base-class exponential search against systems with known minima.
  EXPECT_EQ(GridQuorumSystem(3, 3).MinQuorumCardinality(), 5);   // Row(3) + col(3) - overlap.
  EXPECT_EQ(GridQuorumSystem(2, 4).MinQuorumCardinality(), 5);
  const WeightedQuorumSystem whale({10, 1, 1, 1, 1}, 10.0);
  EXPECT_EQ(whale.MinQuorumCardinality(), 1);  // The whale alone.
  const WeightedQuorumSystem spread({1, 1, 1, 1, 1}, 4.0);
  EXPECT_EQ(spread.MinQuorumCardinality(), 4);
}

TEST(NodeSetHelpersTest, Basics) {
  EXPECT_EQ(NodeSetSize(0b1011), 3);
  EXPECT_EQ(FullNodeSet(4), 0b1111u);
  EXPECT_EQ(ComplementNodeSet(0b0011, 4), 0b1100u);
}

}  // namespace
}  // namespace probcon
