#include "src/quorum/probabilistic_quorum.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/prob/combinatorics.h"

namespace probcon {
namespace {

TEST(RandomQuorumsDisjointTest, PigeonholeForcesIntersection) {
  EXPECT_DOUBLE_EQ(RandomQuorumsDisjoint(10, 6, 6).value(), 0.0);
  EXPECT_DOUBLE_EQ(RandomQuorumsDisjoint(10, 5, 6).value(), 0.0);
}

TEST(RandomQuorumsDisjointTest, HandComputedSmallCase) {
  // n=4, q1=q2=2: P(disjoint) = C(2,2)/C(4,2) = 1/6.
  EXPECT_NEAR(RandomQuorumsDisjoint(4, 2, 2).value(), 1.0 / 6.0, 1e-12);
}

TEST(RandomQuorumsDisjointTest, MonteCarloAgreement) {
  Rng rng(5);
  constexpr int kTrials = 200000;
  int disjoint = 0;
  for (int t = 0; t < kTrials; ++t) {
    const auto a = SampleRandomQuorum(rng, 20, 4);
    const auto b = SampleRandomQuorum(rng, 20, 4);
    std::set<int> sa(a.begin(), a.end());
    bool hit = false;
    for (const int x : b) {
      if (sa.count(x) > 0) {
        hit = true;
        break;
      }
    }
    disjoint += hit ? 0 : 1;
  }
  EXPECT_NEAR(static_cast<double>(disjoint) / kTrials,
              RandomQuorumsDisjoint(20, 4, 4).value(), 0.005);
}

TEST(RandomQuorumsDisjointTest, SqrtNScaling) {
  // MRW: with q = l*sqrt(n), P(disjoint) ~ exp(-l^2); check the trend for l=2.
  for (const int n : {100, 400, 900}) {
    const int q = static_cast<int>(2.0 * std::sqrt(static_cast<double>(n)));
    const double disjoint = RandomQuorumsDisjoint(n, q, q).value();
    EXPECT_LT(disjoint, std::exp(-3.0)) << n;  // Comfortably below e^-3.
    EXPECT_GT(disjoint, std::exp(-6.0)) << n;  // But not vanishing: ~e^-4.
  }
}

TEST(RandomQuorumAllFromSetTest, Hypergeometric) {
  // n=10, q=3, f=4: C(4,3)/C(10,3) = 4/120.
  EXPECT_NEAR(RandomQuorumAllFromSet(10, 3, 4).value(), 4.0 / 120.0, 1e-12);
  EXPECT_DOUBLE_EQ(RandomQuorumAllFromSet(10, 5, 4).value(), 0.0);  // q > f.
}

TEST(IidQuorumAllFaultyTest, PaperTenNinesClaim) {
  // §3: at p_u = 1% "there are already ten nines of probability that a random quorum of five
  // nodes includes at least one correct node".
  const auto all_faulty = IidQuorumAllFaulty(5, 0.01);
  EXPECT_NEAR(all_faulty.value(), 1e-10, 1e-20);
  EXPECT_NEAR(all_faulty.Not().nines(), 10.0, 1e-6);
}

TEST(MinQuorumSizeTest, IntersectionTargetMonotone) {
  const auto target_low = Probability::FromProbability(0.9);
  const auto target_high = Probability::FromProbability(0.9999);
  const int q_low = MinQuorumSizeForIntersection(100, target_low);
  const int q_high = MinQuorumSizeForIntersection(100, target_high);
  EXPECT_LE(q_low, q_high);
  EXPECT_LT(q_high, 51);  // Far below majority.
}

TEST(MinQuorumSizeTest, CorrectMemberBeatsFThreshold) {
  // The paper's overkill example: N=100, f=33. f-threshold needs |Q_vc_t| = 34; nine nines
  // of hitting a correct node needs far fewer.
  const int probabilistic =
      MinQuorumSizeForCorrectMember(100, 33, Probability::FromComplement(1e-9));
  EXPECT_LT(probabilistic, 34);
  EXPECT_GT(probabilistic, 5);
}

TEST(MinQuorumSizeTest, DegenerateTargets) {
  // Trivial target: one node suffices.
  EXPECT_EQ(MinQuorumSizeForCorrectMember(10, 0, Probability::FromProbability(0.5)), 1);
}

TEST(SampleRandomQuorumTest, SizesAndSortedDistinct) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const auto quorum = SampleRandomQuorum(rng, 30, 7);
    ASSERT_EQ(quorum.size(), 7u);
    for (size_t i = 1; i < quorum.size(); ++i) {
      EXPECT_LT(quorum[i - 1], quorum[i]);
    }
    EXPECT_GE(quorum.front(), 0);
    EXPECT_LT(quorum.back(), 30);
  }
}

}  // namespace
}  // namespace probcon
