#include "src/quorum/availability.h"

#include <gtest/gtest.h>

#include "src/prob/binomial.h"

namespace probcon {
namespace {

TEST(AvailabilityTest, ThresholdIndependentMatchesBinomial) {
  const ThresholdQuorumSystem qs(5, 3);
  const auto model = IndependentFailureModel::Uniform(5, 0.1);
  const auto availability = QuorumAvailability(qs, model);
  // Available iff <= 2 failures.
  EXPECT_NEAR(availability.value(), BinomialCdf(5, 2, 0.1).value(), 1e-12);
}

TEST(AvailabilityTest, FastPathMatchesEnumeration) {
  // Heterogeneous threshold: compare the Poisson-binomial fast path against exact
  // enumeration via an equivalent explicit system.
  const std::vector<double> probs = {0.01, 0.05, 0.2, 0.4, 0.07};
  const ThresholdQuorumSystem threshold(5, 3);
  std::vector<NodeSet> quorums;
  for (NodeSet s = 0; s < 32; ++s) {
    if (NodeSetSize(s) == 3) {
      quorums.push_back(s);
    }
  }
  const ExplicitQuorumSystem explicit_qs(5, quorums);
  const IndependentFailureModel model(probs);
  const double fast = QuorumAvailability(threshold, model).value();
  const double slow = QuorumAvailability(explicit_qs, model).value();
  EXPECT_NEAR(fast, slow, 1e-12);
}

TEST(AvailabilityTest, GridAvailability) {
  // 2x2 grid, p=0.1 each: quorum needs a full row AND a full column = at least 3 specific
  // nodes. Enumerate by hand: quorum sets are {0,1,2},{0,1,3},{0,2,3},{1,2,3},{all}.
  const GridQuorumSystem grid(2, 2);
  const auto model = IndependentFailureModel::Uniform(4, 0.1);
  const double p_all_alive = 0.9 * 0.9 * 0.9 * 0.9;
  const double p_three_alive = 4 * 0.9 * 0.9 * 0.9 * 0.1;
  EXPECT_NEAR(QuorumAvailability(grid, model).value(), p_all_alive + p_three_alive, 1e-12);
}

TEST(AvailabilityTest, CorrelatedShockLowersAvailability) {
  const ThresholdQuorumSystem qs(5, 3);
  const auto independent = IndependentFailureModel::Uniform(5, 0.05);
  const CommonCauseFailureModel correlated(std::vector<double>(5, 0.05), 0.02,
                                           std::vector<double>(5, 0.95));
  EXPECT_GT(QuorumAvailability(qs, independent).value(),
            QuorumAvailability(qs, correlated).value());
}

TEST(AvailabilityTest, MoreReliableNodesRaiseAvailability) {
  const ThresholdQuorumSystem qs(5, 3);
  const IndependentFailureModel worse({0.1, 0.1, 0.1, 0.1, 0.1});
  const IndependentFailureModel better({0.01, 0.1, 0.1, 0.1, 0.1});
  EXPECT_GT(QuorumAvailability(qs, better).value(), QuorumAvailability(qs, worse).value());
}

TEST(LoadTest, ThresholdUniformLoad) {
  EXPECT_DOUBLE_EQ(UniformStrategyMaxLoad(ThresholdQuorumSystem(10, 6)), 0.6);
  EXPECT_DOUBLE_EQ(UniformStrategyMaxLoad(ThresholdQuorumSystem(3, 2)), 2.0 / 3.0);
}

TEST(LoadTest, GridLoadIsLowerThanMajorityForLargeN) {
  // 6x6 grid over 36 nodes: load ~ 1/6 + 1/6 - 1/36 < majority's ~0.53.
  const double grid_load = UniformStrategyMaxLoad(GridQuorumSystem(6, 6));
  const double majority_load = UniformStrategyMaxLoad(ThresholdQuorumSystem(36, 19));
  EXPECT_LT(grid_load, majority_load);
  EXPECT_NEAR(grid_load, 1.0 / 6 + 1.0 / 6 - 1.0 / 36, 1e-12);
}

TEST(LoadTest, ExplicitSystemLoad) {
  // Two disjoint quorums, uniform pick: each node carries load 0.5... only members.
  const ExplicitQuorumSystem qs(4, {0b0011, 0b1100});
  EXPECT_DOUBLE_EQ(UniformStrategyMaxLoad(qs), 0.5);
}

}  // namespace
}  // namespace probcon
