#include "src/chaos/nemesis.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/trace.h"

namespace probcon {
namespace {

struct Probe final : public SimMessage {
  explicit Probe(int v) : value(v) {}
  int value;
  std::string Describe() const override { return "probe"; }
};

class ProbeProcess final : public Process {
 public:
  using Process::Process;
  int received = 0;

  void Send(int to, int value) { SendTo(to, std::make_shared<Probe>(value)); }

 protected:
  void OnStart() override {}
  void OnMessage(int, const std::shared_ptr<const SimMessage>&) override { ++received; }
};

class NemesisTest : public ::testing::Test {
 protected:
  void Build(int n, uint64_t seed = 5) {
    sim_ = std::make_unique<Simulator>(seed);
    network_ = std::make_unique<Network>(sim_.get(), n,
                                         std::make_unique<UniformLatencyModel>(1.0, 1.0));
    processes_.clear();
    for (int i = 0; i < n; ++i) {
      processes_.push_back(std::make_unique<ProbeProcess>(sim_.get(), network_.get(), i));
      processes_.back()->Start();
    }
  }

  std::vector<Process*> Borrowed() {
    std::vector<Process*> out;
    for (auto& p : processes_) out.push_back(p.get());
    return out;
  }

  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Network> network_;
  std::vector<std::unique_ptr<ProbeProcess>> processes_;
};

ChaosRegime MakeRegime(RegimeKind kind, SimTime start, SimTime end) {
  ChaosRegime regime;
  regime.kind = kind;
  regime.start = start;
  regime.end = end;
  return regime;
}

TEST_F(NemesisTest, PartitionFormsAndHeals) {
  Build(4);
  ChaosPlan plan;
  plan.horizon = 100.0;
  ChaosRegime partition = MakeRegime(RegimeKind::kPartition, 10.0, 50.0);
  partition.groups = {0, 0, 1, 1};
  plan.regimes.push_back(partition);

  Nemesis nemesis(sim_.get(), network_.get(), Borrowed());
  ASSERT_TRUE(nemesis.Arm(plan).ok());

  // Inside the window: cross-group traffic dies, intra-group survives.
  sim_->Schedule(20.0, [this]() {
    processes_[0]->Send(2, 1);  // Cross: dropped.
    processes_[0]->Send(1, 2);  // Intra: delivered.
  });
  // After the heal: everything flows again.
  sim_->Schedule(60.0, [this]() { processes_[0]->Send(2, 3); });
  sim_->Run(200.0);

  EXPECT_EQ(processes_[1]->received, 1);
  EXPECT_EQ(processes_[2]->received, 1);  // Only the post-heal probe.
  EXPECT_EQ(nemesis.regimes_started(), 1u);
  EXPECT_EQ(nemesis.regimes_ended(), 1u);
}

TEST_F(NemesisTest, OverlappingPartitionsIntersect) {
  Build(4);
  ChaosPlan plan;
  plan.horizon = 100.0;
  ChaosRegime first = MakeRegime(RegimeKind::kPartition, 0.0, 100.0);
  first.groups = {0, 0, 1, 1};  // {0,1} | {2,3}
  ChaosRegime second = MakeRegime(RegimeKind::kPartition, 10.0, 60.0);
  second.groups = {0, 1, 0, 1};  // {0,2} | {1,3}
  plan.regimes.push_back(first);
  plan.regimes.push_back(second);

  Nemesis nemesis(sim_.get(), network_.get(), Borrowed());
  ASSERT_TRUE(nemesis.Arm(plan).ok());

  // While both hold, every pair is split (the intersection isolates all four nodes).
  sim_->Schedule(30.0, [this]() {
    processes_[0]->Send(1, 0);
    processes_[0]->Send(2, 0);
    processes_[2]->Send(3, 0);
  });
  // After the second heals, the first partition's groups still apply.
  sim_->Schedule(80.0, [this]() {
    processes_[0]->Send(1, 0);  // Intra-group again: delivered.
    processes_[0]->Send(2, 0);  // Still cross-group: dropped.
  });
  sim_->Run(200.0);

  EXPECT_EQ(processes_[1]->received, 1);
  EXPECT_EQ(processes_[2]->received, 0);
  EXPECT_EQ(processes_[3]->received, 0);
}

TEST_F(NemesisTest, GraySlowDegradesAndRestoresVictims) {
  Build(3);
  ChaosPlan plan;
  plan.horizon = 100.0;
  ChaosRegime gray = MakeRegime(RegimeKind::kGraySlow, 10.0, 50.0);
  gray.nodes = {1};
  gray.handler_delay = 30.0;
  gray.timer_scale = 2.0;
  plan.regimes.push_back(gray);

  Nemesis nemesis(sim_.get(), network_.get(), Borrowed());
  ASSERT_TRUE(nemesis.Arm(plan).ok());

  sim_->Schedule(20.0, [this]() {
    EXPECT_DOUBLE_EQ(processes_[1]->handler_delay(), 30.0);
    EXPECT_DOUBLE_EQ(processes_[0]->handler_delay(), 0.0);  // Non-victims untouched.
  });
  sim_->Schedule(60.0, [this]() {
    EXPECT_DOUBLE_EQ(processes_[1]->handler_delay(), 0.0);  // Healthy again.
  });

  // A probe sent mid-window is delivered at ~21ms but processed only after the gray delay.
  sim_->Schedule(20.0, [this]() { processes_[0]->Send(1, 1); });
  sim_->Run(45.0);
  EXPECT_EQ(processes_[1]->received, 0);
  sim_->Run(60.0);
  EXPECT_EQ(processes_[1]->received, 1);
}

TEST_F(NemesisTest, CrashRestartWindowCrashesThenRestarts) {
  Build(3);
  ChaosPlan plan;
  plan.horizon = 100.0;
  ChaosRegime crash = MakeRegime(RegimeKind::kCrashRestart, 10.0, 40.0);
  crash.nodes = {2};
  plan.regimes.push_back(crash);

  Nemesis nemesis(sim_.get(), network_.get(), Borrowed());
  ASSERT_TRUE(nemesis.Arm(plan).ok());

  sim_->Run(20.0);
  EXPECT_TRUE(processes_[2]->crashed());
  sim_->Run(100.0);
  EXPECT_FALSE(processes_[2]->crashed());
}

TEST_F(NemesisTest, RestartYieldsToALaterClaimOnTheSameNode) {
  Build(2);
  ChaosPlan plan;
  plan.horizon = 100.0;
  ChaosRegime crash = MakeRegime(RegimeKind::kCrashRestart, 10.0, 40.0);
  crash.nodes = {0};
  plan.regimes.push_back(crash);

  Nemesis nemesis(sim_.get(), network_.get(), Borrowed());
  ASSERT_TRUE(nemesis.Arm(plan).ok());

  // Mid-window, an independent fault source (an injector shock, say) re-crashes the node,
  // claiming the outage. The nemesis restart at t=40 must now stand down.
  sim_->Schedule(25.0, [this]() { processes_[0]->Crash(); });
  sim_->Run(200.0);
  EXPECT_TRUE(processes_[0]->crashed());
}

TEST_F(NemesisTest, DuplicateRegimeDoublesTrafficOnlyInsideTheWindow) {
  Build(2);
  ChaosPlan plan;
  plan.horizon = 100.0;
  ChaosRegime duplicate = MakeRegime(RegimeKind::kDuplicate, 10.0, 50.0);
  duplicate.probability = 0.999;  // Effectively always (Network caps at <= 1).
  plan.regimes.push_back(duplicate);

  Nemesis nemesis(sim_.get(), network_.get(), Borrowed());
  ASSERT_TRUE(nemesis.Arm(plan).ok());

  sim_->Schedule(20.0, [this]() { processes_[0]->Send(1, 1); });
  sim_->Schedule(60.0, [this]() { processes_[0]->Send(1, 2); });
  sim_->Run(200.0);
  EXPECT_EQ(processes_[1]->received, 3);  // Windowed probe twice, post-window probe once.
  EXPECT_EQ(network_->messages_duplicated(), 1u);
}

TEST_F(NemesisTest, LinkDegradeAppliesAsymmetricallyAndReverts) {
  Build(2);
  ChaosPlan plan;
  plan.horizon = 100.0;
  ChaosRegime degrade = MakeRegime(RegimeKind::kLinkDegrade, 10.0, 50.0);
  degrade.from = 0;
  degrade.to = 1;
  degrade.extra_latency = 20.0;
  plan.regimes.push_back(degrade);

  Nemesis nemesis(sim_.get(), network_.get(), Borrowed());
  ASSERT_TRUE(nemesis.Arm(plan).ok());

  sim_->Schedule(20.0, [this]() {
    processes_[0]->Send(1, 1);  // Degraded direction: arrives at ~41ms.
    processes_[1]->Send(0, 2);  // Reverse direction: arrives at ~21ms.
  });
  sim_->Run(25.0);
  EXPECT_EQ(processes_[0]->received, 1);
  EXPECT_EQ(processes_[1]->received, 0);
  sim_->Run(45.0);
  EXPECT_EQ(processes_[1]->received, 1);

  sim_->ScheduleAt(60.0, [this]() { processes_[0]->Send(1, 3); });
  sim_->Run(65.0);  // Healed: back to the 1ms base latency.
  EXPECT_EQ(processes_[1]->received, 2);
}

TEST_F(NemesisTest, DurabilityLapseRequiresAControlHook) {
  Build(2);
  ChaosPlan plan;
  plan.horizon = 100.0;
  ChaosRegime lapse = MakeRegime(RegimeKind::kDurabilityLapse, 10.0, 50.0);
  lapse.nodes = {0};
  lapse.sync_every_n = 4;
  plan.regimes.push_back(lapse);

  Nemesis without(sim_.get(), network_.get(), Borrowed());
  EXPECT_FALSE(without.Arm(plan).ok());

  // With a hook: Batched policy during the window, then a power event + write-through.
  std::vector<std::pair<int, int>> policy_calls;  // (node, sync_every_n)
  Nemesis nemesis(sim_.get(), network_.get(), Borrowed());
  nemesis.SetDurabilityControl([&](int node, const DurabilityPolicy& policy) {
    policy_calls.emplace_back(node, policy.sync_every_n);
  });
  ASSERT_TRUE(nemesis.Arm(plan).ok());
  sim_->Run(200.0);

  ASSERT_EQ(policy_calls.size(), 2u);
  EXPECT_EQ(policy_calls[0], std::make_pair(0, 4));  // Lapse begins.
  EXPECT_EQ(policy_calls[1], std::make_pair(0, 1));  // Restored to write-through.
  EXPECT_FALSE(processes_[0]->crashed());  // The power event restarted it in-place.
}

TEST_F(NemesisTest, ArmRejectsPlansWiderThanTheCluster) {
  Build(2);
  ChaosPlan plan;
  plan.horizon = 100.0;
  ChaosRegime crash = MakeRegime(RegimeKind::kCrashRestart, 0.0, 10.0);
  crash.nodes = {5};
  plan.regimes.push_back(crash);
  Nemesis nemesis(sim_.get(), network_.get(), Borrowed());
  EXPECT_FALSE(nemesis.Arm(plan).ok());
}

TEST_F(NemesisTest, RegimeBoundariesAreTraced) {
  Build(2);
  TraceLog trace;
  MetricsRegistry metrics;
  sim_->AttachTracer(&trace, &metrics);
  ChaosPlan plan;
  plan.horizon = 100.0;
  ChaosRegime duplicate = MakeRegime(RegimeKind::kDuplicate, 10.0, 50.0);
  duplicate.probability = 0.5;
  plan.regimes.push_back(duplicate);

  Nemesis nemesis(sim_.get(), network_.get(), Borrowed());
  ASSERT_TRUE(nemesis.Arm(plan).ok());
  sim_->Run(200.0);

  ASSERT_EQ(trace.CountOf(TraceEventType::kRegimeStarted), 1u);
  ASSERT_EQ(trace.CountOf(TraceEventType::kRegimeEnded), 1u);
  const auto started = trace.EventsOfType(TraceEventType::kRegimeStarted);
  EXPECT_DOUBLE_EQ(started[0].time, 10.0);
  EXPECT_EQ(started[0].detail, "duplicate");
}

}  // namespace
}  // namespace probcon
