// The chaos acceptance bar for reproducibility: a (ChaosPlan, seed) pair is a complete
// description of a run. Same plan -> bit-identical obs trace, across repeated runs and across
// thread-pool widths (fuzz campaigns farm plans out to workers; worker count must never leak
// into results).

#include <string>

#include <gtest/gtest.h>

#include "src/chaos/fuzz.h"
#include "src/chaos/plan_generator.h"
#include "src/exec/thread_pool.h"

namespace probcon {
namespace {

ChaosRunOptions TraceOptions(FuzzProtocol protocol) {
  ChaosRunOptions options;
  options.protocol = protocol;
  options.node_count = 5;
  options.settle_time = 5'000.0;
  options.capture_trace = true;
  return options;
}

TEST(ChaosDeterminismTest, SamePlanProducesBitIdenticalTraces) {
  ChaosPlanGeneratorOptions generator_options;
  generator_options.node_count = 5;
  generator_options.horizon = 8'000.0;
  const ChaosPlanGenerator generator(generator_options);

  for (FuzzProtocol protocol : {FuzzProtocol::kRaft, FuzzProtocol::kPaxos, FuzzProtocol::kPbft,
                                FuzzProtocol::kBenOr}) {
    const ChaosPlan plan = generator.Generate(/*seed=*/2026, /*plan_index=*/3);
    const ChaosRunOptions options = TraceOptions(protocol);
    const Result<ChaosRunResult> first = ExecuteChaosPlan(plan, options);
    const Result<ChaosRunResult> second = ExecuteChaosPlan(plan, options);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    ASSERT_FALSE(first->trace_json.empty());
    EXPECT_EQ(first->trace_json, second->trace_json)
        << "non-deterministic trace for " << FuzzProtocolName(protocol);
    EXPECT_EQ(first->committed_slots, second->committed_slots);
    EXPECT_EQ(first->safety_ok, second->safety_ok);
  }
}

TEST(ChaosDeterminismTest, TraceSurvivesAPlanJsonRoundTrip) {
  ChaosPlanGeneratorOptions generator_options;
  generator_options.node_count = 5;
  generator_options.horizon = 8'000.0;
  const ChaosPlanGenerator generator(generator_options);
  const ChaosPlan plan = generator.Generate(99, 7);

  const Result<ChaosPlan> reparsed = ChaosPlan::FromJson(plan.ToJson());
  ASSERT_TRUE(reparsed.ok());

  const ChaosRunOptions options = TraceOptions(FuzzProtocol::kRaft);
  const Result<ChaosRunResult> original = ExecuteChaosPlan(plan, options);
  const Result<ChaosRunResult> replayed = ExecuteChaosPlan(*reparsed, options);
  ASSERT_TRUE(original.ok() && replayed.ok());
  EXPECT_EQ(original->trace_json, replayed->trace_json);
}

TEST(ChaosDeterminismTest, FuzzCampaignIsIndependentOfWorkerCount) {
  FuzzCampaignOptions options;
  options.generator.node_count = 5;
  options.generator.horizon = 6'000.0;
  options.run.node_count = 5;
  options.run.settle_time = 4'000.0;
  options.seed = 404;
  options.plan_count = 6;
  options.shrink_violations = false;

  std::string summaries[3];
  const int worker_counts[3] = {0, 1, 4};
  for (int i = 0; i < 3; ++i) {
    ScopedThreadPool scoped(worker_counts[i]);
    const Result<FuzzReport> report = RunFuzzCampaign(options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->plans_run, 6);
    summaries[i] = report->Describe();
  }
  EXPECT_EQ(summaries[0], summaries[1]);
  EXPECT_EQ(summaries[1], summaries[2]);
}

}  // namespace
}  // namespace probcon
