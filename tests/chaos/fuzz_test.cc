// End-to-end fuzz harness coverage. Two halves:
//  - Positive: honest configurations survive generated chaos (crash + partition + gray +
//    duplication regimes) with zero safety violations.
//  - Negative control: a deliberately mis-quorumed Raft (2-of-5 for both log replication and
//    leader election) MUST violate under a split-brain partition, the shrinker must emit a
//    minimal plan that still fails, and the repro JSON must replay the violation bit-for-bit.
// The negative control is what proves the oracle has teeth: a fuzzer that can't catch a
// known-broken quorum rule says nothing when it passes an honest one.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/chaos/fuzz.h"

namespace probcon {
namespace {

// A split-brain schedule for 5 nodes: {0,1} | {2,3,4} long enough for both sides to elect
// under a 2-vote quorum and commit divergent entries at the same slots.
ChaosPlan SplitBrainPlan() {
  ChaosPlan plan;
  plan.seed = 7001;
  plan.horizon = 9'000.0;
  ChaosRegime partition;
  partition.kind = RegimeKind::kPartition;
  partition.start = 1'000.0;
  partition.end = 8'000.0;
  partition.groups = {0, 0, 1, 1, 1};
  plan.regimes.push_back(partition);
  return plan;
}

ChaosRunOptions MisQuorumedRaft() {
  ChaosRunOptions options;
  options.protocol = FuzzProtocol::kRaft;
  options.node_count = 5;
  options.settle_time = 4'000.0;
  options.raft_q_per = 2;  // 2-of-5: two disjoint "quorums" can coexist.
  options.raft_q_vc = 2;
  return options;
}

TEST(ChaosFuzzTest, HonestRaftSurvivesGeneratedChaos) {
  FuzzCampaignOptions options;
  options.generator.node_count = 5;
  options.generator.horizon = 8'000.0;
  options.run.protocol = FuzzProtocol::kRaft;
  options.run.node_count = 5;
  options.run.settle_time = 5'000.0;
  options.seed = 20250;
  options.plan_count = 12;

  const Result<FuzzReport> report = RunFuzzCampaign(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->plans_run, 12);
  EXPECT_EQ(report->safety_violations, 0) << report->Describe();
}

TEST(ChaosFuzzTest, HonestPaxosSurvivesGeneratedChaos) {
  FuzzCampaignOptions options;
  options.generator.node_count = 5;
  options.generator.horizon = 8'000.0;
  options.run.protocol = FuzzProtocol::kPaxos;
  options.run.node_count = 5;
  options.run.settle_time = 5'000.0;
  options.seed = 31337;
  options.plan_count = 8;

  const Result<FuzzReport> report = RunFuzzCampaign(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->safety_violations, 0) << report->Describe();
}

TEST(ChaosFuzzTest, PbftWithinTheByzantineThresholdSurvivesGeneratedChaos) {
  FuzzCampaignOptions options;
  options.generator.node_count = 4;
  options.generator.horizon = 8'000.0;
  // Keep crashes off: a crashed replica plus a Byzantine one exceeds f = 1 at n = 4, which
  // is outside PBFT's guarantee envelope (and a finding the honest campaign above owns).
  options.generator.allow_crash_restart = false;
  options.run.protocol = FuzzProtocol::kPbft;
  options.run.node_count = 4;
  options.run.settle_time = 5'000.0;
  options.run.pbft_behaviors = {ByzantineBehavior::kEquivocate, ByzantineBehavior::kHonest,
                                ByzantineBehavior::kHonest, ByzantineBehavior::kHonest};
  options.seed = 808;
  options.plan_count = 8;

  const Result<FuzzReport> report = RunFuzzCampaign(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->safety_violations, 0) << report->Describe();
}

TEST(ChaosFuzzTest, MisQuorumedRaftViolatesUnderSplitBrain) {
  const Result<ChaosRunResult> result = ExecuteChaosPlan(SplitBrainPlan(), MisQuorumedRaft());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->safety_ok);
  EXPECT_FALSE(result->violation.empty());
}

TEST(ChaosFuzzTest, ShrinkerDropsPaddingAndStaysFailing) {
  // Pad the split-brain schedule with regimes that are irrelevant to the violation; the
  // shrinker must strip them and may also tighten the partition window itself.
  ChaosPlan padded = SplitBrainPlan();
  {
    ChaosRegime gray;
    gray.kind = RegimeKind::kGraySlow;
    gray.start = 200.0;
    gray.end = 600.0;
    gray.nodes = {4};
    gray.handler_delay = 25.0;
    padded.regimes.push_back(gray);
  }
  {
    ChaosRegime duplicate;
    duplicate.kind = RegimeKind::kDuplicate;
    duplicate.start = 100.0;
    duplicate.end = 400.0;
    duplicate.probability = 0.1;
    padded.regimes.push_back(duplicate);
  }

  const ChaosRunOptions options = MisQuorumedRaft();
  const Result<ShrinkOutcome> shrunk = ShrinkChaosPlan(padded, options);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
  EXPECT_GT(shrunk->evaluations, 1);
  EXPECT_LT(shrunk->plan.regimes.size(), padded.regimes.size());
  ASSERT_GE(shrunk->plan.regimes.size(), 1u);
  EXPECT_EQ(shrunk->plan.regimes[0].kind, RegimeKind::kPartition);

  // The shrunk plan is replayable: a JSON round trip still reproduces the violation.
  const Result<ChaosPlan> reloaded = ChaosPlan::FromJson(shrunk->plan.ToJson());
  ASSERT_TRUE(reloaded.ok());
  const Result<ChaosRunResult> replay = ExecuteChaosPlan(*reloaded, options);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->safety_ok);
}

TEST(ChaosFuzzTest, ShrinkRefusesAPassingPlan) {
  ChaosRunOptions options;
  options.protocol = FuzzProtocol::kRaft;
  options.node_count = 5;
  options.settle_time = 2'000.0;
  ChaosPlan benign;
  benign.seed = 3;
  benign.horizon = 3'000.0;  // No regimes at all: nothing to reproduce.
  EXPECT_FALSE(ShrinkChaosPlan(benign, options).ok());
}

TEST(ChaosFuzzTest, CampaignDumpsReplayableReprosForViolations) {
  // Partitions-only generated chaos against the mis-quorumed config: some generated split
  // must divide the cluster into two electable halves and trip the checker.
  FuzzCampaignOptions options;
  options.generator.node_count = 5;
  options.generator.horizon = 12'000.0;
  options.generator.allow_link_degrade = false;
  options.generator.allow_gray_slow = false;
  options.generator.allow_clock_skew = false;
  options.generator.allow_duplicate = false;
  options.generator.allow_reorder = false;
  options.generator.allow_crash_restart = false;
  options.run = MisQuorumedRaft();
  options.seed = 515;
  options.plan_count = 6;
  options.repro_dir = std::string(::testing::TempDir()) + "/chaos_repro";
  std::filesystem::remove_all(options.repro_dir);

  const Result<FuzzReport> report = RunFuzzCampaign(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_GT(report->safety_violations, 0) << report->Describe();

  const FuzzViolation& violation = report->violations.front();
  ASSERT_TRUE(violation.shrunk.has_value());
  ASSERT_FALSE(violation.repro_path.empty());
  ASSERT_TRUE(std::filesystem::exists(violation.repro_path));

  // The dumped plan file replays to the same violation.
  std::ifstream in(violation.repro_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const Result<ChaosPlan> reloaded = ChaosPlan::FromJson(buffer.str());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  const Result<ChaosRunResult> replay = ExecuteChaosPlan(*reloaded, options.run);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->safety_ok);

  // The minimal plan and the obs trace rode along in the bundle.
  const std::string stem = options.repro_dir + "/violation_" +
                           std::to_string(violation.plan_index);
  EXPECT_TRUE(std::filesystem::exists(stem + ".min.plan.json"));
  EXPECT_TRUE(std::filesystem::exists(stem + ".trace.json"));
}

}  // namespace
}  // namespace probcon
