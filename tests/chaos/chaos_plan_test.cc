#include "src/chaos/chaos_plan.h"

#include <gtest/gtest.h>

#include "src/chaos/plan_generator.h"

namespace probcon {
namespace {

ChaosPlan SamplePlan() {
  ChaosPlan plan;
  plan.seed = 0xDEADBEEFCAFEF00DULL;  // Exercises the full-uint64 JSON path.
  plan.horizon = 10000.0;
  {
    ChaosRegime regime;
    regime.kind = RegimeKind::kPartition;
    regime.start = 100.0;
    regime.end = 2000.0;
    regime.groups = {0, 0, 1, 1, 1};
    plan.regimes.push_back(regime);
  }
  {
    ChaosRegime regime;
    regime.kind = RegimeKind::kLinkDegrade;
    regime.start = 500.0;
    regime.end = 2500.5;
    regime.from = -1;
    regime.to = 3;
    regime.latency_factor = 4.25;
    regime.extra_latency = 12.5;
    regime.extra_drop = 0.125;
    plan.regimes.push_back(regime);
  }
  {
    ChaosRegime regime;
    regime.kind = RegimeKind::kGraySlow;
    regime.start = 3000.0;
    regime.end = 4000.0;
    regime.nodes = {2};
    regime.handler_delay = 75.0;
    regime.timer_scale = 2.5;
    plan.regimes.push_back(regime);
  }
  {
    ChaosRegime regime;
    regime.kind = RegimeKind::kClockSkew;
    regime.start = 3500.0;
    regime.end = 5000.0;
    regime.nodes = {0, 4};
    regime.clock_rate = 1.75;
    plan.regimes.push_back(regime);
  }
  {
    ChaosRegime regime;
    regime.kind = RegimeKind::kDuplicate;
    regime.start = 4000.0;
    regime.end = 9000.0;
    regime.probability = 0.3;
    plan.regimes.push_back(regime);
  }
  {
    ChaosRegime regime;
    regime.kind = RegimeKind::kReorder;
    regime.start = 4100.0;
    regime.end = 8000.0;
    regime.probability = 0.2;
    regime.window = 55.0;
    plan.regimes.push_back(regime);
  }
  {
    ChaosRegime regime;
    regime.kind = RegimeKind::kCrashRestart;
    regime.start = 6000.0;
    regime.end = 7000.0;
    regime.nodes = {1, 3};
    plan.regimes.push_back(regime);
  }
  {
    ChaosRegime regime;
    regime.kind = RegimeKind::kDurabilityLapse;
    regime.start = 8000.0;
    regime.end = 9500.0;
    regime.nodes = {0};
    regime.sync_every_n = 8;
    plan.regimes.push_back(regime);
  }
  return plan;
}

TEST(ChaosPlanTest, JsonRoundTripPreservesEveryRegimeKind) {
  const ChaosPlan plan = SamplePlan();
  ASSERT_TRUE(plan.Validate(5).ok()) << plan.Validate(5).ToString();
  const std::string json = plan.ToJson();
  const Result<ChaosPlan> parsed = ChaosPlan::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, plan);
}

TEST(ChaosPlanTest, JsonSerializationIsByteStable) {
  const ChaosPlan plan = SamplePlan();
  EXPECT_EQ(plan.ToJson(), plan.ToJson());
  const Result<ChaosPlan> reparsed = ChaosPlan::FromJson(plan.ToJson());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->ToJson(), plan.ToJson());  // Round trip is a fixpoint.
}

TEST(ChaosPlanTest, EmptyPlanRoundTrips) {
  ChaosPlan plan;
  plan.seed = 7;
  plan.horizon = 100.0;
  const Result<ChaosPlan> parsed = ChaosPlan::FromJson(plan.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, plan);
}

TEST(ChaosPlanTest, RegimeKindNamesRoundTrip) {
  for (int i = 0; i < kRegimeKindCount; ++i) {
    const RegimeKind kind = static_cast<RegimeKind>(i);
    const Result<RegimeKind> parsed = RegimeKindFromName(RegimeKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(RegimeKindFromName("meteor_strike").ok());
}

TEST(ChaosPlanTest, ParseRejectsMalformedJson) {
  EXPECT_FALSE(ChaosPlan::FromJson("").ok());
  EXPECT_FALSE(ChaosPlan::FromJson("{").ok());
  EXPECT_FALSE(ChaosPlan::FromJson("[1, 2]").ok());
  EXPECT_FALSE(ChaosPlan::FromJson("{\"regimes\": [{\"kind\": \"nope\"}]}").ok());
  EXPECT_FALSE(ChaosPlan::FromJson("{\"seed\": 1} trailing").ok());
}

TEST(ChaosPlanTest, ValidateCatchesStructuralErrors) {
  ChaosPlan plan;
  plan.horizon = 1000.0;
  ChaosRegime regime;
  regime.kind = RegimeKind::kCrashRestart;
  regime.start = 100.0;
  regime.end = 50.0;  // end < start.
  regime.nodes = {0};
  plan.regimes.push_back(regime);
  EXPECT_FALSE(plan.Validate(3).ok());

  plan.regimes[0].end = 200.0;
  EXPECT_TRUE(plan.Validate(3).ok());

  plan.regimes[0].nodes = {7};  // Out of range.
  EXPECT_FALSE(plan.Validate(3).ok());

  plan.regimes[0].nodes = {};  // No victims.
  EXPECT_FALSE(plan.Validate(3).ok());

  plan.regimes[0] = ChaosRegime{};  // Partition with the wrong group count.
  plan.regimes[0].end = 100.0;
  plan.regimes[0].groups = {0, 1};
  EXPECT_FALSE(plan.Validate(3).ok());

  plan.regimes[0].groups = {0, 1, 0};
  EXPECT_TRUE(plan.Validate(3).ok());

  plan.regimes[0].end = 2000.0;  // Past the horizon.
  EXPECT_FALSE(plan.Validate(3).ok());
}

TEST(ChaosPlanGeneratorTest, GeneratedPlansValidateAndAreDeterministic) {
  ChaosPlanGeneratorOptions options;
  options.node_count = 5;
  options.horizon = 15000.0;
  const ChaosPlanGenerator generator(options);
  for (uint64_t i = 0; i < 50; ++i) {
    const ChaosPlan plan = generator.Generate(/*seed=*/123, i);
    EXPECT_TRUE(plan.Validate(5).ok()) << plan.Describe();
    EXPECT_EQ(plan, generator.Generate(123, i));  // Pure function of (seed, index).
    EXPECT_GE(plan.regimes.size(), 2u);
    EXPECT_LE(plan.regimes.size(), 6u);
  }
  // Different indices explore different schedules.
  EXPECT_NE(generator.Generate(123, 0), generator.Generate(123, 1));
}

TEST(ChaosPlanGeneratorTest, DurabilityLapsesAreOffByDefault) {
  ChaosPlanGeneratorOptions options;
  options.node_count = 5;
  const ChaosPlanGenerator generator(options);
  for (uint64_t i = 0; i < 100; ++i) {
    for (const ChaosRegime& regime : generator.Generate(9, i).regimes) {
      EXPECT_NE(regime.kind, RegimeKind::kDurabilityLapse);
    }
  }
}

TEST(ChaosPlanGeneratorTest, CrashRegimesRespectTheSimultaneousCap) {
  ChaosPlanGeneratorOptions options;
  options.node_count = 5;  // Default cap: minority = 2.
  const ChaosPlanGenerator generator(options);
  for (uint64_t i = 0; i < 100; ++i) {
    for (const ChaosRegime& regime : generator.Generate(77, i).regimes) {
      if (regime.kind == RegimeKind::kCrashRestart) {
        EXPECT_LE(regime.nodes.size(), 2u);
      }
    }
  }
}

}  // namespace
}  // namespace probcon
