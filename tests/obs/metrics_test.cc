#include "src/obs/metrics.h"

#include <gtest/gtest.h>

namespace probcon {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.Set(3.5);
  gauge.Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.Set(7.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 7.0);
}

TEST(HistogramOptionsTest, ExponentialBoundsDouble) {
  const HistogramOptions options = HistogramOptions::Exponential(1.0, 2.0, 4);
  ASSERT_EQ(options.bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(options.bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(options.bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(options.bounds[2], 4.0);
  EXPECT_DOUBLE_EQ(options.bounds[3], 8.0);
}

TEST(HistogramTest, FixedBucketingBoundariesAreInclusive) {
  Histogram histogram(HistogramOptions::Fixed({10.0, 20.0, 30.0}));
  histogram.Record(5.0);    // Bucket 0 (le 10).
  histogram.Record(10.0);   // Bucket 0: bound is an inclusive upper bound.
  histogram.Record(10.5);   // Bucket 1.
  histogram.Record(30.0);   // Bucket 2.
  histogram.Record(100.0);  // Overflow.
  const auto& counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(HistogramTest, StreamingMomentsWithoutSampleRetention) {
  Histogram histogram(HistogramOptions::Exponential(1.0, 2.0, 10));
  for (int i = 1; i <= 100; ++i) {
    histogram.Record(static_cast<double>(i));
  }
  EXPECT_EQ(histogram.count(), 100u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(histogram.Min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 100.0);
}

TEST(HistogramTest, ApproxQuantileWithinBucketResolution) {
  Histogram histogram(HistogramOptions::Fixed({25.0, 50.0, 75.0, 100.0}));
  for (int i = 1; i <= 100; ++i) {
    histogram.Record(static_cast<double>(i));
  }
  // Uniform data: the quantile estimate must land within the containing bucket.
  EXPECT_NEAR(histogram.ApproxQuantile(0.5), 50.0, 25.0);
  EXPECT_NEAR(histogram.ApproxQuantile(0.99), 99.0, 25.0);
  // Edges clamp to the observed extremes: q=0 lands within the first bucket's resolution,
  // q=1 is exact because the top bucket's upper edge is clamped to Max.
  EXPECT_NEAR(histogram.ApproxQuantile(0.0), 1.0, 1.0);
  EXPECT_GE(histogram.ApproxQuantile(0.0), histogram.Min());
  EXPECT_DOUBLE_EQ(histogram.ApproxQuantile(1.0), 100.0);
}

TEST(HistogramTest, SingleSampleQuantiles) {
  Histogram histogram(HistogramOptions::Fixed({10.0}));
  histogram.Record(3.0);
  EXPECT_DOUBLE_EQ(histogram.ApproxQuantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(histogram.ApproxQuantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(histogram.ApproxQuantile(1.0), 3.0);
}

TEST(MetricsRegistryTest, GetCreatesOnceAndReturnsSameInstrument) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  Counter& a = registry.GetCounter("x");
  a.Increment(5);
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_FALSE(registry.empty());
}

TEST(MetricsRegistryTest, HistogramOptionsApplyOnFirstUseOnly) {
  MetricsRegistry registry;
  Histogram& h1 = registry.GetHistogram("lat", HistogramOptions::Fixed({1.0, 2.0}));
  Histogram& h2 = registry.GetHistogram("lat", HistogramOptions::Fixed({99.0}));
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bucket_bounds().size(), 2u);
}

TEST(MetricsRegistryTest, FindReturnsNullForUntouched) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.FindCounter("nope"), nullptr);
  EXPECT_EQ(registry.FindGauge("nope"), nullptr);
  EXPECT_EQ(registry.FindHistogram("nope"), nullptr);
  registry.GetCounter("yes").Increment();
  ASSERT_NE(registry.FindCounter("yes"), nullptr);
  EXPECT_EQ(registry.FindCounter("yes")->value(), 1u);
}

TEST(MetricsRegistryTest, SameNameDifferentKindsAreDistinct) {
  MetricsRegistry registry;
  registry.GetCounter("m").Increment(3);
  registry.GetGauge("m").Set(1.5);
  EXPECT_EQ(registry.FindCounter("m")->value(), 3u);
  EXPECT_DOUBLE_EQ(registry.FindGauge("m")->value(), 1.5);
}

TEST(MetricsRegistryTest, IterationIsNameOrdered) {
  MetricsRegistry registry;
  registry.GetCounter("zebra");
  registry.GetCounter("apple");
  registry.GetCounter("mango");
  std::vector<std::string> names;
  for (const auto& [name, counter] : registry.counters()) {
    names.push_back(name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"apple", "mango", "zebra"}));
}

}  // namespace
}  // namespace probcon
