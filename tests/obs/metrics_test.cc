#include "src/obs/metrics.h"

#include <gtest/gtest.h>

namespace probcon {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.Set(3.5);
  gauge.Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.Set(7.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 7.0);
}

TEST(HistogramOptionsTest, ExponentialBoundsDouble) {
  const HistogramOptions options = HistogramOptions::Exponential(1.0, 2.0, 4);
  ASSERT_EQ(options.bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(options.bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(options.bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(options.bounds[2], 4.0);
  EXPECT_DOUBLE_EQ(options.bounds[3], 8.0);
}

TEST(HistogramTest, FixedBucketingBoundariesAreInclusive) {
  Histogram histogram(HistogramOptions::Fixed({10.0, 20.0, 30.0}));
  histogram.Record(5.0);    // Bucket 0 (le 10).
  histogram.Record(10.0);   // Bucket 0: bound is an inclusive upper bound.
  histogram.Record(10.5);   // Bucket 1.
  histogram.Record(30.0);   // Bucket 2.
  histogram.Record(100.0);  // Overflow.
  const auto& counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(HistogramTest, StreamingMomentsWithoutSampleRetention) {
  Histogram histogram(HistogramOptions::Exponential(1.0, 2.0, 10));
  for (int i = 1; i <= 100; ++i) {
    histogram.Record(static_cast<double>(i));
  }
  EXPECT_EQ(histogram.count(), 100u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(histogram.Min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 100.0);
}

TEST(HistogramTest, ApproxQuantileWithinBucketResolution) {
  Histogram histogram(HistogramOptions::Fixed({25.0, 50.0, 75.0, 100.0}));
  for (int i = 1; i <= 100; ++i) {
    histogram.Record(static_cast<double>(i));
  }
  // Uniform data: the quantile estimate must land within the containing bucket.
  EXPECT_NEAR(histogram.ApproxQuantile(0.5), 50.0, 25.0);
  EXPECT_NEAR(histogram.ApproxQuantile(0.99), 99.0, 25.0);
  // Edges clamp to the observed extremes: q=0 lands within the first bucket's resolution,
  // q=1 is exact because the top bucket's upper edge is clamped to Max.
  EXPECT_NEAR(histogram.ApproxQuantile(0.0), 1.0, 1.0);
  EXPECT_GE(histogram.ApproxQuantile(0.0), histogram.Min());
  EXPECT_DOUBLE_EQ(histogram.ApproxQuantile(1.0), 100.0);
}

TEST(HistogramTest, SingleSampleQuantiles) {
  Histogram histogram(HistogramOptions::Fixed({10.0}));
  histogram.Record(3.0);
  EXPECT_DOUBLE_EQ(histogram.ApproxQuantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(histogram.ApproxQuantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(histogram.ApproxQuantile(1.0), 3.0);
}

TEST(MetricsRegistryTest, GetCreatesOnceAndReturnsSameInstrument) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  Counter& a = registry.GetCounter("x");
  a.Increment(5);
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_FALSE(registry.empty());
}

TEST(MetricsRegistryTest, SameOptionsReturnTheSameHistogram) {
  MetricsRegistry registry;
  Histogram& h1 = registry.GetHistogram("lat", HistogramOptions::Fixed({1.0, 2.0}));
  Histogram& h2 = registry.GetHistogram("lat", HistogramOptions::Fixed({1.0, 2.0}));
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bucket_bounds().size(), 2u);
}

TEST(MetricsRegistryDeathTest, MismatchedHistogramBoundsCheckFail) {
  // Silently keeping first-use bounds would mean a caller records into buckets it never
  // asked for; the registry names the conflicting instrument and dies instead.
  MetricsRegistry registry;
  registry.GetHistogram("lat", HistogramOptions::Fixed({1.0, 2.0}));
  EXPECT_DEATH(registry.GetHistogram("lat", HistogramOptions::Fixed({99.0})),
               "histogram ' ?lat ?'.*bucket bounds that differ");
}

TEST(MetricsRegistryTest, FindReturnsNullForUntouched) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.FindCounter("nope"), nullptr);
  EXPECT_EQ(registry.FindGauge("nope"), nullptr);
  EXPECT_EQ(registry.FindHistogram("nope"), nullptr);
  registry.GetCounter("yes").Increment();
  ASSERT_NE(registry.FindCounter("yes"), nullptr);
  EXPECT_EQ(registry.FindCounter("yes")->value(), 1u);
}

TEST(MetricsRegistryDeathTest, SameNameDifferentKindConflictsCheckFail) {
  // One name = one instrument kind: a counter and a gauge sharing a name would silently
  // shadow each other in exports, so the cross-kind lookup dies naming the conflict.
  MetricsRegistry registry;
  registry.GetCounter("m").Increment(3);
  EXPECT_DEATH(registry.GetGauge("m"),
               "metric ' ?m ?'.*registered as a counter, requested as a gauge");
  EXPECT_DEATH(registry.GetHistogram("m"),
               "metric ' ?m ?'.*registered as a counter, requested as a histogram");

  MetricsRegistry gauged;
  gauged.GetGauge("g").Set(1.5);
  EXPECT_DEATH(gauged.GetCounter("g"),
               "metric ' ?g ?'.*registered as a gauge, requested as a counter");
}

TEST(MetricsRegistryTest, IterationIsNameOrdered) {
  MetricsRegistry registry;
  registry.GetCounter("zebra");
  registry.GetCounter("apple");
  registry.GetCounter("mango");
  std::vector<std::string> names;
  for (const auto& [name, counter] : registry.counters()) {
    names.push_back(name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"apple", "mango", "zebra"}));
}

TEST(HistogramTest, SnapshotIsAConsistentFrozenCopy) {
  Histogram histogram(HistogramOptions::Fixed({10.0, 20.0}));
  histogram.Record(5.0);
  histogram.Record(15.0);
  const HistogramSnapshot snap = histogram.snapshot();
  histogram.Record(100.0);  // Must not retroactively change the snapshot.
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.sum, 20.0);
  EXPECT_DOUBLE_EQ(snap.min, 5.0);
  EXPECT_DOUBLE_EQ(snap.max, 15.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 10.0);
  ASSERT_EQ(snap.counts.size(), 3u);  // Two bounds + overflow.
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 0u);
  // Quantiles on the snapshot match the live instrument's view at snapshot time.
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 15.0);
}

TEST(MetricsRegistryTest, SnapshotIntoDeepCopiesAndDetaches) {
  MetricsRegistry registry;
  registry.GetCounter("c").Increment(7);
  registry.GetGauge("g").Set(2.5);
  registry.GetHistogram("h", HistogramOptions::Fixed({10.0})).Record(3.0);

  MetricsRegistry copy;
  registry.SnapshotInto(&copy);
  ASSERT_NE(copy.FindCounter("c"), nullptr);
  EXPECT_EQ(copy.FindCounter("c")->value(), 7u);
  ASSERT_NE(copy.FindGauge("g"), nullptr);
  EXPECT_DOUBLE_EQ(copy.FindGauge("g")->value(), 2.5);
  ASSERT_NE(copy.FindHistogram("h"), nullptr);
  EXPECT_EQ(copy.FindHistogram("h")->count(), 1u);

  // The copy is detached: later updates to the source don't bleed through.
  registry.GetCounter("c").Increment(100);
  registry.GetHistogram("h", HistogramOptions::Fixed({10.0})).Record(4.0);
  EXPECT_EQ(copy.FindCounter("c")->value(), 7u);
  EXPECT_EQ(copy.FindHistogram("h")->count(), 1u);
}

TEST(MetricsRegistryTest, ResetZeroesCountersAndHistogramsButKeepsGauges) {
  MetricsRegistry registry;
  registry.GetCounter("c").Increment(9);
  registry.GetGauge("g").Set(4.0);
  Histogram& h = registry.GetHistogram("h", HistogramOptions::Fixed({10.0}));
  h.Record(1.0);

  registry.Reset();
  EXPECT_EQ(registry.FindCounter("c")->value(), 0u);
  EXPECT_EQ(registry.FindHistogram("h")->count(), 0u);
  // Gauges are levels, not rates: a stats-window reset must not erase them.
  EXPECT_DOUBLE_EQ(registry.FindGauge("g")->value(), 4.0);
  // The instrument (and its bucket layout) survives, ready to record the next window.
  h.Record(2.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Min(), 2.0);
}

TEST(HistogramOptionsTest, ServeLatencyLayoutResolvesWarmHits) {
  // Warm cache hits sit around 10us = 0.01ms; the serve layout must not collapse them
  // into the same bucket as a 1ms engine run.
  const HistogramOptions options = HistogramOptions::ServeLatencyMs();
  ASSERT_EQ(options.bounds.size(), 24u);
  EXPECT_DOUBLE_EQ(options.bounds.front(), 0.001);
  Histogram histogram(options);
  histogram.Record(0.01);
  histogram.Record(1.0);
  const std::vector<uint64_t> counts = histogram.bucket_counts();
  uint64_t nonzero = 0;
  for (uint64_t c : counts) {
    nonzero += (c > 0) ? 1 : 0;
  }
  EXPECT_EQ(nonzero, 2u);
}

}  // namespace
}  // namespace probcon
