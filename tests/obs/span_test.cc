#include "src/obs/span.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/common/json.h"

namespace probcon {
namespace {

TEST(SpanTimerTest, ElapsedIsNonNegativeAndMonotone) {
  SpanTimer timer;
  const double first = timer.ElapsedMs();
  EXPECT_GE(first, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double second = timer.ElapsedMs();
  EXPECT_GE(second, first);
  EXPECT_GE(second, 2.0 * 0.5);  // Generous slack; clocks coarser than 1ms would fail hard.
}

TEST(SpanTimerTest, LapMeasuresSinceLastLapNotSinceStart) {
  SpanTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double lap1 = timer.LapMs();
  EXPECT_GE(lap1, 0.0);
  // A lap immediately after the previous one is near zero even though total elapsed
  // keeps growing.
  const double lap2 = timer.LapMs();
  EXPECT_GE(lap2, 0.0);
  EXPECT_LE(lap2, timer.ElapsedMs());
  EXPECT_GE(timer.ElapsedMs(), lap1);
}

TEST(SpanTimerTest, RestartResetsBothAnchors) {
  SpanTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  timer.Restart();
  const double elapsed = timer.ElapsedMs();
  EXPECT_GE(elapsed, 0.0);
  EXPECT_LT(elapsed, 1000.0);  // Sanity: restarted, not accumulated since construction.
  EXPECT_GE(timer.LapMs(), 0.0);
}

TEST(RequestTraceTest, ToJsonEmitsTotalAndStagesInOrder) {
  RequestTrace trace;
  trace.AddStage("parse", 0.25);
  trace.AddStage("engine", 3.5);
  trace.total_ms = 4.0;

  const Json json = trace.ToJson();
  ASSERT_TRUE(json.IsObject());
  const Json* total = json.Find("total_ms");
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->NumberValue(), 4.0);
  const Json* stages = json.Find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_TRUE(stages->IsArray());
  ASSERT_EQ(stages->items.size(), 2u);
  EXPECT_EQ(stages->items[0].Find("stage")->text, "parse");
  EXPECT_DOUBLE_EQ(stages->items[0].Find("ms")->NumberValue(), 0.25);
  EXPECT_EQ(stages->items[1].Find("stage")->text, "engine");
  EXPECT_DOUBLE_EQ(stages->items[1].Find("ms")->NumberValue(), 3.5);
}

TEST(RequestTraceTest, EmptyTraceIsStillAValidDocument) {
  const Json json = RequestTrace{}.ToJson();
  ASSERT_TRUE(json.IsObject());
  ASSERT_NE(json.Find("stages"), nullptr);
  EXPECT_TRUE(json.Find("stages")->items.empty());
}

}  // namespace
}  // namespace probcon
