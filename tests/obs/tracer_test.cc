#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include "src/consensus/raft/raft_cluster.h"
#include "src/obs/metrics.h"
#include "src/sim/simulator.h"

namespace probcon {
namespace {

// Runs a small seeded Raft cluster with tracing attached and returns the observed trace.
void RunTracedCluster(uint64_t seed, TraceLog* trace, MetricsRegistry* metrics) {
  RaftClusterOptions options;
  options.config = RaftConfig::Standard(3);
  options.seed = seed;
  RaftCluster cluster(options);
  cluster.simulator().AttachTracer(trace, metrics);
  cluster.Start();
  cluster.RunUntil(3'000.0);
  // Crash and recover one follower so the trace contains fault events too.
  const int victim = (cluster.LeaderId() + 1) % cluster.size();
  cluster.node(victim).Crash();
  cluster.RunUntil(4'000.0);
  cluster.node(victim).Recover();
  cluster.RunUntil(6'000.0);
}

TEST(TracerTest, SeededRaftRunEmitsExpectedEventKinds) {
  TraceLog trace;
  MetricsRegistry metrics;
  RunTracedCluster(/*seed=*/7, &trace, &metrics);

  ASSERT_FALSE(trace.empty());
  EXPECT_GT(trace.CountOf(TraceEventType::kElectionStarted), 0u);
  EXPECT_GT(trace.CountOf(TraceEventType::kLeaderElected), 0u);
  EXPECT_GT(trace.CountOf(TraceEventType::kCommit), 0u);
  EXPECT_GT(trace.CountOf(TraceEventType::kClientSubmitted), 0u);
  EXPECT_EQ(trace.CountOf(TraceEventType::kNodeCrashed), 1u);
  EXPECT_EQ(trace.CountOf(TraceEventType::kNodeRecovered), 1u);

  // Timestamps are simulator time: nondecreasing and within the run span.
  double last = 0.0;
  for (const TraceEvent& event : trace.events()) {
    EXPECT_GE(event.time, last);
    EXPECT_LE(event.time, 6'000.0);
    last = event.time;
  }

  // Metrics ride along with the trace.
  ASSERT_NE(metrics.FindCounter("raft.elections_started"), nullptr);
  EXPECT_EQ(metrics.FindCounter("raft.elections_started")->value(),
            trace.CountOf(TraceEventType::kElectionStarted));
  ASSERT_NE(metrics.FindHistogram("consensus.commit_latency_ms"), nullptr);
  EXPECT_GT(metrics.FindHistogram("consensus.commit_latency_ms")->count(), 0u);
}

TEST(TracerTest, SameSeedRunsProduceIdenticalTraces) {
  TraceLog first_trace;
  MetricsRegistry first_metrics;
  RunTracedCluster(/*seed=*/42, &first_trace, &first_metrics);

  TraceLog second_trace;
  MetricsRegistry second_metrics;
  RunTracedCluster(/*seed=*/42, &second_trace, &second_metrics);

  ASSERT_FALSE(first_trace.empty());
  ASSERT_EQ(first_trace.size(), second_trace.size());
  EXPECT_EQ(first_trace.events(), second_trace.events());
}

TEST(TracerTest, DifferentSeedsDiverge) {
  TraceLog a;
  MetricsRegistry ma;
  RunTracedCluster(/*seed=*/1, &a, &ma);
  TraceLog b;
  MetricsRegistry mb;
  RunTracedCluster(/*seed=*/2, &b, &mb);
  EXPECT_NE(a.events(), b.events());
}

TEST(TracerTest, TracingDoesNotPerturbTheRun) {
  // The tracer must never touch the rng: an instrumented run and a bare run with the same
  // seed must commit the same slots.
  auto committed_slots = [](uint64_t seed, bool traced, TraceLog* trace,
                            MetricsRegistry* metrics) {
    RaftClusterOptions options;
    options.config = RaftConfig::Standard(3);
    options.seed = seed;
    RaftCluster cluster(options);
    if (traced) {
      cluster.simulator().AttachTracer(trace, metrics);
    }
    cluster.Start();
    cluster.RunUntil(5'000.0);
    return cluster.checker().max_committed_slot();
  };
  TraceLog trace;
  MetricsRegistry metrics;
  const uint64_t with_trace = committed_slots(11, true, &trace, &metrics);
  const uint64_t without_trace = committed_slots(11, false, nullptr, nullptr);
  EXPECT_EQ(with_trace, without_trace);
  EXPECT_FALSE(trace.empty());
}

TEST(NullTracerTest, DisabledTracerRecordsNothingAndNeverDereferences) {
  Tracer tracer;  // Default-constructed = disabled.
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.metrics(), nullptr);
  // Every entry point must be a safe no-op.
  tracer.Record(TraceEventType::kCommit, /*node=*/0);
  tracer.ElectionStarted(0, 1);
  tracer.LeaderElected(0, 1);
  tracer.Commit(0, 1);
  tracer.MessageDropped(0, 1);
  tracer.NodeCrashed(0);
  tracer.NodeRecovered(0);
  tracer.CounterAdd("nope");
  tracer.GaugeSet("nope", 1.0);
  tracer.HistogramRecord("nope", 1.0);
  SUCCEED();
}

TEST(NullTracerTest, UntracedSimulatorRecordsNothing) {
  // A cluster with no AttachTracer call must run with a disabled tracer throughout; the
  // sentinel TraceLog stays empty because nothing ever references it.
  RaftClusterOptions options;
  options.config = RaftConfig::Standard(3);
  options.seed = 3;
  RaftCluster cluster(options);
  EXPECT_FALSE(cluster.simulator().tracer().enabled());
  cluster.Start();
  cluster.RunUntil(3'000.0);
  EXPECT_FALSE(cluster.simulator().tracer().enabled());
  EXPECT_GT(cluster.checker().max_committed_slot(), 0u);
}

TEST(TraceLogTest, CountOfFiltersByNode) {
  TraceLog log;
  log.Append({1.0, TraceEventType::kCommit, 0, -1, 1, ""});
  log.Append({2.0, TraceEventType::kCommit, 1, -1, 1, ""});
  log.Append({3.0, TraceEventType::kCommit, 0, -1, 2, ""});
  EXPECT_EQ(log.CountOf(TraceEventType::kCommit), 3u);
  EXPECT_EQ(log.CountOf(TraceEventType::kCommit, /*node=*/0), 2u);
  EXPECT_EQ(log.CountOf(TraceEventType::kCommit, /*node=*/1), 1u);
  EXPECT_EQ(log.CountOf(TraceEventType::kElectionStarted), 0u);
  const auto commits = log.EventsOfType(TraceEventType::kCommit);
  ASSERT_EQ(commits.size(), 3u);
  EXPECT_EQ(commits[2].value, 2u);
}

}  // namespace
}  // namespace probcon
