#include "src/obs/export.h"

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace probcon {
namespace {

TraceLog MakeTrace() {
  TraceLog trace;
  trace.Append({1.5, TraceEventType::kElectionStarted, /*node=*/0, /*peer=*/-1,
                /*value=*/1, ""});
  trace.Append({2.0, TraceEventType::kLeaderElected, 0, -1, 1, ""});
  trace.Append({3.25, TraceEventType::kCommit, 2, -1, 7, "with \"quotes\",\n"});
  return trace;
}

TEST(FormatMetricValueTest, IntegersRenderWithoutTrailingZeros) {
  EXPECT_EQ(FormatMetricValue(42.0), "42");
  EXPECT_EQ(FormatMetricValue(0.5), "0.5");
  EXPECT_EQ(FormatMetricValue(-3.0), "-3");
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(TraceJsonTest, EmitsAllEventsWithTypedFields) {
  const std::string json = TraceToJson(MakeTrace());
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"election_started\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"leader_elected\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"commit\""), std::string::npos);
  EXPECT_NE(json.find("\"t\": 3.25"), std::string::npos);
  EXPECT_NE(json.find("\"value\": 7"), std::string::npos);
  // The detail string must survive round-trippable escaping.
  EXPECT_NE(json.find("with \\\"quotes\\\",\\n"), std::string::npos);
}

TEST(TraceJsonTest, EmptyTraceIsValidDocument) {
  EXPECT_EQ(TraceToJson(TraceLog()), "{\"events\": [\n]}\n");
}

TEST(TraceCsvTest, HeaderAndQuoting) {
  const std::string csv = TraceToCsv(MakeTrace());
  EXPECT_EQ(csv.find("time,type,node,peer,value,detail\n"), 0u);
  EXPECT_NE(csv.find("1.5,election_started,0,-1,1,"), std::string::npos);
  // RFC-4180: embedded quotes double, field with comma/newline/quote is quoted.
  EXPECT_NE(csv.find("\"with \"\"quotes\"\",\n\""), std::string::npos);
}

TEST(MetricsJsonTest, CountersGaugesHistogramsSections) {
  MetricsRegistry metrics;
  metrics.GetCounter("msgs").Increment(10);
  metrics.GetGauge("load").Set(0.75);
  Histogram& h = metrics.GetHistogram("lat", HistogramOptions::Fixed({1.0, 10.0}));
  h.Record(0.5);
  h.Record(5.0);
  h.Record(50.0);

  const std::string json = MetricsToJson(metrics);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"msgs\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"load\": 0.75"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"le\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"inf\""), std::string::npos);
}

TEST(MetricsCsvTest, RowPerField) {
  MetricsRegistry metrics;
  metrics.GetCounter("msgs").Increment(3);
  metrics.GetHistogram("lat", HistogramOptions::Fixed({2.0})).Record(1.0);

  const std::string csv = MetricsToCsv(metrics);
  EXPECT_EQ(csv.find("kind,name,field,value\n"), 0u);
  EXPECT_NE(csv.find("counter,msgs,value,3\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,count,1\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,bucket_le_2,1\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,bucket_le_inf,0\n"), std::string::npos);
}

TEST(ExportDeterminismTest, IdenticalInputsSerializeIdentically) {
  MetricsRegistry a;
  MetricsRegistry b;
  for (MetricsRegistry* registry : {&a, &b}) {
    registry->GetCounter("zeta").Increment(2);
    registry->GetCounter("alpha").Increment(1);
    registry->GetHistogram("h", HistogramOptions::Exponential(1.0, 2.0, 4)).Record(3.0);
  }
  EXPECT_EQ(MetricsToJson(a), MetricsToJson(b));
  EXPECT_EQ(MetricsToCsv(a), MetricsToCsv(b));
  const TraceLog trace = MakeTrace();
  EXPECT_EQ(TraceToJson(trace), TraceToJson(MakeTrace()));
}

}  // namespace
}  // namespace probcon
