#include "src/obs/export.h"

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace probcon {
namespace {

TraceLog MakeTrace() {
  TraceLog trace;
  trace.Append({1.5, TraceEventType::kElectionStarted, /*node=*/0, /*peer=*/-1,
                /*value=*/1, ""});
  trace.Append({2.0, TraceEventType::kLeaderElected, 0, -1, 1, ""});
  trace.Append({3.25, TraceEventType::kCommit, 2, -1, 7, "with \"quotes\",\n"});
  return trace;
}

TEST(FormatMetricValueTest, IntegersRenderWithoutTrailingZeros) {
  EXPECT_EQ(FormatMetricValue(42.0), "42");
  EXPECT_EQ(FormatMetricValue(0.5), "0.5");
  EXPECT_EQ(FormatMetricValue(-3.0), "-3");
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(TraceJsonTest, EmitsAllEventsWithTypedFields) {
  const std::string json = TraceToJson(MakeTrace());
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"election_started\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"leader_elected\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"commit\""), std::string::npos);
  EXPECT_NE(json.find("\"t\": 3.25"), std::string::npos);
  EXPECT_NE(json.find("\"value\": 7"), std::string::npos);
  // The detail string must survive round-trippable escaping.
  EXPECT_NE(json.find("with \\\"quotes\\\",\\n"), std::string::npos);
}

TEST(TraceJsonTest, EmptyTraceIsValidDocument) {
  EXPECT_EQ(TraceToJson(TraceLog()), "{\"events\": [\n]}\n");
}

TEST(TraceCsvTest, HeaderAndQuoting) {
  const std::string csv = TraceToCsv(MakeTrace());
  EXPECT_EQ(csv.find("time,type,node,peer,value,detail\n"), 0u);
  EXPECT_NE(csv.find("1.5,election_started,0,-1,1,"), std::string::npos);
  // RFC-4180: embedded quotes double, field with comma/newline/quote is quoted.
  EXPECT_NE(csv.find("\"with \"\"quotes\"\",\n\""), std::string::npos);
}

TEST(MetricsJsonTest, CountersGaugesHistogramsSections) {
  MetricsRegistry metrics;
  metrics.GetCounter("msgs").Increment(10);
  metrics.GetGauge("load").Set(0.75);
  Histogram& h = metrics.GetHistogram("lat", HistogramOptions::Fixed({1.0, 10.0}));
  h.Record(0.5);
  h.Record(5.0);
  h.Record(50.0);

  const std::string json = MetricsToJson(metrics);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"msgs\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"load\": 0.75"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"le\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"inf\""), std::string::npos);
}

TEST(MetricsJsonTest, HistogramSummariesIncludeQuantiles) {
  MetricsRegistry metrics;
  Histogram& h = metrics.GetHistogram("lat", HistogramOptions::Fixed({25.0, 50.0, 100.0}));
  for (int i = 1; i <= 100; ++i) {
    h.Record(static_cast<double>(i));
  }

  const std::string json = MetricsToJson(metrics);
  EXPECT_NE(json.find("\"mean\": 50.5"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p90\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);

  const std::string csv = MetricsToCsv(metrics);
  EXPECT_NE(csv.find("histogram,lat,p50,"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,p90,"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,p99,"), std::string::npos);

  // The exported quantiles are the snapshot's, not recomputed divergently.
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_NE(json.find("\"p50\": " + FormatMetricValue(snap.Quantile(0.5))),
            std::string::npos);
}

TEST(MetricsJsonTest, EmptyHistogramOmitsMomentsAndQuantiles) {
  MetricsRegistry metrics;
  metrics.GetHistogram("lat", HistogramOptions::Fixed({1.0}));
  const std::string json = MetricsToJson(metrics);
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos);
  EXPECT_EQ(json.find("\"p50\""), std::string::npos);
  EXPECT_EQ(json.find("\"mean\""), std::string::npos);
  EXPECT_EQ(json.find("\"min\""), std::string::npos);
}

TEST(MetricsToJsonValueTest, MirrorsTheByteExporterStructure) {
  MetricsRegistry metrics;
  metrics.GetCounter("msgs").Increment(10);
  metrics.GetGauge("load").Set(0.75);
  Histogram& h = metrics.GetHistogram("lat", HistogramOptions::Fixed({1.0, 10.0}));
  h.Record(0.5);
  h.Record(5.0);

  const Json value = MetricsToJsonValue(metrics);
  ASSERT_EQ(value.type, Json::Type::kObject);
  const Json* counters = value.Find("counters");
  ASSERT_NE(counters, nullptr);
  const Json* msgs = counters->Find("msgs");
  ASSERT_NE(msgs, nullptr);
  EXPECT_DOUBLE_EQ(msgs->NumberValue(), 10.0);
  const Json* histograms = value.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const Json* lat = histograms->Find("lat");
  ASSERT_NE(lat, nullptr);
  ASSERT_NE(lat->Find("p50"), nullptr);
  ASSERT_NE(lat->Find("buckets"), nullptr);
  EXPECT_EQ(lat->Find("buckets")->items.size(), 3u);
  ASSERT_NE(lat->Find("count"), nullptr);
  EXPECT_DOUBLE_EQ(lat->Find("count")->NumberValue(), 2.0);
}

TEST(MetricsCsvTest, RowPerField) {
  MetricsRegistry metrics;
  metrics.GetCounter("msgs").Increment(3);
  metrics.GetHistogram("lat", HistogramOptions::Fixed({2.0})).Record(1.0);

  const std::string csv = MetricsToCsv(metrics);
  EXPECT_EQ(csv.find("kind,name,field,value\n"), 0u);
  EXPECT_NE(csv.find("counter,msgs,value,3\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,count,1\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,bucket_le_2,1\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,bucket_le_inf,0\n"), std::string::npos);
}

TEST(ExportDeterminismTest, IdenticalInputsSerializeIdentically) {
  MetricsRegistry a;
  MetricsRegistry b;
  for (MetricsRegistry* registry : {&a, &b}) {
    registry->GetCounter("zeta").Increment(2);
    registry->GetCounter("alpha").Increment(1);
    registry->GetHistogram("h", HistogramOptions::Exponential(1.0, 2.0, 4)).Record(3.0);
  }
  EXPECT_EQ(MetricsToJson(a), MetricsToJson(b));
  EXPECT_EQ(MetricsToCsv(a), MetricsToCsv(b));
  const TraceLog trace = MakeTrace();
  EXPECT_EQ(TraceToJson(trace), TraceToJson(MakeTrace()));
}

}  // namespace
}  // namespace probcon
