#include "src/telemetry/fleet_generator.h"

#include <gtest/gtest.h>

#include "src/faultmodel/afr.h"

namespace probcon {
namespace {

TEST(FleetGeneratorTest, ObservationCountMatchesCohort) {
  FleetGenerator generator(1);
  DeviceCohort cohort{"test", 500, std::make_shared<ConstantFaultCurve>(0.001), 0.0};
  const auto observations = generator.GenerateObservations(cohort, 1000.0);
  EXPECT_EQ(observations.size(), 500u);
}

TEST(FleetGeneratorTest, ObservationsAreWellFormed) {
  FleetGenerator generator(2);
  DeviceCohort cohort{"test", 1000, std::make_shared<ConstantFaultCurve>(0.002), 500.0};
  const auto observations = generator.GenerateObservations(cohort, 800.0);
  EXPECT_TRUE(ValidateObservations(observations).ok());
  for (const auto& obs : observations) {
    EXPECT_GE(obs.entry_age, 0.0);
    EXPECT_LE(obs.entry_age, 500.0);
    EXPECT_LE(obs.exit_age, obs.entry_age + 800.0 + 1e-9);
  }
}

TEST(FleetGeneratorTest, FailureFractionTracksCurve) {
  FleetGenerator generator(3);
  // p(fail in window) = 1 - exp(-0.001 * 500) ~ 0.3935.
  DeviceCohort cohort{"test", 20000, std::make_shared<ConstantFaultCurve>(0.001), 0.0};
  const auto observations = generator.GenerateObservations(cohort, 500.0);
  int failures = 0;
  for (const auto& obs : observations) {
    failures += obs.failed ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(failures) / 20000.0, 0.3935, 0.01);
}

TEST(FleetGeneratorTest, RoundTripThroughEstimator) {
  // The end-to-end telemetry story: generate from a known curve, fit, compare (E11 core).
  FleetGenerator generator(4);
  const double true_afr = 0.04;
  DeviceCohort cohort{"st4000", 30000,
                      std::make_shared<ConstantFaultCurve>(RateFromAfr(true_afr)), 0.0};
  const auto observations = generator.GenerateObservations(cohort, kHoursPerYear);
  const auto fitted = FitExponential(observations);
  ASSERT_TRUE(fitted.ok());
  EXPECT_NEAR(AfrFromRate(fitted->rate()), true_afr, 0.003);
}

TEST(FleetGeneratorTest, WeibullCohortRoundTrip) {
  FleetGenerator generator(5);
  DeviceCohort cohort{"wd-new", 20000,
                      std::make_shared<WeibullFaultCurve>(0.6, 4.0e5), 0.0};
  const auto observations = generator.GenerateObservations(cohort, 20000.0);
  const auto fitted = FitWeibull(observations);
  ASSERT_TRUE(fitted.ok());
  EXPECT_NEAR(fitted->shape(), 0.6, 0.05);
}

TEST(FleetGeneratorTest, SyntheticFleetHasHeterogeneousCohorts) {
  const auto fleet = FleetGenerator::SyntheticDriveStatsFleet();
  ASSERT_GE(fleet.size(), 4u);
  for (const auto& cohort : fleet) {
    EXPECT_GT(cohort.count, 0);
    ASSERT_NE(cohort.curve, nullptr);
  }
  // Hazards over the first year differ across cohorts (the §2 heterogeneity).
  const double h0 = fleet[0].curve->FailureProbability(0.0, kHoursPerYear);
  const double h1 = fleet[1].curve->FailureProbability(0.0, kHoursPerYear);
  EXPECT_GT(h1, h0 * 2.0);
}

TEST(SpotEvictionTest, TraceWithinDuration) {
  Rng rng(6);
  const auto trace = GenerateSpotEvictionTrace(rng, 24.0 * 30, 0.02, 5.0);
  EXPECT_FALSE(trace.empty());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_GE(trace[i], 0.0);
    EXPECT_LE(trace[i], 24.0 * 30);
    if (i > 0) {
      EXPECT_GE(trace[i], trace[i - 1]);  // Sorted arrival order.
    }
  }
}

TEST(SpotEvictionTest, PeaksConcentrateEvictions) {
  Rng rng(7);
  const auto trace = GenerateSpotEvictionTrace(rng, 24.0 * 200, 0.05, 10.0);
  // Count events near the 10:00 peak vs the 03:00 trough.
  int peak = 0;
  int trough = 0;
  for (const double t : trace) {
    const double hour = std::fmod(t, 24.0);
    if (hour >= 9.0 && hour < 11.0) {
      ++peak;
    } else if (hour >= 2.0 && hour < 4.0) {
      ++trough;
    }
  }
  EXPECT_GT(peak, trough * 2);
}

TEST(SpotEvictionTest, EmpiricalProbabilityScalesWithWindow) {
  Rng rng(8);
  const double duration = 24.0 * 100;
  const auto trace = GenerateSpotEvictionTrace(rng, duration, 0.1, 2.0);
  const double day = EmpiricalEvictionProbability(trace, duration, 10, 24.0);
  const double week = EmpiricalEvictionProbability(trace, duration, 10, 168.0);
  EXPECT_GT(week, day);
  EXPECT_GT(day, 0.0);
  EXPECT_LT(week, 1.0);
}

TEST(ShockScheduleTest, ShocksHitExpectedFraction) {
  Rng rng(9);
  const auto shocks = GenerateShockSchedule(rng, 10000.0, 0.01, 20, 0.3);
  EXPECT_FALSE(shocks.empty());
  double total_victims = 0.0;
  for (const auto& shock : shocks) {
    EXPECT_GE(shock.when, 0.0);
    EXPECT_LE(shock.when, 10000.0);
    EXPECT_FALSE(shock.victims.empty());
    total_victims += static_cast<double>(shock.victims.size());
  }
  EXPECT_NEAR(total_victims / static_cast<double>(shocks.size()), 20 * 0.3, 1.0);
}

TEST(ShockScheduleTest, ZeroHitProbabilityMeansNoShocks) {
  Rng rng(10);
  const auto shocks = GenerateShockSchedule(rng, 1000.0, 0.1, 10, 0.0);
  EXPECT_TRUE(shocks.empty());
}

}  // namespace
}  // namespace probcon
