#include <gtest/gtest.h>

#include "src/consensus/raft/raft_cluster.h"

namespace probcon {
namespace {

RaftClusterOptions SnapshotOptions(uint64_t seed, uint64_t threshold) {
  RaftClusterOptions options;
  options.config = RaftConfig::Standard(3);
  options.timing.snapshot_threshold = threshold;
  options.seed = seed;
  options.client_interval = 30.0;
  return options;
}

TEST(RaftSnapshotTest, CompactionKeepsClusterSafeAndLive) {
  RaftCluster cluster(SnapshotOptions(1, 50));
  cluster.Start();
  cluster.RunUntil(20'000.0);
  EXPECT_TRUE(cluster.checker().safe());
  EXPECT_GT(cluster.checker().committed_slots(), 300u);
  // Compaction actually happened and bounded the retained log.
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(cluster.node(i).snapshot_last_index(), 0u) << i;
    EXPECT_LT(cluster.node(i).log().size(), 200u) << i;
  }
}

TEST(RaftSnapshotTest, DisabledThresholdNeverCompacts) {
  RaftCluster cluster(SnapshotOptions(2, 0));
  cluster.Start();
  cluster.RunUntil(5'000.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.node(i).snapshot_last_index(), 0u);
  }
}

TEST(RaftSnapshotTest, StragglerCatchesUpViaInstallSnapshot) {
  RaftCluster cluster(SnapshotOptions(3, 40));
  cluster.Start();
  cluster.RunUntil(1'000.0);
  // Take one follower down long enough that the leader compacts past its log.
  const int leader = cluster.LeaderId();
  ASSERT_GE(leader, 0);
  const int straggler = (leader + 1) % 3;
  cluster.node(straggler).Crash();
  cluster.RunUntil(15'000.0);

  cluster.node(straggler).Recover();
  cluster.RunUntil(30'000.0);
  EXPECT_TRUE(cluster.checker().safe());
  // The straggler must have adopted a snapshot (its own log cannot reach back to slot 1).
  EXPECT_GT(cluster.node(straggler).snapshot_last_index(), 0u);
  // And caught up to within a heartbeat of the cluster.
  const uint64_t cluster_commit = cluster.checker().max_committed_slot();
  EXPECT_GT(cluster.node(straggler).commit_index() + 50, cluster_commit);
}

TEST(RaftSnapshotTest, SnapshotSurvivesCrashRecover) {
  RaftCluster cluster(SnapshotOptions(4, 30));
  cluster.Start();
  cluster.RunUntil(8'000.0);
  const uint64_t before = cluster.node(0).snapshot_last_index();
  ASSERT_GT(before, 0u);
  cluster.node(0).Crash();
  cluster.simulator().Run(cluster.simulator().Now() + 500.0);
  cluster.node(0).Recover();
  // Durable snapshot state restored; commit index starts from it, not zero.
  EXPECT_GE(cluster.node(0).snapshot_last_index(), before);
  EXPECT_GE(cluster.node(0).commit_index(), before);
  cluster.RunUntil(20'000.0);
  EXPECT_TRUE(cluster.checker().safe());
}

TEST(RaftSnapshotTest, ChurnWithCompactionStaysConsistent) {
  RaftCluster cluster(SnapshotOptions(5, 25));
  cluster.Start();
  // Rolling restarts across the whole cluster while compaction churns.
  for (int round = 0; round < 6; ++round) {
    const int victim = round % 3;
    cluster.simulator().ScheduleAt(2'000.0 + 3'000.0 * round, [&cluster, victim]() {
      if (!cluster.node(victim).crashed()) {
        cluster.node(victim).Crash();
      }
    });
    cluster.simulator().ScheduleAt(3'500.0 + 3'000.0 * round, [&cluster, victim]() {
      if (cluster.node(victim).crashed()) {
        cluster.node(victim).Recover();
      }
    });
  }
  cluster.RunUntil(40'000.0);
  EXPECT_TRUE(cluster.checker().safe());
  EXPECT_GT(cluster.checker().committed_slots(), 400u);
}

}  // namespace
}  // namespace probcon
