#include <gtest/gtest.h>

#include "src/consensus/pbft/pbft_cluster.h"

namespace probcon {
namespace {

PbftClusterOptions CheckpointOptions(uint64_t seed, uint64_t interval) {
  PbftClusterOptions options;
  options.config = PbftConfig::Standard(4);
  options.timing.checkpoint_interval = interval;
  options.seed = seed;
  options.client_interval = 40.0;
  return options;
}

TEST(PbftCheckpointTest, GarbageCollectionBoundsSlotState) {
  PbftCluster cluster(CheckpointOptions(1, 20));
  cluster.Start();
  cluster.RunUntil(20'000.0);
  EXPECT_TRUE(cluster.checker().safe());
  EXPECT_GT(cluster.checker().committed_slots(), 200u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_GT(cluster.node(i).stable_checkpoint(), 100u) << i;
    // Retained state is bounded near the checkpoint interval, not the full history.
    EXPECT_LT(cluster.node(i).retained_slot_count(), 120u) << i;
  }
}

TEST(PbftCheckpointTest, DisabledIntervalRetainsEverything) {
  PbftCluster cluster(CheckpointOptions(2, 0));
  cluster.Start();
  cluster.RunUntil(10'000.0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.node(i).stable_checkpoint(), 0u);
    EXPECT_GE(cluster.node(i).retained_slot_count(),
              cluster.node(i).executed_count());
  }
}

TEST(PbftCheckpointTest, LaggardAdoptsCertifiedCheckpoint) {
  PbftCluster cluster(CheckpointOptions(3, 20));
  cluster.Start();
  cluster.RunUntil(1'000.0);
  cluster.node(3).Crash();
  cluster.RunUntil(12'000.0);
  const uint64_t frontier = cluster.checker().max_committed_slot();
  ASSERT_GT(frontier, 100u);
  cluster.node(3).Recover();
  cluster.RunUntil(30'000.0);
  EXPECT_TRUE(cluster.checker().safe());
  // The recovered replica jumped to a certified checkpoint and kept executing.
  EXPECT_GT(cluster.node(3).stable_checkpoint(), 50u);
  EXPECT_GT(cluster.node(3).executed_count(), frontier);
}

TEST(PbftCheckpointTest, SurvivesViewChangeWithGc) {
  PbftClusterOptions options = CheckpointOptions(4, 15);
  options.behaviors = {ByzantineBehavior::kSilent, ByzantineBehavior::kHonest,
                       ByzantineBehavior::kHonest, ByzantineBehavior::kHonest};
  PbftCluster cluster(options);
  cluster.Start();
  cluster.RunUntil(25'000.0);
  EXPECT_TRUE(cluster.checker().safe());
  EXPECT_GT(cluster.checker().committed_slots(), 50u);  // View >= 1 made progress.
  for (int i = 1; i < 4; ++i) {
    EXPECT_GT(cluster.node(i).stable_checkpoint(), 0u) << i;
  }
}

TEST(PbftCheckpointTest, ByzantineVotersCannotForgeStableCheckpoint) {
  // Two Byzantine voters < q_per = 3 cannot certify a bogus checkpoint by themselves, so
  // honest replicas' stable points never exceed what was actually executed.
  PbftClusterOptions options = CheckpointOptions(5, 10);
  options.behaviors = {ByzantineBehavior::kHonest, ByzantineBehavior::kHonest,
                       ByzantineBehavior::kPromiscuous, ByzantineBehavior::kSilent};
  PbftCluster cluster(options);
  cluster.Start();
  cluster.RunUntil(15'000.0);
  for (int i = 0; i < 2; ++i) {
    EXPECT_LE(cluster.node(i).stable_checkpoint(), cluster.node(i).executed_count()) << i;
  }
  EXPECT_TRUE(cluster.checker().safe());
}

}  // namespace
}  // namespace probcon
