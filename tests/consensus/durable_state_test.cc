#include "src/consensus/common/durable_state.h"

#include <string>

#include <gtest/gtest.h>

namespace probcon {
namespace {

TEST(DurableCellTest, WriteThroughNeverLosesAnything) {
  DurableCell<int> cell;
  for (int i = 1; i <= 10; ++i) {
    cell.Write(i);
  }
  EXPECT_EQ(cell.unsynced_writes(), 0u);
  EXPECT_EQ(cell.Restore(), 0u);
  EXPECT_EQ(cell.latest(), 10);
  EXPECT_EQ(cell.synced(), 10);
}

TEST(DurableCellTest, BatchedPolicyLosesTheUnsyncedSuffix) {
  DurableCell<int> cell;
  cell.SetPolicy(DurabilityPolicy::Batched(5));
  for (int i = 1; i <= 7; ++i) {
    cell.Write(i);
  }
  // Writes 1-5 auto-synced when the batch filled; 6 and 7 sit in the page cache.
  EXPECT_EQ(cell.synced(), 5);
  EXPECT_EQ(cell.latest(), 7);
  EXPECT_EQ(cell.unsynced_writes(), 2u);
  EXPECT_EQ(cell.Restore(), 2u);  // The crash forgets 6 and 7.
  EXPECT_EQ(cell.latest(), 5);
  EXPECT_EQ(cell.lost_writes(), 2u);
}

TEST(DurableCellTest, ExplicitSyncFlushesTheBatch) {
  DurableCell<int> cell;
  cell.SetPolicy(DurabilityPolicy::Batched(100));
  cell.Write(1);
  cell.Write(2);
  cell.Sync();
  EXPECT_EQ(cell.Restore(), 0u);
  EXPECT_EQ(cell.latest(), 2);
}

TEST(DurableCellTest, RestoreIsIdempotent) {
  DurableCell<std::string> cell;
  cell.SetPolicy(DurabilityPolicy::Batched(10));
  cell.Write("synced");
  cell.Sync();
  cell.Write("lost");
  EXPECT_EQ(cell.Restore(), 1u);
  EXPECT_EQ(cell.Restore(), 0u);  // Restart of a restart: nothing further to forget.
  EXPECT_EQ(cell.latest(), "synced");
}

TEST(DurableCellTest, TighteningThePolicyDoesNotRetroactivelySync) {
  DurableCell<int> cell;
  cell.SetPolicy(DurabilityPolicy::Batched(10));
  cell.Write(1);
  cell.SetPolicy(DurabilityPolicy::WriteThrough());
  EXPECT_EQ(cell.unsynced_writes(), 1u);  // The buffered write is still exposed...
  cell.Write(2);                          // ...until the next write-through syncs everything.
  EXPECT_EQ(cell.unsynced_writes(), 0u);
  EXPECT_EQ(cell.synced(), 2);
}

}  // namespace
}  // namespace probcon
