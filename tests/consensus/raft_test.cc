#include "src/consensus/raft/raft_cluster.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/faultmodel/fault_curve.h"
#include "src/sim/failure_injector.h"

namespace probcon {
namespace {

RaftClusterOptions DefaultOptions(int n, uint64_t seed) {
  RaftClusterOptions options;
  options.config = RaftConfig::Standard(n);
  options.seed = seed;
  return options;
}

TEST(RaftTest, ElectsExactlyOneLeader) {
  RaftCluster cluster(DefaultOptions(5, 1));
  cluster.Start();
  cluster.RunUntil(2'000.0);
  int leaders = 0;
  for (int i = 0; i < 5; ++i) {
    if (cluster.node(i).is_leader()) {
      ++leaders;
    }
  }
  EXPECT_EQ(leaders, 1);
}

TEST(RaftTest, CommitsClientCommands) {
  RaftCluster cluster(DefaultOptions(3, 2));
  cluster.Start();
  cluster.RunUntil(10'000.0);
  EXPECT_GT(cluster.checker().committed_slots(), 50u);
  EXPECT_TRUE(cluster.checker().safe());
}

TEST(RaftTest, AllNodesConvergeOnTheLog) {
  RaftCluster cluster(DefaultOptions(5, 3));
  cluster.Start();
  cluster.RunUntil(5'000.0);
  // Every pair of nodes agrees on the committed prefix (checker enforces it, but also check
  // the logs directly).
  const auto& reference = cluster.node(0).log();
  for (int i = 1; i < 5; ++i) {
    const auto& log = cluster.node(i).log();
    const size_t shared = std::min(
        {log.size(), reference.size(), static_cast<size_t>(cluster.node(i).commit_index()),
         static_cast<size_t>(cluster.node(0).commit_index())});
    for (size_t slot = 0; slot < shared; ++slot) {
      EXPECT_EQ(log[slot], reference[slot]) << "node " << i << " slot " << slot;
    }
  }
}

TEST(RaftTest, SurvivesLeaderCrash) {
  RaftCluster cluster(DefaultOptions(5, 4));
  cluster.Start();
  cluster.RunUntil(2'000.0);
  const int leader = cluster.LeaderId();
  ASSERT_GE(leader, 0);
  const uint64_t before = cluster.checker().committed_slots();
  cluster.node(leader).Crash();
  cluster.RunUntil(12'000.0);
  EXPECT_GT(cluster.checker().committed_slots(), before + 20);
  EXPECT_TRUE(cluster.checker().safe());
  const int new_leader = cluster.LeaderId();
  EXPECT_GE(new_leader, 0);
  EXPECT_NE(new_leader, leader);
}

TEST(RaftTest, MinorityCrashKeepsLiveness) {
  RaftCluster cluster(DefaultOptions(5, 5));
  cluster.Start();
  cluster.RunUntil(1'000.0);
  cluster.node(0).Crash();
  cluster.node(1).Crash();
  const uint64_t before = cluster.checker().committed_slots();
  cluster.RunUntil(15'000.0);
  EXPECT_GT(cluster.checker().committed_slots(), before + 20);
  EXPECT_TRUE(cluster.checker().safe());
}

TEST(RaftTest, MajorityCrashHaltsProgressWithoutUnsafety) {
  RaftCluster cluster(DefaultOptions(5, 6));
  cluster.Start();
  cluster.RunUntil(2'000.0);
  cluster.node(0).Crash();
  cluster.node(1).Crash();
  cluster.node(2).Crash();
  cluster.RunUntil(4'000.0);  // Let in-flight commits settle.
  const uint64_t stalled_at = cluster.checker().max_committed_slot();
  cluster.RunUntil(20'000.0);
  // Some straggler commits of already-replicated entries may land, but no new slots commit.
  EXPECT_LE(cluster.checker().max_committed_slot(), stalled_at + 1);
  EXPECT_TRUE(cluster.checker().safe());
}

TEST(RaftTest, CrashedLeaderRecoversAndRejoins) {
  RaftCluster cluster(DefaultOptions(3, 7));
  cluster.Start();
  cluster.RunUntil(2'000.0);
  const int leader = cluster.LeaderId();
  ASSERT_GE(leader, 0);
  cluster.node(leader).Crash();
  cluster.RunUntil(6'000.0);
  cluster.node(leader).Recover();
  cluster.RunUntil(14'000.0);
  EXPECT_TRUE(cluster.checker().safe());
  // The recovered node catches up with the committed prefix.
  EXPECT_GT(cluster.node(leader).commit_index(), 0u);
}

TEST(RaftTest, PartitionedMinorityCannotCommit) {
  RaftCluster cluster(DefaultOptions(5, 8));
  cluster.Start();
  cluster.RunUntil(2'000.0);
  // Cut nodes {0,1} off.
  cluster.network().SetPartition({1, 1, 0, 0, 0});
  cluster.RunUntil(10'000.0);
  cluster.network().ClearPartition();
  cluster.RunUntil(20'000.0);
  EXPECT_TRUE(cluster.checker().safe());
  EXPECT_GT(cluster.checker().committed_slots(), 100u);
}

TEST(RaftTest, FlexibleQuorumsSafeVariant) {
  // q_per=2, q_vc=4 on n=5 satisfies Theorem 3.2; must behave safely.
  RaftClusterOptions options = DefaultOptions(5, 9);
  options.config = RaftConfig{5, 2, 4};
  RaftCluster cluster(options);
  cluster.Start();
  cluster.RunUntil(10'000.0);
  EXPECT_TRUE(cluster.checker().safe());
  EXPECT_GT(cluster.checker().committed_slots(), 50u);
}

TEST(RaftTest, TheoremViolatingQuorumsProduceRealViolations) {
  // q_vc=2 on n=5 lets two leaders coexist in disjoint vote sets (N >= 2*q_vc). With
  // repeated crash-recovery churn this manifests as conflicting commits. This is E8's
  // negative control: the SafetyChecker must catch the analytical prediction coming true.
  int violating_runs = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    RaftClusterOptions options = DefaultOptions(5, seed * 101);
    options.config = RaftConfig{5, 2, 2};  // Unsafe: quorums need not intersect.
    RaftCluster cluster(options);
    cluster.Start();
    // Partition into two halves able to elect independently, then heal.
    cluster.RunUntil(1'000.0);
    cluster.network().SetPartition({0, 0, 1, 1, 1});
    cluster.RunUntil(6'000.0);
    cluster.network().ClearPartition();
    cluster.RunUntil(12'000.0);
    if (!cluster.checker().safe()) {
      ++violating_runs;
    }
  }
  EXPECT_GT(violating_runs, 0);
}

TEST(RaftTest, DeterministicGivenSeed) {
  auto run = [](uint64_t seed) {
    RaftCluster cluster(DefaultOptions(3, seed));
    cluster.Start();
    cluster.RunUntil(5'000.0);
    return cluster.checker().committed_slots();
  };
  EXPECT_EQ(run(42), run(42));
}

TEST(RaftTest, CommitLatencyIsBounded) {
  RaftCluster cluster(DefaultOptions(3, 10));
  cluster.Start();
  cluster.RunUntil(20'000.0);
  ASSERT_FALSE(cluster.checker().commit_latency().empty());
  // One round trip at 5-15ms per hop: mean well under 100ms in the steady state.
  EXPECT_LT(cluster.checker().commit_latency().Mean(), 100.0);
}

TEST(RaftTest, WorksUnderMessageLoss) {
  RaftClusterOptions options = DefaultOptions(3, 11);
  options.network_drop_probability = 0.05;
  RaftCluster cluster(options);
  cluster.Start();
  cluster.RunUntil(20'000.0);
  EXPECT_TRUE(cluster.checker().safe());
  EXPECT_GT(cluster.checker().committed_slots(), 30u);
}

TEST(RaftTest, FaultCurveDrivenChurnStaysSafe) {
  RaftCluster cluster(DefaultOptions(5, 12));
  std::vector<std::unique_ptr<FaultCurve>> curves;
  for (int i = 0; i < 5; ++i) {
    curves.push_back(std::make_unique<ConstantFaultCurve>(
        ConstantFaultCurve::FromWindowProbability(0.5, 30'000.0)));
  }
  FailureInjector injector(&cluster.simulator(), cluster.processes(), std::move(curves),
                           /*repair_rate=*/1.0 / 2'000.0);
  cluster.Start();
  injector.Arm();
  cluster.RunUntil(60'000.0);
  EXPECT_TRUE(cluster.checker().safe());
  EXPECT_GT(injector.crash_count(), 0);
}

}  // namespace
}  // namespace probcon
