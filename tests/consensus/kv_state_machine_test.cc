#include "src/consensus/common/kv_state_machine.h"

#include <gtest/gtest.h>

namespace probcon {
namespace {

TEST(KvStateMachineTest, PutGet) {
  KvStateMachine kv;
  EXPECT_EQ(kv.Apply(MakePut(1, "a", "1")), "ok");
  EXPECT_EQ(kv.Apply(MakeGet(2, "a")), "1");
  EXPECT_EQ(kv.Apply(MakeGet(3, "missing")), "<nil>");
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStateMachineTest, PutOverwrites) {
  KvStateMachine kv;
  kv.Apply(MakePut(1, "a", "1"));
  kv.Apply(MakePut(2, "a", "2"));
  EXPECT_EQ(*kv.Get("a"), "2");
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStateMachineTest, Delete) {
  KvStateMachine kv;
  kv.Apply(MakePut(1, "a", "1"));
  EXPECT_EQ(kv.Apply(MakeDel(2, "a")), "ok");
  EXPECT_EQ(kv.Apply(MakeDel(3, "a")), "<nil>");
  EXPECT_FALSE(kv.Get("a").has_value());
}

TEST(KvStateMachineTest, CompareAndSwap) {
  KvStateMachine kv;
  kv.Apply(MakePut(1, "lock", "free"));
  EXPECT_EQ(kv.Apply(MakeCas(2, "lock", "free", "held")), "ok");
  EXPECT_EQ(kv.Apply(MakeCas(3, "lock", "free", "held")), "fail");
  EXPECT_EQ(*kv.Get("lock"), "held");
  EXPECT_EQ(kv.Apply(MakeCas(4, "absent", "x", "y")), "fail");
}

TEST(KvStateMachineTest, MalformedCommandsAreDeterministicNoOps) {
  KvStateMachine kv;
  EXPECT_EQ(kv.Apply(Command{1, ""}), "<err>");
  EXPECT_EQ(kv.Apply(Command{2, "boom"}), "<err>");
  EXPECT_EQ(kv.Apply(Command{3, "put onlykey"}), "<err>");
  EXPECT_EQ(kv.size(), 0u);
  EXPECT_EQ(kv.applied_count(), 3u);
}

TEST(KvStateMachineTest, SameCommandSequenceSameDigest) {
  KvStateMachine a;
  KvStateMachine b;
  const Command script[] = {MakePut(1, "x", "1"), MakePut(2, "y", "2"), MakeDel(3, "x"),
                            MakeCas(4, "y", "2", "3")};
  for (const auto& command : script) {
    a.Apply(command);
    b.Apply(command);
  }
  EXPECT_EQ(a.Digest(), b.Digest());
}

TEST(KvStateMachineTest, DigestDetectsDivergence) {
  KvStateMachine a;
  KvStateMachine b;
  a.Apply(MakePut(1, "x", "1"));
  b.Apply(MakePut(1, "x", "2"));
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(KvStateMachineTest, DigestDetectsExtraCommands) {
  // Same final store, different histories -> different digests (applied_count matters).
  KvStateMachine a;
  KvStateMachine b;
  a.Apply(MakePut(1, "x", "1"));
  b.Apply(MakePut(1, "x", "1"));
  b.Apply(MakeGet(2, "x"));  // Read-only, same store, extra command.
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(KvStateMachineTest, DigestFieldSeparation) {
  KvStateMachine a;
  KvStateMachine b;
  a.Apply(MakePut(1, "ab", "c"));
  b.Apply(MakePut(1, "a", "bc"));
  EXPECT_NE(a.Digest(), b.Digest());
}

}  // namespace
}  // namespace probcon
