// Crash-recovery with a lossy disk: a Raft follower running a batched-fsync policy crashes,
// restarts from its last-synced image (losing the unsynced log suffix), and must rejoin as a
// lagging follower — the leader's nextIndex backoff re-replicates the lost suffix, and the
// cluster keeps committing new entries safely.

#include <gtest/gtest.h>

#include "src/consensus/common/durable_state.h"
#include "src/consensus/raft/raft_cluster.h"

namespace probcon {
namespace {

TEST(RaftRecoveryTest, LossyRestartRejoinsAndCatchesUp) {
  RaftClusterOptions options;
  options.config = RaftConfig::Standard(3);
  options.seed = 11;
  RaftCluster cluster(options);
  cluster.Start();
  cluster.RunUntil(5'000.0);

  const int leader = cluster.LeaderId();
  ASSERT_GE(leader, 0);
  const int victim = (leader + 1) % 3;  // A follower.
  const uint64_t committed_before = cluster.checker().committed_slots();
  ASSERT_GT(committed_before, 0u);

  // The victim's storage stack degrades: fsync only every 20 writes from here on.
  cluster.node(victim).SetDurabilityPolicy(DurabilityPolicy::Batched(20));
  cluster.RunUntil(10'000.0);
  ASSERT_GT(cluster.node(victim).durable().unsynced_writes(), 0u)
      << "victim accumulated no unsynced state; scenario did not arm";
  const uint64_t log_before_crash = cluster.node(victim).log().size();

  cluster.processes()[victim]->Crash();
  cluster.simulator().Schedule(500.0, [&]() { cluster.processes()[victim]->Recover(); });
  cluster.RunUntil(11'000.0);

  // The restart rolled back to the synced image and counted the lost suffix. (Log size is
  // not asserted here: the leader may already have re-replicated part of it.)
  EXPECT_GT(cluster.node(victim).durable().lost_writes(), 0u);

  // The cluster keeps committing, and the victim catches back up from the leader.
  cluster.RunUntil(20'000.0);
  EXPECT_TRUE(cluster.checker().safe());
  EXPECT_GT(cluster.checker().committed_slots(), committed_before + 20);
  EXPECT_FALSE(cluster.node(victim).crashed());
  EXPECT_GE(cluster.node(victim).log().size(), log_before_crash)
      << "victim never re-fetched the lost suffix";
  EXPECT_GT(cluster.node(victim).commit_index(), committed_before);
}

TEST(RaftRecoveryTest, WriteThroughRestartLosesNothing) {
  RaftClusterOptions options;
  options.config = RaftConfig::Standard(3);
  options.seed = 13;
  RaftCluster cluster(options);
  cluster.Start();
  cluster.RunUntil(5'000.0);

  const int leader = cluster.LeaderId();
  ASSERT_GE(leader, 0);
  const int victim = (leader + 1) % 3;
  const uint64_t log_before = cluster.node(victim).log().size();

  cluster.processes()[victim]->Crash();
  cluster.simulator().Schedule(200.0, [&]() { cluster.processes()[victim]->Recover(); });
  cluster.RunUntil(6'000.0);

  EXPECT_EQ(cluster.node(victim).durable().lost_writes(), 0u);
  EXPECT_GE(cluster.node(victim).log().size(), log_before);  // Disk came back intact.
  cluster.RunUntil(12'000.0);
  EXPECT_TRUE(cluster.checker().safe());
}

}  // namespace
}  // namespace probcon
