// Cross-feature integration tests: the protocol extensions (reliability-aware policies, log
// compaction, linearizable reads) composed under failure churn, checked by the same global
// safety oracle as everything else.

#include <optional>

#include <gtest/gtest.h>

#include "src/consensus/raft/raft_cluster.h"
#include "src/faultmodel/fault_curve.h"
#include "src/probnative/reliability_aware_raft.h"
#include "src/sim/failure_injector.h"

namespace probcon {
namespace {

const std::vector<double> kMixedFleet = {0.002, 0.002, 0.02, 0.02, 0.02};

TEST(IntegrationTest, AwarePoliciesPlusCompactionUnderChurn) {
  RaftClusterOptions options;
  options.config = RaftConfig::Standard(5);
  options.policies = MakeReliabilityAwarePolicies(kMixedFleet, 2);
  options.timing.snapshot_threshold = 40;
  options.seed = 11;
  options.client_interval = 30.0;
  RaftCluster cluster(options);

  std::vector<std::unique_ptr<FaultCurve>> curves;
  for (int i = 0; i < 5; ++i) {
    curves.push_back(std::make_unique<ConstantFaultCurve>(
        ConstantFaultCurve::FromWindowProbability(0.4, 30'000.0)));
  }
  FailureInjector injector(&cluster.simulator(), cluster.processes(), std::move(curves),
                           /*repair_rate=*/1.0 / 2'000.0);
  cluster.Start();
  injector.Arm();
  cluster.RunUntil(90'000.0);

  EXPECT_TRUE(cluster.checker().safe());
  EXPECT_GT(cluster.checker().committed_slots(), 800u);
  EXPECT_GT(injector.crash_count(), 0);
  // Compaction ran on at least the stable nodes.
  int compacted = 0;
  for (int i = 0; i < 5; ++i) {
    compacted += cluster.node(i).snapshot_last_index() > 0 ? 1 : 0;
  }
  EXPECT_GE(compacted, 3);
}

TEST(IntegrationTest, LinearizableReadsDuringCompactionAndFailover) {
  RaftClusterOptions options;
  options.config = RaftConfig::Standard(5);
  options.timing.snapshot_threshold = 30;
  options.seed = 12;
  options.client_interval = 25.0;
  RaftCluster cluster(options);
  cluster.Start();
  cluster.RunUntil(3'000.0);

  // Issue reads periodically; crash the leader halfway; all served reads must be monotone
  // even across the failover.
  std::vector<uint64_t> served;
  for (int round = 0; round < 10; ++round) {
    cluster.simulator().ScheduleAt(3'000.0 + 800.0 * round, [&cluster, &served]() {
      const int leader = cluster.LeaderId();
      if (leader >= 0) {
        cluster.node(leader).RequestRead([&served](uint64_t index) {
          served.push_back(index);
        });
      }
    });
  }
  cluster.simulator().ScheduleAt(6'900.0, [&cluster]() {
    const int leader = cluster.LeaderId();
    if (leader >= 0) {
      cluster.node(leader).Crash();
    }
  });
  cluster.RunUntil(30'000.0);

  EXPECT_TRUE(cluster.checker().safe());
  ASSERT_GE(served.size(), 5u);
  for (size_t i = 1; i < served.size(); ++i) {
    EXPECT_GE(served[i], served[i - 1]) << i;
  }
}

TEST(IntegrationTest, DurableMemberConstraintHoldsThroughCompaction) {
  RaftClusterOptions options;
  options.config = RaftConfig::Standard(5);
  options.policies = MakeReliabilityAwarePolicies(kMixedFleet, 2);
  options.timing.snapshot_threshold = 25;
  options.seed = 13;
  RaftCluster cluster(options);
  cluster.Start();
  cluster.RunUntil(2'000.0);
  // With both durable members down, commits stall even though compaction continues to serve
  // snapshots to stragglers.
  cluster.node(0).Crash();
  cluster.node(1).Crash();
  cluster.RunUntil(4'000.0);
  const uint64_t stalled_at = cluster.checker().max_committed_slot();
  cluster.RunUntil(20'000.0);
  EXPECT_LE(cluster.checker().max_committed_slot(), stalled_at + 1);
  cluster.node(0).Recover();
  cluster.RunUntil(40'000.0);
  EXPECT_GT(cluster.checker().max_committed_slot(), stalled_at + 50);
  EXPECT_TRUE(cluster.checker().safe());
}

}  // namespace
}  // namespace probcon
