// At-least-once delivery coverage: every protocol must keep its guarantees when the network
// delivers messages twice and out of order. Duplicated client proposals must not commit the
// same command at two slots (leader-side dedup), duplicated votes/acks must not be
// double-counted toward quorums, and Byzantine behaviour composed with duplication must stay
// within the f-threshold's safety envelope.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/consensus/benor/benor_node.h"
#include "src/consensus/paxos/paxos_node.h"
#include "src/consensus/pbft/pbft_cluster.h"
#include "src/consensus/raft/raft_cluster.h"
#include "src/sim/network.h"

namespace probcon {
namespace {

constexpr double kDuplicateProbability = 0.35;
constexpr double kReorderProbability = 0.35;
constexpr SimTime kReorderWindow = 40.0;

TEST(DuplicateDeliveryTest, RaftCommitsEachCommandExactlyOnce) {
  RaftClusterOptions options;
  options.config = RaftConfig::Standard(5);
  options.seed = 41;
  RaftCluster cluster(options);
  cluster.network().SetDuplication(kDuplicateProbability);
  cluster.network().SetReordering(kReorderProbability, kReorderWindow);
  cluster.Start();
  cluster.RunUntil(30'000.0);

  EXPECT_TRUE(cluster.checker().safe());
  EXPECT_GT(cluster.checker().committed_slots(), 50u);
  EXPECT_GT(cluster.network().messages_duplicated(), 0u);
  EXPECT_GT(cluster.network().messages_reordered(), 0u);

  // No committed command occupies two slots on any node: a duplicated ClientProposal must
  // be deduplicated by the leader, not appended twice.
  for (int i = 0; i < cluster.size(); ++i) {
    const RaftNode& node = cluster.node(i);
    std::set<uint64_t> committed_ids;
    for (uint64_t index = 1; index <= node.commit_index(); ++index) {
      const uint64_t command_id = node.log()[index - 1].command.id;
      EXPECT_TRUE(committed_ids.insert(command_id).second)
          << "node " << i << " committed command " << command_id << " at two slots";
    }
  }
}

TEST(DuplicateDeliveryTest, PaxosDecidesOneValueUnderDuplication) {
  Simulator simulator(17);
  Network network(&simulator, 5, std::make_unique<UniformLatencyModel>(5.0, 15.0));
  network.SetDuplication(kDuplicateProbability);
  network.SetReordering(kReorderProbability, kReorderWindow);
  SafetyChecker checker(&simulator);
  const PaxosConfig config = PaxosConfig::Standard(5);
  std::vector<std::unique_ptr<PaxosNode>> nodes;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(std::make_unique<PaxosNode>(
        &simulator, &network, i, config, PaxosTimingConfig{}, &checker,
        Command{static_cast<uint64_t>(i) + 1, "v" + std::to_string(i)}));
  }
  for (auto& node : nodes) node->Start();
  simulator.Run(30'000.0);

  EXPECT_TRUE(checker.safe());
  int decided = 0;
  for (const auto& node : nodes) {
    if (node->decided()) ++decided;
  }
  EXPECT_EQ(decided, 5);  // Duplicated Promise/Accepted messages never stall or fork.
}

TEST(DuplicateDeliveryTest, BenOrAgreesUnderDuplication) {
  Simulator simulator(23);
  Network network(&simulator, 5, std::make_unique<UniformLatencyModel>(5.0, 15.0));
  network.SetDuplication(kDuplicateProbability);
  network.SetReordering(kReorderProbability, kReorderWindow);
  std::vector<std::unique_ptr<BenOrNode>> nodes;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(std::make_unique<BenOrNode>(&simulator, &network, i, /*fault_tolerance=*/2,
                                                /*initial_value=*/i % 2));
  }
  for (auto& node : nodes) node->Start();
  simulator.Run(60'000.0);

  int decided_value = -1;
  int decided = 0;
  for (const auto& node : nodes) {
    if (!node->decided()) continue;
    ++decided;
    if (decided_value == -1) decided_value = node->decision();
    EXPECT_EQ(node->decision(), decided_value);  // Agreement despite duplicated reports.
  }
  EXPECT_EQ(decided, 5);
}

TEST(DuplicateDeliveryTest, HonestPbftCommitsUnderDuplication) {
  PbftClusterOptions options;
  options.config = PbftConfig::Standard(4);
  options.seed = 29;
  PbftCluster cluster(options);
  cluster.network().SetDuplication(kDuplicateProbability);
  cluster.network().SetReordering(kReorderProbability, kReorderWindow);
  cluster.Start();
  cluster.RunUntil(20'000.0);

  EXPECT_TRUE(cluster.checker().safe());
  EXPECT_GT(cluster.checker().committed_slots(), 10u);
}

TEST(DuplicateDeliveryTest, EquivocatingPrimaryPlusDuplicationStaysSafe) {
  // The nastier composition: a Byzantine primary equivocates while the network also
  // duplicates — a duplicated conflicting pre-prepare must not help the equivocation reach
  // two prepare quorums. f = 1 at n = 4 must hold.
  for (uint64_t seed : {31u, 37u, 43u}) {
    PbftClusterOptions options;
    options.config = PbftConfig::Standard(4);
    options.seed = seed;
    options.behaviors = {ByzantineBehavior::kEquivocate, ByzantineBehavior::kHonest,
                         ByzantineBehavior::kHonest, ByzantineBehavior::kHonest};
    PbftCluster cluster(options);
    cluster.network().SetDuplication(kDuplicateProbability);
    cluster.network().SetReordering(kReorderProbability, kReorderWindow);
    cluster.Start();
    cluster.RunUntil(20'000.0);
    EXPECT_TRUE(cluster.checker().safe()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace probcon
