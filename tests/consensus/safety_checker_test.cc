#include "src/consensus/common/safety_checker.h"

#include <gtest/gtest.h>

namespace probcon {
namespace {

class SafetyCheckerTest : public ::testing::Test {
 protected:
  Simulator sim_{1};
  SafetyChecker checker_{&sim_};
};

TEST_F(SafetyCheckerTest, AgreementIsSafe) {
  const Command cmd{1, "x"};
  checker_.RecordCommit(0, 1, cmd);
  checker_.RecordCommit(1, 1, cmd);
  checker_.RecordCommit(2, 1, cmd);
  EXPECT_TRUE(checker_.safe());
  EXPECT_EQ(checker_.committed_slots(), 1u);
  EXPECT_EQ(checker_.total_commit_reports(), 3u);
}

TEST_F(SafetyCheckerTest, ConflictingCommitsAreViolations) {
  checker_.RecordCommit(0, 1, Command{1, "x"});
  checker_.RecordCommit(1, 1, Command{2, "y"});
  ASSERT_FALSE(checker_.safe());
  const auto& violation = checker_.violations().front();
  EXPECT_EQ(violation.slot, 1u);
  EXPECT_EQ(violation.first_command.id, 1u);
  EXPECT_EQ(violation.second_command.id, 2u);
  EXPECT_NE(violation.Describe().find("slot 1"), std::string::npos);
}

TEST_F(SafetyCheckerTest, SameSlotDifferentNodesSameCommandOk) {
  checker_.RecordCommit(0, 7, Command{9, "z"});
  checker_.RecordCommit(3, 7, Command{9, "z"});
  EXPECT_TRUE(checker_.safe());
}

TEST_F(SafetyCheckerTest, NodeChangingItsMindIsAViolation) {
  checker_.RecordCommit(0, 1, Command{1, "x"});
  checker_.RecordCommit(0, 1, Command{2, "y"});  // Same node, same slot, new command.
  EXPECT_FALSE(checker_.safe());
}

TEST_F(SafetyCheckerTest, IdempotentRecommitIsNotAViolation) {
  checker_.RecordCommit(0, 1, Command{1, "x"});
  checker_.RecordCommit(0, 1, Command{1, "x"});  // Recovery replay.
  EXPECT_TRUE(checker_.safe());
}

TEST_F(SafetyCheckerTest, DifferentSlotsNeverConflict) {
  checker_.RecordCommit(0, 1, Command{1, "x"});
  checker_.RecordCommit(1, 2, Command{2, "y"});
  EXPECT_TRUE(checker_.safe());
  EXPECT_EQ(checker_.max_committed_slot(), 2u);
}

TEST_F(SafetyCheckerTest, LatencyMeasuredFromSubmission) {
  const Command cmd{5, "op"};
  sim_.Schedule(10.0, [this, cmd]() { checker_.RecordSubmission(cmd); });
  sim_.Schedule(35.0, [this, cmd]() { checker_.RecordCommit(0, 1, cmd); });
  sim_.Schedule(60.0, [this, cmd]() { checker_.RecordCommit(1, 1, cmd); });  // Later copy.
  sim_.Run(100.0);
  ASSERT_EQ(checker_.commit_latency().count(), 1u);  // First commit only.
  EXPECT_DOUBLE_EQ(checker_.commit_latency().Mean(), 25.0);
}

TEST_F(SafetyCheckerTest, MaxCommittedSlotEmpty) {
  EXPECT_EQ(checker_.max_committed_slot(), 0u);
  EXPECT_EQ(checker_.committed_slots(), 0u);
}

}  // namespace
}  // namespace probcon
