#include "src/consensus/paxos/paxos_node.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace probcon {
namespace {

struct PaxosHarness {
  PaxosHarness(const PaxosConfig& config, uint64_t seed, double drop = 0.0)
      : simulator(seed),
        network(&simulator, config.n,
                std::make_unique<UniformLatencyModel>(5.0, 15.0, drop)),
        checker(&simulator) {
    for (int i = 0; i < config.n; ++i) {
      Command proposal{static_cast<uint64_t>(i + 1), "value-" + std::to_string(i)};
      nodes.push_back(std::make_unique<PaxosNode>(&simulator, &network, i, config,
                                                  PaxosTimingConfig{}, &checker, proposal));
    }
    for (auto& node : nodes) {
      node->Start();
    }
  }

  int DecidedCount() const {
    int count = 0;
    for (const auto& node : nodes) {
      if (!node->crashed() && node->decided()) {
        ++count;
      }
    }
    return count;
  }

  Simulator simulator;
  Network network;
  SafetyChecker checker;
  std::vector<std::unique_ptr<PaxosNode>> nodes;
};

TEST(PaxosTest, AllNodesDecideTheSameValue) {
  PaxosHarness harness(PaxosConfig::Standard(5), 1);
  harness.simulator.Run(30'000.0);
  EXPECT_EQ(harness.DecidedCount(), 5);
  EXPECT_TRUE(harness.checker.safe());
}

TEST(PaxosTest, DecisionIsSomeProposedValue) {
  PaxosHarness harness(PaxosConfig::Standard(3), 2);
  harness.simulator.Run(30'000.0);
  ASSERT_TRUE(harness.nodes[0]->decided());
  const uint64_t decided_id = harness.nodes[0]->decision().id;
  EXPECT_GE(decided_id, 1u);
  EXPECT_LE(decided_id, 3u);  // Validity: one of the proposals.
}

class PaxosSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PaxosSeedSweep, AgreementAcrossSeeds) {
  PaxosHarness harness(PaxosConfig::Standard(5), GetParam());
  harness.simulator.Run(60'000.0);
  EXPECT_GE(harness.DecidedCount(), 5);
  EXPECT_TRUE(harness.checker.safe());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaxosSeedSweep,
                         ::testing::Values(3, 7, 11, 19, 23, 31, 43, 59));

TEST(PaxosTest, SurvivesMinorityCrashes) {
  PaxosHarness harness(PaxosConfig::Standard(5), 4);
  harness.simulator.Schedule(5.0, [&harness]() {
    harness.nodes[0]->Crash();
    harness.nodes[1]->Crash();
  });
  harness.simulator.Run(60'000.0);
  EXPECT_EQ(harness.DecidedCount(), 3);
  EXPECT_TRUE(harness.checker.safe());
}

TEST(PaxosTest, MajorityCrashBlocksDecision) {
  PaxosHarness harness(PaxosConfig::Standard(5), 5);
  harness.simulator.Schedule(1.0, [&harness]() {
    harness.nodes[0]->Crash();
    harness.nodes[1]->Crash();
    harness.nodes[2]->Crash();
  });
  harness.simulator.Run(30'000.0);
  EXPECT_EQ(harness.DecidedCount(), 0);
  EXPECT_TRUE(harness.checker.safe());
}

TEST(PaxosTest, RecoveredAcceptorKeepsItsPromises) {
  PaxosHarness harness(PaxosConfig::Standard(3), 6);
  harness.simulator.Schedule(50.0, [&harness]() { harness.nodes[2]->Crash(); });
  harness.simulator.Schedule(2'000.0, [&harness]() { harness.nodes[2]->Recover(); });
  harness.simulator.Run(60'000.0);
  EXPECT_EQ(harness.DecidedCount(), 3);
  EXPECT_TRUE(harness.checker.safe());
}

TEST(PaxosTest, DuelingProposersConverge) {
  // Zero initial delay spread forces every node to propose at once; backoff must break the
  // ties eventually.
  PaxosConfig config = PaxosConfig::Standard(5);
  Simulator simulator(7);
  Network network(&simulator, 5, std::make_unique<UniformLatencyModel>(5.0, 15.0));
  SafetyChecker checker(&simulator);
  PaxosTimingConfig timing;
  timing.initial_delay_max = 0.001;
  std::vector<std::unique_ptr<PaxosNode>> nodes;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(std::make_unique<PaxosNode>(
        &simulator, &network, i, config, timing, &checker,
        Command{static_cast<uint64_t>(i + 1), "v"}));
  }
  for (auto& node : nodes) {
    node->Start();
  }
  simulator.Run(120'000.0);
  int decided = 0;
  for (const auto& node : nodes) {
    decided += node->decided() ? 1 : 0;
  }
  EXPECT_EQ(decided, 5);
  EXPECT_TRUE(checker.safe());
}

TEST(PaxosTest, FlexibleQuorumsSafeWhenTheyIntersect) {
  // q1=2, q2=4 on n=5: q1+q2 > n, structurally safe per Flexible Paxos.
  PaxosConfig config{5, 2, 4};
  ASSERT_TRUE(config.IsStructurallySafe());
  PaxosHarness harness(config, 8);
  harness.simulator.Run(60'000.0);
  EXPECT_GE(harness.DecidedCount(), 4);
  EXPECT_TRUE(harness.checker.safe());
}

TEST(PaxosTest, NonIntersectingQuorumsViolateSafetyUnderPartition) {
  // q1=2, q2=2 on n=5: q1+q2 <= n. Two partitioned proposers can each assemble disjoint
  // quorums and decide different values.
  PaxosConfig config{5, 2, 2};
  ASSERT_FALSE(config.IsStructurallySafe());
  int violations = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    PaxosHarness harness(config, seed * 97);
    harness.network.SetPartition({0, 0, 1, 1, 1});
    harness.simulator.Run(20'000.0);
    harness.network.ClearPartition();
    harness.simulator.Run(40'000.0);
    if (!harness.checker.safe()) {
      ++violations;
    }
  }
  EXPECT_GT(violations, 5);
}

TEST(PaxosTest, ToleratesMessageLoss) {
  PaxosHarness harness(PaxosConfig::Standard(5), 9, /*drop=*/0.05);
  harness.simulator.Run(120'000.0);
  EXPECT_GE(harness.DecidedCount(), 4);
  EXPECT_TRUE(harness.checker.safe());
}

TEST(PaxosTest, DeterministicGivenSeed) {
  auto run = [](uint64_t seed) {
    PaxosHarness harness(PaxosConfig::Standard(3), seed);
    harness.simulator.Run(30'000.0);
    return harness.nodes[0]->decided() ? harness.nodes[0]->decision().id : 0;
  };
  EXPECT_EQ(run(55), run(55));
}

}  // namespace
}  // namespace probcon
