#include "src/consensus/benor/benor_node.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace probcon {
namespace {

struct BenOrHarness {
  BenOrHarness(int n, int f, const std::vector<int>& inputs, uint64_t seed)
      : simulator(seed),
        network(&simulator, n, std::make_unique<UniformLatencyModel>(5.0, 15.0)) {
    for (int i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<BenOrNode>(&simulator, &network, i, f, inputs[i]));
    }
    for (auto& node : nodes) {
      node->Start();
    }
  }

  // Returns true if all surviving nodes decided, and they all agree.
  bool AllSurvivorsAgree() const {
    int decided_value = -1;
    for (const auto& node : nodes) {
      if (node->crashed()) {
        continue;
      }
      if (!node->decided()) {
        return false;
      }
      if (decided_value == -1) {
        decided_value = node->decision();
      } else if (node->decision() != decided_value) {
        return false;
      }
    }
    return decided_value != -1;
  }

  Simulator simulator;
  Network network;
  std::vector<std::unique_ptr<BenOrNode>> nodes;
};

TEST(BenOrTest, UnanimousInputDecidesThatValueInOneRound) {
  for (const int value : {0, 1}) {
    BenOrHarness harness(5, 2, std::vector<int>(5, value), 1);
    harness.simulator.Run(10'000.0);
    EXPECT_TRUE(harness.AllSurvivorsAgree());
    for (const auto& node : harness.nodes) {
      EXPECT_EQ(node->decision(), value);
      EXPECT_EQ(node->decision_round(), 1u);  // Validity, immediately.
    }
  }
}

TEST(BenOrTest, MixedInputsReachAgreement) {
  BenOrHarness harness(5, 2, {0, 1, 0, 1, 1}, 2);
  harness.simulator.Run(60'000.0);
  EXPECT_TRUE(harness.AllSurvivorsAgree());
}

class BenOrSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BenOrSeedSweep, AgreementAcrossSeeds) {
  BenOrHarness harness(7, 3, {0, 1, 0, 1, 0, 1, 0}, GetParam());
  harness.simulator.Run(120'000.0);
  EXPECT_TRUE(harness.AllSurvivorsAgree());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BenOrSeedSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(BenOrTest, ToleratesFCrashes) {
  BenOrHarness harness(7, 3, {0, 1, 1, 0, 1, 0, 1}, 3);
  harness.simulator.Schedule(5.0, [&]() {
    harness.nodes[0]->Crash();
    harness.nodes[1]->Crash();
    harness.nodes[2]->Crash();
  });
  harness.simulator.Run(120'000.0);
  EXPECT_TRUE(harness.AllSurvivorsAgree());
}

TEST(BenOrTest, MajorityInputTendsToWin) {
  // With 6 of 7 proposing 1, phase 1 sees a majority of 1s and decides 1.
  BenOrHarness harness(7, 3, {0, 1, 1, 1, 1, 1, 1}, 4);
  harness.simulator.Run(60'000.0);
  EXPECT_TRUE(harness.AllSurvivorsAgree());
  for (const auto& node : harness.nodes) {
    EXPECT_EQ(node->decision(), 1);
  }
}

TEST(BenOrTest, DecisionRoundsAreSmallUnderRandomScheduling) {
  // The exponential worst case needs an adversary; random schedules decide fast.
  uint64_t max_round = 0;
  for (uint64_t seed = 100; seed < 110; ++seed) {
    BenOrHarness harness(5, 2, {0, 1, 0, 1, 0}, seed);
    harness.simulator.Run(120'000.0);
    ASSERT_TRUE(harness.AllSurvivorsAgree()) << seed;
    for (const auto& node : harness.nodes) {
      max_round = std::max(max_round, node->decision_round());
    }
  }
  EXPECT_LE(max_round, 12u);
}

TEST(BenOrTest, AgreementHoldsUnderMessageLoss) {
  Simulator simulator(5);
  Network network(&simulator, 5, std::make_unique<UniformLatencyModel>(5.0, 15.0, 0.02));
  std::vector<std::unique_ptr<BenOrNode>> nodes;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(std::make_unique<BenOrNode>(&simulator, &network, i, 2, i % 2));
  }
  for (auto& node : nodes) {
    node->Start();
  }
  simulator.Run(240'000.0);
  int decided_value = -1;
  for (const auto& node : nodes) {
    if (node->decided()) {
      if (decided_value == -1) {
        decided_value = node->decision();
      }
      EXPECT_EQ(node->decision(), decided_value);
    }
  }
  EXPECT_NE(decided_value, -1);
}

}  // namespace
}  // namespace probcon
