// Chaos sweeps: randomized fault schedules across many seeds, asserting the safety
// invariants that must hold in EVERY schedule as long as the configuration satisfies the
// paper's theorems. This is the property-test layer above the scenario tests.

#include <memory>

#include <gtest/gtest.h>

#include "src/consensus/pbft/pbft_cluster.h"
#include "src/consensus/raft/raft_cluster.h"
#include "src/faultmodel/fault_curve.h"
#include "src/sim/failure_injector.h"

namespace probcon {
namespace {

class RaftChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RaftChaosTest, SafeUnderCrashRecoverDropChurn) {
  const uint64_t seed = GetParam();
  Rng knobs(seed);
  RaftClusterOptions options;
  const int n = 3 + 2 * static_cast<int>(knobs.NextBelow(3));  // 3, 5, or 7.
  options.config = RaftConfig::Standard(n);
  options.network_drop_probability = 0.08 * knobs.NextDouble();
  options.seed = seed;
  RaftCluster cluster(options);

  std::vector<std::unique_ptr<FaultCurve>> curves;
  for (int i = 0; i < n; ++i) {
    // Node-specific crash rates up to ~1 crash / 8s.
    curves.push_back(std::make_unique<ConstantFaultCurve>(
        (0.2 + 0.8 * knobs.NextDouble()) / 8'000.0));
  }
  FailureInjector injector(&cluster.simulator(), cluster.processes(), std::move(curves),
                           /*repair_rate=*/1.0 / 2'000.0);
  cluster.Start();
  injector.Arm();
  cluster.RunUntil(60'000.0);

  EXPECT_TRUE(cluster.checker().safe()) << "seed=" << seed << " n=" << n;
  EXPECT_GT(injector.crash_count(), 0) << "chaos did not exercise failures";
}

TEST_P(RaftChaosTest, SafeUnderPartitionChurn) {
  const uint64_t seed = GetParam();
  RaftClusterOptions options;
  options.config = RaftConfig::Standard(5);
  options.seed = seed;
  RaftCluster cluster(options);
  cluster.Start();

  // Re-partition randomly every 1.5s; heal at the end.
  Rng knobs(seed * 31);
  for (int epoch = 0; epoch < 20; ++epoch) {
    cluster.simulator().ScheduleAt(1'500.0 * (epoch + 1), [&cluster, &knobs]() {
      if (knobs.NextBernoulli(0.3)) {
        cluster.network().ClearPartition();
        return;
      }
      std::vector<int> groups(5);
      for (auto& g : groups) {
        g = static_cast<int>(knobs.NextBelow(2));
      }
      cluster.network().SetPartition(groups);
    });
  }
  cluster.RunUntil(35'000.0);
  cluster.network().ClearPartition();
  cluster.RunUntil(50'000.0);

  EXPECT_TRUE(cluster.checker().safe()) << "seed=" << seed;
  EXPECT_GT(cluster.checker().committed_slots(), 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaftChaosTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

class PbftChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PbftChaosTest, SafeWithByzantineWithinThreshold) {
  const uint64_t seed = GetParam();
  Rng knobs(seed * 7 + 1);
  // n = 7 tolerates f = 2: pick up to 2 Byzantine replicas with random behaviours.
  PbftClusterOptions options;
  options.config = PbftConfig::Standard(7);
  options.seed = seed;
  options.behaviors.assign(7, ByzantineBehavior::kHonest);
  const int byz_count = 1 + static_cast<int>(knobs.NextBelow(2));
  const ByzantineBehavior kinds[] = {ByzantineBehavior::kEquivocate,
                                     ByzantineBehavior::kPromiscuous,
                                     ByzantineBehavior::kSilent};
  for (int b = 0; b < byz_count; ++b) {
    options.behaviors[knobs.NextBelow(7)] = kinds[knobs.NextBelow(3)];
  }
  options.network_drop_probability = 0.03 * knobs.NextDouble();
  PbftCluster cluster(options);
  cluster.Start();
  cluster.RunUntil(25'000.0);
  EXPECT_TRUE(cluster.checker().safe()) << "seed=" << seed;
}

TEST_P(PbftChaosTest, SafeUnderCrashChurnWithinThreshold) {
  const uint64_t seed = GetParam();
  PbftClusterOptions options;
  options.config = PbftConfig::Standard(4);
  options.seed = seed;
  PbftCluster cluster(options);
  cluster.Start();
  // One node at a time cycles down and back (staying within f = 1 most of the time).
  Rng knobs(seed * 3 + 2);
  for (int epoch = 0; epoch < 8; ++epoch) {
    const int victim = static_cast<int>(knobs.NextBelow(4));
    const SimTime down = 2'000.0 + 3'000.0 * epoch;
    cluster.simulator().ScheduleAt(down, [&cluster, victim]() {
      if (!cluster.node(victim).crashed()) {
        cluster.node(victim).Crash();
      }
    });
    cluster.simulator().ScheduleAt(down + 1'500.0, [&cluster, victim]() {
      if (cluster.node(victim).crashed()) {
        cluster.node(victim).Recover();
      }
    });
  }
  cluster.RunUntil(40'000.0);
  EXPECT_TRUE(cluster.checker().safe()) << "seed=" << seed;
  EXPECT_GT(cluster.checker().committed_slots(), 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PbftChaosTest, ::testing::Values(2, 4, 6, 8, 10, 12));

}  // namespace
}  // namespace probcon
