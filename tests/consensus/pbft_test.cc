#include "src/consensus/pbft/pbft_cluster.h"

#include <gtest/gtest.h>

namespace probcon {
namespace {

PbftClusterOptions DefaultOptions(int n, uint64_t seed) {
  PbftClusterOptions options;
  options.config = PbftConfig::Standard(n);
  options.seed = seed;
  return options;
}

TEST(PbftTest, HealthyClusterCommits) {
  PbftCluster cluster(DefaultOptions(4, 1));
  cluster.Start();
  cluster.RunUntil(10'000.0);
  EXPECT_TRUE(cluster.checker().safe());
  EXPECT_GT(cluster.checker().committed_slots(), 50u);
}

TEST(PbftTest, AllReplicasExecuteTheSamePrefix) {
  PbftCluster cluster(DefaultOptions(4, 2));
  cluster.Start();
  cluster.RunUntil(5'000.0);
  EXPECT_TRUE(cluster.checker().safe());
  uint64_t min_executed = UINT64_MAX;
  for (int i = 0; i < 4; ++i) {
    min_executed = std::min(min_executed, cluster.node(i).executed_count());
  }
  EXPECT_GT(min_executed, 10u);
}

TEST(PbftTest, ToleratesOneSilentReplica) {
  PbftClusterOptions options = DefaultOptions(4, 3);
  options.behaviors = {ByzantineBehavior::kHonest, ByzantineBehavior::kHonest,
                       ByzantineBehavior::kHonest, ByzantineBehavior::kSilent};
  PbftCluster cluster(options);
  cluster.Start();
  cluster.RunUntil(10'000.0);
  EXPECT_TRUE(cluster.checker().safe());
  EXPECT_GT(cluster.checker().committed_slots(), 30u);
}

TEST(PbftTest, SilentLeaderTriggersViewChange) {
  PbftClusterOptions options = DefaultOptions(4, 4);
  // Node 0 leads view 0 and says nothing.
  options.behaviors = {ByzantineBehavior::kSilent, ByzantineBehavior::kHonest,
                       ByzantineBehavior::kHonest, ByzantineBehavior::kHonest};
  PbftCluster cluster(options);
  cluster.Start();
  cluster.RunUntil(15'000.0);
  EXPECT_TRUE(cluster.checker().safe());
  EXPECT_GT(cluster.checker().committed_slots(), 10u);  // Progress resumed in view >= 1.
  for (int i = 1; i < 4; ++i) {
    EXPECT_GE(cluster.node(i).view(), 1u) << i;
  }
}

TEST(PbftTest, ToleratesOneEquivocatingLeader) {
  // f = 1 at n = 4: a single Byzantine (even the leader) must not break safety.
  PbftClusterOptions options = DefaultOptions(4, 5);
  options.behaviors = {ByzantineBehavior::kEquivocate, ByzantineBehavior::kHonest,
                       ByzantineBehavior::kHonest, ByzantineBehavior::kHonest};
  PbftCluster cluster(options);
  cluster.Start();
  cluster.RunUntil(15'000.0);
  EXPECT_TRUE(cluster.checker().safe());
}

TEST(PbftTest, TwoByzantineBreakSafetyAtNEqualsFour) {
  // |Byz| = 2 exceeds Theorem 3.1's threshold (< 2) at n=4: conflicting commits occur in
  // most schedules. Require at least half of a seed sweep to produce real violations.
  int violating_runs = 0;
  constexpr int kRuns = 6;
  for (uint64_t seed = 1; seed <= kRuns; ++seed) {
    PbftClusterOptions options = DefaultOptions(4, seed * 13);
    options.behaviors = {ByzantineBehavior::kEquivocate, ByzantineBehavior::kPromiscuous,
                         ByzantineBehavior::kHonest, ByzantineBehavior::kHonest};
    PbftCluster cluster(options);
    cluster.Start();
    cluster.RunUntil(20'000.0);
    if (!cluster.checker().safe()) {
      ++violating_runs;
    }
  }
  EXPECT_GE(violating_runs, kRuns / 2);
}

TEST(PbftTest, SevenNodesTolerateTwoByzantine) {
  PbftClusterOptions options = DefaultOptions(7, 7);
  options.behaviors = {ByzantineBehavior::kEquivocate, ByzantineBehavior::kPromiscuous,
                       ByzantineBehavior::kHonest,     ByzantineBehavior::kHonest,
                       ByzantineBehavior::kHonest,     ByzantineBehavior::kHonest,
                       ByzantineBehavior::kHonest};
  PbftCluster cluster(options);
  cluster.Start();
  cluster.RunUntil(20'000.0);
  EXPECT_TRUE(cluster.checker().safe());
  EXPECT_GT(cluster.checker().committed_slots(), 10u);
}

TEST(PbftTest, CrashMinorityKeepsCommitting) {
  PbftCluster cluster(DefaultOptions(4, 8));
  cluster.Start();
  cluster.RunUntil(2'000.0);
  cluster.node(3).Crash();
  const uint64_t before = cluster.checker().committed_slots();
  cluster.RunUntil(12'000.0);
  EXPECT_GT(cluster.checker().committed_slots(), before + 10);
  EXPECT_TRUE(cluster.checker().safe());
}

TEST(PbftTest, CrashLeaderRecoversViaViewChange) {
  PbftCluster cluster(DefaultOptions(4, 9));
  cluster.Start();
  cluster.RunUntil(2'000.0);
  cluster.node(0).Crash();  // View-0 leader.
  cluster.RunUntil(15'000.0);
  EXPECT_TRUE(cluster.checker().safe());
  EXPECT_GT(cluster.checker().committed_slots(), 20u);
}

TEST(PbftTest, TwoCrashesAtNEqualsFourHaltProgress) {
  PbftCluster cluster(DefaultOptions(4, 10));
  cluster.Start();
  cluster.RunUntil(2'000.0);
  cluster.node(2).Crash();
  cluster.node(3).Crash();
  cluster.RunUntil(3'000.0);
  const uint64_t stalled_at = cluster.checker().max_committed_slot();
  cluster.RunUntil(20'000.0);
  EXPECT_LE(cluster.checker().max_committed_slot(), stalled_at + 1);
  EXPECT_TRUE(cluster.checker().safe());  // Halt, not corruption.
}

TEST(PbftTest, DeterministicGivenSeed) {
  auto run = [](uint64_t seed) {
    PbftCluster cluster(DefaultOptions(4, seed));
    cluster.Start();
    cluster.RunUntil(5'000.0);
    return cluster.checker().committed_slots();
  };
  EXPECT_EQ(run(77), run(77));
}

TEST(PbftTest, SurvivesMessageLoss) {
  PbftClusterOptions options = DefaultOptions(4, 11);
  options.network_drop_probability = 0.03;
  PbftCluster cluster(options);
  cluster.Start();
  cluster.RunUntil(20'000.0);
  EXPECT_TRUE(cluster.checker().safe());
  EXPECT_GT(cluster.checker().committed_slots(), 20u);
}

}  // namespace
}  // namespace probcon
