#include "src/consensus/paxos/paxos_log.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace probcon {
namespace {

struct LogHarness {
  LogHarness(int n, uint64_t seed, double drop = 0.0)
      : simulator(seed),
        network(&simulator, n, std::make_unique<UniformLatencyModel>(5.0, 15.0, drop)),
        checker(&simulator) {
    PaxosTimingConfig timing;
    for (int i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<PaxosLogNode>(&simulator, &network,
                                                     i, PaxosConfig::Standard(n), timing,
                                                     &checker));
    }
    for (auto& node : nodes) {
      node->Start();
    }
  }

  // Injects a client command at `target` (spread via the network for realistic timing).
  void Submit(uint64_t id, int target) {
    auto message = std::make_shared<PaxosLogClientCommand>();
    message->command = Command{id, "cmd-" + std::to_string(id)};
    checker.RecordSubmission(message->command);
    network.Send(target, target, message);
  }

  Simulator simulator;
  Network network;
  SafetyChecker checker;
  std::vector<std::unique_ptr<PaxosLogNode>> nodes;
};

TEST(PaxosLogTest, SingleProposerFillsTheLogInOrder) {
  LogHarness harness(3, 1);
  for (uint64_t id = 1; id <= 20; ++id) {
    harness.Submit(id, 0);
  }
  harness.simulator.Run(60'000.0);
  EXPECT_TRUE(harness.checker.safe());
  EXPECT_EQ(harness.checker.committed_slots(), 20u);
  for (const auto& node : harness.nodes) {
    EXPECT_EQ(node->chosen_count(), 20u);
  }
}

TEST(PaxosLogTest, CompetingProposersAllCommandsLand) {
  LogHarness harness(5, 2);
  // Every node receives distinct commands concurrently; slot races must resolve without
  // losing or duplicating commands.
  for (uint64_t id = 1; id <= 30; ++id) {
    harness.Submit(id, static_cast<int>(id % 5));
  }
  harness.simulator.Run(240'000.0);
  EXPECT_TRUE(harness.checker.safe());
  EXPECT_EQ(harness.checker.committed_slots(), 30u);
}

TEST(PaxosLogTest, AgreementOnEverySlotAcrossNodes) {
  LogHarness harness(5, 3);
  for (uint64_t id = 1; id <= 15; ++id) {
    harness.Submit(id, static_cast<int>(id % 3));
  }
  harness.simulator.Run(120'000.0);
  // The checker enforces per-slot agreement automatically; also assert full convergence.
  EXPECT_TRUE(harness.checker.safe());
  for (const auto& node : harness.nodes) {
    EXPECT_EQ(node->chosen_count(), 15u) << node->id();
  }
}

TEST(PaxosLogTest, MinorityCrashDoesNotStopTheLog) {
  LogHarness harness(5, 4);
  for (uint64_t id = 1; id <= 10; ++id) {
    harness.Submit(id, 0);
  }
  harness.simulator.Schedule(100.0, [&harness]() {
    harness.nodes[3]->Crash();
    harness.nodes[4]->Crash();
  });
  for (uint64_t id = 11; id <= 20; ++id) {
    harness.Submit(id, 1);
  }
  harness.simulator.Run(240'000.0);
  EXPECT_TRUE(harness.checker.safe());
  EXPECT_EQ(harness.checker.committed_slots(), 20u);
}

TEST(PaxosLogTest, RecoveredNodeResumesProposing) {
  LogHarness harness(3, 5);
  harness.Submit(1, 0);
  harness.simulator.Run(5'000.0);
  harness.nodes[0]->Crash();
  harness.simulator.Run(10'000.0);
  harness.nodes[0]->Recover();
  harness.Submit(2, 0);
  harness.simulator.Run(120'000.0);
  EXPECT_TRUE(harness.checker.safe());
  EXPECT_GE(harness.checker.committed_slots(), 2u);
}

TEST(PaxosLogTest, SurvivesMessageLoss) {
  LogHarness harness(5, 6, /*drop=*/0.05);
  for (uint64_t id = 1; id <= 12; ++id) {
    harness.Submit(id, static_cast<int>(id % 5));
  }
  harness.simulator.Run(300'000.0);
  EXPECT_TRUE(harness.checker.safe());
  EXPECT_GE(harness.checker.committed_slots(), 10u);
}

TEST(PaxosLogTest, DuplicateSubmissionsCommitOnce) {
  LogHarness harness(3, 7);
  for (int repeat = 0; repeat < 3; ++repeat) {
    harness.Submit(42, 0);  // Client retries to the same node.
  }
  harness.simulator.Run(30'000.0);
  EXPECT_TRUE(harness.checker.safe());
  EXPECT_EQ(harness.checker.committed_slots(), 1u);
}

}  // namespace
}  // namespace probcon
