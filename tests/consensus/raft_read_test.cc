#include <optional>

#include <gtest/gtest.h>

#include "src/consensus/raft/raft_cluster.h"

namespace probcon {
namespace {

RaftClusterOptions Options(uint64_t seed) {
  RaftClusterOptions options;
  options.config = RaftConfig::Standard(5);
  options.seed = seed;
  return options;
}

TEST(RaftReadTest, NonLeaderRejectsImmediately) {
  RaftCluster cluster(Options(1));
  cluster.Start();
  cluster.RunUntil(2'000.0);
  const int leader = cluster.LeaderId();
  ASSERT_GE(leader, 0);
  const int follower = (leader + 1) % 5;
  EXPECT_FALSE(cluster.node(follower).RequestRead([](uint64_t) { FAIL(); }));
}

TEST(RaftReadTest, LeaderConfirmsReadAtCommitIndex) {
  RaftCluster cluster(Options(2));
  cluster.Start();
  cluster.RunUntil(3'000.0);
  const int leader = cluster.LeaderId();
  ASSERT_GE(leader, 0);
  const uint64_t commit_at_request = cluster.node(leader).commit_index();
  ASSERT_GT(commit_at_request, 0u);
  std::optional<uint64_t> served;
  ASSERT_TRUE(cluster.node(leader).RequestRead([&](uint64_t index) { served = index; }));
  cluster.RunUntil(4'000.0);
  ASSERT_TRUE(served.has_value());
  // The read barrier reflects everything committed at request time.
  EXPECT_GE(*served, commit_at_request);
}

TEST(RaftReadTest, ReadIndexIsMonotone) {
  RaftCluster cluster(Options(3));
  cluster.Start();
  cluster.RunUntil(3'000.0);
  const int leader = cluster.LeaderId();
  ASSERT_GE(leader, 0);
  std::vector<uint64_t> served;
  for (int round = 0; round < 5; ++round) {
    cluster.node(leader).RequestRead([&](uint64_t index) { served.push_back(index); });
    cluster.RunUntil(3'000.0 + 500.0 * (round + 1));
  }
  ASSERT_EQ(served.size(), 5u);
  for (size_t i = 1; i < served.size(); ++i) {
    EXPECT_GE(served[i], served[i - 1]);
  }
}

TEST(RaftReadTest, PartitionedStaleLeaderNeverServesReads) {
  RaftCluster cluster(Options(4));
  cluster.Start();
  cluster.RunUntil(3'000.0);
  const int old_leader = cluster.LeaderId();
  ASSERT_GE(old_leader, 0);
  // Isolate the leader with a single follower (minority): it cannot gather q_vc - 1 acks.
  std::vector<int> groups(5, 1);
  groups[old_leader] = 0;
  groups[(old_leader + 1) % 5] = 0;
  cluster.network().SetPartition(groups);
  cluster.RunUntil(3'100.0);  // Let in-flight acks drain before issuing the read.

  bool served = false;
  if (cluster.node(old_leader).is_leader()) {
    cluster.node(old_leader).RequestRead([&](uint64_t) { served = true; });
  }
  cluster.RunUntil(15'000.0);  // Majority side elects a new leader and commits meanwhile.
  EXPECT_FALSE(served);  // The stale leader's read was dropped, never answered stale.
  EXPECT_TRUE(cluster.checker().safe());
}

TEST(RaftReadTest, CrashDropsPendingReads) {
  RaftCluster cluster(Options(5));
  cluster.Start();
  cluster.RunUntil(3'000.0);
  const int leader = cluster.LeaderId();
  ASSERT_GE(leader, 0);
  bool served = false;
  // Crash the leader in the same instant the read is registered (before any acks).
  cluster.node(leader).RequestRead([&](uint64_t) { served = true; });
  cluster.node(leader).Crash();
  cluster.RunUntil(20'000.0);
  EXPECT_FALSE(served);
}

}  // namespace
}  // namespace probcon
