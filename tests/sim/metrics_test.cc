#include "src/sim/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace probcon {
namespace {

TEST(SampleStatsTest, BasicMoments) {
  SampleStats stats;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    stats.Add(x);
  }
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 5.0);
}

TEST(SampleStatsTest, Percentiles) {
  SampleStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(stats.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(1.0), 100.0);
  EXPECT_NEAR(stats.Percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(stats.Percentile(0.99), 99.0, 1.0);
}

TEST(SampleStatsTest, SingleSample) {
  SampleStats stats;
  stats.Add(42.0);
  EXPECT_DOUBLE_EQ(stats.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(0.5), 42.0);
}

TEST(SampleStatsTest, UnsortedInput) {
  SampleStats stats;
  for (const double x : {9.0, 1.0, 5.0, 3.0, 7.0}) {
    stats.Add(x);
  }
  EXPECT_DOUBLE_EQ(stats.Percentile(0.5), 5.0);
}

TEST(SampleStatsTest, EmptyIsEmpty) {
  SampleStats stats;
  EXPECT_TRUE(stats.empty());
  stats.Add(1.0);
  EXPECT_FALSE(stats.empty());
}

TEST(SampleStatsTest, CachedPercentileSurvivesInterleavedAdds) {
  // The sorted cache must invalidate on Add: query, add, query again must reflect the new
  // sample, and repeated queries between adds must agree with a fresh computation.
  SampleStats stats;
  for (const double x : {10.0, 30.0, 20.0}) {
    stats.Add(x);
  }
  EXPECT_DOUBLE_EQ(stats.Percentile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(1.0), 30.0);  // Second query hits the cache.
  stats.Add(5.0);
  stats.Add(40.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(1.0), 40.0);
  stats.Add(1.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(0.0), 1.0);
}

TEST(SampleStatsTest, RepeatedPercentilesMatchReferenceAcrossLoad) {
  // Stress the cache against a straightforward re-sort reference.
  SampleStats stats;
  std::vector<double> reference;
  uint64_t state = 12345;
  for (int i = 0; i < 500; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double x = static_cast<double>(state >> 40);
    stats.Add(x);
    reference.push_back(x);
    if (i % 50 == 7) {
      std::vector<double> sorted = reference;
      std::sort(sorted.begin(), sorted.end());
      for (const double q : {0.0, 0.25, 0.5, 0.9, 1.0}) {
        const size_t rank =
            static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
        EXPECT_DOUBLE_EQ(stats.Percentile(q), sorted[rank]) << "q=" << q << " i=" << i;
      }
    }
  }
}

TEST(SampleStatsTest, SummaryBundlesHeadlineStats) {
  SampleStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.Add(static_cast<double>(i));
  }
  const SampleStats::Summary summary = stats.Summarize();
  EXPECT_EQ(summary.count, 100u);
  EXPECT_DOUBLE_EQ(summary.mean, 50.5);
  EXPECT_DOUBLE_EQ(summary.min, 1.0);
  EXPECT_DOUBLE_EQ(summary.max, 100.0);
  EXPECT_EQ(summary.p50, stats.Percentile(0.5));
  EXPECT_EQ(summary.p90, stats.Percentile(0.9));
  EXPECT_EQ(summary.p99, stats.Percentile(0.99));
}

}  // namespace
}  // namespace probcon
