#include "src/sim/metrics.h"

#include <gtest/gtest.h>

namespace probcon {
namespace {

TEST(SampleStatsTest, BasicMoments) {
  SampleStats stats;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    stats.Add(x);
  }
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 5.0);
}

TEST(SampleStatsTest, Percentiles) {
  SampleStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(stats.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(1.0), 100.0);
  EXPECT_NEAR(stats.Percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(stats.Percentile(0.99), 99.0, 1.0);
}

TEST(SampleStatsTest, SingleSample) {
  SampleStats stats;
  stats.Add(42.0);
  EXPECT_DOUBLE_EQ(stats.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(0.5), 42.0);
}

TEST(SampleStatsTest, UnsortedInput) {
  SampleStats stats;
  for (const double x : {9.0, 1.0, 5.0, 3.0, 7.0}) {
    stats.Add(x);
  }
  EXPECT_DOUBLE_EQ(stats.Percentile(0.5), 5.0);
}

TEST(SampleStatsTest, EmptyIsEmpty) {
  SampleStats stats;
  EXPECT_TRUE(stats.empty());
  stats.Add(1.0);
  EXPECT_FALSE(stats.empty());
}

}  // namespace
}  // namespace probcon
