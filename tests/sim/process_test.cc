#include "src/sim/process.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace probcon {
namespace {

struct Ping final : public SimMessage {
  std::string Describe() const override { return "ping"; }
};

// Minimal protocol: counts messages and timer fires.
class CountingProcess final : public Process {
 public:
  using Process::Process;

  int messages_received = 0;
  int timers_fired = 0;
  int recoveries = 0;

  void ArmTimer(SimTime delay) {
    SetTimer(delay, [this]() { ++timers_fired; });
  }

  void Ping(int to) { SendTo(to, std::make_shared<struct Ping>()); }

 protected:
  void OnStart() override {}
  void OnMessage(int /*from*/, const std::shared_ptr<const SimMessage>& /*msg*/) override {
    ++messages_received;
  }
  void OnRecover() override { ++recoveries; }
};

class ProcessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<Network>(&sim_, 2,
                                         std::make_unique<UniformLatencyModel>(1.0, 1.0));
    a_ = std::make_unique<CountingProcess>(&sim_, network_.get(), 0);
    b_ = std::make_unique<CountingProcess>(&sim_, network_.get(), 1);
    a_->Start();
    b_->Start();
  }

  Simulator sim_{3};
  std::unique_ptr<Network> network_;
  std::unique_ptr<CountingProcess> a_;
  std::unique_ptr<CountingProcess> b_;
};

TEST_F(ProcessTest, MessagesDeliveredToHealthyProcess) {
  a_->Ping(1);
  sim_.Run(10.0);
  EXPECT_EQ(b_->messages_received, 1);
}

TEST_F(ProcessTest, CrashedProcessDiscardsMessages) {
  b_->Crash();
  a_->Ping(1);
  sim_.Run(10.0);
  EXPECT_EQ(b_->messages_received, 0);
}

TEST_F(ProcessTest, CrashedProcessDoesNotSend) {
  a_->Crash();
  a_->Ping(1);
  sim_.Run(10.0);
  EXPECT_EQ(b_->messages_received, 0);
}

TEST_F(ProcessTest, RecoveryRestoresDelivery) {
  b_->Crash();
  b_->Recover();
  EXPECT_EQ(b_->recoveries, 1);
  a_->Ping(1);
  sim_.Run(10.0);
  EXPECT_EQ(b_->messages_received, 1);
}

TEST_F(ProcessTest, TimerFiresWhenHealthy) {
  a_->ArmTimer(5.0);
  sim_.Run(10.0);
  EXPECT_EQ(a_->timers_fired, 1);
}

TEST_F(ProcessTest, CrashSuppressesPendingTimer) {
  a_->ArmTimer(5.0);
  sim_.Run(2.0);
  a_->Crash();
  sim_.Run(10.0);
  EXPECT_EQ(a_->timers_fired, 0);
}

TEST_F(ProcessTest, TimerFromBeforeCrashStaysDeadAfterRecovery) {
  a_->ArmTimer(5.0);
  sim_.Run(2.0);
  a_->Crash();
  sim_.Run(3.0);  // Past the timer's original deadline? No - fires at t=5; we're at t=5.
  a_->Recover();
  sim_.Run(20.0);
  // The pre-crash timer belongs to a dead epoch; it must not fire post-recovery.
  EXPECT_EQ(a_->timers_fired, 0);
}

TEST_F(ProcessTest, NewTimerAfterRecoveryFires) {
  a_->Crash();
  a_->Recover();
  a_->ArmTimer(3.0);
  sim_.Run(10.0);
  EXPECT_EQ(a_->timers_fired, 1);
}

TEST_F(ProcessTest, MessageInFlightDuringCrashWindowIsDropped) {
  a_->Ping(1);  // Arrives at t=1.
  sim_.Run(0.5);
  b_->Crash();
  sim_.Run(2.0);  // Delivery attempt happens while crashed.
  b_->Recover();
  sim_.Run(10.0);
  EXPECT_EQ(b_->messages_received, 0);
}

TEST_F(ProcessTest, CrashIsIdempotent) {
  a_->Crash();
  a_->Crash();
  EXPECT_TRUE(a_->crashed());
  a_->Recover();
  EXPECT_FALSE(a_->crashed());
}

TEST_F(ProcessTest, EveryCrashClaimsAFreshGeneration) {
  const uint64_t initial = a_->crash_generation();
  a_->Crash();
  const uint64_t first = a_->crash_generation();
  EXPECT_GT(first, initial);
  // A second fault source crashing the already-down node still claims the outage.
  a_->Crash();
  const uint64_t second = a_->crash_generation();
  EXPECT_GT(second, first);

  // A repair captured against the FIRST crash is stale and must not resurrect the node.
  if (a_->crashed() && a_->crash_generation() == first) {
    a_->Recover();
  }
  EXPECT_TRUE(a_->crashed());

  // The repair belonging to the latest claim does restart it.
  if (a_->crashed() && a_->crash_generation() == second) {
    a_->Recover();
  }
  EXPECT_FALSE(a_->crashed());
}

TEST_F(ProcessTest, HandlerDelayDefersMessageProcessing) {
  b_->SetHandlerDelay(20.0);
  a_->Ping(1);
  sim_.Run(10.0);  // Past the 1ms link latency, before the gray delay elapses.
  EXPECT_EQ(b_->messages_received, 0);
  sim_.Run(30.0);
  EXPECT_EQ(b_->messages_received, 1);
}

TEST_F(ProcessTest, CrashDuringHandlerDelayDropsTheMessage) {
  b_->SetHandlerDelay(20.0);
  a_->Ping(1);
  sim_.Run(10.0);  // Message arrived and is waiting in the gray queue.
  b_->Crash();
  b_->Recover();
  sim_.Run(100.0);
  EXPECT_EQ(b_->messages_received, 0);  // Stale deferred delivery must not fire.
}

TEST_F(ProcessTest, TimerScaleStretchesTimers) {
  a_->SetTimerScale(3.0);
  a_->ArmTimer(10.0);
  sim_.Run(25.0);
  EXPECT_EQ(a_->timers_fired, 0);
  sim_.Run(35.0);
  EXPECT_EQ(a_->timers_fired, 1);
}

TEST_F(ProcessTest, FastClockFiresTimersEarly) {
  a_->SetClockRate(2.0);  // Local clock runs double speed: a 10ms timer fires at 5ms.
  a_->ArmTimer(10.0);
  sim_.Run(6.0);
  EXPECT_EQ(a_->timers_fired, 1);
}

TEST_F(ProcessTest, SlowClockFiresTimersLate) {
  a_->SetClockRate(0.5);
  a_->ArmTimer(10.0);
  sim_.Run(15.0);
  EXPECT_EQ(a_->timers_fired, 0);
  sim_.Run(25.0);
  EXPECT_EQ(a_->timers_fired, 1);
}

}  // namespace
}  // namespace probcon
