#include "src/sim/network.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace probcon {
namespace {

struct TestMessage final : public SimMessage {
  explicit TestMessage(int v) : value(v) {}
  int value;
  std::string Describe() const override { return "test"; }
};

struct Delivery {
  int to;
  int from;
  int value;
  SimTime at;
};

class NetworkTest : public ::testing::Test {
 protected:
  void Build(int nodes, double min_latency, double max_latency, double drop = 0.0) {
    network_ = std::make_unique<Network>(
        &sim_, nodes, std::make_unique<UniformLatencyModel>(min_latency, max_latency, drop));
    for (int i = 0; i < nodes; ++i) {
      network_->RegisterHandler(i, [this, i](int from,
                                             const std::shared_ptr<const SimMessage>& msg) {
        const auto* test_msg = dynamic_cast<const TestMessage*>(msg.get());
        ASSERT_NE(test_msg, nullptr);
        deliveries_.push_back({i, from, test_msg->value, sim_.Now()});
      });
    }
  }

  Simulator sim_{99};
  std::unique_ptr<Network> network_;
  std::vector<Delivery> deliveries_;
};

TEST_F(NetworkTest, DeliversWithinLatencyBounds) {
  Build(2, 5.0, 15.0);
  network_->Send(0, 1, std::make_shared<TestMessage>(7));
  sim_.Run(100.0);
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].to, 1);
  EXPECT_EQ(deliveries_[0].from, 0);
  EXPECT_EQ(deliveries_[0].value, 7);
  EXPECT_GE(deliveries_[0].at, 5.0);
  EXPECT_LE(deliveries_[0].at, 15.0);
}

TEST_F(NetworkTest, StampsTrueSender) {
  Build(3, 1.0, 1.0);
  network_->Send(2, 0, std::make_shared<TestMessage>(1));
  sim_.Run(10.0);
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].from, 2);
}

TEST_F(NetworkTest, BroadcastExcludesSelfWhenAsked) {
  Build(4, 1.0, 2.0);
  network_->Broadcast(1, std::make_shared<TestMessage>(5), /*include_self=*/false);
  sim_.Run(10.0);
  EXPECT_EQ(deliveries_.size(), 3u);
  for (const auto& d : deliveries_) {
    EXPECT_NE(d.to, 1);
  }
}

TEST_F(NetworkTest, BroadcastIncludesSelfWhenAsked) {
  Build(4, 1.0, 2.0);
  network_->Broadcast(1, std::make_shared<TestMessage>(5), /*include_self=*/true);
  sim_.Run(10.0);
  EXPECT_EQ(deliveries_.size(), 4u);
}

TEST_F(NetworkTest, DropProbabilityDropsRoughlyThatFraction) {
  Build(2, 1.0, 1.0, 0.3);
  constexpr int kMessages = 10000;
  for (int i = 0; i < kMessages; ++i) {
    network_->Send(0, 1, std::make_shared<TestMessage>(i));
  }
  sim_.Run(100.0);
  EXPECT_NEAR(static_cast<double>(deliveries_.size()), kMessages * 0.7, kMessages * 0.03);
  EXPECT_EQ(network_->messages_sent(), static_cast<uint64_t>(kMessages));
  EXPECT_EQ(network_->messages_delivered() + network_->messages_dropped(),
            static_cast<uint64_t>(kMessages));
}

TEST_F(NetworkTest, PartitionBlocksCrossGroupTraffic) {
  Build(4, 1.0, 1.0);
  network_->SetPartition({0, 0, 1, 1});
  network_->Send(0, 1, std::make_shared<TestMessage>(1));  // Same group: delivered.
  network_->Send(0, 2, std::make_shared<TestMessage>(2));  // Cross group: dropped.
  sim_.Run(10.0);
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].value, 1);
}

TEST_F(NetworkTest, PartitionCheckedAtDeliveryTime) {
  Build(2, 10.0, 10.0);
  network_->Send(0, 1, std::make_shared<TestMessage>(1));
  // Cut the link while the message is in flight.
  sim_.Schedule(5.0, [this]() { network_->SetPartition({0, 1}); });
  sim_.Run(100.0);
  EXPECT_TRUE(deliveries_.empty());
}

TEST_F(NetworkTest, ClearPartitionRestores) {
  Build(2, 1.0, 1.0);
  network_->SetPartition({0, 1});
  network_->Send(0, 1, std::make_shared<TestMessage>(1));
  sim_.Run(10.0);
  EXPECT_TRUE(deliveries_.empty());
  network_->ClearPartition();
  network_->Send(0, 1, std::make_shared<TestMessage>(2));
  sim_.Run(20.0);
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].value, 2);
}

TEST_F(NetworkTest, SelfSendAlwaysReachable) {
  Build(2, 1.0, 1.0);
  network_->SetPartition({0, 1});
  network_->Send(0, 0, std::make_shared<TestMessage>(9));
  sim_.Run(10.0);
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].to, 0);
}

TEST_F(NetworkTest, DeliveryToDownedNodeDropsCleanlyAndCounts) {
  Build(2, 10.0, 10.0);
  network_->Send(0, 1, std::make_shared<TestMessage>(1));
  // The node dies while the message is in flight: the delivery must not invoke its handler.
  sim_.Schedule(5.0, [this]() { network_->SetNodeUp(1, false); });
  sim_.Run(100.0);
  EXPECT_TRUE(deliveries_.empty());
  EXPECT_EQ(network_->messages_to_dead(), 1u);
  EXPECT_EQ(network_->messages_delivered(), 0u);
}

TEST_F(NetworkTest, DeliveryResumesWhenNodeMarkedUpAgain) {
  Build(2, 1.0, 1.0);
  network_->SetNodeUp(1, false);
  network_->Send(0, 1, std::make_shared<TestMessage>(1));
  sim_.Run(10.0);
  EXPECT_TRUE(deliveries_.empty());
  network_->SetNodeUp(1, true);
  network_->Send(0, 1, std::make_shared<TestMessage>(2));
  sim_.Run(20.0);
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].value, 2);
  EXPECT_EQ(network_->messages_to_dead(), 1u);
}

TEST_F(NetworkTest, DuplicationDeliversEveryMessageTwiceAtProbabilityOne) {
  Build(2, 1.0, 5.0);
  network_->SetDuplication(1.0);
  constexpr int kMessages = 50;
  for (int i = 0; i < kMessages; ++i) {
    network_->Send(0, 1, std::make_shared<TestMessage>(i));
  }
  sim_.Run(100.0);
  EXPECT_EQ(deliveries_.size(), static_cast<size_t>(2 * kMessages));
  EXPECT_EQ(network_->messages_duplicated(), static_cast<uint64_t>(kMessages));
  // Both copies of each payload arrived.
  std::vector<int> copies(kMessages, 0);
  for (const auto& d : deliveries_) ++copies[d.value];
  for (int count : copies) EXPECT_EQ(count, 2);
}

TEST_F(NetworkTest, DuplicationOffSendsExactlyOnce) {
  Build(2, 1.0, 1.0);
  network_->SetDuplication(0.0);
  network_->Send(0, 1, std::make_shared<TestMessage>(1));
  sim_.Run(10.0);
  EXPECT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(network_->messages_duplicated(), 0u);
}

TEST_F(NetworkTest, ReorderingShufflesWithinTheWindow) {
  Build(2, 1.0, 1.0);
  network_->SetReordering(1.0, 50.0);
  constexpr int kMessages = 100;
  for (int i = 0; i < kMessages; ++i) {
    network_->Send(0, 1, std::make_shared<TestMessage>(i));
  }
  sim_.Run(200.0);
  ASSERT_EQ(deliveries_.size(), static_cast<size_t>(kMessages));
  EXPECT_EQ(network_->messages_reordered(), static_cast<uint64_t>(kMessages));
  bool out_of_order = false;
  for (size_t i = 0; i < deliveries_.size(); ++i) {
    EXPECT_GE(deliveries_[i].at, 1.0);
    EXPECT_LE(deliveries_[i].at, 51.0);  // Base latency + full reorder window.
    if (i > 0 && deliveries_[i].value < deliveries_[i - 1].value) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order);  // 100 messages through a 50ms shuffle: FIFO order broken.
}

TEST_F(NetworkTest, LinkPerturbationScalesAndShiftsLatency) {
  Build(2, 1.0, 1.0);
  network_->SetLinkPerturbation(0, 1, {.latency_factor = 3.0, .extra_latency = 5.0});
  network_->Send(0, 1, std::make_shared<TestMessage>(1));
  network_->Send(1, 0, std::make_shared<TestMessage>(2));  // Reverse direction untouched.
  sim_.Run(20.0);
  ASSERT_EQ(deliveries_.size(), 2u);
  for (const auto& d : deliveries_) {
    if (d.to == 1) {
      EXPECT_DOUBLE_EQ(d.at, 8.0);  // 1 * 3 + 5: asymmetric degradation.
    } else {
      EXPECT_DOUBLE_EQ(d.at, 1.0);
    }
  }
}

TEST_F(NetworkTest, WildcardPerturbationComposesWithExactEntry) {
  Build(3, 1.0, 1.0);
  network_->SetLinkPerturbation(-1, 2, {.extra_latency = 4.0});  // Everything into node 2.
  network_->SetLinkPerturbation(0, 2, {.extra_latency = 5.0});   // Plus this one link.
  network_->Send(0, 2, std::make_shared<TestMessage>(1));
  network_->Send(1, 2, std::make_shared<TestMessage>(2));
  sim_.Run(20.0);
  ASSERT_EQ(deliveries_.size(), 2u);
  for (const auto& d : deliveries_) {
    EXPECT_DOUBLE_EQ(d.at, d.from == 0 ? 10.0 : 5.0);
  }
}

TEST_F(NetworkTest, PerturbationExtraDropLosesMessages) {
  Build(2, 1.0, 1.0);
  network_->SetLinkPerturbation(0, 1, {.extra_drop = 1.0});
  network_->Send(0, 1, std::make_shared<TestMessage>(1));
  sim_.Run(10.0);
  EXPECT_TRUE(deliveries_.empty());
  EXPECT_EQ(network_->messages_dropped(), 1u);
}

TEST_F(NetworkTest, NeutralPerturbationClearsTheOverride) {
  Build(2, 1.0, 1.0);
  network_->SetLinkPerturbation(0, 1, {.extra_latency = 50.0});
  network_->SetLinkPerturbation(0, 1, {});  // Neutral: back to the base model.
  network_->Send(0, 1, std::make_shared<TestMessage>(1));
  sim_.Run(10.0);
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_DOUBLE_EQ(deliveries_[0].at, 1.0);
}

TEST(UniformLatencyModelTest, SamplesWithinBounds) {
  Rng rng(1);
  const UniformLatencyModel model(2.0, 8.0);
  for (int i = 0; i < 1000; ++i) {
    const double latency = model.SampleLatency(0, 1, rng);
    EXPECT_GE(latency, 2.0);
    EXPECT_LE(latency, 8.0);
  }
}

TEST(UniformLatencyModelTest, ZeroDropNeverDrops) {
  Rng rng(2);
  const UniformLatencyModel model(1.0, 1.0, 0.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(model.ShouldDrop(0, 1, rng));
  }
}

TEST(LogNormalLatencyModelTest, MedianAndTailShape) {
  Rng rng(3);
  const LogNormalLatencyModel model(10.0, 0.5);
  std::vector<double> samples;
  for (int i = 0; i < 40000; ++i) {
    const double latency = model.SampleLatency(0, 1, rng);
    EXPECT_GE(latency, 1.0);     // Clamp floor: 0.1 * median.
    EXPECT_LE(latency, 1000.0);  // Clamp ceiling: 100 * median.
    samples.push_back(latency);
  }
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], 10.0, 0.3);  // Median preserved.
  // Heavy right tail: p99 well above 2x median (normal with same median would not be).
  EXPECT_GT(samples[static_cast<size_t>(samples.size() * 0.99)], 25.0);
}

TEST(MatrixLatencyModelTest, UsesPerPairBase) {
  Rng rng(4);
  MatrixLatencyModel model({{0.0, 10.0}, {50.0, 0.0}}, /*jitter=*/0.0);
  EXPECT_DOUBLE_EQ(model.SampleLatency(0, 1, rng), 10.0);
  EXPECT_DOUBLE_EQ(model.SampleLatency(1, 0, rng), 50.0);
  EXPECT_DOUBLE_EQ(model.SampleLatency(0, 0, rng), 0.0);
}

TEST(MatrixLatencyModelTest, JitterBounded) {
  Rng rng(5);
  MatrixLatencyModel model({{0.0, 10.0}, {10.0, 0.0}}, /*jitter=*/0.5);
  for (int i = 0; i < 1000; ++i) {
    const double latency = model.SampleLatency(0, 1, rng);
    EXPECT_GE(latency, 10.0);
    EXPECT_LE(latency, 15.0);
  }
}

TEST(MatrixLatencyModelTest, FromRegionsBuildsTopology) {
  Rng rng(6);
  const auto model = MatrixLatencyModel::FromRegions(
      {0, 0, 1}, {{1.0, 40.0}, {40.0, 1.0}}, /*local_latency=*/2.0, /*jitter=*/0.0);
  EXPECT_DOUBLE_EQ(model.SampleLatency(0, 1, rng), 2.0);   // Same region.
  EXPECT_DOUBLE_EQ(model.SampleLatency(0, 2, rng), 40.0);  // Cross region.
}

}  // namespace
}  // namespace probcon
