#include "src/sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

namespace probcon {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30.0, [&]() { order.push_back(3); });
  sim.Schedule(10.0, [&]() { order.push_back(1); });
  sim.Schedule(20.0, [&]() { order.push_back(2); });
  sim.Run(100.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, TiesFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5.0, [&order, i]() { order.push_back(i); });
  }
  sim.Run(10.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  double observed = -1.0;
  sim.Schedule(42.5, [&]() { observed = sim.Now(); });
  sim.Run(100.0);
  EXPECT_DOUBLE_EQ(observed, 42.5);
  EXPECT_DOUBLE_EQ(sim.Now(), 100.0);  // Run advances to the horizon.
}

TEST(SimulatorTest, RunStopsAtHorizon) {
  Simulator sim;
  bool fired = false;
  sim.Schedule(50.0, [&]() { fired = true; });
  sim.Run(49.9);
  EXPECT_FALSE(fired);
  sim.Run(50.1);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  std::vector<double> times;
  sim.Schedule(10.0, [&]() {
    times.push_back(sim.Now());
    sim.Schedule(5.0, [&]() { times.push_back(sim.Now()); });
  });
  sim.Run(100.0);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 10.0);
  EXPECT_DOUBLE_EQ(times[1], 15.0);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.Schedule(10.0, [&]() { fired = true; });
  sim.Cancel(id);
  sim.Run(100.0);
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelAfterFireIsNoOp) {
  Simulator sim;
  int count = 0;
  const EventId id = sim.Schedule(1.0, [&]() { ++count; });
  sim.Run(5.0);
  sim.Cancel(id);  // Already fired; must not disturb later events.
  sim.Schedule(1.0, [&]() { ++count; });
  sim.Run(10.0);
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, CancelledHeadDoesNotLeakPastHorizon) {
  Simulator sim;
  bool late_fired = false;
  const EventId early = sim.Schedule(10.0, [&]() {});
  sim.Schedule(200.0, [&]() { late_fired = true; });
  sim.Cancel(early);
  sim.Run(100.0);  // The cancelled head must not cause the 200ms event to run early.
  EXPECT_FALSE(late_fired);
  EXPECT_DOUBLE_EQ(sim.Now(), 100.0);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.Schedule(1.0, [&]() { ++count; });
  sim.Schedule(2.0, [&]() { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, ExecutedEventsCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(i, []() {});
  }
  sim.Run(10.0);
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(SimulatorTest, RunReturnsExecutedCount) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.Schedule(1.0 + i, []() {});
  }
  EXPECT_EQ(sim.Run(4.0), 4u);
  EXPECT_EQ(sim.Run(100.0), 3u);
}

TEST(SimulatorTest, DeterministicWithSeed) {
  auto run = [](uint64_t seed) {
    Simulator sim(seed);
    std::vector<uint64_t> values;
    for (int i = 0; i < 10; ++i) {
      values.push_back(sim.rng().Next());
    }
    return values;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator sim;
  sim.Schedule(10.0, []() {});
  sim.Run(10.0);
  double observed = -1.0;
  sim.ScheduleAt(25.0, [&]() { observed = sim.Now(); });
  sim.Run(30.0);
  EXPECT_DOUBLE_EQ(observed, 25.0);
}

}  // namespace
}  // namespace probcon
