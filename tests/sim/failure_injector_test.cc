#include "src/sim/failure_injector.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace probcon {
namespace {

class InertProcess final : public Process {
 public:
  using Process::Process;

 protected:
  void OnStart() override {}
  void OnMessage(int, const std::shared_ptr<const SimMessage>&) override {}
};

class FailureInjectorTest : public ::testing::Test {
 protected:
  void Build(int n, uint64_t seed = 1) {
    sim_ = std::make_unique<Simulator>(seed);
    network_ = std::make_unique<Network>(sim_.get(), n,
                                         std::make_unique<UniformLatencyModel>(1.0, 1.0));
    processes_.clear();
    for (int i = 0; i < n; ++i) {
      processes_.push_back(std::make_unique<InertProcess>(sim_.get(), network_.get(), i));
      processes_.back()->Start();
    }
  }

  std::vector<Process*> Borrowed() {
    std::vector<Process*> result;
    for (auto& p : processes_) {
      result.push_back(p.get());
    }
    return result;
  }

  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Network> network_;
  std::vector<std::unique_ptr<InertProcess>> processes_;
};

TEST_F(FailureInjectorTest, HighRateCurvesCrashEveryone) {
  Build(5);
  std::vector<std::unique_ptr<FaultCurve>> curves;
  for (int i = 0; i < 5; ++i) {
    curves.push_back(std::make_unique<ConstantFaultCurve>(1.0));  // Mean life 1 time unit.
  }
  FailureInjector injector(sim_.get(), Borrowed(), std::move(curves));
  injector.Arm();
  sim_->Run(100.0);
  EXPECT_EQ(injector.crash_count(), 5);
  for (const auto& p : processes_) {
    EXPECT_TRUE(p->crashed());
  }
}

TEST_F(FailureInjectorTest, ZeroRateCurvesNeverCrash) {
  Build(3);
  std::vector<std::unique_ptr<FaultCurve>> curves;
  for (int i = 0; i < 3; ++i) {
    curves.push_back(std::make_unique<ConstantFaultCurve>(0.0));
  }
  FailureInjector injector(sim_.get(), Borrowed(), std::move(curves));
  injector.Arm();
  sim_->Run(1000.0);
  EXPECT_EQ(injector.crash_count(), 0);
}

TEST_F(FailureInjectorTest, CrashFractionMatchesCurve) {
  // Over a window where p(fail) = 0.3, roughly 30% of a large fleet crashes.
  constexpr int kNodes = 64;  // Bitmask-free here; the injector has no 64 limit.
  constexpr double kWindow = 100.0;
  Build(kNodes, 7);
  std::vector<std::unique_ptr<FaultCurve>> curves;
  for (int i = 0; i < kNodes; ++i) {
    curves.push_back(std::make_unique<ConstantFaultCurve>(
        ConstantFaultCurve::FromWindowProbability(0.3, kWindow)));
  }
  FailureInjector injector(sim_.get(), Borrowed(), std::move(curves));
  injector.Arm();
  sim_->Run(kWindow);
  EXPECT_NEAR(injector.crash_count(), kNodes * 0.3, 12.0);
}

TEST_F(FailureInjectorTest, RepairBringsNodesBack) {
  Build(4);
  std::vector<std::unique_ptr<FaultCurve>> curves;
  for (int i = 0; i < 4; ++i) {
    curves.push_back(std::make_unique<ConstantFaultCurve>(0.5));
  }
  FailureInjector injector(sim_.get(), Borrowed(), std::move(curves),
                           /*repair_rate=*/2.0);
  injector.Arm();
  sim_->Run(500.0);
  EXPECT_GT(injector.crash_count(), 4);  // Nodes keep cycling.
  EXPECT_GT(injector.recovery_count(), 0);
  EXPECT_GE(injector.crash_count(), injector.recovery_count());
}

TEST_F(FailureInjectorTest, ShocksCrashVictimGroups) {
  Build(6);
  std::vector<std::unique_ptr<FaultCurve>> curves;
  for (int i = 0; i < 6; ++i) {
    curves.push_back(std::make_unique<ConstantFaultCurve>(0.0));
  }
  FailureInjector injector(sim_.get(), Borrowed(), std::move(curves));
  injector.Arm({{10.0, {1, 3, 5}}});
  sim_->Run(5.0);
  EXPECT_EQ(injector.crash_count(), 0);
  sim_->Run(20.0);
  EXPECT_EQ(injector.crash_count(), 3);
  EXPECT_TRUE(processes_[1]->crashed());
  EXPECT_TRUE(processes_[3]->crashed());
  EXPECT_TRUE(processes_[5]->crashed());
  EXPECT_FALSE(processes_[0]->crashed());
}

TEST_F(FailureInjectorTest, ShockOnAlreadyCrashedNodeIsNoOp) {
  Build(2);
  std::vector<std::unique_ptr<FaultCurve>> curves;
  curves.push_back(std::make_unique<ConstantFaultCurve>(10.0));  // Dies almost instantly.
  curves.push_back(std::make_unique<ConstantFaultCurve>(0.0));
  FailureInjector injector(sim_.get(), Borrowed(), std::move(curves));
  injector.Arm({{50.0, {0}}});
  sim_->Run(100.0);
  EXPECT_EQ(injector.crash_count(), 1);  // Not double-counted.
}

TEST_F(FailureInjectorTest, RepeatedShocksOnTheSameNodeStayIdempotent) {
  Build(2);
  std::vector<std::unique_ptr<FaultCurve>> curves;
  for (int i = 0; i < 2; ++i) {
    curves.push_back(std::make_unique<ConstantFaultCurve>(0.0));
  }
  FailureInjector injector(sim_.get(), Borrowed(), std::move(curves));
  injector.Arm({{10.0, {0}}, {20.0, {0}}, {30.0, {0}}});
  sim_->Run(100.0);
  EXPECT_EQ(injector.crash_count(), 1);  // One outage, however many shocks pile on.
  EXPECT_TRUE(processes_[0]->crashed());
  EXPECT_FALSE(processes_[1]->crashed());
}

TEST_F(FailureInjectorTest, StaleRepairDoesNotResurrectANodeAnotherFaultClaimed) {
  // Regression: a shock crashes node 0 and schedules a repair. Before the repair fires, a
  // SECOND fault source (here the test, standing in for the chaos nemesis) crashes the same
  // node, claiming the outage via the crash generation. The injector's pending repair is now
  // stale and must leave the node down — only the claimant may restart it.
  Build(1);
  std::vector<std::unique_ptr<FaultCurve>> curves;
  curves.push_back(std::make_unique<ConstantFaultCurve>(0.0));
  FailureInjector injector(sim_.get(), Borrowed(), std::move(curves),
                           /*repair_rate=*/0.01);  // Mean repair delay 100ms.
  injector.Arm({{10.0, {0}}});
  // Scheduled after Arm, so at t=10 the shock lands first, then the external claim.
  sim_->Schedule(10.0, [this]() { processes_[0]->Crash(); });
  sim_->Run(100000.0);
  EXPECT_TRUE(processes_[0]->crashed());  // The stale repair never resurrected it.
  EXPECT_EQ(injector.recovery_count(), 0);
}

TEST_F(FailureInjectorTest, WearOutCurvesCrashLateNotEarly) {
  Build(8, 21);
  std::vector<std::unique_ptr<FaultCurve>> curves;
  for (int i = 0; i < 8; ++i) {
    // Strong wear-out: almost no hazard before the scale age.
    curves.push_back(std::make_unique<WeibullFaultCurve>(8.0, 100.0));
  }
  FailureInjector injector(sim_.get(), Borrowed(), std::move(curves));
  injector.Arm();
  sim_->Run(50.0);
  EXPECT_EQ(injector.crash_count(), 0);  // P(fail by 50) = 1-exp(-(0.5)^8) ~ 0.4%.
  sim_->Run(300.0);
  EXPECT_GE(injector.crash_count(), 7);  // P(fail by 300) ~ 1.
}

}  // namespace
}  // namespace probcon
