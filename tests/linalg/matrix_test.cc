#include "src/linalg/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace probcon {
namespace {

TEST(MatrixTest, IdentityAndMultiply) {
  const Matrix eye = Matrix::Identity(3);
  Matrix a(3, 3);
  int value = 1;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      a.At(r, c) = value++;
    }
  }
  const Matrix product = eye * a;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(product.At(r, c), a.At(r, c));
    }
  }
}

TEST(MatrixTest, MatrixVectorProduct) {
  Matrix a(2, 3);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(0, 2) = 3;
  a.At(1, 0) = 4;
  a.At(1, 1) = 5;
  a.At(1, 2) = 6;
  const Vector x = {1.0, 1.0, 1.0};
  const Vector y = a * x;
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(MatrixTest, TransposedSwapsIndices) {
  Matrix a(2, 3);
  a.At(0, 2) = 7.0;
  a.At(1, 0) = -2.0;
  const Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 0), 7.0);
  EXPECT_DOUBLE_EQ(t.At(0, 1), -2.0);
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a(2, 2);
  a.At(0, 0) = 1.0;
  a.At(1, 1) = 2.0;
  const Matrix b = a.Scaled(3.0);
  EXPECT_DOUBLE_EQ(b.At(0, 0), 3.0);
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum.At(0, 0), 4.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff.At(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(diff.MaxAbs(), 4.0);
}

TEST(LuTest, SolvesHandComputedSystem) {
  // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
  Matrix a(2, 2);
  a.At(0, 0) = 2;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 3;
  const auto x = SolveLinearSystem(a, {5.0, 10.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(LuTest, DetectsSingular) {
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 4;
  const auto result = SolveLinearSystem(a, {1.0, 2.0});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(LuTest, RequiresPivoting) {
  // Zero on the initial diagonal forces a row swap.
  Matrix a(2, 2);
  a.At(0, 0) = 0;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 0;
  const auto x = SolveLinearSystem(a, {2.0, 3.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(LuTest, DeterminantKnownValues) {
  Matrix a(2, 2);
  a.At(0, 0) = 3;
  a.At(0, 1) = 1;
  a.At(1, 0) = 4;
  a.At(1, 1) = 2;
  const auto lu = LuDecomposition::Factor(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu->Determinant(), 2.0, 1e-12);
  EXPECT_NEAR(LuDecomposition::Factor(Matrix::Identity(5))->Determinant(), 1.0, 1e-12);
}

class RandomSystemTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomSystemTest, SolveThenMultiplyRoundTrips) {
  const int n = GetParam();
  Rng rng(1000 + n);
  Matrix a(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      a.At(r, c) = rng.NextNormal();
    }
    a.At(r, r) += n;  // Diagonal dominance keeps it well-conditioned.
  }
  Vector b(n);
  for (int i = 0; i < n; ++i) {
    b[i] = rng.NextNormal();
  }
  const auto x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok());
  const Vector residual = a * *x;
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(residual[i], b[i], 1e-9) << "row " << i;
  }
}

TEST_P(RandomSystemTest, MultipleRhsReuseFactorization) {
  const int n = GetParam();
  Rng rng(2000 + n);
  Matrix a(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      a.At(r, c) = rng.NextDouble();
    }
    a.At(r, r) += n;
  }
  const auto lu = LuDecomposition::Factor(a);
  ASSERT_TRUE(lu.ok());
  for (int rhs = 0; rhs < 3; ++rhs) {
    Vector b(n);
    for (int i = 0; i < n; ++i) {
      b[i] = rng.NextNormal();
    }
    const Vector x = lu->Solve(b);
    const Vector residual = a * x;
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(residual[i], b[i], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomSystemTest, ::testing::Values(1, 2, 5, 20, 50));

}  // namespace
}  // namespace probcon
