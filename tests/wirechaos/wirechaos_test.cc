// probcon::wirechaos: plan generation/serialization determinism, the fault-injecting
// proxy against a live TCP serving path, and a small end-to-end campaign upholding the
// resilience contract.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/serve/client.h"
#include "src/serve/server.h"
#include "src/serve/transport.h"
#include "src/wirechaos/campaign.h"
#include "src/wirechaos/proxy.h"
#include "src/wirechaos/wire_plan.h"

namespace probcon::wirechaos {
namespace {

TEST(WirePlanTest, GenerationIsAPureFunctionOfTheSeed) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const WirePlan plan = GenerateWirePlan(seed);
    EXPECT_EQ(plan, GenerateWirePlan(seed));
    EXPECT_EQ(plan.seed, seed);
    ASSERT_GE(plan.faults.size(), 1u);
    ASSERT_LE(plan.faults.size(), 5u);
    EXPECT_TRUE(plan.Validate().ok()) << plan.Describe();
  }
  EXPECT_NE(GenerateWirePlan(1), GenerateWirePlan(2));
}

TEST(WirePlanTest, JsonRoundTripIsByteIdentical) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const WirePlan plan = GenerateWirePlan(seed);
    const std::string json = plan.ToJson();
    const Result<WirePlan> reparsed = WirePlan::FromJson(json);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_EQ(*reparsed, plan);
    EXPECT_EQ(reparsed->ToJson(), json);
  }
}

TEST(WirePlanTest, ValidateRejectsOutOfRangeFaults) {
  WirePlan plan;
  WireFault fault;
  fault.kind = WireFaultKind::kStall;
  fault.stall_ms = kMaxWireStallMs * 10;  // A stall long enough to defeat any deadline.
  plan.faults.push_back(fault);
  EXPECT_FALSE(plan.Validate().ok());

  plan.faults[0].stall_ms = 5.0;
  plan.faults[0].conn_index = kMaxWireConnIndex + 1;
  EXPECT_FALSE(plan.Validate().ok());

  plan.faults[0].conn_index = 0;
  EXPECT_TRUE(plan.Validate().ok());
}

// A live serving path behind the proxy: QueryServer + TcpServer upstream, the proxy in
// front, clients dialing the proxy's port.
class WireProxyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<serve::QueryServer>(serve::ServerOptions{});
    transport_ = std::make_unique<serve::TcpServer>(*server_);
    ASSERT_TRUE(transport_->Start(0).ok());
  }

  void TearDown() override {
    transport_->Stop();
    server_->Drain();
  }

  std::unique_ptr<serve::QueryServer> server_;
  std::unique_ptr<serve::TcpServer> transport_;
};

TEST_F(WireProxyTest, FaultFreePlanForwardsTransparently) {
  WirePlan plan;  // No faults: pure relay.
  ChaosProxy proxy(transport_->port(), plan);
  ASSERT_TRUE(proxy.Start().ok());

  auto channel = serve::TcpChannel::Connect(proxy.port());
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();
  serve::ServeClient client(std::move(*channel));
  auto table1 = client.Query("table1", *ParseJson(R"({"n": 4})", "params"));
  ASSERT_TRUE(table1.ok()) << table1.status().ToString();
  ASSERT_TRUE(table1->status.ok()) << table1->status.ToString();
  const Json* report = table1->result.Find("report");
  ASSERT_NE(report, nullptr);
  ASSERT_NE(report->Find("safe_and_live"), nullptr);
  EXPECT_EQ(report->Find("safe_and_live")->text, "99.94%");

  proxy.Stop();
  const ChaosProxy::Counters counters = proxy.counters();
  EXPECT_EQ(counters.accepted, 1u);
  EXPECT_EQ(counters.faults_fired, 0u);
  EXPECT_GT(counters.client_to_server_bytes, 0u);
  EXPECT_GT(counters.server_to_client_bytes, 0u);
}

TEST_F(WireProxyTest, RefusedFirstConnectionIsAbsorbedByARetry) {
  WirePlan plan;
  WireFault refuse;
  refuse.kind = WireFaultKind::kRefuseConnect;
  refuse.conn_index = 0;
  plan.faults.push_back(refuse);
  ChaosProxy proxy(transport_->port(), plan);
  ASSERT_TRUE(proxy.Start().ok());

  serve::RetryOptions options;
  options.initial_backoff_ms = 1.0;
  options.attempt_timeout_ms = 1000.0;
  serve::ResilientClient client(
      serve::ResilientClient::TcpFactory(proxy.port(), options.attempt_timeout_ms),
      options);
  auto ping = client.Query("ping", Json::Object(), /*deadline_ms=*/5000.0);
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();
  EXPECT_TRUE(ping->status.ok()) << ping->status.ToString();
  EXPECT_GE(client.retries(), 1u);
  EXPECT_GE(proxy.counters().faults_fired, 1u);
}

TEST_F(WireProxyTest, MidFrameCloseYieldsUnavailableNotAHang) {
  WirePlan plan;
  WireFault close;
  close.kind = WireFaultKind::kCloseAfter;
  close.conn_index = 0;
  close.direction = WireDirection::kServerToClient;
  close.after_bytes = 4;  // Inside the first response frame's header.
  plan.faults.push_back(close);
  ChaosProxy proxy(transport_->port(), plan);
  ASSERT_TRUE(proxy.Start().ok());

  auto channel = serve::TcpChannel::Connect(proxy.port(), /*timeout_ms=*/2000.0);
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();
  serve::ServeClient client(std::move(*channel));
  auto ping = client.Query("ping", Json::Object());
  ASSERT_FALSE(ping.ok()) << "a mid-frame close cannot produce a response";
  EXPECT_EQ(ping.status().code(), StatusCode::kUnavailable) << ping.status().ToString();
  EXPECT_NE(ping.status().message().find("mid-frame"), std::string::npos)
      << ping.status().ToString();
}

TEST(WireCampaignTest, SmallCampaignUpholdsTheResilienceContract) {
  WireCampaignOptions options;
  options.plans = 8;
  options.seed = 20260808;
  options.call_deadline_ms = 4000.0;
  options.attempt_timeout_ms = 300.0;
  const Result<WireCampaignResult> result = RunWireCampaign(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->plans_run, 8);
  EXPECT_GT(result->calls, 0u);
  EXPECT_GT(result->ok, 0u);
  for (const WireCampaignFailure& failure : result->failures) {
    ADD_FAILURE() << "plan " << failure.plan_index << ": " << failure.reason << "\n"
                  << failure.shrunk.ToJson();
  }
}

}  // namespace
}  // namespace probcon::wirechaos
