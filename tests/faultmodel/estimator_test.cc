#include "src/faultmodel/estimator.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/faultmodel/fault_curve.h"

namespace probcon {
namespace {

// Synthesizes right-censored observations from a ground-truth curve.
std::vector<LifetimeObservation> Synthesize(const FaultCurve& truth, int devices,
                                            double window, uint64_t seed) {
  Rng rng(seed);
  std::vector<LifetimeObservation> observations;
  for (int i = 0; i < devices; ++i) {
    LifetimeObservation obs;
    obs.entry_age = 0.0;
    const double failure_age = truth.SampleFailureAge(0.0, rng.NextDouble());
    if (failure_age <= window) {
      obs.exit_age = failure_age;
      obs.failed = true;
    } else {
      obs.exit_age = window;
      obs.failed = false;
    }
    observations.push_back(obs);
  }
  return observations;
}

TEST(ValidateTest, RejectsEmptyAndBadIntervals) {
  EXPECT_FALSE(ValidateObservations({}).ok());
  EXPECT_FALSE(ValidateObservations({{5.0, 5.0, true}}).ok());
  EXPECT_FALSE(ValidateObservations({{-1.0, 5.0, true}}).ok());
  EXPECT_TRUE(ValidateObservations({{0.0, 5.0, true}}).ok());
}

TEST(ExponentialMleTest, RecoversRate) {
  const ConstantFaultCurve truth(0.002);
  const auto observations = Synthesize(truth, 20000, 1000.0, 42);
  const auto fitted = FitExponential(observations);
  ASSERT_TRUE(fitted.ok());
  EXPECT_NEAR(fitted->rate(), 0.002, 0.0002);
}

TEST(ExponentialMleTest, HandComputedTinyCase) {
  // 2 failures over total exposure 100 + 50 + 50 = 200 -> rate 0.01.
  const std::vector<LifetimeObservation> observations = {
      {0.0, 100.0, true}, {0.0, 50.0, true}, {0.0, 50.0, false}};
  const auto fitted = FitExponential(observations);
  ASSERT_TRUE(fitted.ok());
  EXPECT_NEAR(fitted->rate(), 2.0 / 200.0, 1e-12);
}

TEST(ExponentialMleTest, NeedsAFailure) {
  const std::vector<LifetimeObservation> observations = {{0.0, 10.0, false}};
  EXPECT_FALSE(FitExponential(observations).ok());
}

TEST(WeibullMleTest, RecoversWearOutShape) {
  const WeibullFaultCurve truth(3.0, 500.0);
  const auto observations = Synthesize(truth, 5000, 800.0, 7);
  const auto fitted = FitWeibull(observations);
  ASSERT_TRUE(fitted.ok());
  EXPECT_NEAR(fitted->shape(), 3.0, 0.15);
  EXPECT_NEAR(fitted->scale(), 500.0, 20.0);
}

TEST(WeibullMleTest, RecoversInfantMortalityShape) {
  const WeibullFaultCurve truth(0.6, 2000.0);
  const auto observations = Synthesize(truth, 5000, 1000.0, 9);
  const auto fitted = FitWeibull(observations);
  ASSERT_TRUE(fitted.ok());
  EXPECT_NEAR(fitted->shape(), 0.6, 0.05);
}

TEST(WeibullMleTest, HeavyCensoringStillConverges) {
  // Only ~5% of devices fail within the window.
  const WeibullFaultCurve truth(2.0, 1000.0);
  const auto observations = Synthesize(truth, 20000, 230.0, 11);
  const auto fitted = FitWeibull(observations);
  ASSERT_TRUE(fitted.ok());
  EXPECT_NEAR(fitted->shape(), 2.0, 0.25);
}

TEST(WeibullMleTest, LeftTruncatedObservations) {
  // Devices observed from age 300 only (fleet joined monitoring late).
  const WeibullFaultCurve truth(2.5, 600.0);
  Rng rng(13);
  std::vector<LifetimeObservation> observations;
  for (int i = 0; i < 8000; ++i) {
    LifetimeObservation obs;
    obs.entry_age = 300.0;
    const double failure_age = truth.SampleFailureAge(300.0, rng.NextDouble());
    if (failure_age <= 1200.0) {
      obs.exit_age = failure_age;
      obs.failed = true;
    } else {
      obs.exit_age = 1200.0;
      obs.failed = false;
    }
    observations.push_back(obs);
  }
  const auto fitted = FitWeibull(observations);
  ASSERT_TRUE(fitted.ok());
  EXPECT_NEAR(fitted->shape(), 2.5, 0.2);
  EXPECT_NEAR(fitted->scale(), 600.0, 30.0);
}

TEST(WeibullMleTest, RejectsDegenerateInput) {
  EXPECT_FALSE(FitWeibull({{0.0, 5.0, true}}).ok());
  // Two failures at the SAME age carry no shape information.
  EXPECT_FALSE(FitWeibull({{0.0, 5.0, true}, {0.0, 5.0, true}}).ok());
}

TEST(NelsonAalenTest, HandComputedSteps) {
  // 4 devices: failures at t=1 (4 at risk) and t=2 (3 at risk); 2 censored at t=3.
  const std::vector<LifetimeObservation> observations = {
      {0.0, 1.0, true}, {0.0, 2.0, true}, {0.0, 3.0, false}, {0.0, 3.0, false}};
  const auto points = NelsonAalen(observations);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 3u);
  EXPECT_DOUBLE_EQ((*points)[0].cumulative_hazard, 0.0);
  EXPECT_NEAR((*points)[1].cumulative_hazard, 0.25, 1e-12);         // 1/4.
  EXPECT_NEAR((*points)[2].cumulative_hazard, 0.25 + 1.0 / 3.0, 1e-12);
}

TEST(NelsonAalenTest, TracksTrueCumulativeHazard) {
  const ConstantFaultCurve truth(0.01);
  const auto observations = Synthesize(truth, 20000, 200.0, 21);
  const auto points = NelsonAalen(observations);
  ASSERT_TRUE(points.ok());
  // At t=100, H = 1.0.
  const TraceFaultCurve curve(*points);
  EXPECT_NEAR(curve.CumulativeHazard(100.0), 1.0, 0.05);
}

TEST(NelsonAalenTest, FeedsTraceFaultCurve) {
  const WeibullFaultCurve truth(2.0, 300.0);
  const auto observations = Synthesize(truth, 10000, 500.0, 23);
  const auto points = NelsonAalen(observations);
  ASSERT_TRUE(points.ok());
  const TraceFaultCurve empirical(*points);
  for (double t = 50.0; t <= 400.0; t += 50.0) {
    EXPECT_NEAR(empirical.CumulativeHazard(t), truth.CumulativeHazard(t),
                std::max(0.03, truth.CumulativeHazard(t) * 0.1))
        << "t=" << t;
  }
}

TEST(LogLikelihoodTest, TrueModelBeatsWrongModel) {
  const WeibullFaultCurve truth(3.0, 500.0);
  const auto observations = Synthesize(truth, 3000, 800.0, 31);
  const WeibullFaultCurve wrong(0.7, 500.0);
  EXPECT_GT(LogLikelihood(truth, observations), LogLikelihood(wrong, observations));
}

TEST(LogLikelihoodTest, FittedModelNearTruth) {
  const ConstantFaultCurve truth(0.005);
  const auto observations = Synthesize(truth, 5000, 400.0, 37);
  const auto fitted = FitExponential(observations);
  ASSERT_TRUE(fitted.ok());
  // Fitted MLE likelihood must be >= truth's (it maximizes the sample likelihood).
  EXPECT_GE(LogLikelihood(*fitted, observations), LogLikelihood(truth, observations) - 1e-6);
}

}  // namespace
}  // namespace probcon
