#include "src/faultmodel/joint_model.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace probcon {
namespace {

// Exact configuration probabilities must sum to 1 over all 2^n configurations.
void ExpectConfigurationsSumToOne(const JointFailureModel& model) {
  ASSERT_LE(model.n(), 16);
  double sum = 0.0;
  for (FailureConfiguration config = 0; config < (FailureConfiguration{1} << model.n());
       ++config) {
    const auto prob = model.ConfigurationProbability(config);
    ASSERT_TRUE(prob.has_value());
    EXPECT_GE(*prob, 0.0);
    sum += *prob;
  }
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

// Sampling frequencies should match marginals.
void ExpectSamplingMatchesMarginals(const JointFailureModel& model, uint64_t seed) {
  Rng rng(seed);
  constexpr int kTrials = 200000;
  std::vector<int> failures(model.n(), 0);
  for (int t = 0; t < kTrials; ++t) {
    const FailureConfiguration config = model.Sample(rng);
    for (int i = 0; i < model.n(); ++i) {
      if (NodeFailed(config, i)) {
        ++failures[i];
      }
    }
  }
  for (int i = 0; i < model.n(); ++i) {
    EXPECT_NEAR(static_cast<double>(failures[i]) / kTrials,
                model.MarginalFailureProbability(i), 0.01)
        << "node " << i;
  }
}

TEST(IndependentModelTest, ConfigurationProbabilityIsProduct) {
  const IndependentFailureModel model({0.1, 0.2, 0.3});
  EXPECT_NEAR(*model.ConfigurationProbability(0b000), 0.9 * 0.8 * 0.7, 1e-15);
  EXPECT_NEAR(*model.ConfigurationProbability(0b101), 0.1 * 0.8 * 0.3, 1e-15);
  EXPECT_NEAR(*model.ConfigurationProbability(0b111), 0.1 * 0.2 * 0.3, 1e-15);
}

TEST(IndependentModelTest, ConfigurationsSumToOne) {
  ExpectConfigurationsSumToOne(IndependentFailureModel({0.1, 0.2, 0.3, 0.9, 0.05}));
}

TEST(IndependentModelTest, SamplingMatchesMarginals) {
  ExpectSamplingMatchesMarginals(IndependentFailureModel({0.05, 0.3, 0.8}), 101);
}

TEST(IndependentModelTest, UniformFactory) {
  const auto model = IndependentFailureModel::Uniform(7, 0.04);
  EXPECT_EQ(model.n(), 7);
  for (int i = 0; i < 7; ++i) {
    EXPECT_DOUBLE_EQ(model.MarginalFailureProbability(i), 0.04);
  }
}

TEST(CommonCauseModelTest, ConfigurationsSumToOne) {
  ExpectConfigurationsSumToOne(
      CommonCauseFailureModel({0.01, 0.02, 0.03, 0.04}, 0.1, {0.5, 0.5, 0.9, 0.2}));
}

TEST(CommonCauseModelTest, MarginalFormula) {
  const CommonCauseFailureModel model({0.1}, 0.2, {0.5});
  // P = 0.8 * 0.1 + 0.2 * (0.1 + 0.9 * 0.5) = 0.08 + 0.11 = 0.19.
  EXPECT_NEAR(model.MarginalFailureProbability(0), 0.19, 1e-12);
}

TEST(CommonCauseModelTest, SamplingMatchesMarginals) {
  ExpectSamplingMatchesMarginals(
      CommonCauseFailureModel({0.02, 0.05, 0.1}, 0.15, {0.6, 0.6, 0.6}), 202);
}

TEST(CommonCauseModelTest, ShockInducesPositiveCorrelation) {
  // With a strong shock, joint failure of both nodes exceeds the independent product.
  const CommonCauseFailureModel model({0.01, 0.01}, 0.1, {0.9, 0.9});
  const double joint = *model.ConfigurationProbability(0b11);
  const double m0 = model.MarginalFailureProbability(0);
  const double m1 = model.MarginalFailureProbability(1);
  EXPECT_GT(joint, m0 * m1 * 2.0);
}

TEST(CommonCauseModelTest, ZeroShockReducesToIndependent) {
  const CommonCauseFailureModel with_shock({0.1, 0.3}, 0.0, {0.9, 0.9});
  const IndependentFailureModel independent({0.1, 0.3});
  for (FailureConfiguration config = 0; config < 4; ++config) {
    EXPECT_NEAR(*with_shock.ConfigurationProbability(config),
                *independent.ConfigurationProbability(config), 1e-14);
  }
}

TEST(FailureDomainModelTest, ConfigurationsSumToOne) {
  ExpectConfigurationsSumToOne(
      FailureDomainModel({0.01, 0.02, 0.03, 0.04}, {0, 0, 1, 1}, {0.05, 0.1}));
}

TEST(FailureDomainModelTest, MarginalCombinesBaseAndDomain) {
  const FailureDomainModel model({0.1, 0.2}, {0, 1}, {0.3, 0.0});
  EXPECT_NEAR(model.MarginalFailureProbability(0), 1.0 - 0.9 * 0.7, 1e-12);
  EXPECT_NEAR(model.MarginalFailureProbability(1), 0.2, 1e-12);
}

TEST(FailureDomainModelTest, DomainEventKillsWholeRack) {
  // Base probability zero; only the domain can fail, and it takes both members with it.
  const FailureDomainModel model({0.0, 0.0, 0.0}, {0, 0, 1}, {0.25, 0.0});
  EXPECT_NEAR(*model.ConfigurationProbability(0b011), 0.25, 1e-12);
  EXPECT_NEAR(*model.ConfigurationProbability(0b001), 0.0, 1e-12);  // Half a rack: impossible.
  EXPECT_NEAR(*model.ConfigurationProbability(0b000), 0.75, 1e-12);
}

TEST(FailureDomainModelTest, SamplingMatchesMarginals) {
  ExpectSamplingMatchesMarginals(
      FailureDomainModel({0.02, 0.02, 0.05, 0.05}, {0, 0, 1, 1}, {0.1, 0.05}), 303);
}

TEST(BetaBinomialModelTest, ConfigurationsSumToOne) {
  ExpectConfigurationsSumToOne(BetaBinomialFailureModel(6, 2.0, 18.0));
}

TEST(BetaBinomialModelTest, MarginalIsAlphaOverSum) {
  const BetaBinomialFailureModel model(5, 1.0, 9.0);
  EXPECT_NEAR(model.MarginalFailureProbability(0), 0.1, 1e-12);
}

TEST(BetaBinomialModelTest, PairwiseCorrelationFormula) {
  const BetaBinomialFailureModel model(5, 2.0, 8.0);
  EXPECT_NEAR(model.PairwiseCorrelation(), 1.0 / 11.0, 1e-12);
}

TEST(BetaBinomialModelTest, PositiveCorrelationRaisesJointFailures) {
  // Same marginal (10%) but correlated: P(both fail) must exceed the independent 1%.
  const BetaBinomialFailureModel correlated(2, 0.5, 4.5);
  const double joint = *correlated.ConfigurationProbability(0b11);
  EXPECT_GT(joint, 0.011);
}

TEST(BetaBinomialModelTest, SamplingMatchesMarginals) {
  ExpectSamplingMatchesMarginals(BetaBinomialFailureModel(4, 3.0, 27.0), 404);
}

TEST(BetaBinomialModelTest, Exchangeability) {
  const BetaBinomialFailureModel model(4, 2.0, 6.0);
  // All configurations with the same failure count have equal probability.
  EXPECT_NEAR(*model.ConfigurationProbability(0b0011), *model.ConfigurationProbability(0b1100),
              1e-15);
  EXPECT_NEAR(*model.ConfigurationProbability(0b0101), *model.ConfigurationProbability(0b1010),
              1e-15);
}

TEST(SamplersTest, GammaMeanMatchesShape) {
  Rng rng(999);
  for (const double shape : {0.5, 1.0, 3.0, 10.0}) {
    double sum = 0.0;
    constexpr int kTrials = 100000;
    for (int i = 0; i < kTrials; ++i) {
      sum += SampleGamma(rng, shape);
    }
    EXPECT_NEAR(sum / kTrials, shape, shape * 0.05) << "shape=" << shape;
  }
}

TEST(SamplersTest, BetaMeanMatchesMoments) {
  Rng rng(888);
  double sum = 0.0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    const double x = SampleBeta(rng, 2.0, 6.0);
    EXPECT_GT(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kTrials, 0.25, 0.01);
}

TEST(HelpersTest, CountFailuresAndNodeFailed) {
  EXPECT_EQ(CountFailures(0b1011), 3);
  EXPECT_TRUE(NodeFailed(0b1011, 0));
  EXPECT_FALSE(NodeFailed(0b1011, 2));
  EXPECT_TRUE(NodeFailed(0b1011, 3));
}

}  // namespace
}  // namespace probcon
