#include "src/faultmodel/afr.h"

#include <cmath>

#include <gtest/gtest.h>

namespace probcon {
namespace {

TEST(AfrTest, RateRoundTrip) {
  for (const double afr : {0.001, 0.01, 0.04, 0.08, 0.5}) {
    EXPECT_NEAR(AfrFromRate(RateFromAfr(afr)), afr, 1e-12) << afr;
  }
}

TEST(AfrTest, MtbfRoundTrip) {
  for (const double afr : {0.005, 0.02, 0.3}) {
    EXPECT_NEAR(AfrFromMtbfHours(MtbfHoursFromAfr(afr)), afr, 1e-12) << afr;
  }
}

TEST(AfrTest, SmallAfrApproximatesLinearRate) {
  // For small AFR, rate * hours_per_year ~ AFR.
  const double rate = RateFromAfr(0.01);
  EXPECT_NEAR(rate * kHoursPerYear, 0.01, 1e-4);
}

TEST(AfrTest, BackblazeScaleSanity) {
  // A 1% AFR drive has an MTBF near 872,000 hours.
  EXPECT_NEAR(MtbfHoursFromAfr(0.01), kHoursPerYear / 0.01, kHoursPerYear);
}

TEST(AfrTest, RescaleWindowIdentity) {
  EXPECT_NEAR(RescaleWindowProbability(0.08, 24.0, 24.0), 0.08, 1e-12);
}

TEST(AfrTest, RescaleWindowHalving) {
  const double daily = 0.02;
  const double half_day = RescaleWindowProbability(daily, 24.0, 12.0);
  // Two half-days compose back to a day.
  EXPECT_NEAR(1.0 - (1.0 - half_day) * (1.0 - half_day), daily, 1e-12);
}

TEST(AfrTest, RescaleWindowGrowth) {
  const double weekly = RescaleWindowProbability(0.01, 24.0, 168.0);
  EXPECT_GT(weekly, 0.01);
  EXPECT_LT(weekly, 0.07);  // Sub-linear due to compounding.
}

TEST(AfrTest, ZeroAfrIsZeroRate) {
  EXPECT_DOUBLE_EQ(RateFromAfr(0.0), 0.0);
  EXPECT_DOUBLE_EQ(AfrFromRate(0.0), 0.0);
}

}  // namespace
}  // namespace probcon
