#include "src/faultmodel/fault_curve.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

namespace probcon {
namespace {

TEST(ConstantFaultCurveTest, ClosedForms) {
  const ConstantFaultCurve curve(0.01);
  EXPECT_DOUBLE_EQ(curve.HazardRate(0.0), 0.01);
  EXPECT_DOUBLE_EQ(curve.HazardRate(1000.0), 0.01);
  EXPECT_DOUBLE_EQ(curve.CumulativeHazard(100.0), 1.0);
  EXPECT_NEAR(curve.Survival(100.0), std::exp(-1.0), 1e-12);
}

TEST(ConstantFaultCurveTest, FromWindowProbabilityRoundTrips) {
  const auto curve = ConstantFaultCurve::FromWindowProbability(0.08, 24.0);
  EXPECT_NEAR(curve.FailureProbability(0.0, 24.0), 0.08, 1e-12);
  // Memoryless: same probability from any starting age.
  EXPECT_NEAR(curve.FailureProbability(1000.0, 1024.0), 0.08, 1e-12);
}

TEST(ConstantFaultCurveTest, SampleFailureAgeIsExponential) {
  const ConstantFaultCurve curve(0.5);
  // Inverse CDF at u: t = -ln(1-u)/rate.
  EXPECT_NEAR(curve.SampleFailureAge(0.0, 0.5), std::log(2.0) / 0.5, 1e-9);
  EXPECT_NEAR(curve.SampleFailureAge(10.0, 0.5), 10.0 + std::log(2.0) / 0.5, 1e-9);
}

TEST(ConstantFaultCurveTest, ZeroRateNeverFails) {
  const ConstantFaultCurve curve(0.0);
  EXPECT_DOUBLE_EQ(curve.FailureProbability(0.0, 1e9), 0.0);
  EXPECT_TRUE(std::isinf(curve.SampleFailureAge(0.0, 0.99)));
}

TEST(WeibullFaultCurveTest, ClosedForms) {
  const WeibullFaultCurve curve(2.0, 10.0);
  // H(t) = (t/10)^2.
  EXPECT_DOUBLE_EQ(curve.CumulativeHazard(10.0), 1.0);
  EXPECT_DOUBLE_EQ(curve.CumulativeHazard(20.0), 4.0);
  // h(t) = (2/10)(t/10).
  EXPECT_NEAR(curve.HazardRate(10.0), 0.2, 1e-12);
  EXPECT_NEAR(curve.HazardRate(5.0), 0.1, 1e-12);
}

TEST(WeibullFaultCurveTest, ShapeOneIsExponential) {
  const WeibullFaultCurve weibull(1.0, 100.0);
  const ConstantFaultCurve exponential(0.01);
  for (double t = 0.0; t <= 500.0; t += 50.0) {
    EXPECT_NEAR(weibull.CumulativeHazard(t), exponential.CumulativeHazard(t), 1e-9) << t;
  }
}

TEST(WeibullFaultCurveTest, InfantMortalityHazardDecreases) {
  const WeibullFaultCurve curve(0.5, 1000.0);
  EXPECT_GT(curve.HazardRate(1.0), curve.HazardRate(100.0));
  EXPECT_GT(curve.HazardRate(100.0), curve.HazardRate(10000.0));
}

TEST(WeibullFaultCurveTest, WearOutHazardIncreases) {
  const WeibullFaultCurve curve(3.0, 1000.0);
  EXPECT_LT(curve.HazardRate(1.0), curve.HazardRate(100.0));
  EXPECT_LT(curve.HazardRate(100.0), curve.HazardRate(10000.0));
}

TEST(WeibullFaultCurveTest, SampleFailureAgeInvertsCdf) {
  const WeibullFaultCurve curve(1.5, 50.0);
  for (const double u : {0.1, 0.5, 0.9}) {
    const double age = curve.SampleFailureAge(0.0, u);
    // P(fail by age) should equal u.
    EXPECT_NEAR(curve.FailureProbability(0.0, age), u, 1e-9) << "u=" << u;
  }
}

TEST(WeibullFaultCurveTest, ConditionalSamplingRespectsCurrentAge) {
  const WeibullFaultCurve curve(2.0, 100.0);
  const double age = curve.SampleFailureAge(80.0, 0.5);
  EXPECT_GT(age, 80.0);
  // P(fail in (80, age] | alive at 80) = 0.5.
  EXPECT_NEAR(curve.FailureProbability(80.0, age), 0.5, 1e-9);
}

TEST(GompertzFaultCurveTest, ZeroAgingIsConstant) {
  const GompertzFaultCurve gompertz(0.01, 0.0);
  const ConstantFaultCurve constant(0.01);
  for (double t = 0.0; t <= 100.0; t += 25.0) {
    EXPECT_DOUBLE_EQ(gompertz.HazardRate(t), constant.HazardRate(t));
    EXPECT_DOUBLE_EQ(gompertz.CumulativeHazard(t), constant.CumulativeHazard(t));
  }
}

TEST(GompertzFaultCurveTest, ClosedFormCumulativeHazard) {
  const GompertzFaultCurve curve(0.001, 0.01);
  // H(t) = b/a (e^{at} - 1).
  EXPECT_NEAR(curve.CumulativeHazard(100.0), 0.1 * (std::exp(1.0) - 1.0), 1e-12);
  // And it matches the numeric integral of the hazard (base-class path via a wrapper).
  class Opaque final : public FaultCurve {
   public:
    double HazardRate(double t) const override { return inner_.HazardRate(t); }
    std::string Describe() const override { return "opaque"; }
    std::unique_ptr<FaultCurve> Clone() const override {
      return std::make_unique<Opaque>(*this);
    }

   private:
    GompertzFaultCurve inner_{0.001, 0.01};
  };
  EXPECT_NEAR(Opaque().CumulativeHazard(100.0), curve.CumulativeHazard(100.0), 1e-9);
}

TEST(GompertzFaultCurveTest, AgingCompoundsRisk) {
  // Same window at later ages must be riskier (the SDC aging effect).
  const GompertzFaultCurve curve(1e-6, 1e-4);
  const double young = curve.FailureProbability(0.0, 1000.0);
  const double old = curve.FailureProbability(50000.0, 51000.0);
  EXPECT_GT(old, young * 50.0);
}

TEST(GompertzFaultCurveTest, NegativeAgingModelsBurnIn) {
  const GompertzFaultCurve curve(0.01, -0.001);
  EXPECT_GT(curve.HazardRate(0.0), curve.HazardRate(5000.0));
  // Total hazard saturates at b/|a|.
  EXPECT_LT(curve.CumulativeHazard(1e7), 0.01 / 0.001 + 1e-9);
}

TEST(CompositeFaultCurveTest, HazardsAdd) {
  std::vector<std::unique_ptr<FaultCurve>> parts;
  parts.push_back(std::make_unique<ConstantFaultCurve>(0.01));
  parts.push_back(std::make_unique<ConstantFaultCurve>(0.02));
  const CompositeFaultCurve composite(std::move(parts));
  EXPECT_NEAR(composite.HazardRate(5.0), 0.03, 1e-12);
  EXPECT_NEAR(composite.CumulativeHazard(10.0), 0.3, 1e-12);
}

TEST(CompositeFaultCurveTest, CloneIsDeep) {
  std::vector<std::unique_ptr<FaultCurve>> parts;
  parts.push_back(std::make_unique<WeibullFaultCurve>(2.0, 10.0));
  const CompositeFaultCurve composite(std::move(parts));
  const auto clone = composite.Clone();
  EXPECT_DOUBLE_EQ(clone->CumulativeHazard(10.0), composite.CumulativeHazard(10.0));
}

TEST(BathtubCurveTest, HasBathtubShape) {
  const auto bathtub = MakeBathtubCurve(/*infant_shape=*/0.5, /*infant_scale=*/1e5,
                                        /*useful_life_rate=*/1e-6,
                                        /*wearout_shape=*/4.0, /*wearout_scale=*/6e4);
  const double early = bathtub.HazardRate(100.0);
  const double middle = bathtub.HazardRate(20000.0);
  const double late = bathtub.HazardRate(80000.0);
  EXPECT_GT(early, middle);  // Infant mortality dominates early.
  EXPECT_GT(late, middle);   // Wear-out dominates late.
}

TEST(PiecewiseLinearTest, InterpolatesHazard) {
  const PiecewiseLinearFaultCurve curve({{0.0, 0.0}, {10.0, 1.0}, {20.0, 1.0}});
  EXPECT_NEAR(curve.HazardRate(5.0), 0.5, 1e-12);
  EXPECT_NEAR(curve.HazardRate(15.0), 1.0, 1e-12);
  EXPECT_NEAR(curve.HazardRate(100.0), 1.0, 1e-12);  // Held constant after last knot.
}

TEST(PiecewiseLinearTest, CumulativeHazardIsTrapezoidIntegral) {
  const PiecewiseLinearFaultCurve curve({{0.0, 0.0}, {10.0, 1.0}});
  EXPECT_NEAR(curve.CumulativeHazard(10.0), 5.0, 1e-12);   // Triangle.
  EXPECT_NEAR(curve.CumulativeHazard(5.0), 1.25, 1e-12);   // Smaller triangle.
  EXPECT_NEAR(curve.CumulativeHazard(20.0), 15.0, 1e-12);  // Triangle + rectangle.
}

TEST(PiecewiseLinearTest, RolloutSpikeIncreasesWindowRisk) {
  // Baseline 1e-5 hazard with a spike to 1e-2 around the rollout hour.
  const PiecewiseLinearFaultCurve spiked(
      {{0.0, 1e-5}, {99.0, 1e-5}, {100.0, 1e-2}, {101.0, 1e-2}, {102.0, 1e-5}});
  const double quiet = spiked.FailureProbability(0.0, 50.0);
  const double rollout = spiked.FailureProbability(75.0, 125.0);
  EXPECT_GT(rollout, quiet * 10.0);
}

TEST(TraceFaultCurveTest, InterpolatesCumulativeHazard) {
  const TraceFaultCurve curve({{0.0, 0.0}, {10.0, 0.5}, {30.0, 0.6}});
  EXPECT_NEAR(curve.CumulativeHazard(5.0), 0.25, 1e-12);
  EXPECT_NEAR(curve.CumulativeHazard(20.0), 0.55, 1e-12);
  EXPECT_NEAR(curve.HazardRate(5.0), 0.05, 1e-12);
  EXPECT_NEAR(curve.HazardRate(20.0), 0.005, 1e-12);
}

TEST(TraceFaultCurveTest, ExtrapolatesWithLastSlope) {
  const TraceFaultCurve curve({{0.0, 0.0}, {10.0, 0.5}, {30.0, 0.6}});
  EXPECT_NEAR(curve.CumulativeHazard(50.0), 0.6 + 20.0 * 0.005, 1e-12);
}

TEST(FaultCurveTest, NumericCumulativeHazardMatchesClosedForm) {
  // Wrap a Weibull so the base-class adaptive Simpson path is exercised.
  class OpaqueWeibull final : public FaultCurve {
   public:
    double HazardRate(double t) const override { return inner_.HazardRate(t); }
    std::string Describe() const override { return "opaque"; }
    std::unique_ptr<FaultCurve> Clone() const override {
      return std::make_unique<OpaqueWeibull>(*this);
    }

   private:
    WeibullFaultCurve inner_{2.0, 10.0};
  };
  const OpaqueWeibull opaque;
  const WeibullFaultCurve direct(2.0, 10.0);
  for (double t = 1.0; t <= 40.0; t += 7.0) {
    EXPECT_NEAR(opaque.CumulativeHazard(t), direct.CumulativeHazard(t),
                direct.CumulativeHazard(t) * 1e-8)
        << t;
  }
}

TEST(FaultCurveTest, GenericSampleFailureAgeInvertsBisection) {
  class OpaqueConstant final : public FaultCurve {
   public:
    double HazardRate(double) const override { return 0.1; }
    double CumulativeHazard(double t) const override { return 0.1 * t; }
    std::string Describe() const override { return "opaque-const"; }
    std::unique_ptr<FaultCurve> Clone() const override {
      return std::make_unique<OpaqueConstant>(*this);
    }
  };
  const OpaqueConstant curve;
  // Generic bisection should agree with the exponential inverse CDF.
  EXPECT_NEAR(curve.SampleFailureAge(0.0, 0.5), std::log(2.0) / 0.1, 1e-6);
}

TEST(FaultCurveTest, FailureProbabilityMonotoneInWindow) {
  const WeibullFaultCurve curve(0.7, 1000.0);
  double previous = 0.0;
  for (double w = 10.0; w <= 1000.0; w *= 2.0) {
    const double p = curve.FailureProbability(100.0, 100.0 + w);
    EXPECT_GE(p, previous);
    previous = p;
  }
}

}  // namespace
}  // namespace probcon
