#include "src/faultmodel/round_schedule.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace probcon {
namespace {

TEST(RoundScheduleTest, ValidateAcceptsRectangularMatrix) {
  EXPECT_TRUE(RoundSchedule::Validate(24.0, {{0.1, 0.2}, {0.3, 0.0}}).ok());
}

TEST(RoundScheduleTest, ValidateRejectsStructuralErrors) {
  EXPECT_FALSE(RoundSchedule::Validate(24.0, {}).ok());                // No rounds.
  EXPECT_FALSE(RoundSchedule::Validate(24.0, {{}}).ok());             // Empty row.
  EXPECT_FALSE(RoundSchedule::Validate(24.0, {{0.1}, {0.1, 0.2}}).ok());  // Ragged.
  EXPECT_FALSE(RoundSchedule::Validate(0.0, {{0.1}}).ok());           // Bad round length.
  EXPECT_FALSE(RoundSchedule::Validate(-1.0, {{0.1}}).ok());
  EXPECT_FALSE(RoundSchedule::Validate(24.0, {{1.0}}).ok());          // p = 1 not allowed.
  EXPECT_FALSE(RoundSchedule::Validate(24.0, {{-0.1}}).ok());
}

TEST(RoundScheduleTest, AccessorsAndMissionTime) {
  const RoundSchedule schedule(12.0, {{0.1, 0.2, 0.3}, {0.05, 0.05, 0.05}});
  EXPECT_EQ(schedule.rounds(), 2);
  EXPECT_EQ(schedule.n(), 3);
  EXPECT_DOUBLE_EQ(schedule.round_hours(), 12.0);
  EXPECT_DOUBLE_EQ(schedule.mission_hours(), 24.0);
  EXPECT_DOUBLE_EQ(schedule.RoundProbabilities(1)[2], 0.05);
}

TEST(RoundScheduleTest, FromCurveMatchesWindowProbabilities) {
  // Each round's entry is FailureProbability over that round's age window.
  const WeibullFaultCurve curve(2.0, 1000.0);
  const double age = 100.0;
  const double d = 24.0;
  const RoundSchedule schedule = RoundSchedule::FromCurve(curve, 3, age, d, 5);
  ASSERT_EQ(schedule.rounds(), 5);
  ASSERT_EQ(schedule.n(), 3);
  for (int r = 0; r < 5; ++r) {
    const double expected = curve.FailureProbability(age + r * d, age + (r + 1) * d);
    for (int i = 0; i < 3; ++i) {
      EXPECT_NEAR(schedule.RoundProbabilities(r)[i], expected, 1e-15) << r << "," << i;
    }
  }
}

TEST(RoundScheduleTest, FromCurvesHonorsPerNodeAges) {
  const WeibullFaultCurve young(2.0, 1000.0);
  const WeibullFaultCurve old_curve(2.0, 1000.0);
  const RoundSchedule schedule = RoundSchedule::FromCurves(
      {&young, &old_curve}, {0.0, 5000.0}, 24.0, 3);
  // Wear-out: the aged node fails more per round than the fresh one.
  for (int r = 0; r < 3; ++r) {
    EXPECT_GT(schedule.RoundProbabilities(r)[1], schedule.RoundProbabilities(r)[0]);
  }
}

TEST(RoundScheduleTest, ConstantCurveGivesFlatSchedule) {
  const ConstantFaultCurve curve(ConstantFaultCurve::FromWindowProbability(0.01, 24.0));
  const RoundSchedule schedule = RoundSchedule::FromCurve(curve, 4, 0.0, 24.0, 10);
  for (int r = 0; r < 10; ++r) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_NEAR(schedule.RoundProbabilities(r)[i], 0.01, 1e-12);
    }
  }
}

TEST(RoundScheduleTest, CumulativeFailureProbabilities) {
  const RoundSchedule schedule(24.0, {{0.1, 0.0}, {0.2, 0.0}});
  const std::vector<double> cumulative = schedule.CumulativeFailureProbabilities();
  ASSERT_EQ(cumulative.size(), 2u);
  EXPECT_NEAR(cumulative[0], 1.0 - 0.9 * 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(cumulative[1], 0.0);
}

TEST(RoundScheduleTest, NodeCurveReplaysScheduleExactly) {
  // The cross-validation hinge: the rebuilt trace curve's window failure probability over
  // round r must equal the schedule entry, to round-off, including survival conditioning.
  const RoundSchedule schedule(6.0, {{0.01, 0.5}, {0.2, 0.001}, {0.0, 0.25}});
  for (int node = 0; node < 2; ++node) {
    const std::unique_ptr<FaultCurve> curve = schedule.NodeCurve(node);
    for (int r = 0; r < schedule.rounds(); ++r) {
      const double p = curve->FailureProbability(r * 6.0, (r + 1) * 6.0);
      EXPECT_NEAR(p, schedule.RoundProbabilities(r)[node], 1e-12) << node << "," << r;
    }
  }
}

TEST(RoundScheduleTest, NodeCurveRoundTripFromRealCurve) {
  // Curve -> schedule -> NodeCurve -> window probabilities reproduces the original curve's
  // per-round failure law at the knots.
  const WeibullFaultCurve original(0.7, 50000.0);  // Infant-mortality shape.
  const double d = 24.0;
  const RoundSchedule schedule = RoundSchedule::FromCurve(original, 1, 0.0, d, 20);
  const std::unique_ptr<FaultCurve> rebuilt = schedule.NodeCurve(0);
  for (int r = 0; r < 20; ++r) {
    EXPECT_NEAR(rebuilt->FailureProbability(r * d, (r + 1) * d),
                original.FailureProbability(r * d, (r + 1) * d), 1e-12)
        << r;
  }
}

}  // namespace
}  // namespace probcon
