#include "src/analysis/reliability.h"

#include <cmath>

#include <gtest/gtest.h>

namespace probcon {
namespace {

CountPredicate AtMostKFailures(int k) {
  return CountPredicate([k](int failures, int /*n*/) { return failures <= k; });
}

TEST(ReliabilityAnalyzerTest, CountDpMatchesClosedForm) {
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(5, 0.1);
  const auto p = analyzer.EventProbability(AtMostKFailures(1), AnalysisMethod::kCountDp);
  const double expected = std::pow(0.9, 5) + 5 * 0.1 * std::pow(0.9, 4);
  EXPECT_NEAR(p.value(), expected, 1e-12);
}

TEST(ReliabilityAnalyzerTest, ExactMatchesCountDp) {
  const std::vector<double> probs = {0.01, 0.05, 0.2, 0.4, 0.07, 0.33};
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(probs);
  for (int k = 0; k <= 6; ++k) {
    const auto dp =
        analyzer.EventProbability(AtMostKFailures(k), AnalysisMethod::kCountDp);
    const auto exact =
        analyzer.EventProbability(AtMostKFailures(k), AnalysisMethod::kExact);
    EXPECT_NEAR(dp.value(), exact.value(), 1e-12) << k;
    EXPECT_NEAR(dp.complement(), exact.complement(),
                std::max(1e-15, exact.complement() * 1e-9))
        << k;
  }
}

TEST(ReliabilityAnalyzerTest, AutoPicksDpForCountPredicates) {
  // A 40-node cluster would be intractable for exact enumeration; auto must route to DP.
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(40, 0.02);
  const auto p = analyzer.EventProbability(AtMostKFailures(5));
  EXPECT_GT(p.value(), 0.99);
}

TEST(ReliabilityAnalyzerTest, ConfigurationPredicateViaExact) {
  // "Node 0 survives": P = 1 - p_0, regardless of others.
  const std::vector<double> probs = {0.25, 0.5, 0.5};
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(probs);
  const ConfigurationPredicate node0_alive(
      [](FailureConfiguration failed, int /*n*/) { return !NodeFailed(failed, 0); });
  EXPECT_NEAR(analyzer.EventProbability(node0_alive).value(), 0.75, 1e-12);
}

TEST(ReliabilityAnalyzerTest, MonteCarloAgreesWithExact) {
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(7, 0.3);
  const auto exact = analyzer.EventProbability(AtMostKFailures(2));
  MonteCarloOptions options;
  options.trials = 400000;
  const auto ci = analyzer.EstimateEventProbability(AtMostKFailures(2), options);
  EXPECT_GT(exact.value(), ci.low);
  EXPECT_LT(exact.value(), ci.high);
}

TEST(ReliabilityAnalyzerTest, MonteCarloDeterministicForSeed) {
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(5, 0.2);
  MonteCarloOptions options;
  options.trials = 10000;
  options.seed = 99;
  const auto a = analyzer.EstimateEventProbability(AtMostKFailures(1), options);
  const auto b = analyzer.EstimateEventProbability(AtMostKFailures(1), options);
  EXPECT_DOUBLE_EQ(a.point, b.point);
}

TEST(ReliabilityAnalyzerTest, CorrelatedModelViaExactEnumeration) {
  auto model = std::make_unique<CommonCauseFailureModel>(
      std::vector<double>(4, 0.01), 0.05, std::vector<double>(4, 0.9));
  const ReliabilityAnalyzer analyzer(std::move(model));
  const auto all_up = analyzer.EventProbability(AtMostKFailures(0), AnalysisMethod::kExact);
  // P(no failure) = 0.95 * 0.99^4 + 0.05 * (0.99*0.1)^4.
  const double expected =
      0.95 * std::pow(0.99, 4) + 0.05 * std::pow(0.99 * 0.1, 4);
  EXPECT_NEAR(all_up.value(), expected, 1e-12);
}

TEST(ReliabilityReportTest, RaftUnsafeConfigReportsZeroSafety) {
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(5, 0.01);
  const RaftConfig broken{5, 2, 2};  // Violates both structural conditions.
  const auto report = AnalyzeRaft(broken, analyzer);
  EXPECT_DOUBLE_EQ(report.safe.value(), 0.0);
  EXPECT_DOUBLE_EQ(report.safe_and_live.value(), 0.0);
  EXPECT_GT(report.live.value(), 0.99);  // Small quorums are trivially live.
}

TEST(ReliabilityReportTest, HeterogeneousClusterBeatsWorstUniform) {
  const auto mixed = ReliabilityAnalyzer::ForIndependentNodes({0.01, 0.01, 0.08});
  const auto uniform_bad = ReliabilityAnalyzer::ForUniformNodes(3, 0.08);
  const auto config = RaftConfig::Standard(3);
  EXPECT_GT(AnalyzeRaft(config, mixed).safe_and_live.value(),
            AnalyzeRaft(config, uniform_bad).safe_and_live.value());
}

TEST(ReliabilityReportTest, PbftSafeAndLiveIsIntersection) {
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(5, 0.05);
  const auto config = PbftConfig::Standard(5);
  const auto report = AnalyzePbft(config, analyzer);
  EXPECT_LE(report.safe_and_live.value(), std::min(report.safe.value(), report.live.value()));
  // With nested thresholds the intersection equals the weaker property.
  EXPECT_NEAR(report.safe_and_live.value(), std::min(report.safe.value(), report.live.value()),
              1e-12);
}

TEST(ReliabilityReportTest, MoreNodesSameQuorumHurtsWhenFaultsDominate) {
  // Fix quorums at 3/3, grow n from 5 to 7 at p=30%: liveness improves (more candidates),
  // illustrating the paper's point that quorum geometry, not node count, drives behaviour.
  const RaftConfig q33_n5{5, 3, 3};
  const RaftConfig q33_n7{7, 3, 3};
  const auto live5 =
      AnalyzeRaft(q33_n5, ReliabilityAnalyzer::ForUniformNodes(5, 0.3)).live;
  const auto live7 =
      AnalyzeRaft(q33_n7, ReliabilityAnalyzer::ForUniformNodes(7, 0.3)).live;
  EXPECT_GT(live7.value(), live5.value());
}

TEST(PredicateFactoriesTest, ConsistentWithTheorems) {
  const auto config = PbftConfig::Standard(7);
  const auto safe_predicate = MakePbftSafePredicate(config);
  const auto live_predicate = MakePbftLivePredicate(config);
  const auto both_predicate = MakePbftSafeAndLivePredicate(config);
  for (int byz = 0; byz <= 7; ++byz) {
    EXPECT_EQ(*safe_predicate.HoldsForCount(byz, 7), PbftIsSafe(config, byz));
    EXPECT_EQ(*live_predicate.HoldsForCount(byz, 7), PbftIsLive(config, byz));
    EXPECT_EQ(*both_predicate.HoldsForCount(byz, 7),
              PbftIsSafe(config, byz) && PbftIsLive(config, byz));
  }
}

}  // namespace
}  // namespace probcon
