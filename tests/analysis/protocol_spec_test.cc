#include "src/analysis/protocol_spec.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "src/analysis/reliability.h"

namespace probcon {
namespace {

TEST(RaftConfigTest, StandardUsesMajorities) {
  for (const int n : {1, 3, 5, 7, 9, 4, 8}) {
    const auto config = RaftConfig::Standard(n);
    EXPECT_EQ(config.q_per, n / 2 + 1) << n;
    EXPECT_EQ(config.q_vc, n / 2 + 1) << n;
    EXPECT_TRUE(RaftIsSafeStructurally(config)) << n;
  }
}

TEST(PbftConfigTest, StandardQuorumSizesMatchPaperTable1) {
  // The paper's Table 1 header row: (N, Qeq, Qper, Qvc, Qvc_t).
  const struct {
    int n, q, q_vc_t;
  } expected[] = {{4, 3, 2}, {5, 4, 2}, {7, 5, 3}, {8, 6, 3}};
  for (const auto& row : expected) {
    const auto config = PbftConfig::Standard(row.n);
    EXPECT_EQ(config.q_eq, row.q) << row.n;
    EXPECT_EQ(config.q_per, row.q) << row.n;
    EXPECT_EQ(config.q_vc, row.q) << row.n;
    EXPECT_EQ(config.q_vc_t, row.q_vc_t) << row.n;
  }
}

TEST(RaftTheoremTest, StructuralSafetyConditions) {
  // n < q_per + q_vc AND n < 2*q_vc.
  EXPECT_TRUE(RaftIsSafeStructurally({5, 3, 3}));
  EXPECT_FALSE(RaftIsSafeStructurally({5, 2, 3}));   // Quorums may miss each other.
  EXPECT_FALSE(RaftIsSafeStructurally({5, 5, 2}));   // Two leaders possible.
  EXPECT_TRUE(RaftIsSafeStructurally({5, 2, 4}));    // Flexible-Paxos style is fine.
  EXPECT_TRUE(RaftIsSafeStructurally({4, 2, 3}));
}

TEST(RaftTheoremTest, LivenessNeedsBothQuorums) {
  const RaftConfig config{5, 2, 4};
  EXPECT_TRUE(RaftIsLive(config, 5));
  EXPECT_TRUE(RaftIsLive(config, 4));
  EXPECT_FALSE(RaftIsLive(config, 3));  // Election quorum of 4 unreachable.
}

TEST(PbftTheoremTest, SafetyThresholds) {
  const auto config = PbftConfig::Standard(4);  // q=3: Byz < min(2*3-4, 3+3-4) = 2.
  EXPECT_TRUE(PbftIsSafe(config, 0));
  EXPECT_TRUE(PbftIsSafe(config, 1));
  EXPECT_FALSE(PbftIsSafe(config, 2));
}

TEST(PbftTheoremTest, LivenessThresholds) {
  const auto config = PbftConfig::Standard(4);  // Live iff Byz <= min(3-2, 4-3, 2-1) = 1.
  EXPECT_TRUE(PbftIsLive(config, 0));
  EXPECT_TRUE(PbftIsLive(config, 1));
  EXPECT_FALSE(PbftIsLive(config, 2));
}

TEST(PbftTheoremTest, TriggerQuorumCanBottleneckLiveness) {
  // Huge trigger quorum: correct nodes can't outvote Byzantine silence.
  const PbftConfig config{7, 5, 5, 5, 5};  // q_vc - q_vc_t = 0 -> any Byz kills liveness.
  EXPECT_TRUE(PbftIsLive(config, 0));
  EXPECT_FALSE(PbftIsLive(config, 1));
}

// --- Table 1: every cell ------------------------------------------------------

struct Table1Row {
  int n;
  double safe_complement;
  double live_complement;
};

class Table1Test : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1Test, CellReproduces) {
  const auto& row = GetParam();
  const auto config = PbftConfig::Standard(row.n);
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(row.n, 0.01);
  const auto report = AnalyzePbft(config, analyzer);
  EXPECT_NEAR(report.safe.complement(), row.safe_complement, row.safe_complement * 0.02);
  EXPECT_NEAR(report.live.complement(), row.live_complement, row.live_complement * 0.02);
  // In Table 1, S&L always equals min(safe, live) because the unsafe set nests inside the
  // unlive set or vice versa.
  const double expected_sl = std::max(row.safe_complement, row.live_complement);
  EXPECT_NEAR(report.safe_and_live.complement(), expected_sl, expected_sl * 0.02);
}

// Complements computed independently (binomial tails at p=0.01):
//   N=4: P(Byz>=2)=5.92e-4 (safe & live identical thresholds)
//   N=5: safe P(Byz>=3)=9.85e-6, live P(Byz>=2)=9.80e-4
//   N=7: safe=live P(Byz>=3)=3.40e-5
//   N=8: safe P(Byz>=4)=6.78e-7, live P(Byz>=3)=5.39e-5
INSTANTIATE_TEST_SUITE_P(AllCells, Table1Test,
                         ::testing::Values(Table1Row{4, 5.92e-4, 5.92e-4},
                                           Table1Row{5, 9.85e-6, 9.83e-4},
                                           Table1Row{7, 3.40e-5, 3.40e-5},
                                           Table1Row{8, 6.78e-7, 5.39e-5}));

// --- Table 2: every cell ------------------------------------------------------

struct Table2Cell {
  int n;
  double p;
  const char* expected;  // The paper's printed cell.
};

class Table2Test : public ::testing::TestWithParam<Table2Cell> {};

TEST_P(Table2Test, CellReproduces) {
  const auto& cell = GetParam();
  const auto config = RaftConfig::Standard(cell.n);
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(cell.n, cell.p);
  const auto report = AnalyzeRaft(config, analyzer);
  // Parse the paper's percentage and compare its complement within print precision.
  const double paper_percent = std::stod(std::string(cell.expected));
  const double paper_complement = 1.0 - paper_percent / 100.0;
  // The paper prints very few digits, so the implied complement can be off by tens of
  // percent relative (e.g. "99.999998%" implies 2e-8 where the exact value is 1.22e-8).
  EXPECT_NEAR(report.safe_and_live.complement(), paper_complement,
              std::max(paper_complement * 0.45, 1e-9))
      << cell.n << " @ " << cell.p;
  EXPECT_DOUBLE_EQ(report.safe.value(), 1.0);  // Structural.
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, Table2Test,
    ::testing::Values(
        Table2Cell{3, 0.01, "99.97"}, Table2Cell{3, 0.02, "99.88"},
        Table2Cell{3, 0.04, "99.53"}, Table2Cell{3, 0.08, "98.18"},
        Table2Cell{5, 0.01, "99.9990"}, Table2Cell{5, 0.02, "99.992"},
        Table2Cell{5, 0.04, "99.94"}, Table2Cell{5, 0.08, "99.55"},
        Table2Cell{7, 0.01, "99.99997"}, Table2Cell{7, 0.02, "99.9995"},
        Table2Cell{7, 0.04, "99.992"}, Table2Cell{7, 0.08, "99.88"},
        Table2Cell{9, 0.01, "99.999998"}, Table2Cell{9, 0.02, "99.99996"},
        Table2Cell{9, 0.04, "99.9988"}, Table2Cell{9, 0.08, "99.97"}));

// --- Key in-text claims ---------------------------------------------------------

TEST(PaperClaimsTest, RaftThreeNodesIsThreeNinesAtOnePercent) {
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(3, 0.01);
  const auto report = AnalyzeRaft(RaftConfig::Standard(3), analyzer);
  EXPECT_NEAR(report.safe_and_live.nines(), 3.53, 0.02);
}

TEST(PaperClaimsTest, NineCheapNodesMatchThreeGoodNodes) {
  const auto three = AnalyzeRaft(RaftConfig::Standard(3),
                                 ReliabilityAnalyzer::ForUniformNodes(3, 0.01));
  const auto nine = AnalyzeRaft(RaftConfig::Standard(9),
                                ReliabilityAnalyzer::ForUniformNodes(9, 0.08));
  // Both ~99.97%.
  EXPECT_NEAR(three.safe_and_live.complement(), nine.safe_and_live.complement(), 8e-5);
}

TEST(PaperClaimsTest, FiveNodePbftSaferThanSevenNode) {
  const auto five = AnalyzePbft(PbftConfig::Standard(5),
                                ReliabilityAnalyzer::ForUniformNodes(5, 0.01));
  const auto seven = AnalyzePbft(PbftConfig::Standard(7),
                                 ReliabilityAnalyzer::ForUniformNodes(7, 0.01));
  EXPECT_LT(five.safe.complement(), seven.safe.complement());
}

TEST(PaperClaimsTest, SafetyLivenessTradeoffBetweenFourAndFiveNodes) {
  const auto four = AnalyzePbft(PbftConfig::Standard(4),
                                ReliabilityAnalyzer::ForUniformNodes(4, 0.01));
  const auto five = AnalyzePbft(PbftConfig::Standard(5),
                                ReliabilityAnalyzer::ForUniformNodes(5, 0.01));
  const double safety_gain = four.safe.complement() / five.safe.complement();
  const double liveness_loss = five.live.complement() / four.live.complement();
  EXPECT_NEAR(safety_gain, 60.0, 3.0);    // Paper: 42-60x.
  EXPECT_NEAR(liveness_loss, 1.66, 0.05); // Paper: 1.67x.
}

}  // namespace
}  // namespace probcon
