// Cooperative cancellation in the analysis engines: the Try* APIs return kCancelled
// promptly once a token fires, and an uncancelled run is bit-identical to the plain API —
// the serving layer's deadline story rests on both halves.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/analysis/reliability.h"
#include "src/common/cancellation.h"

namespace probcon {
namespace {

TEST(Cancellation, PreFiredTokenCancelsExactEnumeration) {
  // n = 20 forces the 2^n exact path to do real work; a pre-cancelled token must stop it
  // at the first poll instead of enumerating a million configurations.
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(20, 0.01);
  const ConfigurationPredicate predicate(
      [](FailureConfiguration, int) { return true; });  // no count fast path => kExact

  CancelToken token;
  token.Cancel();
  const auto result =
      analyzer.TryEventProbability(predicate, AnalysisMethod::kExact, &token);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(Cancellation, PreFiredTokenCancelsMonteCarlo) {
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(5, 0.01);
  const auto config = RaftConfig::Standard(5);
  MonteCarloOptions options;
  options.trials = 1'000'000;
  CancelToken token;
  token.Cancel();
  options.cancel = &token;

  const auto result =
      analyzer.TryEstimateEventProbability(MakeRaftLivePredicate(config), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(Cancellation, MidFlightCancelStopsALongMonteCarloRun) {
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(7, 0.02);
  const auto config = RaftConfig::Standard(7);
  MonteCarloOptions options;
  options.trials = uint64_t{1} << 30;  // minutes of work if allowed to finish
  CancelToken token;
  options.cancel = &token;

  std::atomic<bool> finished{false};
  std::thread runner([&] {
    const auto result =
        analyzer.TryEstimateEventProbability(MakeRaftLivePredicate(config), options);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
    finished.store(true);
  });
  token.Cancel();
  runner.join();
  EXPECT_TRUE(finished.load());
}

TEST(Cancellation, UncancelledTryApisMatchThePlainApisBitForBit) {
  // The cancellation seam must not perturb results: with no token (or an unfired one) the
  // Try* variants perform exactly the same work in the same order.
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(5, 0.03);
  const auto config = PbftConfig::Standard(5);
  const CountPredicate predicate = MakePbftSafeAndLivePredicate(config);

  const Probability plain = analyzer.EventProbability(predicate);
  const auto with_null_token = analyzer.TryEventProbability(predicate);
  ASSERT_TRUE(with_null_token.ok());
  EXPECT_EQ(with_null_token->complement(), plain.complement());

  CancelToken unfired;
  const auto with_live_token =
      analyzer.TryEventProbability(predicate, AnalysisMethod::kAuto, &unfired);
  ASSERT_TRUE(with_live_token.ok());
  EXPECT_EQ(with_live_token->complement(), plain.complement());

  MonteCarloOptions options;
  options.trials = 200'000;
  options.seed = 9;
  const ConfidenceInterval plain_estimate =
      analyzer.EstimateEventProbability(predicate, options);
  options.cancel = &unfired;
  const auto tracked_estimate = analyzer.TryEstimateEventProbability(predicate, options);
  ASSERT_TRUE(tracked_estimate.ok());
  EXPECT_EQ(tracked_estimate->point, plain_estimate.point);
  EXPECT_EQ(tracked_estimate->low, plain_estimate.low);
  EXPECT_EQ(tracked_estimate->high, plain_estimate.high);
}

}  // namespace
}  // namespace probcon
