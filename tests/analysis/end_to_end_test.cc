#include "src/analysis/end_to_end.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/faultmodel/afr.h"

namespace probcon {
namespace {

EndToEndParams BaseParams() {
  EndToEndParams params;
  params.consensus.safe = Probability::FromComplement(1e-6);
  params.consensus.live = Probability::FromComplement(1e-4);
  params.consensus.safe_and_live = Probability::FromComplement(1e-4);
  params.window_hours = 720.0;  // Monthly analysis window.
  params.mean_time_to_recover = 0.5;
  params.data_loss_given_violation = 1.0;
  return params;
}

TEST(EndToEndTest, AvailabilityMatchesRenewalFormula) {
  const auto params = BaseParams();
  const auto report = ComputeEndToEnd(params);
  const double rate = -std::log1p(-1e-4) / 720.0;
  const double expected_unavail = 0.5 / (1.0 / rate + 0.5);
  EXPECT_NEAR(report.availability.complement(), expected_unavail,
              expected_unavail * 1e-9);
}

TEST(EndToEndTest, SlowRecoveryDestroysAvailability) {
  auto params = BaseParams();
  const auto fast = ComputeEndToEnd(params);
  params.mean_time_to_recover = 48.0;  // Two-day manual recovery.
  const auto slow = ComputeEndToEnd(params);
  // Same consensus liveness, ~2 fewer availability nines.
  EXPECT_GT(fast.availability.nines(), slow.availability.nines() + 1.5);
  EXPECT_GT(slow.outage_minutes_per_year, fast.outage_minutes_per_year * 50.0);
}

TEST(EndToEndTest, InstantRecoveryIsFullyAvailable) {
  auto params = BaseParams();
  params.mean_time_to_recover = 0.0;
  const auto report = ComputeEndToEnd(params);
  EXPECT_DOUBLE_EQ(report.availability.complement(), 0.0);
  EXPECT_DOUBLE_EQ(report.outage_minutes_per_year, 0.0);
}

TEST(EndToEndTest, PerfectLivenessMeansNoOutages) {
  auto params = BaseParams();
  params.consensus.live = Probability::One();
  const auto report = ComputeEndToEnd(params);
  EXPECT_DOUBLE_EQ(report.availability.value(), 1.0);
}

TEST(EndToEndTest, ForkPreservationRescuesDurability) {
  auto params = BaseParams();
  const auto lossy = ComputeEndToEnd(params);
  params.data_loss_given_violation = 0.01;  // Forks preserved 99% of the time.
  const auto preserved = ComputeEndToEnd(params);
  // The paper's point: an unsafe system can still be durable.
  EXPECT_NEAR(preserved.mission_durability.complement(),
              lossy.mission_durability.complement() * 0.01,
              lossy.mission_durability.complement() * 0.01 * 0.01);
}

TEST(EndToEndTest, DurabilityScalesWithMission) {
  auto params = BaseParams();
  params.mission_hours = kHoursPerYear;
  const auto one_year = ComputeEndToEnd(params);
  params.mission_hours = 10.0 * kHoursPerYear;
  const auto ten_years = ComputeEndToEnd(params);
  EXPECT_NEAR(ten_years.mission_durability.complement(),
              one_year.mission_durability.complement() * 10.0,
              one_year.mission_durability.complement());
}

TEST(EndToEndTest, OutageMinutesSanity) {
  // 1e-4 monthly unliveness, 30-minute recovery: ~12 outages expected in 1e4 months...
  // rate = 1.0000e-4/720h; per year ~1.217e-3 outages * 30 min ~ 0.0365 min/yr.
  const auto report = ComputeEndToEnd(BaseParams());
  EXPECT_NEAR(report.outage_minutes_per_year, 0.0365, 0.002);
}

}  // namespace
}  // namespace probcon
