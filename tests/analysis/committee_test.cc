#include "src/analysis/committee.h"

#include <set>

#include <gtest/gtest.h>

namespace probcon {
namespace {

const std::vector<double> kFleet = {0.01, 0.02, 0.08, 0.08, 0.01, 0.30, 0.05,
                                    0.02, 0.08, 0.15, 0.01, 0.04, 0.09};

TEST(SelectCommitteeTest, MostReliablePicksLowest) {
  const auto committee = SelectCommittee(kFleet, 3, CommitteeStrategy::kMostReliable, nullptr);
  ASSERT_EQ(committee.size(), 3u);
  // The three 1% nodes are indices 0, 4, 10.
  EXPECT_EQ(committee, (std::vector<int>{0, 4, 10}));
}

TEST(SelectCommitteeTest, LeastReliablePicksHighest) {
  const auto committee =
      SelectCommittee(kFleet, 2, CommitteeStrategy::kLeastReliable, nullptr);
  // 30% (index 5) and 15% (index 9).
  EXPECT_EQ(committee, (std::vector<int>{5, 9}));
}

TEST(SelectCommitteeTest, RandomIsValidSubset) {
  Rng rng(3);
  const auto committee = SelectCommittee(kFleet, 5, CommitteeStrategy::kRandom, &rng);
  ASSERT_EQ(committee.size(), 5u);
  std::set<int> unique(committee.begin(), committee.end());
  EXPECT_EQ(unique.size(), 5u);
  for (const int member : committee) {
    EXPECT_GE(member, 0);
    EXPECT_LT(member, static_cast<int>(kFleet.size()));
  }
}

TEST(CommitteeReliabilityTest, StrategyOrdering) {
  Rng rng(17);
  const auto best = SelectCommittee(kFleet, 5, CommitteeStrategy::kMostReliable, nullptr);
  const auto worst = SelectCommittee(kFleet, 5, CommitteeStrategy::kLeastReliable, nullptr);
  const auto random = SelectCommittee(kFleet, 5, CommitteeStrategy::kRandom, &rng);
  const auto r_best = CommitteeRaftReliability(kFleet, best);
  const auto r_worst = CommitteeRaftReliability(kFleet, worst);
  const auto r_random = CommitteeRaftReliability(kFleet, random);
  EXPECT_GT(r_best.value(), r_random.value());
  EXPECT_GT(r_random.value(), r_worst.value());
}

TEST(CommitteeReliabilityTest, MatchesDirectAnalysis) {
  const std::vector<int> committee = {0, 4, 10};
  const auto reliability = CommitteeRaftReliability(kFleet, committee);
  // Three 1% nodes, majority 2: P(<=1 failure).
  const double expected = 0.99 * 0.99 * 0.99 + 3 * 0.01 * 0.99 * 0.99;
  EXPECT_NEAR(reliability.value(), expected, 1e-12);
}

TEST(MinCommitteeSizeTest, SmallCommitteeSuffices) {
  const auto target = Probability::FromComplement(1e-3);
  const int size = MinCommitteeSizeForTarget(kFleet, target);
  EXPECT_EQ(size, 3);  // Three nines from three 1% nodes (99.97%).
}

TEST(MinCommitteeSizeTest, TighterTargetNeedsMore) {
  const int loose = MinCommitteeSizeForTarget(kFleet, Probability::FromComplement(1e-3));
  const int tight = MinCommitteeSizeForTarget(kFleet, Probability::FromComplement(1e-4));
  EXPECT_GT(tight, loose);
}

TEST(MinCommitteeSizeTest, ImpossibleTargetReturnsMinusOne) {
  const std::vector<double> bad_fleet = {0.4, 0.4, 0.4};
  EXPECT_EQ(MinCommitteeSizeForTarget(bad_fleet, Probability::FromComplement(1e-9)), -1);
}

}  // namespace
}  // namespace probcon
