#include "src/analysis/sensitivity.h"

#include <gtest/gtest.h>

namespace probcon {
namespace {

CountPredicate AtMostOneFailure() {
  return CountPredicate([](int failures, int /*n*/) { return failures <= 1; });
}

TEST(SensitivityTest, LinearityIdentityHoldsExactly) {
  // complement(p) == p_i * c_failed + (1 - p_i) * c_perfect for every node.
  const std::vector<double> probs = {0.01, 0.08, 0.03, 0.2, 0.05};
  const auto predicate = AtMostOneFailure();
  const double complement = ReliabilityAnalyzer::ForIndependentNodes(probs)
                                .EventProbability(predicate)
                                .complement();
  const auto sensitivities = AnalyzeSensitivity(probs, predicate);
  ASSERT_EQ(sensitivities.size(), probs.size());
  for (const auto& s : sensitivities) {
    const double reconstructed = probs[s.node] * s.complement_if_failed +
                                 (1.0 - probs[s.node]) * s.complement_if_perfect;
    EXPECT_NEAR(reconstructed, complement, 1e-14) << s.node;
  }
}

TEST(SensitivityTest, FailedIsWorseThanPerfect) {
  const std::vector<double> probs = {0.01, 0.02, 0.04, 0.08, 0.16};
  for (const auto& s : AnalyzeSensitivity(probs, AtMostOneFailure())) {
    EXPECT_GE(s.complement_if_failed, s.complement_if_perfect);
    EXPECT_GE(s.derivative, 0.0);
  }
}

TEST(SensitivityTest, UniformClusterHasEqualSensitivities) {
  const std::vector<double> probs(5, 0.03);
  const auto sensitivities = AnalyzeSensitivity(probs, AtMostOneFailure());
  for (size_t i = 1; i < sensitivities.size(); ++i) {
    EXPECT_NEAR(sensitivities[i].derivative, sensitivities[0].derivative, 1e-14);
  }
}

TEST(SensitivityTest, DerivativeMatchesFiniteDifference) {
  const std::vector<double> probs = {0.01, 0.08, 0.03};
  const auto predicate = AtMostOneFailure();
  const auto sensitivities = AnalyzeSensitivity(probs, predicate);
  constexpr double kEps = 1e-6;
  for (int node = 0; node < 3; ++node) {
    std::vector<double> bumped = probs;
    bumped[node] += kEps;
    const double up = ReliabilityAnalyzer::ForIndependentNodes(bumped)
                          .EventProbability(predicate)
                          .complement();
    bumped[node] = probs[node] - kEps;
    const double down = ReliabilityAnalyzer::ForIndependentNodes(bumped)
                            .EventProbability(predicate)
                            .complement();
    EXPECT_NEAR((up - down) / (2.0 * kEps), sensitivities[node].derivative, 1e-6) << node;
  }
}

TEST(RaftSensitivityTest, IdentifiesWhereTheFailureMassComesFrom) {
  // Two good nodes, three poor ones: fixing a poor node helps far more than fixing a good
  // one — the operator signal the paper's hardware-selection argument needs.
  const std::vector<double> probs = {0.001, 0.001, 0.1, 0.1, 0.1};
  const auto sensitivities = RaftSensitivity(probs);
  double good_gain = 0.0;
  double poor_gain = 0.0;
  const double baseline = ReliabilityAnalyzer::ForIndependentNodes(probs)
                              .EventProbability(MakeRaftLivePredicate(RaftConfig::Standard(5)))
                              .complement();
  for (const auto& s : sensitivities) {
    const double gain = baseline - s.complement_if_perfect;
    if (s.node < 2) {
      good_gain += gain;
    } else {
      poor_gain += gain;
    }
  }
  EXPECT_GT(poor_gain / 3.0, good_gain / 2.0 * 5.0);
}

}  // namespace
}  // namespace probcon
