#include "src/analysis/weighted.h"

#include <cmath>

#include <gtest/gtest.h>

namespace probcon {
namespace {

TEST(WeightedConfigTest, UniformMatchesMajority) {
  const auto config = WeightedRaftConfig::Uniform(5);
  EXPECT_DOUBLE_EQ(config.TotalStake(), 5.0);
  EXPECT_DOUBLE_EQ(config.quorum_weight, 3.0);
  EXPECT_TRUE(config.IsStructurallySafe());
}

TEST(WeightedConfigTest, StructuralSafetyBoundary) {
  WeightedRaftConfig config;
  config.stakes = {1.0, 1.0, 1.0, 1.0};
  config.quorum_weight = 2.0;  // 2*2 = 4 = total: NOT safe (two disjoint quorums).
  EXPECT_FALSE(config.IsStructurallySafe());
  config.quorum_weight = 2.01;
  EXPECT_TRUE(config.IsStructurallySafe());
}

TEST(WeightedAnalysisTest, UniformMatchesUnweightedRaft) {
  const std::vector<double> probs = {0.01, 0.02, 0.08, 0.04, 0.05};
  const auto weighted =
      AnalyzeWeightedRaft(WeightedRaftConfig::Uniform(5), probs);
  const auto plain = AnalyzeRaft(RaftConfig::Standard(5),
                                 ReliabilityAnalyzer::ForIndependentNodes(probs));
  EXPECT_NEAR(weighted.live.complement(), plain.live.complement(), 1e-12);
  EXPECT_DOUBLE_EQ(weighted.safe.value(), 1.0);
}

TEST(WeightedAnalysisTest, WhaleStakeSurvivesAloneWithOnePeer) {
  // Node 0 holds 60% of stake: any quorum must include it, and {0, any other} suffices.
  WeightedRaftConfig config;
  config.stakes = {6.0, 1.0, 1.0, 1.0, 1.0};
  config.quorum_weight = 5.5;
  ASSERT_TRUE(config.IsStructurallySafe());
  const std::vector<double> probs = {0.001, 0.3, 0.3, 0.3, 0.3};
  const auto report = AnalyzeWeightedRaft(config, probs);
  // Live iff node 0 alive (6.0 < 5.5? no: node 0 alone has 6.0 >= 5.5 -> yes!).
  EXPECT_NEAR(report.live.value(), 1.0 - 0.001, 1e-12);
}

TEST(WeightedAnalysisTest, ReliabilityStakeBeatsUniformOnMixedFleet) {
  // Three great nodes, four flaky: one-node-one-vote needs 4 alive; log-odds stake lets the
  // reliable trio carry the quorum.
  const std::vector<double> probs = {0.001, 0.001, 0.001, 0.2, 0.2, 0.2, 0.2};
  const auto uniform = AnalyzeWeightedRaft(WeightedRaftConfig::Uniform(7), probs);
  const auto staked =
      AnalyzeWeightedRaft(WeightedRaftConfig::StakeByReliability(probs), probs);
  EXPECT_TRUE(staked.safe.value() == 1.0);
  EXPECT_LT(staked.live.complement(), uniform.live.complement() / 10.0);
}

TEST(WeightedAnalysisTest, StakeByReliabilityIsStructurallySafe) {
  for (const auto& probs :
       {std::vector<double>{0.5, 0.5, 0.5}, std::vector<double>{0.01, 0.2, 0.4, 0.001},
        std::vector<double>{1e-6, 0.999, 0.3, 0.3, 0.05}}) {
    EXPECT_TRUE(WeightedRaftConfig::StakeByReliability(probs).IsStructurallySafe());
  }
}

TEST(WeightedAnalysisTest, UnsafeThresholdReportsZeroSafety) {
  WeightedRaftConfig config;
  config.stakes = {1.0, 1.0, 1.0, 1.0};
  config.quorum_weight = 1.5;  // Disjoint quorums possible.
  const auto report = AnalyzeWeightedRaft(config, std::vector<double>(4, 0.01));
  EXPECT_DOUBLE_EQ(report.safe.value(), 0.0);
  EXPECT_DOUBLE_EQ(report.safe_and_live.value(), 0.0);
  EXPECT_GT(report.live.value(), 0.99);
}

TEST(WeightedAnalysisTest, HandComputedTwoNodeCase) {
  WeightedRaftConfig config;
  config.stakes = {3.0, 1.0};
  config.quorum_weight = 2.5;
  const auto report = AnalyzeWeightedRaft(config, {0.1, 0.5});
  // Quorum requires node 0 (weight 3 >= 2.5; node 1 alone is 1 < 2.5).
  EXPECT_NEAR(report.live.value(), 0.9, 1e-12);
}

}  // namespace
}  // namespace probcon
