#include "src/analysis/cost.h"

#include <gtest/gtest.h>

#include "src/analysis/reliability.h"

namespace probcon {
namespace {

const NodeType kReliable{"on-demand", 0.01, 10.0};
const NodeType kSpot{"spot", 0.08, 1.0};  // 10x cheaper, 8x the failure probability.

TEST(EvaluateClusterTest, HomogeneousMatchesAnalyzer) {
  const auto plan = EvaluateRaftCluster({kReliable}, {3});
  const auto expected = AnalyzeRaft(RaftConfig::Standard(3),
                                    ReliabilityAnalyzer::ForUniformNodes(3, 0.01));
  EXPECT_DOUBLE_EQ(plan.safe_and_live.value(), expected.safe_and_live.value());
  EXPECT_DOUBLE_EQ(plan.total_cost, 30.0);
  EXPECT_EQ(plan.TotalNodes(), 3);
}

TEST(EvaluateClusterTest, MixedCluster) {
  const auto plan = EvaluateRaftCluster({kReliable, kSpot}, {2, 3});
  EXPECT_EQ(plan.TotalNodes(), 5);
  EXPECT_DOUBLE_EQ(plan.total_cost, 23.0);
  const auto expected = AnalyzeRaft(
      RaftConfig::Standard(5),
      ReliabilityAnalyzer::ForIndependentNodes({0.01, 0.01, 0.08, 0.08, 0.08}));
  EXPECT_DOUBLE_EQ(plan.safe_and_live.value(), expected.safe_and_live.value());
}

TEST(CheapestClusterTest, PaperClaimSpotFleetCheaperAtSameNines) {
  // E3: a 3x on-demand cluster costs 30 and gives 99.97%; nine spot nodes print the same
  // 99.97% (the paper's rounding — exact complements are 2.98e-4 vs 3.14e-4) at cost 9,
  // a ~3.3x cost cut.
  const auto three_node = EvaluateRaftCluster({kReliable}, {3});
  const auto nine_spot = EvaluateRaftCluster({kSpot}, {9});
  EXPECT_EQ(FormatPercent(three_node.safe_and_live), "99.97%");
  EXPECT_EQ(FormatPercent(nine_spot.safe_and_live), "99.97%");
  EXPECT_GT(three_node.total_cost / nine_spot.total_cost, 3.0);

  // With the target phrased at the paper's printed precision, the optimizer finds the spot
  // fleet by itself.
  ClusterSearchOptions options;
  options.max_n = 9;
  const auto best =
      CheapestRaftCluster({kReliable, kSpot}, Probability::FromComplement(3.2e-4), options);
  ASSERT_TRUE(best.ok());
  EXPECT_LE(best->total_cost, 9.0);
}

TEST(CheapestClusterTest, RespectsTarget) {
  const Probability five_nines = Probability::FromComplement(1e-5);
  ClusterSearchOptions options;
  options.max_n = 11;
  const auto best = CheapestRaftCluster({kReliable, kSpot}, five_nines, options);
  ASSERT_TRUE(best.ok());
  EXPECT_FALSE(best->safe_and_live < five_nines);
}

TEST(CheapestClusterTest, UnreachableTargetFails) {
  const Probability twelve_nines = Probability::FromComplement(1e-12);
  ClusterSearchOptions options;
  options.max_n = 3;
  const auto best = CheapestRaftCluster({kSpot}, twelve_nines, options);
  EXPECT_FALSE(best.ok());
  EXPECT_EQ(best.status().code(), StatusCode::kNotFound);
}

TEST(CheapestClusterTest, OddSizesOnlyByDefault) {
  const auto best = CheapestRaftCluster({kSpot}, Probability::FromProbability(0.9));
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->TotalNodes() % 2, 1);
}

TEST(CheapestClusterTest, MixesCanBeatHomogeneous) {
  // A mix search space is a superset of homogeneous; never worse.
  const Probability target = Probability::FromComplement(5e-6);
  ClusterSearchOptions homogeneous_only;
  homogeneous_only.allow_two_type_mixes = false;
  homogeneous_only.max_n = 9;
  ClusterSearchOptions with_mixes = homogeneous_only;
  with_mixes.allow_two_type_mixes = true;
  const auto homogeneous = CheapestRaftCluster({kReliable, kSpot}, target, homogeneous_only);
  const auto mixed = CheapestRaftCluster({kReliable, kSpot}, target, with_mixes);
  ASSERT_TRUE(homogeneous.ok());
  ASSERT_TRUE(mixed.ok());
  EXPECT_LE(mixed->total_cost, homogeneous->total_cost);
}

TEST(ClusterPlanTest, DescribeMentionsParts) {
  const auto plan = EvaluateRaftCluster({kReliable, kSpot}, {1, 2});
  const std::string text = plan.Describe();
  EXPECT_NE(text.find("on-demand"), std::string::npos);
  EXPECT_NE(text.find("spot"), std::string::npos);
}

}  // namespace
}  // namespace probcon
