// Regression lock on the paper-table numbers: the EXACT formatted strings Table 1 and
// Table 2 print today, baked in so any future change to the analysis engine (parallel
// chunking, summation order, count-law caching, ...) that perturbs even the last rendered
// digit fails loudly. The measured values deliberately include the two cells where the
// engine's full-precision result rounds differently from the paper's printed table
// (Raft n=9 at p=1% and p=4% — see EXPERIMENTS.md); the lock is on OUR output, not the
// paper's typesetting.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/reliability.h"
#include "src/exec/thread_pool.h"
#include "src/prob/probability.h"

namespace probcon {
namespace {

TEST(TablesRegressionTest, Table1PbftFormattedCellsUnchanged) {
  const struct {
    int n;
    const char* safe;
    const char* live;
    const char* safe_and_live;
  } kExpected[] = {
      {4, "99.94%", "99.94%", "99.94%"},
      {5, "99.9990%", "99.90%", "99.90%"},
      {7, "99.997%", "99.997%", "99.997%"},
      {8, "99.99993%", "99.995%", "99.995%"},
  };
  for (const auto& row : kExpected) {
    const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(row.n, 0.01);
    const ReliabilityReport report = AnalyzePbft(PbftConfig::Standard(row.n), analyzer);
    EXPECT_EQ(FormatPercent(report.safe), row.safe) << "n=" << row.n;
    EXPECT_EQ(FormatPercent(report.live), row.live) << "n=" << row.n;
    EXPECT_EQ(FormatPercent(report.safe_and_live), row.safe_and_live) << "n=" << row.n;
  }
}

TEST(TablesRegressionTest, Table2RaftFormattedCellsUnchanged) {
  constexpr double kProbabilities[] = {0.01, 0.02, 0.04, 0.08};
  const struct {
    int n;
    const char* cells[4];
  } kExpected[] = {
      {3, {"99.97%", "99.88%", "99.53%", "98.18%"}},
      {5, {"99.9990%", "99.992%", "99.94%", "99.55%"}},
      {7, {"99.99997%", "99.9995%", "99.992%", "99.88%"}},
      {9, {"99.999999%", "99.99996%", "99.999%", "99.97%"}},
  };
  for (const auto& row : kExpected) {
    for (int i = 0; i < 4; ++i) {
      const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(row.n, kProbabilities[i]);
      const ReliabilityReport report =
          AnalyzeRaft(RaftConfig::Standard(row.n), analyzer);
      EXPECT_EQ(FormatPercent(report.safe_and_live), row.cells[i])
          << "n=" << row.n << " p=" << kProbabilities[i];
    }
  }
}

TEST(TablesRegressionTest, TableCellsUnchangedUnderParallelPool) {
  // Same lock, evaluated through a multi-worker pool: parallelizing the engine must not
  // move a single rendered digit.
  ScopedThreadPool scoped(4);
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(9, 0.01);
  const ReliabilityReport raft = AnalyzeRaft(RaftConfig::Standard(9), analyzer);
  EXPECT_EQ(FormatPercent(raft.safe_and_live), "99.999999%");
  const auto pbft_analyzer = ReliabilityAnalyzer::ForUniformNodes(8, 0.01);
  const ReliabilityReport pbft = AnalyzePbft(PbftConfig::Standard(8), pbft_analyzer);
  EXPECT_EQ(FormatPercent(pbft.safe_and_live), "99.995%");
}

}  // namespace
}  // namespace probcon
