#include "src/analysis/importance_sampling.h"

#include <memory>

#include <gtest/gtest.h>

namespace probcon {
namespace {

CountPredicate AtLeastKFailures(int k) {
  return CountPredicate([k](int failures, int /*n*/) { return failures >= k; });
}

TEST(ImportanceSamplingTest, MatchesExactTailOnIndependentModel) {
  // P(>= 3 failures of 5 at p=1%) ~ 9.85e-6: invisible to 1e5 plain MC samples, easy for IS.
  const IndependentFailureModel model(std::vector<double>(5, 0.01));
  const auto predicate = AtLeastKFailures(3);
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(5, 0.01);
  const double exact = analyzer.EventProbability(predicate).value();

  ImportanceSamplingOptions options;
  options.trials = 200'000;
  const auto estimate = EstimateRareEventProbability(model, predicate, options);
  EXPECT_NEAR(estimate.probability, exact, 4.0 * estimate.standard_error);
  EXPECT_LT(estimate.standard_error, exact * 0.05);  // Tight at 2e5 samples.
  EXPECT_GT(estimate.hits, 10'000u);  // The bias actually reaches the event region.
}

TEST(ImportanceSamplingTest, ResolvesNineNinesEvent) {
  // P(>= 5 of 9 at p=1%) ~ 1.22e-8 — needs ~1e10 plain MC samples; IS gets it in 2e5.
  const IndependentFailureModel model(std::vector<double>(9, 0.01));
  const auto predicate = AtLeastKFailures(5);
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(9, 0.01);
  const double exact = analyzer.EventProbability(predicate).value();

  ImportanceSamplingOptions options;
  options.trials = 200'000;
  const auto estimate = EstimateRareEventProbability(model, predicate, options);
  EXPECT_NEAR(estimate.probability, exact, 4.0 * estimate.standard_error);
  EXPECT_LT(estimate.standard_error / estimate.probability, 0.1);
}

TEST(ImportanceSamplingTest, UnbiasedOnCorrelatedModel) {
  // Likelihood-ratio correctness under correlation: compare to exact enumeration.
  const CommonCauseFailureModel model(std::vector<double>(6, 0.01), 0.001,
                                      std::vector<double>(6, 0.9));
  const auto predicate = AtLeastKFailures(4);
  ReliabilityAnalyzer analyzer(model.Clone());
  const double exact =
      analyzer.EventProbability(predicate, AnalysisMethod::kExact).value();

  ImportanceSamplingOptions options;
  options.trials = 400'000;
  const auto estimate = EstimateRareEventProbability(model, predicate, options);
  EXPECT_NEAR(estimate.probability, exact, 5.0 * estimate.standard_error);
  EXPECT_GT(estimate.probability, 0.0);
}

TEST(ImportanceSamplingTest, HeterogeneousNodesAutoBias) {
  const IndependentFailureModel model({0.001, 0.01, 0.05, 0.001, 0.02, 0.01, 0.003});
  const auto predicate = AtLeastKFailures(4);
  const auto analyzer =
      ReliabilityAnalyzer::ForIndependentNodes(model.probabilities());
  const double exact = analyzer.EventProbability(predicate).value();
  ImportanceSamplingOptions options;
  options.trials = 300'000;
  const auto estimate = EstimateRareEventProbability(model, predicate, options);
  EXPECT_NEAR(estimate.probability, exact, 5.0 * estimate.standard_error);
}

TEST(ImportanceSamplingTest, ExplicitProposalRespected) {
  const IndependentFailureModel model(std::vector<double>(4, 0.02));
  const auto predicate = AtLeastKFailures(4);
  ImportanceSamplingOptions options;
  options.trials = 100'000;
  options.proposal = std::vector<double>(4, 0.9);  // Hammer the all-fail corner.
  const auto estimate = EstimateRareEventProbability(model, predicate, options);
  const double exact = 0.02 * 0.02 * 0.02 * 0.02;
  EXPECT_NEAR(estimate.probability, exact, 5.0 * estimate.standard_error);
  EXPECT_GT(estimate.hits, 50'000u);  // Proposal concentrates on the event.
}

TEST(ImportanceSamplingTest, DeterministicForSeed) {
  const IndependentFailureModel model(std::vector<double>(5, 0.05));
  const auto predicate = AtLeastKFailures(3);
  ImportanceSamplingOptions options;
  options.trials = 10'000;
  options.seed = 7;
  const auto a = EstimateRareEventProbability(model, predicate, options);
  const auto b = EstimateRareEventProbability(model, predicate, options);
  EXPECT_DOUBLE_EQ(a.probability, b.probability);
}

TEST(ImportanceSamplingTest, ZeroProbabilityEvent) {
  const IndependentFailureModel model(std::vector<double>(3, 0.1));
  const auto impossible = CountPredicate([](int failures, int n) { return failures > n; });
  const auto estimate = EstimateRareEventProbability(model, impossible);
  EXPECT_DOUBLE_EQ(estimate.probability, 0.0);
  EXPECT_EQ(estimate.hits, 0u);
}

}  // namespace
}  // namespace probcon
