#include "src/analysis/timeline.h"

#include <gtest/gtest.h>

#include "src/faultmodel/afr.h"

namespace probcon {
namespace {

TimelineOptions MonthlyOverYears(double years, int steps) {
  TimelineOptions options;
  options.horizon = years * kHoursPerYear;
  options.steps = steps;
  options.window = 30 * 24.0;
  return options;
}

TEST(TimelineTest, ConstantCurvesGiveFlatTimeline) {
  const ConstantFaultCurve curve(RateFromAfr(0.02));
  const std::vector<const FaultCurve*> curves(3, &curve);
  const std::vector<double> ages(3, 0.0);
  const auto timeline = RaftReliabilityTimeline(RaftConfig::Standard(3), curves, ages,
                                                MonthlyOverYears(2.0, 5));
  ASSERT_EQ(timeline.size(), 5u);
  for (const auto& point : timeline) {
    EXPECT_NEAR(point.report.safe_and_live.complement(),
                timeline.front().report.safe_and_live.complement(), 1e-12);
  }
}

TEST(TimelineTest, TimesSpanHorizonInclusive) {
  const ConstantFaultCurve curve(0.001);
  const std::vector<const FaultCurve*> curves(3, &curve);
  const auto timeline = RaftReliabilityTimeline(RaftConfig::Standard(3), curves,
                                                {0.0, 0.0, 0.0}, MonthlyOverYears(1.0, 4));
  EXPECT_DOUBLE_EQ(timeline.front().time, 0.0);
  EXPECT_DOUBLE_EQ(timeline.back().time, kHoursPerYear);
}

TEST(TimelineTest, WearOutErodesNines) {
  const WeibullFaultCurve wearout(4.0, 4.0 * kHoursPerYear);
  const std::vector<const FaultCurve*> curves(5, &wearout);
  const std::vector<double> ages(5, 0.5 * kHoursPerYear);
  const auto timeline = RaftReliabilityTimeline(RaftConfig::Standard(5), curves, ages,
                                                MonthlyOverYears(3.0, 6));
  EXPECT_GT(timeline.front().report.safe_and_live.nines(),
            timeline.back().report.safe_and_live.nines() + 1.0);
  // Per-node window probabilities are monotone under pure wear-out.
  for (size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_GT(timeline[i].window_failure_probabilities[0],
              timeline[i - 1].window_failure_probabilities[0]);
  }
}

TEST(TimelineTest, InfantMortalityImprovesThenFlat) {
  const WeibullFaultCurve infant(0.5, 50.0 * kHoursPerYear);
  const std::vector<const FaultCurve*> curves(3, &infant);
  const auto timeline = RaftReliabilityTimeline(RaftConfig::Standard(3), curves,
                                                {0.0, 0.0, 0.0}, MonthlyOverYears(2.0, 5));
  EXPECT_LT(timeline.front().report.safe_and_live.nines(),
            timeline.back().report.safe_and_live.nines());
}

TEST(TimelineTest, MixedAgesUseEachNodesOwnCurvePosition) {
  const WeibullFaultCurve wearout(4.0, 2.0 * kHoursPerYear);
  const ConstantFaultCurve steady(RateFromAfr(0.01));
  const std::vector<const FaultCurve*> curves = {&wearout, &steady, &steady};
  const auto timeline =
      RaftReliabilityTimeline(RaftConfig::Standard(3), curves,
                              {1.8 * kHoursPerYear, 0.0, 0.0}, MonthlyOverYears(0.5, 3));
  // Node 0 (deep wear-out) dominates; its probability dwarfs the steady nodes'.
  for (const auto& point : timeline) {
    EXPECT_GT(point.window_failure_probabilities[0],
              10.0 * point.window_failure_probabilities[1]);
  }
}

TEST(FirstTimeBelowTargetTest, FindsBreachInstant) {
  const WeibullFaultCurve wearout(5.0, 3.0 * kHoursPerYear);
  const std::vector<const FaultCurve*> curves(3, &wearout);
  const auto timeline = RaftReliabilityTimeline(RaftConfig::Standard(3), curves,
                                                {0.0, 0.0, 0.0}, MonthlyOverYears(4.0, 9));
  const double breach = FirstTimeBelowTarget(timeline, Probability::FromComplement(1e-4));
  EXPECT_GT(breach, 0.0);
  EXPECT_LT(breach, 4.0 * kHoursPerYear);
  // Never-breached case.
  EXPECT_DOUBLE_EQ(
      FirstTimeBelowTarget(timeline, Probability::FromComplement(0.999999)), -1.0);
}

}  // namespace
}  // namespace probcon
