#include "src/analysis/placement.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace probcon {
namespace {

TEST(PlacementTest, EvaluateMatchesDirectModel) {
  const std::vector<double> base(3, 0.01);
  const std::vector<double> racks = {0.02, 0.02, 0.02};
  // Fully spread: each node its own rack -> effectively independent with combined p.
  const auto spread = EvaluateRackPlacement(base, racks, {0, 1, 2});
  const double combined = 1.0 - (1.0 - 0.01) * (1.0 - 0.02);
  const auto independent = AnalyzeRaft(
      RaftConfig::Standard(3),
      ReliabilityAnalyzer::ForUniformNodes(3, combined));
  EXPECT_NEAR(spread.complement(), independent.safe_and_live.complement(), 1e-12);
}

TEST(PlacementTest, SpreadBeatsPacked) {
  const std::vector<double> base(5, 0.005);
  const std::vector<double> racks = {0.01, 0.01, 0.01, 0.01, 0.01};
  const auto spread = EvaluateRackPlacement(base, racks, {0, 1, 2, 3, 4});
  const auto packed = EvaluateRackPlacement(base, racks, {0, 0, 0, 0, 0});
  EXPECT_GT(spread.value(), packed.value());
}

TEST(PlacementTest, OptimizerFindsFullSpreadWithEqualRacks) {
  const std::vector<double> base(5, 0.005);
  const std::vector<double> racks = {0.01, 0.01, 0.01, 0.01, 0.01};
  const auto best = OptimizeRackPlacement(base, racks);
  // Every node in its own rack (any permutation); check all racks distinct.
  std::vector<int> sorted = best.rack_of;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_FALSE(best.safe_and_live <
               EvaluateRackPlacement(base, racks, {0, 1, 2, 3, 4}));
}

TEST(PlacementTest, OptimizerAvoidsTheBadRack) {
  // Three racks, one of which is a disaster: with 3 nodes and 2 good racks, the optimizer
  // must put at most... it must never use rack 2 beyond necessity. With 2 good racks and 3
  // nodes, majority=2: losing a good rack with 2 nodes kills the quorum, so the best split
  // uses the bad rack for at most the minority.
  const std::vector<double> base(3, 0.001);
  const std::vector<double> racks = {0.001, 0.001, 0.2};
  const auto best = OptimizeRackPlacement(base, racks);
  const int in_bad_rack = static_cast<int>(
      std::count(best.rack_of.begin(), best.rack_of.end(), 2));
  EXPECT_LE(in_bad_rack, 1);
  // And the chosen placement beats naive round-robin across all three racks when the
  // round-robin puts a node on the bad rack.
  const auto round_robin = EvaluateRackPlacement(base, racks, {0, 1, 2});
  EXPECT_FALSE(best.safe_and_live < round_robin);
}

TEST(PlacementTest, TwoRacksCannotBeatPackingButThreeCan) {
  // The non-obvious result the optimizer surfaces: with only TWO racks, a majority quorum
  // cannot survive the larger rack's loss no matter the split, so spreading merely adds
  // exposure to the second rack's events — packing everything into one rack is optimal.
  const std::vector<double> base(5, 0.002);
  const std::vector<double> two_racks = {0.01, 0.01};
  const auto best_two = OptimizeRackPlacement(base, two_racks);
  const int rack0 = static_cast<int>(
      std::count(best_two.rack_of.begin(), best_two.rack_of.end(), 0));
  EXPECT_TRUE(rack0 == 0 || rack0 == 5) << rack0;
  const auto split = EvaluateRackPlacement(base, two_racks, {0, 0, 0, 1, 1});
  EXPECT_GT(best_two.safe_and_live.value(), split.value());

  // With THREE racks a 2-2-1 split survives any single rack event, and the optimizer finds
  // it — roughly two orders of magnitude better than packing.
  const std::vector<double> three_racks = {0.01, 0.01, 0.01};
  const auto best_three = OptimizeRackPlacement(base, three_racks);
  std::vector<int> counts(3, 0);
  for (const int rack : best_three.rack_of) {
    ++counts[rack];
  }
  std::sort(counts.begin(), counts.end());
  EXPECT_EQ(counts, (std::vector<int>{1, 2, 2}));
  EXPECT_LT(best_three.safe_and_live.complement(),
            best_two.safe_and_live.complement() / 20.0);
}

}  // namespace
}  // namespace probcon
