#include "src/analysis/dual_fault.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/prob/binomial.h"

namespace probcon {
namespace {

TEST(DualFaultCountsTest, SingleNodeHandComputed) {
  const DualFaultCounts counts({{0.1, 0.02}});
  EXPECT_NEAR(counts.Pmf(0, 0), 0.88, 1e-15);
  EXPECT_NEAR(counts.Pmf(1, 0), 0.10, 1e-15);
  EXPECT_NEAR(counts.Pmf(0, 1), 0.02, 1e-15);
  EXPECT_DOUBLE_EQ(counts.Pmf(1, 1), 0.0);
}

TEST(DualFaultCountsTest, PmfSumsToOne) {
  const DualFaultCounts counts(
      {{0.1, 0.02}, {0.3, 0.001}, {0.05, 0.05}, {0.0, 0.2}, {0.4, 0.0}});
  double sum = 0.0;
  for (int crashed = 0; crashed <= 5; ++crashed) {
    for (int byzantine = 0; byzantine + crashed <= 5; ++byzantine) {
      EXPECT_GE(counts.Pmf(crashed, byzantine), 0.0);
      sum += counts.Pmf(crashed, byzantine);
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(DualFaultCountsTest, MarginalsReduceToPoissonBinomial) {
  // With p_byz = 0 the crash marginal must match a binomial.
  const int n = 6;
  const double p = 0.07;
  const DualFaultCounts counts(std::vector<DualFaultProbabilities>(n, {p, 0.0}));
  for (int crashed = 0; crashed <= n; ++crashed) {
    EXPECT_NEAR(counts.Pmf(crashed, 0), BinomialPmf(n, crashed, p), 1e-12) << crashed;
    for (int byzantine = 1; byzantine + crashed <= n; ++byzantine) {
      EXPECT_DOUBLE_EQ(counts.Pmf(crashed, byzantine), 0.0);
    }
  }
}

TEST(DualFaultCountsTest, BruteForceAgreementSmallN) {
  const std::vector<DualFaultProbabilities> nodes = {{0.2, 0.1}, {0.05, 0.3}, {0.4, 0.01}};
  const DualFaultCounts counts(nodes);
  // Enumerate 3^3 outcomes.
  double brute[4][4] = {};
  for (int s0 = 0; s0 < 3; ++s0) {
    for (int s1 = 0; s1 < 3; ++s1) {
      for (int s2 = 0; s2 < 3; ++s2) {
        const int states[3] = {s0, s1, s2};
        double mass = 1.0;
        int crashed = 0;
        int byzantine = 0;
        for (int i = 0; i < 3; ++i) {
          if (states[i] == 0) {
            mass *= 1.0 - nodes[i].crash - nodes[i].byzantine;
          } else if (states[i] == 1) {
            mass *= nodes[i].crash;
            ++crashed;
          } else {
            mass *= nodes[i].byzantine;
            ++byzantine;
          }
        }
        brute[crashed][byzantine] += mass;
      }
    }
  }
  for (int crashed = 0; crashed <= 3; ++crashed) {
    for (int byzantine = 0; byzantine + crashed <= 3; ++byzantine) {
      EXPECT_NEAR(counts.Pmf(crashed, byzantine), brute[crashed][byzantine], 1e-14)
          << crashed << "," << byzantine;
    }
  }
}

TEST(UprightConfigTest, BudgetsSizing) {
  const auto config = UprightConfig::ForBudgets(2, 1);
  EXPECT_EQ(config.n, 6);
  EXPECT_EQ(UprightConfig::ForBudgets(1, 0).n, 3);  // Degenerates to CFT sizing.
  EXPECT_EQ(UprightConfig::ForBudgets(1, 1).n, 4);  // Degenerates to BFT sizing.
}

TEST(UprightPredicateTest, Thresholds) {
  const auto config = UprightConfig::ForBudgets(2, 1);
  EXPECT_TRUE(UprightIsSafe(config, 1));
  EXPECT_FALSE(UprightIsSafe(config, 2));
  EXPECT_TRUE(UprightIsLive(config, 1, 1));
  EXPECT_FALSE(UprightIsLive(config, 2, 1));  // 3 total failures > u.
  EXPECT_FALSE(UprightIsLive(config, 0, 2));  // Unsafe implies not usefully live.
}

TEST(AnalyzeUprightTest, RareByzantineNumbers) {
  // The paper's Google figures: crash ~4%, Byzantine ~0.01%.
  const std::vector<DualFaultProbabilities> nodes(6, {0.04, 0.0001});
  const auto report = AnalyzeUpright(UprightConfig::ForBudgets(2, 1), nodes);
  // Unsafe requires >= 2 Byzantine: ~C(6,2) * 1e-8 = 1.5e-7.
  EXPECT_NEAR(report.safe.complement(), 15.0 * 1e-8, 3e-9);
  EXPECT_GT(report.live.value(), 0.99);
}

TEST(BaselinesTest, RaftSafetyIsByzantineFreeProbability) {
  const std::vector<DualFaultProbabilities> nodes(3, {0.04, 0.0001});
  const auto report = AnalyzeRaftUnderDualFaults(3, nodes);
  EXPECT_NEAR(report.safe.complement(), 1.0 - std::pow(1.0 - 0.0001, 3), 1e-12);
}

TEST(BaselinesTest, PbftMatchesSingleModeTheoremWhenNoCrashes) {
  // With crash = 0 the dual analysis must reduce to the Table-1 computation.
  const std::vector<DualFaultProbabilities> nodes(4, {0.0, 0.01});
  const auto dual = AnalyzePbftUnderDualFaults(PbftConfig::Standard(4), nodes);
  const auto single = AnalyzePbft(PbftConfig::Standard(4),
                                  ReliabilityAnalyzer::ForUniformNodes(4, 0.01));
  EXPECT_NEAR(dual.safe.complement(), single.safe.complement(), 1e-12);
  EXPECT_NEAR(dual.live.complement(), single.live.complement(), 1e-12);
}

TEST(BaselinesTest, CrashesHurtPbftLivenessNotSafety) {
  const std::vector<DualFaultProbabilities> calm(4, {0.0, 0.001});
  const std::vector<DualFaultProbabilities> crashy(4, {0.05, 0.001});
  const auto a = AnalyzePbftUnderDualFaults(PbftConfig::Standard(4), calm);
  const auto b = AnalyzePbftUnderDualFaults(PbftConfig::Standard(4), crashy);
  EXPECT_NEAR(a.safe.complement(), b.safe.complement(), 1e-12);
  EXPECT_GT(b.live.complement(), a.live.complement() * 10.0);
}

TEST(ComparisonTest, UprightBeatsBothWorldsAtGoogleNumbers) {
  // crash 4%, byz 0.01%: Upright(u=2,r=1) at n=6 should be far safer than Raft n=5 (which
  // dies on ANY Byzantine node) and similarly live; and safer-per-node than PBFT n=7 is
  // expensive. Check the orderings the Upright paper (and §2.4) claim.
  const DualFaultProbabilities mix{0.04, 0.0001};
  const auto upright =
      AnalyzeUpright(UprightConfig::ForBudgets(2, 1), std::vector<DualFaultProbabilities>(6, mix));
  const auto raft =
      AnalyzeRaftUnderDualFaults(5, std::vector<DualFaultProbabilities>(5, mix));
  EXPECT_LT(upright.safe.complement(), raft.safe.complement() / 1000.0);
  EXPECT_GT(upright.live.value(), 0.99);
}

}  // namespace
}  // namespace probcon
