#include "src/analysis/durability.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/prob/combinatorics.h"

namespace probcon {
namespace {

TEST(QuorumWipeoutTest, ProductOfMembers) {
  const IndependentFailureModel model({0.1, 0.2, 0.3, 0.4});
  EXPECT_NEAR(QuorumWipeoutProbability(model, 0b0011).value(), 0.02, 1e-15);
  EXPECT_NEAR(QuorumWipeoutProbability(model, 0b1100).value(), 0.12, 1e-15);
  EXPECT_NEAR(QuorumWipeoutProbability(model, 0b1111).value(), 0.0024, 1e-15);
}

TEST(PlacementDurabilityTest, OrderingHolds) {
  const IndependentFailureModel model({0.01, 0.01, 0.01, 0.08, 0.08, 0.08, 0.08});
  const auto analysis = AnalyzePlacementDurability(model, 4);
  EXPECT_LT(analysis.best_case_loss.value(), analysis.random_quorum_loss.value());
  EXPECT_LT(analysis.random_quorum_loss.value(), analysis.worst_case_loss.value());
  // Worst case: the four 8% nodes.
  EXPECT_NEAR(analysis.worst_case_loss.value(), std::pow(0.08, 4), 1e-15);
  // Best case: three 1% + one 8%.
  EXPECT_NEAR(analysis.best_case_loss.value(), std::pow(0.01, 3) * 0.08, 1e-18);
}

TEST(MeanSubsetProductTest, MatchesBruteForce) {
  const std::vector<double> values = {0.1, 0.25, 0.5, 0.03, 0.9};
  for (int q = 1; q <= 5; ++q) {
    double total = 0.0;
    int count = 0;
    for (int mask = 0; mask < 32; ++mask) {
      if (__builtin_popcount(mask) != q) {
        continue;
      }
      double product = 1.0;
      for (int i = 0; i < 5; ++i) {
        if ((mask >> i) & 1) {
          product *= values[i];
        }
      }
      total += product;
      ++count;
    }
    EXPECT_NEAR(MeanSubsetProduct(values, q), total / count, 1e-14) << q;
  }
}

TEST(MeanSubsetProductTest, UniformValuesReduceToPower) {
  const std::vector<double> uniform(10, 0.2);
  EXPECT_NEAR(MeanSubsetProduct(uniform, 3), std::pow(0.2, 3), 1e-15);
}

TEST(ReliableConstraintTest, ConstraintImprovesWorstCase) {
  // E4's setup: 4 nodes at 8%, 3 at 1%; quorum size 4 must include >= 1 reliable node.
  const IndependentFailureModel model({0.08, 0.08, 0.08, 0.08, 0.01, 0.01, 0.01});
  const NodeSet reliable = 0b1110000;
  const auto unconstrained = AnalyzePlacementDurability(model, 4).worst_case_loss;
  const auto constrained =
      WorstCaseLossWithReliableConstraint(model, 4, reliable, 1);
  EXPECT_LT(constrained.value(), unconstrained.value());
  // Hand check: worst constrained quorum = 3x0.08 + 1x0.01.
  EXPECT_NEAR(constrained.value(), std::pow(0.08, 3) * 0.01, 1e-15);
  EXPECT_NEAR(unconstrained.value(), std::pow(0.08, 4), 1e-15);
}

TEST(ReliableConstraintTest, ZeroConstraintEqualsUnconstrained) {
  const IndependentFailureModel model({0.3, 0.2, 0.1, 0.05});
  const auto a = WorstCaseLossWithReliableConstraint(model, 2, 0b1000, 0);
  const auto b = AnalyzePlacementDurability(model, 2).worst_case_loss;
  EXPECT_DOUBLE_EQ(a.value(), b.value());
}

TEST(ReliableConstraintTest, FullConstraintPinsQuorum) {
  const IndependentFailureModel model({0.3, 0.2, 0.1, 0.05});
  // Quorum of 2 entirely inside the reliable set {2, 3}.
  const auto loss = WorstCaseLossWithReliableConstraint(model, 2, 0b1100, 2);
  EXPECT_NEAR(loss.value(), 0.1 * 0.05, 1e-15);
}

TEST(PersistenceOverlapTest, PaperHundredNodeNumbers) {
  // §4: n=100, q_per=10, p=10% -> ~50% chance of >= 10 failures, but 1e-10 for a SPECIFIC
  // quorum to be wiped out.
  const auto overlap = AnalyzePersistenceOverlap(100, 10, 0.10);
  EXPECT_NEAR(overlap.quorum_many_failures.value(), 0.549, 0.01);
  EXPECT_NEAR(overlap.specific_quorum_wipeout.value(), 1e-10, 1e-20);
  // "one in ten billion".
  EXPECT_NEAR(overlap.specific_quorum_wipeout.complement_nines(), 10.0, 1e-9);
}

TEST(PersistenceOverlapTest, SmallClusterSanity) {
  const auto overlap = AnalyzePersistenceOverlap(3, 2, 0.01);
  // P(>=2 failures of 3) = 3*0.0001*0.99 + 1e-6.
  EXPECT_NEAR(overlap.quorum_many_failures.value(), 3 * 1e-4 * 0.99 + 1e-6, 1e-12);
  EXPECT_NEAR(overlap.specific_quorum_wipeout.value(), 1e-4, 1e-18);
}

TEST(PersistenceOverlapTest, GapGrowsWithClusterSize) {
  // The count-vs-placement gap is the paper's headline §4 observation; it widens with n.
  const auto small = AnalyzePersistenceOverlap(20, 5, 0.1);
  const auto large = AnalyzePersistenceOverlap(100, 5, 0.1);
  const double small_gap =
      small.quorum_many_failures.value() / small.specific_quorum_wipeout.value();
  const double large_gap =
      large.quorum_many_failures.value() / large.specific_quorum_wipeout.value();
  EXPECT_GT(large_gap, small_gap);
}

}  // namespace
}  // namespace probcon
