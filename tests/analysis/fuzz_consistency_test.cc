// Randomized cross-strategy consistency checks: for arbitrary heterogeneous clusters and
// arbitrary count-threshold predicates, the exact 2^N enumeration, the Poisson-binomial DP,
// Monte Carlo, and importance sampling must all agree (within their respective error bars).
// This is the fuzz layer guarding the analyzer's three code paths against divergence.

#include <gtest/gtest.h>

#include "src/analysis/importance_sampling.h"
#include "src/analysis/reliability.h"
#include "src/common/rng.h"

namespace probcon {
namespace {

std::vector<double> RandomProbabilities(Rng& rng, int n) {
  std::vector<double> probs;
  for (int i = 0; i < n; ++i) {
    // Mix of scales: some very reliable, some terrible.
    const double magnitude = -4.0 * rng.NextDouble();
    probs.push_back(std::min(0.95, std::pow(10.0, magnitude)));
  }
  return probs;
}

class FuzzConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzConsistencyTest, ExactMatchesCountDp) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.NextBelow(14));
  const auto probs = RandomProbabilities(rng, n);
  const int threshold = static_cast<int>(rng.NextBelow(n + 1));
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(probs);
  const CountPredicate predicate(
      [threshold](int failures, int /*nodes*/) { return failures <= threshold; });
  const auto exact = analyzer.EventProbability(predicate, AnalysisMethod::kExact);
  const auto dp = analyzer.EventProbability(predicate, AnalysisMethod::kCountDp);
  EXPECT_NEAR(exact.value(), dp.value(), 1e-11) << "n=" << n << " k=" << threshold;
  EXPECT_NEAR(exact.complement(), dp.complement(),
              std::max(1e-13, dp.complement() * 1e-8));
}

TEST_P(FuzzConsistencyTest, MonteCarloWithinInterval) {
  Rng rng(GetParam() * 31 + 7);
  const int n = 3 + static_cast<int>(rng.NextBelow(8));
  const auto probs = RandomProbabilities(rng, n);
  const int threshold = static_cast<int>(rng.NextBelow(n));
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(probs);
  const CountPredicate predicate(
      [threshold](int failures, int /*nodes*/) { return failures <= threshold; });
  const double exact = analyzer.EventProbability(predicate).value();
  MonteCarloOptions options;
  options.trials = 60'000;
  options.seed = GetParam();
  const auto ci = analyzer.EstimateEventProbability(predicate, options);
  // Wilson 95% interval, widened slightly for the multiple-comparison sweep.
  EXPECT_GE(exact, ci.low - 0.01);
  EXPECT_LE(exact, ci.high + 0.01);
}

TEST_P(FuzzConsistencyTest, ImportanceSamplingMatchesExactTail) {
  Rng rng(GetParam() * 101 + 3);
  const int n = 4 + static_cast<int>(rng.NextBelow(8));
  const auto probs = RandomProbabilities(rng, n);
  const int threshold = n / 2 + 1;
  const IndependentFailureModel model(probs);
  const CountPredicate rare(
      [threshold](int failures, int /*nodes*/) { return failures >= threshold; });
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(probs);
  const double exact = analyzer.EventProbability(rare).value();
  ImportanceSamplingOptions options;
  options.trials = 120'000;
  options.seed = GetParam();
  const auto estimate = EstimateRareEventProbability(model, rare, options);
  EXPECT_NEAR(estimate.probability, exact,
              std::max(6.0 * estimate.standard_error, exact * 0.05))
      << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzConsistencyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

}  // namespace
}  // namespace probcon
