#include "src/analysis/round_analysis.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/reliability.h"
#include "src/common/cancellation.h"
#include "src/faultmodel/fault_curve.h"
#include "src/faultmodel/round_schedule.h"
#include "src/sim/failure_injector.h"
#include "src/sim/network.h"
#include "src/sim/process.h"
#include "src/sim/simulator.h"

namespace probcon {
namespace {

RoundSchedule FlatSchedule(int n, double p, int rounds) {
  return RoundSchedule(24.0, std::vector<std::vector<double>>(
                                 rounds, std::vector<double>(n, p)));
}

TEST(RoundAnalysisTest, PerRoundMatchesOneShotAnalysis) {
  // A flat schedule must reproduce the one-shot Theorem 3.2 numbers in every round.
  const RaftConfig config = RaftConfig::Standard(5);
  const RoundSchedule schedule = FlatSchedule(5, 0.03, 4);
  const RoundAnalysis result = AnalyzeRaftRounds(config, schedule);
  ASSERT_EQ(result.per_round.size(), 4u);
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(5, 0.03);
  const ReliabilityReport one_shot = AnalyzeRaft(config, analyzer);
  for (const ReliabilityReport& report : result.per_round) {
    EXPECT_DOUBLE_EQ(report.live.value(), one_shot.live.value());
    EXPECT_DOUBLE_EQ(report.safe.value(), one_shot.safe.value());
  }
}

TEST(RoundAnalysisTest, MissionAggregatesMultiplyPerRoundProbabilities) {
  const RaftConfig config = RaftConfig::Standard(3);
  const RoundSchedule schedule = FlatSchedule(3, 0.05, 6);
  const RoundAnalysis result = AnalyzeRaftRounds(config, schedule);
  double product = 1.0;
  for (const ReliabilityReport& report : result.per_round) {
    product *= report.live.value();
  }
  EXPECT_NEAR(result.mission_live.value(), product, 1e-12);
  EXPECT_DOUBLE_EQ(result.mission_safe.value(), 1.0);  // Raft safety is structural.
}

TEST(RoundAnalysisTest, CumulativeUsesAccumulatedFailureProbabilities) {
  // Fail-stop: round r is analyzed with q^(r) = 1 - prod(1 - p^(s)), s <= r.
  const RaftConfig config = RaftConfig::Standard(3);
  const RoundSchedule schedule = FlatSchedule(3, 0.1, 3);
  const RoundAnalysis result = AnalyzeRaftRounds(config, schedule);
  ASSERT_EQ(result.cumulative.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    const double q = 1.0 - std::pow(0.9, r + 1);
    const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(3, q);
    const ReliabilityReport expected = AnalyzeRaft(config, analyzer);
    EXPECT_NEAR(result.cumulative[r].live.value(), expected.live.value(), 1e-12) << r;
  }
  // The failed set only grows, so cumulative liveness is monotone non-increasing.
  EXPECT_GE(result.cumulative[0].live.value(), result.cumulative[1].live.value());
  EXPECT_GE(result.cumulative[1].live.value(), result.cumulative[2].live.value());
}

TEST(RoundAnalysisTest, AgingCurveDegradesLiveness) {
  // Under wear-out, later rounds must be strictly less live than earlier ones.
  const WeibullFaultCurve curve(3.0, 2000.0);
  const RoundSchedule schedule = RoundSchedule::FromCurve(curve, 5, 1000.0, 24.0, 10);
  const RoundAnalysis result = AnalyzeRaftRounds(RaftConfig::Standard(5), schedule);
  EXPECT_GT(result.per_round.front().live.value(), result.per_round.back().live.value());
}

TEST(RoundAnalysisTest, PbftRoundsReportSafety) {
  const PbftConfig config = PbftConfig::Standard(4);
  const RoundSchedule schedule = FlatSchedule(4, 0.02, 3);
  const RoundAnalysis result = AnalyzePbftRounds(config, schedule);
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(4, 0.02);
  const ReliabilityReport one_shot = AnalyzePbft(config, analyzer);
  ASSERT_EQ(result.per_round.size(), 3u);
  EXPECT_DOUBLE_EQ(result.per_round[0].safe.value(), one_shot.safe.value());
  EXPECT_DOUBLE_EQ(result.per_round[0].live.value(), one_shot.live.value());
  EXPECT_DOUBLE_EQ(result.per_round[0].safe_and_live.value(),
                   one_shot.safe_and_live.value());
  EXPECT_NEAR(result.mission_safe.value(), std::pow(one_shot.safe.value(), 3), 1e-12);
}

TEST(RoundAnalysisTest, ConfigSizeMustMatchScheduleWidth) {
  const RoundSchedule schedule = FlatSchedule(4, 0.02, 2);
  EXPECT_DEATH(AnalyzeRaftRounds(RaftConfig::Standard(5), schedule), "");
}

TEST(RoundAnalysisTest, CancellationUnwinds) {
  CancelToken token;
  token.Cancel();
  const auto result = TryAnalyzeRaftRounds(RaftConfig::Standard(3), FlatSchedule(3, 0.01, 5),
                                           AnalysisMethod::kAuto, &token);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(RoundAnalysisTest, ProgressCountsRoundRegimes) {
  std::atomic<uint64_t> progress{0};
  const auto result = TryAnalyzeRaftRounds(RaftConfig::Standard(3), FlatSchedule(3, 0.01, 7),
                                           AnalysisMethod::kAuto, nullptr, &progress);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(progress.load(), 14u);  // Two regimes per round.
}

// ---------------------------------------------------------------------------------------
// Cross-validation against the discrete-event simulator: the same schedule drives
// sim::FailureInjector through RoundSchedule::NodeCurve, and the empirical quorum-loss
// fraction over seeded fail-stop campaigns must match the analysis' cumulative regime.

class InertProcess final : public Process {
 public:
  using Process::Process;

 protected:
  void OnStart() override {}
  void OnMessage(int, const std::shared_ptr<const SimMessage>&) override {}
};

// Runs one fail-stop campaign over the schedule's mission and reports per-node crash flags.
std::vector<bool> RunCampaign(const RoundSchedule& schedule, uint64_t seed) {
  const int n = schedule.n();
  Simulator sim(seed);
  Network network(&sim, n, std::make_unique<UniformLatencyModel>(1.0, 1.0));
  std::vector<std::unique_ptr<InertProcess>> processes;
  std::vector<Process*> borrowed;
  std::vector<std::unique_ptr<FaultCurve>> curves;
  for (int i = 0; i < n; ++i) {
    processes.push_back(std::make_unique<InertProcess>(&sim, &network, i));
    processes.back()->Start();
    borrowed.push_back(processes.back().get());
    curves.push_back(schedule.NodeCurve(i));
  }
  FailureInjector injector(&sim, borrowed, std::move(curves));
  injector.Arm();
  sim.Run(schedule.mission_hours());
  std::vector<bool> crashed;
  for (const auto& p : processes) {
    crashed.push_back(p->crashed());
  }
  return crashed;
}

TEST(RoundAnalysisSimCrossValidationTest, CumulativeLivenessMatchesInjectorCampaigns) {
  // Aging fleet, no repair: analysis says P(quorum alive at mission end); the simulator
  // votes with 2000 seeded campaigns. Wilson-style slack: sigma ~ sqrt(p(1-p)/2000) ~ 0.009
  // at the probabilities below, so 0.035 is ~4 sigma.
  constexpr int kNodes = 5;
  constexpr int kTrials = 2000;
  const WeibullFaultCurve curve(2.0, 800.0);
  const RoundSchedule schedule = RoundSchedule::FromCurve(curve, kNodes, 200.0, 24.0, 12);
  const RoundAnalysis analysis =
      AnalyzeRaftRounds(RaftConfig::Standard(kNodes), schedule);

  int quorum_alive = 0;
  int node0_crashed = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::vector<bool> crashed = RunCampaign(schedule, 1000 + trial);
    int up = 0;
    for (const bool c : crashed) {
      up += c ? 0 : 1;
    }
    quorum_alive += up >= 3 ? 1 : 0;
    node0_crashed += crashed[0] ? 1 : 0;
  }

  const double expected_live = analysis.cumulative.back().live.value();
  EXPECT_NEAR(static_cast<double>(quorum_alive) / kTrials, expected_live, 0.035);

  const double expected_node_failure = schedule.CumulativeFailureProbabilities()[0];
  EXPECT_NEAR(static_cast<double>(node0_crashed) / kTrials, expected_node_failure, 0.035);
}

}  // namespace
}  // namespace probcon
