#include "src/prob/interval.h"

#include <gtest/gtest.h>

namespace probcon {
namespace {

TEST(WilsonIntervalTest, PointEstimateIsProportion) {
  const auto ci = WilsonInterval(30, 100);
  EXPECT_DOUBLE_EQ(ci.point, 0.3);
  EXPECT_LT(ci.low, 0.3);
  EXPECT_GT(ci.high, 0.3);
}

TEST(WilsonIntervalTest, ZeroSuccessesStaysAboveZero) {
  const auto ci = WilsonInterval(0, 100);
  EXPECT_DOUBLE_EQ(ci.point, 0.0);
  EXPECT_DOUBLE_EQ(ci.low, 0.0);
  EXPECT_GT(ci.high, 0.0);
  EXPECT_LT(ci.high, 0.05);
}

TEST(WilsonIntervalTest, AllSuccessesStaysBelowOne) {
  const auto ci = WilsonInterval(100, 100);
  EXPECT_DOUBLE_EQ(ci.point, 1.0);
  EXPECT_LT(ci.low, 1.0);
  EXPECT_GT(ci.low, 0.95);
  EXPECT_DOUBLE_EQ(ci.high, 1.0);
}

TEST(WilsonIntervalTest, WidthShrinksWithTrials) {
  const auto small = WilsonInterval(50, 100);
  const auto large = WilsonInterval(50000, 100000);
  EXPECT_LT(large.high - large.low, small.high - small.low);
}

TEST(WilsonIntervalTest, HigherZWidens) {
  const auto narrow = WilsonInterval(50, 100, 1.0);
  const auto wide = WilsonInterval(50, 100, 3.0);
  EXPECT_LT(narrow.high - narrow.low, wide.high - wide.low);
}

TEST(WilsonIntervalTest, KnownValue) {
  // Classic check: 10/100 at z=1.96 -> approximately [0.0552, 0.1744].
  const auto ci = WilsonInterval(10, 100);
  EXPECT_NEAR(ci.low, 0.0552, 0.001);
  EXPECT_NEAR(ci.high, 0.1744, 0.001);
}

}  // namespace
}  // namespace probcon
