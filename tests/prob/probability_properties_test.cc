// Property sweep for the Probability algebra: randomized values, algebraic identities that
// must hold to (near) machine precision on BOTH tracked sides.

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/prob/probability.h"

namespace probcon {
namespace {

// Random probability spanning many magnitudes, on either side of 1/2.
Probability RandomProbability(Rng& rng) {
  const double magnitude = std::pow(10.0, -12.0 * rng.NextDouble());
  if (rng.NextBernoulli(0.5)) {
    return Probability::FromProbability(magnitude);
  }
  return Probability::FromComplement(magnitude);
}

class ProbabilityPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProbabilityPropertyTest, SidesAlwaysSumToOne) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto p = RandomProbability(rng);
    EXPECT_NEAR(p.value() + p.complement(), 1.0, 1e-12);
  }
}

TEST_P(ProbabilityPropertyTest, DoubleNegationIsIdentity) {
  Rng rng(GetParam() + 1000);
  for (int i = 0; i < 200; ++i) {
    const auto p = RandomProbability(rng);
    EXPECT_DOUBLE_EQ(p.Not().Not().value(), p.value());
    EXPECT_DOUBLE_EQ(p.Not().Not().complement(), p.complement());
  }
}

TEST_P(ProbabilityPropertyTest, DeMorganOnBothSides) {
  // not(a AND b) == (not a) OR (not b), checked on the small side of each result.
  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 200; ++i) {
    const auto a = RandomProbability(rng);
    const auto b = RandomProbability(rng);
    const auto lhs = a.And(b).Not();
    const auto rhs = a.Not().Or(b.Not());
    EXPECT_NEAR(lhs.value(), rhs.value(), std::max(1e-15, rhs.value() * 1e-9));
    EXPECT_NEAR(lhs.complement(), rhs.complement(),
                std::max(1e-15, rhs.complement() * 1e-9));
  }
}

TEST_P(ProbabilityPropertyTest, AndOrAssociativity) {
  Rng rng(GetParam() + 3000);
  for (int i = 0; i < 100; ++i) {
    const auto a = RandomProbability(rng);
    const auto b = RandomProbability(rng);
    const auto c = RandomProbability(rng);
    const auto and_left = a.And(b).And(c);
    const auto and_right = a.And(b.And(c));
    EXPECT_NEAR(and_left.value(), and_right.value(),
                std::max(1e-15, and_right.value() * 1e-9));
    const auto or_left = a.Or(b).Or(c);
    const auto or_right = a.Or(b.Or(c));
    EXPECT_NEAR(or_left.complement(), or_right.complement(),
                std::max(1e-15, or_right.complement() * 1e-9));
  }
}

TEST_P(ProbabilityPropertyTest, MixBoundsAndEndpoints) {
  Rng rng(GetParam() + 4000);
  for (int i = 0; i < 200; ++i) {
    const auto a = RandomProbability(rng);
    const auto b = RandomProbability(rng);
    EXPECT_DOUBLE_EQ(a.Mix(1.0, b).value(), a.value());
    EXPECT_DOUBLE_EQ(a.Mix(0.0, b).value(), b.value());
    const auto mid = a.Mix(0.5, b);
    EXPECT_GE(mid.value(), std::min(a.value(), b.value()) - 1e-15);
    EXPECT_LE(mid.value(), std::max(a.value(), b.value()) + 1e-15);
  }
}

TEST_P(ProbabilityPropertyTest, ComparisonIsTotalOnDistinctValues) {
  Rng rng(GetParam() + 5000);
  for (int i = 0; i < 200; ++i) {
    const auto a = RandomProbability(rng);
    const auto b = RandomProbability(rng);
    if (a.value() != b.value()) {
      EXPECT_NE(a < b, b < a);
    }
  }
}

TEST_P(ProbabilityPropertyTest, NinesRoundTrip) {
  Rng rng(GetParam() + 6000);
  for (int i = 0; i < 200; ++i) {
    const double q = std::pow(10.0, -11.0 * rng.NextDouble() - 0.1);
    const auto p = Probability::FromComplement(q);
    EXPECT_NEAR(std::pow(10.0, -p.nines()), q, q * 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProbabilityPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace probcon
