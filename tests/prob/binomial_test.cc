#include "src/prob/binomial.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/prob/combinatorics.h"

namespace probcon {
namespace {

TEST(BinomialTest, PmfKnownValues) {
  EXPECT_NEAR(BinomialPmf(4, 0, 0.01), std::pow(0.99, 4), 1e-12);
  EXPECT_NEAR(BinomialPmf(4, 1, 0.01), 4 * 0.01 * std::pow(0.99, 3), 1e-12);
  EXPECT_NEAR(BinomialPmf(3, 2, 0.5), 0.375, 1e-12);
}

TEST(BinomialTest, PmfDegenerateP) {
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 1, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 4, 1.0), 0.0);
}

TEST(BinomialTest, PmfOutOfRangeIsZero) {
  EXPECT_DOUBLE_EQ(BinomialPmf(5, -1, 0.3), 0.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 6, 0.3), 0.0);
}

class BinomialSumTest : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(BinomialSumTest, PmfSumsToOne) {
  const auto [n, p] = GetParam();
  double sum = 0.0;
  for (int k = 0; k <= n; ++k) {
    sum += BinomialPmf(n, k, p);
  }
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST_P(BinomialSumTest, CdfAndTailAreComplements) {
  const auto [n, p] = GetParam();
  for (int k = 0; k <= n; ++k) {
    const auto cdf = BinomialCdf(n, k, p);
    const auto tail = BinomialTailGe(n, k + 1, p);
    EXPECT_NEAR(cdf.value() + tail.value(), 1.0, 1e-10) << "k=" << k;
    EXPECT_NEAR(cdf.complement(), tail.value(), std::max(1e-14, tail.value() * 1e-9))
        << "k=" << k;
  }
}

TEST_P(BinomialSumTest, CdfIsMonotone) {
  const auto [n, p] = GetParam();
  double previous = -1.0;
  for (int k = 0; k <= n; ++k) {
    const double value = BinomialCdf(n, k, p).value();
    EXPECT_GE(value, previous - 1e-12);
    previous = value;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BinomialSumTest,
                         ::testing::Combine(::testing::Values(1, 3, 7, 20, 100),
                                            ::testing::Values(0.01, 0.08, 0.5, 0.97)));

TEST(BinomialTest, TailGeExtremeValuesStayPrecise) {
  // P(X >= 5) for n=9, p=0.01 — the Raft Table 2 "99.999998%" cell. Closed-form check.
  double expected = 0.0;
  for (int k = 5; k <= 9; ++k) {
    expected += Choose(9, k) * std::pow(0.01, k) * std::pow(0.99, 9 - k);
  }
  const auto tail = BinomialTailGe(9, 5, 0.01);
  EXPECT_NEAR(tail.value(), expected, expected * 1e-12);
  // And the complement keeps ~8 nines of precision.
  EXPECT_NEAR(tail.Not().complement(), expected, expected * 1e-12);
}

TEST(BinomialTest, DeepTailMatchesLogDomainClosedForm) {
  // P(X >= 20) with n=100, p=0.01 is ~1e-20; must not underflow to garbage.
  const auto tail = BinomialTailGe(100, 20, 0.01);
  EXPECT_GT(tail.value(), 0.0);
  EXPECT_LT(tail.value(), 1e-18);
  // Dominant term sanity: C(100,20) p^20 q^80.
  const double dominant =
      std::exp(LogChoose(100, 20) + 20 * std::log(0.01) + 80 * std::log(0.99));
  EXPECT_GT(tail.value(), dominant);
  EXPECT_LT(tail.value(), dominant * 1.5);
}

TEST(BinomialTest, CdfBoundaries) {
  EXPECT_DOUBLE_EQ(BinomialCdf(5, -1, 0.3).value(), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCdf(5, 5, 0.3).value(), 1.0);
  EXPECT_DOUBLE_EQ(BinomialTailGe(5, 0, 0.3).value(), 1.0);
  EXPECT_DOUBLE_EQ(BinomialTailGe(5, 6, 0.3).value(), 0.0);
}

TEST(BinomialTest, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(BinomialMean(100, 0.1), 10.0);
  EXPECT_DOUBLE_EQ(BinomialVariance(100, 0.1), 9.0);
}

TEST(BinomialTest, PaperHundredNodeExample) {
  // §4: n=100, p=10%: "there is a 50% chance that |Q_per| (=10) faults occur".
  const auto at_least_ten = BinomialTailGe(100, 10, 0.10);
  EXPECT_NEAR(at_least_ten.value(), 0.55, 0.02);  // Actual ~0.5487.
}

}  // namespace
}  // namespace probcon
