#include "src/prob/combinatorics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace probcon {
namespace {

TEST(CombinatoricsTest, SmallFactorials) {
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(1), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-10);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-9);
}

TEST(CombinatoricsTest, ChooseKnownValues) {
  EXPECT_DOUBLE_EQ(Choose(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(Choose(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(Choose(7, 3), 35.0);
  EXPECT_DOUBLE_EQ(Choose(10, 5), 252.0);
  EXPECT_DOUBLE_EQ(Choose(52, 5), 2598960.0);
}

TEST(CombinatoricsTest, ChooseOutOfRangeIsZero) {
  EXPECT_DOUBLE_EQ(Choose(5, -1), 0.0);
  EXPECT_DOUBLE_EQ(Choose(5, 6), 0.0);
}

TEST(CombinatoricsTest, ChooseSymmetry) {
  for (int n = 0; n <= 30; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_DOUBLE_EQ(Choose(n, k), Choose(n, n - k)) << "n=" << n << " k=" << k;
    }
  }
}

TEST(CombinatoricsTest, PascalIdentity) {
  for (int n = 1; n <= 40; ++n) {
    for (int k = 1; k < n; ++k) {
      EXPECT_DOUBLE_EQ(Choose(n, k), Choose(n - 1, k - 1) + Choose(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(CombinatoricsTest, RowSumsArePowersOfTwo) {
  for (int n = 0; n <= 40; ++n) {
    double sum = 0.0;
    for (int k = 0; k <= n; ++k) {
      sum += Choose(n, k);
    }
    EXPECT_DOUBLE_EQ(sum, std::pow(2.0, n)) << "n=" << n;
  }
}

TEST(CombinatoricsTest, LogChooseMatchesChoose) {
  for (int n = 1; n <= 50; ++n) {
    for (int k = 0; k <= n; k += 3) {
      EXPECT_NEAR(std::exp(LogChoose(n, k)), Choose(n, k), Choose(n, k) * 1e-10)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(CombinatoricsTest, LogChooseOutOfRangeIsNegInf) {
  EXPECT_TRUE(std::isinf(LogChoose(5, 6)));
  EXPECT_LT(LogChoose(5, 6), 0.0);
  EXPECT_TRUE(std::isinf(LogChoose(5, -1)));
}

TEST(CombinatoricsTest, LogChooseLargeN) {
  // C(100, 34): check against lgamma-based independent computation.
  const double expected =
      std::lgamma(101.0) - std::lgamma(35.0) - std::lgamma(67.0);
  EXPECT_NEAR(LogChoose(100, 34), expected, 1e-9);
}

TEST(CombinatoricsTest, ChooseExactMatchesDouble) {
  EXPECT_EQ(ChooseExact(10, 3), 120u);
  EXPECT_EQ(ChooseExact(20, 10), 184756u);
  EXPECT_EQ(ChooseExact(0, 0), 1u);
  EXPECT_EQ(ChooseExact(5, 7), 0u);
}

TEST(CombinatoricsTest, ChooseExactLargeValues) {
  // C(60, 30) = 118264581564861424, exact in uint64.
  EXPECT_EQ(ChooseExact(60, 30), 118264581564861424ull);
}

}  // namespace
}  // namespace probcon
