#include "src/prob/probability.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/prob/kahan.h"

namespace probcon {
namespace {

TEST(ProbabilityTest, ConstructionFromProbability) {
  const auto p = Probability::FromProbability(0.25);
  EXPECT_DOUBLE_EQ(p.value(), 0.25);
  EXPECT_DOUBLE_EQ(p.complement(), 0.75);
}

TEST(ProbabilityTest, ConstructionFromComplementPreservesSmallSide) {
  const double q = 3.37e-12;
  const auto p = Probability::FromComplement(q);
  EXPECT_DOUBLE_EQ(p.complement(), q);  // Exact — this is the whole point of the type.
  EXPECT_NEAR(p.nines(), -std::log10(q), 1e-9);
}

TEST(ProbabilityTest, ZeroAndOne) {
  EXPECT_DOUBLE_EQ(Probability::Zero().value(), 0.0);
  EXPECT_DOUBLE_EQ(Probability::One().value(), 1.0);
  EXPECT_TRUE(std::isinf(Probability::One().nines()));
  EXPECT_TRUE(std::isinf(Probability::Zero().complement_nines()));
}

TEST(ProbabilityTest, NotSwapsSides) {
  const auto p = Probability::FromComplement(1e-9);
  const auto not_p = p.Not();
  EXPECT_DOUBLE_EQ(not_p.value(), 1e-9);
  EXPECT_DOUBLE_EQ(not_p.Not().complement(), 1e-9);
}

TEST(ProbabilityTest, AndOfNearCertainEventsKeepsPrecision) {
  // Two events each with q = 1e-10; naive double arithmetic on p = 1 - 1e-10 would round the
  // conjunction's complement to ~2e-10 with only a few digits; the complement formula keeps
  // full precision.
  const auto a = Probability::FromComplement(1e-10);
  const auto b = Probability::FromComplement(1e-10);
  const auto both = a.And(b);
  EXPECT_NEAR(both.complement(), 2e-10 - 1e-20, 1e-24);
}

TEST(ProbabilityTest, AndMatchesNaiveInMidRange) {
  const auto a = Probability::FromProbability(0.3);
  const auto b = Probability::FromProbability(0.4);
  EXPECT_NEAR(a.And(b).value(), 0.12, 1e-15);
  EXPECT_NEAR(a.Or(b).value(), 0.3 + 0.4 - 0.12, 1e-15);
}

TEST(ProbabilityTest, OrOfRareEventsKeepsPrecision) {
  const auto a = Probability::FromProbability(1e-12);
  const auto b = Probability::FromProbability(3e-12);
  // Exact union: pa + pb - pa*pb.
  EXPECT_NEAR(a.Or(b).value(), 4e-12 - 3e-24, 1e-26);
}

TEST(ProbabilityTest, AndIsCommutative) {
  const auto a = Probability::FromProbability(0.123);
  const auto b = Probability::FromComplement(0.002);
  EXPECT_DOUBLE_EQ(a.And(b).value(), b.And(a).value());
  EXPECT_DOUBLE_EQ(a.And(b).complement(), b.And(a).complement());
}

TEST(ProbabilityTest, AndWithOneIsIdentity) {
  const auto a = Probability::FromComplement(4.2e-8);
  const auto result = a.And(Probability::One());
  EXPECT_DOUBLE_EQ(result.complement(), 4.2e-8);
}

TEST(ProbabilityTest, OrWithZeroIsIdentity) {
  const auto a = Probability::FromProbability(4.2e-8);
  EXPECT_DOUBLE_EQ(a.Or(Probability::Zero()).value(), 4.2e-8);
}

TEST(ProbabilityTest, SumDisjoint) {
  const auto a = Probability::FromProbability(0.2);
  const auto b = Probability::FromProbability(0.35);
  const auto sum = a.SumDisjoint(b);
  EXPECT_NEAR(sum.value(), 0.55, 1e-15);
  EXPECT_NEAR(sum.complement(), 0.45, 1e-15);
}

TEST(ProbabilityTest, MixInterpolates) {
  const auto a = Probability::FromProbability(0.9);
  const auto b = Probability::FromProbability(0.1);
  const auto mixed = a.Mix(0.5, b);
  EXPECT_NEAR(mixed.value(), 0.5, 1e-15);
}

TEST(ProbabilityTest, ComparisonUsesSmallSide) {
  const auto a = Probability::FromComplement(1e-10);
  const auto b = Probability::FromComplement(2e-10);
  EXPECT_TRUE(b < a);
  EXPECT_TRUE(a > b);
  EXPECT_FALSE(a < b);
}

TEST(ProbabilityTest, NinesValues) {
  EXPECT_NEAR(Probability::FromComplement(1e-3).nines(), 3.0, 1e-12);
  EXPECT_NEAR(Probability::FromComplement(1e-7).nines(), 7.0, 1e-12);
  EXPECT_NEAR(Probability::FromProbability(0.999).nines(), 3.0, 1e-9);
}

// --- Formatting: the paper's table cells -------------------------------------

struct FormatCase {
  double complement;
  const char* expected;
};

class FormatPercentTest : public ::testing::TestWithParam<FormatCase> {};

TEST_P(FormatPercentTest, MatchesPaperStyle) {
  const auto& param = GetParam();
  EXPECT_EQ(FormatPercent(Probability::FromComplement(param.complement)), param.expected);
}

INSTANTIATE_TEST_SUITE_P(
    PaperCells, FormatPercentTest,
    ::testing::Values(
        // Raft Table 2 (N=3 row) complements.
        FormatCase{2.9800e-4, "99.97%"}, FormatCase{1.1840e-3, "99.88%"},
        FormatCase{4.7000e-3, "99.53%"}, FormatCase{1.8176e-2, "98.18%"},
        // PBFT Table 1 cells.
        FormatCase{5.920e-4, "99.94%"}, FormatCase{9.85e-6, "99.9990%"},
        FormatCase{9.80e-4, "99.90%"}, FormatCase{3.3963e-5, "99.997%"},
        FormatCase{6.6e-7, "99.99993%"}, FormatCase{5.03e-5, "99.995%"},
        // Boundaries.
        FormatCase{0.5, "50.00%"}, FormatCase{1.0, "0.00%"}));

TEST(ProbabilityTest, FormatPercentExactlyOne) {
  EXPECT_EQ(FormatPercent(Probability::One()), "100%");
}

TEST(ProbabilityTest, FormatNines) {
  EXPECT_EQ(FormatNines(Probability::FromComplement(1e-4)), "4.00 nines");
  EXPECT_EQ(FormatNines(Probability::One()), "inf nines");
}

// --- Ablation: complement tracking vs naive doubles --------------------------

TEST(ProbabilityAblationTest, NaiveDoubleLosesNinesComplementTrackingDoesNot) {
  // AND of 10 events with q = 1e-12 each: true complement ~1e-11.
  const double q = 1e-12;
  double naive = 1.0 - q;
  auto tracked = Probability::FromComplement(q);
  for (int i = 1; i < 10; ++i) {
    naive *= (1.0 - q);
    tracked = tracked.And(Probability::FromComplement(q));
  }
  // High-precision truth from the binomial series: 1 - (1-q)^10 = 10q - 45q^2 + O(q^3).
  const double true_complement = 10.0 * q - 45.0 * q * q;
  // The tracked complement is accurate to ~1e-26 absolute...
  const double tracked_error = std::fabs(tracked.complement() - true_complement);
  EXPECT_LE(tracked_error, 1e-25);
  // ...while recovering the complement from the naive double product is limited by ulp(1.0)
  // ~ 2e-16 absolute, i.e. a 1e-5 RELATIVE error on a 1e-11 complement. Five orders of
  // magnitude between the two approaches.
  const double naive_error = std::fabs((1.0 - naive) - true_complement);
  EXPECT_LE(tracked_error, naive_error * 1e-3);
}

TEST(KahanTest, CompensatedSummationBeatsNaive) {
  // Sum 1.0 with 1e8 copies of 1e-16: naive accumulation loses them all.
  KahanSum kahan(1.0);
  double naive = 1.0;
  constexpr int kCount = 100000000;
  for (int i = 0; i < kCount; ++i) {
    kahan.Add(1e-16);
    naive += 1e-16;
  }
  EXPECT_DOUBLE_EQ(naive, 1.0);  // All mass lost.
  EXPECT_NEAR(kahan.Total(), 1.0 + 1e-8, 1e-15);
}

TEST(KahanTest, ResetClears) {
  KahanSum sum;
  sum.Add(5.0);
  sum.Reset();
  EXPECT_DOUBLE_EQ(sum.Total(), 0.0);
}

}  // namespace
}  // namespace probcon
