#include "src/prob/poisson_binomial.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/prob/binomial.h"

namespace probcon {
namespace {

TEST(PoissonBinomialTest, MatchesBinomialForUniformProbabilities) {
  const int n = 9;
  const double p = 0.08;
  const PoissonBinomial pb(std::vector<double>(n, p));
  for (int k = 0; k <= n; ++k) {
    EXPECT_NEAR(pb.Pmf(k), BinomialPmf(n, k, p), 1e-12) << "k=" << k;
    EXPECT_NEAR(pb.CdfLe(k).value(), BinomialCdf(n, k, p).value(), 1e-12) << "k=" << k;
  }
}

TEST(PoissonBinomialTest, TwoNodeHandComputed) {
  const PoissonBinomial pb({0.1, 0.3});
  EXPECT_NEAR(pb.Pmf(0), 0.9 * 0.7, 1e-15);
  EXPECT_NEAR(pb.Pmf(1), 0.1 * 0.7 + 0.9 * 0.3, 1e-15);
  EXPECT_NEAR(pb.Pmf(2), 0.1 * 0.3, 1e-15);
}

TEST(PoissonBinomialTest, ThreeNodeHeterogeneousHandComputed) {
  const PoissonBinomial pb({0.01, 0.02, 0.5});
  EXPECT_NEAR(pb.Pmf(0), 0.99 * 0.98 * 0.5, 1e-15);
  EXPECT_NEAR(pb.Pmf(3), 0.01 * 0.02 * 0.5, 1e-18);
  double sum = 0.0;
  for (int k = 0; k <= 3; ++k) {
    sum += pb.Pmf(k);
  }
  EXPECT_NEAR(sum, 1.0, 1e-14);
}

class PoissonBinomialSweep : public ::testing::TestWithParam<int> {};

TEST_P(PoissonBinomialSweep, PmfSumsToOne) {
  const int n = GetParam();
  std::vector<double> probs;
  for (int i = 0; i < n; ++i) {
    probs.push_back(0.01 + 0.9 * i / std::max(1, n - 1));
  }
  const PoissonBinomial pb(probs);
  double sum = 0.0;
  for (int k = 0; k <= n; ++k) {
    EXPECT_GE(pb.Pmf(k), 0.0);
    sum += pb.Pmf(k);
  }
  EXPECT_NEAR(sum, 1.0, 1e-11);
}

TEST_P(PoissonBinomialSweep, MeanMatchesSumOfProbabilities) {
  const int n = GetParam();
  std::vector<double> probs;
  double expected_mean = 0.0;
  for (int i = 0; i < n; ++i) {
    const double p = (i % 7 + 1) * 0.05;
    probs.push_back(p);
    expected_mean += p;
  }
  const PoissonBinomial pb(probs);
  EXPECT_NEAR(pb.Mean(), expected_mean, 1e-10);
  // Moment check: sum k * pmf(k) == mean.
  double moment = 0.0;
  for (int k = 0; k <= n; ++k) {
    moment += k * pb.Pmf(k);
  }
  EXPECT_NEAR(moment, expected_mean, 1e-9);
}

TEST_P(PoissonBinomialSweep, VarianceMatchesMoment) {
  const int n = GetParam();
  std::vector<double> probs;
  for (int i = 0; i < n; ++i) {
    probs.push_back((i % 5 + 1) * 0.1);
  }
  const PoissonBinomial pb(probs);
  double m1 = 0.0;
  double m2 = 0.0;
  for (int k = 0; k <= n; ++k) {
    m1 += k * pb.Pmf(k);
    m2 += static_cast<double>(k) * k * pb.Pmf(k);
  }
  EXPECT_NEAR(pb.Variance(), m2 - m1 * m1, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PoissonBinomialSweep, ::testing::Values(1, 2, 5, 16, 40, 64));

TEST(PoissonBinomialTest, TailComplementTracking) {
  // Mixed 7-node cluster (the paper's E4 scenario: 4 nodes at 8%, 3 at 1%).
  const PoissonBinomial pb({0.08, 0.08, 0.08, 0.08, 0.01, 0.01, 0.01});
  const auto live = pb.CdfLe(3);  // Raft n=7 live iff <= 3 failures.
  // Brute-force complement via the upper tail.
  double upper = 0.0;
  for (int k = 4; k <= 7; ++k) {
    upper += pb.Pmf(k);
  }
  EXPECT_NEAR(live.complement(), upper, upper * 1e-10);
}

TEST(PoissonBinomialTest, CdfBoundaries) {
  const PoissonBinomial pb({0.5, 0.5});
  EXPECT_DOUBLE_EQ(pb.CdfLe(-1).value(), 0.0);
  EXPECT_DOUBLE_EQ(pb.CdfLe(2).value(), 1.0);
  EXPECT_DOUBLE_EQ(pb.TailGe(0).value(), 1.0);
  EXPECT_DOUBLE_EQ(pb.TailGe(3).value(), 0.0);
}

TEST(PoissonBinomialTest, DegenerateProbabilities) {
  const PoissonBinomial pb({0.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(pb.Pmf(1), 1.0);
  EXPECT_DOUBLE_EQ(pb.Pmf(0), 0.0);
  EXPECT_DOUBLE_EQ(pb.Pmf(2), 0.0);
}

TEST(PoissonBinomialTest, BruteForceEnumerationAgreesSmallN) {
  const std::vector<double> probs = {0.2, 0.45, 0.07, 0.9};
  const PoissonBinomial pb(probs);
  std::vector<double> brute(probs.size() + 1, 0.0);
  for (int mask = 0; mask < 16; ++mask) {
    double prob = 1.0;
    int count = 0;
    for (int i = 0; i < 4; ++i) {
      if ((mask >> i) & 1) {
        prob *= probs[i];
        ++count;
      } else {
        prob *= 1.0 - probs[i];
      }
    }
    brute[count] += prob;
  }
  for (int k = 0; k <= 4; ++k) {
    EXPECT_NEAR(pb.Pmf(k), brute[k], 1e-14) << "k=" << k;
  }
}

}  // namespace
}  // namespace probcon
