// The PR's acceptance gate: one repairable-fleet scenario answered two ways — analytically
// by the lumped fleet CTMC and empirically by a deterministic crash/repair campaign in the
// discrete-event simulator — must agree within the stated tolerance.
//
// Scenario: a 3-node Raft cluster of exponential nodes (lambda = 0.02/h) with per-node
// repair (mu = 0.5/h, one technician per node, matching the injector's independent per-node
// repair law). The campaign probes "is a majority alive?" every 0.5 simulated hours over
// 200k hours from a fixed seed; the long-run probe fraction estimates steady-state
// availability. Probes 0.5 h apart decorrelate within a few repair times (1/mu = 2 h), so
// the ~4e5 probes carry ~1e5 effective samples: sigma ~ sqrt(A(1-A)/1e5) ~ 2e-4, and the
// 1e-3 absolute tolerance is ~5 sigma.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/faultmodel/fault_curve.h"
#include "src/lifecycle/fleet_model.h"
#include "src/sim/failure_injector.h"
#include "src/sim/network.h"
#include "src/sim/process.h"
#include "src/sim/simulator.h"

namespace probcon {
namespace {

constexpr int kNodes = 3;
constexpr double kFailureRate = 0.02;  // Per hour.
constexpr double kRepairRate = 0.5;    // Per hour, per crashed node.
constexpr double kMissionHours = 200000.0;
constexpr double kProbeEveryHours = 0.5;

class InertProcess final : public Process {
 public:
  using Process::Process;

 protected:
  void OnStart() override {}
  void OnMessage(int, const std::shared_ptr<const SimMessage>&) override {}
};

TEST(LifecycleSimCrossValidationTest, SteadyStateAvailabilityMatchesRepairCampaign) {
  // Analytical answer: one-class fleet, per-node repair (servers >= n).
  FleetParams params;
  params.classes = {{.count = kNodes, .failure_rate = kFailureRate}};
  params.repair_rate = kRepairRate;
  params.repair_servers = kNodes;
  const FleetModel model(params, FleetProtocol::kRaft);
  const auto analytical = model.TrySteadyStateAvailability(false, {});
  ASSERT_TRUE(analytical.ok());

  // Empirical answer: seeded crash/repair campaign with periodic quorum probes.
  Simulator sim(20250808);
  Network network(&sim, kNodes, std::make_unique<UniformLatencyModel>(1.0, 1.0));
  std::vector<std::unique_ptr<InertProcess>> processes;
  std::vector<Process*> borrowed;
  std::vector<std::unique_ptr<FaultCurve>> curves;
  for (int i = 0; i < kNodes; ++i) {
    processes.push_back(std::make_unique<InertProcess>(&sim, &network, i));
    processes.back()->Start();
    borrowed.push_back(processes.back().get());
    curves.push_back(std::make_unique<ConstantFaultCurve>(kFailureRate));
  }
  FailureInjector injector(&sim, borrowed, std::move(curves), kRepairRate);
  injector.Arm();

  long long probes = 0;
  long long quorum_up = 0;
  for (double t = kProbeEveryHours; t <= kMissionHours; t += kProbeEveryHours) {
    sim.Schedule(t, [&processes, &probes, &quorum_up]() {
      int alive = 0;
      for (const auto& p : processes) {
        alive += p->crashed() ? 0 : 1;
      }
      ++probes;
      quorum_up += alive >= 2 ? 1 : 0;
    });
  }
  sim.Run(kMissionHours + 1.0);

  ASSERT_GT(probes, 100000);
  const double empirical = static_cast<double>(quorum_up) / probes;
  EXPECT_NEAR(empirical, analytical->value(), 1e-3);
  // Sanity: the campaign actually exercised the repair loop, not a quiet fleet.
  EXPECT_GT(injector.crash_count(), 1000);
  EXPECT_GT(injector.recovery_count(), 1000);
}

}  // namespace
}  // namespace probcon
