#include "src/lifecycle/repair_sweep.h"

#include <cmath>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/cancellation.h"

namespace probcon {
namespace {

FleetParams FivePlex() {
  FleetParams params;
  params.classes = {{.count = 5, .failure_rate = 1e-3}};
  params.repair_servers = 1;
  return params;
}

TEST(RepairSweepTest, GeometricGridSpansEndpointsLogUniformly) {
  const std::vector<double> rates = GeometricRepairRates(0.01, 10.0, 4);
  ASSERT_EQ(rates.size(), 4u);
  EXPECT_NEAR(rates.front(), 0.01, 1e-12);
  EXPECT_NEAR(rates.back(), 10.0, 1e-9);
  // Constant ratio between neighbors.
  EXPECT_NEAR(rates[1] / rates[0], rates[2] / rates[1], 1e-9);
  EXPECT_NEAR(rates[2] / rates[1], rates[3] / rates[2], 1e-9);
}

TEST(RepairSweepTest, SinglePointGridIsTheMinRate) {
  const std::vector<double> rates = GeometricRepairRates(0.5, 2.0, 1);
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates.front(), 0.5);
}

TEST(RepairSweepTest, AvailabilityIsMonotoneInRepairRate) {
  const auto result = TryRepairRateSweep(FivePlex(), FleetProtocol::kRaft,
                                         GeometricRepairRates(0.001, 1.0, 8),
                                         std::nullopt, {});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->points.size(), 8u);
  for (size_t i = 1; i < result->points.size(); ++i) {
    EXPECT_GT(result->points[i].availability.value(),
              result->points[i - 1].availability.value());
    EXPECT_GT(result->points[i].mttu_hours, result->points[i - 1].mttu_hours);
    EXPECT_LT(result->points[i].downtime_hours_per_year,
              result->points[i - 1].downtime_hours_per_year);
  }
  EXPECT_FALSE(result->first_rate_meeting_target.has_value());  // None requested.
}

TEST(RepairSweepTest, FindsFirstRateMeetingTarget) {
  const std::vector<double> rates = GeometricRepairRates(0.001, 10.0, 12);
  const auto result =
      TryRepairRateSweep(FivePlex(), FleetProtocol::kRaft, rates, 0.99999, {});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->first_rate_meeting_target.has_value());
  const double threshold = *result->first_rate_meeting_target;
  // Every point at or past the threshold meets the target; every one before misses it.
  for (const RepairSweepPoint& point : result->points) {
    if (point.repair_rate >= threshold) {
      EXPECT_GE(point.availability.value(), 0.99999) << point.repair_rate;
    } else {
      EXPECT_LT(point.availability.value(), 0.99999) << point.repair_rate;
    }
  }
}

TEST(RepairSweepTest, UnreachableTargetReportsNoRate) {
  const auto result = TryRepairRateSweep(FivePlex(), FleetProtocol::kRaft,
                                         {0.0001, 0.0002}, 0.9999999, {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->first_rate_meeting_target.has_value());
}

TEST(RepairSweepTest, SweepIgnoresBaseRepairRate) {
  // The swept rate replaces params.repair_rate point by point; the base value is inert.
  FleetParams with_base = FivePlex();
  with_base.repair_rate = 123.0;
  const auto swept_a =
      TryRepairRateSweep(FivePlex(), FleetProtocol::kRaft, {0.5}, std::nullopt, {});
  const auto swept_b =
      TryRepairRateSweep(with_base, FleetProtocol::kRaft, {0.5}, std::nullopt, {});
  ASSERT_TRUE(swept_a.ok());
  ASSERT_TRUE(swept_b.ok());
  EXPECT_DOUBLE_EQ(swept_a->points[0].availability.value(),
                   swept_b->points[0].availability.value());
}

TEST(RepairSweepTest, CancellationUnwindsBetweenPoints) {
  CancelToken token;
  token.Cancel();
  const auto result =
      TryRepairRateSweep(FivePlex(), FleetProtocol::kRaft,
                         GeometricRepairRates(0.01, 1.0, 4), std::nullopt,
                         {.cancel = &token});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace probcon
