#include "src/lifecycle/fleet_model.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/cancellation.h"
#include "src/faultmodel/afr.h"
#include "src/faultmodel/fault_curve.h"
#include "src/markov/repair_model.h"

namespace probcon {
namespace {

FleetParams Homogeneous(int n, double lambda, double mu, int servers) {
  FleetParams params;
  params.classes = {{.count = n, .failure_rate = lambda}};
  params.repair_rate = mu;
  params.repair_servers = servers;
  return params;
}

TEST(FleetModelTest, ValidateRejectsStructuralErrors) {
  EXPECT_FALSE(FleetModel::Validate({}).ok());  // No classes.
  EXPECT_FALSE(FleetModel::Validate(Homogeneous(0, 1e-3, 0.1, 1)).ok());
  EXPECT_FALSE(FleetModel::Validate(Homogeneous(3, 0.0, 0.1, 1)).ok());
  EXPECT_FALSE(FleetModel::Validate(Homogeneous(3, -1.0, 0.1, 1)).ok());
  EXPECT_FALSE(FleetModel::Validate(Homogeneous(3, 1e-3, -0.1, 1)).ok());
  EXPECT_FALSE(FleetModel::Validate(Homogeneous(3, 1e-3, 0.1, 0)).ok());
  EXPECT_FALSE(FleetModel::Validate(Homogeneous(9999, 1e-3, 0.1, 1)).ok());  // State cap.
  FleetParams no_old = Homogeneous(3, 1e-3, 0.1, 1);
  no_old.classes[0].in_old = false;
  EXPECT_FALSE(FleetModel::Validate(no_old).ok());  // Empty current membership.
  EXPECT_TRUE(FleetModel::Validate(Homogeneous(5, 1e-3, 0.1, 2)).ok());
}

TEST(FleetModelTest, StateSpaceIsPerClassProduct) {
  FleetParams params;
  params.classes = {{.count = 3, .failure_rate = 1e-3},
                    {.count = 2, .failure_rate = 2e-3}};
  params.repair_rate = 0.1;
  const FleetModel model(params, FleetProtocol::kRaft);
  EXPECT_EQ(model.state_count(), 4 * 3);
  EXPECT_EQ(model.total_nodes(), 5);
}

TEST(FleetModelTest, RaftLivenessIsMajorityOfCurrentMembership) {
  FleetParams params = Homogeneous(5, 1e-3, 0.1, 1);
  const FleetModel model(params, FleetProtocol::kRaft);
  EXPECT_TRUE(model.IsLive({0}));
  EXPECT_TRUE(model.IsLive({2}));
  EXPECT_FALSE(model.IsLive({3}));
}

TEST(FleetModelTest, PbftLivenessCountsCrashesAsByzantine) {
  // n = 4 tolerates f = 1: live with one failure, not with two.
  const FleetModel model(Homogeneous(4, 1e-3, 0.1, 1), FleetProtocol::kPbft);
  EXPECT_TRUE(model.IsLive({1}));
  EXPECT_FALSE(model.IsLive({2}));
}

TEST(FleetModelTest, ReconfigurationNeedsQuorumsInBothMemberships) {
  // Old membership = {A:3}, new membership = {B:3}; A is being replaced by B.
  FleetParams params;
  params.classes = {{.count = 3, .failure_rate = 1e-3, .in_old = true, .in_new = false},
                    {.count = 3, .failure_rate = 1e-3, .in_old = false, .in_new = true}};
  params.repair_rate = 0.1;
  const FleetModel model(params, FleetProtocol::kRaft);
  // Steady operation only consults the old membership.
  EXPECT_TRUE(model.IsLive({1, 3}));
  // The joint window additionally needs a majority of the new one.
  EXPECT_FALSE(model.IsLiveDuringReconfiguration({1, 3}));
  EXPECT_TRUE(model.IsLiveDuringReconfiguration({1, 1}));
  EXPECT_FALSE(model.IsLiveDuringReconfiguration({2, 0}));
}

// -----------------------------------------------------------------------------------------
// Golden cross-checks against the homogeneous birth-death model (ConsensusRepairModel) and
// its closed forms: the lumped one-class chain must agree exactly.

TEST(FleetModelTest, HomogeneousAvailabilityMatchesConsensusRepairModel) {
  const int n = 5;
  const double lambda = 2e-3;
  const double mu = 0.25;
  for (const int servers : {1, 2, n}) {
    const FleetModel fleet(Homogeneous(n, lambda, mu, servers), FleetProtocol::kRaft);
    const ConsensusRepairModel reference({n, lambda, mu, servers});
    const auto fleet_avail = fleet.TrySteadyStateAvailability(false, {});
    const auto reference_avail = reference.SteadyStateAvailability(3);
    ASSERT_TRUE(fleet_avail.ok());
    ASSERT_TRUE(reference_avail.ok());
    EXPECT_NEAR(fleet_avail->value(), reference_avail->value(), 1e-12) << servers;
  }
}

TEST(FleetModelTest, HomogeneousMttuMatchesConsensusRepairModel) {
  const int n = 4;
  const double lambda = 1e-3;
  const double mu = 0.5;
  const FleetModel fleet(Homogeneous(n, lambda, mu, 2), FleetProtocol::kPbft);
  const ConsensusRepairModel reference({n, lambda, mu, 2});
  const auto fleet_mttu = fleet.TryMeanTimeToUnavailability(false, {});
  // PBFT n=4 loses liveness at the second failure, i.e. below 3 alive.
  const auto reference_mttu = reference.MeanTimeToUnavailability(3);
  ASSERT_TRUE(fleet_mttu.ok());
  ASSERT_TRUE(reference_mttu.ok());
  EXPECT_NEAR(*fleet_mttu / *reference_mttu, 1.0, 1e-10);
}

TEST(FleetModelTest, HomogeneousMttqlMatchesConsensusRepairModel) {
  const int n = 5;
  const FleetModel fleet(Homogeneous(n, 5e-3, 0.1, 1), FleetProtocol::kRaft);
  const ConsensusRepairModel reference({n, 5e-3, 0.1, 1});
  const auto fleet_mttql = fleet.TryMeanTimeToQuorumLoss(4, {});
  const auto reference_mttql = reference.MeanTimeToQuorumLoss(4);
  ASSERT_TRUE(fleet_mttql.ok());
  ASSERT_TRUE(reference_mttql.ok());
  EXPECT_NEAR(*fleet_mttql / *reference_mttql, 1.0, 1e-10);
}

TEST(FleetModelTest, HomogeneousMissionReliabilityMatchesUnavailabilityWithin) {
  const int n = 3;
  const double lambda = 1e-2;
  const double mu = 0.2;
  const FleetModel fleet(Homogeneous(n, lambda, mu, n), FleetProtocol::kRaft);
  const ConsensusRepairModel reference({n, lambda, mu, n});
  for (const double t : {100.0, 1000.0, 8766.0}) {
    const auto reliability = fleet.TryMissionReliability(t, false, {});
    ASSERT_TRUE(reliability.ok());
    const Probability outage = reference.UnavailabilityWithin(2, t);
    EXPECT_NEAR(reliability->complement(), outage.value(), 1e-9) << t;
  }
}

TEST(FleetModelTest, SteadyStateMatchesIndependentNodeClosedForm) {
  // With per-node repair (servers >= n) the nodes are independent M/M/1 machines:
  // P(up) = mu / (lambda + mu), availability = P(Binomial(n, up) >= quorum).
  const int n = 3;
  const double lambda = 0.02;
  const double mu = 0.5;
  const FleetModel fleet(Homogeneous(n, lambda, mu, n), FleetProtocol::kRaft);
  const auto availability = fleet.TrySteadyStateAvailability(false, {});
  ASSERT_TRUE(availability.ok());
  const double up = mu / (lambda + mu);
  const double expected = 3 * up * up * (1 - up) + up * up * up;
  EXPECT_NEAR(availability->value(), expected, 1e-12);
}

TEST(FleetModelTest, MttuMatchesBirthDeathHittingTimeRecursion) {
  // Golden closed form: for a birth-death chain with birth b_k and death d_k, the expected
  // time from k to k+1 is h_k = 1/b_k + (d_k/b_k) h_{k-1}; MTTU = sum of h_k up to the
  // outage boundary.
  const int n = 5;
  const double lambda = 3e-3;
  const double mu = 0.4;
  const int servers = 2;
  const FleetModel fleet(Homogeneous(n, lambda, mu, servers), FleetProtocol::kRaft);
  const auto mttu = fleet.TryMeanTimeToUnavailability(false, {});
  ASSERT_TRUE(mttu.ok());
  // Outage at 3 failed (alive < 3): climb k = 0 -> 3.
  double expected = 0.0;
  double h_prev = 0.0;
  for (int k = 0; k < 3; ++k) {
    const double birth = (n - k) * lambda;
    const double death = std::min(k, servers) * mu;
    const double h_k = 1.0 / birth + death / birth * h_prev;
    expected += h_k;
    h_prev = h_k;
  }
  EXPECT_NEAR(*mttu / expected, 1.0, 1e-10);
}

// -----------------------------------------------------------------------------------------
// Heterogeneous behavior.

TEST(FleetModelTest, AgedVintageLowersAvailability) {
  FleetParams fresh;
  fresh.classes = {{.count = 5, .failure_rate = 1e-3}};
  fresh.repair_rate = 0.05;
  FleetParams mixed;
  mixed.classes = {{.count = 3, .failure_rate = 1e-3},
                   {.count = 2, .failure_rate = 2e-2}};  // Worn-out vintage.
  mixed.repair_rate = 0.05;
  const auto fresh_avail =
      FleetModel(fresh, FleetProtocol::kRaft).TrySteadyStateAvailability(false, {});
  const auto mixed_avail =
      FleetModel(mixed, FleetProtocol::kRaft).TrySteadyStateAvailability(false, {});
  ASSERT_TRUE(fresh_avail.ok());
  ASSERT_TRUE(mixed_avail.ok());
  EXPECT_LT(mixed_avail->value(), fresh_avail->value());
}

TEST(FleetModelTest, FromCurveFreezesHazardAtAge) {
  const WeibullFaultCurve curve(2.0, 1000.0);
  const FleetClass cls = FleetClass::FromCurve(curve, 500.0, 4);
  EXPECT_EQ(cls.count, 4);
  EXPECT_NEAR(cls.failure_rate, curve.HazardRate(500.0), 1e-15);
}

TEST(FleetModelTest, ReconfigurationWindowIsLessAvailable) {
  FleetParams params;
  params.classes = {{.count = 3, .failure_rate = 5e-3, .in_old = true, .in_new = true},
                    {.count = 2, .failure_rate = 5e-3, .in_old = false, .in_new = true}};
  params.repair_rate = 0.1;
  const FleetModel model(params, FleetProtocol::kRaft);
  const auto steady = model.TrySteadyStateAvailability(false, {});
  const auto joint = model.TrySteadyStateAvailability(true, {});
  ASSERT_TRUE(steady.ok());
  ASSERT_TRUE(joint.ok());
  EXPECT_LT(joint->value(), steady->value());
  const auto steady_mttu = model.TryMeanTimeToUnavailability(false, {});
  const auto joint_mttu = model.TryMeanTimeToUnavailability(true, {});
  ASSERT_TRUE(steady_mttu.ok());
  ASSERT_TRUE(joint_mttu.ok());
  EXPECT_LT(*joint_mttu, *steady_mttu);
}

TEST(FleetModelTest, NoRepairMeansZeroSteadyAvailability) {
  const FleetModel model(Homogeneous(3, 1e-3, 0.0, 1), FleetProtocol::kRaft);
  const auto availability = model.TrySteadyStateAvailability(false, {});
  ASSERT_TRUE(availability.ok());
  EXPECT_DOUBLE_EQ(availability->value(), 0.0);
}

TEST(FleetModelTest, DowntimeHoursPerYear) {
  EXPECT_NEAR(FleetModel::DowntimeHoursPerYear(Probability::FromComplement(1e-3)),
              kHoursPerYear * 1e-3, 1e-9);
}

TEST(FleetModelTest, SolversHonorCancellation) {
  const FleetModel model(Homogeneous(5, 1e-3, 0.1, 2), FleetProtocol::kRaft);
  CancelToken token;
  token.Cancel();
  const CtmcSolveOptions options{.cancel = &token};
  EXPECT_EQ(model.TrySteadyStateAvailability(false, options).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(model.TryMeanTimeToUnavailability(false, options).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(model.TryMissionReliability(1000.0, false, options).status().code(),
            StatusCode::kCancelled);
}

TEST(FleetModelTest, ProgressCellAdvances) {
  std::atomic<uint64_t> steps{0};
  const FleetModel model(Homogeneous(3, 1e-2, 0.2, 3), FleetProtocol::kRaft);
  const auto reliability =
      model.TryMissionReliability(10000.0, false, {.progress = &steps});
  ASSERT_TRUE(reliability.ok());
  EXPECT_GT(steps.load(), 0u);
}

}  // namespace
}  // namespace probcon
