#include "src/probnative/reconfiguration.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace probcon {
namespace {

class ReconfigurationTest : public ::testing::Test {
 protected:
  // Fleet: 3 committee nodes (one aging badly) + 2 spares (one excellent, one poor).
  void SetUp() override {
    curves_.push_back(std::make_unique<ConstantFaultCurve>(1e-5));  // 0: good.
    curves_.push_back(std::make_unique<ConstantFaultCurve>(1e-5));  // 1: good.
    curves_.push_back(std::make_unique<WeibullFaultCurve>(4.0, 500.0));  // 2: wearing out.
    curves_.push_back(std::make_unique<ConstantFaultCurve>(1e-6));  // 3: excellent spare.
    curves_.push_back(std::make_unique<ConstantFaultCurve>(0.01));  // 4: poor spare.
    for (int i = 0; i < 5; ++i) {
      fleet_.push_back({i, curves_[i].get(), 0.0});
    }
    fleet_[2].age = 900.0;  // Node 2 is old.
  }

  std::vector<std::unique_ptr<FaultCurve>> curves_;
  std::vector<FleetNode> fleet_;
};

TEST_F(ReconfigurationTest, HealthyCommitteeNeedsNoSwaps) {
  const auto plan = PlanReconfiguration(fleet_, {0, 1, 3}, {4}, 100.0,
                                        Probability::FromComplement(1e-3));
  EXPECT_TRUE(plan.meets_target);
  EXPECT_TRUE(plan.swaps.empty());
  EXPECT_DOUBLE_EQ(plan.reliability_after.value(), plan.reliability_before.value());
}

TEST_F(ReconfigurationTest, SwapsOutTheAgingNode) {
  const auto plan = PlanReconfiguration(fleet_, {0, 1, 2}, {3, 4}, 100.0,
                                        Probability::FromComplement(1e-5));
  EXPECT_TRUE(plan.meets_target);
  ASSERT_EQ(plan.swaps.size(), 1u);
  EXPECT_EQ(plan.swaps[0].out_node, 2);
  EXPECT_EQ(plan.swaps[0].in_node, 3);  // Best spare, not the poor one.
  EXPECT_GT(plan.reliability_after.value(), plan.reliability_before.value());
}

TEST_F(ReconfigurationTest, StopsWhenSparesCannotHelp) {
  // Target far beyond what any spare combination achieves.
  const auto plan = PlanReconfiguration(fleet_, {0, 1, 2}, {4}, 100.0,
                                        Probability::FromComplement(1e-15));
  EXPECT_FALSE(plan.meets_target);
  // It still applies improving swaps (4 at 1% beats aged node 2).
  EXPECT_FALSE(plan.reliability_after < plan.reliability_before);
}

TEST_F(ReconfigurationTest, NoSparesMeansNoSwaps) {
  const auto plan = PlanReconfiguration(fleet_, {0, 1, 2}, {}, 100.0,
                                        Probability::FromComplement(1e-9));
  EXPECT_TRUE(plan.swaps.empty());
}

TEST_F(ReconfigurationTest, HorizonChangesTheDecision) {
  // Over a tiny horizon even the aging node is fine; over a long one it is not.
  const auto short_plan = PlanReconfiguration(fleet_, {0, 1, 2}, {3}, 1.0,
                                              Probability::FromComplement(1e-4));
  EXPECT_TRUE(short_plan.meets_target);
  EXPECT_TRUE(short_plan.swaps.empty());

  const auto long_plan = PlanReconfiguration(fleet_, {0, 1, 2}, {3}, 500.0,
                                             Probability::FromComplement(1e-4));
  EXPECT_FALSE(long_plan.swaps.empty());
}

TEST_F(ReconfigurationTest, DescribeMentionsNodes) {
  const auto plan = PlanReconfiguration(fleet_, {0, 1, 2}, {3}, 200.0,
                                        Probability::FromComplement(1e-6));
  ASSERT_FALSE(plan.swaps.empty());
  const std::string text = plan.swaps[0].Describe();
  EXPECT_NE(text.find("node 2"), std::string::npos);
  EXPECT_NE(text.find("node 3"), std::string::npos);
}

}  // namespace
}  // namespace probcon
