#include "src/probnative/reliability_aware_raft.h"

#include <gtest/gtest.h>

#include "src/consensus/raft/raft_cluster.h"

namespace probcon {
namespace {

const std::vector<double> kMixed = {0.002, 0.002, 0.02, 0.02, 0.02};

TEST(PolicyConstructionTest, DurableSetPicksMostReliable) {
  EXPECT_EQ(DurableMemberSet(kMixed, 2), 0b00011u);
  EXPECT_EQ(DurableMemberSet(kMixed, 0), 0u);
  EXPECT_EQ(DurableMemberSet(kMixed, 5), 0b11111u);
}

TEST(PolicyConstructionTest, PrioritiesOrderedByReliability) {
  const auto policies = MakeReliabilityAwarePolicies(kMixed, 2);
  ASSERT_EQ(policies.size(), 5u);
  // Reliable nodes (0, 1) must have strictly smaller priorities than the flaky ones.
  EXPECT_LT(policies[0].election_priority, policies[2].election_priority);
  EXPECT_LT(policies[1].election_priority, policies[3].election_priority);
  for (const auto& policy : policies) {
    EXPECT_EQ(policy.required_commit_members, 0b00011u);
    EXPECT_GT(policy.election_priority, 0.0);
    EXPECT_LE(policy.election_priority, 1.0);
  }
}

TEST(AnalysisTest, ConstraintTradesLivenessForDurability) {
  const auto report = AnalyzeReliabilityAwareRaft(RaftConfig::Standard(5), kMixed, 2);
  // Liveness can only get worse (constraint adds a requirement)...
  EXPECT_GE(report.baseline_live.value(), report.live.value());
  // ...and worst-case durability strictly better.
  EXPECT_GT(report.durability.value(), report.baseline_durability.value());
}

TEST(AnalysisTest, HandComputedDurability) {
  const auto report = AnalyzeReliabilityAwareRaft(RaftConfig::Standard(5), kMixed, 2);
  // Baseline worst case: the three 2% nodes are the quorum (q_per = 3).
  EXPECT_NEAR(report.baseline_durability.complement(), 0.02 * 0.02 * 0.02, 1e-12);
  // Constrained worst case: two 2% + one 0.2% node.
  EXPECT_NEAR(report.durability.complement(), 0.02 * 0.02 * 0.002, 1e-14);
}

TEST(AnalysisTest, FullDurableSetMakesLivenessEqualPlainRaft) {
  // If every node is "durable", the constraint is vacuous whenever a quorum exists.
  const auto report = AnalyzeReliabilityAwareRaft(RaftConfig::Standard(5), kMixed, 5);
  EXPECT_NEAR(report.live.complement(), report.baseline_live.complement(), 1e-12);
}

// --- Protocol-level behaviour on the simulator --------------------------------

RaftClusterOptions AwareOptions(uint64_t seed, int durable_count) {
  RaftClusterOptions options;
  options.config = RaftConfig::Standard(5);
  options.policies = MakeReliabilityAwarePolicies(kMixed, durable_count);
  options.seed = seed;
  return options;
}

TEST(ProtocolTest, ReliableNodesWinElections) {
  int reliable_leader_runs = 0;
  constexpr int kRuns = 10;
  for (uint64_t seed = 1; seed <= kRuns; ++seed) {
    RaftCluster cluster(AwareOptions(seed, 2));
    cluster.Start();
    cluster.RunUntil(3'000.0);
    const int leader = cluster.LeaderId();
    if (leader == 0 || leader == 1) {
      ++reliable_leader_runs;
    }
  }
  // With priorities 0.4/0.55 vs 0.7/0.85/1.0, the reliable pair should win nearly always.
  EXPECT_GE(reliable_leader_runs, 8);
}

TEST(ProtocolTest, CommitsStillFlowWithConstraint) {
  RaftCluster cluster(AwareOptions(3, 2));
  cluster.Start();
  cluster.RunUntil(10'000.0);
  EXPECT_TRUE(cluster.checker().safe());
  EXPECT_GT(cluster.checker().committed_slots(), 50u);
}

TEST(ProtocolTest, CommitStallsWithoutAnyDurableMember) {
  // Crash both durable nodes: a majority of flaky nodes remains, but the constraint blocks
  // NEW commits — the durability/liveness trade made observable.
  RaftCluster cluster(AwareOptions(4, 2));
  cluster.Start();
  cluster.RunUntil(2'000.0);
  cluster.node(0).Crash();
  cluster.node(1).Crash();
  cluster.RunUntil(4'000.0);  // Drain in-flight commits.
  const uint64_t stalled_at = cluster.checker().max_committed_slot();
  cluster.RunUntil(20'000.0);
  EXPECT_LE(cluster.checker().max_committed_slot(), stalled_at + 1);
  EXPECT_TRUE(cluster.checker().safe());

  // Control: plain Raft keeps committing through the same crashes.
  RaftClusterOptions plain;
  plain.config = RaftConfig::Standard(5);
  plain.seed = 4;
  RaftCluster control(plain);
  control.Start();
  control.RunUntil(2'000.0);
  control.node(0).Crash();
  control.node(1).Crash();
  control.RunUntil(4'000.0);
  const uint64_t control_at = control.checker().max_committed_slot();
  control.RunUntil(20'000.0);
  EXPECT_GT(control.checker().max_committed_slot(), control_at + 20);
}

TEST(ProtocolTest, RecoveryOfDurableMemberResumesCommits) {
  RaftCluster cluster(AwareOptions(5, 2));
  cluster.Start();
  cluster.RunUntil(2'000.0);
  cluster.node(0).Crash();
  cluster.node(1).Crash();
  cluster.RunUntil(8'000.0);
  const uint64_t stalled_at = cluster.checker().max_committed_slot();
  cluster.node(0).Recover();
  cluster.RunUntil(25'000.0);
  EXPECT_GT(cluster.checker().max_committed_slot(), stalled_at + 10);
  EXPECT_TRUE(cluster.checker().safe());
}

}  // namespace
}  // namespace probcon
