#include "src/probnative/quorum_sizer.h"

#include <gtest/gtest.h>

#include "src/analysis/reliability.h"

namespace probcon {
namespace {

const std::vector<double> kUniform5 = {0.01, 0.01, 0.01, 0.01, 0.01};

TEST(SizeRaftQuorumsTest, FindsStructurallySafeConfig) {
  const auto sized = SizeRaftQuorums(kUniform5, Probability::FromComplement(1e-4));
  ASSERT_TRUE(sized.ok());
  EXPECT_TRUE(RaftIsSafeStructurally(sized->config));
  EXPECT_FALSE(sized->live < Probability::FromComplement(1e-4));
}

TEST(SizeRaftQuorumsTest, PrefersSmallCommitQuorum) {
  // Flexible Paxos: a tiny q_per is structurally fine if q_vc is large. The sizer should
  // exploit it (commit latency scales with q_per).
  const auto sized = SizeRaftQuorums(kUniform5, Probability::FromComplement(5e-2));
  ASSERT_TRUE(sized.ok());
  EXPECT_LT(sized->config.q_per, 3);
  EXPECT_GT(sized->config.q_vc, 3);  // Structural complement of the small q_per.
}

TEST(SizeRaftQuorumsTest, TightTargetForcesMajorities) {
  // The max-liveness structurally safe configuration is the majority pair; targets beyond
  // its reliability are infeasible.
  const auto majority_live =
      AnalyzeRaft(RaftConfig::Standard(5), ReliabilityAnalyzer::ForIndependentNodes(kUniform5))
          .live;
  const auto at_limit = SizeRaftQuorums(kUniform5, majority_live);
  ASSERT_TRUE(at_limit.ok());
  EXPECT_EQ(at_limit->config.q_per, 3);
  EXPECT_EQ(at_limit->config.q_vc, 3);

  const auto beyond = SizeRaftQuorums(
      kUniform5, Probability::FromComplement(majority_live.complement() * 0.5));
  EXPECT_FALSE(beyond.ok());
}

TEST(SizeRaftQuorumsTest, HeterogeneousNodesShiftTheAnswer) {
  // Mostly reliable nodes with two flaky ones: targets met with smaller margins.
  const std::vector<double> mixed = {0.001, 0.001, 0.001, 0.2, 0.2};
  const auto sized = SizeRaftQuorums(mixed, Probability::FromComplement(1e-3));
  ASSERT_TRUE(sized.ok());
  EXPECT_TRUE(RaftIsSafeStructurally(sized->config));
}

TEST(SizePbftQuorumsTest, StandardConfigDiscoverable) {
  const std::vector<double> uniform7(7, 0.01);
  const auto sized = SizePbftQuorums(uniform7, Probability::FromComplement(1e-4),
                                     Probability::FromComplement(1e-4));
  ASSERT_TRUE(sized.ok());
  EXPECT_FALSE(sized->safe < Probability::FromComplement(1e-4));
  EXPECT_FALSE(sized->live < Probability::FromComplement(1e-4));
  // Must be a valid PBFT geometry.
  EXPECT_GE(2 * sized->config.q_eq - 7, 1);
}

TEST(SizePbftQuorumsTest, ImpossibleJointTargetFails) {
  const std::vector<double> flaky(4, 0.3);
  const auto sized = SizePbftQuorums(flaky, Probability::FromComplement(1e-9),
                                     Probability::FromComplement(1e-9));
  EXPECT_FALSE(sized.ok());
}

TEST(PbftFrontierTest, SafetyRisesLivenessFallsWithQuorumSize) {
  const std::vector<double> uniform7(7, 0.05);
  const auto frontier = PbftQuorumFrontier(uniform7);
  ASSERT_EQ(frontier.size(), 7u);
  // Safety monotone nondecreasing in q; liveness nonincreasing beyond the peak.
  for (size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_FALSE(frontier[i].safe < frontier[i - 1].safe) << i;
  }
  // The paper's trade-off: the largest quorum is the safest and among the least live.
  EXPECT_GT(frontier.back().safe.value(), frontier.front().safe.value());
  EXPECT_LT(frontier.back().live.value(), frontier[4].live.value());
}

TEST(PbftFrontierTest, ReproducesFourVsFiveNodeInsight) {
  // Table 1's 4-vs-5 insight, recast: at n=5, q=4 is far safer than q=3.5-style majorities.
  const std::vector<double> uniform5(5, 0.01);
  const auto frontier = PbftQuorumFrontier(uniform5);
  const auto& q3 = frontier[2];
  const auto& q4 = frontier[3];
  EXPECT_GT(q3.safe.complement() / q4.safe.complement(), 20.0);
  EXPECT_GE(q4.live.complement(), q3.live.complement());
}

}  // namespace
}  // namespace probcon
