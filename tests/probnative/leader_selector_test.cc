#include "src/probnative/leader_selector.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace probcon {
namespace {

class LeaderSelectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    curves_.push_back(std::make_unique<ConstantFaultCurve>(0.001));  // Reliable.
    curves_.push_back(std::make_unique<ConstantFaultCurve>(0.01));
    curves_.push_back(std::make_unique<ConstantFaultCurve>(0.1));    // Flaky.
    borrowed_ = {curves_[0].get(), curves_[1].get(), curves_[2].get()};
  }

  std::vector<std::unique_ptr<FaultCurve>> curves_;
  std::vector<const FaultCurve*> borrowed_;
};

TEST_F(LeaderSelectorTest, PicksLowestHazardNode) {
  const LeaderSelector selector(borrowed_, {0.0, 0.0, 0.0});
  EXPECT_EQ(selector.SelectMostReliable(10.0), 0);
}

TEST_F(LeaderSelectorTest, RankIsSortedByFailureProbability) {
  const LeaderSelector selector(borrowed_, {0.0, 0.0, 0.0});
  EXPECT_EQ(selector.RankByReliability(10.0), (std::vector<int>{0, 1, 2}));
}

TEST_F(LeaderSelectorTest, FailureProbabilityMatchesCurve) {
  const LeaderSelector selector(borrowed_, {0.0, 0.0, 0.0});
  EXPECT_NEAR(selector.FailureProbability(2, 10.0), 1.0 - std::exp(-1.0), 1e-12);
}

TEST_F(LeaderSelectorTest, BestLeaderBeatsRoundRobin) {
  const LeaderSelector selector(borrowed_, {0.0, 0.0, 0.0});
  EXPECT_LT(selector.ExpectedLeaderFailuresBestLeader(30.0),
            selector.ExpectedLeaderFailuresRoundRobin(30.0));
}

TEST_F(LeaderSelectorTest, RoundRobinAveragesHazards) {
  // Constant curves: expected failures = horizon/3 * sum(rates).
  const LeaderSelector selector(borrowed_, {0.0, 0.0, 0.0});
  const double horizon = 30.0;
  EXPECT_NEAR(selector.ExpectedLeaderFailuresRoundRobin(horizon),
              (0.001 + 0.01 + 0.1) * horizon / 3.0, 1e-9);
}

TEST(LeaderSelectorAgingTest, AgeShiftsTheChoice) {
  // Node 0 is nominally great but deep into wear-out; node 1 is mediocre but young.
  const WeibullFaultCurve wearing_out(4.0, 1000.0);
  const ConstantFaultCurve steady(0.0005);
  const LeaderSelector selector({&wearing_out, &steady}, {1500.0, 0.0});
  EXPECT_EQ(selector.SelectMostReliable(100.0), 1);
  // Same curves, but node 0 young: now node 0 wins (its early hazard is tiny).
  const LeaderSelector young_selector({&wearing_out, &steady}, {10.0, 0.0});
  EXPECT_EQ(young_selector.SelectMostReliable(100.0), 0);
}

TEST(LeaderSelectorAgingTest, StableSortBreaksTiesByIndex) {
  const ConstantFaultCurve a(0.01);
  const ConstantFaultCurve b(0.01);
  const LeaderSelector selector({&a, &b}, {0.0, 0.0});
  EXPECT_EQ(selector.RankByReliability(10.0), (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace probcon
