#include "src/probnative/sortition.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace probcon {
namespace {

std::vector<uint64_t> Keys(int n) {
  std::vector<uint64_t> keys;
  for (int i = 0; i < n; ++i) {
    keys.push_back(0xABCD000 + 977 * i);
  }
  return keys;
}

TEST(SortitionTest, DeterministicPerNodeAndRound) {
  EXPECT_EQ(SortitionSelected(42, 7, 0.5), SortitionSelected(42, 7, 0.5));
  const auto a = SortitionCommittee(Keys(50), 3, 0.3);
  const auto b = SortitionCommittee(Keys(50), 3, 0.3);
  EXPECT_EQ(a, b);
}

TEST(SortitionTest, DifferentRoundsDifferentCommittees) {
  const auto round1 = SortitionCommittee(Keys(200), 1, 0.3);
  const auto round2 = SortitionCommittee(Keys(200), 2, 0.3);
  EXPECT_NE(round1, round2);
}

TEST(SortitionTest, SelectionRateMatchesProbability) {
  const auto keys = Keys(2000);
  int selected = 0;
  for (uint64_t round = 0; round < 50; ++round) {
    selected += static_cast<int>(SortitionCommittee(keys, round, 0.2).size());
  }
  EXPECT_NEAR(selected / (2000.0 * 50.0), 0.2, 0.01);
}

TEST(SortitionTest, BoundaryProbabilities) {
  EXPECT_TRUE(SortitionCommittee(Keys(20), 1, 1.0).size() == 20u);
  EXPECT_TRUE(SortitionCommittee(Keys(20), 1, 0.0).empty());
}

TEST(SortitionHonestMajorityTest, SingleReliableNode) {
  // One node, p=0.1, always selected: honest majority iff the node is honest.
  const auto prob = SortitionHonestMajority({0.1}, 1.0);
  EXPECT_NEAR(prob.value(), 0.9, 1e-12);
}

TEST(SortitionHonestMajorityTest, EmptyCommitteeCountsAsBad) {
  // One perfect node selected with probability 0.25: good iff selected.
  const auto prob = SortitionHonestMajority({0.0}, 0.25);
  EXPECT_NEAR(prob.value(), 0.25, 1e-12);
}

TEST(SortitionHonestMajorityTest, BruteForceAgreementSmallN) {
  const std::vector<double> probs = {0.1, 0.3, 0.05};
  const double selection = 0.6;
  // Enumerate 3 nodes x 3 states: skip / selected-honest / selected-faulty.
  double good = 0.0;
  for (int s0 = 0; s0 < 3; ++s0) {
    for (int s1 = 0; s1 < 3; ++s1) {
      for (int s2 = 0; s2 < 3; ++s2) {
        const int states[3] = {s0, s1, s2};
        double mass = 1.0;
        int honest = 0;
        int faulty = 0;
        for (int i = 0; i < 3; ++i) {
          if (states[i] == 0) {
            mass *= 1.0 - selection;
          } else if (states[i] == 1) {
            mass *= selection * (1.0 - probs[i]);
            ++honest;
          } else {
            mass *= selection * probs[i];
            ++faulty;
          }
        }
        if (honest > faulty) {
          good += mass;
        }
      }
    }
  }
  EXPECT_NEAR(SortitionHonestMajority(probs, selection).value(), good, 1e-12);
}

TEST(SortitionHonestMajorityTest, MoreSelectionMoreReliableOnGoodFleet) {
  const std::vector<double> fleet(30, 0.05);
  const double small = SortitionHonestMajority(fleet, 0.1).value();
  const double large = SortitionHonestMajority(fleet, 0.5).value();
  EXPECT_GT(large, small);
}

TEST(MinExpectedCommitteeTest, ScalesWithTarget) {
  const std::vector<double> fleet(50, 0.1);
  const double three_nines =
      MinExpectedCommitteeForHonestMajority(fleet, Probability::FromComplement(1e-3));
  const double five_nines =
      MinExpectedCommitteeForHonestMajority(fleet, Probability::FromComplement(1e-5));
  EXPECT_GT(three_nines, 0.0);
  EXPECT_GT(five_nines, three_nines);
  EXPECT_LT(five_nines, 50.0);  // Far below the full fleet.
}

TEST(MinExpectedCommitteeTest, ImpossibleTarget) {
  // Majority-faulty fleet: honest majority of a large sample is hopeless.
  const std::vector<double> fleet(20, 0.8);
  EXPECT_LT(MinExpectedCommitteeForHonestMajority(fleet, Probability::FromComplement(1e-6)),
            0.0);
}

}  // namespace
}  // namespace probcon
