#include "src/probnative/failure_detector.h"

#include <gtest/gtest.h>

namespace probcon {
namespace {

PhiAccrualFailureDetector SteadyDetector(double interval, int beats) {
  PhiAccrualFailureDetector detector;
  for (int i = 0; i <= beats; ++i) {
    detector.RecordHeartbeat(i * interval);
  }
  return detector;
}

TEST(PhiAccrualTest, NoHeartbeatsNoSuspicion) {
  const PhiAccrualFailureDetector detector;
  EXPECT_DOUBLE_EQ(detector.Phi(1000.0), 0.0);
  EXPECT_FALSE(detector.Suspects(1000.0, 1.0));
}

TEST(PhiAccrualTest, FreshHeartbeatMeansLowPhi) {
  const auto detector = SteadyDetector(100.0, 50);
  EXPECT_LT(detector.Phi(5000.0 + 10.0), 0.5);
}

TEST(PhiAccrualTest, PhiGrowsWithSilence) {
  const auto detector = SteadyDetector(100.0, 50);
  const double last = 5000.0;
  double previous = -1.0;
  for (const double silence : {50.0, 150.0, 300.0, 600.0, 1200.0}) {
    const double phi = detector.Phi(last + silence);
    EXPECT_GT(phi, previous) << silence;
    previous = phi;
  }
}

TEST(PhiAccrualTest, LongSilenceYieldsHighPhi) {
  const auto detector = SteadyDetector(100.0, 50);
  EXPECT_GT(detector.Phi(5000.0 + 2000.0), 8.0);
  EXPECT_TRUE(detector.Suspects(5000.0 + 2000.0, 8.0));
}

TEST(PhiAccrualTest, MeanAndStddevLearned) {
  const auto detector = SteadyDetector(100.0, 50);
  EXPECT_EQ(detector.sample_count(), 50u);
  EXPECT_NEAR(detector.MeanInterval(), 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(detector.StddevInterval(), 1.0);  // Floored at min_stddev.
}

TEST(PhiAccrualTest, JitteryHeartbeatsRaiseTolerance) {
  // A noisy sender: same mean interval but large variance -> lower phi at the same silence.
  PhiAccrualFailureDetector steady;
  PhiAccrualFailureDetector noisy;
  double t_steady = 0.0;
  double t_noisy = 0.0;
  for (int i = 0; i < 100; ++i) {
    steady.RecordHeartbeat(t_steady);
    noisy.RecordHeartbeat(t_noisy);
    t_steady += 100.0;
    t_noisy += (i % 2 == 0) ? 40.0 : 160.0;  // Mean 100, large spread.
  }
  const double silence = 260.0;
  EXPECT_GT(steady.Phi(t_steady - 100.0 + silence), noisy.Phi(t_noisy - 160.0 + silence));
}

TEST(PhiAccrualTest, WindowSlides) {
  PhiAccrualFailureDetector::Options options;
  options.window_size = 10;
  PhiAccrualFailureDetector detector(options);
  double t = 0.0;
  // Old cadence 100ms, then new cadence 10ms; after 10+ beats only the new cadence remains.
  for (int i = 0; i < 20; ++i) {
    detector.RecordHeartbeat(t);
    t += 100.0;
  }
  for (int i = 0; i < 15; ++i) {
    detector.RecordHeartbeat(t);
    t += 10.0;
  }
  EXPECT_EQ(detector.sample_count(), 10u);
  EXPECT_NEAR(detector.MeanInterval(), 10.0, 1e-9);
}

TEST(PhiAccrualTest, ThresholdSemantics) {
  // phi = 1 ~ 10% false-positive rate: at silence = mean, phi should be near 0.3 (tail 0.5).
  const auto detector = SteadyDetector(100.0, 100);
  const double phi_at_mean = detector.Phi(10000.0 + 100.0);
  EXPECT_NEAR(phi_at_mean, 0.3, 0.1);
}

TEST(PhiAccrualTest, ExtremeSilenceDoesNotOverflow) {
  const auto detector = SteadyDetector(100.0, 50);
  const double phi = detector.Phi(5000.0 + 1e6);
  EXPECT_TRUE(std::isfinite(phi));
  EXPECT_GT(phi, 100.0);
}

}  // namespace
}  // namespace probcon
