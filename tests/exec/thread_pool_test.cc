// Unit tests for the exec runtime: pool scheduling, the parallel loop helpers, and the
// determinism contract at the primitive level (algorithm-level determinism is covered by
// tests/exec/determinism_test.cc).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/exec/parallel.h"
#include "src/exec/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/prob/kahan.h"

namespace probcon {
namespace {

// Blocks until `count` tasks called Arrive().
class Latch {
 public:
  explicit Latch(int count) : remaining_(count) {}

  void Arrive() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (--remaining_ == 0) {
      cv_.notify_all();
    }
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return remaining_ <= 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int remaining_;
};

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  for (const int workers : {0, 1, 4}) {
    ThreadPool pool(workers);
    constexpr int kTasks = 64;
    std::atomic<int> executed{0};
    Latch latch(kTasks);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&] {
        executed.fetch_add(1);
        latch.Arrive();
      });
    }
    latch.Wait();
    EXPECT_EQ(executed.load(), kTasks) << "workers=" << workers;
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&] { executed.fetch_add(1); });
    }
  }  // ~ThreadPool joins after draining.
  EXPECT_EQ(executed.load(), 100);
}

TEST(ThreadPoolTest, TryRunOneTaskReportsEmpty) {
  ThreadPool pool(0);
  EXPECT_FALSE(pool.TryRunOneTask());
  std::atomic<int> executed{0};
  // With 0 workers Submit runs inline, so the queue stays empty.
  pool.Submit([&] { executed.fetch_add(1); });
  EXPECT_EQ(executed.load(), 1);
  EXPECT_FALSE(pool.TryRunOneTask());
}

TEST(ThreadPoolTest, StatsCountSubmittedAndExecuted) {
  ThreadPool pool(2);
  constexpr int kTasks = 32;
  Latch latch(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] { latch.Arrive(); });
  }
  latch.Wait();
  // tasks_executed is bumped after each task body returns; give the last increments a
  // moment to land rather than racing the workers.
  ThreadPool::Stats stats = pool.GetStats();
  for (int spin = 0; spin < 1000 && stats.tasks_executed < kTasks; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = pool.GetStats();
  }
  EXPECT_EQ(stats.tasks_submitted, static_cast<uint64_t>(kTasks));
  EXPECT_EQ(stats.tasks_executed, static_cast<uint64_t>(kTasks));
  EXPECT_EQ(stats.worker_busy_seconds.size(), 2u);
}

TEST(ThreadPoolTest, ExportMetricsPopulatesRegistry) {
  // 0-worker pool: Submit executes inline, so the counters are settled synchronously
  // (with workers, tasks_executed is incremented after the task body returns, and a
  // just-released latch doesn't guarantee the increment is visible yet).
  ThreadPool pool(0);
  for (int i = 0; i < 4; ++i) {
    pool.Submit([] {});
  }
  MetricsRegistry registry;
  pool.ExportMetrics(registry, "exec.pool");
  const Counter* executed = registry.FindCounter("exec.pool.tasks_executed");
  ASSERT_NE(executed, nullptr);
  EXPECT_EQ(executed->value(), 4u);
  ASSERT_NE(registry.FindCounter("exec.pool.tasks_submitted"), nullptr);
  ASSERT_NE(registry.FindCounter("exec.pool.steals"), nullptr);
}

TEST(ThreadPoolTest, DefaultWorkerCountHonorsEnvironment) {
  ASSERT_EQ(setenv("PROBCON_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::DefaultWorkerCount(), 3);
  ASSERT_EQ(setenv("PROBCON_THREADS", "0", 1), 0);
  EXPECT_EQ(ThreadPool::DefaultWorkerCount(), 0);
  // Garbage and out-of-range values fall back to hardware concurrency (>= 1).
  ASSERT_EQ(setenv("PROBCON_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ThreadPool::DefaultWorkerCount(), 1);
  ASSERT_EQ(setenv("PROBCON_THREADS", "-2", 1), 0);
  EXPECT_GE(ThreadPool::DefaultWorkerCount(), 1);
  ASSERT_EQ(unsetenv("PROBCON_THREADS"), 0);
  EXPECT_GE(ThreadPool::DefaultWorkerCount(), 1);
}

TEST(ThreadPoolTest, ScopedOverrideReplacesGlobalAndRestores) {
  ThreadPool& original = ThreadPool::Global();
  {
    ScopedThreadPool scoped(2);
    EXPECT_EQ(&ThreadPool::Global(), &scoped.pool());
    EXPECT_EQ(ThreadPool::Global().worker_count(), 2);
    {
      ScopedThreadPool nested(1);
      EXPECT_EQ(&ThreadPool::Global(), &nested.pool());
    }
    EXPECT_EQ(&ThreadPool::Global(), &scoped.pool());
  }
  EXPECT_EQ(&ThreadPool::Global(), &original);
}

TEST(ParallelForTest, CoversRangeExactlyOnceWithCorrectChunkIndices) {
  for (const int workers : {0, 1, 4}) {
    ThreadPool pool(workers);
    constexpr uint64_t kBegin = 3;
    constexpr uint64_t kEnd = 103;
    constexpr uint64_t kChunk = 7;
    std::vector<std::atomic<int>> visits(kEnd);
    for (auto& v : visits) {
      v.store(0);
    }
    std::mutex chunks_mutex;
    std::vector<std::pair<uint64_t, uint64_t>> chunks;  // (chunk_index, chunk_begin).
    ParallelFor(
        kBegin, kEnd, kChunk,
        [&](uint64_t chunk_begin, uint64_t chunk_end, uint64_t chunk_index) {
          EXPECT_EQ(chunk_begin, kBegin + chunk_index * kChunk);
          EXPECT_LE(chunk_end, kEnd);
          for (uint64_t i = chunk_begin; i < chunk_end; ++i) {
            visits[i].fetch_add(1);
          }
          std::lock_guard<std::mutex> lock(chunks_mutex);
          chunks.emplace_back(chunk_index, chunk_begin);
        },
        &pool);
    for (uint64_t i = kBegin; i < kEnd; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "i=" << i << " workers=" << workers;
    }
    EXPECT_EQ(chunks.size(), (kEnd - kBegin + kChunk - 1) / kChunk);
  }
}

TEST(ParallelForTest, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  ParallelFor(
      5, 5, 4, [&](uint64_t, uint64_t, uint64_t) { ran = true; }, &pool);
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, NestedParallelSectionsDoNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  ParallelFor(
      0, 4, 1,
      [&](uint64_t, uint64_t, uint64_t) {
        ParallelFor(
            0, 8, 2, [&](uint64_t b, uint64_t e, uint64_t) {
              inner_total.fetch_add(static_cast<int>(e - b));
            },
            &pool);
      },
      &pool);
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ParallelForTest, LowestChunkExceptionWinsAndPoolSurvives) {
  for (const int workers : {0, 1, 4}) {
    ThreadPool pool(workers);
    try {
      ParallelFor(
          0, 100, 10,
          [&](uint64_t, uint64_t, uint64_t chunk_index) {
            if (chunk_index == 3 || chunk_index == 7) {
              throw std::runtime_error("chunk " + std::to_string(chunk_index));
            }
          },
          &pool);
      FAIL() << "expected ParallelFor to rethrow";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "chunk 3") << "workers=" << workers;
    }
    // The pool must stay usable after an exception unwound a batch.
    std::atomic<int> executed{0};
    ParallelFor(
        0, 10, 1, [&](uint64_t, uint64_t, uint64_t) { executed.fetch_add(1); }, &pool);
    EXPECT_EQ(executed.load(), 10);
  }
}

TEST(ParallelReduceTest, KahanSumBitIdenticalAcrossWorkerCounts) {
  // An adversarial mix of magnitudes: naive reassociation would change the result, the
  // chunk-ordered Kahan merge must not.
  const auto chunk_fn = [](uint64_t begin, uint64_t end, uint64_t) {
    KahanSum partial;
    for (uint64_t i = begin; i < end; ++i) {
      partial.Add(1e16 / static_cast<double>(i + 1));
      partial.Add(3.14159e-7 * static_cast<double>(i % 97));
    }
    return partial;
  };
  const auto merge = [](KahanSum& acc, KahanSum&& partial) { acc.Merge(partial); };
  double reference = 0.0;
  bool have_reference = false;
  for (const int workers : {0, 1, 2, 8}) {
    ThreadPool pool(workers);
    const KahanSum total =
        ParallelReduce<KahanSum>(0, 100'000, 1024, KahanSum(), chunk_fn, merge, &pool);
    if (!have_reference) {
      reference = total.Total();
      have_reference = true;
    } else {
      EXPECT_EQ(total.Total(), reference) << "workers=" << workers;
    }
  }
}

TEST(RunTrialsTest, ReturnsResultsInTrialOrder) {
  for (const int workers : {0, 1, 4}) {
    ThreadPool pool(workers);
    const auto results =
        RunTrials(50, [](uint64_t trial) { return trial * trial; }, &pool);
    ASSERT_EQ(results.size(), 50u);
    for (uint64_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], i * i);
    }
  }
}

TEST(RunTrialsTest, MoveOnlyResultsSupported) {
  ThreadPool pool(2);
  const auto results = RunTrials(
      8, [](uint64_t trial) { return std::make_unique<uint64_t>(trial); }, &pool);
  for (uint64_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(*results[i], i);
  }
}

}  // namespace
}  // namespace probcon
