// End-to-end determinism of the parallel analysis engine: every probability the toolkit
// reports must be BIT-IDENTICAL for any worker count (PROBCON_THREADS = 0, 1, 2, 8, ...).
// This is the contract documented in src/exec/thread_pool.h and docs/PERFORMANCE.md; these
// tests drive the real algorithms (Monte Carlo, exact enumeration, importance sampling,
// sensitivity, placement search, simulator sweeps) under ScopedThreadPool overrides and
// compare results with exact equality — no tolerances.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/importance_sampling.h"
#include "src/analysis/placement.h"
#include "src/analysis/reliability.h"
#include "src/analysis/sensitivity.h"
#include "src/consensus/raft/raft_cluster.h"
#include "src/exec/parallel.h"
#include "src/exec/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace probcon {
namespace {

const std::vector<int> kWorkerCounts = {0, 1, 2, 8};

std::vector<double> MixedProbabilities(int n) {
  std::vector<double> probs;
  probs.reserve(n);
  for (int i = 0; i < n; ++i) {
    probs.push_back(0.01 + 0.07 * (i % 5) / 4.0);
  }
  return probs;
}

// Runs `fn` once per worker count and checks every result equals the first (0-worker,
// purely sequential) run bit-for-bit.
template <typename Fn>
void ExpectIdenticalAcrossPools(const Fn& fn) {
  using Result = decltype(fn());
  bool have_reference = false;
  Result reference{};
  for (const int workers : kWorkerCounts) {
    ScopedThreadPool scoped(workers);
    const Result result = fn();
    if (!have_reference) {
      reference = result;
      have_reference = true;
    } else {
      EXPECT_EQ(result, reference) << "workers=" << workers;
    }
  }
}

TEST(DeterminismTest, MonteCarloEstimateIsThreadCountInvariant) {
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(MixedProbabilities(64));
  const auto predicate = MakeRaftLivePredicate(RaftConfig::Standard(64));
  MonteCarloOptions options;
  options.trials = 100'000;  // Several 2^14 chunks, so work genuinely distributes.
  ExpectIdenticalAcrossPools([&] {
    const auto ci = analyzer.EstimateEventProbability(predicate, options);
    return std::vector<double>{ci.point, ci.low, ci.high};
  });
}

TEST(DeterminismTest, MonteCarloHonorsCallerSeed) {
  // p = 0.5 puts the live probability near 1/2, so two different seed streams virtually
  // never produce the same hit count over 50k trials (at p ~ 1% both estimates saturate
  // at 1.0 and the comparison below would be vacuous).
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(16, 0.5);
  const auto predicate = MakeRaftLivePredicate(RaftConfig::Standard(16));
  MonteCarloOptions options;
  options.trials = 50'000;
  options.seed = 12345;
  ScopedThreadPool scoped(2);
  const double first = analyzer.EstimateEventProbability(predicate, options).point;
  const double second = analyzer.EstimateEventProbability(predicate, options).point;
  EXPECT_EQ(first, second);
  options.seed = 54321;
  const double other_stream = analyzer.EstimateEventProbability(predicate, options).point;
  // Different root seeds select different chunk streams; identical estimates would mean
  // the seed is being ignored.
  EXPECT_NE(first, other_stream);
}

TEST(DeterminismTest, ExactEnumerationIsThreadCountInvariant) {
  // n=20: 2^20 configurations = 64 chunks of 2^14 — merge order genuinely matters here.
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(MixedProbabilities(20));
  const auto predicate = MakeRaftLivePredicate(RaftConfig::Standard(20));
  ExpectIdenticalAcrossPools([&] {
    const Probability p = analyzer.EventProbability(predicate, AnalysisMethod::kExact);
    return std::vector<double>{p.value(), p.complement()};
  });
}

TEST(DeterminismTest, ImportanceSamplingIsThreadCountInvariant) {
  const IndependentFailureModel model(MixedProbabilities(20));
  const auto predicate =
      CountPredicate([](int failures, int n) { return failures >= n / 2 + 1; });
  ImportanceSamplingOptions options;
  options.trials = 100'000;
  ExpectIdenticalAcrossPools([&] {
    const auto estimate = EstimateRareEventProbability(model, predicate, options);
    return std::vector<double>{estimate.probability, estimate.standard_error,
                               static_cast<double>(estimate.hits)};
  });
}

TEST(DeterminismTest, SensitivityAnalysisIsThreadCountInvariant) {
  const auto probabilities = MixedProbabilities(9);
  ExpectIdenticalAcrossPools([&] {
    std::vector<double> flat;
    for (const NodeSensitivity& s : RaftSensitivity(probabilities)) {
      flat.push_back(static_cast<double>(s.node));
      flat.push_back(s.derivative);
      flat.push_back(s.complement_if_perfect);
      flat.push_back(s.complement_if_failed);
    }
    return flat;
  });
}

TEST(DeterminismTest, PlacementSearchIsThreadCountInvariant) {
  // 3^5 = 243 assignments across several 64-wide chunks; ties must resolve to the same
  // (earliest) assignment index at every worker count.
  const std::vector<double> nodes = {0.01, 0.02, 0.01, 0.03, 0.02};
  const std::vector<double> racks = {0.001, 0.002, 0.001};
  ExpectIdenticalAcrossPools([&] {
    const PlacementResult result = OptimizeRackPlacement(nodes, racks);
    std::vector<double> flat;
    for (const int rack : result.rack_of) {
      flat.push_back(static_cast<double>(rack));
    }
    flat.push_back(result.safe_and_live.value());
    return flat;
  });
}

TEST(DeterminismTest, TracedSimulatorSweepIsThreadCountInvariant) {
  // A RunTrials sweep of fully traced simulator runs: per-trial commit counts, safety
  // verdicts, and trace sizes must not depend on which pool thread ran which trial.
  ExpectIdenticalAcrossPools([&] {
    const auto trials = RunTrials(12, [](uint64_t trial) {
      RaftClusterOptions options;
      options.config = RaftConfig::Standard(5);
      options.seed = 1000 + trial;
      RaftCluster cluster(options);
      TraceLog trace;
      MetricsRegistry metrics;
      cluster.simulator().AttachTracer(&trace, &metrics);
      cluster.Start();
      cluster.RunUntil(2'000.0);
      return std::vector<uint64_t>{cluster.checker().max_committed_slot(),
                                   cluster.checker().safe() ? 1u : 0u,
                                   static_cast<uint64_t>(trace.events().size())};
    });
    std::vector<uint64_t> flat;
    for (const auto& t : trials) {
      flat.insert(flat.end(), t.begin(), t.end());
    }
    return flat;
  });
}

}  // namespace
}  // namespace probcon
