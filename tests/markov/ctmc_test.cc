#include "src/markov/ctmc.h"

#include <atomic>
#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "src/common/cancellation.h"

namespace probcon {
namespace {

// Two-state repairable machine: up (0) <-> down (1), failure rate lambda, repair rate mu.
Ctmc TwoStateMachine(double lambda, double mu) {
  Ctmc chain(2);
  chain.AddTransition(0, 1, lambda);
  chain.AddTransition(1, 0, mu);
  return chain;
}

TEST(CtmcTest, GeneratorRowsSumToZero) {
  const Ctmc chain = TwoStateMachine(0.1, 2.0);
  const Matrix q = chain.Generator();
  for (size_t r = 0; r < 2; ++r) {
    double row_sum = 0.0;
    for (size_t c = 0; c < 2; ++c) {
      row_sum += q.At(r, c);
    }
    EXPECT_NEAR(row_sum, 0.0, 1e-12);
  }
}

TEST(CtmcTest, TwoStateSteadyState) {
  // pi_up = mu / (mu + lambda).
  const Ctmc chain = TwoStateMachine(0.1, 2.0);
  const auto pi = chain.SteadyState();
  ASSERT_TRUE(pi.ok());
  EXPECT_NEAR((*pi)[0], 2.0 / 2.1, 1e-10);
  EXPECT_NEAR((*pi)[1], 0.1 / 2.1, 1e-10);
}

TEST(CtmcTest, MM1QueueSteadyStateIsGeometric) {
  // Truncated M/M/1 with arrival 1, service 2: pi_k ~ (1/2)^k.
  constexpr int kStates = 12;
  Ctmc chain(kStates);
  for (int k = 0; k < kStates - 1; ++k) {
    chain.AddTransition(k, k + 1, 1.0);
    chain.AddTransition(k + 1, k, 2.0);
  }
  const auto pi = chain.SteadyState();
  ASSERT_TRUE(pi.ok());
  for (int k = 1; k < kStates; ++k) {
    EXPECT_NEAR((*pi)[k] / (*pi)[k - 1], 0.5, 1e-9) << k;
  }
}

TEST(CtmcTest, SteadyStateOfAbsorbingChainConcentratesThere) {
  Ctmc chain(2);
  chain.AddTransition(0, 1, 1.0);  // 1 is absorbing.
  const auto pi = chain.SteadyState();
  ASSERT_TRUE(pi.ok());
  EXPECT_NEAR((*pi)[0], 0.0, 1e-12);
  EXPECT_NEAR((*pi)[1], 1.0, 1e-12);
}

TEST(CtmcTest, SteadyStateFailsWithTwoAbsorbingComponents) {
  // Two disconnected absorbing sinks: the limit depends on the start state, so the balance
  // system is singular.
  Ctmc chain(4);
  chain.AddTransition(0, 1, 1.0);
  chain.AddTransition(2, 3, 1.0);
  EXPECT_FALSE(chain.SteadyState().ok());
}

TEST(CtmcTest, MeanTimeToAbsorptionExponential) {
  // Single transition 0 -> 1 at rate lambda: MTTA = 1/lambda.
  Ctmc chain(2);
  chain.AddTransition(0, 1, 0.25);
  const auto mtta = chain.MeanTimeToAbsorption(0, {1});
  ASSERT_TRUE(mtta.ok());
  EXPECT_NEAR(*mtta, 4.0, 1e-10);
}

TEST(CtmcTest, MeanTimeToAbsorptionSeries) {
  // 0 -> 1 -> 2 with rates 1 and 2: MTTA = 1 + 0.5.
  Ctmc chain(3);
  chain.AddTransition(0, 1, 1.0);
  chain.AddTransition(1, 2, 2.0);
  const auto mtta = chain.MeanTimeToAbsorption(0, {2});
  ASSERT_TRUE(mtta.ok());
  EXPECT_NEAR(*mtta, 1.5, 1e-10);
}

TEST(CtmcTest, MeanTimeToAbsorptionWithRepairClosedForm) {
  // Birth-death on {0,1,2}, absorb at 2: failure rate l, repair m from 1.
  // MTTA from 0 = (2l + m) / l^2 for this chain with both failure rates = l.
  const double l = 0.5;
  const double m = 3.0;
  Ctmc chain(3);
  chain.AddTransition(0, 1, l);
  chain.AddTransition(1, 0, m);
  chain.AddTransition(1, 2, l);
  const auto mtta = chain.MeanTimeToAbsorption(0, {2});
  ASSERT_TRUE(mtta.ok());
  EXPECT_NEAR(*mtta, (2 * l + m) / (l * l), 1e-9);
}

TEST(CtmcTest, MttaFromAbsorbingStateIsZero) {
  Ctmc chain(2);
  chain.AddTransition(0, 1, 1.0);
  const auto mtta = chain.MeanTimeToAbsorption(1, {1});
  ASSERT_TRUE(mtta.ok());
  EXPECT_DOUBLE_EQ(*mtta, 0.0);
}

TEST(CtmcTest, AbsorptionProbabilitiesCompete) {
  // 0 -> 1 at rate 3, 0 -> 2 at rate 1: absorbed at 1 w.p. 3/4.
  Ctmc chain(3);
  chain.AddTransition(0, 1, 3.0);
  chain.AddTransition(0, 2, 1.0);
  const auto probs = chain.AbsorptionProbabilities(0, {1, 2});
  ASSERT_TRUE(probs.ok());
  EXPECT_NEAR((*probs)[0], 0.75, 1e-10);
  EXPECT_NEAR((*probs)[1], 0.25, 1e-10);
}

TEST(CtmcTest, AbsorptionProbabilitiesSumToOne) {
  Ctmc chain(4);
  chain.AddTransition(0, 1, 1.0);
  chain.AddTransition(1, 0, 5.0);
  chain.AddTransition(0, 2, 0.3);
  chain.AddTransition(1, 3, 0.7);
  const auto probs = chain.AbsorptionProbabilities(0, {2, 3});
  ASSERT_TRUE(probs.ok());
  EXPECT_NEAR((*probs)[0] + (*probs)[1], 1.0, 1e-10);
}

TEST(CtmcTest, TransientDistributionTwoStateClosedForm) {
  // P(up at t) = mu/(l+m) + l/(l+m) e^{-(l+m)t} starting from up.
  const double l = 0.4;
  const double m = 1.6;
  const Ctmc chain = TwoStateMachine(l, m);
  const Vector initial = {1.0, 0.0};
  for (const double t : {0.1, 0.5, 1.0, 3.0}) {
    const Vector at_t = chain.TransientDistribution(initial, t);
    const double expected = m / (l + m) + l / (l + m) * std::exp(-(l + m) * t);
    EXPECT_NEAR(at_t[0], expected, 1e-9) << t;
    EXPECT_NEAR(at_t[0] + at_t[1], 1.0, 1e-9);
  }
}

TEST(CtmcTest, TransientAtZeroIsInitial) {
  const Ctmc chain = TwoStateMachine(1.0, 1.0);
  const Vector initial = {0.3, 0.7};
  const Vector at_zero = chain.TransientDistribution(initial, 0.0);
  EXPECT_DOUBLE_EQ(at_zero[0], 0.3);
  EXPECT_DOUBLE_EQ(at_zero[1], 0.7);
}

TEST(CtmcTest, TransientConvergesToSteadyState) {
  const Ctmc chain = TwoStateMachine(0.5, 1.5);
  const Vector initial = {1.0, 0.0};
  const Vector late = chain.TransientDistribution(initial, 100.0);
  const auto pi = chain.SteadyState();
  ASSERT_TRUE(pi.ok());
  EXPECT_NEAR(late[0], (*pi)[0], 1e-8);
  EXPECT_NEAR(late[1], (*pi)[1], 1e-8);
}

TEST(CtmcTest, TransientWithNoTransitionsReturnsInitial) {
  // Degenerate uniformization: a chain with no transitions has Lambda = 0, so there is
  // nothing to exponentiate — the distribution must pass through unchanged for ANY t, not
  // divide by zero. Regression for the uniformization rate guard.
  Ctmc chain(3);
  const Vector initial = {0.2, 0.5, 0.3};
  for (const double t : {0.0, 1.0, 1e6}) {
    const Vector at_t = chain.TransientDistribution(initial, t);
    EXPECT_DOUBLE_EQ(at_t[0], 0.2) << t;
    EXPECT_DOUBLE_EQ(at_t[1], 0.5) << t;
    EXPECT_DOUBLE_EQ(at_t[2], 0.3) << t;
  }
}

TEST(CtmcTest, TransientAllStatesAbsorbingIsAlsoDegenerate) {
  // Absorbing-only chains (every state retained, no outgoing rates) hit the same Lambda = 0
  // path even when states exist that COULD have transitions.
  Ctmc chain(2);
  const Vector initial = {1.0, 0.0};
  const Vector at_t = chain.TransientDistribution(initial, 42.0);
  EXPECT_DOUBLE_EQ(at_t[0], 1.0);
  EXPECT_DOUBLE_EQ(at_t[1], 0.0);
}

TEST(CtmcTest, TryTransientRejectsAstronomicalHorizons) {
  // rate * t over the term cap must surface as FAILED_PRECONDITION, not an int overflow in
  // the Poisson term loop.
  const Ctmc chain = TwoStateMachine(1.0, 1.0);
  const auto result = chain.TryTransientDistribution({1.0, 0.0}, 1e12, {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CtmcTest, TrySolversHonorCancellation) {
  const Ctmc chain = TwoStateMachine(0.5, 1.5);
  CancelToken token;
  token.Cancel();
  const CtmcSolveOptions options{.cancel = &token};
  EXPECT_EQ(chain.TrySteadyState(options).status().code(), StatusCode::kCancelled);
  EXPECT_EQ(chain.TryMeanTimeToAbsorption(0, {1}, options).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(chain.TryTransientDistribution({1.0, 0.0}, 10.0, options).status().code(),
            StatusCode::kCancelled);
}

TEST(CtmcTest, TrySolversMatchUncancelledBaseline) {
  const Ctmc chain = TwoStateMachine(0.4, 1.6);
  const auto baseline = chain.SteadyState();
  const auto tried = chain.TrySteadyState({});
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(tried.ok());
  EXPECT_DOUBLE_EQ((*tried)[0], (*baseline)[0]);
  const Vector direct = chain.TransientDistribution({1.0, 0.0}, 2.5);
  const auto tried_transient = chain.TryTransientDistribution({1.0, 0.0}, 2.5, {});
  ASSERT_TRUE(tried_transient.ok());
  EXPECT_DOUBLE_EQ((*tried_transient)[0], direct[0]);
}

TEST(CtmcTest, ProgressCellCountsUniformizationTerms) {
  std::atomic<uint64_t> steps{0};
  const Ctmc chain = TwoStateMachine(2.0, 2.0);
  const auto result = chain.TryTransientDistribution({1.0, 0.0}, 50.0, {.progress = &steps});
  ASSERT_TRUE(result.ok());
  // Lambda * t = 50 * ~4.08: uniformization needs at least that many Poisson terms.
  EXPECT_GT(steps.load(), 100u);
}

TEST(CtmcTest, AccumulatedParallelTransitions) {
  Ctmc chain(2);
  chain.AddTransition(0, 1, 0.5);
  chain.AddTransition(0, 1, 0.5);  // Accumulates to rate 1.
  const auto mtta = chain.MeanTimeToAbsorption(0, {1});
  ASSERT_TRUE(mtta.ok());
  EXPECT_NEAR(*mtta, 1.0, 1e-10);
}

}  // namespace
}  // namespace probcon
