#include "src/markov/repair_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace probcon {
namespace {

TEST(RepairModelTest, NoRepairMttfIsHarmonicSum) {
  // Without repair, time to k-th failure from n nodes = sum_{j=0}^{k-1} 1 / ((n-j) lambda).
  RepairModelParams params;
  params.n = 5;
  params.failure_rate = 0.01;
  params.repair_rate = 0.0;
  const ConsensusRepairModel model(params);
  // Majority quorum 3: outage at 3 failures.
  const auto mttf = model.MeanTimeToUnavailability(3);
  ASSERT_TRUE(mttf.ok());
  const double expected =
      1.0 / (5 * 0.01) + 1.0 / (4 * 0.01) + 1.0 / (3 * 0.01);
  EXPECT_NEAR(*mttf, expected, expected * 1e-9);
}

TEST(RepairModelTest, RepairExtendsMttf) {
  RepairModelParams no_repair;
  no_repair.n = 5;
  no_repair.failure_rate = 0.01;
  no_repair.repair_rate = 0.0;
  RepairModelParams with_repair = no_repair;
  with_repair.repair_rate = 0.5;
  const auto slow = ConsensusRepairModel(no_repair).MeanTimeToUnavailability(3);
  const auto fast = ConsensusRepairModel(with_repair).MeanTimeToUnavailability(3);
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_GT(*fast, *slow * 10.0);  // Repair helps enormously at mu/lambda = 50 (~60x here).
}

TEST(RepairModelTest, MttfMonotoneInRepairRate) {
  RepairModelParams params;
  params.n = 7;
  params.failure_rate = 0.02;
  double previous = 0.0;
  for (const double mu : {0.0, 0.1, 0.5, 2.0}) {
    params.repair_rate = mu;
    const auto mttf = ConsensusRepairModel(params).MeanTimeToUnavailability(4);
    ASSERT_TRUE(mttf.ok());
    EXPECT_GT(*mttf, previous);
    previous = *mttf;
  }
}

TEST(RepairModelTest, QuorumLossVsUnavailabilityThresholds) {
  // Losing a majority quorum (outage) happens before 5 simultaneous failures (data loss with
  // q_per = 5... i.e., wipeout of a full persistence quorum placement).
  RepairModelParams params;
  params.n = 5;
  params.failure_rate = 0.01;
  params.repair_rate = 0.2;
  const ConsensusRepairModel model(params);
  const auto outage = model.MeanTimeToUnavailability(3);   // At 3 failures.
  const auto wipeout = model.MeanTimeToQuorumLoss(5);      // All 5 down at once.
  ASSERT_TRUE(outage.ok());
  ASSERT_TRUE(wipeout.ok());
  EXPECT_GT(*wipeout, *outage);
}

TEST(RepairModelTest, SteadyStateAvailabilityTwoState) {
  // n=1, quorum 1: classic availability mu/(mu+lambda).
  RepairModelParams params;
  params.n = 1;
  params.failure_rate = 0.1;
  params.repair_rate = 0.9;
  const auto availability = ConsensusRepairModel(params).SteadyStateAvailability(1);
  ASSERT_TRUE(availability.ok());
  EXPECT_NEAR(availability->value(), 0.9, 1e-9);
}

TEST(RepairModelTest, SteadyStateAvailabilityImprovesWithCluster) {
  RepairModelParams single;
  single.n = 1;
  single.failure_rate = 0.01;
  single.repair_rate = 0.1;
  RepairModelParams cluster = single;
  cluster.n = 3;
  cluster.repair_servers = 3;
  const auto one = ConsensusRepairModel(single).SteadyStateAvailability(1);
  const auto three = ConsensusRepairModel(cluster).SteadyStateAvailability(2);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(three.ok());
  EXPECT_GT(three->value(), one->value());
}

TEST(RepairModelTest, NoRepairSteadyStateAvailabilityIsZero) {
  RepairModelParams params;
  params.n = 3;
  params.failure_rate = 0.01;
  params.repair_rate = 0.0;
  const auto availability = ConsensusRepairModel(params).SteadyStateAvailability(2);
  ASSERT_TRUE(availability.ok());
  EXPECT_DOUBLE_EQ(availability->value(), 0.0);
}

TEST(RepairModelTest, UnavailabilityWithinGrowsWithMissionTime) {
  RepairModelParams params;
  params.n = 3;
  params.failure_rate = 0.05;
  params.repair_rate = 0.5;
  const ConsensusRepairModel model(params);
  const double p_short = model.UnavailabilityWithin(2, 1.0).value();
  const double p_long = model.UnavailabilityWithin(2, 50.0).value();
  EXPECT_LT(p_short, p_long);
  EXPECT_GT(p_short, 0.0);
  EXPECT_LT(p_long, 1.0);
}

TEST(RepairModelTest, UnavailabilityWithinMatchesExponentialForSingleNode) {
  // n=1, quorum 1, no repair: P(outage by t) = 1 - exp(-lambda t).
  RepairModelParams params;
  params.n = 1;
  params.failure_rate = 0.2;
  params.repair_rate = 0.0;
  const ConsensusRepairModel model(params);
  for (const double t : {0.5, 2.0, 10.0}) {
    EXPECT_NEAR(model.UnavailabilityWithin(1, t).value(), 1.0 - std::exp(-0.2 * t), 1e-8)
        << t;
  }
}

TEST(RepairModelTest, RepairServerCountMatters) {
  RepairModelParams one_server;
  one_server.n = 9;
  one_server.failure_rate = 0.1;
  one_server.repair_rate = 0.15;
  one_server.repair_servers = 1;
  RepairModelParams many_servers = one_server;
  many_servers.repair_servers = 9;
  const auto slow = ConsensusRepairModel(one_server).MeanTimeToUnavailability(5);
  const auto fast = ConsensusRepairModel(many_servers).MeanTimeToUnavailability(5);
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_GT(*fast, *slow);
}

}  // namespace
}  // namespace probcon
