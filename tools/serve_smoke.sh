#!/usr/bin/env bash
# End-to-end smoke test for the probcon::serve daemon, as run by the serve-e2e CI job:
#
#   1. start probcond on an ephemeral loopback port and wait for readiness,
#   2. issue table1 / quorum_size queries through probcon-cli and pin the
#      regression-locked cells ("99.94%", "99.90%") — served answers must be
#      byte-identical to the offline tables,
#   3. repeat a query and require the second answer to be a cache hit with an identical
#      result object,
#   4. fire a 1 ms deadline at a 2^30-trial Monte Carlo request and require a prompt
#      DEADLINE_EXCEEDED instead of a wedged server,
#   5. SIGTERM the daemon and require a graceful drain (exit 0).
#
# Usage: tools/serve_smoke.sh <build-dir>

set -u

BUILD_DIR="${1:?usage: serve_smoke.sh <build-dir>}"
PROBCOND="${BUILD_DIR}/src/serve/probcond"
CLI="${BUILD_DIR}/src/serve/probcon-cli"
LOG="$(mktemp /tmp/probcond_smoke.XXXXXX.log)"
FAILURES=0

fail() {
  echo "FAIL: $1" >&2
  FAILURES=$((FAILURES + 1))
}

[ -x "${PROBCOND}" ] || { echo "missing binary: ${PROBCOND}" >&2; exit 1; }
[ -x "${CLI}" ] || { echo "missing binary: ${CLI}" >&2; exit 1; }

"${PROBCOND}" --port 0 >"${LOG}" 2>&1 &
DAEMON_PID=$!
trap 'kill -9 "${DAEMON_PID}" 2>/dev/null; rm -f "${LOG}"' EXIT

# Readiness: scrape the bound port from the startup line, then ping until it answers.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^probcond listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "${LOG}")"
  [ -n "${PORT}" ] && break
  sleep 0.1
done
[ -n "${PORT}" ] || { echo "probcond never reported its port; log:" >&2; cat "${LOG}" >&2; exit 1; }

READY=0
for _ in $(seq 1 100); do
  if "${CLI}" --port "${PORT}" ping >/dev/null 2>&1; then
    READY=1
    break
  fi
  sleep 0.1
done
[ "${READY}" = 1 ] || { echo "probcond never answered ping" >&2; exit 1; }
echo "probcond ready on port ${PORT}"

# Table 1, n=4: the served cells must be the regression-locked paper values.
TABLE1="$("${CLI}" --port "${PORT}" table1 '{"n": 4}')" || fail "table1 query errored"
echo "${TABLE1}" | grep -q '"safe_and_live": "99.94%"' \
  || fail "table1 n=4 did not serve the regression cell 99.94%: ${TABLE1}"

# Quorum sizing: raft n=5 p=0.01 at target_live 0.999 sizes to the known config.
QUORUM="$("${CLI}" --port "${PORT}" quorum_size \
  '{"protocol": "raft", "fault": {"n": 5, "p": 0.01}, "target_live": 0.999}')" \
  || fail "quorum_size query errored"
echo "${QUORUM}" | grep -q '"live": "99.90%"' \
  || fail "quorum_size did not hit the expected 99.90% cell: ${QUORUM}"

# Memoization: the repeat must be a cache hit with a byte-identical result object.
REPEAT="$("${CLI}" --port "${PORT}" --repeat 2 table1 '{"n": 4}')" \
  || fail "repeated table1 query errored"
echo "${REPEAT}" | grep -q '"cached": true' || fail "repeat was not served from cache"
python3 - "$TABLE1" "$REPEAT" <<'EOF' || fail "cached result differs from computed result"
import json, sys
first = json.loads(sys.argv[1])["result"]
# The --repeat output is two documents back to back; both must carry the same result.
decoder = json.JSONDecoder()
text, results = sys.argv[2].strip(), []
while text:
    doc, end = decoder.raw_decode(text)
    results.append(doc["result"])
    text = text[end:].strip()
canon = lambda value: json.dumps(value, sort_keys=True)
assert len(results) == 2, f"expected 2 responses, got {len(results)}"
assert canon(results[0]) == canon(results[1]) == canon(first)
EOF

# Deadlines: a 2^30-trial Monte Carlo run under a 1 ms deadline must come back
# DEADLINE_EXCEEDED promptly (server-error exit code 3), not wedge the daemon.
DEADLINE_OUT="$("${CLI}" --port "${PORT}" --deadline-ms 1 montecarlo \
  '{"protocol": "raft", "fault": {"n": 5, "p": 0.01}, "trials": 1073741824}')"
DEADLINE_EXIT=$?
[ "${DEADLINE_EXIT}" = 3 ] || fail "deadline query exit ${DEADLINE_EXIT}, want 3"
echo "${DEADLINE_OUT}" | grep -q 'DEADLINE_EXCEEDED' \
  || fail "deadline query did not report DEADLINE_EXCEEDED: ${DEADLINE_OUT}"

# The daemon must still be healthy after the cancelled request.
"${CLI}" --port "${PORT}" ping >/dev/null || fail "daemon unhealthy after deadline query"

# Graceful shutdown: SIGTERM drains in-flight work and exits 0.
kill -TERM "${DAEMON_PID}"
wait "${DAEMON_PID}"
DAEMON_EXIT=$?
[ "${DAEMON_EXIT}" = 0 ] || fail "probcond exit ${DAEMON_EXIT} on SIGTERM, want 0"
grep -q 'probcond draining' "${LOG}" || fail "no drain message in daemon log"
grep -q 'probcond stats:' "${LOG}" || fail "no stats line in daemon log"
trap 'rm -f "${LOG}"' EXIT

if [ "${FAILURES}" -ne 0 ]; then
  echo "serve smoke test: ${FAILURES} failure(s); daemon log:" >&2
  cat "${LOG}" >&2
  exit 1
fi
echo "serve smoke test: all checks passed"
