#!/usr/bin/env bash
# End-to-end smoke test for the probcon::serve daemon, as run by the serve-e2e CI job:
#
#   1. start probcond on an ephemeral loopback port and wait for readiness,
#   2. issue table1 / quorum_size queries through probcon-cli and pin the
#      regression-locked cells ("99.94%", "99.90%") — served answers must be
#      byte-identical to the offline tables,
#   3. repeat a query and require the second answer to be a cache hit with an identical
#      result object,
#   3b. issue a fleet-lifecycle `availability` query, pin it to the independent-node
#      closed form, and require its repeat to hit the memo cache,
#   4. pipeline a --concurrency batch through one connection and require every response
#      to come back, matched to a distinct request id, with the same result object,
#   5. fire a 1 ms deadline at a 2^30-trial Monte Carlo request and require a prompt
#      DEADLINE_EXCEEDED instead of a wedged server,
#   6. query the `stats` verb and require a parseable metrics snapshot whose cache-hit
#      counter reflects the repeated query, whose per-reactor-shard connection gauges sum
#      to the active-connection gauge, and a --trace request to echo its span breakdown,
#   7. SIGTERM the daemon and require a graceful drain (exit 0) plus a final
#      --metrics-path dump that parses as metrics JSON.
#
# Usage: tools/serve_smoke.sh <build-dir>

set -u

BUILD_DIR="${1:?usage: serve_smoke.sh <build-dir>}"
PROBCOND="${BUILD_DIR}/src/serve/probcond"
CLI="${BUILD_DIR}/src/serve/probcon-cli"
LOG="$(mktemp /tmp/probcond_smoke.XXXXXX.log)"
METRICS="$(mktemp /tmp/probcond_smoke.XXXXXX.metrics.json)"
FAILURES=0

fail() {
  echo "FAIL: $1" >&2
  FAILURES=$((FAILURES + 1))
}

[ -x "${PROBCOND}" ] || { echo "missing binary: ${PROBCOND}" >&2; exit 1; }
[ -x "${CLI}" ] || { echo "missing binary: ${CLI}" >&2; exit 1; }

"${PROBCOND}" --port 0 --metrics-interval-s 3600 --metrics-path "${METRICS}" \
  >"${LOG}" 2>&1 &
DAEMON_PID=$!
trap 'kill -9 "${DAEMON_PID}" 2>/dev/null; rm -f "${LOG}" "${METRICS}"' EXIT

# Readiness: scrape the bound port from the startup line, then ping until it answers.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^probcond listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "${LOG}")"
  [ -n "${PORT}" ] && break
  sleep 0.1
done
[ -n "${PORT}" ] || { echo "probcond never reported its port; log:" >&2; cat "${LOG}" >&2; exit 1; }

READY=0
for _ in $(seq 1 100); do
  if "${CLI}" --port "${PORT}" ping >/dev/null 2>&1; then
    READY=1
    break
  fi
  sleep 0.1
done
[ "${READY}" = 1 ] || { echo "probcond never answered ping" >&2; exit 1; }
echo "probcond ready on port ${PORT}"

# Table 1, n=4: the served cells must be the regression-locked paper values.
TABLE1="$("${CLI}" --port "${PORT}" table1 '{"n": 4}')" || fail "table1 query errored"
echo "${TABLE1}" | grep -q '"safe_and_live": "99.94%"' \
  || fail "table1 n=4 did not serve the regression cell 99.94%: ${TABLE1}"

# Quorum sizing: raft n=5 p=0.01 at target_live 0.999 sizes to the known config.
QUORUM="$("${CLI}" --port "${PORT}" quorum_size \
  '{"protocol": "raft", "fault": {"n": 5, "p": 0.01}, "target_live": 0.999}')" \
  || fail "quorum_size query errored"
echo "${QUORUM}" | grep -q '"live": "99.90%"' \
  || fail "quorum_size did not hit the expected 99.90% cell: ${QUORUM}"

# Memoization: the repeat must be a cache hit with a byte-identical result object.
REPEAT="$("${CLI}" --port "${PORT}" --repeat 2 table1 '{"n": 4}')" \
  || fail "repeated table1 query errored"
echo "${REPEAT}" | grep -q '"cached": true' || fail "repeat was not served from cache"
python3 - "$TABLE1" "$REPEAT" <<'EOF' || fail "cached result differs from computed result"
import json, sys
first = json.loads(sys.argv[1])["result"]
# The --repeat output is two documents back to back; both must carry the same result.
decoder = json.JSONDecoder()
text, results = sys.argv[2].strip(), []
while text:
    doc, end = decoder.raw_decode(text)
    results.append(doc["result"])
    text = text[end:].strip()
canon = lambda value: json.dumps(value, sort_keys=True)
assert len(results) == 2, f"expected 2 responses, got {len(results)}"
assert canon(results[0]) == canon(results[1]) == canon(first)
EOF

# Pipelining: a --concurrency batch goes out as back-to-back frames on one connection and
# the server may answer out of order; the client must match every response by id. All 16
# responses must arrive, carry 16 distinct ids, and serve the same result object.
PIPELINED="$("${CLI}" --port "${PORT}" --concurrency 8 --repeat 16 table1 '{"n": 4}')" \
  || fail "pipelined table1 batch errored"
python3 - "$TABLE1" "$PIPELINED" <<'EOF' || fail "pipelined batch lost/mismatched responses"
import json, sys
first = json.loads(sys.argv[1])["result"]
decoder = json.JSONDecoder()
text, docs = sys.argv[2].strip(), []
while text:
    doc, end = decoder.raw_decode(text)
    docs.append(doc)
    text = text[end:].strip()
assert len(docs) == 16, f"expected 16 responses, got {len(docs)}"
ids = [doc["id"] for doc in docs]
assert len(set(ids)) == 16, f"duplicate ids in batch: {sorted(ids)}"
canon = lambda value: json.dumps(value, sort_keys=True)
for doc in docs:
    assert doc["status"] == "OK", doc
    assert canon(doc["result"]) == canon(first), doc
EOF

# Fleet lifecycle: an availability query round-trips with the independent-node closed form
# (3 nodes, lambda 0.02, per-node repair at mu 0.5: unavailability ~ 0.0043241), and the
# repeat is served from the memo cache with a byte-identical result.
AVAIL_PARAMS='{"protocol": "raft", "fleet": {"classes": [{"count": 3, "failure_rate": 0.02}], "repair_rate": 0.5, "repair_servers": 3}}'
AVAIL="$("${CLI}" --port "${PORT}" availability "${AVAIL_PARAMS}")" \
  || fail "availability query errored"
python3 - "$AVAIL" <<'EOF' || fail "availability result off the closed form: ${AVAIL}"
import json, sys
result = json.loads(sys.argv[1])["result"]
up = 0.5 / 0.52
expected = 1.0 - (3 * up * up * (1 - up) + up ** 3)
assert abs(result["unavailability"] - expected) < 1e-9, result
assert result["mttu_hours"] > 0, result
assert result["downtime_hours_per_year"] > 0, result
EOF
AVAIL_REPEAT="$("${CLI}" --port "${PORT}" --repeat 2 availability "${AVAIL_PARAMS}")" \
  || fail "repeated availability query errored"
echo "${AVAIL_REPEAT}" | grep -q '"cached": true' \
  || fail "availability repeat was not served from cache"
python3 - "$AVAIL" "$AVAIL_REPEAT" <<'EOF' || fail "cached availability differs from computed"
import json, sys
first = json.loads(sys.argv[1])["result"]
decoder = json.JSONDecoder()
text, results = sys.argv[2].strip(), []
while text:
    doc, end = decoder.raw_decode(text)
    results.append(doc["result"])
    text = text[end:].strip()
canon = lambda value: json.dumps(value, sort_keys=True)
assert len(results) == 2, f"expected 2 responses, got {len(results)}"
assert canon(results[0]) == canon(results[1]) == canon(first)
EOF

# Deadlines: a 2^30-trial Monte Carlo run under a 1 ms deadline must come back
# DEADLINE_EXCEEDED promptly (dedicated exit code 4), not wedge the daemon.
DEADLINE_OUT="$("${CLI}" --port "${PORT}" --deadline-ms 1 montecarlo \
  '{"protocol": "raft", "fault": {"n": 5, "p": 0.01}, "trials": 1073741824}')"
DEADLINE_EXIT=$?
[ "${DEADLINE_EXIT}" = 4 ] || fail "deadline query exit ${DEADLINE_EXIT}, want 4"
echo "${DEADLINE_OUT}" | grep -q 'DEADLINE_EXCEEDED' \
  || fail "deadline query did not report DEADLINE_EXCEEDED: ${DEADLINE_OUT}"

# Error classes map to distinct exit codes: an invalid request is 3.
"${CLI}" --port "${PORT}" table1 '{"n": 1}' >/dev/null 2>&1
INVALID_EXIT=$?
[ "${INVALID_EXIT}" = 3 ] || fail "invalid-argument query exit ${INVALID_EXIT}, want 3"

# The daemon must still be healthy after the cancelled request.
"${CLI}" --port "${PORT}" ping >/dev/null || fail "daemon unhealthy after deadline query"

# The health verb reports the brownout state machine; a quiet daemon is ready.
HEALTH="$("${CLI}" --port "${PORT}" health)" || fail "health query errored"
echo "${HEALTH}" | grep -q '"state": "ready"' \
  || fail "health query did not report ready: ${HEALTH}"

# Introspection: the stats verb returns a metrics snapshot in which the repeated table1
# query above is visible as cache traffic and as per-kind latency samples with quantiles.
STATS="$("${CLI}" --port "${PORT}" stats)" || fail "stats query errored"
python3 - "$STATS" <<'EOF' || fail "stats snapshot missing expected metrics"
import json, sys
metrics = json.loads(sys.argv[1])["result"]["metrics"]
counters, histograms = metrics["counters"], metrics["histograms"]
assert counters["serve.cache.hits"] >= 1, counters
assert counters["serve.cache.misses"] >= 1, counters
assert counters["serve.connections.accepted"] >= 1, counters
table1 = histograms["serve.latency_ms.table1"]
assert table1["count"] >= 3, table1
for q in ("p50", "p90", "p99"):
    assert q in table1, table1
gauges = metrics["gauges"]
assert "serve.inflight" in gauges, gauges
# Per-reactor-shard connection gauges must exist and sum to the active-connection gauge
# (this stats query itself holds one connection open, so the sum is >= 1).
shard_sum = sum(v for k, v in gauges.items()
                if k.startswith("serve.connections.active.shard"))
active = gauges["serve.connections.active"]
assert shard_sum == active >= 1, {k: v for k, v in gauges.items()
                                  if k.startswith("serve.connections")}
EOF

# Per-request spans: --trace echoes the stage breakdown with non-negative durations.
TRACE="$("${CLI}" --port "${PORT}" --trace table1 '{"n": 4}')" || fail "trace query errored"
python3 - "$TRACE" <<'EOF' || fail "trace echo malformed"
import json, sys
trace = json.loads(sys.argv[1])["trace"]
assert trace["total_ms"] >= 0, trace
stages = {s["stage"]: s["ms"] for s in trace["stages"]}
assert "parse" in stages and "cache" in stages, stages
assert all(ms >= 0 for ms in stages.values()), stages
EOF

# Graceful shutdown: SIGTERM drains in-flight work and exits 0.
kill -TERM "${DAEMON_PID}"
wait "${DAEMON_PID}"
DAEMON_EXIT=$?
[ "${DAEMON_EXIT}" = 0 ] || fail "probcond exit ${DAEMON_EXIT} on SIGTERM, want 0"
grep -q 'probcond draining' "${LOG}" || fail "no drain message in daemon log"
grep -q 'probcond stats:' "${LOG}" || fail "no stats line in daemon log"

# The shutdown path writes a final metrics dump to --metrics-path; it must be a complete,
# parseable metrics document (write-temp-then-rename, so never torn).
python3 - "${METRICS}" <<'EOF' || fail "final --metrics-path dump missing or malformed"
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["counters"]["serve.requests"] >= 1, doc["counters"]
assert "serve.latency_ms" in doc["histograms"], sorted(doc["histograms"])
EOF
trap 'rm -f "${LOG}" "${METRICS}"' EXIT

if [ "${FAILURES}" -ne 0 ]; then
  echo "serve smoke test: ${FAILURES} failure(s); daemon log:" >&2
  cat "${LOG}" >&2
  exit 1
fi
echo "serve smoke test: all checks passed"
