#!/usr/bin/env bash
# Check-only clang-format gate.
#
# Scope: files changed since $BASE_REF (default: merge-base with origin/main, falling back
# to HEAD~1, falling back to the full tree with --all). Scoping keeps the gate useful
# without ever forcing a mass reformat: the tree predates .clang-format, and untouched
# files stay untouched.
#
#   tools/check_format.sh                # changed files only (CI default)
#   tools/check_format.sh --all         # every tracked source file
#   BASE_REF=origin/main tools/check_format.sh
#
# Exit codes: 0 clean or skipped (no clang-format / nothing to check), 1 format diffs.

set -u

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check_format: $CLANG_FORMAT not found; skipping (CI installs it)" >&2
  exit 0
fi

list_changed_files() {
  local base="${BASE_REF:-}"
  if [ -z "$base" ]; then
    if git rev-parse --verify -q origin/main >/dev/null; then
      base="$(git merge-base HEAD origin/main)"
    elif git rev-parse --verify -q HEAD~1 >/dev/null; then
      base="HEAD~1"
    else
      git ls-files -- '*.h' '*.hpp' '*.cc' '*.cpp'
      return
    fi
  fi
  git diff --name-only --diff-filter=ACMR "$base" -- '*.h' '*.hpp' '*.cc' '*.cpp'
}

if [ "${1:-}" = "--all" ]; then
  files="$(git ls-files -- '*.h' '*.hpp' '*.cc' '*.cpp')"
else
  files="$(list_changed_files)"
fi

# Fixture snippets are deliberately non-conforming rule bait; never format-check them.
files="$(printf '%s\n' "$files" | grep -v '^tests/lint/fixtures/' || true)"

if [ -z "$files" ]; then
  echo "check_format: no source files to check"
  exit 0
fi

status=0
while IFS= read -r file; do
  [ -f "$file" ] || continue
  if ! "$CLANG_FORMAT" --dry-run -Werror "$file" >/dev/null 2>&1; then
    echo "check_format: needs formatting: $file" >&2
    "$CLANG_FORMAT" --dry-run -Werror "$file" 2>&1 | head -20 >&2
    status=1
  fi
done <<< "$files"

if [ "$status" -eq 0 ]; then
  echo "check_format: clean ($(printf '%s\n' "$files" | wc -l | tr -d ' ') files)"
fi
exit "$status"
