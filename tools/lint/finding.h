// Finding: one rule violation at a file:line:col anchor.

#ifndef PROBCON_TOOLS_LINT_FINDING_H_
#define PROBCON_TOOLS_LINT_FINDING_H_

#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace probcon::lint {

// One witness edge of the lock-order graph attached to a probcon-lock-order finding.
struct FindingEdge {
  std::string from;  // mutex id acquired first
  std::string to;    // mutex id acquired while `from` is held
  std::string path;  // witness site
  int line = 0;
};

struct Finding {
  Finding() = default;
  Finding(std::string rule_in, std::string path_in, int line_in, int col_in,
          std::string token_in, std::string message_in)
      : rule(std::move(rule_in)),
        path(std::move(path_in)),
        line(line_in),
        col(col_in),
        token(std::move(token_in)),
        message(std::move(message_in)) {}

  std::string rule;     // e.g. "probcon-determinism"
  std::string path;     // repo-relative, forward slashes
  int line = 0;
  int col = 0;
  std::string token;    // the offending token (baseline identity; stable across messages)
  std::string message;  // human explanation with the suggested fix
  // "warning" (default) or "error". Severity does not change exit codes — every
  // unbaselined finding fails — it classifies machine output (see docs/LINTING.md).
  std::string severity = "warning";
  std::vector<FindingEdge> edges;  // lock-order witnesses (probcon-lock-order only)

  friend bool operator<(const Finding& a, const Finding& b) {
    return std::tie(a.path, a.line, a.col, a.rule, a.token) <
           std::tie(b.path, b.line, b.col, b.rule, b.token);
  }
  friend bool operator==(const Finding& a, const Finding& b) {
    return std::tie(a.path, a.line, a.col, a.rule, a.token) ==
           std::tie(b.path, b.line, b.col, b.rule, b.token);
  }
};

// "path:line:col: warning: message [rule]" — the gcc-style shape editors and CI annotate.
std::string FormatHuman(const Finding& finding);

// Deterministic JSON array of {rule, path, line, col, token, message} objects.
std::string FormatJson(const std::vector<Finding>& findings);

}  // namespace probcon::lint

#endif  // PROBCON_TOOLS_LINT_FINDING_H_
