// Finding: one rule violation at a file:line:col anchor.

#ifndef PROBCON_TOOLS_LINT_FINDING_H_
#define PROBCON_TOOLS_LINT_FINDING_H_

#include <string>
#include <tuple>
#include <vector>

namespace probcon::lint {

struct Finding {
  std::string rule;     // e.g. "probcon-determinism"
  std::string path;     // repo-relative, forward slashes
  int line = 0;
  int col = 0;
  std::string token;    // the offending token (baseline identity; stable across messages)
  std::string message;  // human explanation with the suggested fix

  friend bool operator<(const Finding& a, const Finding& b) {
    return std::tie(a.path, a.line, a.col, a.rule, a.token) <
           std::tie(b.path, b.line, b.col, b.rule, b.token);
  }
  friend bool operator==(const Finding& a, const Finding& b) {
    return std::tie(a.path, a.line, a.col, a.rule, a.token) ==
           std::tie(b.path, b.line, b.col, b.rule, b.token);
  }
};

// "path:line:col: warning: message [rule]" — the gcc-style shape editors and CI annotate.
std::string FormatHuman(const Finding& finding);

// Deterministic JSON array of {rule, path, line, col, token, message} objects.
std::string FormatJson(const std::vector<Finding>& findings);

}  // namespace probcon::lint

#endif  // PROBCON_TOOLS_LINT_FINDING_H_
