// Baseline support: grandfathered findings that do not fail the build.
//
// The checked-in baseline (tools/lint/baseline.txt) is the debt ledger: a finding listed
// there is reported as "baselined" but does not affect the exit code. New findings always
// fail. Policy: the baseline only ever shrinks — regenerate with --write-baseline after
// deleting a grandfathered site, never to absorb a new one.
//
// Format: one tab-separated record per line, '#' comments and blank lines ignored:
//   rule<TAB>path<TAB>line<TAB>token

#ifndef PROBCON_TOOLS_LINT_BASELINE_H_
#define PROBCON_TOOLS_LINT_BASELINE_H_

#include <string>
#include <vector>

#include "tools/lint/finding.h"

namespace probcon::lint {

struct Baseline {
  // Sorted (rule, path, line, token) keys.
  std::vector<std::string> entries;

  bool Contains(const Finding& finding) const;
};

std::string BaselineKey(const Finding& finding);

// Parses baseline text. Malformed lines are skipped (a lint over the linter's own input
// would be circular); `Serialize` always writes well-formed records.
Baseline ParseBaseline(const std::string& text);

std::string SerializeBaseline(const std::vector<Finding>& findings);

// Splits `findings` into (new, baselined) according to `baseline`.
void ApplyBaseline(const Baseline& baseline, const std::vector<Finding>& findings,
                   std::vector<Finding>& fresh, std::vector<Finding>& baselined);

}  // namespace probcon::lint

#endif  // PROBCON_TOOLS_LINT_BASELINE_H_
