#include "tools/lint/rules.h"

#include <algorithm>
#include <map>

#include "tools/lint/lexer.h"
#include "tools/lint/suppressions.h"
#include "tools/lint/token.h"

namespace probcon::lint {
namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool PathInList(const std::string& path, const std::vector<std::string>& entries) {
  for (const std::string& entry : entries) {
    if (path == entry || EndsWith(path, "/" + entry)) {
      return true;
    }
  }
  return false;
}

// Like PathInList, but entries ending in '/' match as directory prefixes.
bool PathInScopedList(const std::string& path, const std::vector<std::string>& entries) {
  for (const std::string& entry : entries) {
    if (!entry.empty() && entry.back() == '/') {
      if (StartsWith(path, entry)) {
        return true;
      }
    } else if (path == entry || EndsWith(path, "/" + entry)) {
      return true;
    }
  }
  return false;
}

bool IsHeader(const std::string& path) { return EndsWith(path, ".h") || EndsWith(path, ".hpp"); }

// Identifiers banned outright by R1, with the reasons shown to the user.
const std::map<std::string, std::string>& BannedEntropyIdents() {
  static const std::map<std::string, std::string> kBanned = {
      {"random_device", "ambient entropy; seed a probcon::Rng instead (src/common/rng.h)"},
      {"default_random_engine", "implementation-defined engine; use probcon::Rng"},
      {"random_shuffle", "implementation-defined shuffle; use Rng::Shuffle"},
      {"srand", "global C RNG; use a seeded probcon::Rng"},
      {"system_clock", "wall clock; sim time comes from the Simulator, never the host"},
      {"steady_clock", "host clock; results must be a pure function of seeds"},
      {"high_resolution_clock", "host clock; results must be a pure function of seeds"},
      {"gettimeofday", "wall clock; results must be a pure function of seeds"},
      {"clock_gettime", "wall clock; results must be a pure function of seeds"},
      {"timespec_get", "wall clock; results must be a pure function of seeds"},
  };
  return kBanned;
}

// Include directives banned by R1 ("include <ctime>" etc. after '#' stripping).
const std::vector<std::string>& BannedIncludes() {
  static const std::vector<std::string> kBanned = {"<ctime>", "<time.h>", "<sys/time.h>"};
  return kBanned;
}

class RuleRunner {
 public:
  RuleRunner(const std::string& path, const std::vector<Token>& tokens,
             const LintOptions& options)
      : path_(path), options_(options) {
    for (const Token& token : tokens) {
      if (token.kind != TokenKind::kComment && token.kind != TokenKind::kPpDirective) {
        code_.push_back(&token);
      }
      if (token.kind == TokenKind::kPpDirective) {
        directives_.push_back(&token);
      }
    }
  }

  std::vector<Finding> Run() {
    if (!PathInList(path_, options_.entropy_allowlist)) {
      allow_steady_clock_ = PathInScopedList(path_, options_.monotonic_clock_allowlist);
      CheckDeterminism();
    }
    CheckUnorderedIteration();
    if (StartsWith(path_, options_.check_prefix)) {
      CheckAssertHygiene();
    }
    if (IsHeader(path_)) {
      CheckUsingNamespace();
    }
    if (!PathInList(path_, options_.ownership_allowlist)) {
      CheckOwnership();
    }
    if (StartsWith(path_, options_.kahan_prefix)) {
      CheckKahan();
    }
    return std::move(findings_);
  }

 private:
  const Token* At(size_t i) const { return i < code_.size() ? code_[i] : nullptr; }

  void Report(const std::string& rule, const Token& token, const std::string& message) {
    findings_.push_back(Finding{rule, path_, token.line, token.col, token.text, message});
  }

  // R1: no ambient entropy, no host clocks.
  void CheckDeterminism() {
    for (size_t i = 0; i < code_.size(); ++i) {
      const Token& tok = *code_[i];
      if (tok.kind != TokenKind::kIdentifier) {
        continue;
      }
      const auto banned = BannedEntropyIdents().find(tok.text);
      if (banned != BannedEntropyIdents().end()) {
        if (tok.text == "steady_clock" && allow_steady_clock_) {
          continue;  // Scoped waiver: serving-layer deadline/latency clocks.
        }
        Report("probcon-determinism", tok, "'" + tok.text + "': " + banned->second);
        continue;
      }
      const Token* next = At(i + 1);
      if (next == nullptr || !next->IsPunct("(")) {
        continue;
      }
      // rand/time/clock are only banned as free functions; a member spelled `.clock()` is
      // somebody's API, not the C library.
      const Token* prev = i > 0 ? code_[i - 1] : nullptr;
      if (prev != nullptr && (prev->IsPunct(".") || prev->IsPunct("->"))) {
        continue;
      }
      if (tok.text == "rand") {
        Report("probcon-determinism", tok, "'rand()': global C RNG; use a seeded probcon::Rng");
      } else if (tok.text == "time") {
        const Token* arg = At(i + 2);
        if (arg != nullptr &&
            (arg->IsIdent("nullptr") || arg->IsIdent("NULL") ||
             (arg->kind == TokenKind::kNumber && arg->text == "0"))) {
          Report("probcon-determinism", tok,
                 "'time(" + arg->text + ")': wall clock; results must be a pure function of seeds");
        }
      } else if (tok.text == "clock") {
        const Token* close = At(i + 2);
        if (close != nullptr && close->IsPunct(")")) {
          Report("probcon-determinism", tok, "'clock()': host CPU clock; use simulator time");
        }
      }
    }
    for (const Token* directive : directives_) {
      for (const std::string& include : BannedIncludes()) {
        if (directive->text.find("include") != std::string::npos &&
            directive->text.find(include) != std::string::npos) {
          Report("probcon-determinism", *directive,
                 "#include " + include + ": wall-clock API surface; keep host time out of "
                 "deterministic code");
        }
      }
    }
  }

  // R2: iteration over unordered containers is nondeterministically ordered.
  //
  // Heuristic, file-local type tracking: every name declared right after an
  // `unordered_{map,set,multimap,multiset}<...>` spelling (variables, members, parameters,
  // and functions returning one) is treated as unordered; ranged-for ranges and .begin()
  // chains mentioning such a name fire. Sort keys first (vector of pairs, std::map) or
  // suppress with a reason if the order provably cannot reach committed results.
  void CheckUnorderedIteration() {
    const std::set<std::string> unordered_names = CollectUnorderedNames();
    if (unordered_names.empty()) {
      return;
    }

    for (size_t i = 0; i < code_.size(); ++i) {
      const Token& tok = *code_[i];
      if (tok.kind != TokenKind::kIdentifier) {
        continue;
      }
      if (tok.text == "for" && At(i + 1) != nullptr && At(i + 1)->IsPunct("(")) {
        CheckRangedFor(i, unordered_names);
        continue;
      }
      if (unordered_names.count(tok.text) == 0) {
        continue;
      }
      const Token* dot = At(i + 1);
      const Token* member = At(i + 2);
      if (dot != nullptr && member != nullptr && (dot->IsPunct(".") || dot->IsPunct("->")) &&
          (member->IsIdent("begin") || member->IsIdent("cbegin") || member->IsIdent("rbegin"))) {
        Report("probcon-unordered-iter", tok,
               "iterator walk over unordered container '" + tok.text +
                   "': iteration order is nondeterministic; sort keys first");
      }
    }
  }

  std::set<std::string> CollectUnorderedNames() {
    static const std::set<std::string> kUnorderedTypes = {
        "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
    std::set<std::string> names;
    for (size_t i = 0; i < code_.size(); ++i) {
      const Token& tok = *code_[i];
      if (tok.kind != TokenKind::kIdentifier || kUnorderedTypes.count(tok.text) == 0) {
        continue;
      }
      size_t j = i + 1;
      if (At(j) == nullptr || !At(j)->IsPunct("<")) {
        continue;
      }
      int depth = 0;
      for (; j < code_.size(); ++j) {
        if (code_[j]->IsPunct("<")) {
          ++depth;
        } else if (code_[j]->IsPunct(">")) {
          if (--depth == 0) {
            ++j;
            break;
          }
        }
      }
      // Skip cv/ref/pointer decoration between the type and the declared name.
      while (At(j) != nullptr &&
             (At(j)->IsPunct("&") || At(j)->IsPunct("*") || At(j)->IsPunct("&&") ||
              At(j)->IsIdent("const"))) {
        ++j;
      }
      const Token* name = At(j);
      if (name != nullptr && name->kind == TokenKind::kIdentifier) {
        names.insert(name->text);
      }
    }
    return names;
  }

  // Fires when the range expression of `for (decl : range)` mentions an unordered name.
  void CheckRangedFor(size_t for_index, const std::set<std::string>& unordered_names) {
    size_t i = for_index + 1;  // '('
    int depth = 0;
    bool pending_ternary = false;
    size_t colon = 0;
    for (; i < code_.size(); ++i) {
      const Token& tok = *code_[i];
      if (tok.IsPunct("(") || tok.IsPunct("{") || tok.IsPunct("[")) {
        ++depth;
      } else if (tok.IsPunct(")") || tok.IsPunct("}") || tok.IsPunct("]")) {
        if (--depth == 0) {
          return;  // classic for, or no colon found
        }
      } else if (depth == 1 && tok.IsPunct(";")) {
        // A ';' at top level before the ':' means either a classic for loop or a
        // range-for init-statement; in both cases keep scanning for a real ':'.
        continue;
      } else if (depth == 1 && tok.IsPunct("?")) {
        pending_ternary = true;
      } else if (depth == 1 && tok.IsPunct(":")) {
        if (pending_ternary) {
          pending_ternary = false;
          continue;
        }
        colon = i;
        break;
      }
    }
    if (colon == 0) {
      return;
    }
    for (i = colon + 1; i < code_.size(); ++i) {
      const Token& tok = *code_[i];
      if (tok.IsPunct("(") || tok.IsPunct("{") || tok.IsPunct("[")) {
        ++depth;
      } else if (tok.IsPunct(")") || tok.IsPunct("}") || tok.IsPunct("]")) {
        if (--depth == 0) {
          break;
        }
      } else if (tok.kind == TokenKind::kIdentifier && unordered_names.count(tok.text) > 0) {
        Report("probcon-unordered-iter", *code_[for_index],
               "ranged-for over unordered container '" + tok.text +
                   "': iteration order is nondeterministic; sort keys first");
        return;
      }
    }
  }

  // R3a: assert() compiles away under NDEBUG; production invariants must not.
  void CheckAssertHygiene() {
    for (size_t i = 0; i < code_.size(); ++i) {
      const Token& tok = *code_[i];
      if (tok.IsIdent("assert") && At(i + 1) != nullptr && At(i + 1)->IsPunct("(")) {
        Report("probcon-check", tok,
               "raw assert() vanishes under NDEBUG; use CHECK/DCHECK from src/common/check.h");
      }
    }
    for (const Token* directive : directives_) {
      if (directive->text.find("include") == std::string::npos) {
        continue;
      }
      if (directive->text.find("<cassert>") != std::string::npos ||
          directive->text.find("<assert.h>") != std::string::npos) {
        Report("probcon-check", *directive,
               "#include <cassert>: use CHECK/DCHECK from src/common/check.h instead");
      }
    }
  }

  // R3b: headers must not inject namespaces into every includer.
  void CheckUsingNamespace() {
    for (size_t i = 0; i + 2 < code_.size(); ++i) {
      if (code_[i]->IsIdent("using") && code_[i + 1]->IsIdent("namespace") &&
          code_[i + 2]->IsIdent("std")) {
        Report("probcon-using-namespace", *code_[i],
               "'using namespace std' in a header leaks into every includer");
      }
    }
  }

  // R4: naked new/delete. Values, containers, and unique_ptr own everything here.
  void CheckOwnership() {
    for (size_t i = 0; i < code_.size(); ++i) {
      const Token& tok = *code_[i];
      const Token* prev = i > 0 ? code_[i - 1] : nullptr;
      if (tok.IsIdent("new")) {
        if (prev != nullptr && prev->IsIdent("operator")) {
          continue;  // operator new overload declaration
        }
        Report("probcon-ownership", tok,
               "naked 'new'; use std::make_unique / containers for ownership");
      } else if (tok.IsIdent("delete")) {
        if (prev != nullptr && (prev->IsPunct("=") || prev->IsIdent("operator"))) {
          continue;  // `= delete` or operator delete
        }
        Report("probcon-ownership", tok,
               "naked 'delete'; let unique_ptr / containers release storage");
      }
    }
  }

  // R5: scalar double reductions inside loops in src/analysis/ must go through KahanSum —
  // naive accumulation loses exactly the low-order probability mass that sets the nines.
  // Tracks `double name` declarations per scope; `name += ...` in a deeper loop fires.
  // DP-style updates into subscripted cells (e[k] += ...) are not scalar reductions and are
  // ignored, as is accumulation at the declaration's own loop depth.
  void CheckKahan() {
    struct DoubleDecl {
      size_t brace_level;
      int loop_depth;
    };
    std::map<std::string, DoubleDecl> doubles;

    // Brace stack entries: true when the block is a loop body.
    std::vector<bool> blocks;
    int loop_depth = 0;
    // Loops whose body had no braces: each entry closes at the next ';' at paren depth 0.
    int braceless_loops = 0;
    bool pending_loop_block = false;  // set after for(...)/while(...)/do, before its body
    int paren_depth = 0;

    for (size_t i = 0; i < code_.size(); ++i) {
      const Token& tok = *code_[i];

      if (tok.IsIdent("for") || tok.IsIdent("while")) {
        // Skip the control parens, then decide braced vs braceless body.
        size_t j = i + 1;
        if (At(j) == nullptr || !At(j)->IsPunct("(")) {
          continue;
        }
        int depth = 0;
        for (; j < code_.size(); ++j) {
          if (code_[j]->IsPunct("(")) {
            ++depth;
          } else if (code_[j]->IsPunct(")")) {
            if (--depth == 0) {
              ++j;
              break;
            }
          }
        }
        const Token* body = At(j);
        if (body == nullptr || body->IsPunct(";")) {
          i = j > 0 ? j - 1 : i;  // `while (...);` tail of do-while: no body
          continue;
        }
        if (body->IsPunct("{")) {
          pending_loop_block = true;
        } else {
          ++loop_depth;
          ++braceless_loops;
        }
        i = j - 1;
        continue;
      }
      if (tok.IsIdent("do")) {
        if (At(i + 1) != nullptr && At(i + 1)->IsPunct("{")) {
          pending_loop_block = true;
        }
        continue;
      }

      if (tok.IsPunct("(")) {
        ++paren_depth;
      } else if (tok.IsPunct(")")) {
        --paren_depth;
      } else if (tok.IsPunct("{")) {
        blocks.push_back(pending_loop_block);
        if (pending_loop_block) {
          ++loop_depth;
        }
        pending_loop_block = false;
      } else if (tok.IsPunct("}")) {
        if (!blocks.empty()) {
          if (blocks.back()) {
            --loop_depth;
          }
          blocks.pop_back();
        }
        for (auto it = doubles.begin(); it != doubles.end();) {
          it = it->second.brace_level > blocks.size() ? doubles.erase(it) : std::next(it);
        }
      } else if (tok.IsPunct(";") && paren_depth == 0 && braceless_loops > 0) {
        loop_depth -= braceless_loops;
        braceless_loops = 0;
      }

      if (tok.IsIdent("double")) {
        const Token* name = At(i + 1);
        const Token* after = At(i + 2);
        if (name != nullptr && name->kind == TokenKind::kIdentifier && after != nullptr &&
            (after->IsPunct("=") || after->IsPunct(";") || after->IsPunct(",") ||
             after->IsPunct(")") || after->IsPunct("{"))) {
          doubles[name->text] = DoubleDecl{blocks.size(), loop_depth};
        }
        continue;
      }

      if (tok.kind == TokenKind::kIdentifier && At(i + 1) != nullptr &&
          At(i + 1)->IsPunct("+=")) {
        const Token* prev = i > 0 ? code_[i - 1] : nullptr;
        if (prev != nullptr && (prev->IsPunct(".") || prev->IsPunct("->") || prev->IsPunct("::"))) {
          continue;  // member of some other object; type unknown
        }
        const auto decl = doubles.find(tok.text);
        if (decl != doubles.end() && loop_depth > decl->second.loop_depth) {
          Report("probcon-kahan", tok,
                 "raw double reduction '" + tok.text +
                     " += ...' in a loop; accumulate via KahanSum (src/prob/kahan.h) so "
                     "low-order mass survives");
        }
      }
    }
  }

  const std::string path_;
  const LintOptions& options_;
  bool allow_steady_clock_ = false;
  std::vector<const Token*> code_;
  std::vector<const Token*> directives_;
  std::vector<Finding> findings_;
};

}  // namespace

const std::set<std::string>& KnownRules() {
  static const std::set<std::string> kRules = {
      "probcon-determinism", "probcon-unordered-iter", "probcon-check",
      "probcon-using-namespace", "probcon-ownership", "probcon-kahan", "probcon-nolint",
      "probcon-lock-order", "probcon-blocking-under-lock", "probcon-guarded-field",
  };
  return kRules;
}

std::vector<Finding> LintSource(const std::string& path, const std::string& content,
                                const LintOptions& options) {
  const std::vector<Token> tokens = Lex(content);
  RuleRunner runner(path, tokens, options);
  std::vector<Finding> findings = runner.Run();

  std::vector<Finding> hygiene;
  const SuppressionSet suppressions = ParseSuppressions(path, tokens, KnownRules(), hygiene);
  std::vector<Finding> kept;
  kept.reserve(findings.size() + hygiene.size());
  for (Finding& finding : findings) {
    if (!suppressions.Suppresses(finding.rule, finding.line)) {
      kept.push_back(std::move(finding));
    }
  }
  for (Finding& finding : hygiene) {
    kept.push_back(std::move(finding));
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

}  // namespace probcon::lint
