// A small, self-contained C++ lexer for probcon-lint.
//
// This is not a conforming phase-3 translation: it tokenizes one file at a time, keeps
// comments and preprocessor directives as tokens (rules need them for NOLINT parsing and
// include checks), and never evaluates macros. It is exact about the things the rules depend
// on: comment and string boundaries (including raw strings and digit separators), multi-char
// operators ("::" vs ":"), and line/column positions.

#ifndef PROBCON_TOOLS_LINT_LEXER_H_
#define PROBCON_TOOLS_LINT_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "tools/lint/token.h"

namespace probcon::lint {

// Tokenizes `source`. Never throws: malformed input (unterminated string/comment) produces a
// best-effort token ending at EOF, so the rule layer always sees a complete stream.
std::vector<Token> Lex(std::string_view source);

}  // namespace probcon::lint

#endif  // PROBCON_TOOLS_LINT_LEXER_H_
