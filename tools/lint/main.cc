// probcon-lint: determinism & safety static analysis for the probcon tree.
//
//   probcon-lint --root . --baseline tools/lint/baseline.txt        # CI invocation
//   probcon-lint --root . --json src                                # machine output
//   probcon-lint --root . --write-baseline                          # regenerate the ledger
//
// Exit codes: 0 clean (baselined findings allowed), 1 new findings, 2 usage or IO error.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/baseline.h"
#include "tools/lint/concurrency.h"
#include "tools/lint/driver.h"
#include "tools/lint/finding.h"
#include "tools/lint/rules.h"

namespace {

constexpr const char* kUsage = R"(usage: probcon-lint [options] [dir-or-file ...]

Lints src/ tests/ bench/ examples/ under --root (default: current directory)
against the probcon determinism & safety rules; see docs/LINTING.md.

options:
  --root DIR             repository root to lint (default ".")
  --baseline FILE        tolerate findings listed in FILE (they report but do not fail)
  --write-baseline       rewrite --baseline FILE (default tools/lint/baseline.txt) from
                         the current findings, then exit 0
  --json                 machine-readable output (new findings only)
  --dump-lock-graph      print the global lock-order graph (R6 input) instead of linting;
                         honors --json. Exit 0 always.
  -h, --help             this message
)";

struct Args {
  std::string root = ".";
  std::string baseline_path;
  bool write_baseline = false;
  bool json = false;
  bool dump_lock_graph = false;
  std::vector<std::string> dirs;
};

bool ParseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      args.root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      args.baseline_path = argv[++i];
    } else if (arg == "--write-baseline") {
      args.write_baseline = true;
    } else if (arg == "--json") {
      args.json = true;
    } else if (arg == "--dump-lock-graph") {
      args.dump_lock_graph = true;
    } else if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "probcon-lint: unknown option '" << arg << "'\n" << kUsage;
      return false;
    } else {
      args.dirs.push_back(arg);
    }
  }
  if (args.dirs.empty()) {
    args.dirs = probcon::lint::DefaultLintDirs();
  }
  if (args.write_baseline && args.baseline_path.empty()) {
    args.baseline_path = "tools/lint/baseline.txt";
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace probcon::lint;  // NOLINT: tool entry point, not a header

  Args args;
  if (!ParseArgs(argc, argv, args)) {
    return 2;
  }

  if (args.dump_lock_graph) {
    std::vector<Finding> io_findings;
    const std::vector<SourceFile> sources = ReadTree(args.root, args.dirs, &io_findings);
    for (const Finding& finding : io_findings) {
      std::cerr << FormatHuman(finding) << "\n";
    }
    std::cout << DumpLockGraph(BuildModel(sources), args.json);
    return 0;
  }

  const LintOptions options;
  const std::vector<Finding> all = LintTree(args.root, args.dirs, options);

  if (args.write_baseline) {
    std::ofstream out(args.baseline_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "probcon-lint: cannot write baseline " << args.baseline_path << "\n";
      return 2;
    }
    out << SerializeBaseline(all);
    std::cerr << "probcon-lint: wrote " << all.size() << " baseline entr"
              << (all.size() == 1 ? "y" : "ies") << " to " << args.baseline_path << "\n";
    return 0;
  }

  Baseline baseline;
  if (!args.baseline_path.empty()) {
    std::ifstream in(args.baseline_path, std::ios::binary);
    if (!in) {
      std::cerr << "probcon-lint: cannot read baseline " << args.baseline_path << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    baseline = ParseBaseline(buffer.str());
  }

  std::vector<Finding> fresh;
  std::vector<Finding> baselined;
  ApplyBaseline(baseline, all, fresh, baselined);

  if (args.json) {
    std::cout << FormatJson(fresh);
  } else {
    for (const Finding& finding : fresh) {
      std::cout << FormatHuman(finding) << "\n";
    }
    for (const Finding& finding : baselined) {
      std::cout << FormatHuman(finding) << " (baselined)\n";
    }
    std::cerr << "probcon-lint: " << fresh.size() << " new finding"
              << (fresh.size() == 1 ? "" : "s") << ", " << baselined.size() << " baselined\n";
  }
  return fresh.empty() ? 0 : 1;
}
