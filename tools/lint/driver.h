// Tree walking + file IO for probcon-lint.

#ifndef PROBCON_TOOLS_LINT_DRIVER_H_
#define PROBCON_TOOLS_LINT_DRIVER_H_

#include <string>
#include <vector>

#include "tools/lint/concurrency.h"
#include "tools/lint/finding.h"
#include "tools/lint/rules.h"

namespace probcon::lint {

// Default directories linted when none are given on the command line.
const std::vector<std::string>& DefaultLintDirs();

// Recursively collects .h/.hpp/.cc/.cpp files under `root`/`dir` for each dir, returning
// repo-relative forward-slash paths in sorted order (deterministic across platforms).
// Nonexistent dirs are skipped (a fixture mini-tree need not have all four).
std::vector<std::string> CollectFiles(const std::string& root,
                                      const std::vector<std::string>& dirs);

// Reads every collected file into memory. Unreadable files produce a probcon-io finding in
// `io_findings` (when non-null) so CI never silently skips anything.
std::vector<SourceFile> ReadTree(const std::string& root, const std::vector<std::string>& dirs,
                                 std::vector<Finding>* io_findings);

// Lints every collected file. Returns sorted findings; files that cannot be read produce a
// probcon-io finding so CI never silently skips anything.
std::vector<Finding> LintTree(const std::string& root, const std::vector<std::string>& dirs,
                              const LintOptions& options = LintOptions());

}  // namespace probcon::lint

#endif  // PROBCON_TOOLS_LINT_DRIVER_H_
