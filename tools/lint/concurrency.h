// Tree-level concurrency analysis for probcon-lint: rules R6-R8.
//
// Unlike R1-R5 (token rules, one file at a time), the concurrency rules reason about the
// WHOLE tree at once: a lock-order cycle is by nature a property of two functions that may
// live in different translation units. The pipeline is
//
//   BuildModel(all files)  ->  ClassTable + merged FunctionInfos      (tools/lint/parser.h)
//   AnalyzeConcurrency     ->  findings
//     R6 probcon-lock-order         lock-order graph cycles (severity: error)
//         edges: nested RAII acquisitions, caller-held x callee-transitive-acquires,
//         and declared PROBCON_ACQUIRED_BEFORE/AFTER edges. Cycles are reported once per
//         strongly connected component with every witness edge attached to the finding.
//     R7 probcon-blocking-under-lock  blocking operation while holding a lock
//         condition_variable waits on a DIFFERENT mutex than the one the wait releases,
//         thread joins, sleeps, socket/poll syscalls, ThreadPool::ParallelFor/Join,
//         Channel round trips — directly or through any resolvable call chain.
//     R8 probcon-guarded-field      PROBCON_GUARDED_BY field touched without its mutex
//         (constructors/destructors of the owning class are exempt, matching clang).
//
// The analysis is deliberately instance-insensitive: mutex identity is `Class::member`,
// so two locks of the same member on different objects look identical. That trades a
// class of false negatives (per-instance hand-over-hand locking) for zero-configuration
// whole-tree checking, which is the right trade for this codebase (no such pattern).

#ifndef PROBCON_TOOLS_LINT_CONCURRENCY_H_
#define PROBCON_TOOLS_LINT_CONCURRENCY_H_

#include <map>
#include <string>
#include <vector>

#include "tools/lint/finding.h"
#include "tools/lint/parser.h"

namespace probcon::lint {

struct SourceFile {
  std::string path;     // repo-relative, forward slashes
  std::string content;  // raw bytes
};

struct ConcurrencyModel {
  ClassTable classes;
  // Function name -> merged info. Overloads and redeclarations merge their body events
  // (conservative union). Lambda bodies are separate entries ("Outer::<lambda:LINE>").
  std::map<std::string, FunctionInfo> functions;
};

// One edge of the global lock-order graph, with its witness site.
struct LockGraphEdge {
  std::string from;  // mutex id acquired first
  std::string to;    // mutex id acquired while `from` is held
  std::string path;  // witness file ("" for declared edges from unmerged headers)
  int line = 0;
  // "local": nested RAII acquisition inside one body. "call": caller holds `from` at a
  // call whose callee transitively acquires `to`. "declared": PROBCON_ACQUIRED_BEFORE /
  // PROBCON_ACQUIRED_AFTER annotation.
  std::string kind;
};

// Lexes and parses every file into one model. Never fails: files that do not parse as
// C++ contribute whatever structure was recoverable.
ConcurrencyModel BuildModel(const std::vector<SourceFile>& files);

// The deduplicated lock-order graph (sorted, deterministic). Exposed for --dump-lock-graph
// and the golden test; AnalyzeConcurrency builds on the same edges.
std::vector<LockGraphEdge> BuildLockGraph(const ConcurrencyModel& model);

// Runs R6-R8 over the model. Findings are sorted and deduplicated; suppression filtering
// is the caller's job (the driver re-uses the per-file NOLINT parse).
std::vector<Finding> AnalyzeConcurrency(const ConcurrencyModel& model);

// Renders the lock-order graph for --dump-lock-graph: human text or JSON
// {"nodes": [...], "edges": [{from,to,kind,path,line}...], "node_count": N, "edge_count": M}.
std::string DumpLockGraph(const ConcurrencyModel& model, bool json);

}  // namespace probcon::lint

#endif  // PROBCON_TOOLS_LINT_CONCURRENCY_H_
