#include "tools/lint/lexer.h"

#include <array>
#include <cctype>

namespace probcon::lint {
namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// String-literal encoding prefixes after which a '"' starts a (possibly raw) literal.
bool IsEncodingPrefix(std::string_view ident) {
  return ident == "u8" || ident == "u" || ident == "U" || ident == "L";
}

class Cursor {
 public:
  explicit Cursor(std::string_view source) : source_(source) {}

  bool AtEnd() const { return pos_ >= source_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }

  char Advance() {
    const char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  int line() const { return line_; }
  int col() const { return col_; }
  size_t pos() const { return pos_; }
  std::string_view Slice(size_t from, size_t to) const { return source_.substr(from, to - from); }

 private:
  std::string_view source_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : cur_(source) {}

  std::vector<Token> Run() {
    while (!cur_.AtEnd()) {
      const char c = cur_.Peek();
      if (c == '\n') {
        cur_.Advance();
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        cur_.Advance();
        continue;
      }
      MarkToken();
      if (c == '#' && at_line_start_) {
        LexPpDirective();
      } else if (c == '/' && cur_.Peek(1) == '/') {
        LexLineComment();
      } else if (c == '/' && cur_.Peek(1) == '*') {
        LexBlockComment();
      } else if (c == '"') {
        LexString();
      } else if (c == '\'') {
        LexCharLiteral();
      } else if (IsDigit(c) || (c == '.' && IsDigit(cur_.Peek(1)))) {
        LexNumber();
      } else if (IsIdentStart(c)) {
        LexIdentifierOrPrefixedString();
      } else {
        LexPunct();
      }
      at_line_start_ = false;
    }
    return std::move(tokens_);
  }

 private:
  void MarkToken() {
    token_line_ = cur_.line();
    token_col_ = cur_.col();
  }

  void Emit(TokenKind kind, std::string text) {
    tokens_.push_back(Token{kind, std::move(text), token_line_, token_col_});
  }

  void LexPpDirective() {
    cur_.Advance();  // '#'
    std::string text;
    // A directive runs to end of line, honoring backslash continuations. Comments inside the
    // directive are dropped so "#include <ctime> /* rand */" keeps only the include text.
    while (!cur_.AtEnd()) {
      const char c = cur_.Peek();
      if (c == '\\' && cur_.Peek(1) == '\n') {
        cur_.Advance();
        cur_.Advance();
        text += ' ';
        continue;
      }
      if (c == '\n') {
        break;
      }
      if (c == '/' && cur_.Peek(1) == '/') {
        while (!cur_.AtEnd() && cur_.Peek() != '\n') {
          cur_.Advance();
        }
        break;
      }
      if (c == '/' && cur_.Peek(1) == '*') {
        MarkToken();
        LexBlockComment();
        tokens_.pop_back();  // directive-internal comment; not a standalone token
        continue;
      }
      text += cur_.Advance();
    }
    Emit(TokenKind::kPpDirective, std::move(text));
  }

  void LexLineComment() {
    cur_.Advance();
    cur_.Advance();  // "//"
    std::string text;
    while (!cur_.AtEnd() && cur_.Peek() != '\n') {
      text += cur_.Advance();
    }
    Emit(TokenKind::kComment, std::move(text));
  }

  void LexBlockComment() {
    cur_.Advance();
    cur_.Advance();  // "/*"
    std::string text;
    while (!cur_.AtEnd()) {
      if (cur_.Peek() == '*' && cur_.Peek(1) == '/') {
        cur_.Advance();
        cur_.Advance();
        break;
      }
      text += cur_.Advance();
    }
    Emit(TokenKind::kComment, std::move(text));
  }

  void LexString() {
    cur_.Advance();  // '"'
    std::string text;
    while (!cur_.AtEnd()) {
      const char c = cur_.Peek();
      if (c == '\\' && !cur_.AtEnd()) {
        text += cur_.Advance();
        if (!cur_.AtEnd()) {
          text += cur_.Advance();
        }
        continue;
      }
      if (c == '"' || c == '\n') {
        break;
      }
      text += cur_.Advance();
    }
    if (!cur_.AtEnd() && cur_.Peek() == '"') {
      cur_.Advance();
    }
    Emit(TokenKind::kString, std::move(text));
  }

  // R"delim( ... )delim" — nothing inside is escaped; only the exact )delim" closer ends it.
  void LexRawString() {
    cur_.Advance();  // '"'
    std::string delim;
    while (!cur_.AtEnd() && cur_.Peek() != '(') {
      delim += cur_.Advance();
    }
    if (!cur_.AtEnd()) {
      cur_.Advance();  // '('
    }
    const std::string closer = ")" + delim + "\"";
    std::string text;
    while (!cur_.AtEnd()) {
      if (cur_.Peek() == ')') {
        bool matches = true;
        for (size_t i = 0; i < closer.size(); ++i) {
          if (cur_.Peek(i) != closer[i]) {
            matches = false;
            break;
          }
        }
        if (matches) {
          for (size_t i = 0; i < closer.size(); ++i) {
            cur_.Advance();
          }
          Emit(TokenKind::kRawString, std::move(text));
          return;
        }
      }
      text += cur_.Advance();
    }
    Emit(TokenKind::kRawString, std::move(text));  // unterminated; best effort
  }

  void LexCharLiteral() {
    cur_.Advance();  // '\''
    std::string text;
    while (!cur_.AtEnd()) {
      const char c = cur_.Peek();
      if (c == '\\') {
        text += cur_.Advance();
        if (!cur_.AtEnd()) {
          text += cur_.Advance();
        }
        continue;
      }
      if (c == '\'' || c == '\n') {
        break;
      }
      text += cur_.Advance();
    }
    if (!cur_.AtEnd() && cur_.Peek() == '\'') {
      cur_.Advance();
    }
    Emit(TokenKind::kCharLiteral, std::move(text));
  }

  void LexNumber() {
    std::string text;
    text += cur_.Advance();
    while (!cur_.AtEnd()) {
      const char c = cur_.Peek();
      if (IsIdentChar(c) || c == '.') {
        text += cur_.Advance();
        continue;
      }
      // Digit separator: a '\'' between digit-ish characters is part of the number
      // (15'000.0), never the start of a char literal.
      if (c == '\'' && IsIdentChar(cur_.Peek(1))) {
        text += cur_.Advance();
        continue;
      }
      // Exponent signs: 1e-9, 0x1.8p+3.
      if ((c == '+' || c == '-') && !text.empty() &&
          (text.back() == 'e' || text.back() == 'E' || text.back() == 'p' || text.back() == 'P')) {
        text += cur_.Advance();
        continue;
      }
      break;
    }
    Emit(TokenKind::kNumber, std::move(text));
  }

  void LexIdentifierOrPrefixedString() {
    std::string text;
    while (!cur_.AtEnd() && IsIdentChar(cur_.Peek())) {
      text += cur_.Advance();
    }
    if (cur_.Peek() == '"') {
      // R"(...)" and friends: uR, u8R, LR, UR are raw; u8/u/U/L alone prefix ordinary strings.
      if (!text.empty() && text.back() == 'R' &&
          (text.size() == 1 || IsEncodingPrefix(text.substr(0, text.size() - 1)))) {
        LexRawString();
        return;
      }
      if (IsEncodingPrefix(text)) {
        LexString();
        return;
      }
    }
    Emit(TokenKind::kIdentifier, std::move(text));
  }

  void LexPunct() {
    // Longest-match over the multi-char operators the rules care about. '<' and '>' are
    // always single tokens so template-argument balancing stays simple ("map<int,set<T>>"
    // closes with two '>' tokens, not one ">>").
    static constexpr std::array<std::string_view, 18> kMulti = {
        "...", "->*", "::", "->", "+=", "-=", "*=", "/=", "%=",
        "&=",  "|=",  "^=", "==", "!=", "&&", "||", "++", "--",
    };
    for (const auto op : kMulti) {
      bool matches = true;
      for (size_t i = 0; i < op.size(); ++i) {
        if (cur_.Peek(i) != op[i]) {
          matches = false;
          break;
        }
      }
      if (matches) {
        std::string text;
        for (size_t i = 0; i < op.size(); ++i) {
          text += cur_.Advance();
        }
        Emit(TokenKind::kPunct, std::move(text));
        return;
      }
    }
    Emit(TokenKind::kPunct, std::string(1, cur_.Advance()));
  }

  Cursor cur_;
  std::vector<Token> tokens_;
  bool at_line_start_ = true;
  int token_line_ = 1;
  int token_col_ = 1;
};

}  // namespace

std::vector<Token> Lex(std::string_view source) { return Lexer(source).Run(); }

}  // namespace probcon::lint
