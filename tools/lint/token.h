// Token model for the probcon-lint lexer.
//
// probcon-lint deliberately lexes (rather than greps) the tree so that banned tokens inside
// comments, string literals, and raw strings never fire, and so rules can reason about real
// token adjacency (`time ( nullptr )`, `for ( x : m )`) instead of line shapes.

#ifndef PROBCON_TOOLS_LINT_TOKEN_H_
#define PROBCON_TOOLS_LINT_TOKEN_H_

#include <string>
#include <vector>

namespace probcon::lint {

enum class TokenKind {
  kIdentifier,   // identifiers and keywords (the rule layer decides which are keywords)
  kNumber,       // numeric literals, including digit separators (1'000'000) and exponents
  kString,       // "..." including encoding prefixes; text excludes the quotes
  kRawString,    // R"delim(...)delim"; text is the raw payload
  kCharLiteral,  // '...'
  kComment,      // // and /* */; text excludes the comment markers
  kPunct,        // operators and punctuation; multi-char ops are single tokens ("::", "+=")
  kPpDirective,  // a whole preprocessor line (with continuations), text excludes the '#'
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 1;  // 1-based line of the token's first character
  int col = 1;   // 1-based column of the token's first character

  bool IsIdent(const char* s) const { return kind == TokenKind::kIdentifier && text == s; }
  bool IsPunct(const char* s) const { return kind == TokenKind::kPunct && text == s; }
};

}  // namespace probcon::lint

#endif  // PROBCON_TOOLS_LINT_TOKEN_H_
