#include "tools/lint/baseline.h"

#include <algorithm>
#include <sstream>

namespace probcon::lint {

std::string BaselineKey(const Finding& finding) {
  std::ostringstream os;
  os << finding.rule << '\t' << finding.path << '\t' << finding.line << '\t' << finding.token;
  return os.str();
}

bool Baseline::Contains(const Finding& finding) const {
  return std::binary_search(entries.begin(), entries.end(), BaselineKey(finding));
}

Baseline ParseBaseline(const std::string& text) {
  Baseline baseline;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') {
      continue;
    }
    // A record has exactly three tabs: rule, path, line, token.
    if (std::count(line.begin(), line.end(), '\t') != 3) {
      continue;
    }
    baseline.entries.push_back(line);
  }
  std::sort(baseline.entries.begin(), baseline.entries.end());
  return baseline;
}

std::string SerializeBaseline(const std::vector<Finding>& findings) {
  std::vector<std::string> keys;
  keys.reserve(findings.size());
  for (const Finding& finding : findings) {
    keys.push_back(BaselineKey(finding));
  }
  std::sort(keys.begin(), keys.end());
  std::ostringstream os;
  os << "# probcon-lint baseline. Grandfathered findings only; this file only shrinks.\n"
     << "# Format: rule<TAB>path<TAB>line<TAB>token. Regenerate: probcon-lint --write-baseline\n";
  for (const std::string& key : keys) {
    os << key << '\n';
  }
  return os.str();
}

void ApplyBaseline(const Baseline& baseline, const std::vector<Finding>& findings,
                   std::vector<Finding>& fresh, std::vector<Finding>& baselined) {
  for (const Finding& finding : findings) {
    (baseline.Contains(finding) ? baselined : fresh).push_back(finding);
  }
}

}  // namespace probcon::lint
