#include "tools/lint/parser.h"

#include <algorithm>

namespace probcon::lint {
namespace {

const std::set<std::string>& ControlKeywords() {
  static const std::set<std::string> kWords = {
      "if",     "for",      "while",  "switch",   "return",   "sizeof",  "catch",
      "case",   "do",       "else",   "goto",     "new",      "delete",  "throw",
      "break",  "continue", "default", "co_return", "co_await", "co_yield",
      "alignof", "decltype", "typeid", "static_cast", "dynamic_cast",
      "const_cast", "reinterpret_cast", "void", "int", "bool", "char", "unsigned",
      "signed", "long", "short", "float", "double", "auto", "operator", "true",
      "false", "nullptr", "this", "not", "and", "or"};
  return kWords;
}

const std::set<std::string>& GuardTypes() {
  static const std::set<std::string> kTypes = {"lock_guard", "unique_lock", "scoped_lock",
                                               "shared_lock"};
  return kTypes;
}

const std::set<std::string>& MutexTypes() {
  static const std::set<std::string> kTypes = {"mutex", "shared_mutex", "recursive_mutex",
                                               "timed_mutex", "recursive_timed_mutex"};
  return kTypes;
}

bool IsProbconMacro(const std::string& text) { return text.rfind("PROBCON_", 0) == 0; }

bool IsIdent(const Token& t) { return t.kind == TokenKind::kIdentifier; }

// Strips comments and preprocessor lines: the structural passes reason about code only.
std::vector<Token> CodeTokens(const std::vector<Token>& tokens) {
  std::vector<Token> out;
  out.reserve(tokens.size());
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::kComment && t.kind != TokenKind::kPpDirective) {
      out.push_back(t);
    }
  }
  return out;
}

// c[i] is an opener ((, {, [). Returns the index one past its matching closer, treating the
// three bracket kinds as one pool (robust against the lexer's guarantees, not grammar).
size_t SkipBalanced(const std::vector<Token>& c, size_t i) {
  int depth = 0;
  for (; i < c.size(); ++i) {
    if (c[i].IsPunct("(") || c[i].IsPunct("{") || c[i].IsPunct("[")) {
      ++depth;
    } else if (c[i].IsPunct(")") || c[i].IsPunct("}") || c[i].IsPunct("]")) {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return c.size();
}

// c[i] == "<". Skips a template argument/parameter list, counting ">>" as two closers.
// Bails at ; or { so malformed input cannot run away.
size_t SkipAngles(const std::vector<Token>& c, size_t i) {
  int depth = 0;
  for (; i < c.size(); ++i) {
    if (c[i].IsPunct("<")) {
      ++depth;
    } else if (c[i].IsPunct(">")) {
      if (--depth == 0) {
        return i + 1;
      }
    } else if (c[i].IsPunct(">>")) {
      depth -= 2;
      if (depth <= 0) {
        return i + 1;
      }
    } else if (c[i].IsPunct("(") || c[i].IsPunct("[")) {
      i = SkipBalanced(c, i) - 1;
    } else if (c[i].IsPunct(";") || c[i].IsPunct("{")) {
      return i;  // malformed / not really a template list
    }
  }
  return c.size();
}

std::string JoinTokens(const std::vector<Token>& c, size_t b, size_t e) {
  std::string out;
  for (size_t i = b; i < e && i < c.size(); ++i) {
    out += c[i].text;
  }
  return out;
}

// Splits [b, e) on top-level commas (paren/brace/bracket/angle aware enough for args).
std::vector<std::pair<size_t, size_t>> SplitTopCommas(const std::vector<Token>& c, size_t b,
                                                      size_t e) {
  std::vector<std::pair<size_t, size_t>> parts;
  int depth = 0;
  int angle = 0;
  size_t start = b;
  for (size_t i = b; i < e; ++i) {
    if (c[i].IsPunct("(") || c[i].IsPunct("{") || c[i].IsPunct("[")) {
      ++depth;
    } else if (c[i].IsPunct(")") || c[i].IsPunct("}") || c[i].IsPunct("]")) {
      --depth;
    } else if (c[i].IsPunct("<")) {
      ++angle;
    } else if (c[i].IsPunct(">")) {
      angle = std::max(0, angle - 1);
    } else if (c[i].IsPunct(">>")) {
      angle = std::max(0, angle - 2);
    } else if (c[i].IsPunct(",") && depth == 0 && angle == 0) {
      parts.emplace_back(start, i);
      start = i + 1;
    }
  }
  if (start < e) {
    parts.emplace_back(start, e);
  }
  return parts;
}

}  // namespace

// ---------------------------------------------------------------------------- ClassTable

void ClassTable::Merge(const ClassInfo& info) {
  ClassInfo& dst = classes_[info.name];
  dst.name = info.name;
  dst.mutex_members.insert(info.mutex_members.begin(), info.mutex_members.end());
  for (const auto& [f, g] : info.guarded_fields) {
    dst.guarded_fields[f] = g;
  }
  dst.declared_order.insert(dst.declared_order.end(), info.declared_order.begin(),
                            info.declared_order.end());
  dst.methods.insert(info.methods.begin(), info.methods.end());
  for (const auto& [m, t] : info.member_type_tokens) {
    dst.member_type_tokens[m] = t;
  }
}

void ClassTable::Finalize() {
  by_unqualified_.clear();
  for (const auto& [name, info] : classes_) {
    const size_t pos = name.rfind("::");
    by_unqualified_[pos == std::string::npos ? name : name.substr(pos + 2)].push_back(name);
  }
  member_class_.clear();
  for (const auto& [name, info] : classes_) {
    for (const auto& [member, type_tokens] : info.member_type_tokens) {
      // The element class is the LAST type token that resolves: for
      // vector<unique_ptr<Worker>> that is Worker; for QueryServer& it is QueryServer.
      for (auto it = type_tokens.rbegin(); it != type_tokens.rend(); ++it) {
        if (const ClassInfo* hit = Resolve(*it, name)) {
          member_class_[name][member] = hit->name;
          break;
        }
      }
    }
  }
}

const ClassInfo* ClassTable::Find(const std::string& qualified) const {
  auto it = classes_.find(qualified);
  return it == classes_.end() ? nullptr : &it->second;
}

const ClassInfo* ClassTable::Resolve(const std::string& name,
                                     const std::string& context) const {
  if (name.empty()) {
    return nullptr;
  }
  if (const ClassInfo* hit = Find(name)) {
    return hit;
  }
  // Walk the context's enclosing scopes: A::B::C resolves X as A::B::C::X, A::B::X, A::X.
  std::string ctx = context;
  while (!ctx.empty()) {
    if (const ClassInfo* hit = Find(ctx + "::" + name)) {
      return hit;
    }
    const size_t pos = ctx.rfind("::");
    ctx = pos == std::string::npos ? "" : ctx.substr(0, pos);
  }
  // Unique unqualified match (only for unqualified names).
  if (name.find("::") == std::string::npos) {
    auto it = by_unqualified_.find(name);
    if (it != by_unqualified_.end() && it->second.size() == 1) {
      return Find(it->second[0]);
    }
  }
  return nullptr;
}

const std::string* ClassTable::MemberClass(const std::string& class_name,
                                           const std::string& member) const {
  auto it = member_class_.find(class_name);
  if (it == member_class_.end()) {
    return nullptr;
  }
  auto jt = it->second.find(member);
  return jt == it->second.end() ? nullptr : &jt->second;
}

// ------------------------------------------------------------------------ CollectClasses

namespace {

// Extracts mutex members, guarded fields, and declared order from one member declaration
// [b, e) (terminator excluded). `is_function_decl` suppresses the member-type registration
// (a method's parameter names are not members).
void ProcessMemberDecl(const std::vector<Token>& c, size_t b, size_t e,
                       bool is_function_decl, ClassInfo& ci) {
  // Declarator: last identifier before the first of "=", "{", or a PROBCON_ macro.
  size_t stop = e;
  for (size_t i = b; i < e; ++i) {
    if (c[i].IsPunct("=") || c[i].IsPunct("{") || (IsIdent(c[i]) && IsProbconMacro(c[i].text))) {
      stop = i;
      break;
    }
  }
  std::string declarator;
  size_t declarator_pos = e;
  for (size_t i = stop; i-- > b;) {
    if (IsIdent(c[i]) && !IsProbconMacro(c[i].text)) {
      declarator = c[i].text;
      declarator_pos = i;
      break;
    }
  }

  // Mutex members: a mutex type name in type position followed by the member name. The
  // name may itself spell a mutex type ("std::mutex mutex;" — the common case for nested
  // per-shard structs), so the follower is accepted when it is the declarator.
  for (size_t i = b; i + 1 < e; ++i) {
    if (IsIdent(c[i]) && MutexTypes().count(c[i].text) > 0 && IsIdent(c[i + 1]) &&
        (MutexTypes().count(c[i + 1].text) == 0 || i + 1 == declarator_pos)) {
      ci.mutex_members.insert(c[i + 1].text);
    }
  }

  if (!declarator.empty() && !is_function_decl) {
    std::vector<std::string> type_tokens;
    for (size_t i = b; i < declarator_pos; ++i) {
      if (IsIdent(c[i]) && !ControlKeywords().count(c[i].text)) {
        type_tokens.push_back(c[i].text);
      }
    }
    if (!type_tokens.empty()) {
      ci.member_type_tokens[declarator] = std::move(type_tokens);
    }
  }

  // Annotation macros attached to this declarator.
  for (size_t i = b; i < e; ++i) {
    if (!IsIdent(c[i]) || !IsProbconMacro(c[i].text) || i + 1 >= e || !c[i + 1].IsPunct("(")) {
      continue;
    }
    const size_t close = SkipBalanced(c, i + 1);
    const std::string& macro = c[i].text;
    if (macro == "PROBCON_GUARDED_BY" || macro == "PROBCON_PT_GUARDED_BY") {
      if (!declarator.empty()) {
        ci.guarded_fields[declarator] = JoinTokens(c, i + 2, close - 1);
      }
    } else if (macro == "PROBCON_ACQUIRED_BEFORE" || macro == "PROBCON_ACQUIRED_AFTER") {
      for (const auto& [ab, ae] : SplitTopCommas(c, i + 2, close - 1)) {
        ClassInfo::DeclaredEdge edge;
        edge.member = declarator;
        edge.other = JoinTokens(c, ab, ae);
        edge.member_first = macro == "PROBCON_ACQUIRED_BEFORE";
        edge.line = c[i].line;
        if (!edge.member.empty() && !edge.other.empty()) {
          ci.declared_order.push_back(edge);
        }
      }
    }
    i = close - 1;
  }
}

}  // namespace

std::vector<ClassInfo> CollectClasses(const std::vector<Token>& tokens) {
  const std::vector<Token> c = CodeTokens(tokens);
  std::vector<ClassInfo> out;

  struct Scope {
    bool is_class = false;
    size_t class_index = 0;  // into `out` when is_class
  };
  std::vector<Scope> stack;

  auto enclosing_class_name = [&]() -> std::string {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->is_class) {
        return out[it->class_index].name;
      }
    }
    return "";
  };

  size_t i = 0;
  const size_t n = c.size();
  while (i < n) {
    const Token& t = c[i];
    if (t.IsIdent("template")) {
      ++i;
      if (i < n && c[i].IsPunct("<")) {
        i = SkipAngles(c, i);
      }
      continue;
    }
    if (t.IsIdent("enum")) {
      // enum / enum class: skip the whole definition (its braces are not a scope we track).
      while (i < n && !c[i].IsPunct("{") && !c[i].IsPunct(";")) {
        ++i;
      }
      if (i < n && c[i].IsPunct("{")) {
        i = SkipBalanced(c, i);
      }
      continue;
    }
    if (t.IsIdent("class") || t.IsIdent("struct") || t.IsIdent("union")) {
      // Reject template parameters ("template <class T>") — handled by the template skip
      // above, but "class" can also appear in nested template params we didn't skip.
      size_t j = i + 1;
      // Skip attributes and alignas.
      while (j < n && c[j].IsPunct("[")) {
        j = SkipBalanced(c, j);
      }
      if (j < n && c[j].IsIdent("alignas") && j + 1 < n && c[j + 1].IsPunct("(")) {
        j = SkipBalanced(c, j + 1);
      }
      std::vector<std::string> parts;
      while (j < n && IsIdent(c[j]) && !c[j].IsIdent("final")) {
        parts.push_back(c[j].text);
        ++j;
        if (j < n && c[j].IsPunct("::")) {
          ++j;
        } else {
          break;
        }
      }
      if (j < n && c[j].IsIdent("final")) {
        ++j;
      }
      if (j < n && c[j].IsPunct(":")) {
        // Base clause: scan to the opening brace.
        int pd = 0;
        while (j < n && !(pd == 0 && (c[j].IsPunct("{") || c[j].IsPunct(";")))) {
          if (c[j].IsPunct("(") || c[j].IsPunct("[")) {
            ++pd;
          } else if (c[j].IsPunct(")") || c[j].IsPunct("]")) {
            --pd;
          } else if (c[j].IsPunct("<")) {
            j = SkipAngles(c, j) - 1;
          }
          ++j;
        }
      }
      if (j < n && c[j].IsPunct("{") && t.kind == TokenKind::kIdentifier &&
          !t.IsIdent("union")) {
        std::string name;
        if (parts.empty()) {
          name = "<anon@" + std::to_string(t.line) + ">";
        } else {
          for (size_t p = 0; p < parts.size(); ++p) {
            name += (p ? "::" : "") + parts[p];
          }
        }
        // A qualified header (class TcpServer::Reactor) is already absolute; an
        // unqualified one nests under the enclosing class.
        const std::string outer = enclosing_class_name();
        if (parts.size() <= 1 && !outer.empty()) {
          name = outer + "::" + name;
        }
        ClassInfo ci;
        ci.name = name;
        out.push_back(ci);
        stack.push_back(Scope{true, out.size() - 1});
        i = j + 1;
        continue;
      }
      if (j < n && c[j].IsPunct("{")) {
        // union definition: opaque.
        i = SkipBalanced(c, j);
        continue;
      }
      // Forward declaration, elaborated type ("struct stat st;"), or template param.
      i = j;
      continue;
    }
    if (t.IsPunct("{")) {
      stack.push_back(Scope{});
      ++i;
      continue;
    }
    if (t.IsPunct("}")) {
      if (!stack.empty()) {
        stack.pop_back();
      }
      ++i;
      continue;
    }

    if (!stack.empty() && stack.back().is_class) {
      ClassInfo& ci = out[stack.back().class_index];
      // Access specifier.
      if (IsIdent(t) &&
          (t.text == "public" || t.text == "private" || t.text == "protected") &&
          i + 1 < n && c[i + 1].IsPunct(":")) {
        i += 2;
        continue;
      }
      if (t.IsIdent("using") || t.IsIdent("typedef") || t.IsIdent("friend") ||
          t.IsIdent("static_assert")) {
        while (i < n && !c[i].IsPunct(";")) {
          if (c[i].IsPunct("(") || c[i].IsPunct("{") || c[i].IsPunct("[")) {
            i = SkipBalanced(c, i) - 1;
          }
          ++i;
        }
        ++i;
        continue;
      }
      // One member declaration: scan to ";" at depth 0, detecting a method body.
      const size_t decl_begin = i;
      int depth = 0;
      bool seen_eq = false;
      bool after_params = false;
      std::string candidate;
      bool consumed = false;
      while (i < n) {
        const Token& d = c[i];
        if (d.IsPunct("(") || d.IsPunct("[")) {
          i = SkipBalanced(c, i);
          after_params = !candidate.empty();
          continue;
        }
        if (d.IsPunct("<")) {
          const size_t after = SkipAngles(c, i);
          if (after > i + 1) {
            i = after;
            continue;
          }
        }
        if (d.IsPunct("=")) {
          seen_eq = true;
          ++i;
          continue;
        }
        if (IsIdent(d) && !seen_eq && !IsProbconMacro(d.text) &&
            ControlKeywords().count(d.text) == 0 && i + 1 < n && c[i + 1].IsPunct("(")) {
          candidate = d.text;
          ++i;
          continue;
        }
        if (d.IsPunct("{") && depth == 0) {
          if (after_params) {
            // In-class method definition: record and let the caller's main loop NOT see
            // the body (pass 1 has no interest in statements).
            if (!candidate.empty()) {
              ci.methods.insert(candidate);
            }
            ProcessMemberDecl(c, decl_begin, i, /*is_function_decl=*/true, ci);
            i = SkipBalanced(c, i);
            if (i < n && c[i].IsPunct(";")) {
              ++i;
            }
            consumed = true;
            break;
          }
          i = SkipBalanced(c, i);  // default member initializer braces
          continue;
        }
        if (d.IsPunct(";") && depth == 0) {
          if (!candidate.empty()) {
            ci.methods.insert(candidate);
          }
          ProcessMemberDecl(c, decl_begin, i, /*is_function_decl=*/!candidate.empty(), ci);
          ++i;
          consumed = true;
          break;
        }
        if (d.IsPunct("}") && depth == 0) {
          // End of class without terminator (defensive); let the main loop pop it.
          consumed = true;
          break;
        }
        ++i;
      }
      if (!consumed) {
        break;
      }
      continue;
    }

    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------- CollectFunctions

namespace {

// The body walker. One instance per top-level function; lambdas recurse with a fresh
// FunctionInfo but inherited locals.
class FunctionCollector {
 public:
  FunctionCollector(const std::string& path, const std::vector<Token>& code,
                    const ClassTable& classes, std::vector<FunctionInfo>& out)
      : path_(path), c_(code), classes_(classes), out_(out) {}

  void Run();

 private:
  struct ActiveLock {
    std::string id;
    int depth = 0;  // brace depth inside the body; -1 for REQUIRES entry locks
    bool active = true;
    std::string var;  // unique_lock/shared_lock variable name ("" otherwise)
  };

  struct BodyState {
    FunctionInfo fn;
    std::map<std::string, std::string> locals;  // var -> qualified class
    std::set<std::string> local_mutexes;        // names of function-local std::mutex
    std::vector<ActiveLock> locks;
    int depth = 0;
    int parens = 0;
    std::vector<int> wait_parens;  // paren depths with an open cv-wait argument list
  };

  // --- shared helpers ------------------------------------------------------

  std::vector<std::string> HeldIds(const BodyState& s) const {
    std::vector<std::string> ids;
    for (const ActiveLock& l : s.locks) {
      if (l.active && std::find(ids.begin(), ids.end(), l.id) == ids.end()) {
        ids.push_back(l.id);
      }
    }
    return ids;
  }

  std::string ClassOfBase(const BodyState& s, const std::string& base) const {
    if (base == "this") {
      return s.fn.class_name;
    }
    auto it = s.locals.find(base);
    if (it != s.locals.end()) {
      return it->second;
    }
    std::string ctx = s.fn.class_name;
    while (!ctx.empty()) {
      if (const std::string* mc = classes_.MemberClass(ctx, base)) {
        return *mc;
      }
      const size_t pos = ctx.rfind("::");
      ctx = pos == std::string::npos ? "" : ctx.substr(0, pos);
    }
    return "";
  }

  // Enclosing class (or an enclosing-of-enclosing) that declares mutex member `m`.
  std::string OwnerOfMutexMember(const std::string& class_name,
                                 const std::string& m) const {
    std::string ctx = class_name;
    while (!ctx.empty()) {
      const ClassInfo* ci = classes_.Find(ctx);
      if (ci != nullptr && ci->mutex_members.count(m) > 0) {
        return ctx;
      }
      const size_t pos = ctx.rfind("::");
      ctx = pos == std::string::npos ? "" : ctx.substr(0, pos);
    }
    return "";
  }

  std::string Placeholder(const BodyState& s, const std::string& m) const {
    return s.fn.name + "::?" + m;
  }

  // Resolves a mutex expression (guard constructor argument, REQUIRES argument, manual
  // .lock() receiver) spelled over [b, e). Never returns "" — unresolvable expressions get
  // a function-scoped placeholder so held-ness is still tracked without creating false
  // global identities.
  std::string ResolveMutexExpr(const BodyState& s, size_t b, size_t e) {
    while (b < e && (c_[b].IsPunct("&") || c_[b].IsPunct("*") || c_[b].IsPunct("(") ||
                     c_[b].IsIdent("const"))) {
      ++b;
    }
    while (e > b && c_[e - 1].IsPunct(")")) {
      --e;
    }
    if (b >= e || !IsIdent(c_[b])) {
      return Placeholder(s, JoinTokens(c_, b, e));
    }
    // Collect the chain: A(::B)* then (./-> M [subscript])*.
    std::vector<std::string> parts;
    bool member_chain = false;
    size_t i = b;
    parts.push_back(c_[i].text);
    ++i;
    while (i < e && c_[i].IsPunct("::") && i + 1 < e && IsIdent(c_[i + 1])) {
      parts.push_back(c_[i + 1].text);
      i += 2;
    }
    while (i < e) {
      if (c_[i].IsPunct("[")) {
        i = SkipBalanced(c_, i);
        continue;
      }
      if ((c_[i].IsPunct(".") || c_[i].IsPunct("->")) && i + 1 < e && IsIdent(c_[i + 1])) {
        parts.push_back(c_[i + 1].text);
        member_chain = true;
        i += 2;
        continue;
      }
      break;
    }
    if (parts.size() == 1) {
      const std::string& m = parts[0];
      if (s.local_mutexes.count(m) > 0) {
        return s.fn.name + "::" + m;
      }
      const std::string owner = OwnerOfMutexMember(s.fn.class_name, m);
      if (!owner.empty()) {
        return owner + "::" + m;
      }
      return Placeholder(s, m);
    }
    if (!member_chain) {
      // Pure :: chain, e.g. Other::static_mutex_.
      std::string cls;
      for (size_t p = 0; p + 1 < parts.size(); ++p) {
        cls += (p ? "::" : "") + parts[p];
      }
      if (const ClassInfo* ci = classes_.Resolve(cls, s.fn.class_name)) {
        return ci->name + "::" + parts.back();
      }
      return Placeholder(s, JoinTokens(c_, b, e));
    }
    // Member chain: resolve the base, then walk middle members.
    std::string k = ClassOfBase(s, parts[0]);
    for (size_t p = 1; p + 1 < parts.size() && !k.empty(); ++p) {
      const std::string* mc = classes_.MemberClass(k, parts[p]);
      k = mc == nullptr ? "" : *mc;
    }
    if (!k.empty()) {
      return k + "::" + parts.back();
    }
    return Placeholder(s, JoinTokens(c_, b, e));
  }

  // Resolves a PROBCON_GUARDED_BY argument in the context of its owning class.
  std::string ResolveGuardArg(const std::string& owner, const std::string& raw) const {
    if (raw.find("::") == std::string::npos && raw.find('.') == std::string::npos &&
        raw.find("->") == std::string::npos) {
      std::string ctx = owner;
      while (!ctx.empty()) {
        const ClassInfo* ci = classes_.Find(ctx);
        if (ci != nullptr && ci->mutex_members.count(raw) > 0) {
          return ctx + "::" + raw;
        }
        const size_t pos = ctx.rfind("::");
        ctx = pos == std::string::npos ? "" : ctx.substr(0, pos);
      }
      return owner + "::" + raw;
    }
    return raw;
  }

  void RecordFieldUse(BodyState& s, const std::string& owner, const std::string& field,
                      const Token& at) {
    const ClassInfo* ci = classes_.Find(owner);
    if (ci == nullptr) {
      return;
    }
    auto it = ci->guarded_fields.find(field);
    if (it == ci->guarded_fields.end()) {
      return;
    }
    FieldUse use;
    use.field_id = owner + "::" + field;
    use.mutex_id = ResolveGuardArg(owner, it->second);
    use.held = HeldIds(s);
    use.held_ok =
        std::find(use.held.begin(), use.held.end(), use.mutex_id) != use.held.end();
    use.line = at.line;
    use.col = at.col;
    s.fn.field_uses.push_back(use);
  }

  // --- declaration-level parsing -------------------------------------------

  void Run_();  // actual driver (Run wraps for exception-free contract)
  size_t ParseDeclaration(size_t i, const std::string& class_context);
  size_t ParseParams(size_t b, size_t e, BodyState& s);
  size_t ParseBody(size_t i, BodyState s);
  size_t TryLambda(size_t i, BodyState& s);
  size_t TryLocalDecl(size_t i, BodyState& s);
  size_t HandleGuardDecl(size_t i, BodyState& s, const std::string& guard_type);
  size_t HandleChain(size_t i, BodyState& s);

  const std::string path_;
  const std::vector<Token>& c_;
  const ClassTable& classes_;
  std::vector<FunctionInfo>& out_;

  // Class scope tracking for the top-level walk.
  struct Scope {
    bool is_class = false;
    std::string class_name;
  };
  std::vector<Scope> stack_;
};

void FunctionCollector::Run() { Run_(); }

void FunctionCollector::Run_() {
  const size_t n = c_.size();
  size_t i = 0;
  auto enclosing = [&]() -> std::string {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->is_class) {
        return it->class_name;
      }
    }
    return "";
  };
  while (i < n) {
    const Token& t = c_[i];
    if (t.IsIdent("template")) {
      ++i;
      if (i < n && c_[i].IsPunct("<")) {
        i = SkipAngles(c_, i);
      }
      continue;
    }
    if (t.IsIdent("namespace")) {
      ++i;
      while (i < n && !c_[i].IsPunct("{") && !c_[i].IsPunct(";") && !c_[i].IsPunct("=")) {
        ++i;
      }
      if (i < n && c_[i].IsPunct("{")) {
        stack_.push_back(Scope{});  // transparent
        ++i;
      } else {
        while (i < n && !c_[i].IsPunct(";")) {
          ++i;
        }
        ++i;
      }
      continue;
    }
    if (t.IsIdent("enum")) {
      while (i < n && !c_[i].IsPunct("{") && !c_[i].IsPunct(";")) {
        ++i;
      }
      if (i < n && c_[i].IsPunct("{")) {
        i = SkipBalanced(c_, i);
      }
      continue;
    }
    if (t.IsIdent("class") || t.IsIdent("struct")) {
      // Same header parse as pass 1, but we only need the scope name.
      size_t j = i + 1;
      while (j < n && c_[j].IsPunct("[")) {
        j = SkipBalanced(c_, j);
      }
      std::vector<std::string> parts;
      while (j < n && IsIdent(c_[j]) && !c_[j].IsIdent("final")) {
        parts.push_back(c_[j].text);
        ++j;
        if (j < n && c_[j].IsPunct("::")) {
          ++j;
        } else {
          break;
        }
      }
      if (j < n && c_[j].IsIdent("final")) {
        ++j;
      }
      if (j < n && c_[j].IsPunct(":")) {
        int pd = 0;
        while (j < n && !(pd == 0 && (c_[j].IsPunct("{") || c_[j].IsPunct(";")))) {
          if (c_[j].IsPunct("(") || c_[j].IsPunct("[")) {
            ++pd;
          } else if (c_[j].IsPunct(")") || c_[j].IsPunct("]")) {
            --pd;
          } else if (c_[j].IsPunct("<")) {
            j = SkipAngles(c_, j) - 1;
          }
          ++j;
        }
      }
      if (j < n && c_[j].IsPunct("{")) {
        std::string name;
        for (size_t p = 0; p < parts.size(); ++p) {
          name += (p ? "::" : "") + parts[p];
        }
        if (name.empty()) {
          name = "<anon@" + std::to_string(t.line) + ">";
        }
        const std::string outer = enclosing();
        if (parts.size() <= 1 && !outer.empty()) {
          name = outer + "::" + name;
        }
        stack_.push_back(Scope{true, name});
        i = j + 1;
        continue;
      }
      i = j;
      continue;
    }
    if (t.IsIdent("using") || t.IsIdent("typedef") || t.IsIdent("static_assert") ||
        t.IsIdent("friend")) {
      while (i < n && !c_[i].IsPunct(";")) {
        if (c_[i].IsPunct("(") || c_[i].IsPunct("{") || c_[i].IsPunct("[")) {
          i = SkipBalanced(c_, i) - 1;
        }
        ++i;
      }
      ++i;
      continue;
    }
    if (t.IsPunct("{")) {
      stack_.push_back(Scope{});
      ++i;
      continue;
    }
    if (t.IsPunct("}")) {
      if (!stack_.empty()) {
        stack_.pop_back();
      }
      ++i;
      continue;
    }
    if (t.IsPunct(";") || t.IsPunct(":")) {
      ++i;  // stray terminators / access specifiers' colons
      continue;
    }
    i = ParseDeclaration(i, enclosing());
  }
}

// Scans one namespace- or class-scope declaration starting at i. If it turns out to be a
// function definition, parses the body (recording a FunctionInfo). Returns the index one
// past the declaration.
size_t FunctionCollector::ParseDeclaration(size_t i, const std::string& class_context) {
  const size_t n = c_.size();
  bool seen_eq = false;
  while (i < n) {
    const Token& t = c_[i];
    if (t.IsPunct(";")) {
      return i + 1;
    }
    if (t.IsPunct("}")) {
      return i;  // let the main loop pop the scope
    }
    if (t.IsPunct("=")) {
      seen_eq = true;
      ++i;
      continue;
    }
    if (t.IsPunct("{")) {
      return SkipBalanced(c_, i);  // brace initializer at declaration scope
    }
    if (t.IsPunct("(") || t.IsPunct("[")) {
      i = SkipBalanced(c_, i);
      continue;
    }
    if (t.IsPunct("<")) {
      const size_t after = SkipAngles(c_, i);
      i = after > i ? after : i + 1;
      continue;
    }
    // Candidate: [~]name( or Class::name( or operator…(
    if (IsIdent(t) && !seen_eq && !IsProbconMacro(t.text) &&
        ControlKeywords().count(t.text) == 0) {
      // Gather a qualified-name chain ending in "(".
      std::vector<std::string> parts;
      size_t j = i;
      bool dtor = i > 0 && c_[i - 1].IsPunct("~");
      parts.push_back((dtor ? "~" : "") + c_[j].text);
      ++j;
      while (j + 1 < n && c_[j].IsPunct("::") && IsIdent(c_[j + 1])) {
        parts.push_back(c_[j + 1].text);
        j += 2;
      }
      if (j + 1 < n && c_[j].IsPunct("::") && c_[j + 1].IsPunct("~") && j + 2 < n &&
          IsIdent(c_[j + 2])) {
        parts.push_back("~" + c_[j + 2].text);
        j += 3;
      }
      if (j < n && c_[j].IsPunct("<")) {
        // Possibly a templated name before the param list: Foo<T>(...). Skip only if a
        // "(" follows the angle list (otherwise it is an expression comparison).
        const size_t after = SkipAngles(c_, j);
        if (after > j && after < n && c_[after].IsPunct("(")) {
          j = after;
        }
      }
      if (j < n && c_[j].IsPunct("(")) {
        const size_t params_open = j;
        const size_t params_close = SkipBalanced(c_, j);
        // Tail: const/noexcept/&/&&/override/final/-> type/PROBCON_* then "{", ":" or ";".
        size_t k = params_close;
        std::vector<std::pair<size_t, size_t>> requires_args;
        bool tail_ok = true;
        while (k < n && tail_ok) {
          const Token& u = c_[k];
          if (u.IsIdent("const") || u.IsIdent("override") || u.IsIdent("final") ||
              u.IsIdent("mutable") || u.IsIdent("try") || u.IsPunct("&") ||
              u.IsPunct("&&")) {
            ++k;
          } else if (u.IsIdent("noexcept")) {
            ++k;
            if (k < n && c_[k].IsPunct("(")) {
              k = SkipBalanced(c_, k);
            }
          } else if (IsIdent(u) && IsProbconMacro(u.text)) {
            const bool is_requires = u.text == "PROBCON_REQUIRES";
            ++k;
            if (k < n && c_[k].IsPunct("(")) {
              const size_t close = SkipBalanced(c_, k);
              if (is_requires) {
                for (const auto& arg : SplitTopCommas(c_, k + 1, close - 1)) {
                  requires_args.push_back(arg);
                }
              }
              k = close;
            }
          } else if (u.IsPunct("->")) {
            ++k;
            while (k < n &&
                   (IsIdent(c_[k]) || c_[k].IsPunct("::") || c_[k].IsPunct("&") ||
                    c_[k].IsPunct("*"))) {
              if (c_[k].kind == TokenKind::kIdentifier && k + 1 < n &&
                  c_[k + 1].IsPunct("<")) {
                ++k;
                k = SkipAngles(c_, k);
              } else {
                ++k;
              }
            }
          } else {
            break;
          }
        }
        bool is_def = false;
        if (k < n && c_[k].IsPunct(":")) {
          // Constructor initializer list.
          ++k;
          while (k < n) {
            while (k < n && (IsIdent(c_[k]) || c_[k].IsPunct("::"))) {
              if (IsIdent(c_[k]) && k + 1 < n && c_[k + 1].IsPunct("<")) {
                ++k;
                k = SkipAngles(c_, k);
              } else {
                ++k;
              }
            }
            if (k < n && (c_[k].IsPunct("(") || c_[k].IsPunct("{"))) {
              const bool was_brace_init = c_[k].IsPunct("{") && k + 0 < n;
              const size_t after = SkipBalanced(c_, k);
              if (was_brace_init && !(after < n && (c_[after].IsPunct(",") ||
                                                    IsIdent(c_[after])))) {
                // `member_{...} {` — that balanced skip consumed the INIT braces; the
                // next token decides. Handled below uniformly.
              }
              k = after;
            }
            if (k < n && c_[k].IsPunct(",")) {
              ++k;
              continue;
            }
            break;
          }
          if (k < n && c_[k].IsPunct("{")) {
            is_def = true;
          }
        } else if (k < n && c_[k].IsPunct("{")) {
          is_def = true;
        }
        if (is_def) {
          // Build the FunctionInfo.
          BodyState s;
          std::string cls = class_context;
          if (parts.size() > 1) {
            std::string qual;
            for (size_t p = 0; p + 1 < parts.size(); ++p) {
              qual += (p ? "::" : "") + parts[p];
            }
            if (const ClassInfo* ci = classes_.Resolve(qual, class_context)) {
              cls = ci->name;
            } else {
              cls = class_context.empty() ? qual : class_context + "::" + qual;
            }
          }
          s.fn.class_name = cls;
          s.fn.name = cls.empty() ? parts.back() : cls + "::" + parts.back();
          s.fn.path = path_;
          s.fn.line = t.line;
          ParseParams(params_open + 1, params_close - 1, s);
          for (const auto& [ab, ae] : requires_args) {
            const std::string id = ResolveMutexExpr(s, ab, ae);
            s.fn.requires_held.push_back(id);
            s.locks.push_back(ActiveLock{id, -1, true, ""});
          }
          return ParseBody(k + 1, std::move(s));
        }
        if (k < n && (c_[k].IsPunct(";") || c_[k].IsPunct("="))) {
          // Declaration (or = default / = delete / = 0): consume it. A declaration that
          // carries PROBCON_REQUIRES still produces a (bodyless) FunctionInfo so the
          // annotation written once in the header reaches the out-of-line definition
          // when BuildModel merges same-named functions.
          if (!requires_args.empty()) {
            BodyState s;
            std::string cls = class_context;
            if (parts.size() > 1) {
              std::string qual;
              for (size_t p = 0; p + 1 < parts.size(); ++p) {
                qual += (p ? "::" : "") + parts[p];
              }
              if (const ClassInfo* ci = classes_.Resolve(qual, class_context)) {
                cls = ci->name;
              } else {
                cls = class_context.empty() ? qual : class_context + "::" + qual;
              }
            }
            s.fn.class_name = cls;
            s.fn.name = cls.empty() ? parts.back() : cls + "::" + parts.back();
            s.fn.path = path_;
            s.fn.line = t.line;
            ParseParams(params_open + 1, params_close - 1, s);
            for (const auto& [ab, ae] : requires_args) {
              s.fn.requires_held.push_back(ResolveMutexExpr(s, ab, ae));
            }
            out_.push_back(std::move(s.fn));
          }
          size_t m = k;
          while (m < n && !c_[m].IsPunct(";")) {
            if (c_[m].IsPunct("(") || c_[m].IsPunct("{") || c_[m].IsPunct("[")) {
              m = SkipBalanced(c_, m) - 1;
            }
            ++m;
          }
          return m + 1;
        }
        // Not a function after all; resume scanning after the parens.
        i = params_close;
        continue;
      }
      if (t.IsIdent("operator")) {
        // operator==(...) etc at declaration scope: skip the operator tokens.
        ++i;
        while (i < n && c_[i].kind == TokenKind::kPunct && !c_[i].IsPunct("(")) {
          ++i;
        }
        continue;
      }
      i = j;
      continue;
    }
    ++i;
  }
  return i;
}

// Registers parameter names/classes from the range [b, e).
size_t FunctionCollector::ParseParams(size_t b, size_t e, BodyState& s) {
  for (const auto& [pb, pe] : SplitTopCommas(c_, b, e)) {
    // Declarator: last identifier (defaults are "name = expr" — the name is the last
    // identifier before "=" if present).
    size_t stop = pe;
    for (size_t i = pb; i < pe; ++i) {
      if (c_[i].IsPunct("=")) {
        stop = i;
        break;
      }
    }
    std::string name;
    size_t name_pos = stop;
    for (size_t i = stop; i-- > pb;) {
      if (IsIdent(c_[i])) {
        name = c_[i].text;
        name_pos = i;
        break;
      }
    }
    if (name.empty()) {
      continue;
    }
    // Element class: last type identifier before the declarator that resolves.
    for (size_t i = name_pos; i-- > pb;) {
      if (!IsIdent(c_[i]) || ControlKeywords().count(c_[i].text) > 0) {
        continue;
      }
      if (const ClassInfo* ci = classes_.Resolve(c_[i].text, s.fn.class_name)) {
        s.locals[name] = ci->name;
        break;
      }
    }
    // A parameter that IS a std::mutex& behaves like a local mutex.
    for (size_t i = pb; i < name_pos; ++i) {
      if (IsIdent(c_[i]) && MutexTypes().count(c_[i].text) > 0) {
        s.local_mutexes.insert(name);
        break;
      }
    }
  }
  return e;
}

// Parses a `[...]` at i that may be a lambda introducer. Returns the index to resume from;
// if a lambda body was parsed it is fully consumed (and recorded as its own FunctionInfo).
size_t FunctionCollector::TryLambda(size_t i, BodyState& s) {
  const size_t n = c_.size();
  const size_t intro_end = SkipBalanced(c_, i);  // past "]"
  size_t j = intro_end;
  BodyState lam;
  lam.fn.class_name = s.fn.class_name;
  lam.fn.name = s.fn.name + "::<lambda:" + std::to_string(c_[i].line) + ">";
  lam.fn.path = path_;
  lam.fn.line = c_[i].line;
  lam.fn.is_lambda = true;
  lam.locals = s.locals;              // captures keep their types
  lam.local_mutexes = s.local_mutexes;
  if (j < n && c_[j].IsPunct("(")) {
    const size_t close = SkipBalanced(c_, j);
    ParseParams(j + 1, close - 1, lam);
    j = close;
  }
  while (j < n &&
         (c_[j].IsIdent("mutable") || c_[j].IsIdent("constexpr") || c_[j].IsIdent("noexcept"))) {
    ++j;
    if (j < n && c_[j].IsPunct("(")) {
      j = SkipBalanced(c_, j);
    }
  }
  if (j < n && c_[j].IsPunct("->")) {
    ++j;
    while (j < n && (IsIdent(c_[j]) || c_[j].IsPunct("::") || c_[j].IsPunct("&") ||
                     c_[j].IsPunct("*"))) {
      if (IsIdent(c_[j]) && j + 1 < n && c_[j + 1].IsPunct("<")) {
        ++j;
        j = SkipAngles(c_, j);
      } else {
        ++j;
      }
    }
  }
  if (j < n && c_[j].IsPunct("{")) {
    // Condition-variable wait predicates run WITH the wait mutex (re)held; every other
    // lambda executes at an unknown later time with nothing held.
    if (!s.wait_parens.empty()) {
      for (const ActiveLock& l : s.locks) {
        if (l.active) {
          lam.locks.push_back(ActiveLock{l.id, -1, true, ""});
        }
      }
    }
    return ParseBody(j + 1, std::move(lam));
  }
  // Not a lambda (attribute already handled by caller; likely a structured binding).
  return intro_end;
}

// Attempts `Type[&*] name =(;{,` local declaration recognition at i (an identifier that
// resolves to a known class, or std:: templated type over one). Returns the index to
// resume from (just past the declarator on success), or i if not a declaration.
size_t FunctionCollector::TryLocalDecl(size_t i, BodyState& s) {
  const size_t n = c_.size();
  size_t j = i;
  std::string resolved;
  // Type tokens: ident(::ident)* with optional one template list; track last resolving id.
  while (j < n && IsIdent(c_[j])) {
    if (ControlKeywords().count(c_[j].text) == 0) {
      if (const ClassInfo* ci = classes_.Resolve(c_[j].text, s.fn.class_name)) {
        resolved = ci->name;
      }
    }
    ++j;
    if (j < n && c_[j].IsPunct("<")) {
      const size_t after = SkipAngles(c_, j);
      if (after <= j) {
        return i;
      }
      for (size_t a = j + 1; a + 1 < after; ++a) {
        if (IsIdent(c_[a]) && ControlKeywords().count(c_[a].text) == 0) {
          if (const ClassInfo* ci = classes_.Resolve(c_[a].text, s.fn.class_name)) {
            resolved = ci->name;
          }
        }
      }
      j = after;
    }
    if (j < n && c_[j].IsPunct("::") && j + 1 < n && IsIdent(c_[j + 1])) {
      ++j;
      continue;
    }
    break;
  }
  if (resolved.empty()) {
    return i;
  }
  while (j < n && (c_[j].IsPunct("&") || c_[j].IsPunct("*") || c_[j].IsIdent("const"))) {
    ++j;
  }
  if (j < n && IsIdent(c_[j]) && ControlKeywords().count(c_[j].text) == 0 && j + 1 < n &&
      (c_[j + 1].IsPunct("=") || c_[j + 1].IsPunct("(") || c_[j + 1].IsPunct("{") ||
       c_[j + 1].IsPunct(";") || c_[j + 1].IsPunct(",") || c_[j + 1].IsPunct(")") ||
       c_[j + 1].IsPunct(":"))) {
    s.locals[c_[j].text] = resolved;
    return j + 1;  // initializer expressions are walked normally
  }
  return i;
}

// Handles `lock_guard/unique_lock/scoped_lock/shared_lock [<...>] var (args)`.
// i points at the guard-type identifier. Returns resume index.
size_t FunctionCollector::HandleGuardDecl(size_t i, BodyState& s,
                                          const std::string& guard_type) {
  const size_t n = c_.size();
  size_t j = i + 1;
  if (j < n && c_[j].IsPunct("<")) {
    const size_t after = SkipAngles(c_, j);
    if (after <= j) {
      return i + 1;
    }
    j = after;
  }
  if (j >= n || !IsIdent(c_[j])) {
    return i + 1;
  }
  const std::string var = c_[j].text;
  ++j;
  if (j >= n || (!c_[j].IsPunct("(") && !c_[j].IsPunct("{"))) {
    return i + 1;  // e.g. a guard type mentioned in a template argument
  }
  const size_t close = SkipBalanced(c_, j);
  const std::vector<std::string> held_before = HeldIds(s);
  bool deferred = false;
  std::vector<std::string> ids;
  for (const auto& [ab, ae] : SplitTopCommas(c_, j + 1, close - 1)) {
    // Tag arguments: adopt/defer/try_to.
    std::string last_ident;
    for (size_t a = ab; a < ae; ++a) {
      if (IsIdent(c_[a])) {
        last_ident = c_[a].text;
      }
    }
    if (last_ident == "adopt_lock" || last_ident == "try_to_lock") {
      continue;
    }
    if (last_ident == "defer_lock") {
      deferred = true;
      continue;
    }
    ids.push_back(ResolveMutexExpr(s, ab, ae));
  }
  const bool toggleable = guard_type == "unique_lock" || guard_type == "shared_lock";
  for (const std::string& id : ids) {
    LockSite site;
    site.mutex_id = id;
    site.held = held_before;  // all mutexes of one scoped_lock share a pre-statement view
    site.line = c_[i].line;
    site.col = c_[i].col;
    if (!deferred) {
      s.fn.acquires.push_back(site);
    }
    s.locks.push_back(ActiveLock{id, s.depth, !deferred, toggleable ? var : ""});
  }
  return close;
}

// Handles an identifier chain starting at i: calls, guarded-field uses, cv waits,
// lock-variable toggles. Returns resume index (never consumes call arguments).
size_t FunctionCollector::HandleChain(size_t i, BodyState& s) {
  const size_t n = c_.size();
  std::vector<std::string> parts;
  std::vector<const Token*> part_toks;
  bool member_chain = false;
  size_t colon_parts = 1;  // how many leading parts are joined by "::"
  size_t j = i;
  parts.push_back(c_[j].text);
  part_toks.push_back(&c_[j]);
  ++j;
  while (j + 1 < n && c_[j].IsPunct("::") && IsIdent(c_[j + 1])) {
    parts.push_back(c_[j + 1].text);
    part_toks.push_back(&c_[j + 1]);
    ++colon_parts;
    j += 2;
  }
  while (j < n) {
    if (c_[j].IsPunct("[") && j + 1 < n && !c_[j + 1].IsPunct("[")) {
      j = SkipBalanced(c_, j);  // subscript (expression events inside are rare; accepted)
      continue;
    }
    if ((c_[j].IsPunct(".") || c_[j].IsPunct("->")) && j + 1 < n && IsIdent(c_[j + 1])) {
      parts.push_back(c_[j + 1].text);
      part_toks.push_back(&c_[j + 1]);
      member_chain = true;
      j += 2;
      continue;
    }
    break;
  }
  const bool is_call = j < n && c_[j].IsPunct("(");
  const std::string& final_name = parts.back();

  // Resolve the receiver chain class-by-class, recording guarded middle-member uses.
  // For "A::B::x.y.z", the :: prefix may be a class (static member) — try that first.
  std::string k;
  size_t first_member = 1;
  if (colon_parts > 1) {
    std::string qual;
    for (size_t p = 0; p + 1 < colon_parts; ++p) {
      qual += (p ? "::" : "") + parts[p];
    }
    // "A::B(" with the full :: chain consumed by the call: receiver is the class itself.
    if (const ClassInfo* ci = classes_.Resolve(qual, s.fn.class_name)) {
      k = ci->name;
      first_member = colon_parts - 1;
    } else if (const ClassInfo* ci2 = classes_.Resolve(
                   qual + "::" + parts[colon_parts - 1], s.fn.class_name);
               ci2 != nullptr && parts.size() > colon_parts) {
      k = ci2->name;  // A::B::member... where A::B names a class? then base after.
      first_member = colon_parts;
    } else {
      k = "";
      first_member = colon_parts;
    }
  } else {
    k = ClassOfBase(s, parts[0]);
    first_member = 1;
    if (parts.size() == 1 && !member_chain) {
      // Bare identifier: guarded field of the enclosing class?
      if (!is_call && !s.fn.class_name.empty() && s.locals.count(parts[0]) == 0) {
        std::string ctx = s.fn.class_name;
        while (!ctx.empty()) {
          const ClassInfo* ci = classes_.Find(ctx);
          if (ci != nullptr && ci->guarded_fields.count(parts[0]) > 0) {
            RecordFieldUse(s, ctx, parts[0], *part_toks[0]);
            break;
          }
          const size_t pos = ctx.rfind("::");
          ctx = pos == std::string::npos ? "" : ctx.substr(0, pos);
        }
      }
    }
  }
  // Walk member links: parts[first_member .. last-1] are intermediate members; the final
  // part is either the callee or a field.
  const size_t last = parts.size() - 1;
  for (size_t p = first_member; p < last && p < parts.size(); ++p) {
    if (!k.empty()) {
      RecordFieldUse(s, k, parts[p], *part_toks[p]);
      const std::string* mc = classes_.MemberClass(k, parts[p]);
      k = mc == nullptr ? "" : *mc;
    }
  }

  if (!is_call) {
    if (last >= first_member && member_chain && !k.empty()) {
      RecordFieldUse(s, k, parts[last], *part_toks[last]);
    }
    return j;
  }

  // ---- call handling ----
  // unique_lock variable toggles: `lk.lock()` / `lk.unlock()`.
  if (member_chain && parts.size() == 2 && (final_name == "lock" || final_name == "unlock")) {
    bool toggled = false;
    for (ActiveLock& l : s.locks) {
      if (!l.var.empty() && l.var == parts[0]) {
        l.active = final_name == "lock";
        toggled = true;
      }
    }
    if (toggled) {
      return j;  // the () is consumed by the main loop's paren tracking
    }
    // Manual mutex lock/unlock: m.lock() — resolve the receiver as a mutex expression.
    const std::string id = ResolveMutexExpr(s, i, j - 2);
    if (id.find("::?") == std::string::npos) {
      if (final_name == "lock") {
        LockSite site;
        site.mutex_id = id;
        site.held = HeldIds(s);
        site.line = c_[i].line;
        site.col = c_[i].col;
        s.fn.acquires.push_back(site);
        s.locks.push_back(ActiveLock{id, s.depth, true, ""});
      } else {
        for (auto it = s.locks.rbegin(); it != s.locks.rend(); ++it) {
          if (it->id == id && it->active) {
            it->active = false;
            break;
          }
        }
      }
      return j;
    }
  }

  CallSite call;
  call.line = part_toks.back()->line;
  call.col = part_toks.back()->col;
  call.held = HeldIds(s);
  if (member_chain &&
      (final_name == "wait" || final_name == "wait_for" || final_name == "wait_until")) {
    call.is_cv_wait = true;
    call.callee = "?::" + final_name;
    // First argument: a tracked lock variable names the mutex the wait releases.
    if (j + 1 < n && IsIdent(c_[j + 1])) {
      for (const ActiveLock& l : s.locks) {
        if (!l.var.empty() && l.var == c_[j + 1].text) {
          call.cv_wait_mutex = l.id;
          break;
        }
      }
    }
    s.fn.calls.push_back(call);
    s.wait_parens.push_back(s.parens);  // lambdas inside the arg list inherit held locks
    return j;
  }
  if (member_chain || colon_parts > 1) {
    call.callee = k.empty() ? "?::" + final_name : k + "::" + final_name;
  } else {
    // Bare call: method of the enclosing class if declared there, else free function.
    std::string ctx = s.fn.class_name;
    call.callee = final_name;
    while (!ctx.empty()) {
      const ClassInfo* ci = classes_.Find(ctx);
      if (ci != nullptr && ci->methods.count(final_name) > 0) {
        call.callee = ctx + "::" + final_name;
        break;
      }
      const size_t pos = ctx.rfind("::");
      ctx = pos == std::string::npos ? "" : ctx.substr(0, pos);
    }
  }
  s.fn.calls.push_back(call);

  // `Class::Static().Method(...)` — the instance-returning-accessor idiom
  // (ThreadPool::Global().Submit). Peek past the call's arguments.
  if (colon_parts > 1 && !k.empty() && parts.size() == colon_parts) {
    const size_t after = SkipBalanced(c_, j);
    if (after + 1 < n && c_[after].IsPunct(".") && IsIdent(c_[after + 1]) &&
        after + 2 < n && c_[after + 2].IsPunct("(")) {
      CallSite chained;
      chained.callee = k + "::" + c_[after + 1].text;
      chained.held = call.held;
      chained.line = c_[after + 1].line;
      chained.col = c_[after + 1].col;
      s.fn.calls.push_back(chained);
    }
  }
  return j;  // arguments are processed by the main loop (nested calls get recorded)
}

// Parses a function body starting at i (just past "{"). Appends the completed
// FunctionInfo (and any lambdas) to out_. Returns the index past the closing "}".
size_t FunctionCollector::ParseBody(size_t i, BodyState s) {
  const size_t n = c_.size();
  while (i < n) {
    const Token& t = c_[i];
    if (t.IsPunct("{")) {
      ++s.depth;
      ++i;
      continue;
    }
    if (t.IsPunct("}")) {
      if (s.depth == 0) {
        out_.push_back(std::move(s.fn));
        return i + 1;
      }
      // Locks acquired in this scope die with it.
      s.locks.erase(std::remove_if(s.locks.begin(), s.locks.end(),
                                   [&](const ActiveLock& l) { return l.depth >= s.depth; }),
                    s.locks.end());
      --s.depth;
      ++i;
      continue;
    }
    if (t.IsPunct("(")) {
      ++s.parens;
      ++i;
      continue;
    }
    if (t.IsPunct(")")) {
      --s.parens;
      while (!s.wait_parens.empty() && s.parens <= s.wait_parens.back()) {
        s.wait_parens.pop_back();
      }
      ++i;
      continue;
    }
    if (t.IsPunct("[")) {
      if (i + 1 < n && c_[i + 1].IsPunct("[")) {
        i = SkipBalanced(c_, i);  // [[attribute]]
        continue;
      }
      const bool subscript =
          i > 0 && ((IsIdent(c_[i - 1]) && ControlKeywords().count(c_[i - 1].text) == 0) ||
                    c_[i - 1].IsPunct(")") || c_[i - 1].IsPunct("]"));
      if (subscript) {
        ++i;  // walk the index expression normally
        continue;
      }
      i = TryLambda(i, s);
      continue;
    }
    if (t.IsPunct("]")) {
      ++i;
      continue;
    }
    if (!IsIdent(t)) {
      ++i;
      continue;
    }

    // ---- identifier dispatch ----
    if (IsProbconMacro(t.text)) {
      ++i;
      if (i < n && c_[i].IsPunct("(")) {
        i = SkipBalanced(c_, i);
      }
      continue;
    }
    if (t.IsIdent("struct") || t.IsIdent("class")) {
      // Function-local struct: pass 1 already collected it; skip its definition here.
      size_t j = i + 1;
      while (j < n && !c_[j].IsPunct("{") && !c_[j].IsPunct(";")) {
        ++j;
      }
      if (j < n && c_[j].IsPunct("{")) {
        j = SkipBalanced(c_, j);
        // Skip trailing declarator(s): `struct S {...} s;` — register the variable.
        if (j < n && IsIdent(c_[j])) {
          // `} name ;` — resolve the struct we just skipped.
          std::string sname;
          for (size_t a = i + 1; a < n && a < j; ++a) {
            if (IsIdent(c_[a])) {
              sname = c_[a].text;
              break;
            }
          }
          if (const ClassInfo* ci = classes_.Resolve(sname, s.fn.class_name)) {
            s.locals[c_[j].text] = ci->name;
          }
          ++j;
        }
      }
      i = j;
      continue;
    }
    if (t.IsIdent("auto")) {
      // auto[&] name = std::make_unique<K>(...) / make_shared<K>(...).
      size_t j = i + 1;
      while (j < n && (c_[j].IsPunct("&") || c_[j].IsPunct("*") || c_[j].IsIdent("const"))) {
        ++j;
      }
      if (j + 1 < n && IsIdent(c_[j]) && c_[j + 1].IsPunct("=")) {
        const std::string name = c_[j].text;
        for (size_t a = j + 2; a < n && a < j + 12 && !c_[a].IsPunct(";"); ++a) {
          if (IsIdent(c_[a]) &&
              (c_[a].text == "make_unique" || c_[a].text == "make_shared") &&
              a + 1 < n && c_[a + 1].IsPunct("<")) {
            const size_t close = SkipAngles(c_, a + 1);
            for (size_t b = a + 2; b + 1 < close; ++b) {
              if (IsIdent(c_[b])) {
                if (const ClassInfo* ci = classes_.Resolve(c_[b].text, s.fn.class_name)) {
                  s.locals[name] = ci->name;
                  break;
                }
              }
            }
            break;
          }
        }
        i = j + 1;  // resume at "=": the initializer is walked normally
        continue;
      }
      ++i;
      continue;
    }
    if (ControlKeywords().count(t.text) > 0) {
      ++i;
      continue;
    }
    // std:: guard declarations and local mutexes: detect on the significant identifier.
    if (GuardTypes().count(t.text) > 0) {
      i = HandleGuardDecl(i, s, t.text);
      continue;
    }
    if (MutexTypes().count(t.text) > 0 && i + 1 < n && IsIdent(c_[i + 1]) &&
        i + 2 < n && (c_[i + 2].IsPunct(";") || c_[i + 2].IsPunct("{"))) {
      s.local_mutexes.insert(c_[i + 1].text);
      i += 2;
      continue;
    }
    if (t.IsIdent("std")) {
      // Peek through std:: to guard/mutex types so the chain handler never sees them.
      if (i + 2 < n && c_[i + 1].IsPunct("::") && IsIdent(c_[i + 2])) {
        const std::string& inner = c_[i + 2].text;
        if (GuardTypes().count(inner) > 0) {
          i = HandleGuardDecl(i + 2, s, inner);
          continue;
        }
        if (MutexTypes().count(inner) > 0 && i + 3 < n && IsIdent(c_[i + 3])) {
          s.local_mutexes.insert(c_[i + 3].text);
          i += 4;
          continue;
        }
      }
    }
    // Local declaration of a known-class variable?
    {
      const size_t after = TryLocalDecl(i, s);
      if (after != i) {
        i = after;
        continue;
      }
    }
    // Skip identifiers that are part of a larger chain we already consumed.
    if (i > 0 && (c_[i - 1].IsPunct(".") || c_[i - 1].IsPunct("->") ||
                  c_[i - 1].IsPunct("::") || c_[i - 1].IsPunct("~"))) {
      ++i;
      continue;
    }
    i = HandleChain(i, s);
  }
  out_.push_back(std::move(s.fn));  // unterminated body (defensive)
  return i;
}

}  // namespace

std::vector<FunctionInfo> CollectFunctions(const std::string& path,
                                           const std::vector<Token>& tokens,
                                           const ClassTable& classes) {
  const std::vector<Token> code = CodeTokens(tokens);
  std::vector<FunctionInfo> out;
  FunctionCollector collector(path, code, classes, out);
  collector.Run();
  return out;
}

}  // namespace probcon::lint
