#include "tools/lint/driver.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "tools/lint/concurrency.h"
#include "tools/lint/lexer.h"
#include "tools/lint/suppressions.h"

namespace probcon::lint {
namespace {

namespace fs = std::filesystem;

bool HasLintableExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

}  // namespace

const std::vector<std::string>& DefaultLintDirs() {
  static const std::vector<std::string> kDirs = {"src", "tests", "bench", "examples"};
  return kDirs;
}

std::vector<std::string> CollectFiles(const std::string& root,
                                      const std::vector<std::string>& dirs) {
  std::vector<std::string> files;
  for (const std::string& dir : dirs) {
    const fs::path base = fs::path(root) / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) {
      // A single file path is also accepted (useful for `probcon-lint src/foo.cc`).
      if (fs::is_regular_file(base, ec) && HasLintableExtension(base)) {
        files.push_back(dir);
      }
      continue;
    }
    for (fs::recursive_directory_iterator it(base, ec), end; it != end; it.increment(ec)) {
      if (ec) {
        break;
      }
      if (!it->is_regular_file(ec) || !HasLintableExtension(it->path())) {
        continue;
      }
      files.push_back(fs::relative(it->path(), root, ec).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::vector<SourceFile> ReadTree(const std::string& root, const std::vector<std::string>& dirs,
                                 std::vector<Finding>* io_findings) {
  std::vector<SourceFile> sources;
  for (const std::string& file : CollectFiles(root, dirs)) {
    std::ifstream in(fs::path(root) / file, std::ios::binary);
    if (!in) {
      if (io_findings != nullptr) {
        io_findings->push_back(Finding{"probcon-io", file, 0, 0, file,
                                       "cannot read file; lint coverage is incomplete"});
      }
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    sources.push_back(SourceFile{file, buffer.str()});
  }
  return sources;
}

std::vector<Finding> LintTree(const std::string& root, const std::vector<std::string>& dirs,
                              const LintOptions& options) {
  std::vector<Finding> findings;
  const std::vector<SourceFile> sources = ReadTree(root, dirs, &findings);

  // Per-file token rules (R1-R5), with their own suppression handling inside LintSource.
  for (const SourceFile& source : sources) {
    std::vector<Finding> file_findings = LintSource(source.path, source.content, options);
    findings.insert(findings.end(), std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }

  // Tree-level concurrency rules (R6-R8): one model over every file, then NOLINT
  // filtering against each finding's own file. Hygiene findings are NOT re-collected
  // here — LintSource already reported them once per file.
  if (options.analyze_concurrency) {
    const ConcurrencyModel model = BuildModel(sources);
    std::map<std::string, SuppressionSet> suppressions_by_path;
    auto suppressions_for = [&](const std::string& path) -> const SuppressionSet& {
      auto it = suppressions_by_path.find(path);
      if (it != suppressions_by_path.end()) {
        return it->second;
      }
      SuppressionSet set;
      for (const SourceFile& source : sources) {
        if (source.path == path) {
          std::vector<Finding> ignored_hygiene;
          set = ParseSuppressions(path, Lex(source.content), KnownRules(), ignored_hygiene);
          break;
        }
      }
      return suppressions_by_path.emplace(path, std::move(set)).first->second;
    };
    for (Finding& finding : AnalyzeConcurrency(model)) {
      if (!suppressions_for(finding.path).Suppresses(finding.rule, finding.line)) {
        findings.push_back(std::move(finding));
      }
    }
  }

  std::sort(findings.begin(), findings.end());
  return findings;
}

}  // namespace probcon::lint
