#include "tools/lint/driver.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace probcon::lint {
namespace {

namespace fs = std::filesystem;

bool HasLintableExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

}  // namespace

const std::vector<std::string>& DefaultLintDirs() {
  static const std::vector<std::string> kDirs = {"src", "tests", "bench", "examples"};
  return kDirs;
}

std::vector<std::string> CollectFiles(const std::string& root,
                                      const std::vector<std::string>& dirs) {
  std::vector<std::string> files;
  for (const std::string& dir : dirs) {
    const fs::path base = fs::path(root) / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) {
      // A single file path is also accepted (useful for `probcon-lint src/foo.cc`).
      if (fs::is_regular_file(base, ec) && HasLintableExtension(base)) {
        files.push_back(dir);
      }
      continue;
    }
    for (fs::recursive_directory_iterator it(base, ec), end; it != end; it.increment(ec)) {
      if (ec) {
        break;
      }
      if (!it->is_regular_file(ec) || !HasLintableExtension(it->path())) {
        continue;
      }
      files.push_back(fs::relative(it->path(), root, ec).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::vector<Finding> LintTree(const std::string& root, const std::vector<std::string>& dirs,
                              const LintOptions& options) {
  std::vector<Finding> findings;
  for (const std::string& file : CollectFiles(root, dirs)) {
    std::ifstream in(fs::path(root) / file, std::ios::binary);
    if (!in) {
      findings.push_back(
          Finding{"probcon-io", file, 0, 0, file, "cannot read file; lint coverage is incomplete"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::vector<Finding> file_findings = LintSource(file, buffer.str(), options);
    findings.insert(findings.end(), std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  std::sort(findings.begin(), findings.end());
  return findings;
}

}  // namespace probcon::lint
