// The probcon-lint rules. Each protects a piece of the repo's determinism/safety contract:
//
//   probcon-determinism   (R1) no ambient entropy or wall-clock reads: results are a pure
//                              function of seeds. Banned: rand/srand, std::random_device,
//                              default_random_engine, random_shuffle, system_clock /
//                              steady_clock / high_resolution_clock, time(nullptr)/time(0),
//                              clock(), gettimeofday/clock_gettime/timespec_get, and the
//                              <ctime>/<sys/time.h> includes. Allowlisted seams: the Rng
//                              implementation itself, telemetry generator entry points, and
//                              a scoped steady_clock-only waiver for the serving layer
//                              (deadline watchdog + latency metrics; see
//                              monotonic_clock_allowlist).
//   probcon-unordered-iter (R2) no ranged-for / .begin() iteration over unordered_map /
//                              unordered_set: iteration order is nondeterministic and leaks
//                              into committed results, traces, and JSON exports.
//   probcon-check          (R3) raw assert() in src/ dies under NDEBUG; use the CHECK /
//                              DCHECK family from src/common/check.h.
//   probcon-using-namespace(R3) `using namespace std` in headers pollutes every includer.
//   probcon-ownership      (R4) naked new/delete outside the allowlist; use values,
//                              containers, or unique_ptr/make_unique.
//   probcon-kahan          (R5) scalar `double x; loop { x += ... }` reductions in
//                              src/analysis/ lose low-order mass; accumulate via KahanSum.
//   probcon-nolint              suppression hygiene (reason required, rule must exist).
//
// Tree-level concurrency rules (implemented in tools/lint/concurrency.h, driven from
// LintTree because they reason about every file at once):
//   probcon-lock-order          (R6) lock-order graph cycles = potential deadlocks. error.
//   probcon-blocking-under-lock (R7) blocking operation while holding a lock.
//   probcon-guarded-field       (R8) PROBCON_GUARDED_BY field touched without its mutex.

#ifndef PROBCON_TOOLS_LINT_RULES_H_
#define PROBCON_TOOLS_LINT_RULES_H_

#include <set>
#include <string>
#include <vector>

#include "tools/lint/finding.h"

namespace probcon::lint {

struct LintOptions {
  // Paths (repo-relative suffix match) where R1 entropy/clock bans do not apply: the seeded
  // RNG seam itself and telemetry synthesis entry points that are documented RNG consumers.
  std::vector<std::string> entropy_allowlist = {
      "src/common/rng.h",
      "src/common/rng.cc",
      "src/telemetry/fleet_generator.h",
      "src/telemetry/fleet_generator.cc",
  };

  // Paths where R4 naked new/delete is tolerated (arena/benchmark internals). Empty today.
  std::vector<std::string> ownership_allowlist;

  // Scoped waiver of the R1 *monotonic* clock ban (`steady_clock` only): the serving layer
  // legitimately owns wall-time policy — request deadlines and latency metrics — and uses
  // the monotonic clock for it. Entries ending in '/' are directory prefixes; other entries
  // match like entropy_allowlist. Ambient entropy and calendar clocks (system_clock,
  // gettimeofday, time(0), ...) stay banned here too: deadlines never influence computed
  // values, only whether a computation is abandoned, so determinism of results survives.
  std::vector<std::string> monotonic_clock_allowlist = {
      "src/serve/",
      "src/wirechaos/",
      "src/obs/span.h",
      "src/obs/span.cc",
      "bench/serve_load.cc",
      "bench/lifecycle_perf.cc",
  };

  // R5 applies below this directory prefix.
  std::string kahan_prefix = "src/analysis/";

  // R3 assert ban applies below this prefix (tests use gtest assertions; benches may do
  // whatever the benchmark harness wants).
  std::string check_prefix = "src/";

  // Run the tree-level concurrency rules R6-R8 (lock-order cycles, blocking under a held
  // lock, guarded-field discipline; see tools/lint/concurrency.h). Off only for tests that
  // pin the per-file rule set.
  bool analyze_concurrency = true;
};

// All valid rule names (for NOLINT validation and --rule filters).
const std::set<std::string>& KnownRules();

// Lints one in-memory source file. `path` must be repo-relative with forward slashes; it
// drives per-directory rule applicability and allowlists. Returned findings are sorted and
// already have inline NOLINT suppressions applied.
std::vector<Finding> LintSource(const std::string& path, const std::string& content,
                                const LintOptions& options = LintOptions());

}  // namespace probcon::lint

#endif  // PROBCON_TOOLS_LINT_RULES_H_
