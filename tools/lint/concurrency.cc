#include "tools/lint/concurrency.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "tools/lint/lexer.h"

namespace probcon::lint {
namespace {

constexpr const char* kRuleLockOrder = "probcon-lock-order";
constexpr const char* kRuleBlocking = "probcon-blocking-under-lock";
constexpr const char* kRuleGuarded = "probcon-guarded-field";

// Operations that block for an unbounded (or scheduler-dependent) time. Holding any lock
// across one of these stalls every thread contending on that lock — and when the blocked
// operation itself needs a lock to make progress (ParallelFor help-loops, cv notifiers),
// it deadlocks. Names are matched against the last component of the callee.
//
// Deliberately absent: write/read/close (the reactor's WakeLocked writes one byte to a
// nonblocking eventfd under the mailbox mutex — bounded, and the wake protocol requires
// it), and the cv wait family, which is handled structurally (is_cv_wait) so that waiting
// on one's OWN mutex — the correct pattern — is exempt.
const std::set<std::string>& BlockingSeeds() {
  static const std::set<std::string> kSeeds = {
      "join",        "sleep_for",   "sleep_until", "poll",           "epoll_wait",
      "select",      "accept",      "connect",     "recv",           "send",
      "Join",        "ParallelFor", "ParallelReduce", "RunTrials",   "TryRunOneTask",
      "RoundTrip",   "RoundTripBatch",
  };
  return kSeeds;
}

bool IsPlaceholder(const std::string& id) { return id.find("::?") != std::string::npos; }

std::string LastName(const std::string& qualified) {
  const size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

std::string OwnerName(const std::string& qualified) {
  const size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? "" : qualified.substr(0, pos);
}

std::string JoinIds(const std::vector<std::string>& ids) {
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    out += (i ? ", " : "") + ids[i];
  }
  return out;
}

// Resolves a declared-order argument ("other" of ACQUIRED_BEFORE/AFTER) in the context of
// the annotating class: a bare member name binds to the nearest enclosing class declaring
// a mutex member of that name; qualified names pass through (best-effort class resolution).
std::string ResolveDeclaredArg(const ClassTable& classes, const std::string& owner,
                               const std::string& raw) {
  if (raw.find("::") == std::string::npos && raw.find('.') == std::string::npos &&
      raw.find("->") == std::string::npos) {
    std::string ctx = owner;
    while (!ctx.empty()) {
      const ClassInfo* ci = classes.Find(ctx);
      if (ci != nullptr && ci->mutex_members.count(raw) > 0) {
        return ctx + "::" + raw;
      }
      const size_t pos = ctx.rfind("::");
      ctx = pos == std::string::npos ? "" : ctx.substr(0, pos);
    }
    return owner + "::" + raw;
  }
  const size_t pos = raw.rfind("::");
  if (pos != std::string::npos) {
    if (const ClassInfo* ci = classes.Resolve(raw.substr(0, pos), owner)) {
      return ci->name + "::" + raw.substr(pos + 2);
    }
  }
  return raw;
}

class Analyzer {
 public:
  explicit Analyzer(const ConcurrencyModel& model) : m_(model) {
    for (const auto& [name, fn] : m_.functions) {
      if (name.find("<lambda") != std::string::npos) {
        continue;
      }
      by_last_[LastName(name)].push_back(&fn);
    }
    CollectEdges();
  }

  std::vector<LockGraphEdge> Edges() const { return edges_; }
  std::vector<Finding> Findings();

 private:
  const FunctionInfo* ResolveCallee(const std::string& callee) {
    if (callee.empty() || callee.find("<lambda") != std::string::npos) {
      return nullptr;
    }
    std::string name = callee;
    if (name.rfind("?::", 0) != 0) {
      auto it = m_.functions.find(name);
      if (it != m_.functions.end()) {
        return &it->second;
      }
    }
    // Fall back to a UNIQUE match on the unqualified name; ambiguity means silence
    // (a linter must not guess between overriders).
    auto jt = by_last_.find(LastName(name));
    if (jt != by_last_.end() && jt->second.size() == 1) {
      return jt->second[0];
    }
    return nullptr;
  }

  // Every non-placeholder mutex id `f` (or any resolvable callee, transitively) acquires.
  const std::set<std::string>& Acquires(const FunctionInfo* f) {
    static const std::set<std::string> kEmpty;
    auto it = acquires_memo_.find(f);
    if (it != acquires_memo_.end()) {
      return it->second;
    }
    if (acquires_in_progress_.count(f) > 0) {
      return kEmpty;  // recursion: the fixpoint contribution of a cycle is already counted
    }
    acquires_in_progress_.insert(f);
    std::set<std::string> acc;
    for (const LockSite& site : f->acquires) {
      if (!IsPlaceholder(site.mutex_id)) {
        acc.insert(site.mutex_id);
      }
    }
    for (const CallSite& call : f->calls) {
      const FunctionInfo* g = ResolveCallee(call.callee);
      if (g != nullptr && g != f) {
        const std::set<std::string>& sub = Acquires(g);
        acc.insert(sub.begin(), sub.end());
      }
    }
    acquires_in_progress_.erase(f);
    return acquires_memo_.emplace(f, std::move(acc)).first->second;
  }

  // True when a call site blocks in its own frame. `for_transitive` drops the clean
  // cv-wait case: a function that waits correctly on its own mutex does not make its
  // CALLERS blocking (the classic WaitLocked helper), but a wait that already violates R7
  // locally propagates.
  bool LocallyBlocking(const CallSite& call, bool for_transitive) {
    if (call.is_cv_wait) {
      return for_transitive ? !UnexemptedHeld(call).empty() : true;
    }
    return BlockingSeeds().count(LastName(call.callee)) > 0;
  }

  // Held mutexes a cv wait does NOT release: everything except the wait's own mutex.
  // When the released mutex is syntactically unresolvable and exactly one lock is held,
  // assume it is that one (the overwhelmingly common correct pattern).
  std::vector<std::string> UnexemptedHeld(const CallSite& call) {
    std::string exempt = call.cv_wait_mutex;
    if (exempt.empty() && call.held.size() == 1) {
      exempt = call.held[0];
    }
    std::vector<std::string> rest;
    for (const std::string& h : call.held) {
      if (h != exempt) {
        rest.push_back(h);
      }
    }
    return rest;
  }

  struct BlockInfo {
    bool blocking = false;
    std::string why;  // witness chain: "RunChunks -> blocking call 'wait' (src/...:42)"
  };

  const BlockInfo& Blocking(const FunctionInfo* f) {
    static const BlockInfo kNot;
    auto it = blocking_memo_.find(f);
    if (it != blocking_memo_.end()) {
      return it->second;
    }
    if (blocking_in_progress_.count(f) > 0) {
      return kNot;
    }
    blocking_in_progress_.insert(f);
    BlockInfo info;
    for (const CallSite& call : f->calls) {
      if (LocallyBlocking(call, /*for_transitive=*/true)) {
        std::ostringstream why;
        why << "'" << LastName(call.callee) << "' at " << f->path << ":" << call.line;
        info.blocking = true;
        info.why = why.str();
        break;
      }
      const FunctionInfo* g = ResolveCallee(call.callee);
      if (g != nullptr && g != f) {
        const BlockInfo& sub = Blocking(g);
        if (sub.blocking) {
          info.blocking = true;
          info.why = g->name + " -> " + sub.why;
          break;
        }
      }
    }
    blocking_in_progress_.erase(f);
    return blocking_memo_.emplace(f, std::move(info)).first->second;
  }

  void AddEdge(const std::string& from, const std::string& to, const std::string& path,
               int line, const char* kind) {
    edges_.push_back(LockGraphEdge{from, to, path, line, kind});
  }

  void CollectEdges() {
    for (const auto& [name, fn] : m_.functions) {
      for (const LockSite& site : fn.acquires) {
        if (IsPlaceholder(site.mutex_id)) {
          continue;
        }
        for (const std::string& h : site.held) {
          if (!IsPlaceholder(h)) {
            AddEdge(h, site.mutex_id, fn.path, site.line, "local");
          }
        }
      }
      for (const CallSite& call : fn.calls) {
        if (call.held.empty()) {
          continue;
        }
        const FunctionInfo* g = ResolveCallee(call.callee);
        if (g == nullptr || g == &fn) {
          continue;
        }
        for (const std::string& a : Acquires(g)) {
          for (const std::string& h : call.held) {
            if (!IsPlaceholder(h)) {
              AddEdge(h, a, fn.path, call.line, "call");
            }
          }
        }
      }
    }
    for (const auto& [cname, ci] : m_.classes.classes()) {
      for (const ClassInfo::DeclaredEdge& d : ci.declared_order) {
        const std::string member = ResolveDeclaredArg(m_.classes, cname, d.member);
        const std::string other = ResolveDeclaredArg(m_.classes, cname, d.other);
        if (d.member_first) {
          AddEdge(member, other, d.path, d.line, "declared");
        } else {
          AddEdge(other, member, d.path, d.line, "declared");
        }
      }
    }
    std::sort(edges_.begin(), edges_.end(), [](const LockGraphEdge& a, const LockGraphEdge& b) {
      return std::tie(a.from, a.to, a.path, a.line, a.kind) <
             std::tie(b.from, b.to, b.path, b.line, b.kind);
    });
    edges_.erase(std::unique(edges_.begin(), edges_.end(),
                             [](const LockGraphEdge& a, const LockGraphEdge& b) {
                               return std::tie(a.from, a.to, a.path, a.line, a.kind) ==
                                      std::tie(b.from, b.to, b.path, b.line, b.kind);
                             }),
                 edges_.end());
  }

  void LockOrderFindings(std::vector<Finding>& out);
  void BlockingFindings(std::vector<Finding>& out);
  void GuardedFieldFindings(std::vector<Finding>& out);

  const ConcurrencyModel& m_;
  std::map<std::string, std::vector<const FunctionInfo*>> by_last_;
  std::vector<LockGraphEdge> edges_;
  std::map<const FunctionInfo*, std::set<std::string>> acquires_memo_;
  std::set<const FunctionInfo*> acquires_in_progress_;
  std::map<const FunctionInfo*, BlockInfo> blocking_memo_;
  std::set<const FunctionInfo*> blocking_in_progress_;
};

// ---- R6: lock-order cycles --------------------------------------------------------------

void Analyzer::LockOrderFindings(std::vector<Finding>& out) {
  // Collapse witnesses: one representative edge per (from, to) — edges_ is sorted, so the
  // first witness is the lexicographically smallest.
  std::map<std::string, std::map<std::string, const LockGraphEdge*>> adj;
  for (const LockGraphEdge& e : edges_) {
    auto& slot = adj[e.from][e.to];
    if (slot == nullptr) {
      slot = &e;
    }
  }

  // Self-edges: re-entrant acquisition (directly, or a callee re-locking a caller-held
  // mutex). Non-recursive mutexes deadlock on the spot.
  for (const auto& [from, tos] : adj) {
    auto it = tos.find(from);
    if (it == tos.end()) {
      continue;
    }
    const LockGraphEdge* e = it->second;
    Finding f;
    f.rule = kRuleLockOrder;
    f.severity = "error";
    f.path = e->path;
    f.line = e->line;
    f.col = 1;
    f.token = from;
    f.message = "re-entrant acquisition of '" + from +
                "' (already held here" + (e->kind == std::string("call") ? " and re-locked inside the callee" : "") +
                "); std::mutex deadlocks immediately";
    f.edges.push_back(FindingEdge{e->from, e->to, e->path, e->line});
    out.push_back(std::move(f));
  }

  // Tarjan SCC over the collapsed graph (ignoring self-loops, already reported).
  std::vector<std::string> nodes;
  for (const auto& [from, tos] : adj) {
    nodes.push_back(from);
    for (const auto& [to, e] : tos) {
      nodes.push_back(to);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  std::map<std::string, int> index;
  std::map<std::string, int> low;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  std::vector<std::vector<std::string>> sccs;
  int counter = 0;

  // Iterative Tarjan (explicit frames: node + neighbor iterator position).
  struct Frame {
    std::string node;
    std::vector<std::string> succ;
    size_t next = 0;
  };
  for (const std::string& start : nodes) {
    if (index.count(start) > 0) {
      continue;
    }
    std::vector<Frame> frames;
    auto push_node = [&](const std::string& v) {
      index[v] = low[v] = counter++;
      stack.push_back(v);
      on_stack[v] = true;
      Frame fr;
      fr.node = v;
      auto it = adj.find(v);
      if (it != adj.end()) {
        for (const auto& [to, e] : it->second) {
          if (to != v) {
            fr.succ.push_back(to);
          }
        }
      }
      frames.push_back(std::move(fr));
    };
    push_node(start);
    while (!frames.empty()) {
      Frame& fr = frames.back();
      if (fr.next < fr.succ.size()) {
        const std::string& w = fr.succ[fr.next++];
        if (index.count(w) == 0) {
          push_node(w);
        } else if (on_stack[w]) {
          low[fr.node] = std::min(low[fr.node], index[w]);
        }
      } else {
        const std::string v = fr.node;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().node] = std::min(low[frames.back().node], low[v]);
        }
        if (low[v] == index[v]) {
          std::vector<std::string> scc;
          while (true) {
            const std::string w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(w);
            if (w == v) {
              break;
            }
          }
          if (scc.size() > 1) {
            std::sort(scc.begin(), scc.end());
            sccs.push_back(std::move(scc));
          }
        }
      }
    }
  }

  for (const std::vector<std::string>& scc : sccs) {
    const std::set<std::string> in_scc(scc.begin(), scc.end());
    // Readable cycle: BFS from the smallest node back to itself inside the SCC.
    const std::string& start = scc[0];
    std::map<std::string, std::string> parent;
    std::vector<std::string> queue = {start};
    std::vector<std::string> cycle;
    for (size_t qi = 0; qi < queue.size() && cycle.empty(); ++qi) {
      const std::string u = queue[qi];
      auto it = adj.find(u);
      if (it == adj.end()) {
        continue;
      }
      for (const auto& [v, e] : it->second) {
        if (in_scc.count(v) == 0 || v == u) {
          continue;
        }
        if (v == start) {
          cycle = {start};
          std::string w = u;
          std::vector<std::string> back;
          while (w != start) {
            back.push_back(w);
            w = parent[w];
          }
          for (auto rit = back.rbegin(); rit != back.rend(); ++rit) {
            cycle.push_back(*rit);
          }
          cycle.push_back(start);
          break;
        }
        if (parent.count(v) == 0) {
          parent[v] = u;
          queue.push_back(v);
        }
      }
    }

    // All witness edges inside the SCC, sorted; the first anchors the finding.
    std::vector<const LockGraphEdge*> witness;
    for (const std::string& u : scc) {
      auto it = adj.find(u);
      if (it == adj.end()) {
        continue;
      }
      for (const auto& [v, e] : it->second) {
        if (v != u && in_scc.count(v) > 0) {
          witness.push_back(e);
        }
      }
    }
    std::sort(witness.begin(), witness.end(),
              [](const LockGraphEdge* a, const LockGraphEdge* b) {
                return std::tie(a->path, a->line, a->from, a->to) <
                       std::tie(b->path, b->line, b->from, b->to);
              });

    Finding f;
    f.rule = kRuleLockOrder;
    f.severity = "error";
    if (!witness.empty()) {
      f.path = witness[0]->path;
      f.line = witness[0]->line;
      f.col = 1;
    }
    std::string token;
    for (const std::string& node : scc) {
      token += (token.empty() ? "" : "|") + node;
    }
    f.token = token;
    std::ostringstream msg;
    msg << "lock-order cycle: ";
    for (size_t i = 0; i < cycle.size(); ++i) {
      msg << (i ? " -> " : "") << cycle[i];
    }
    msg << "; two threads taking these locks in opposite order deadlock. Witnesses:";
    for (const LockGraphEdge* e : witness) {
      msg << " " << e->from << "->" << e->to << " (" << e->kind << " " << e->path << ":"
          << e->line << ")";
      f.edges.push_back(FindingEdge{e->from, e->to, e->path, e->line});
    }
    msg << ". Fix: pick one order (declare it with PROBCON_ACQUIRED_BEFORE) or drop a lock "
           "before taking the next.";
    f.message = msg.str();
    out.push_back(std::move(f));
  }
}

// ---- R7: blocking under a held lock -----------------------------------------------------

void Analyzer::BlockingFindings(std::vector<Finding>& out) {
  for (const auto& [name, fn] : m_.functions) {
    for (const CallSite& call : fn.calls) {
      if (call.held.empty()) {
        continue;
      }
      Finding f;
      f.rule = kRuleBlocking;
      f.severity = "warning";
      f.path = fn.path;
      f.line = call.line;
      f.col = call.col;
      if (call.is_cv_wait) {
        const std::vector<std::string> rest = UnexemptedHeld(call);
        if (rest.empty()) {
          continue;  // waiting on one's own mutex is THE correct cv pattern
        }
        f.token = LastName(call.callee);
        f.message =
            "condition-variable wait releases only " +
            (call.cv_wait_mutex.empty() ? std::string("its own mutex") : "'" + call.cv_wait_mutex + "'") +
            " but " + JoinIds(rest) +
            " stays held across the wait; a notifier that needs that lock deadlocks. Fix: "
            "drop the outer lock before waiting";
        out.push_back(std::move(f));
        continue;
      }
      const std::string last = LastName(call.callee);
      if (BlockingSeeds().count(last) > 0) {
        f.token = last;
        f.message = "blocking call '" + last + "' while holding " + JoinIds(call.held) +
                    "; anything contending on that lock stalls for the full blocking "
                    "duration (and deadlocks if the blocked work needs it). Fix: release "
                    "the lock first";
        out.push_back(std::move(f));
        continue;
      }
      const FunctionInfo* g = ResolveCallee(call.callee);
      if (g != nullptr && g != &fn) {
        const BlockInfo& sub = Blocking(g);
        if (sub.blocking) {
          f.token = last;
          f.message = "call to '" + g->name + "' may block (" + g->name + " -> " + sub.why +
                      ") while holding " + JoinIds(call.held) +
                      "; release the lock before calling into blocking code";
          out.push_back(std::move(f));
        }
      }
    }
  }
}

// ---- R8: guarded fields touched without their mutex -------------------------------------

void Analyzer::GuardedFieldFindings(std::vector<Finding>& out) {
  for (const auto& [name, fn] : m_.functions) {
    for (const FieldUse& use : fn.field_uses) {
      if (use.held_ok) {
        continue;
      }
      // Constructors/destructors of the owning class run before/after any sharing;
      // clang's analysis exempts them and so do we.
      const std::string owner = OwnerName(use.field_id);
      const std::string fn_last = LastName(fn.name);
      if (fn.class_name == owner &&
          (fn_last == LastName(owner) || fn_last == "~" + LastName(owner))) {
        continue;
      }
      Finding f;
      f.rule = kRuleGuarded;
      f.severity = "warning";
      f.path = fn.path;
      f.line = use.line;
      f.col = use.col;
      f.token = LastName(use.field_id);
      f.message = "'" + use.field_id + "' is PROBCON_GUARDED_BY '" + use.mutex_id +
                  "' but the mutex is not held here" +
                  (use.held.empty() ? std::string(" (no locks held)")
                                    : " (held: " + JoinIds(use.held) + ")") +
                  "; lock it, or annotate the function PROBCON_REQUIRES if callers hold it";
      out.push_back(std::move(f));
    }
  }
}

std::vector<Finding> Analyzer::Findings() {
  std::vector<Finding> out;
  LockOrderFindings(out);
  BlockingFindings(out);
  GuardedFieldFindings(out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

ConcurrencyModel BuildModel(const std::vector<SourceFile>& files) {
  ConcurrencyModel model;
  std::vector<std::pair<std::string, std::vector<Token>>> lexed;
  lexed.reserve(files.size());
  for (const SourceFile& file : files) {
    lexed.emplace_back(file.path, Lex(file.content));
  }
  for (auto& [path, tokens] : lexed) {
    for (ClassInfo& ci : CollectClasses(tokens)) {
      for (ClassInfo::DeclaredEdge& edge : ci.declared_order) {
        edge.path = path;
      }
      model.classes.Merge(ci);
    }
  }
  model.classes.Finalize();
  for (const auto& [path, tokens] : lexed) {
    for (FunctionInfo& fn : CollectFunctions(path, tokens, model.classes)) {
      auto [it, inserted] = model.functions.emplace(fn.name, fn);
      if (!inserted) {
        // Overload / redefinition: merge body events (conservative union of behavior).
        FunctionInfo& dst = it->second;
        dst.requires_held.insert(dst.requires_held.end(), fn.requires_held.begin(),
                                 fn.requires_held.end());
        dst.acquires.insert(dst.acquires.end(), fn.acquires.begin(), fn.acquires.end());
        dst.calls.insert(dst.calls.end(), fn.calls.begin(), fn.calls.end());
        dst.field_uses.insert(dst.field_uses.end(), fn.field_uses.begin(),
                              fn.field_uses.end());
      }
    }
  }
  // PROBCON_REQUIRES may live only on a header declaration while the body was parsed from
  // the .cc definition; fold the merged entry locks into every recorded site.
  for (auto& [name, fn] : model.functions) {
    if (fn.requires_held.empty()) {
      continue;
    }
    auto add_held = [&fn](std::vector<std::string>& held) {
      for (const std::string& r : fn.requires_held) {
        if (std::find(held.begin(), held.end(), r) == held.end()) {
          held.push_back(r);
        }
      }
    };
    for (LockSite& site : fn.acquires) {
      add_held(site.held);
    }
    for (CallSite& call : fn.calls) {
      add_held(call.held);
    }
    for (FieldUse& use : fn.field_uses) {
      add_held(use.held);
      use.held_ok = use.held_ok || std::find(use.held.begin(), use.held.end(),
                                             use.mutex_id) != use.held.end();
    }
  }
  return model;
}

std::vector<LockGraphEdge> BuildLockGraph(const ConcurrencyModel& model) {
  return Analyzer(model).Edges();
}

std::vector<Finding> AnalyzeConcurrency(const ConcurrencyModel& model) {
  return Analyzer(model).Findings();
}

std::string DumpLockGraph(const ConcurrencyModel& model, bool json) {
  const std::vector<LockGraphEdge> edges = BuildLockGraph(model);
  std::set<std::string> nodes;
  for (const LockGraphEdge& e : edges) {
    nodes.insert(e.from);
    nodes.insert(e.to);
  }
  for (const auto& [name, fn] : model.functions) {
    for (const LockSite& site : fn.acquires) {
      if (!IsPlaceholder(site.mutex_id)) {
        nodes.insert(site.mutex_id);
      }
    }
  }
  std::ostringstream os;
  if (json) {
    auto escape = [](const std::string& s) {
      std::string out;
      for (const char c : s) {
        if (c == '"' || c == '\\') {
          out += '\\';
        }
        out += c;
      }
      return out;
    };
    os << "{\n  \"nodes\": [";
    size_t i = 0;
    for (const std::string& n : nodes) {
      os << (i++ == 0 ? "\n" : ",\n") << "    \"" << escape(n) << "\"";
    }
    os << (nodes.empty() ? "]" : "\n  ]") << ",\n  \"edges\": [";
    for (size_t j = 0; j < edges.size(); ++j) {
      const LockGraphEdge& e = edges[j];
      os << (j == 0 ? "\n" : ",\n") << "    {\"from\": \"" << escape(e.from)
         << "\", \"to\": \"" << escape(e.to) << "\", \"kind\": \"" << escape(e.kind)
         << "\", \"path\": \"" << escape(e.path) << "\", \"line\": " << e.line << "}";
    }
    os << (edges.empty() ? "]" : "\n  ]") << ",\n  \"node_count\": " << nodes.size()
       << ",\n  \"edge_count\": " << edges.size() << "\n}\n";
  } else {
    os << "lock-order graph: " << nodes.size() << " mutex" << (nodes.size() == 1 ? "" : "es")
       << ", " << edges.size() << " edge" << (edges.size() == 1 ? "" : "s") << "\n";
    for (const std::string& n : nodes) {
      os << "  node " << n << "\n";
    }
    for (const LockGraphEdge& e : edges) {
      os << "  " << e.from << " -> " << e.to << "  [" << e.kind << "]  " << e.path << ":"
         << e.line << "\n";
    }
  }
  return os.str();
}

}  // namespace probcon::lint
