#include "tools/lint/suppressions.h"

#include <cctype>

namespace probcon::lint {
namespace {

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

// Splits "probcon-determinism, bugprone-foo" into trimmed entries.
std::vector<std::string> SplitRuleList(const std::string& list) {
  std::vector<std::string> rules;
  std::string current;
  for (const char c : list) {
    if (c == ',') {
      rules.push_back(Trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  rules.push_back(Trim(current));
  return rules;
}

}  // namespace

SuppressionSet ParseSuppressions(const std::string& path, const std::vector<Token>& tokens,
                                 const std::set<std::string>& known_rules,
                                 std::vector<Finding>& hygiene) {
  SuppressionSet set;
  for (const Token& token : tokens) {
    if (token.kind != TokenKind::kComment) {
      continue;
    }
    const std::string& text = token.text;
    for (size_t pos = text.find("NOLINT"); pos != std::string::npos;
         pos = text.find("NOLINT", pos + 1)) {
      // Skip if this is the tail of a longer word (e.g. "DONOLINT").
      if (pos > 0 && (std::isalnum(static_cast<unsigned char>(text[pos - 1])) != 0 ||
                      text[pos - 1] == '_')) {
        continue;
      }
      size_t after = pos + 6;  // past "NOLINT"
      int target_line = token.line;
      if (text.compare(after, 8, "NEXTLINE") == 0) {
        after += 8;
        target_line = token.line + 1;
      }
      if (after >= text.size() || text[after] != '(') {
        continue;  // bare NOLINT: clang-tidy territory, not ours
      }
      const size_t close = text.find(')', after);
      if (close == std::string::npos) {
        continue;
      }
      const std::vector<std::string> rules =
          SplitRuleList(text.substr(after + 1, close - after - 1));

      bool any_probcon = false;
      for (const std::string& rule : rules) {
        if (rule.rfind("probcon-", 0) != 0) {
          continue;  // clang-tidy rule on a shared NOLINT; ignore
        }
        any_probcon = true;
        if (known_rules.count(rule) == 0) {
          hygiene.push_back(Finding{"probcon-nolint", path, token.line, token.col, rule,
                                    "NOLINT names unknown rule '" + rule +
                                        "'; see docs/LINTING.md for the rule list"});
          continue;
        }
        set.by_line[target_line].insert(rule);
      }

      if (any_probcon) {
        // Reason required: "): why this site is exempt".
        const std::string reason = Trim(text.substr(close + 1));
        if (reason.empty() || reason[0] != ':' || Trim(reason.substr(1)).empty()) {
          hygiene.push_back(Finding{"probcon-nolint", path, token.line, token.col, "NOLINT",
                                    "probcon NOLINT requires a reason: write "
                                    "`NOLINT(probcon-rule): why this site is exempt`"});
        }
      }
      pos = close;
    }
  }
  return set;
}

}  // namespace probcon::lint
