// Inline suppression parsing: `// NOLINT(probcon-rule): reason`.
//
// Policy (see docs/LINTING.md):
//   - Only the probcon-* rule namespace is handled here; bare NOLINT or clang-tidy-style
//     NOLINT(bugprone-...) comments are ignored so both tools can coexist on one line.
//   - A reason is REQUIRED: `// NOLINT(probcon-determinism): wall-time telemetry only`.
//     A probcon suppression with no reason still suppresses (so CI failures don't cascade)
//     but emits a probcon-nolint finding of its own.
//   - NOLINTNEXTLINE(probcon-...) suppresses the following line.

#ifndef PROBCON_TOOLS_LINT_SUPPRESSIONS_H_
#define PROBCON_TOOLS_LINT_SUPPRESSIONS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/finding.h"
#include "tools/lint/token.h"

namespace probcon::lint {

struct SuppressionSet {
  // line -> set of probcon rule names suppressed on that line.
  std::map<int, std::set<std::string>> by_line;

  bool Suppresses(const std::string& rule, int line) const {
    auto it = by_line.find(line);
    return it != by_line.end() && it->second.count(rule) > 0;
  }
};

// Scans comment tokens for probcon NOLINT markers. Hygiene problems (missing reason,
// unknown probcon rule name) are appended to `hygiene` as probcon-nolint findings.
// `known_rules` is the set of valid probcon rule names.
SuppressionSet ParseSuppressions(const std::string& path, const std::vector<Token>& tokens,
                                 const std::set<std::string>& known_rules,
                                 std::vector<Finding>& hygiene);

}  // namespace probcon::lint

#endif  // PROBCON_TOOLS_LINT_SUPPRESSIONS_H_
