// A lightweight, heuristic C++ parser layered on the probcon-lint lexer.
//
// This is not a compiler front end: it recovers exactly the structure the concurrency rules
// (R6-R8, see tools/lint/concurrency.h) need and nothing more —
//
//   - class/struct definitions, their mutex members, PROBCON_GUARDED_BY'd fields,
//     declared lock order (PROBCON_ACQUIRED_BEFORE/AFTER), declared methods, and the
//     element class of container/smart-pointer members (so `workers_[i]->mutex` resolves);
//   - function definitions (free, member, out-of-line `Class::Method`, lambdas), and for
//     each body: RAII lock acquisitions (`lock_guard`/`unique_lock`/`scoped_lock`/
//     `shared_lock`, plus `.lock()`/`.unlock()` toggles on tracked unique_locks), call
//     sites with the exact set of mutexes held, condition-variable waits with the mutex
//     their lock argument releases, and every access to a guarded field with held-ness.
//
// Mutex identity is `Class::member` (e.g. "QueryCache::Shard::mutex",
// "ThreadPool::wake_mutex_"), resolved through local/parameter/member type tracking.
// Function-local mutexes are keyed by the enclosing function
// ("QueryServer::Handle::mutex"). Expressions the parser cannot resolve get a
// function-scoped placeholder id — still counted as "a lock is held" for R7, but never
// unified across functions, so unresolved syntax cannot manufacture global cycles.
//
// The parser never throws and never gives up on a file: unrecognized constructs are skipped
// token by token, which is the correct failure mode for a linter (silence, not a crash).

#ifndef PROBCON_TOOLS_LINT_PARSER_H_
#define PROBCON_TOOLS_LINT_PARSER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/token.h"

namespace probcon::lint {

// One class/struct definition (possibly merged across declaration/definition files).
struct ClassInfo {
  std::string name;         // fully qualified by enclosing classes: "TcpServer::Reactor"
  std::set<std::string> mutex_members;  // names of std::mutex / shared_mutex members
  // field name -> raw PROBCON_GUARDED_BY argument text (resolved against this class).
  std::map<std::string, std::string> guarded_fields;
  // Declared order edges from PROBCON_ACQUIRED_BEFORE/AFTER on mutex members:
  // (first-member-name, second-raw-arg, line). "first" is always the annotated member.
  struct DeclaredEdge {
    std::string member;  // annotated mutex member (of this class)
    std::string other;   // raw argument text (member name or Class::member)
    bool member_first = true;  // true: member acquired before other; false: after
    std::string path;          // file carrying the annotation (set by BuildModel)
    int line = 0;
  };
  std::vector<DeclaredEdge> declared_order;
  std::set<std::string> methods;  // declared/defined method names (unqualified)
  // member name -> raw type identifiers of its declaration, in order (e.g. for
  // `std::vector<std::unique_ptr<Worker>> workers_` -> {"std","vector","std","unique_ptr",
  // "Worker"}). The class table resolves these to an element class after all classes are
  // known.
  std::map<std::string, std::vector<std::string>> member_type_tokens;
};

// All classes across the analyzed files, with name resolution helpers.
class ClassTable {
 public:
  void Merge(const ClassInfo& info);
  // After all classes are merged: resolve member_type_tokens into member element classes.
  void Finalize();

  // Resolves `name` (unqualified or partially qualified) seen inside class `context`
  // (fully qualified, may be ""). Walks enclosing scopes, then falls back to a unique
  // unqualified match. Returns nullptr when unknown or ambiguous.
  const ClassInfo* Resolve(const std::string& name, const std::string& context) const;
  const ClassInfo* Find(const std::string& qualified) const;

  // member name -> resolved element class (qualified), per class. Populated by Finalize().
  const std::string* MemberClass(const std::string& class_name,
                                 const std::string& member) const;

  const std::map<std::string, ClassInfo>& classes() const { return classes_; }

 private:
  std::map<std::string, ClassInfo> classes_;  // qualified name -> info
  std::map<std::string, std::vector<std::string>> by_unqualified_;
  std::map<std::string, std::map<std::string, std::string>> member_class_;
};

// One RAII (or tracked manual) lock acquisition.
struct LockSite {
  std::string mutex_id;           // "Class::member" / "Func::local" / placeholder
  std::vector<std::string> held;  // mutex ids already held when this lock is taken
  int line = 0;
  int col = 0;
};

// One call site inside a function body.
struct CallSite {
  // Best-effort callee: "Class::Method", "FreeFunction", or "?::Method" when the receiver
  // could not be resolved (the analyzer retries by unique method name).
  std::string callee;
  std::vector<std::string> held;  // mutex ids held at the call
  int line = 0;
  int col = 0;
  bool is_cv_wait = false;     // wait / wait_for / wait_until on a condition variable
  std::string cv_wait_mutex;   // mutex released by the wait's lock argument ("" unknown)
};

// One access to a PROBCON_GUARDED_BY field.
struct FieldUse {
  std::string field_id;  // "Class::field"
  std::string mutex_id;  // the guard, resolved to a mutex id
  std::vector<std::string> held;
  bool held_ok = false;  // mutex_id was held at the access
  int line = 0;
  int col = 0;
};

struct FunctionInfo {
  std::string name;        // "QueryCache::GetOrCompute", "RunChunks",
                           // "QueryServer::Handle::<lambda:57>"
  std::string class_name;  // enclosing class (qualified) or ""
  std::string path;
  int line = 0;
  bool is_lambda = false;
  std::vector<std::string> requires_held;  // PROBCON_REQUIRES, resolved to mutex ids
  std::vector<LockSite> acquires;
  std::vector<CallSite> calls;
  std::vector<FieldUse> field_uses;
};

// Pass 1: collect class definitions (including nested and function-local ones).
std::vector<ClassInfo> CollectClasses(const std::vector<Token>& tokens);

// Pass 2: collect function definitions and their body events. `classes` must already be
// Finalize()d and contain every file's classes for cross-file type resolution.
std::vector<FunctionInfo> CollectFunctions(const std::string& path,
                                           const std::vector<Token>& tokens,
                                           const ClassTable& classes);

}  // namespace probcon::lint

#endif  // PROBCON_TOOLS_LINT_PARSER_H_
