#include "tools/lint/finding.h"

#include <sstream>

namespace probcon::lint {
namespace {

void AppendJsonEscaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string FormatHuman(const Finding& finding) {
  std::ostringstream os;
  os << finding.path << ":" << finding.line << ":" << finding.col << ": "
     << (finding.severity.empty() ? "warning" : finding.severity) << ": "
     << finding.message << " [" << finding.rule << "]";
  return os.str();
}

std::string FormatJson(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "{\n  \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"rule\": ";
    AppendJsonEscaped(os, f.rule);
    os << ", \"severity\": ";
    AppendJsonEscaped(os, f.severity.empty() ? "warning" : f.severity);
    os << ", \"path\": ";
    AppendJsonEscaped(os, f.path);
    os << ", \"line\": " << f.line << ", \"col\": " << f.col << ", \"token\": ";
    AppendJsonEscaped(os, f.token);
    os << ", \"message\": ";
    AppendJsonEscaped(os, f.message);
    if (!f.edges.empty()) {
      os << ", \"edges\": [";
      for (size_t j = 0; j < f.edges.size(); ++j) {
        const FindingEdge& e = f.edges[j];
        os << (j == 0 ? "" : ", ") << "{\"from\": ";
        AppendJsonEscaped(os, e.from);
        os << ", \"to\": ";
        AppendJsonEscaped(os, e.to);
        os << ", \"path\": ";
        AppendJsonEscaped(os, e.path);
        os << ", \"line\": " << e.line << "}";
      }
      os << "]";
    }
    os << "}";
  }
  os << (findings.empty() ? "]" : "\n  ]") << ",\n  \"count\": " << findings.size() << "\n}\n";
  return os.str();
}

}  // namespace probcon::lint
